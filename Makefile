GO ?= go

.PHONY: all build test race bench bench-shard bench-parallel bench-server bench-binary bench-json bench-compare fuzz soak-pacing fmt vet staticcheck

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# staticcheck runs the pinned honnef.co analyzer without adding a module
# dependency (go run fetches the tool into the build cache only).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2024.1.1 ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# bench-shard runs only the shard-count throughput sweep (1/2/4/8 shards
# over the same serving load) for quick scaling checks.
bench-shard:
	$(GO) test -bench='ShardedThroughput' -benchmem -benchtime=2s -run='^$$' .

# bench-parallel runs the cost-aware parallel-execution sweeps: the
# shards × workers round-wave benchmark (same total core budget spent as
# many small shards vs one wide pool) and the executor comparison's pooled
# compiled/workers=N rows. tools/benchjson derives a `speedup` metric for
# each workers=N row against its workers=1 sibling.
bench-parallel:
	$(GO) test -bench='ParallelScaling' -benchmem -benchtime=2s -run='^$$' .
	$(GO) test -bench='ExecutorRound' -benchmem -benchtime=2s -run='^$$' ./internal/core

# bench-server runs the serving benchmarks: in-process Submit throughput,
# the shard sweep, and both network edges (BenchmarkHTTPThroughput,
# BenchmarkBinaryThroughput) — the last two quantify what each wire
# protocol costs next to in-process numbers. It then diffs the fresh
# numbers against the committed BENCH_server.json with the same gate
# bench-compare applies to the core.
bench-server:
	$(GO) test -bench='ServerThroughput|ShardedThroughput|HTTPThroughput|BinaryThroughput' -benchmem -benchtime=2s -run='^$$' . \
		| $(GO) run ./tools/benchjson -compare BENCH_server.json

# bench-binary runs only the binary-tier throughput benchmark — the quick
# check that the multiplexed frame edge still lands near in-process rates.
bench-binary:
	$(GO) test -bench='BinaryThroughput' -benchmem -benchtime=2s -run='^$$' .

# bench-json runs the core round-resolution and serving benchmarks and
# records them as machine-readable JSON (BENCH_core.json, BENCH_server.json)
# for cross-PR comparison. The serving file carries the single-server
# throughput benchmark, the shard sweep, and both network edges (HTTP and
# binary).
bench-json:
	$(GO) test -bench='RoundResolution|IncrementalRounds|SteadyStateStep|ReplanSwap|ParallelScaling' -benchmem -benchtime=2s -run='^$$' . \
		| $(GO) run ./tools/benchjson > BENCH_core.json
	@cat BENCH_core.json
	$(GO) test -bench='ServerThroughput|ShardedThroughput|HTTPThroughput|BinaryThroughput' -benchmem -benchtime=2s -run='^$$' . \
		| $(GO) run ./tools/benchjson > BENCH_server.json
	@cat BENCH_server.json

# bench-compare reruns the core round-resolution benchmarks and diffs them
# against the committed BENCH_core.json, failing on a >20% ns/op regression
# or a >20% drop in any workers=N row's derived parallel speedup (the CI
# regression gate runs the same comparison).
bench-compare:
	$(GO) test -bench='RoundResolution|IncrementalRounds|SteadyStateStep|ReplanSwap|ParallelScaling' -benchmem -benchtime=2s -run='^$$' . \
		| $(GO) run ./tools/benchjson -compare BENCH_core.json

# fuzz smoke-runs the binary-protocol fuzzers for a few seconds each: the
# frame round-trip property and the malformed-input parser hardening (no
# panic, no attacker-sized allocation). CI runs the same budgets.
fuzz:
	$(GO) test -run='^$$' -fuzz='FuzzFrameRoundTrip' -fuzztime=10s ./internal/binproto
	$(GO) test -run='^$$' -fuzz='FuzzMalformedFrame' -fuzztime=10s ./internal/binproto

# soak-pacing runs the day-in-the-life budget-pacing soak (EXPERIMENTS.md):
# calibrate natural spend, verify the unpaced baseline front-loads, then
# verify pacing spreads every hot advertiser's budget across the day —
# plus the sharded-vs-single pacing equivalence and the -race pacing suite.
soak-pacing:
	$(GO) test -run 'TestSoakPacingDay' -count=1 -v .
	$(GO) test -run 'TestShardedEquivalencePacing' -count=1 ./internal/shard
	$(GO) test -race -count=1 ./internal/budget
