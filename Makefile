GO ?= go

.PHONY: all build test race bench bench-json fmt vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# bench-json runs the core round-resolution benchmarks and records them as
# machine-readable JSON in BENCH_core.json for cross-PR comparison.
bench-json:
	$(GO) test -bench='RoundResolution|IncrementalRounds|SteadyStateStep' -benchmem -benchtime=2s -run='^$$' . \
		| $(GO) run ./tools/benchjson > BENCH_core.json
	@cat BENCH_core.json
