// Benchmark harness: one benchmark per table/figure/claim of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark both
// measures wall-clock cost (testing.B) and reports the paper's own metric
// (expected plan cost, scans, over-delivery, ...) via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the numbers EXPERIMENTS.md
// records.
package sharedwd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharedwd/internal/analytics"
	"sharedwd/internal/binproto"
	"sharedwd/internal/bitset"
	"sharedwd/internal/budget"
	"sharedwd/internal/core"
	"sharedwd/internal/netserve"
	"sharedwd/internal/nonsep"
	"sharedwd/internal/plan"
	"sharedwd/internal/server"
	"sharedwd/internal/shard"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/sharedsort"
	"sharedwd/internal/stats"
	"sharedwd/internal/ta"
	"sharedwd/internal/topk"
	"sharedwd/internal/workload"
)

// BenchmarkFig4SharedPlanCost regenerates Figure 4: expected plan cost vs
// query probability on the paper's 20-advertiser / 10-query coin-flip
// construction. The naive/shared expected costs are reported as metrics.
func BenchmarkFig4SharedPlanCost(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := plan.RandomCoinFlipInstance(rng, 20, 10, 1)
	for _, sr := range []float64{0.2, 0.5, 1.0} {
		b.Run(fmt.Sprintf("sr=%.1f", sr), func(b *testing.B) {
			inst := base.UniformRates(sr)
			var shared, naive float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := sharedagg.Build(inst)
				shared = s.ExpectedCost()
				naive = plan.NaivePlan(inst).ExpectedCost()
			}
			b.ReportMetric(shared, "sharedE/round")
			b.ReportMetric(naive, "naiveE/round")
			b.ReportMetric(100*(1-shared/naive), "saving%")
		})
	}
}

// BenchmarkFig5ExactVsHeuristic regenerates the Figure-5 NP-complete rows'
// empirical face: the exponential exact planner against the polynomial
// heuristic on growing semilattice instances.
func BenchmarkFig5ExactVsHeuristic(b *testing.B) {
	for _, n := range []int{5, 7} {
		rng := rand.New(rand.NewSource(2))
		inst := plan.RandomCoinFlipInstance(rng, n, 3, 1)
		b.Run(fmt.Sprintf("exact/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan.ExactMinTotalCost(inst)
			}
		})
		b.Run(fmt.Sprintf("heuristic/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sharedagg.Build(inst)
			}
		})
	}
}

// BenchmarkShoeStoreSharing regenerates the Section II-B worked example:
// two phrases over 200 general + 40 sports + 30 fashion stores. The
// reported metric is the aggregation-operation saving of sharing (the
// paper claims "40% fewer").
func BenchmarkShoeStoreSharing(b *testing.B) {
	const general, sports, fashion = 200, 40, 30
	n := general + sports + fashion
	boots := NewAdvertiserSet(n)
	heels := NewAdvertiserSet(n)
	for i := 0; i < general; i++ {
		boots.Add(i)
		heels.Add(i)
	}
	for i := general; i < general+sports; i++ {
		boots.Add(i)
	}
	for i := general + sports; i < n; i++ {
		heels.Add(i)
	}
	inst := plan.MustInstance(n, []plan.Query{{Vars: boots, Rate: 1}, {Vars: heels, Rate: 1}})
	var saving float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shared := sharedagg.Build(inst)
		naive := plan.NaivePlan(inst)
		saving = 100 * (1 - float64(shared.TotalCost())/float64(naive.TotalCost()))
	}
	b.ReportMetric(saving, "saving%")
}

// BenchmarkPlanQuality is ablation A1: naive vs fragment-only vs full
// heuristic expected cost on a larger topic-structured instance.
func BenchmarkPlanQuality(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	inst := plan.RandomOverlapInstance(rng, 200, 40, 8, 0.2, 0.9)
	builders := []struct {
		name  string
		build func(*plan.Instance) *plan.Plan
	}{
		{"naive", plan.NaivePlan},
		{"fragments", sharedagg.BuildFragmentOnly},
		{"full", sharedagg.Build},
	}
	for _, bd := range builders {
		b.Run(bd.name, func(b *testing.B) {
			var cost float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cost = bd.build(inst).ExpectedCost()
			}
			b.ReportMetric(cost, "expectedE/round")
		})
	}
}

// BenchmarkRoundResolution compares shared-plan winner determination with
// independent per-auction scans inside the full engine (Section II's point,
// end to end), reporting both wall-clock and aggregation operations per
// auction. Two workload presets: the default topic-clustered mix (the
// original benchmark, whose sub-benchmark names are unchanged so historical
// BENCH_core.json records stay comparable) and a broad-match-heavy
// high-overlap preset where the occurring auctions share most of their
// participants — the fairness case for sharing, where the shared plan must
// beat the independent scans on wall-clock, not just operator counts.
func BenchmarkRoundResolution(b *testing.B) {
	presets := []struct {
		prefix string
		wcfg   workload.Config
	}{
		{"", workload.DefaultConfig()},
		{"highOverlap/", workload.HighOverlapConfig()},
	}
	for _, preset := range presets {
		for _, mode := range []core.SharingMode{core.SharedAggregation, core.Independent} {
			wcfg := preset.wcfg
			wcfg.NumAdvertisers = 1000
			wcfg.NumPhrases = 32
			wcfg.NumTopics = 6
			// Budgets that never exhaust keep every round identical, so
			// ns/op is independent of how many iterations ran before it —
			// without this, longer runs drain budgets, zero out bids, and
			// measure cheaper rounds, making baselines incomparable.
			wcfg.MinBudget = 1e6
			wcfg.MaxBudget = 2e6
			w := workload.Generate(wcfg)
			ecfg := core.DefaultConfig()
			ecfg.Sharing = mode
			ecfg.Policy = core.Naive
			eng, err := core.New(w, ecfg)
			if err != nil {
				b.Fatal(err)
			}
			occ := make([]bool, len(w.Interests))
			for q := range occ {
				occ[q] = q%2 == 0
			}
			b.Run(preset.prefix+mode.String(), func(b *testing.B) {
				b.ReportAllocs()
				start := eng.Stats()
				for i := 0; i < b.N; i++ {
					eng.Step(occ)
				}
				st := eng.Stats()
				if auctions := st.AuctionsResolved - start.AuctionsResolved; auctions > 0 {
					b.ReportMetric(float64(st.NodesMaterialized-start.NodesMaterialized)/float64(auctions), "aggOps/auction")
				}
			})
		}
	}
}

// BenchmarkParallelScaling is the headline sweep for cost-aware parallel
// execution: the same total core budget spent as many small shards versus
// one big shard with a wide worker pool, on the broad-match-heavy
// high-overlap workload where sharing concentrates work into one deep plan.
// Each iteration is one round wave — every shard engine steps concurrently
// and the iteration ends when the slowest shard finishes, exactly the
// serving layer's round cadence. Sharding pays partitioning's price (the
// high-overlap plan fragments across shards, so total aggregation work
// rises), while intra-shard workers split the one shared plan along its
// cost-weighted frontier; the claim under test is that shards=1/workers=8
// beats shards=8/workers=1 on wall-clock. tools/benchjson derives a
// `speedup` metric for each workers=N variant against its workers=1
// sibling, so the claim is regressible via `make bench-compare`. Runs on a
// single core measure scheduling overhead rather than speedup; the gate
// compares like against like because BENCH_core.json is recorded on the
// same machine.
func BenchmarkParallelScaling(b *testing.B) {
	wcfg := workload.HighOverlapConfig()
	wcfg.NumAdvertisers = 1000
	wcfg.NumPhrases = 32
	wcfg.NumTopics = 6
	// Inexhaustible budgets keep rounds identical so ns/op does not depend
	// on iteration count (same reasoning as BenchmarkRoundResolution).
	wcfg.MinBudget = 1e6
	wcfg.MaxBudget = 2e6
	configs := []struct{ shards, workers int }{
		{1, 1}, // sequential baseline: speedup denominators for workers=N
		{8, 1}, // all parallelism between shards
		{4, 2},
		{2, 4},
		{1, 8}, // all parallelism inside one shard's plan
	}
	for _, c := range configs {
		b.Run(fmt.Sprintf("shards=%d/workers=%d", c.shards, c.workers), func(b *testing.B) {
			w := workload.Generate(wcfg)
			assign, err := shard.HashRouter{}.Assign(w, c.shards)
			if err != nil {
				b.Fatal(err)
			}
			parts, _, err := workload.Partition(w, assign, c.shards)
			if err != nil {
				b.Fatal(err)
			}
			engines := make([]*core.Engine, c.shards)
			occs := make([][]bool, c.shards)
			for sh, pw := range parts {
				ecfg := core.DefaultConfig()
				ecfg.Policy = core.Naive
				ecfg.Workers = c.workers
				eng, err := core.New(pw, ecfg)
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				engines[sh] = eng
				occ := make([]bool, len(pw.Interests))
				for q := range occ {
					occ[q] = q%2 == 0
				}
				occs[sh] = occ
			}
			var wg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(engines) == 1 {
					engines[0].Step(occs[0])
					continue
				}
				wg.Add(len(engines))
				for sh := range engines {
					go func(sh int) {
						defer wg.Done()
						engines[sh].Step(occs[sh])
					}(sh)
				}
				wg.Wait()
			}
			b.StopTimer()
			var nodes, rounds int
			for _, eng := range engines {
				st := eng.Stats()
				nodes += st.NodesMaterialized
				rounds = st.Rounds
			}
			if rounds > 0 {
				b.ReportMetric(float64(nodes)/float64(rounds), "aggOps/wave")
			}
		})
	}
}

// BenchmarkIncrementalRounds measures the cross-round incremental cache in
// the two regimes it targets: sparse occurrence (each round demands a small,
// rotating subset of phrases, so most of the needed cone was computed in a
// recent round) and sparse budget change (every phrase occurs but bids are
// static, so only advertisers whose remaining budget moved below their bid
// invalidate their cones). Metrics report recomputed vs cached nodes per
// round; with the cache off, cached/round is zero by construction.
func BenchmarkIncrementalRounds(b *testing.B) {
	regimes := []struct {
		name      string
		sparseOcc bool
	}{
		{"sparseOccurrence", true},
		{"sparseBudgetChange", false},
	}
	for _, rg := range regimes {
		for _, incremental := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/cache=%v", rg.name, incremental), func(b *testing.B) {
				wcfg := workload.DefaultConfig()
				wcfg.NumAdvertisers = 1000
				wcfg.NumPhrases = 32
				wcfg.NumTopics = 6
				w := workload.Generate(wcfg)
				ecfg := core.DefaultConfig()
				ecfg.Policy = core.Naive
				ecfg.IncrementalCache = incremental
				// A shared ledger topped back up every refillEvery rounds
				// makes the budget-crossing sequence periodic. Without
				// refills budgets drain monotonically, rounds get cheaper as
				// bids zero out, and ns/op depends on how many iterations ran
				// before it — baselines recorded at different -benchtime
				// would not be comparable.
				budgets := make([]float64, wcfg.NumAdvertisers)
				for i := range budgets {
					budgets[i] = w.Advertisers[i].Budget
				}
				ledger := budget.NewLedger(budgets)
				ecfg.Ledger = ledger
				const refillEvery = 512
				eng, err := core.New(w, ecfg)
				if err != nil {
					b.Fatal(err)
				}
				var occs [][]bool
				if rg.sparseOcc {
					// Eight rotating vectors of 4 phrases each.
					for s := 0; s < 8; s++ {
						occ := make([]bool, wcfg.NumPhrases)
						for j := 0; j < 4; j++ {
							occ[(s*4+j)%wcfg.NumPhrases] = true
						}
						occs = append(occs, occ)
					}
				} else {
					occ := make([]bool, wcfg.NumPhrases)
					for q := range occ {
						occ[q] = true
					}
					occs = [][]bool{occ}
				}
				step := func() {
					if r := eng.Round(); r%refillEvery == 0 && r > 0 {
						for i := range budgets {
							ledger.Deposit(i, budgets[i]-ledger.Remaining(i))
						}
					}
					eng.Step(occs[eng.Round()%len(occs)])
				}
				for i := 0; i < 50; i++ {
					step()
				}
				b.ReportAllocs()
				b.ResetTimer()
				start := eng.Stats()
				for i := 0; i < b.N; i++ {
					step()
				}
				st := eng.Stats()
				rounds := float64(st.Rounds - start.Rounds)
				b.ReportMetric(float64(st.NodesMaterialized-start.NodesMaterialized)/rounds, "recomputed/round")
				b.ReportMetric(float64(st.NodesCached-start.NodesCached)/rounds, "cached/round")
			})
		}
	}
}

// BenchmarkReplanSwap measures the adaptive-replanning claim: after traffic
// drift (arrival rates rotated by half the phrase universe), hot-swapping a
// plan rebuilt for the observed rates recovers the per-round cost of a plan
// built for those rates natively. Three variants run identical drifted
// traffic: stale keeps the pre-drift plan (pays the mismatch), swapped
// installs the rebuilt plan via Engine.InstallPlan, native built its plan
// from the drifted rates in the first place. swapped's ns/op and
// nodes/round should track native within a few percent (they execute the
// same deterministic heuristic's output); the install variant measures the
// round-boundary stall of the swap itself.
func BenchmarkReplanSwap(b *testing.B) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 1000
	wcfg.NumPhrases = 48
	wcfg.NumTopics = 6
	// Inexhaustible budgets keep rounds identical so ns/op does not depend
	// on iteration count (same reasoning as BenchmarkRoundResolution).
	wcfg.MinBudget = 1e6
	wcfg.MaxBudget = 2e6

	rotated := func(rates []float64) []float64 {
		n := len(rates)
		out := make([]float64, n)
		for q := range out {
			out[q] = rates[(q+n/2)%n]
		}
		return out
	}
	// All variants consume the same drifted occurrence vectors.
	sampleOccs := func(rates []float64) [][]bool {
		rng := rand.New(rand.NewSource(7))
		occs := make([][]bool, 64)
		for i := range occs {
			occ := make([]bool, len(rates))
			for q := range occ {
				occ[q] = rng.Float64() < rates[q]
			}
			occs[i] = occ
		}
		return occs
	}

	for _, variant := range []string{"stale", "swapped", "native"} {
		b.Run(variant, func(b *testing.B) {
			w := workload.Generate(wcfg)
			drifted := rotated(w.Rates)
			if variant == "native" {
				if err := w.SetRates(drifted); err != nil {
					b.Fatal(err)
				}
			}
			ecfg := core.DefaultConfig()
			ecfg.Policy = core.Naive
			eng, err := core.New(w, ecfg)
			if err != nil {
				b.Fatal(err)
			}
			if variant == "swapped" {
				inst, p, prog, err := sharedagg.BuildCompiledWithRates(eng.PlanInstance(), drifted)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.InstallPlan(inst, p, prog); err != nil {
					b.Fatal(err)
				}
			}
			occs := sampleOccs(drifted)
			for i := 0; i < 50; i++ {
				eng.Step(occs[eng.Round()%len(occs)])
			}
			b.ReportAllocs()
			b.ResetTimer()
			start := eng.Stats()
			for i := 0; i < b.N; i++ {
				eng.Step(occs[eng.Round()%len(occs)])
			}
			st := eng.Stats()
			b.ReportMetric(float64(st.NodesMaterialized-start.NodesMaterialized)/float64(b.N), "nodes/round")
		})
	}

	b.Run("install", func(b *testing.B) {
		w := workload.Generate(wcfg)
		eng, err := core.New(w, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		original := append([]float64(nil), w.Rates...)
		var builds [2]struct {
			inst *plan.Instance
			p    *plan.Plan
			prog *plan.Program
		}
		for i, rates := range [][]float64{rotated(original), original} {
			inst, p, prog, err := sharedagg.BuildCompiledWithRates(eng.PlanInstance(), rates)
			if err != nil {
				b.Fatal(err)
			}
			builds[i] = struct {
				inst *plan.Instance
				p    *plan.Plan
				prog *plan.Program
			}{inst, p, prog}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bd := builds[i%2]
			if err := eng.InstallPlan(bd.inst, bd.p, bd.prog); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSteadyStateStep pins the zero-allocation claim in benchmark form:
// after warm-up, a shared-mode engine round allocates nothing, with and
// without the incremental cache (allocs/op must read 0 in both).
func BenchmarkSteadyStateStep(b *testing.B) {
	for _, incremental := range []bool{false, true} {
		b.Run(fmt.Sprintf("cache=%v", incremental), func(b *testing.B) {
			wcfg := workload.DefaultConfig()
			wcfg.NumAdvertisers = 1000
			wcfg.NumPhrases = 32
			wcfg.NumTopics = 6
			wcfg.MinBudget = 1e6 // never exhausts: steady display load
			wcfg.MaxBudget = 2e6
			w := workload.Generate(wcfg)
			ecfg := core.DefaultConfig()
			ecfg.Policy = core.Naive
			ecfg.IncrementalCache = incremental
			eng, err := core.New(w, ecfg)
			if err != nil {
				b.Fatal(err)
			}
			occ := make([]bool, len(w.Interests))
			for q := range occ {
				occ[q] = q%2 == 0
			}
			for i := 0; i < 300; i++ {
				eng.Step(occ)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step(occ)
			}
		})
	}
}

// BenchmarkPacedSteadyStateStep measures the pacing subsystem's per-round
// overhead on the same steady state as BenchmarkSteadyStateStep: ledger,
// pacing controller (synced every round) and a live lifecycle refresh
// schedule attached. allocs/op must still read 0 — the comparison against
// BenchmarkSteadyStateStep/cache=true is the controller's marginal cost.
func BenchmarkPacedSteadyStateStep(b *testing.B) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 1000
	wcfg.NumPhrases = 32
	wcfg.NumTopics = 6
	wcfg.MinBudget = 1e6 // never exhausts: steady display load
	wcfg.MaxBudget = 2e6
	w := workload.Generate(wcfg)

	budgets := make([]float64, len(w.Advertisers))
	for i, a := range w.Advertisers {
		budgets[i] = a.Budget
	}
	ledger := budget.NewLedger(budgets)
	// Refresh events keep the lifecycle replay path live through the
	// measured window, as in the zero-alloc test.
	events := make([]workload.LifecycleEvent, 0, 1<<17)
	for r := 0; r < 1<<18; r += 2 {
		events = append(events, workload.LifecycleEvent{
			Round: r, Kind: workload.LifecycleRefresh, Advertiser: r % len(budgets),
		})
	}
	lc, err := workload.NewLifecycle(len(budgets), events)
	if err != nil {
		b.Fatal(err)
	}
	pcfg := budget.DefaultPacerConfig()
	pcfg.Horizon = 1e6 // target curve binds: the controller actively throttles
	pacer, err := budget.NewPacer(ledger, budgets, pcfg, lc)
	if err != nil {
		b.Fatal(err)
	}

	ecfg := core.DefaultConfig()
	ecfg.Policy = core.Naive
	ecfg.IncrementalCache = true
	ecfg.Ledger = ledger
	ecfg.Pacer = pacer
	ecfg.Lifecycle = lc
	eng, err := core.New(w, ecfg)
	if err != nil {
		b.Fatal(err)
	}
	occ := make([]bool, len(w.Interests))
	for q := range occ {
		occ[q] = q%2 == 0
	}
	for i := 0; i < 300; i++ {
		eng.Step(occ)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(occ)
	}
	b.StopTimer()
	if m := pacer.Metrics(); m.Throttled == 0 {
		b.Fatal("pacing never engaged during the benchmark")
	}
}

// BenchmarkConcurrentRounds is ablation A2: sequential vs parallel shared-
// plan execution in the engine.
func BenchmarkConcurrentRounds(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		wcfg := workload.DefaultConfig()
		wcfg.NumAdvertisers = 1000
		wcfg.NumPhrases = 32
		wcfg.NumTopics = 6
		w := workload.Generate(wcfg)
		ecfg := core.DefaultConfig()
		ecfg.Workers = workers
		ecfg.Policy = core.Naive
		eng, err := core.New(w, ecfg)
		if err != nil {
			b.Fatal(err)
		}
		occ := make([]bool, len(w.Interests))
		for q := range occ {
			occ[q] = true
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Step(occ)
			}
		})
	}
}

// BenchmarkSharedSortVsIndependent regenerates Section III's claim: shared
// on-demand merge operators cut per-round pulls when phrases overlap and
// only the top of each stream is consumed.
func BenchmarkSharedSortVsIndependent(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 1024
	interests := make([]AdvertiserSet, 8)
	rates := make([]float64, 8)
	for q := range interests {
		s := NewAdvertiserSet(n)
		for a := 0; a < 512; a++ {
			s.Add(a) // shared half
		}
		for a := 512; a < n; a++ {
			if rng.Intn(4) == 0 {
				s.Add(a)
			}
		}
		interests[q] = s
		rates[q] = 0.9
	}
	bids := make([]float64, n)
	for i := range bids {
		bids[i] = rng.Float64()
	}
	for _, cfg := range []struct {
		name string
		opts sharedsort.Options
	}{
		{"shared", sharedsort.Options{}},
		{"independent", sharedsort.Options{DisableSharing: true}},
	} {
		p, err := sharedsort.Build(n, interests, rates, cfg.opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			pulls := 0
			for i := 0; i < b.N; i++ {
				p.BeginRound(bids)
				for q := range interests {
					s := p.Stream(q)
					for j := 0; j < 20; j++ {
						s.Next()
					}
				}
				pulls = p.RoundPulls()
			}
			b.ReportMetric(float64(pulls), "pulls/round")
			b.ReportMetric(p.ExpectedFullSortCost(), "fullSortE")
		})
	}
}

// BenchmarkThresholdAlgorithm measures TA's early termination: sorted
// accesses per top-k query on correlated vs independent attribute orders.
func BenchmarkThresholdAlgorithm(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 10000
	bids := make([]float64, n)
	quals := make([]float64, n)
	for i := 0; i < n; i++ {
		bids[i] = rng.Float64() * 10
		quals[i] = rng.Float64()
	}
	mkSource := func(val func(int) float64) *ta.SliceSource {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		// Selection-free sort by val desc.
		src := &ta.SliceSource{IDs: ids, Vals: make([]float64, n)}
		sortIdx(src.IDs, val)
		for i, id := range src.IDs {
			src.Vals[i] = val(id)
		}
		return src
	}
	byBid := mkSource(func(i int) float64 { return bids[i] })
	byQual := mkSource(func(i int) float64 { return quals[i] })
	score := func(i int) float64 { return bids[i] * quals[i] }
	b.ReportAllocs()
	b.ResetTimer()
	var accesses int
	for i := 0; i < b.N; i++ {
		bb, qq := *byBid, *byQual
		_, st := ta.TopK(10, &bb, &qq, score)
		accesses = st.SortedAccesses
	}
	b.ReportMetric(float64(accesses), "sortedAccesses")
	b.ReportMetric(float64(2*n), "fullScanAccesses")
}

// BenchmarkHoeffdingCompareVsExact regenerates Section IV-B: resolving a
// batch of throttled-bid comparisons (l = 18 outstanding ads each) by
// anytime bound refinement versus computing every bid exactly by O(2^l)
// enumeration. Typical pairs separate after a handful of refinements; only
// near-ties fall back to exact evaluation.
func BenchmarkHoeffdingCompareVsExact(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const pairs = 20
	type side struct {
		bid, budgetLeft float64
		ads             []budget.OutstandingAd
	}
	mk := func() side {
		ads := make([]budget.OutstandingAd, 18)
		for i := range ads {
			ads[i] = budget.OutstandingAd{Price: 0.5 + rng.Float64()*4, CTR: rng.Float64()}
		}
		return side{bid: rng.Float64() * 4, budgetLeft: rng.Float64() * 30, ads: ads}
	}
	var left, right [pairs]side
	for i := 0; i < pairs; i++ {
		left[i], right[i] = mk(), mk()
	}
	b.Run("bounds", func(b *testing.B) {
		b.ReportAllocs()
		var refinements int
		for i := 0; i < b.N; i++ {
			refinements = 0
			for p := 0; p < pairs; p++ {
				x := budget.MustThrottler(0, left[p].bid, left[p].budgetLeft, 2, left[p].ads)
				y := budget.MustThrottler(1, right[p].bid, right[p].budgetLeft, 2, right[p].ads)
				_, st := budget.Compare(x, y)
				refinements += st.Refinements
			}
		}
		b.ReportMetric(float64(refinements)/pairs, "refinements/pair")
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for p := 0; p < pairs; p++ {
				va := budget.ExactThrottledBid(left[p].bid, left[p].budgetLeft, 2, left[p].ads)
				vb := budget.ExactThrottledBid(right[p].bid, right[p].budgetLeft, 2, right[p].ads)
				_ = va < vb
			}
		}
	})
}

// BenchmarkTopKUncertain measures lazy top-k selection over uncertain
// throttled bids (Section IV-B + the multisimulation-style scheduling).
func BenchmarkTopKUncertain(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	build := func() []*budget.Throttler {
		ts := make([]*budget.Throttler, 50)
		for i := range ts {
			ads := make([]budget.OutstandingAd, 12)
			for j := range ads {
				ads[j] = budget.OutstandingAd{Price: 0.5 + rng.Float64()*3, CTR: rng.Float64()}
			}
			ts[i] = budget.MustThrottler(i, rng.Float64()*4, 5+rng.Float64()*15, 2, ads)
		}
		return ts
	}
	b.ReportAllocs()
	var refinements int
	for i := 0; i < b.N; i++ {
		res := budget.TopKUncertain(8, build())
		refinements = res.Refinements
	}
	b.ReportMetric(float64(refinements), "refinements")
}

// BenchmarkGamingScenario regenerates the Section-IV gaming numbers,
// reporting mean over-delivery per policy as the metric.
func BenchmarkGamingScenario(b *testing.B) {
	for _, policy := range []core.BudgetPolicy{core.Naive, core.Throttled} {
		b.Run(policy.String(), func(b *testing.B) {
			var over float64
			for i := 0; i < b.N; i++ {
				res, err := core.RunGamingExperiment(9, 40, 10, policy)
				if err != nil {
					b.Fatal(err)
				}
				over = res.OverDelivery()
			}
			b.ReportMetric(over, "overDelivery")
		})
	}
}

// BenchmarkNonSeparableWD is ablation A3: k²-pruned Hungarian matching vs
// exhaustive matching on non-separable CTR matrices.
func BenchmarkNonSeparableWD(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	n, k := 600, 8
	bids := make([]float64, n)
	ctr := make([][]float64, n)
	for i := range ctr {
		bids[i] = rng.Float64() * 10
		ctr[i] = make([]float64, k)
		for j := range ctr[i] {
			if rng.Intn(4) != 0 {
				ctr[i][j] = rng.Float64() * 0.5
			}
		}
	}
	b.Run("pruned", func(b *testing.B) {
		b.ReportAllocs()
		var cands int
		for i := 0; i < b.N; i++ {
			cands = nonsep.Solve(bids, ctr).Candidates
		}
		b.ReportMetric(float64(cands), "candidates")
	})
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nonsep.SolveExhaustive(bids, ctr)
		}
	})
}

// BenchmarkWinnerDeterminationSeparable measures the paper's baseline: the
// linear-scan top-k winner determination for a single auction.
func BenchmarkWinnerDeterminationSeparable(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1000, 100000} {
		advertisers := make([]Advertiser, n)
		for i := range advertisers {
			advertisers[i] = Advertiser{ID: i, Bid: rng.Float64() * 10, Quality: 0.5 + rng.Float64()}
		}
		d := []float64{0.30, 0.22, 0.15, 0.11, 0.08, 0.05, 0.03, 0.02}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SolveSeparable(advertisers, d)
			}
		})
	}
}

// BenchmarkSortEngineRound measures the Section III end-to-end pipeline:
// shared merge-sort + threshold algorithm per occurring phrase, reporting
// TA sorted accesses per auction.
func BenchmarkSortEngineRound(b *testing.B) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 1000
	wcfg.NumPhrases = 24
	wcfg.PerPhraseQuality = true
	w := workload.Generate(wcfg)
	eng, err := core.NewSortEngine(w, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	occ := make([]bool, len(w.Interests))
	for q := range occ {
		occ[q] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := eng.Stats()
	for i := 0; i < b.N; i++ {
		eng.Step(occ)
	}
	st := eng.Stats()
	if auctions := st.AuctionsResolved - start.AuctionsResolved; auctions > 0 {
		b.ReportMetric(float64(st.SortedAccesses-start.SortedAccesses)/float64(auctions), "taAccesses/auction")
		b.ReportMetric(float64(st.MergePulls-start.MergePulls)/float64(st.Rounds-start.Rounds), "mergePulls/round")
	}
}

// BenchmarkSortPlanBuild measures the offline shared merge-sort plan
// construction itself (fragment pre-merge + pairwise greedy).
func BenchmarkSortPlanBuild(b *testing.B) {
	for _, n := range []int{256, 1024} {
		wcfg := workload.DefaultConfig()
		wcfg.NumAdvertisers = n
		wcfg.NumPhrases = 24
		wcfg.PerPhraseQuality = true
		w := workload.Generate(wcfg)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sharedsort.Build(n, w.Interests, w.Rates, sharedsort.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyticsEvaluate measures the Section VII analytics service:
// one shared-plan pass answering every registered bidding-program query.
func BenchmarkAnalyticsEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const phrases = 64
	svc := analytics.New(phrases)
	for p := 0; p < 32; p++ {
		set := bitset.New(phrases)
		core20 := 20
		for q := 0; q < core20; q++ {
			set.Add(q)
		}
		for q := core20; q < phrases; q++ {
			if rng.Intn(4) == 0 {
				set.Add(q)
			}
		}
		if _, err := svc.Register(p, set); err != nil {
			b.Fatal(err)
		}
	}
	if err := svc.Build(); err != nil {
		b.Fatal(err)
	}
	shared, naive, _ := svc.PlanCost()
	stats := make([]analytics.PhraseStats, phrases)
	for q := range stats {
		stats[q] = analytics.PhraseStats{MaxBid: rng.Float64() * 5, SumBids: rng.Float64() * 40, Bids: 8, Searches: 50}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svc.Evaluate(stats); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(shared), "sharedNodes")
	b.ReportMetric(float64(naive), "naiveNodes")
}

// BenchmarkTopKMerge measures the ⊕ primitive itself.
func BenchmarkTopKMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	mk := func() *topk.List {
		l := topk.New(10)
		for i := 0; i < 20; i++ {
			l.Push(topk.Entry{ID: rng.Intn(10000), Score: rng.Float64()})
		}
		return l
	}
	x, y := mk(), mk()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topk.Merge(x, y)
	}
}

// BenchmarkServerThroughput measures the serving tentpole end to end: many
// concurrent submitters pushing raw queries through admission, batching, and
// shared winner determination. Rounds close on the size threshold long before
// the ticker under this load, so throughput is governed by Step time over the
// batch — the paper's sharing argument in serving form. Reported metrics:
// sustained queries/sec over the timed region and the p95 Submit-to-answer
// latency in milliseconds (which must stay bounded by ~the round interval,
// far inside the §I interactivity tolerances).
func BenchmarkServerThroughput(b *testing.B) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 400
	wcfg.NumPhrases = 24
	wcfg.MinBudget = 1e6 // steady display load, no budget churn
	wcfg.MaxBudget = 2e6
	w := workload.Generate(wcfg)
	cfg := server.DefaultConfig()
	cfg.RoundInterval = time.Millisecond
	cfg.MaxBatch = 1024
	cfg.QueueDepth = 1 << 14
	s, err := server.New(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	queries := w.PhraseNames
	// Winner determination is shared per round, so its cost is independent
	// of batch size; more concurrent submitters amortize each round over
	// more answered queries. 256×GOMAXPROCS keeps even a single-core runner
	// well past the acceptance floor.
	b.SetParallelism(256)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			// Shed responses are answered requests too; anything else fails.
			if _, err := s.Submit(ctx, queries[i%len(queries)]); err != nil && !errors.Is(err, ErrOverloaded) {
				b.Error(err)
				return
			}
			i++
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()
	m := s.Metrics()
	if sec := elapsed.Seconds(); sec > 0 {
		b.ReportMetric(float64(m.Answered)/sec, "queries/sec")
	}
	b.ReportMetric(m.TotalLatency.P95()*1e3, "p95ms")
	b.ReportMetric(float64(m.Shed), "shed")
}

// BenchmarkHTTPThroughput pushes the identical serving load through the
// network tier instead of in-process Submit calls: loopback TCP, JSON
// bodies, keep-alive connections, the full handler path. Held next to
// BenchmarkServerThroughput it quantifies what the HTTP/JSON edge costs —
// the answered-rate gap is serialization + kernel round trips, and the
// client-measured p95 adds the network wait on top of the serving p95.
func BenchmarkHTTPThroughput(b *testing.B) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 400
	wcfg.NumPhrases = 24
	wcfg.MinBudget = 1e6
	wcfg.MaxBudget = 2e6
	w := workload.Generate(wcfg)
	cfg := server.DefaultConfig()
	cfg.RoundInterval = time.Millisecond
	cfg.MaxBatch = 1024
	cfg.QueueDepth = 1 << 14
	s, err := server.New(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ns := netserve.New(s, nil, netserve.Config{DefaultTimeout: 5 * time.Second})
	if err := ns.Start(); err != nil {
		b.Fatal(err)
	}
	defer ns.Close()

	url := "http://" + ns.Addr() + "/v1/query"
	transport := &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: 10 * time.Second}

	// Pre-render the request bodies; the benchmark measures the edge, not
	// the client's JSON encoder.
	bodies := make([][]byte, len(w.PhraseNames))
	for i, name := range w.PhraseNames {
		bodies[i] = []byte(fmt.Sprintf(`{"query":%q}`, name))
	}

	// Client-side end-to-end latency, merged from per-goroutine tallies so
	// the hot loop never shares a histogram.
	var tallyMu sync.Mutex
	e2e := stats.NewHistogram(0, 0.25, 256)

	b.SetParallelism(64)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		local := stats.NewHistogram(0, 0.25, 256)
		i := 0
		for pb.Next() {
			req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				b.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			t0 := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// 429 (shed under pressure) is an answered request; anything
			// else unexpected fails the benchmark.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
			local.Add(time.Since(t0).Seconds())
			i++
		}
		tallyMu.Lock()
		e2e.Merge(local)
		tallyMu.Unlock()
	})
	elapsed := time.Since(start)
	b.StopTimer()
	m := s.Metrics()
	if sec := elapsed.Seconds(); sec > 0 {
		b.ReportMetric(float64(m.Answered)/sec, "queries/sec")
	}
	b.ReportMetric(e2e.Quantile(0.95)*1e3, "p95ms")
	b.ReportMetric(m.TotalLatency.P95()*1e3, "srv_p95ms")
	b.ReportMetric(float64(m.Shed), "shed")
}

// BenchmarkBinaryThroughput pushes the identical serving load through the
// binary tier: loopback TCP, length-prefixed frames, request-ID
// multiplexing over a small pool of connections. Held next to
// BenchmarkHTTPThroughput it quantifies what dropping HTTP/JSON buys —
// same backend, same workload, same parallelism; the only variable is the
// wire protocol. Held next to BenchmarkServerThroughput it shows how close
// a network edge can get to in-process Submit.
func BenchmarkBinaryThroughput(b *testing.B) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 400
	wcfg.NumPhrases = 24
	wcfg.MinBudget = 1e6
	wcfg.MaxBudget = 2e6
	w := workload.Generate(wcfg)
	cfg := server.DefaultConfig()
	cfg.RoundInterval = time.Millisecond
	cfg.MaxBatch = 1024
	cfg.QueueDepth = 1 << 14
	s, err := server.New(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	bs := binproto.New(s, binproto.Config{DefaultTimeout: 5 * time.Second, MaxInFlight: 1 << 14})
	if err := bs.Start(); err != nil {
		b.Fatal(err)
	}
	defer bs.Close()

	// A small pool of multiplexed connections: each carries many requests
	// in flight, mirroring how a real front-end fans onto a backend.
	const conns = 8
	pool := make([]*binproto.Client, conns)
	for i := range pool {
		c, err := binproto.Dial(bs.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		pool[i] = c
	}
	var nextConn atomic.Uint64

	queries := w.PhraseNames
	ctx := context.Background()

	// Client-side end-to-end latency, merged from per-goroutine tallies so
	// the hot loop never shares a histogram.
	var tallyMu sync.Mutex
	e2e := stats.NewHistogram(0, 0.25, 256)

	// Deeper parallelism than the HTTP benchmark's 64: multiplexing is the
	// protocol's whole point — hundreds of requests in flight still cost
	// eight sockets, and every read/write syscall carries a coalesced run
	// of frames. HTTP would pay a socket (and its buffers) per request.
	b.SetParallelism(1024)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		c := pool[nextConn.Add(1)%conns]
		local := stats.NewHistogram(0, 0.25, 256)
		i := 0
		for pb.Next() {
			t0 := time.Now()
			_, err := c.Submit(ctx, queries[i%len(queries)])
			// Shed under pressure is an answered request; anything else
			// unexpected fails the benchmark.
			if err != nil && !errors.Is(err, ErrOverloaded) {
				b.Error(err)
				return
			}
			local.Add(time.Since(t0).Seconds())
			i++
		}
		tallyMu.Lock()
		e2e.Merge(local)
		tallyMu.Unlock()
	})
	elapsed := time.Since(start)
	b.StopTimer()
	m := s.Metrics()
	if sec := elapsed.Seconds(); sec > 0 {
		b.ReportMetric(float64(m.Answered)/sec, "queries/sec")
	}
	b.ReportMetric(e2e.Quantile(0.95)*1e3, "p95ms")
	b.ReportMetric(m.TotalLatency.P95()*1e3, "srv_p95ms")
	b.ReportMetric(float64(m.Shed), "shed")
}

// BenchmarkShardedThroughput sweeps the shard count over the same serving
// load, measuring how partitioning the phrase universe scales winner
// determination. The workload is sized so the per-round fixed cost — the
// throttled policy's outstanding-ad scan over every advertiser active in
// the round — dominates per-query work; each shard pays only its
// partition's share of that scan, so sharding amortizes the fixed cost
// into smaller independent rounds and throughput rises even on a single
// core (and further with real cores). Traffic is shard-local by
// construction: every query names one phrase, and each phrase lives on
// exactly one shard.
func BenchmarkShardedThroughput(b *testing.B) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 2000
	wcfg.NumPhrases = 64
	wcfg.MinBudget = 1e6 // steady display load, no budget churn
	wcfg.MaxBudget = 2e6
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			w := workload.Generate(wcfg)
			s, err := NewShardedServer(w,
				WithShards(shards),
				WithRoundInterval(time.Millisecond),
				WithMaxBatch(256),
				WithQueueDepth(1<<14))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			queries := w.PhraseNames
			// Enough concurrent submitters to keep every shard's queue at
			// the batch threshold: rounds then close on size, not the
			// ticker, and each shard's fixed per-round cost amortizes over
			// full batches.
			b.SetParallelism(4096)
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					// Shed responses are answered requests too; anything
					// else fails.
					if _, err := s.Submit(ctx, queries[i%len(queries)]); err != nil && !errors.Is(err, ErrOverloaded) {
						b.Error(err)
						return
					}
					i++
				}
			})
			elapsed := time.Since(start)
			b.StopTimer()
			m := s.Metrics()
			s.Close()
			if sec := elapsed.Seconds(); sec > 0 {
				b.ReportMetric(float64(m.Answered)/sec, "queries/sec")
			}
			b.ReportMetric(m.TotalLatency.P95()*1e3, "p95ms")
			b.ReportMetric(float64(m.Shed), "shed")
		})
	}
}

// sortIdx sorts ids descending by val, ties by ascending id.
func sortIdx(ids []int, val func(int) float64) {
	sort.Slice(ids, func(a, b int) bool {
		va, vb := val(ids[a]), val(ids[b])
		if va != vb {
			return va > vb
		}
		return ids[a] < ids[b]
	})
}
