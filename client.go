package sharedwd

import (
	"context"
	"sync"

	"sharedwd/internal/binproto"
	"sharedwd/internal/netserve"
	"sharedwd/internal/serr"
	"sharedwd/internal/server"
)

// Backend is the canonical fleet-facing serving contract: one query
// submission, the batched form, a metrics snapshot, and drain-on-Close.
// Server and ShardedServer both satisfy it, and every transport — the
// in-process client, the HTTP tier, the binary tier — programs against it
// on both sides of the wire.
type Backend = server.Backend

// Client is the one query-submission surface across every transport. The
// three constructors — NewInprocClient, NewHTTPClient, NewBinaryClient —
// return interchangeable implementations: identical results for identical
// backends, and one error taxonomy (errors.Is against ErrNoAuction,
// ErrOverloaded, ErrServerClosed, and the context errors works the same
// over a function call, an HTTP round trip, or a multiplexed binary
// frame). Load generators and applications written against Client switch
// transports without code changes — cmd/loadgen's -proto flag is exactly
// that switch.
//
// All implementations are safe for concurrent use. Close releases the
// client's resources; calls after Close return ErrServerClosed. Only the
// in-process client owns its backend — closing it drains the fleet, while
// closing a network client leaves the remote server running.
type Client interface {
	// Submit resolves one raw query through the fleet: matched to a bid
	// phrase, batched into that phrase's next round, answered with the
	// auction outcome.
	Submit(ctx context.Context, query string) (QueryResult, error)
	// SubmitBatch resolves many queries at once — the efficient path: one
	// admission pass (and, over the network, one round trip) for the whole
	// batch. Results always has len(queries); the error is nil or joins one
	// per-item failure, expandable with SplitBatchErrors.
	SubmitBatch(ctx context.Context, queries []string) ([]QueryResult, error)
	// Stats returns the fleet's merged metrics snapshot.
	Stats(ctx context.Context) (Metrics, error)
	// Close releases the client. Idempotent.
	Close() error
}

// SplitBatchErrors expands a SubmitBatch error into per-item errors
// (index-aligned, nil for succeeded items). A nil error yields n nils.
func SplitBatchErrors(err error, n int) []error { return serr.SplitBatch(err, n) }

// NewInprocClient wraps a backend (Server or ShardedServer) as a Client —
// the zero-transport baseline the network clients are measured against.
// The client owns the backend: Close drains and closes it.
func NewInprocClient(backend Backend) Client {
	return &inprocClient{backend: backend}
}

type inprocClient struct {
	backend   Backend
	closeOnce sync.Once
}

func (c *inprocClient) Submit(ctx context.Context, query string) (QueryResult, error) {
	return c.backend.Submit(ctx, query)
}

func (c *inprocClient) SubmitBatch(ctx context.Context, queries []string) ([]QueryResult, error) {
	return c.backend.SubmitBatch(ctx, queries)
}

func (c *inprocClient) Stats(context.Context) (Metrics, error) {
	return c.backend.Metrics(), nil
}

func (c *inprocClient) Close() error {
	c.closeOnce.Do(c.backend.Close)
	return nil
}

// NewHTTPClient returns a Client speaking the HTTP/JSON tier at addr
// (host:port, as reported by NetServer.Addr): POST /v1/query,
// POST /v1/query/batch, GET /v1/stats, with HTTP statuses mapped back
// onto the serving error taxonomy.
func NewHTTPClient(addr string) Client {
	return netserve.NewClient(addr)
}

// NewBinaryClient dials the binary tier at addr (host:port, as reported
// by NetServer.BinaryAddr) and returns a multiplexing Client: all calls
// share one socket, pipelined and completed out of order, with wire
// statuses mapped back onto the serving error taxonomy. Dialing is the
// only failure mode distinct from the other constructors' — the
// connection is established eagerly.
func NewBinaryClient(addr string) (Client, error) {
	return binproto.Dial(addr)
}

// The network clients satisfy Client structurally; pin it.
var (
	_ Client = (*netserve.Client)(nil)
	_ Client = (*binproto.Client)(nil)
)
