package sharedwd

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestClientConformance runs one suite of behavioural assertions against
// all three Client implementations — in-process, HTTP, and binary — and
// requires them to be observationally identical: the same auction outcome
// for the same query, the same error taxonomy under errors.Is, the same
// batch contract, and the same post-Close behaviour. The workload is
// pinned deterministic (no bid walk, budgets so large that clicks never
// bind them) so every round of every fleet computes the same slot
// assignment and strict equality across transports is meaningful.
func TestClientConformance(t *testing.T) {
	wcfg := DefaultWorkloadConfig()
	wcfg.NumAdvertisers = 150
	wcfg.NumPhrases = 12
	wcfg.MinBudget, wcfg.MaxBudget = 1e6, 2e6 // budgets never bind

	fleetOpts := []ServerOption{
		WithShards(2),
		WithRoundInterval(2 * time.Millisecond),
	}

	w := Must(GenerateWorkload(wcfg))
	ns, err := NewNetServer(w, append(fleetOpts,
		WithTransport(TransportHTTP, TransportBinary),
		WithRateLimit(100_000, 100_000))...)
	if err != nil {
		t.Fatalf("NewNetServer: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := ns.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// The in-process client gets its own fleet built from an identical
	// workload (same config, same seed): with the deterministic knobs above,
	// both fleets produce the same slot assignment for every phrase.
	inprocFleet, err := NewShardedServer(Must(GenerateWorkload(wcfg)), fleetOpts...)
	if err != nil {
		t.Fatalf("NewShardedServer: %v", err)
	}

	binc, err := NewBinaryClient(ns.BinaryAddr())
	if err != nil {
		t.Fatalf("NewBinaryClient: %v", err)
	}
	clients := []struct {
		name string
		c    Client
	}{
		{"inproc", NewInprocClient(inprocFleet)},
		{"http", NewHTTPClient(ns.Addr())},
		{"binary", binc},
	}

	phrase, phrase2 := w.PhraseNames[0], w.PhraseNames[1]
	slotsSeen := make(map[string][]any) // name → [slots(phrase), slots(phrase2)]

	for _, tc := range clients {
		tc := tc
		ok := t.Run(tc.name, func(t *testing.T) {
			c := tc.c
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()

			// A real phrase query resolves with a non-empty slot assignment.
			res, err := c.Submit(ctx, phrase)
			if err != nil {
				t.Fatalf("Submit(%q): %v", phrase, err)
			}
			if len(res.Slots) == 0 {
				t.Fatalf("Submit(%q): empty slot assignment", phrase)
			}

			// A junk query is ErrNoAuction on every transport.
			if _, err := c.Submit(ctx, "zzzz no such phrase zzzz"); !errors.Is(err, ErrNoAuction) {
				t.Fatalf("junk query error = %v, want ErrNoAuction", err)
			}

			// SubmitBatch keeps item order, reports per-item errors through
			// SplitBatchErrors, and its successes match single submission.
			queries := []string{phrase, "zzzz junk zzzz", phrase2}
			results, berr := c.SubmitBatch(ctx, queries)
			if len(results) != len(queries) {
				t.Fatalf("SubmitBatch returned %d results, want %d", len(results), len(queries))
			}
			if berr == nil {
				t.Fatal("SubmitBatch with a junk item returned nil error")
			}
			items := SplitBatchErrors(berr, len(queries))
			if items[0] != nil || items[2] != nil {
				t.Fatalf("batch item errors = [%v %v %v], want failures only at index 1", items[0], items[1], items[2])
			}
			if !errors.Is(items[1], ErrNoAuction) {
				t.Fatalf("batch junk item error = %v, want ErrNoAuction", items[1])
			}
			if !reflect.DeepEqual(results[0].Slots, res.Slots) {
				t.Fatalf("batch slots diverge from single submit:\n batch: %+v\nsingle: %+v", results[0].Slots, res.Slots)
			}
			slotsSeen[tc.name] = []any{res.Slots, results[2].Slots}

			// An already-expired context surfaces as context.DeadlineExceeded.
			dead, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			defer dcancel()
			if _, err := c.Submit(dead, phrase); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("expired-context error = %v, want context.DeadlineExceeded", err)
			}

			// Stats reflects the traffic this suite generated.
			m, err := c.Stats(ctx)
			if err != nil {
				t.Fatalf("Stats: %v", err)
			}
			if m.Answered < 3 {
				t.Fatalf("Stats answered = %d, want ≥ 3", m.Answered)
			}

			// Close is idempotent; calls after Close are ErrServerClosed.
			if err := c.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, err := c.Submit(context.Background(), phrase); !errors.Is(err, ErrServerClosed) {
				t.Fatalf("post-Close Submit error = %v, want ErrServerClosed", err)
			}
			if _, err := c.SubmitBatch(context.Background(), queries); !errors.Is(err, ErrServerClosed) {
				t.Fatalf("post-Close SubmitBatch error = %v, want ErrServerClosed", err)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
		})
		if !ok {
			t.Fatalf("%s client failed conformance; skipping cross-transport comparison", tc.name)
		}
	}

	// Every transport produced the same slot assignment for the same query.
	want := slotsSeen["inproc"]
	for _, tc := range clients[1:] {
		got := slotsSeen[tc.name]
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%s slots diverge from inproc for query %d:\n   got: %+v\n  want: %+v", tc.name, i, got[i], want[i])
			}
		}
	}
}
