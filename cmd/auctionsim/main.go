// Command auctionsim is the end-to-end round simulator: it generates a
// synthetic workload, builds the shared winner-determination plan, and
// processes rounds of simultaneous auctions with delayed clicks and budget
// accounting, reporting per-policy / per-mode comparisons as CSV.
//
// Usage:
//
//	auctionsim [-advertisers 2000] [-phrases 64] [-topics 8] [-slots 4]
//	           [-rounds 200] [-seed 1] [-policy throttled] [-sharing shared]
//	           [-pricing gsp] [-workers 1] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/pricing"
	"sharedwd/internal/workload"
)

func main() {
	advertisers := flag.Int("advertisers", 2000, "number of advertisers")
	phrases := flag.Int("phrases", 64, "number of bid phrases")
	topics := flag.Int("topics", 8, "number of interest topics")
	slots := flag.Int("slots", 4, "ad slots per result page")
	rounds := flag.Int("rounds", 200, "rounds to simulate")
	seed := flag.Int64("seed", 1, "random seed")
	policyName := flag.String("policy", "throttled", "budget policy: naive|throttled")
	sharingName := flag.String("sharing", "shared", "winner determination: shared|independent")
	pricingName := flag.String("pricing", "gsp", "pricing rule: first|gsp|vcg")
	workers := flag.Int("workers", 1, "plan-execution workers")
	cache := flag.Bool("cache", false, "carry plan results across rounds, re-materializing only dirty nodes")
	perturb := flag.Float64("perturb", 0.05, "per-round bid random-walk scale (0 = static bids)")
	csv := flag.Bool("csv", false, "emit per-round CSV instead of a summary")
	compare := flag.Bool("compare", false, "run every policy × sharing combination and print a comparison table")
	flag.Parse()

	if *compare {
		runComparison(*advertisers, *phrases, *topics, *slots, *rounds, *seed)
		return
	}

	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = *advertisers
	wcfg.NumPhrases = *phrases
	wcfg.NumTopics = *topics
	wcfg.Slots = *slots
	wcfg.Seed = *seed
	w := workload.Generate(wcfg)

	ecfg := core.DefaultConfig()
	ecfg.Workers = *workers
	ecfg.IncrementalCache = *cache
	switch *policyName {
	case "naive":
		ecfg.Policy = core.Naive
	case "throttled":
		ecfg.Policy = core.Throttled
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(2)
	}
	switch *sharingName {
	case "shared":
		ecfg.Sharing = core.SharedAggregation
	case "independent":
		ecfg.Sharing = core.Independent
	default:
		fmt.Fprintf(os.Stderr, "unknown sharing mode %q\n", *sharingName)
		os.Exit(2)
	}
	switch *pricingName {
	case "first":
		ecfg.Pricing = pricing.FirstPrice
	case "gsp":
		ecfg.Pricing = pricing.GSP
	case "vcg":
		ecfg.Pricing = pricing.VCG
	default:
		fmt.Fprintf(os.Stderr, "unknown pricing rule %q\n", *pricingName)
		os.Exit(2)
	}

	buildStart := time.Now()
	eng, err := core.New(w, ecfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer eng.Close()
	buildTime := time.Since(buildStart)

	if *csv {
		fmt.Println("round,auctions,materialized,clicks,revenue_cum")
	}
	simStart := time.Now()
	for r := 0; r < *rounds; r++ {
		rep := eng.Step(nil)
		w.PerturbBids(*perturb)
		if *csv {
			fmt.Printf("%d,%d,%d,%d,%.2f\n",
				rep.Round, len(rep.Auctions), rep.Materialized, len(rep.Clicks), eng.Stats().Revenue)
		}
	}
	eng.Drain()
	simTime := time.Since(simStart)

	st := eng.Stats()
	if !*csv {
		fmt.Printf("workload: %d advertisers, %d phrases, %d slots (seed %d)\n",
			*advertisers, *phrases, *slots, *seed)
		fmt.Printf("engine:   %s winner determination, %s budgets, %s pricing, %d workers\n",
			ecfg.Sharing, ecfg.Policy, ecfg.Pricing, ecfg.Workers)
		fmt.Printf("plan build time: %v\n", buildTime)
		fmt.Printf("simulated %d rounds in %v (%.2f ms/round)\n",
			*rounds, simTime, float64(simTime.Milliseconds())/float64(*rounds))
		fmt.Printf("auctions resolved:       %d\n", st.AuctionsResolved)
		fmt.Printf("aggregation ops:         %d (%.1f per auction)\n",
			st.NodesMaterialized, float64(st.NodesMaterialized)/float64(max(1, st.AuctionsResolved)))
		if ecfg.IncrementalCache {
			total := st.NodesMaterialized + st.NodesCached
			fmt.Printf("cache hits:              %d of %d node demands (%.1f%%)\n",
				st.NodesCached, total, 100*float64(st.NodesCached)/float64(max(1, total)))
		}
		fmt.Printf("ads displayed:           %d\n", st.AdsDisplayed)
		fmt.Printf("clicks charged/forgiven: %d / %d\n", st.ClicksCharged, st.ClicksForgiven)
		fmt.Printf("revenue:                 $%.2f (forgiven $%.2f)\n", st.Revenue, st.ForgivenValue)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runComparison simulates the same workload under every policy × sharing
// combination and prints a table of the metrics the paper's evaluation
// cares about.
func runComparison(advertisers, phrases, topics, slots, rounds int, seed int64) {
	fmt.Printf("# %d advertisers, %d phrases, %d slots, %d rounds (seed %d)\n",
		advertisers, phrases, slots, rounds, seed)
	fmt.Println("sharing\tpolicy\tms/round\taggOps/auction\trevenue\tforgiven\tclicks")
	for _, sharing := range []core.SharingMode{core.SharedAggregation, core.Independent} {
		for _, policy := range []core.BudgetPolicy{core.Naive, core.Throttled} {
			wcfg := workload.DefaultConfig()
			wcfg.NumAdvertisers = advertisers
			wcfg.NumPhrases = phrases
			wcfg.NumTopics = topics
			wcfg.Slots = slots
			wcfg.Seed = seed
			w := workload.Generate(wcfg)
			ecfg := core.DefaultConfig()
			ecfg.Sharing = sharing
			ecfg.Policy = policy
			eng, err := core.New(w, ecfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			start := time.Now()
			for r := 0; r < rounds; r++ {
				eng.Step(nil)
				w.PerturbBids(0.05)
			}
			eng.Drain()
			elapsed := time.Since(start)
			st := eng.Stats()
			fmt.Printf("%s\t%s\t%.2f\t%.1f\t$%.0f\t$%.0f\t%d\n",
				sharing, policy,
				float64(elapsed.Microseconds())/1000/float64(rounds),
				float64(st.NodesMaterialized)/float64(max(1, st.AuctionsResolved)),
				st.Revenue, st.ForgivenValue, st.ClicksCharged)
		}
	}
}
