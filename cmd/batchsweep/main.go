// Command batchsweep regenerates the introduction's round-granularity
// analysis: longer rounds batch more simultaneous auctions (more sharing,
// fewer aggregation ops per auction) at the price of higher user-perceived
// latency. The paper cites tolerance thresholds of 2.2 s (fine) and 3.6 s
// (too long); the sweep reports the longest tolerable round.
//
// Usage:
//
//	batchsweep [-vars 100] [-phrases 16] [-qps 2.5] [-sim 300] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"sharedwd/internal/batching"
	"sharedwd/internal/plan"
)

func main() {
	vars := flag.Int("vars", 100, "number of advertisers")
	phrases := flag.Int("phrases", 16, "number of bid phrases")
	qps := flag.Float64("qps", 2.5, "mean arrivals per second per phrase")
	sim := flag.Float64("sim", 300, "simulated seconds per round length")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	inst := plan.RandomCoinFlipInstance(rng, *vars, *phrases, 1)
	arrivals := make([]float64, *phrases)
	for q := range arrivals {
		// Zipf-ish decay around the configured mean.
		arrivals[q] = *qps * 2 / float64(q+1)
	}
	cfg := batching.Config{
		ArrivalsPerSecond: arrivals,
		Instance:          inst,
		WDSecondsPerOp:    1e-6,
		SimSeconds:        *sim,
		Seed:              *seed,
	}
	lengths := []float64{0.125, 0.25, 0.5, 2.0 / 3.0, 1.0, 2.0, 4.0, 8.0}
	points := batching.Sweep(cfg, lengths)

	fmt.Println("# Round batching: latency vs sharing tradeoff (paper §I)")
	fmt.Println("round_s\tmedian_lat_s\tp95_lat_s\tauctions/round\tops/auction\tsharing_saving%")
	for _, p := range points {
		fmt.Printf("%.3f\t%.3f\t%.3f\t%.2f\t%.1f\t%.1f\n",
			p.RoundSeconds, p.MedianLatencySeconds, p.P95LatencySeconds,
			p.AuctionsPerRound, p.OpsPerAuction, 100*p.SharingSaving)
	}
	if best := batching.MaxTolerableRound(points); best > 0 {
		fmt.Printf("# longest round with median latency ≤ %.1fs: %.3fs\n",
			batching.ToleranceMedian, best)
	} else {
		fmt.Println("# no swept round length meets the latency tolerance")
	}
}
