// Command fig4 regenerates Figure 4 of the paper: expected plan cost versus
// query probability for shared top-k aggregation plans, on the paper's
// construction of 10 top-k queries over 20 advertisers with coin-flip
// membership.
//
// For each query probability sr on the sweep it reports, averaged over
// independently drawn instances: the expected per-round cost (number of
// aggregation nodes materialized) of the unshared plan, the fragment-only
// plan (stage 1 of the heuristic), and the full shared plan — both from the
// closed-form cost model and from Monte-Carlo round simulation, which agree.
//
// Usage:
//
//	fig4 [-vars 20] [-queries 10] [-instances 64] [-seed 1] [-mc 0]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/stats"
	"sharedwd/internal/topk"
)

func main() {
	vars := flag.Int("vars", 20, "number of advertisers (paper: 20)")
	queries := flag.Int("queries", 10, "number of top-k queries (paper: 10)")
	instances := flag.Int("instances", 64, "random instances to average over")
	seed := flag.Int64("seed", 1, "random seed")
	mcRounds := flag.Int("mc", 0, "Monte-Carlo rounds per point (0 = closed form only)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	insts := make([]*plan.Instance, *instances)
	for i := range insts {
		insts[i] = plan.RandomCoinFlipInstance(rng, *vars, *queries, 1)
	}

	fmt.Printf("# Figure 4: expected plan cost vs query probability\n")
	fmt.Printf("# %d top-k queries over %d advertisers, coin-flip membership, %d instances\n",
		*queries, *vars, *instances)
	header := "sr\tnaive\tfragments\tshared\tsaving%"
	if *mcRounds > 0 {
		header += "\tshared_mc"
	}
	fmt.Println(header)

	for _, sr := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		var naive, frag, shared, sharedMC stats.Summary
		for _, base := range insts {
			inst := base.UniformRates(sr)
			n := plan.NaivePlan(inst)
			f := sharedagg.BuildFragmentOnly(inst)
			s := sharedagg.Build(inst)
			naive.Add(n.ExpectedCost())
			frag.Add(f.ExpectedCost())
			shared.Add(s.ExpectedCost())
			if *mcRounds > 0 {
				sharedMC.Add(simulate(rng, inst, s, *mcRounds))
			}
		}
		saving := 100 * (1 - shared.Mean()/naive.Mean())
		row := fmt.Sprintf("%.2f\t%.2f\t%.2f\t%.2f\t%.1f", sr, naive.Mean(), frag.Mean(), shared.Mean(), saving)
		if *mcRounds > 0 {
			row += fmt.Sprintf("\t%.2f", sharedMC.Mean())
		}
		fmt.Println(row)
	}
	if *mcRounds > 0 {
		fmt.Fprintln(os.Stderr, "shared_mc: Monte-Carlo validation of the closed-form cost model")
	}
}

// simulate executes the plan over Monte-Carlo rounds and returns the mean
// number of materialized aggregation nodes per round.
func simulate(rng *rand.Rand, inst *plan.Instance, p *plan.Plan, rounds int) float64 {
	occurring := make([]bool, len(inst.Queries))
	leaf := func(v int) *topk.List {
		return topk.FromEntries(4, topk.Entry{ID: v, Score: float64(v)})
	}
	total := 0
	for r := 0; r < rounds; r++ {
		for qi, q := range inst.Queries {
			occurring[qi] = rng.Float64() < q.Rate
		}
		_, mat := plan.Execute(p, leaf, topk.Merge, occurring)
		total += mat
	}
	return float64(total) / float64(rounds)
}
