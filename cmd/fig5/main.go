// Command fig5 regenerates Figure 5 of the paper: the complexity of finding
// an optimal shared aggregation plan as a function of the algebraic axioms
// the ⊕ operator satisfies (A1 associativity, A2 identity, A3 idempotence,
// A4 commutativity, A5 divisibility).
//
// For every row it prints the paper's claimed complexity class together
// with the result of an empirical check run by this library: the PTIME rows
// are realized by the hash-consing planner (verified correct against direct
// evaluation under a representative operator of exactly that axiom profile),
// the O(1) rows by the degenerate-algebra argument, and the NP-complete
// rows by solving the Theorem-2 set-cover reduction with the exponential
// exact planner.
//
// With -timing, it additionally demonstrates the exponential scaling of the
// exact planner against the polynomial heuristic on the semilattice row.
//
// Usage:
//
//	fig5 [-seed 1] [-timing]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	timing := flag.Bool("timing", false, "also time exact vs heuristic planning on the NP-hard row")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	fmt.Println("# Figure 5: complexity of optimal shared aggregation by axiom profile")
	fmt.Print(plan.FormatFig5(rng))

	if !*timing {
		return
	}
	fmt.Println("\n# Exact (exponential) vs heuristic (polynomial) planning, semilattice row")
	fmt.Println("vars\tqueries\texact_cost\texact_time\theuristic_cost\theuristic_time")
	for _, n := range []int{4, 5, 6, 7, 8} {
		inst := plan.RandomCoinFlipInstance(rng, n, 3, 1)
		start := time.Now()
		exact := plan.ExactMinTotalCost(inst)
		exactTime := time.Since(start)
		start = time.Now()
		h := sharedagg.Build(inst)
		heurTime := time.Since(start)
		fmt.Printf("%d\t%d\t%d\t%v\t%d\t%v\n",
			n, len(inst.Queries), exact.TotalCost(), exactTime, h.TotalCost(), heurTime)
	}
}
