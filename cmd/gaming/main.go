// Command gaming regenerates the Section-IV demonstration: how ignoring
// budget uncertainty lets a near-broke advertiser extract more click value
// than his budget can pay for, and how the paper's throttled bids stop it.
//
// Usage:
//
//	gaming [-seed 7] [-rounds 40] [-reps 50]
package main

import (
	"flag"
	"fmt"

	"sharedwd/internal/core"
)

func main() {
	seed := flag.Int64("seed", 7, "base random seed")
	rounds := flag.Int("rounds", 40, "auction rounds per run")
	reps := flag.Int("reps", 50, "independent runs to average")
	flag.Parse()

	fmt.Println("# Section IV gaming demonstration")
	fmt.Printf("# one high-volume phrase, gamer budget ≈ one click, %d rounds × %d runs\n", *rounds, *reps)
	fmt.Println("policy\twins/run\tclick_value\tbudget\tover_delivery\tpaid\tforgiven")
	for _, policy := range []core.BudgetPolicy{core.Naive, core.Throttled} {
		res, err := core.RunGamingExperiment(*seed, *rounds, *reps, policy)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s\t%d\t$%.2f\t$%.2f\t×%.2f\t$%.2f\t$%.2f\n",
			res.Policy, res.GamerWins, res.GamerClickValue, res.GamerBudget,
			res.OverDelivery(), res.GamerPaid, res.ForgivenValue)
	}
	fmt.Println("\n# over_delivery > 1 means the gamer received clicks the provider could not charge")
}
