// Command loadgen drives the serving tier through the one sharedwd.Client
// surface and reports end-to-end throughput and latency. The -proto flag
// is the whole point: the same load loop runs over the in-process backend
// (-proto inproc, the zero-transport baseline), the HTTP/JSON tier
// (-proto http), or the multiplexed binary tier (-proto binary) — so the
// three columns are directly comparable and the cost of each edge is the
// difference between them.
//
// With -addr it targets an already-running tier (e.g. servedemo -listen
// for http, servedemo -listen-binary for binary). Without it, loadgen
// self-hosts: it generates the same synthetic workload the benchmarks
// use, starts the requested transport on a random loopback port, and
// hammers it.
//
// Usage:
//
//	loadgen [-proto inproc|http|binary] [-addr host:port]
//	        [-clients 32] [-duration 10s] [-deadline 100ms] [-junk 0.05]
//	        [-batch 0] [-advertisers 2000] [-phrases 64] [-seed 1] [-shards 1]
//	        [-cpuprofile f] [-memprofile f] [-mutexprofile f]
//
// Output: end-to-end queries/sec, latency quantiles measured at the
// client (transport + serving), per-query allocation cost measured over
// the whole process (client + self-hosted server), and the outcome
// breakdown by error class. The -*profile flags write pprof profiles
// covering the load loop, for chasing where the remaining allocations
// and contention live.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"sharedwd"
	"sharedwd/internal/stats"
)

func main() {
	proto := flag.String("proto", "http", "transport: inproc, http, or binary")
	addr := flag.String("addr", "", "target a running tier at this host:port (empty = self-host on loopback; ignored for inproc)")
	clients := flag.Int("clients", 32, "concurrent client goroutines")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	deadline := flag.Duration("deadline", 100*time.Millisecond, "per-request deadline")
	junk := flag.Float64("junk", 0.05, "fraction of junk queries matching no phrase")
	batch := flag.Int("batch", 0, "submit in batches of this size (0 = single-query Submit)")
	advertisers := flag.Int("advertisers", 2000, "self-host: number of advertisers")
	phrases := flag.Int("phrases", 64, "self-host: number of bid phrases")
	seed := flag.Int64("seed", 1, "random seed (workload and query streams)")
	shards := flag.Int("shards", 1, "self-host: engine shards")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the load loop to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the load loop) to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile of the load loop to this file")
	flag.Parse()

	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(5)
	}

	// The workload is needed even when targeting a remote tier: the query
	// streams draw from its phrase distribution.
	wcfg := sharedwd.DefaultWorkloadConfig()
	wcfg.NumAdvertisers = *advertisers
	wcfg.NumPhrases = *phrases
	wcfg.Seed = *seed
	w, err := sharedwd.GenerateWorkload(wcfg)
	if err != nil {
		fatal(err)
	}

	client, cleanup, err := buildClient(*proto, *addr, w, *shards)
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	type clientTally struct {
		lat     *stats.Summary
		hist    *stats.Histogram
		outcome map[string]int
	}
	tallies := make([]clientTally, *clients)

	// Allocation accounting brackets the load loop: a GC settles the
	// steady state, then Mallocs/TotalAlloc deltas divided by query count
	// give whole-process allocs/op and bytes/op — client, transport, and
	// (when self-hosting) server included, unlike the per-benchmark
	// numbers which see only the benchmarking goroutine's side.
	runtime.GC()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}

	stopAt := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		tallies[c] = clientTally{
			lat:     &stats.Summary{},
			hist:    stats.NewHistogram(0, deadline.Seconds()*2, 256),
			outcome: make(map[string]int),
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			qs, err := sharedwd.NewQueryStream(w, *junk, *seed+int64(c)*7919)
			if err != nil {
				panic(err)
			}
			var queries []string
			for time.Now().Before(stopAt) {
				if len(queries) == 0 {
					queries = qs.Round()
					continue
				}
				n := 1
				if *batch > 1 {
					n = min(*batch, len(queries))
				}
				req := queries[len(queries)-n:]
				queries = queries[:len(queries)-n]

				ctx, cancel := context.WithTimeout(context.Background(), *deadline)
				t0 := time.Now()
				if n == 1 {
					_, err := client.Submit(ctx, req[0])
					sec := time.Since(t0).Seconds()
					t.lat.Add(sec)
					t.hist.Add(sec)
					t.outcome[classOf(err)]++
				} else {
					_, berr := client.SubmitBatch(ctx, req)
					sec := time.Since(t0).Seconds()
					for _, err := range sharedwd.SplitBatchErrors(berr, n) {
						t.lat.Add(sec)
						t.hist.Add(sec)
						t.outcome[classOf(err)]++
					}
				}
				cancel()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	if *memprofile != "" {
		runtime.GC()
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if *mutexprofile != "" {
		f, err := os.Create(*mutexprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
			fatal(err)
		}
		f.Close()
	}

	// Merge the per-client tallies.
	total := clientTally{lat: &stats.Summary{}, hist: stats.NewHistogram(0, deadline.Seconds()*2, 256), outcome: make(map[string]int)}
	for _, t := range tallies {
		total.lat.Merge(*t.lat)
		total.hist.Merge(t.hist)
		for class, n := range t.outcome {
			total.outcome[class] += n
		}
	}

	fmt.Printf("\n%s: %d queries in %v over %d clients\n", *proto, total.lat.N(), elapsed.Round(time.Millisecond), *clients)
	fmt.Printf("end-to-end: %.0f qps, p50 %.2fms, p95 %.2fms, p99 %.2fms, max %.2fms\n",
		float64(total.lat.N())/elapsed.Seconds(),
		total.hist.Quantile(0.5)*1e3, total.hist.Quantile(0.95)*1e3,
		total.hist.Quantile(0.99)*1e3, total.lat.Max()*1e3)
	if n := total.lat.N(); n > 0 {
		fmt.Printf("allocations: %.1f allocs/op, %.0f bytes/op (whole process, including any self-hosted server)\n",
			float64(memAfter.Mallocs-memBefore.Mallocs)/float64(n),
			float64(memAfter.TotalAlloc-memBefore.TotalAlloc)/float64(n))
	}
	classes := make([]string, 0, len(total.outcome))
	for class := range total.outcome {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Printf("  %s: %d\n", class, total.outcome[class])
	}

	// The same Stats contract works on every transport.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if m, err := client.Stats(ctx); err == nil {
		fmt.Printf("server side: %.0f qps served, total p95 %.2fms (the gap to end-to-end is the %s edge)\n",
			m.QueriesPerSec, m.TotalLatency.P95()*1e3, *proto)
	}
	cancel()
}

// buildClient constructs the requested Client, self-hosting a fleet (and,
// for the network protocols without -addr, a NetServer) as needed.
func buildClient(proto, addr string, w *sharedwd.Workload, shards int) (sharedwd.Client, func(), error) {
	selfHost := func(transports ...sharedwd.Transport) (*sharedwd.NetServer, error) {
		return sharedwd.NewNetServer(w, sharedwd.WithShards(shards), sharedwd.WithTransport(transports...))
	}
	shutdown := func(ns *sharedwd.NetServer) func() {
		return func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			ns.Shutdown(ctx)
			cancel()
		}
	}
	switch proto {
	case "inproc":
		fleet, err := sharedwd.NewShardedServer(w, sharedwd.WithShards(shards))
		if err != nil {
			return nil, nil, err
		}
		c := sharedwd.NewInprocClient(fleet)
		return c, func() { c.Close() }, nil
	case "http":
		if addr != "" {
			c := sharedwd.NewHTTPClient(addr)
			return c, func() { c.Close() }, nil
		}
		ns, err := selfHost(sharedwd.TransportHTTP)
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("self-hosting http on %s\n", ns.Addr())
		return sharedwd.NewHTTPClient(ns.Addr()), shutdown(ns), nil
	case "binary":
		if addr != "" {
			c, err := sharedwd.NewBinaryClient(addr)
			if err != nil {
				return nil, nil, err
			}
			return c, func() { c.Close() }, nil
		}
		ns, err := selfHost(sharedwd.TransportBinary)
		if err != nil {
			return nil, nil, err
		}
		c, err := sharedwd.NewBinaryClient(ns.BinaryAddr())
		if err != nil {
			shutdown(ns)()
			return nil, nil, err
		}
		fmt.Printf("self-hosting binary on %s\n", ns.BinaryAddr())
		return c, shutdown(ns), nil
	default:
		return nil, nil, fmt.Errorf("unknown -proto %q (want inproc, http, or binary)", proto)
	}
}

// classOf buckets a submission outcome by its place in the error
// taxonomy — the cross-transport analogue of an HTTP status breakdown.
func classOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, sharedwd.ErrNoAuction):
		return "no_auction"
	case errors.Is(err, sharedwd.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, sharedwd.ErrServerClosed):
		return "closed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
