// Command loadgen drives the network serving tier over real HTTP and
// reports end-to-end throughput and latency — the numbers to hold next to
// the in-process Submit figures (BenchmarkServerThroughput) when deciding
// what the JSON/TCP edge costs.
//
// With -addr it targets an already-running tier (e.g. servedemo -listen).
// Without it, loadgen self-hosts: it generates the same synthetic workload
// the benchmarks use, starts a NetServer on a random loopback port, and
// hammers it through keep-alive connections.
//
// Usage:
//
//	loadgen [-addr host:port] [-clients 32] [-duration 10s]
//	        [-deadline 100ms] [-junk 0.05]
//	        [-advertisers 2000] [-phrases 64] [-seed 1] [-shards 1]
//
// Output: end-to-end queries/sec, latency quantiles measured at the
// client (network + JSON + serving), and the HTTP status breakdown.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"sharedwd/internal/netserve"
	"sharedwd/internal/server"
	"sharedwd/internal/shard"
	"sharedwd/internal/stats"
	"sharedwd/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "target a running tier at this host:port (empty = self-host on loopback)")
	clients := flag.Int("clients", 32, "concurrent client goroutines")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	deadline := flag.Duration("deadline", 100*time.Millisecond, "per-request deadline (sent as X-Timeout)")
	junk := flag.Float64("junk", 0.05, "fraction of junk queries matching no phrase")
	advertisers := flag.Int("advertisers", 2000, "self-host: number of advertisers")
	phrases := flag.Int("phrases", 64, "self-host: number of bid phrases")
	seed := flag.Int64("seed", 1, "random seed (workload and query streams)")
	shards := flag.Int("shards", 1, "self-host: engine shards")
	flag.Parse()

	// The workload is needed even when targeting a remote tier: the query
	// streams draw from its phrase distribution.
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = *advertisers
	wcfg.NumPhrases = *phrases
	wcfg.Seed = *seed
	w := workload.Generate(wcfg)

	target := *addr
	var ns *netserve.Server
	if target == "" {
		cfg := server.DefaultConfig()
		scfg := shard.DefaultConfig()
		scfg.Worker = cfg
		scfg.Shards = *shards
		backend, err := shard.New(w, scfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ns = netserve.New(backend, nil, netserve.Config{})
		if err := ns.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		target = ns.Addr()
		fmt.Printf("self-hosting on %s (%d advertisers, %d phrases, %d shard(s))\n",
			target, *advertisers, *phrases, *shards)
	}
	url := "http://" + target + "/v1/query"

	// One shared transport: keep-alives across all clients, enough idle
	// conns that each client keeps its socket.
	transport := &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}
	httpc := &http.Client{Transport: transport, Timeout: *deadline + time.Second}
	xTimeout := deadline.String()

	type clientTally struct {
		lat    *stats.Summary
		hist   *stats.Histogram
		status map[int]int
		errs   int
	}
	tallies := make([]clientTally, *clients)
	stopAt := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		tallies[c] = clientTally{
			lat:    &stats.Summary{},
			hist:   stats.NewHistogram(0, deadline.Seconds()*2, 256),
			status: make(map[int]int),
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			qs := workload.NewQueryStream(w, *junk, *seed+int64(c)*7919)
			var queries []string
			for time.Now().Before(stopAt) {
				if len(queries) == 0 {
					queries = qs.Round()
					continue
				}
				q := queries[len(queries)-1]
				queries = queries[:len(queries)-1]
				body, _ := json.Marshal(map[string]string{"query": q})
				req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					t.errs++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Timeout", xTimeout)
				t0 := time.Now()
				resp, err := httpc.Do(req)
				if err != nil {
					t.errs++
					continue
				}
				// Drain so the connection returns to the keep-alive pool.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				sec := time.Since(t0).Seconds()
				t.lat.Add(sec)
				t.hist.Add(sec)
				t.status[resp.StatusCode]++
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge the per-client tallies.
	total := clientTally{lat: &stats.Summary{}, hist: stats.NewHistogram(0, deadline.Seconds()*2, 256), status: make(map[int]int)}
	for _, t := range tallies {
		total.lat.Merge(*t.lat)
		total.hist.Merge(t.hist)
		for code, n := range t.status {
			total.status[code] += n
		}
		total.errs += t.errs
	}

	fmt.Printf("\n%d requests in %v over %d clients\n", total.lat.N(), elapsed.Round(time.Millisecond), *clients)
	fmt.Printf("end-to-end: %.0f qps, p50 %.2fms, p95 %.2fms, p99 %.2fms, max %.2fms\n",
		float64(total.lat.N())/elapsed.Seconds(),
		total.hist.Quantile(0.5)*1e3, total.hist.Quantile(0.95)*1e3,
		total.hist.Quantile(0.99)*1e3, total.lat.Max()*1e3)
	codes := make([]int, 0, len(total.status))
	for code := range total.status {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Printf("  %d: %d\n", code, total.status[code])
	}
	if total.errs > 0 {
		fmt.Printf("  transport errors: %d\n", total.errs)
	}

	if ns != nil {
		if sm, err := metricsOf(target); err == nil {
			fmt.Printf("in-process: %.0f qps served, total p95 %.2fms (the gap to end-to-end is the HTTP edge)\n",
				sm.QueriesPerSec, sm.TotalLatency.P95()*1e3)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		ns.Shutdown(ctx)
		cancel()
	}
}

// metricsOf fetches the tier's merged metrics via its own /v1/stats
// contract — exercising the wire schema instead of peeking at the backend.
func metricsOf(target string) (server.Metrics, error) {
	resp, err := http.Get("http://" + target + "/v1/stats")
	if err != nil {
		return server.Metrics{}, err
	}
	defer resp.Body.Close()
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return server.Metrics{}, err
	}
	return m, nil
}
