// Command planviz renders a shared aggregation plan as Graphviz DOT, for
// inspecting what the Section II-D heuristic builds: fragment chains,
// shared interior aggregates, and the query nodes they feed.
//
// Usage:
//
//	planviz [-vars 20] [-queries 6] [-rate 0.8] [-seed 1] [-disjoint] > plan.dot
//	dot -Tsvg plan.dot -o plan.svg
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
)

func main() {
	vars := flag.Int("vars", 20, "number of advertisers")
	queries := flag.Int("queries", 6, "number of queries")
	rate := flag.Float64("rate", 0.8, "uniform search rate")
	seed := flag.Int64("seed", 1, "random seed")
	disjoint := flag.Bool("disjoint", false, "build the disjoint-children (multiset-safe) plan")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	inst := plan.RandomCoinFlipInstance(rng, *vars, *queries, *rate)
	var p *plan.Plan
	if *disjoint {
		p = sharedagg.BuildDisjoint(inst)
	} else {
		p = sharedagg.Build(inst)
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(p.DOT())
	fmt.Fprintf(os.Stderr, "plan: %d aggregation nodes (naive %d), expected cost %.2f/round, disjoint=%v\n",
		p.TotalCost(), plan.NaivePlan(inst).TotalCost(), p.ExpectedCost(), p.DisjointChildren())
}
