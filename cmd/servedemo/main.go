// Command servedemo runs the online round server under synthetic load: a
// pool of client goroutines draws messy raw queries from a QueryStream
// (case variants, synonyms, junk) and submits them with per-request
// deadlines, while the server batches them into rounds and resolves shared
// winner determination. Live per-second snapshots show throughput, queue
// depth, shed/timeout counters, and the per-stage latency distribution; a
// final summary reports the lifetime totals and the wrapped engine's
// counters.
//
// Usage:
//
//	servedemo [-advertisers 2000] [-phrases 64] [-seed 1]
//	          [-clients 64] [-duration 10s] [-round 5ms] [-batch 256]
//	          [-queue 4096] [-deadline 100ms] [-junk 0.05] [-workers 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/server"
	"sharedwd/internal/workload"
)

func main() {
	advertisers := flag.Int("advertisers", 2000, "number of advertisers")
	phrases := flag.Int("phrases", 64, "number of bid phrases")
	seed := flag.Int64("seed", 1, "random seed")
	clients := flag.Int("clients", 64, "concurrent client goroutines")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	round := flag.Duration("round", 5*time.Millisecond, "round interval")
	batch := flag.Int("batch", 256, "max queries per round (early close)")
	queue := flag.Int("queue", 4096, "admission queue depth")
	deadline := flag.Duration("deadline", 100*time.Millisecond, "per-request deadline")
	junk := flag.Float64("junk", 0.05, "fraction of junk queries matching no phrase")
	workers := flag.Int("workers", 1, "engine plan-execution workers")
	flag.Parse()

	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = *advertisers
	wcfg.NumPhrases = *phrases
	wcfg.Seed = *seed
	w := workload.Generate(wcfg)

	cfg := server.DefaultConfig()
	cfg.Engine.Workers = *workers
	cfg.RoundInterval = *round
	cfg.MaxBatch = *batch
	cfg.QueueDepth = *queue
	cfg.BidWalkScale = 0.02
	s, err := server.New(w, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload: %d advertisers, %d phrases (seed %d)\n",
		*advertisers, *phrases, *seed)
	fmt.Printf("server:   %v rounds, batch %d, queue %d, %d clients, %v deadlines\n\n",
		*round, *batch, *queue, *clients, *deadline)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client owns a private stream; distinct seeds keep the
			// traffic independent.
			qs := workload.NewQueryStream(w, *junk, *seed+int64(c)*7919)
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			for !stop.Load() {
				queries := qs.Round()
				if len(queries) == 0 {
					continue
				}
				query := queries[rng.Intn(len(queries))]
				ctx, cancel := context.WithTimeout(context.Background(), *deadline)
				s.Submit(ctx, query) // shed/unmatched/timeout all show in the snapshot
				cancel()
			}
		}(c)
	}

	ticker := time.NewTicker(time.Second)
	deadlineAt := time.Now().Add(*duration)
	fmt.Println("uptime   qps      p50ms   p95ms   queue  shed   timeout unmatched")
	for now := range ticker.C {
		snap := s.Snapshot()
		fmt.Printf("%-8s %-8.0f %-7.2f %-7.2f %-6d %-6d %-7d %d\n",
			snap.Uptime.Round(time.Second), snap.QueriesPerSec,
			snap.TotalLatency.P50*1e3, snap.TotalLatency.P95*1e3,
			snap.QueueDepth, snap.Shed, snap.TimedOut, snap.Unmatched)
		if now.After(deadlineAt) {
			break
		}
	}
	ticker.Stop()

	stop.Store(true)
	wg.Wait()
	s.Close()

	snap := s.Snapshot()
	fmt.Printf("\nsubmitted %d, answered %d (%.0f/sec) over %d rounds (%d empty)\n",
		snap.Submitted, snap.Answered, snap.QueriesPerSec, snap.Rounds, snap.EmptyRounds)
	fmt.Printf("shed %d, timed out %d, unmatched %d\n", snap.Shed, snap.TimedOut, snap.Unmatched)
	fmt.Printf("latency ms: admission p95 %.2f, round wait p95 %.2f, total p95 %.2f (max %.2f)\n",
		snap.AdmissionWait.P95*1e3, snap.RoundWait.P95*1e3,
		snap.TotalLatency.P95*1e3, snap.TotalLatency.Max*1e3)
	fmt.Printf("winner determination per round: mean %.3fms, p95 %.3fms\n",
		snap.WinnerDetermination.Mean*1e3, snap.WinnerDetermination.P95*1e3)
	fmt.Printf("engine: %d auctions, %d ads displayed, $%.2f revenue\n",
		snap.Engine.AuctionsResolved, snap.Engine.AdsDisplayed, snap.Engine.Revenue)
}
