// Command servedemo runs the online round server under synthetic load: a
// pool of client goroutines draws messy raw queries from a QueryStream
// (case variants, synonyms, junk) and submits them with per-request
// deadlines, while the server batches them into rounds and resolves shared
// winner determination. With -shards > 1 the bid-phrase universe is
// partitioned across that many engine shards — each with its own round
// loop — and advertiser budgets settle through the central ledger. Live
// per-second snapshots show throughput, queue depth, shed/timeout
// counters, and the per-stage latency distribution; a final summary
// reports the lifetime totals and the engines' counters.
//
// Usage:
//
//	servedemo [-advertisers 2000] [-phrases 64] [-seed 1]
//	          [-clients 64] [-duration 10s] [-round 5ms] [-batch 256]
//	          [-queue 4096] [-deadline 100ms] [-junk 0.05] [-workers 1]
//	          [-shards 1] [-router hash|fragment]
//	          [-replan] [-drift]
//	          [-pacing 0] [-churn 0] [-refresh-every 0]
//	          [-listen :8080] [-listen-binary :8081] [-rate-limit 0]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -listen additionally serves the network tier on the given address while
// the synthetic load runs: POST /v1/query answers external queries,
// GET /v1/stats and /v1/metrics expose the same metrics the snapshots
// print (JSON and Prometheus text), and GET /v1/live streams per-round
// summaries over a WebSocket — point a browser or `curl` at it while the
// demo runs. -rate-limit enables the edge's per-client token bucket at
// that many requests per second.
//
// -listen-binary serves the multiplexed binary protocol on the given
// address against the same backend — point `loadgen -proto binary -addr`
// at it. Both edges can run at once; on shutdown the binary edge drains
// first, then the HTTP tier closes the shared backend.
//
// -replan turns on online adaptive replanning: each round loop tracks the
// arrival rates it observes and hot-swaps a freshly compiled shared plan
// when they drift from the rates the live plan was built for. -drift
// injects the drift to react to: halfway through the run every client
// rotates its query stream's rates by half the phrase universe, so popular
// phrases go quiet and quiet ones go popular while the server keeps
// serving. The final summary then reports builds, swaps, and swap latency.
//
// -pacing N turns on the budget-pacing controller with an N-round horizon:
// one shared Pacer throttles advertiser bids toward a smooth spend curve
// (fleet-shared across shards, spend exact through the central ledger).
// -churn gives that fraction of advertisers sub-day campaign windows and
// -refresh-every schedules periodic budget-refresh epochs; both consume
// the same synthetic lifecycle schedule. The final summary reports the
// spend curve, throttle activity, and epoch count.
//
// -cpuprofile and -memprofile write pprof profiles of the whole run (load
// generation plus serving), for digging into where round time goes — e.g.
// confirming the flat-compiled plan executor's kernels dominate shared
// winner determination. Inspect with `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/binproto"
	"sharedwd/internal/budget"
	"sharedwd/internal/netserve"
	"sharedwd/internal/replan"
	"sharedwd/internal/server"
	"sharedwd/internal/shard"
	"sharedwd/internal/workload"
)

// roundServer is what the load loop needs; both the single-engine server
// and the sharded server satisfy the canonical Backend contract.
type roundServer = server.Backend

func main() {
	advertisers := flag.Int("advertisers", 2000, "number of advertisers")
	phrases := flag.Int("phrases", 64, "number of bid phrases")
	seed := flag.Int64("seed", 1, "random seed")
	clients := flag.Int("clients", 64, "concurrent client goroutines")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	round := flag.Duration("round", 5*time.Millisecond, "round interval")
	batch := flag.Int("batch", 256, "max queries per round (early close)")
	queue := flag.Int("queue", 4096, "admission queue depth (per shard)")
	deadline := flag.Duration("deadline", 100*time.Millisecond, "per-request deadline")
	junk := flag.Float64("junk", 0.05, "fraction of junk queries matching no phrase")
	workers := flag.Int("workers", 1, "engine plan-execution workers (per shard)")
	shards := flag.Int("shards", 1, "engine shards (each phrase partition gets its own round loop)")
	router := flag.String("router", "hash", "phrase-to-shard router: hash or fragment")
	replanOn := flag.Bool("replan", false, "adaptive replanning: hot-swap the shared plan when observed rates drift")
	drift := flag.Bool("drift", false, "inject traffic drift halfway through (rotate arrival rates by half the phrases)")
	pacing := flag.Int("pacing", 0, "budget pacing horizon in rounds (0 disables the pacing controller)")
	churn := flag.Float64("churn", 0, "fraction of advertisers running sub-day campaign windows (needs -pacing)")
	refreshEvery := flag.Int("refresh-every", 0, "budget-refresh epoch period in rounds, 0 disables (needs -pacing)")
	listen := flag.String("listen", "", "also serve HTTP on this address (/v1/query, /v1/stats, /v1/metrics, /v1/live)")
	listenBinary := flag.String("listen-binary", "", "also serve the binary protocol on this address (loadgen -proto binary)")
	rateLimit := flag.Float64("rate-limit", 0, "edge rate limit in requests/sec per client (0 disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = *advertisers
	wcfg.NumPhrases = *phrases
	wcfg.Seed = *seed
	w := workload.Generate(wcfg)

	cfg := server.DefaultConfig()
	cfg.Engine.Workers = *workers
	cfg.RoundInterval = *round
	cfg.MaxBatch = *batch
	cfg.QueueDepth = *queue
	cfg.BidWalkScale = 0.02
	if *replanOn {
		// The demo runs for seconds, not days: tighten the warmup and
		// hysteresis so a mid-run drift is caught within the run.
		rc := replan.DefaultConfig()
		rc.WarmupRounds = 100
		rc.CheckEvery = 25
		rc.CooldownRounds = 200
		cfg.Replan = &rc
	}

	if *pacing > 0 {
		pc := budget.DefaultPacerConfig()
		pc.Horizon = *pacing
		cfg.Pacing = &pc
		if *churn > 0 || *refreshEvery > 0 {
			lc, err := workload.GenerateLifecycle(w, workload.LifecycleConfig{
				Rounds:        *pacing,
				ChurnFraction: *churn,
				RefreshEvery:  *refreshEvery,
				Seed:          *seed,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			cfg.Lifecycle = lc
		}
	}

	// The live-feed hub must exist before the server: round loops bind
	// their summary hook at worker construction.
	var netCfg netserve.Config
	var hub *netserve.Hub
	if *listen != "" {
		netCfg = netserve.Config{Addr: *listen, RateLimit: *rateLimit}
		hub = netserve.NewHubFor(netCfg)
		cfg.OnRound = hub.RoundHook()
	}

	var s roundServer
	var err error
	if *shards > 1 {
		scfg := shard.Config{Worker: cfg, Shards: *shards}
		switch *router {
		case "hash":
			scfg.Router = shard.HashRouter{}
		case "fragment":
			scfg.Router = shard.FragmentRouter{}
		default:
			fmt.Fprintf(os.Stderr, "unknown -router %q (want hash or fragment)\n", *router)
			os.Exit(1)
		}
		s, err = shard.New(w, scfg)
	} else {
		s, err = server.New(w, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload: %d advertisers, %d phrases (seed %d)\n",
		*advertisers, *phrases, *seed)
	fmt.Printf("server:   %d shard(s) [%s router], %v rounds, batch %d, queue %d, %d clients, %v deadlines\n",
		*shards, *router, *round, *batch, *queue, *clients, *deadline)

	var ns *netserve.Server
	if *listen != "" {
		ns = netserve.New(s, hub, netCfg)
		if err := ns.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("http:     listening on %s (POST /v1/query, GET /v1/stats /v1/metrics /v1/live)\n", ns.Addr())
	}
	var bs *binproto.Server
	if *listenBinary != "" {
		bs = binproto.New(s, binproto.Config{Addr: *listenBinary})
		if err := bs.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("binary:   listening on %s (multiplexed frames; loadgen -proto binary -addr %s)\n", bs.Addr(), bs.Addr())
	}
	fmt.Println()

	var stop atomic.Bool
	driftAt := time.Now().Add(*duration / 2)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client owns a private stream; distinct seeds keep the
			// traffic independent. The stream holds a private rate copy, so
			// drift injection below never touches the server-owned workload.
			qs := workload.NewQueryStream(w, *junk, *seed+int64(c)*7919)
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			drifted := false
			for !stop.Load() {
				if *drift && !drifted && time.Now().After(driftAt) {
					qs.RotateRates(*phrases / 2)
					drifted = true
				}
				queries := qs.Round()
				if len(queries) == 0 {
					continue
				}
				query := queries[rng.Intn(len(queries))]
				ctx, cancel := context.WithTimeout(context.Background(), *deadline)
				s.Submit(ctx, query) // shed/unmatched/timeout all show in the snapshot
				cancel()
			}
		}(c)
	}

	ticker := time.NewTicker(time.Second)
	deadlineAt := time.Now().Add(*duration)
	fmt.Println("uptime   qps      p50ms   p95ms   queue  shed   timeout unmatched")
	for now := range ticker.C {
		m := s.Metrics()
		fmt.Printf("%-8s %-8.0f %-7.2f %-7.2f %-6d %-6d %-7d %d\n",
			m.Uptime.Round(time.Second), m.QueriesPerSec,
			m.TotalLatency.P50()*1e3, m.TotalLatency.P95()*1e3,
			m.QueueDepth, m.Shed, m.TimedOut, m.Unmatched)
		if now.After(deadlineAt) {
			break
		}
	}
	ticker.Stop()

	stop.Store(true)
	wg.Wait()
	if bs != nil {
		// Drain the binary edge first: it answers its in-flight frames while
		// the backend is still open, then stops accepting.
		drCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		bs.Drain(drCtx)
		cancel()
	}
	if ns != nil {
		// Graceful drain: stop accepting, answer in-flight requests, close
		// the live feed, then drain the backend (ns owns s from here).
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		ns.Shutdown(shCtx)
		cancel()
	} else {
		s.Close()
	}

	m := s.Metrics()
	fmt.Printf("\nsubmitted %d, answered %d (%.0f/sec) over %d rounds (%d empty)\n",
		m.Submitted, m.Answered, m.QueriesPerSec, m.Rounds, m.EmptyRounds)
	fmt.Printf("shed %d, timed out %d, unmatched %d\n", m.Shed, m.TimedOut, m.Unmatched)
	fmt.Printf("latency ms: admission p95 %.2f, round wait p95 %.2f, total p95 %.2f (max %.2f)\n",
		m.AdmissionWait.P95()*1e3, m.RoundWait.P95()*1e3,
		m.TotalLatency.P95()*1e3, m.TotalLatency.Max()*1e3)
	fmt.Printf("winner determination per round: mean %.3fms, p95 %.3fms\n",
		m.WinnerDetermination.Mean()*1e3, m.WinnerDetermination.P95()*1e3)
	fmt.Printf("engine: %d auctions, %d ads displayed, $%.2f revenue\n",
		m.Engine.AuctionsResolved, m.Engine.AdsDisplayed, m.Engine.Revenue)
	if *replanOn {
		fmt.Printf("replan: %d builds, %d plan swaps, swap install mean %.3gms (max %.3gms)\n",
			m.ReplanBuilds, m.PlanSwaps,
			m.PlanSwapLatency.Mean()*1e3, m.PlanSwapLatency.Max()*1e3)
	}
	if m.Pacing.Enabled {
		meanFactor := 1.0
		if m.Pacing.Active > 0 {
			meanFactor = m.Pacing.FactorSum / float64(m.Pacing.Active)
		}
		fmt.Printf("pacing: %d/%d active, %d throttled (mean factor %.3f), target $%.2f vs actual $%.2f over %d steps, %d refresh epochs\n",
			m.Pacing.Active, m.Pacing.Advertisers, m.Pacing.Throttled, meanFactor,
			m.Pacing.TargetSpend, m.Pacing.ActualSpend, m.Pacing.Rounds, m.Pacing.Epochs)
	}
	if sh, ok := s.(*shard.Server); ok {
		fmt.Printf("ledger:  $%.2f settled across %d shards\n",
			sh.Ledger().TotalSpent(), sh.Shards())
		for i := 0; i < sh.Shards(); i++ {
			sm := sh.ShardMetrics(i)
			fmt.Printf("  shard %d: answered %d over %d rounds, p95 %.2fms\n",
				i, sm.Answered, sm.Rounds, sm.TotalLatency.P95()*1e3)
		}
	}
}
