package sharedwd_test

import (
	"fmt"

	"sharedwd"
)

// ExampleSolveSeparable reproduces the paper's Figures 1–3 worked example.
func ExampleSolveSeparable() {
	advertisers := []sharedwd.Advertiser{
		{ID: 0, Bid: 10, Quality: 1.2}, // A
		{ID: 1, Bid: 9, Quality: 1.1},  // B
		{ID: 2, Bid: 1, Quality: 1.3},  // C
	}
	a := sharedwd.SolveSeparable(advertisers, []float64{0.3, 0.2})
	fmt.Println("slot 1 →", string(rune('A'+a.Slots[0])))
	fmt.Println("slot 2 →", string(rune('A'+a.Slots[1])))
	fmt.Printf("expected value: %.2f\n", a.Value)
	// Output:
	// slot 1 → A
	// slot 2 → B
	// expected value: 5.58
}

// ExampleBuildSharedPlan shares winner determination between two auctions
// with a common advertiser pool — the paper's shoe-store idea in miniature.
func ExampleBuildSharedPlan() {
	const n = 6
	boots := sharedwd.AdvertiserSetOf(n, 0, 1, 2, 3) // shared: 0,1; sports: 2,3
	heels := sharedwd.AdvertiserSetOf(n, 0, 1, 4, 5) // shared: 0,1; fashion: 4,5
	inst, _ := sharedwd.NewAggInstance(n, []sharedwd.AggQuery{
		{Vars: boots, Rate: 1},
		{Vars: heels, Rate: 1},
	})
	shared := sharedwd.Must(sharedwd.BuildSharedPlan(inst))
	naive := sharedwd.Must(sharedwd.BuildNaivePlan(inst))
	fmt.Println("shared plan aggregations:", shared.TotalCost())
	fmt.Println("naive plan aggregations: ", naive.TotalCost())

	bids := []float64{5, 9, 2, 7, 4, 8}
	leaf := func(v int) *sharedwd.TopKList {
		l := sharedwd.Must(sharedwd.NewTopKList(2))
		l.Push(sharedwd.TopKEntry{ID: v, Score: bids[v]})
		return l
	}
	results, _ := sharedwd.ExecutePlan(shared, leaf, nil)
	fmt.Println("hiking boots top-2:", results[0].IDs())
	fmt.Println("high heels top-2:  ", results[1].IDs())
	// Output:
	// shared plan aggregations: 5
	// naive plan aggregations:  6
	// hiking boots top-2: [1 3]
	// high heels top-2:   [1 5]
}

// ExampleExactThrottledBid shows the Section IV throttled bid: an
// advertiser with a $3 outstanding ad half-likely to be clicked cannot
// safely bid his full $2.
func ExampleExactThrottledBid() {
	ads := []sharedwd.OutstandingAd{{Price: 3, CTR: 0.5}}
	b := sharedwd.ExactThrottledBid(2 /*bid*/, 4 /*budget*/, 2 /*auctions*/, ads)
	fmt.Printf("throttled bid: $%.2f\n", b)
	// Output:
	// throttled bid: $1.25
}

// ExamplePrices compares the three pricing rules on one ranking.
func ExamplePrices() {
	ranked := []sharedwd.RankedBidder{
		{ID: 0, Bid: 10, Quality: 1},
		{ID: 1, Bid: 9, Quality: 1},
		{ID: 2, Bid: 1, Quality: 1},
	}
	d := []float64{0.3, 0.2}
	for _, rule := range []sharedwd.PricingRule{sharedwd.FirstPrice, sharedwd.GSP, sharedwd.VCG} {
		fmt.Printf("%-11s %.4v\n", rule.String()+":", sharedwd.Prices(rule, ranked, d))
	}
	// Output:
	// first-price: [10 9]
	// GSP:        [9 1]
	// VCG:        [3.667 1]
}

// ExampleCompareThrottled resolves a winner-determination comparison from
// Hoeffding bounds without computing either throttled bid exactly.
func ExampleCompareThrottled() {
	heavy := make([]sharedwd.OutstandingAd, 12)
	for i := range heavy {
		heavy[i] = sharedwd.OutstandingAd{Price: 10, CTR: 0.99}
	}
	rich, _ := sharedwd.NewThrottler(0, 5, 1000, 1, nil)
	broke, _ := sharedwd.NewThrottler(1, 5, 10, 1, heavy)
	fmt.Println("comparison:", sharedwd.CompareThrottled(rich, broke))
	fmt.Println("expansions used by the broke bidder:", broke.Level(), "of", 12)
	// Output:
	// comparison: 1
	// expansions used by the broke bidder: 0 of 12
}
