// Command analytics demonstrates the paper's Section VII (ongoing work):
// advertisers' automated bidding programs need per-round statistics — the
// maximum or average bid on a set of bid phrases, search volumes, how many
// distinct competitors bid there — and many programs ask over overlapping
// phrase sets. One shared aggregation plan over the phrase space answers
// all of them, computing each shared sub-aggregate once per round.
package main

import (
	"fmt"
	"math/rand"

	"sharedwd"
)

func main() {
	const phrases = 30
	svc := sharedwd.Must(sharedwd.NewAnalytics(phrases))

	// Phrase universe: 0–9 "music", 10–19 "movies", 20–29 "books".
	span := func(lo, hi int) sharedwd.AdvertiserSet {
		s := sharedwd.NewAdvertiserSet(phrases)
		for q := lo; q < hi; q++ {
			s.Add(q)
		}
		return s
	}
	music := span(0, 10)
	media := span(0, 20)   // music + movies
	catalog := span(0, 30) // everything

	// Three bidding programs; two more subscribe to existing sets (free —
	// A-equivalent sets share one query node).
	musicID, _ := svc.Register(101, music)
	mediaID, _ := svc.Register(102, media)
	catalogID, _ := svc.Register(103, catalog)
	dup, _ := svc.Register(104, span(0, 10)) // same as music
	fmt.Printf("registered 4 programs over %d distinct phrase sets (music shared: %v)\n",
		svc.NumQueries(), dup == musicID)

	if err := svc.Build(); err != nil {
		panic(err)
	}
	shared, naive, _ := svc.PlanCost()
	fmt.Printf("shared plan: %d aggregation nodes (unshared would use %d)\n\n", shared, naive)

	// One round of per-phrase base statistics.
	rng := rand.New(rand.NewSource(3))
	stats := make([]sharedwd.PhraseStats, phrases)
	for q := range stats {
		nb := 3 + rng.Intn(8)
		bidders := make([]int, nb)
		var sum, max float64
		for i := range bidders {
			bidders[i] = rng.Intn(40)
			b := rng.Float64() * 5
			sum += b
			if b > max {
				max = b
			}
		}
		stats[q] = sharedwd.PhraseStats{
			MaxBid: max, SumBids: sum, Bids: nb,
			Searches: rng.Intn(500), Bidders: bidders,
		}
	}

	results, materialized, err := svc.Evaluate(stats)
	if err != nil {
		panic(err)
	}
	for _, row := range []struct {
		name string
		id   sharedwd.AnalyticsResult
	}{
		{"music (10 phrases)", results[musicID]},
		{"music+movies (20)", results[mediaID]},
		{"full catalog (30)", results[catalogID]},
	} {
		r := row.id
		fmt.Printf("%-20s max bid $%.2f  mean bid $%.2f  searches %5d  ~%.0f distinct bidders\n",
			row.name, r.MaxBid, r.MeanBid, r.Searches, r.DistinctBidders)
		fmt.Printf("%20s hottest phrases: ", "")
		for _, e := range r.TopPhrases[:3] {
			fmt.Printf("#%d($%.2f) ", e.ID, e.Score)
		}
		fmt.Println()
	}
	fmt.Printf("\naggregation nodes materialized this round: %d (all three queries)\n", materialized)
}
