// Command budgetthrottle demonstrates Section IV: budget uncertainty from
// ads awaiting clicks, the gaming attack a naive policy invites, and the
// Hoeffding-bound machinery that compares throttled bids without computing
// them exactly.
package main

import (
	"fmt"

	"sharedwd"
)

func main() {
	fmt.Println("== Throttled bids with outstanding ads ==")
	// An advertiser bidding $2 with $6 left, entering 2 auctions, with
	// three outstanding ads awaiting clicks.
	ads := []sharedwd.OutstandingAd{
		{Price: 3.0, CTR: 0.4},
		{Price: 2.0, CTR: 0.6},
		{Price: 1.5, CTR: 0.5},
	}
	exact := sharedwd.ExactThrottledBid(2.0, 6.0, 2, ads)
	fmt.Printf("  stated bid $2.00, budget $6.00, m=2 → throttled bid b̂ = $%.4f\n", exact)

	tr, err := sharedwd.NewThrottler(0, 2.0, 6.0, 2, ads)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  anytime bounds: level 0 %v", tr.Bounds())
	for tr.Refine() {
	}
	fmt.Printf(" → fully expanded %v\n", tr.Bounds())

	fmt.Println("\n== Comparing throttled bids via bounds ==")
	a, _ := sharedwd.NewThrottler(0, 3.0, 50.0, 2, []sharedwd.OutstandingAd{{Price: 1, CTR: 0.2}})
	heavy := make([]sharedwd.OutstandingAd, 14)
	for i := range heavy {
		heavy[i] = sharedwd.OutstandingAd{Price: 4, CTR: 0.9}
	}
	b, _ := sharedwd.NewThrottler(1, 3.5, 8.0, 2, heavy)
	switch sharedwd.CompareThrottled(a, b) {
	case 1:
		fmt.Println("  advertiser 0 outranks advertiser 1 — decided from bounds,")
		fmt.Printf("  without enumerating 2^%d outcomes (levels used: %d and %d)\n",
			len(heavy), a.Level(), b.Level())
	default:
		fmt.Println("  unexpected ordering")
	}

	fmt.Println("\n== Top-k under uncertainty ==")
	ts := make([]*sharedwd.Throttler, 6)
	for i := range ts {
		outs := make([]sharedwd.OutstandingAd, i*2)
		for j := range outs {
			outs[j] = sharedwd.OutstandingAd{Price: 2, CTR: 0.5}
		}
		ts[i], _ = sharedwd.NewThrottler(i, 3.0-0.3*float64(i), 10, 2, outs)
	}
	winners := sharedwd.TopKThrottled(2, ts)
	for rank, w := range winners {
		fmt.Printf("  rank %d: advertiser %d, b̂ = $%.4f\n", rank+1, w.ID, w.Bounds().Lo)
	}

	fmt.Println("\n== The gaming attack (paper §IV) ==")
	fmt.Println("  One high-volume phrase; the 'gamer' bids high with a budget worth ~1 click;")
	fmt.Println("  clicks arrive slowly, so many auctions resolve before any payment is known.")
	fmt.Println("  (averaged over 30 independent runs)")
	for _, policy := range []sharedwd.BudgetPolicy{sharedwd.Naive, sharedwd.Throttled} {
		res, err := sharedwd.RunGamingExperiment(7, 40, 30, policy)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-9s policy: gamer won %3d auctions/run, received $%.2f of clicks on a $%.2f budget "+
			"(over-delivery ×%.2f; provider forgave $%.2f)\n",
			policy, res.GamerWins, res.GamerClickValue, res.GamerBudget,
			res.OverDelivery(), res.ForgivenValue)
	}
}
