// Command nonseparable demonstrates the two regimes beyond plain
// separability:
//
//  1. Section III — the advertiser quality factor varies per bid phrase
//     (a book store is better at "books" than "DVDs"), so only bids are
//     shared: a shared merge-sort feeds the threshold algorithm per phrase.
//  2. Section V — fully non-separable click-through matrices, solved with
//     the k²-pruned Hungarian matching of the ICDE'08 framework.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"sharedwd"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	fmt.Println("== Shared sort + threshold algorithm (per-phrase quality) ==")
	const n = 120
	const k = 3
	// Phrases "books" and "dvds" share a pool of general media stores.
	books := sharedwd.NewAdvertiserSet(n)
	dvds := sharedwd.NewAdvertiserSet(n)
	for i := 0; i < 80; i++ { // shared media stores
		books.Add(i)
		dvds.Add(i)
	}
	for i := 80; i < 100; i++ { // pure book stores
		books.Add(i)
	}
	for i := 100; i < n; i++ { // pure video stores
		dvds.Add(i)
	}
	plan, err := sharedwd.BuildSortPlan(n, []sharedwd.AdvertiserSet{books, dvds},
		[]float64{0.9, 0.8}, sharedwd.SortOptions{})
	if err != nil {
		panic(err)
	}

	bids := make([]float64, n)
	quality := [2][]float64{make([]float64, n), make([]float64, n)} // c_i^q per phrase
	for i := 0; i < n; i++ {
		bids[i] = rng.Float64() * 5
		base := 0.5 + rng.Float64()
		quality[0][i] = base * (0.7 + 0.6*rng.Float64())
		quality[1][i] = base * (0.7 + 0.6*rng.Float64())
	}
	plan.BeginRound(bids)

	interests := []sharedwd.AdvertiserSet{books, dvds}
	for q, name := range []string{"books", "dvds"} {
		// Static per-phrase quality order (precomputed in practice).
		ids := interests[q].Indices()
		sort.Slice(ids, func(a, b int) bool { return quality[q][ids[a]] > quality[q][ids[b]] })
		vals := make([]float64, len(ids))
		for i, id := range ids {
			vals[i] = quality[q][id]
		}
		score := func(id int) float64 { return bids[id] * quality[q][id] }
		top, stats := sharedwd.ThresholdTopK(k, plan.Stream(q), qualitySource(ids, vals), score)
		fmt.Printf("  %-6s top-%d advertisers: %v\n", name, k, top.IDs())
		fmt.Printf("         TA stopped after %d sorted accesses (of ≤ %d)\n",
			stats.SortedAccesses, 2*len(ids))
	}
	fmt.Printf("  merge-operator invocations this round: %d (shared plan, %d shared operators)\n",
		plan.RoundPulls(), plan.SharedOperators)

	fmt.Println("\n== Fully non-separable winner determination (ICDE'08 framework) ==")
	const slots = 3
	nb := 40
	nbids := make([]float64, nb)
	ctr := make([][]float64, nb)
	for i := range ctr {
		nbids[i] = rng.Float64() * 8
		ctr[i] = make([]float64, slots)
		for j := range ctr[i] {
			if rng.Intn(3) == 0 {
				continue // slot specialists: zero CTR elsewhere
			}
			ctr[i][j] = rng.Float64() * 0.4
		}
	}
	res := sharedwd.SolveNonSeparable(nbids, ctr)
	fmt.Printf("  %d advertisers pruned to %d candidates (≤ k² = %d)\n", nb, res.Candidates, slots*slots)
	for j, adv := range res.Slots {
		if adv >= 0 {
			fmt.Printf("  slot %d → advertiser %d (weight %.3f)\n", j+1, adv, nbids[adv]*ctr[adv][j])
		}
	}
	fmt.Printf("  total expected value: %.3f\n", res.Value)
}

// qualitySource adapts a pre-sorted (ids, vals) pair to the threshold
// algorithm's sorted-access interface.
type sliceSource struct {
	ids  []int
	vals []float64
	pos  int
}

func qualitySource(ids []int, vals []float64) *sliceSource {
	return &sliceSource{ids: ids, vals: vals}
}

func (s *sliceSource) Next() (int, float64, bool) {
	if s.pos >= len(s.ids) {
		return 0, 0, false
	}
	i := s.pos
	s.pos++
	return s.ids[i], s.vals[i], true
}
