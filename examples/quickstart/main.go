// Command quickstart walks through the paper's running example (Figures
// 1–3): three advertisers, two ad slots, separable click-through rates —
// then resolves a few engine rounds end to end with GSP pricing and budget
// accounting.
package main

import (
	"fmt"

	"sharedwd"
)

func main() {
	fmt.Println("== Single-auction winner determination (Figures 1–3) ==")
	// Separable CTRs: ctr_ij = c_i·d_j with c = (1.2, 1.1, 1.3) and
	// d = (0.3, 0.2) — exactly Figure 2's factors.
	advertisers := []sharedwd.Advertiser{
		{ID: 0, Bid: 10, Quality: 1.2, Budget: 100}, // A
		{ID: 1, Bid: 9, Quality: 1.1, Budget: 100},  // B
		{ID: 2, Bid: 1, Quality: 1.3, Budget: 100},  // C
	}
	slotFactors := []float64{0.3, 0.2}
	assignment := sharedwd.SolveSeparable(advertisers, slotFactors)
	names := []string{"A", "B", "C"}
	for j, adv := range assignment.Slots {
		fmt.Printf("  slot %d → advertiser %s (effective bid %.2f)\n",
			j+1, names[adv], advertisers[adv].EffectiveBid())
	}
	fmt.Printf("  expected value of assignment: %.4f\n", assignment.Value)

	fmt.Println("\n== GSP prices for the winners ==")
	ranked := []sharedwd.RankedBidder{
		{ID: 0, Bid: 10, Quality: 1.2},
		{ID: 1, Bid: 9, Quality: 1.1},
		{ID: 2, Bid: 1, Quality: 1.3},
	}
	prices := sharedwd.Prices(sharedwd.GSP, ranked, slotFactors)
	for j, p := range prices {
		fmt.Printf("  slot %d winner pays %.4f per click (bid %.2f)\n", j+1, p, ranked[j].Bid)
	}

	fmt.Println("\n== End-to-end rounds over a synthetic workload ==")
	wcfg := sharedwd.DefaultWorkloadConfig()
	wcfg.NumAdvertisers = 200
	wcfg.NumPhrases = 12
	w, err := sharedwd.GenerateWorkload(wcfg)
	if err != nil {
		panic(err)
	}
	eng, err := sharedwd.NewEngine(w)
	if err != nil {
		panic(err)
	}
	for r := 0; r < 20; r++ {
		eng.Step(nil) // sample occurring phrases from their search rates
	}
	eng.Drain()
	st := eng.Stats()
	fmt.Printf("  rounds: %d   auctions resolved: %d\n", st.Rounds, st.AuctionsResolved)
	fmt.Printf("  aggregation ops performed: %d (shared plan)\n", st.NodesMaterialized)
	fmt.Printf("  ads displayed: %d, clicks charged: %d, revenue: %.2f\n",
		st.AdsDisplayed, st.ClicksCharged, st.Revenue)
	fmt.Printf("  clicks forgiven (budget exhausted): %d worth %.2f\n",
		st.ClicksForgiven, st.ForgivenValue)
}
