// Command sharedrounds demonstrates Section II's shared winner
// determination on the paper's shoe-store scenario: 200 general shoe stores
// bid on both "hiking boots" and "high heels", 40 sports stores only on the
// former, 30 fashion stores only on the latter. Sharing the general-store
// aggregate cuts the aggregation work by ~40%, exactly the paper's claim —
// and the gap widens with more phrases.
package main

import (
	"fmt"
	"math/rand"

	"sharedwd"
)

func main() {
	const general, sports, fashion = 200, 40, 30
	n := general + sports + fashion

	hikingBoots := sharedwd.NewAdvertiserSet(n)
	highHeels := sharedwd.NewAdvertiserSet(n)
	for i := 0; i < general; i++ {
		hikingBoots.Add(i)
		highHeels.Add(i)
	}
	for i := general; i < general+sports; i++ {
		hikingBoots.Add(i)
	}
	for i := general + sports; i < n; i++ {
		highHeels.Add(i)
	}

	inst, err := sharedwd.NewAggInstance(n, []sharedwd.AggQuery{
		{Vars: hikingBoots, Rate: 1},
		{Vars: highHeels, Rate: 1},
	})
	if err != nil {
		panic(err)
	}

	shared := sharedwd.Must(sharedwd.BuildSharedPlan(inst))
	naive := sharedwd.Must(sharedwd.BuildNaivePlan(inst))
	fmt.Println("== Shoe-store example (paper §II-B) ==")
	fmt.Printf("  advertisers: %d general + %d sports + %d fashion\n", general, sports, fashion)
	fmt.Printf("  unshared aggregation ops: %d\n", naive.TotalCost())
	fmt.Printf("  shared aggregation ops:   %d\n", shared.TotalCost())
	fmt.Printf("  saving: %.1f%%\n", 100*(1-float64(shared.TotalCost())/float64(naive.TotalCost())))

	// Run one round through both plans and confirm identical winners.
	rng := rand.New(rand.NewSource(42))
	bids := make([]float64, n)
	for i := range bids {
		bids[i] = rng.Float64() * 5
	}
	const k = 4
	leaf := func(v int) *sharedwd.TopKList {
		l := sharedwd.Must(sharedwd.NewTopKList(k))
		l.Push(sharedwd.TopKEntry{ID: v, Score: bids[v]})
		return l
	}
	sharedRes, sharedOps := sharedwd.ExecutePlan(shared, leaf, nil)
	naiveRes, naiveOps := sharedwd.ExecutePlan(naive, leaf, nil)
	for q, name := range []string{"hiking boots", "high heels"} {
		fmt.Printf("  top-%d for %-13q: %v (same as unshared: %v)\n",
			k, name, sharedRes[q].IDs(), sharedRes[q].Equal(naiveRes[q]))
	}
	fmt.Printf("  ops this round: shared %d vs unshared %d\n\n", sharedOps, naiveOps)

	// The two-stage query matcher in front of the auctions.
	m := sharedwd.NewMatcher([]string{"hiking boots", "high heels"})
	m.AddRewrite("stilettos", "high heels")
	for _, q := range []string{"  Hiking   Boots ", "stilettos", "sandals"} {
		if id, ok := m.Match(q); ok {
			fmt.Printf("  query %-18q → bid phrase #%d\n", q, id)
		} else {
			fmt.Printf("  query %-18q → no matching bid phrase (no auction)\n", q)
		}
	}

	// Scaling: probabilistic rounds over many overlapping phrases.
	fmt.Println("\n== Expected per-round cost, 24 phrases, topic overlap ==")
	wcfg := sharedwd.DefaultWorkloadConfig()
	wcfg.NumAdvertisers = 600
	wcfg.NumPhrases = 24
	w := sharedwd.Must(sharedwd.GenerateWorkload(wcfg))
	queries := make([]sharedwd.AggQuery, len(w.Interests))
	for q := range w.Interests {
		queries[q] = sharedwd.AggQuery{Vars: w.Interests[q], Rate: w.Rates[q]}
	}
	inst2, err := sharedwd.NewAggInstance(len(w.Advertisers), queries)
	if err != nil {
		panic(err)
	}
	s2 := sharedwd.Must(sharedwd.BuildSharedPlan(inst2))
	f2 := sharedwd.Must(sharedwd.BuildFragmentOnlyPlan(inst2))
	n2 := sharedwd.Must(sharedwd.BuildNaivePlan(inst2))
	fmt.Printf("  naive:          %8.1f expected ops/round\n", n2.ExpectedCost())
	fmt.Printf("  fragments only: %8.1f expected ops/round\n", f2.ExpectedCost())
	fmt.Printf("  full heuristic: %8.1f expected ops/round\n", s2.ExpectedCost())
}
