module sharedwd

go 1.22
