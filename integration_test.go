// Integration tests exercising the public facade end to end: the paths a
// downstream user actually takes, crossing module boundaries (workload →
// plan → engine → pricing → clicks → budgets) rather than testing one
// package at a time.
package sharedwd

import (
	"math"
	"math/rand"
	"testing"

	"sharedwd/internal/workload"
)

func TestFacadeSingleAuctionFlow(t *testing.T) {
	advertisers := []Advertiser{
		{ID: 0, Bid: 10, Quality: 1.2, Budget: 100},
		{ID: 1, Bid: 9, Quality: 1.1, Budget: 100},
		{ID: 2, Bid: 1, Quality: 1.3, Budget: 100},
	}
	d := []float64{0.3, 0.2}
	a := SolveSeparable(advertisers, d)
	if a.Slots[0] != 0 || a.Slots[1] != 1 {
		t.Fatalf("assignment = %v", a.Slots)
	}
	ranked := []RankedBidder{
		{ID: 0, Bid: 10, Quality: 1.2},
		{ID: 1, Bid: 9, Quality: 1.1},
		{ID: 2, Bid: 1, Quality: 1.3},
	}
	for _, rule := range []PricingRule{FirstPrice, GSP, VCG} {
		prices := Prices(rule, ranked, d)
		for j, p := range prices {
			if p > ranked[j].Bid+1e-9 {
				t.Fatalf("%v charges %v above bid %v", rule, p, ranked[j].Bid)
			}
		}
	}
}

func TestFacadeSharedPlanFlow(t *testing.T) {
	boots := AdvertiserSetOf(6, 0, 1, 2, 3)
	heels := AdvertiserSetOf(6, 0, 1, 4, 5)
	inst, err := NewAggInstance(6, []AggQuery{{Vars: boots, Rate: 1}, {Vars: heels, Rate: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, build := range []func(*AggInstance) (*AggPlan, error){BuildSharedPlan, BuildFragmentOnlyPlan, BuildDisjointPlan, BuildNaivePlan} {
		p, err := build(inst)
		if err != nil {
			t.Fatal(err)
		}
		bids := []float64{5, 9, 2, 7, 4, 8}
		leaf := func(v int) *TopKList {
			l := Must(NewTopKList(2))
			l.Push(TopKEntry{ID: v, Score: bids[v]})
			return l
		}
		results, mat := ExecutePlan(p, leaf, nil)
		if mat <= 0 {
			t.Fatal("no aggregation performed")
		}
		if ids := results[0].IDs(); ids[0] != 1 || ids[1] != 3 {
			t.Fatalf("boots top-2 = %v", ids)
		}
		if ids := results[1].IDs(); ids[0] != 1 || ids[1] != 5 {
			t.Fatalf("heels top-2 = %v", ids)
		}
	}
}

// TestFacadeFullDayBothEngines simulates a "day" of rounds on both engine
// regimes and checks the cross-cutting invariants a provider cares about.
func TestFacadeFullDayBothEngines(t *testing.T) {
	wcfg := DefaultWorkloadConfig()
	wcfg.NumAdvertisers = 150
	wcfg.NumPhrases = 12
	wcfg.Seed = 99
	w := Must(GenerateWorkload(wcfg))
	eng, err := NewEngine(w)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		eng.Step(nil)
		w.PerturbBids(0.02)
	}
	eng.Drain()
	st := eng.Stats()
	if st.Rounds < 50 || st.AuctionsResolved == 0 || st.Revenue <= 0 {
		t.Fatalf("engine stats: %+v", st)
	}
	total := 0.0
	for i := range w.Advertisers {
		if eng.Spent(i) > w.Advertisers[i].Budget+1e-6 {
			t.Fatalf("advertiser %d over budget", i)
		}
		total += eng.Spent(i)
	}
	if math.Abs(total-st.Revenue) > 1e-6 {
		t.Fatalf("revenue %v != Σspent %v", st.Revenue, total)
	}

	// Per-phrase-quality regime.
	wcfg.PerPhraseQuality = true
	wq := Must(GenerateWorkload(wcfg))
	seng, err := NewSortEngine(wq)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		seng.Step(nil)
	}
	sst := seng.Stats()
	if sst.AuctionsResolved == 0 || sst.SortedAccesses == 0 {
		t.Fatalf("sort engine stats: %+v", sst)
	}
}

func TestFacadeThrottlingFlow(t *testing.T) {
	ads := []OutstandingAd{{Price: 3, CTR: 0.5}, {Price: 1, CTR: 0.2}}
	exact := ExactThrottledBid(2, 5, 2, ads)
	tr, err := NewThrottler(0, 2, 5, 2, ads)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Bounds().Contains(exact) {
		t.Fatalf("bounds %v exclude exact %v", tr.Bounds(), exact)
	}
	other, _ := NewThrottler(1, 0.1, 5, 2, nil)
	if CompareThrottled(tr, other) != 1 {
		t.Fatal("throttler with higher bid should outrank")
	}
	winners := TopKThrottled(1, []*Throttler{tr, other})
	if len(winners) != 1 || winners[0].ID != 0 {
		t.Fatalf("winners = %v", winners)
	}
}

func TestFacadeMatcherToEngine(t *testing.T) {
	// Raw queries → matcher → occurrence vector → engine step.
	wcfg := DefaultWorkloadConfig()
	wcfg.NumAdvertisers = 60
	wcfg.NumPhrases = 6
	w := Must(GenerateWorkload(wcfg))
	m := NewMatcher(w.PhraseNames)
	eng, err := NewEngine(w)
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]bool, len(w.PhraseNames))
	matched := 0
	for _, query := range []string{w.PhraseNames[0], "  " + w.PhraseNames[3] + " ", "no such phrase"} {
		if id, ok := m.Match(query); ok {
			occ[id] = true
			matched++
		}
	}
	if matched != 2 {
		t.Fatalf("matched %d queries, want 2", matched)
	}
	rep := eng.Step(occ)
	if len(rep.Auctions) != 2 {
		t.Fatalf("resolved %d auctions, want 2", len(rep.Auctions))
	}
}

// TestRawQueryStreamToEngine drives the full front door: a raw query
// stream (messy casing, synonyms, junk) through the two-stage matcher into
// engine rounds, checking that auctions run exactly for matched phrases.
func TestRawQueryStreamToEngine(t *testing.T) {
	wcfg := DefaultWorkloadConfig()
	wcfg.NumAdvertisers = 80
	wcfg.NumPhrases = 8
	wcfg.Seed = 21
	w := Must(GenerateWorkload(wcfg))
	qs := workload.NewQueryStream(w, 0.2, 9)
	qs.AddSynonym("trail boots", w.PhraseNames[0])
	m := NewMatcher(w.PhraseNames)
	m.AddRewrite("trail boots", w.PhraseNames[0])
	eng, err := NewEngine(w)
	if err != nil {
		t.Fatal(err)
	}
	auctions := 0
	for r := 0; r < 40; r++ {
		occ, _ := workload.Occurrences(m, len(w.PhraseNames), qs.Round())
		rep := eng.Step(occ)
		for q := range rep.Auctions {
			if !occ[q] {
				t.Fatalf("auction for non-occurring phrase %d", q)
			}
		}
		auctions += len(rep.Auctions)
	}
	if auctions == 0 {
		t.Fatal("no auctions resolved from the query stream")
	}
}

// TestAdversarialClickTiming injects the two extreme click schedules — all
// clicks instantly, and all clicks at the last possible round — and checks
// budget accounting never breaks under either policy.
func TestAdversarialClickTiming(t *testing.T) {
	for _, hazard := range []float64{1.0, 0.011} {
		for _, policy := range []BudgetPolicy{Naive, Throttled} {
			wcfg := DefaultWorkloadConfig()
			wcfg.NumAdvertisers = 60
			wcfg.NumPhrases = 6
			wcfg.Seed = 7
			w := Must(GenerateWorkload(wcfg))
			for i := range w.Advertisers {
				w.Advertisers[i].Budget = 2.5
			}
			cfg := DefaultEngineConfig()
			cfg.Policy = policy
			cfg.ClickHazard = hazard
			cfg.ClickHorizon = 90
			eng, err := NewEngine(w, WithConfig(cfg))
			if err != nil {
				t.Fatal(err)
			}
			occ := make([]bool, len(w.Interests))
			for q := range occ {
				occ[q] = true
			}
			for r := 0; r < 30; r++ {
				eng.Step(occ)
			}
			eng.Drain()
			for i := range w.Advertisers {
				if eng.Spent(i) > w.Advertisers[i].Budget+1e-6 {
					t.Fatalf("hazard=%v policy=%v: advertiser %d over budget", hazard, policy, i)
				}
			}
		}
	}
}

// TestTraceReplayComparesPolicies records one trace and replays it against
// both budget policies — the canonical apples-to-apples comparison. The
// recorded inputs are identical, so any outcome difference is attributable
// to the policy alone; and replaying the same trace twice must be
// bit-identical.
func TestTraceReplayComparesPolicies(t *testing.T) {
	mkWorkload := func() *Workload {
		wcfg := DefaultWorkloadConfig()
		wcfg.NumAdvertisers = 80
		wcfg.NumPhrases = 8
		wcfg.Seed = 15
		w := Must(GenerateWorkload(wcfg))
		for i := range w.Advertisers {
			w.Advertisers[i].Budget = 3
		}
		return w
	}
	trace := workload.Record(mkWorkload(), 40, 0.05)

	run := func(policy BudgetPolicy) EngineStats {
		w := mkWorkload()
		cfg := DefaultEngineConfig()
		cfg.Policy = policy
		cfg.ClickHazard = 0.15
		cfg.ClickHorizon = 40
		eng, err := NewEngine(w, WithConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		for r := range trace.Rounds {
			eng.Step(trace.Apply(w, r))
		}
		eng.Drain()
		return eng.Stats()
	}
	naive1 := run(Naive)
	naive2 := run(Naive)
	throttled := run(Throttled)
	if naive1 != naive2 {
		t.Fatalf("same trace, same policy diverged:\n%+v\n%+v", naive1, naive2)
	}
	if naive1.ForgivenValue == 0 {
		t.Fatal("trace failed to stress budgets under the naive policy")
	}
	if throttled.ForgivenValue >= naive1.ForgivenValue {
		t.Fatalf("throttled forgave %v, naive %v; trace comparison inverted",
			throttled.ForgivenValue, naive1.ForgivenValue)
	}
}

// TestGamingFacade smoke-tests the gaming entry points through the facade.
func TestGamingFacade(t *testing.T) {
	single, err := RunGamingScenario(3, 20, Naive)
	if err != nil {
		t.Fatal(err)
	}
	if single.GamerBudget <= 0 {
		t.Fatal("scenario did not run")
	}
	avg, err := RunGamingExperiment(3, 20, 5, Throttled)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Policy != Throttled {
		t.Fatalf("policy = %v", avg.Policy)
	}
}

// TestDeterministicReplay: identical seeds produce identical day-level
// outcomes across completely separate engine instances.
func TestDeterministicReplay(t *testing.T) {
	run := func() (float64, int) {
		wcfg := DefaultWorkloadConfig()
		wcfg.NumAdvertisers = 100
		wcfg.NumPhrases = 10
		wcfg.Seed = 1234
		w := Must(GenerateWorkload(wcfg))
		eng, err := NewEngine(w)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 25; r++ {
			eng.Step(nil)
			w.PerturbBids(0.05)
		}
		eng.Drain()
		return eng.Stats().Revenue, eng.Stats().ClicksCharged
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || c1 != c2 {
		t.Fatalf("replay diverged: (%v, %d) vs (%v, %d)", r1, c1, r2, c2)
	}
}

// TestAnalyticsFacade exercises the Section-VII service via the facade.
func TestAnalyticsFacade(t *testing.T) {
	svc := Must(NewAnalytics(8))
	id, err := svc.Register(1, AdvertiserSetOf(8, 0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Build(); err != nil {
		t.Fatal(err)
	}
	stats := make([]PhraseStats, 8)
	rng := rand.New(rand.NewSource(4))
	for q := range stats {
		stats[q] = PhraseStats{MaxBid: rng.Float64(), SumBids: 2, Bids: 2, Searches: 10}
	}
	res, _, err := svc.Evaluate(stats)
	if err != nil {
		t.Fatal(err)
	}
	if res[id].Searches != 40 || res[id].Bids != 8 {
		t.Fatalf("result = %+v", res[id])
	}
}

// TestCustomWorkloadFacade assembles a bespoke workload through the
// internal constructor used by experiments and runs it end to end.
func TestCustomWorkloadFacade(t *testing.T) {
	advertisers := []Advertiser{
		{ID: 0, Bid: 3, Quality: 1, Budget: 50},
		{ID: 1, Bid: 2, Quality: 1, Budget: 50},
	}
	all := AdvertiserSetOf(2, 0, 1)
	w, err := workload.NewCustom(advertisers, []AdvertiserSet{all}, []float64{1}, []float64{0.4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(w)
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Step([]bool{true})
	slots := rep.Auctions[0]
	if len(slots) != 1 || slots[0].Advertiser != 0 {
		t.Fatalf("slots = %+v", slots)
	}
	// GSP with one slot: winner pays runner-up's effective bid = 2.
	if math.Abs(slots[0].PricePaid-2) > 1e-9 {
		t.Fatalf("price = %v", slots[0].PricePaid)
	}
}
