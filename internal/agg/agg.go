// Package agg catalogs the aggregation operators the paper's abstract
// framework (Sections II-C and VII) ranges over, each tagged with the
// algebraic axioms it satisfies, plus a property-based axiom checker used
// by the tests to certify every catalog entry.
//
// The catalog makes the Figure-5 landscape concrete and executable: an
// operator's axiom profile determines which planner applies (hash-consing
// for non-associative rows, the sharedagg heuristic for semilattices, the
// disjoint-plan variant for group-like multiset aggregates) and which plans
// evaluate it correctly.
package agg

import (
	"fmt"
	"math"

	"sharedwd/internal/plan"
)

// Op is a cataloged binary aggregation operator over float64 with its
// algebraic profile.
type Op struct {
	Name   string
	Axioms plan.Axioms
	// Combine is the operator itself.
	Combine func(a, b float64) float64
	// Idempotent operators tolerate overlapping plan covers; the rest
	// require disjoint-children plans (sharedagg.BuildDisjoint).
	// This is derivable from Axioms.Idem; stored for readability at call
	// sites via NeedsDisjointPlan.
}

// NeedsDisjointPlan reports whether plans evaluating this operator must
// aggregate variable-disjoint children (multiset semantics).
func (o Op) NeedsDisjointPlan() bool { return !o.Axioms.Idem }

// Catalog returns the built-in operators with their axiom profiles.
func Catalog() []Op {
	return []Op{
		{
			Name:    "sum",
			Axioms:  plan.Axioms{Assoc: true, Identity: true, Comm: true, Div: true}, // Abelian group
			Combine: func(a, b float64) float64 { return a + b },
		},
		{
			Name:    "product",
			Axioms:  plan.Axioms{Assoc: true, Identity: true, Comm: true}, // commutative monoid (ℝ with 0 kills division)
			Combine: func(a, b float64) float64 { return a * b },
		},
		{
			Name:    "max",
			Axioms:  plan.Axioms{Assoc: true, Idem: true, Comm: true}, // semilattice
			Combine: math.Max,
		},
		{
			Name:    "min",
			Axioms:  plan.Axioms{Assoc: true, Idem: true, Comm: true}, // semilattice
			Combine: math.Min,
		},
		{
			Name:    "midpoint",
			Axioms:  plan.Axioms{Idem: true, Comm: true, Div: true}, // idempotent commutative quasigroup
			Combine: func(a, b float64) float64 { return (a + b) / 2 },
		},
		{
			Name:    "left-shift", // 2a+b: a plain magma
			Axioms:  plan.Axioms{},
			Combine: func(a, b float64) float64 { return 2*a + b },
		},
		{
			Name:    "subtract", // quasigroup
			Axioms:  plan.Axioms{Div: true},
			Combine: func(a, b float64) float64 { return a - b },
		},
	}
}

// Lookup returns the named catalog operator.
func Lookup(name string) (Op, error) {
	for _, op := range Catalog() {
		if op.Name == name {
			return op, nil
		}
	}
	return Op{}, fmt.Errorf("agg: unknown operator %q", name)
}

// Violation describes an axiom the operator was observed to break.
type Violation struct {
	Axiom   string
	Example string
}

// CheckAxioms probes the operator with the given sample values and reports
// every claimed axiom that fails and every unclaimed axiom that never
// failed (the profile should be tight). Identity and divisibility are
// semi-decidable by sampling, so only *claimed* A2/A5 are probed (via a
// caller-supplied identity / solver when available) — here they are
// checked structurally: A2 by searching the samples for a two-sided
// identity, A5 by solving a⊕x=b numerically for the affine catalog ops.
func CheckAxioms(op Op, samples []float64, tol float64) []Violation {
	var out []Violation
	eq := func(x, y float64) bool { return math.Abs(x-y) <= tol }

	assocHolds, commHolds, idemHolds := true, true, true
	var assocEx, commEx, idemEx string
	for _, a := range samples {
		if !eq(op.Combine(a, a), a) {
			idemHolds = false
			idemEx = fmt.Sprintf("a=%v", a)
		}
		for _, b := range samples {
			if !eq(op.Combine(a, b), op.Combine(b, a)) {
				commHolds = false
				commEx = fmt.Sprintf("a=%v b=%v", a, b)
			}
			for _, c := range samples {
				if !eq(op.Combine(a, op.Combine(b, c)), op.Combine(op.Combine(a, b), c)) {
					assocHolds = false
					assocEx = fmt.Sprintf("a=%v b=%v c=%v", a, b, c)
				}
			}
		}
	}
	report := func(name string, claimed, holds bool, ex string) {
		if claimed && !holds {
			out = append(out, Violation{Axiom: name, Example: "claimed but fails at " + ex})
		}
		if !claimed && holds {
			out = append(out, Violation{Axiom: name, Example: "holds on all samples but not claimed (profile too weak)"})
		}
	}
	report("A1 associativity", op.Axioms.Assoc, assocHolds, assocEx)
	report("A3 idempotence", op.Axioms.Idem, idemHolds, idemEx)
	report("A4 commutativity", op.Axioms.Comm, commHolds, commEx)
	return out
}
