package agg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
)

func sampleValues() []float64 {
	return []float64{-3, -1, 0, 0.5, 1, 2, 7}
}

// TestCatalogProfilesAreTight: every cataloged operator satisfies exactly
// the decidable axioms (A1, A3, A4) it claims — no more, no less.
func TestCatalogProfilesAreTight(t *testing.T) {
	for _, op := range Catalog() {
		if vs := CheckAxioms(op, sampleValues(), 1e-9); len(vs) != 0 {
			t.Errorf("%s: %v", op.Name, vs)
		}
	}
}

func TestLookup(t *testing.T) {
	if op, err := Lookup("max"); err != nil || op.Name != "max" {
		t.Fatalf("Lookup(max) = %v, %v", op, err)
	}
	if _, err := Lookup("median"); err == nil {
		t.Fatal("unknown operator should error")
	}
}

func TestNeedsDisjointPlan(t *testing.T) {
	cases := map[string]bool{"sum": true, "product": true, "max": false, "min": false, "midpoint": false}
	for name, want := range cases {
		op, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if op.NeedsDisjointPlan() != want {
			t.Errorf("%s: NeedsDisjointPlan = %v, want %v", name, op.NeedsDisjointPlan(), want)
		}
	}
}

// TestQuickCatalogOnPlans: every associative-commutative catalog operator
// evaluates correctly through the planner its profile selects — idempotent
// ops on the unrestricted heuristic plan, the rest on the disjoint plan.
func TestQuickCatalogOnPlans(t *testing.T) {
	for _, op := range Catalog() {
		if !op.Axioms.Assoc || !op.Axioms.Comm {
			continue // non-associative rows use the ExprPlan (tested in plan)
		}
		op := op
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			inst := plan.RandomCoinFlipInstance(rng, 4+rng.Intn(12), 2+rng.Intn(4), 1)
			var p *plan.Plan
			if op.NeedsDisjointPlan() {
				p = sharedagg.BuildDisjoint(inst)
			} else {
				p = sharedagg.Build(inst)
			}
			vals := make([]float64, inst.NumVars)
			for i := range vals {
				vals[i] = rng.Float64()*4 - 2
			}
			got, _ := plan.Execute(p, func(v int) float64 { return vals[v] }, op.Combine, nil)
			for qi, q := range inst.Queries {
				first := true
				var want float64
				q.Vars.ForEach(func(v int) bool {
					if first {
						want = vals[v]
						first = false
					} else {
						want = op.Combine(want, vals[v])
					}
					return true
				})
				diff := got[qi] - want
				if diff > 1e-6 || diff < -1e-6 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", op.Name, err)
		}
	}
}

// TestWrongPlanBreaksMultisetOps documents the failure mode the disjoint
// variant exists for: find an instance where sum over the *unrestricted*
// plan double-counts.
func TestWrongPlanBreaksMultisetOps(t *testing.T) {
	sum, err := Lookup("sum")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 400; trial++ {
		inst := plan.RandomCoinFlipInstance(rng, 6+rng.Intn(10), 3+rng.Intn(4), 1)
		p := sharedagg.Build(inst)
		if p.DisjointChildren() {
			continue
		}
		vals := make([]float64, inst.NumVars)
		for i := range vals {
			vals[i] = 1
		}
		got, _ := plan.Execute(p, func(v int) float64 { return vals[v] }, sum.Combine, nil)
		for qi, q := range inst.Queries {
			if got[qi] != float64(q.Vars.Count()) {
				return // found and demonstrated the double count
			}
		}
	}
	t.Skip("no overlapping plan arose in 400 trials")
}
