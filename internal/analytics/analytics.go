// Package analytics implements the paper's Section VII (ongoing work):
// shared aggregation of the statistics that advertisers' bidding programs
// want — "the average (or maximum) bid placed on a given set of bid
// phrases", "the total number of users who have searched for one of a set
// of bid phrases", "how many distinct advertisers compete there" — computed
// fresh every round because bids change constantly.
//
// Here the variables of the shared-aggregation framework are *bid phrases*
// (not advertisers): many bidding programs ask over overlapping phrase sets
// (everything containing "music", everything in the shoes topic, ...), so a
// single A-plan over the phrase space answers all registered queries while
// computing each shared sub-aggregate once. One plan execution carries a
// product of monoids — (sum, count, max, min, search-count, bidder-sketch)
// — because a tuple of associative-commutative aggregates is itself an
// associative-commutative aggregate; means and densities are derived from
// the tuple afterwards.
package analytics

import (
	"fmt"
	"strconv"

	"sharedwd/internal/bitset"
	"sharedwd/internal/bloom"
	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/topk"
)

// PhraseStats is one bid phrase's per-round base statistics, supplied by
// the auction engine (or the workload) at evaluation time.
type PhraseStats struct {
	// MaxBid and SumBids summarize the bids currently placed on the phrase.
	MaxBid, SumBids float64
	// SumBidSquares is Σb² over the phrase's bids, enabling variance.
	SumBidSquares float64
	// Bids is the number of bids placed (SumBids/Bids = mean bid).
	Bids int
	// Searches is the number of searches the phrase received this round.
	Searches int
	// Bidders identifies the advertisers bidding on the phrase; used for
	// distinct-bidder estimation across phrase sets. Nil disables sketches.
	Bidders []int
}

// Result is the aggregate over one registered phrase set.
type Result struct {
	MaxBid   float64
	SumBids  float64
	Bids     int
	Searches int
	// MeanBid is SumBids/Bids (0 when no bids).
	MeanBid float64
	// VarianceBid is the population variance of bids over the set,
	// E[b²]−E[b]², combined from the sum-of-squares component (the
	// paper's point that sum-family aggregates compose into variance).
	VarianceBid float64
	// DistinctBidders estimates the number of distinct advertisers bidding
	// on any phrase of the set (Bloom sketch union; −1 if sketches are
	// disabled). Duplicate-insensitive, unlike Bids.
	DistinctBidders float64
	// TopPhrases lists the phrases of the set with the highest max bids.
	TopPhrases []topk.Entry
}

// Service registers phrase-set queries from bidding programs and answers
// all of them per round through one shared aggregation plan.
type Service struct {
	numPhrases int
	sets       []bitset.Set // deduplicated phrase sets
	setIndex   map[string]int
	// subscribers[i] lists the advertisers subscribed to set i (bookkeeping
	// only; sharing makes additional subscribers free).
	subscribers [][]int

	built *plan.Plan

	// Bloom sizing for bidder sketches.
	sketchBits, sketchHashes int
	// TopPhrases list size.
	topK int
}

// New creates a service over a phrase universe of the given size.
func New(numPhrases int) *Service {
	if numPhrases <= 0 {
		panic(fmt.Sprintf("analytics: non-positive phrase universe %d", numPhrases))
	}
	mBits, kHashes := bloom.OptimalParams(512, 0.02)
	return &Service{
		numPhrases:   numPhrases,
		setIndex:     make(map[string]int),
		sketchBits:   mBits,
		sketchHashes: kHashes,
		topK:         5,
	}
}

// QueryID identifies a registered phrase-set query.
type QueryID int

// Register subscribes an advertiser's bidding program to aggregates over
// the given phrase set. A-equivalent sets (same phrases) are shared: the
// same QueryID is returned to every subscriber. Registration must happen
// before Build.
func (s *Service) Register(advertiser int, phrases bitset.Set) (QueryID, error) {
	if s.built != nil {
		return 0, fmt.Errorf("analytics: Register after Build")
	}
	if phrases.Cap() != s.numPhrases {
		return 0, fmt.Errorf("analytics: phrase set capacity %d, want %d", phrases.Cap(), s.numPhrases)
	}
	if phrases.IsEmpty() {
		return 0, fmt.Errorf("analytics: empty phrase set")
	}
	key := phrases.Key()
	if id, ok := s.setIndex[key]; ok {
		s.subscribers[id] = append(s.subscribers[id], advertiser)
		return QueryID(id), nil
	}
	id := len(s.sets)
	s.setIndex[key] = id
	s.sets = append(s.sets, phrases.Clone())
	s.subscribers = append(s.subscribers, []int{advertiser})
	return QueryID(id), nil
}

// Subscribers returns the advertisers sharing query id.
func (s *Service) Subscribers(id QueryID) []int {
	return append([]int(nil), s.subscribers[id]...)
}

// NumQueries returns the number of distinct registered phrase sets.
func (s *Service) NumQueries() int { return len(s.sets) }

// Build constructs the shared aggregation plan over the registered sets
// using the Section II-D heuristic (all rates 1: programs evaluate every
// round). It must be called once after registration.
func (s *Service) Build() error {
	if s.built != nil {
		return fmt.Errorf("analytics: Build called twice")
	}
	if len(s.sets) == 0 {
		return fmt.Errorf("analytics: no registered queries")
	}
	queries := make([]plan.Query, len(s.sets))
	for i, set := range s.sets {
		queries[i] = plan.Query{Vars: set, Rate: 1}
	}
	inst, err := plan.NewInstance(s.numPhrases, queries)
	if err != nil {
		return fmt.Errorf("analytics: %w", err)
	}
	// The record carries sums and counts — multiset-semantics aggregates —
	// so the plan must aggregate disjoint children only (see Figure 5's
	// semilattice-vs-group distinction): BuildDisjoint, not Build.
	s.built = sharedagg.BuildDisjoint(inst)
	if !s.built.DisjointChildren() {
		return fmt.Errorf("analytics: planner produced overlapping aggregations")
	}
	return s.built.Validate()
}

// PlanCost reports the number of aggregation nodes in the shared plan and
// in the unshared per-query baseline, quantifying the sharing win.
func (s *Service) PlanCost() (shared, naive int, err error) {
	if s.built == nil {
		return 0, 0, fmt.Errorf("analytics: Build first")
	}
	return s.built.TotalCost(), plan.NaivePlan(s.built.Inst).TotalCost(), nil
}

// record is the product-of-monoids value flowing through the plan.
type record struct {
	maxBid   float64
	sumBids  float64
	sumSq    float64
	bids     int
	searches int
	sketch   *bloom.Filter // nil when sketches are disabled
	top      *topk.List
}

// combine is the ⊕ of the product monoid: componentwise max/sum/union.
func combine(a, b record) record {
	out := record{
		maxBid:   a.maxBid,
		sumBids:  a.sumBids + b.sumBids,
		sumSq:    a.sumSq + b.sumSq,
		bids:     a.bids + b.bids,
		searches: a.searches + b.searches,
	}
	if b.maxBid > out.maxBid {
		out.maxBid = b.maxBid
	}
	switch {
	case a.sketch == nil:
		out.sketch = b.sketch
	case b.sketch == nil:
		out.sketch = a.sketch
	default:
		out.sketch = bloom.Union(a.sketch, b.sketch)
	}
	out.top = topk.Merge(a.top, b.top)
	return out
}

// Evaluate answers every registered query for the round described by the
// per-phrase stats (stats[q] for phrase q). It returns results indexed by
// QueryID plus the number of aggregation nodes materialized.
func (s *Service) Evaluate(stats []PhraseStats) (map[QueryID]Result, int, error) {
	if s.built == nil {
		return nil, 0, fmt.Errorf("analytics: Build first")
	}
	if len(stats) != s.numPhrases {
		return nil, 0, fmt.Errorf("analytics: %d stats for %d phrases", len(stats), s.numPhrases)
	}
	leaf := func(q int) record {
		st := stats[q]
		r := record{
			maxBid:   st.MaxBid,
			sumBids:  st.SumBids,
			sumSq:    st.SumBidSquares,
			bids:     st.Bids,
			searches: st.Searches,
			top:      topk.FromEntries(s.topK, topk.Entry{ID: q, Score: st.MaxBid}),
		}
		if st.Bidders != nil {
			f := bloom.New(s.sketchBits, s.sketchHashes)
			for _, b := range st.Bidders {
				f.Add(strconv.Itoa(b))
			}
			r.sketch = f
		}
		return r
	}
	raw, materialized := plan.Execute(s.built, leaf, combine, nil)
	out := make(map[QueryID]Result, len(raw))
	for qi, r := range raw {
		res := Result{
			MaxBid:          r.maxBid,
			SumBids:         r.sumBids,
			Bids:            r.bids,
			Searches:        r.searches,
			DistinctBidders: -1,
			TopPhrases:      r.top.Entries(),
		}
		if r.bids > 0 {
			res.MeanBid = r.sumBids / float64(r.bids)
			res.VarianceBid = r.sumSq/float64(r.bids) - res.MeanBid*res.MeanBid
			if res.VarianceBid < 0 {
				res.VarianceBid = 0 // float rounding on near-constant bids
			}
		}
		if r.sketch != nil {
			res.DistinctBidders = r.sketch.EstimateCount()
		}
		out[QueryID(qi)] = res
	}
	return out, materialized, nil
}
