package analytics

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"sharedwd/internal/bitset"
)

func mkStats(n int, fn func(q int) PhraseStats) []PhraseStats {
	out := make([]PhraseStats, n)
	for q := range out {
		out[q] = fn(q)
	}
	return out
}

func TestRegisterValidation(t *testing.T) {
	s := New(4)
	if _, err := s.Register(0, bitset.New(4)); err == nil {
		t.Fatal("empty set should be rejected")
	}
	if _, err := s.Register(0, bitset.FromIndices(5, 0)); err == nil {
		t.Fatal("capacity mismatch should be rejected")
	}
	if err := s.Build(); err == nil {
		t.Fatal("Build with no queries should fail")
	}
}

func TestRegisterSharesEquivalentSets(t *testing.T) {
	s := New(6)
	a, err := s.Register(1, bitset.FromIndices(6, 0, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Register(2, bitset.FromIndices(6, 4, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("A-equivalent sets got distinct IDs %d, %d", a, b)
	}
	if subs := s.Subscribers(a); len(subs) != 2 {
		t.Fatalf("subscribers = %v", subs)
	}
	if s.NumQueries() != 1 {
		t.Fatalf("NumQueries = %d", s.NumQueries())
	}
}

func TestLifecycleErrors(t *testing.T) {
	s := New(4)
	if _, err := s.Register(0, bitset.FromIndices(4, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Evaluate(make([]PhraseStats, 4)); err == nil {
		t.Fatal("Evaluate before Build should fail")
	}
	if _, _, err := s.PlanCost(); err == nil {
		t.Fatal("PlanCost before Build should fail")
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	if err := s.Build(); err == nil {
		t.Fatal("double Build should fail")
	}
	if _, err := s.Register(0, bitset.FromIndices(4, 2, 3)); err == nil {
		t.Fatal("Register after Build should fail")
	}
	if _, _, err := s.Evaluate(make([]PhraseStats, 3)); err == nil {
		t.Fatal("wrong stats length should fail")
	}
}

func TestAggregatesByHand(t *testing.T) {
	s := New(3)
	id, err := s.Register(7, bitset.FromIndices(3, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	stats := []PhraseStats{
		{MaxBid: 4, SumBids: 10, SumBidSquares: 36, Bids: 3, Searches: 100, Bidders: []int{1, 2, 3}},
		{MaxBid: 99, SumBids: 99, Bids: 1, Searches: 999, Bidders: []int{9}}, // not in the set
		{MaxBid: 6, SumBids: 8, SumBidSquares: 40, Bids: 2, Searches: 50, Bidders: []int{2, 4}},
	}
	res, _, err := s.Evaluate(stats)
	if err != nil {
		t.Fatal(err)
	}
	r := res[id]
	if r.MaxBid != 6 || r.SumBids != 18 || r.Bids != 5 || r.Searches != 150 {
		t.Fatalf("aggregates = %+v", r)
	}
	if math.Abs(r.MeanBid-3.6) > 1e-12 {
		t.Fatalf("MeanBid = %v, want 3.6", r.MeanBid)
	}
	// Variance: E[b²] − E[b]² = 76/5 − 3.6² = 15.2 − 12.96 = 2.24.
	if math.Abs(r.VarianceBid-2.24) > 1e-12 {
		t.Fatalf("VarianceBid = %v, want 2.24", r.VarianceBid)
	}
	// Distinct bidders over {1,2,3} ∪ {2,4} = 4 (sketch estimate).
	if math.Abs(r.DistinctBidders-4) > 1 {
		t.Fatalf("DistinctBidders = %v, want ≈ 4", r.DistinctBidders)
	}
	// Top phrases by max bid: phrase 2 (6) then phrase 0 (4).
	if len(r.TopPhrases) != 2 || r.TopPhrases[0].ID != 2 || r.TopPhrases[1].ID != 0 {
		t.Fatalf("TopPhrases = %v", r.TopPhrases)
	}
}

func TestSketchDisabled(t *testing.T) {
	s := New(2)
	id, _ := s.Register(0, bitset.FromIndices(2, 0, 1))
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	res, _, err := s.Evaluate(mkStats(2, func(q int) PhraseStats {
		return PhraseStats{MaxBid: 1, SumBids: 1, Bids: 1}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res[id].DistinctBidders != -1 {
		t.Fatalf("DistinctBidders = %v, want -1 with sketches disabled", res[id].DistinctBidders)
	}
}

func TestSharingReducesPlanCost(t *testing.T) {
	const phrases = 40
	s := New(phrases)
	// 12 programs over heavily overlapping sets: a common core + a tail.
	for p := 0; p < 12; p++ {
		set := bitset.New(phrases)
		for q := 0; q < 20; q++ {
			set.Add(q) // shared core
		}
		set.Add(20 + p)
		if _, err := s.Register(p, set); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	shared, naive, err := s.PlanCost()
	if err != nil {
		t.Fatal(err)
	}
	if shared >= naive/2 {
		t.Fatalf("shared %d vs naive %d; expected ≥ 2× sharing on this structure", shared, naive)
	}
}

// TestQuickMatchesDirectAggregation: for random registrations and stats,
// the shared-plan results equal direct per-query aggregation.
func TestQuickMatchesDirectAggregation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phrases := 3 + rng.Intn(20)
		s := New(phrases)
		ids := map[QueryID]bitset.Set{}
		for p := 0; p < 1+rng.Intn(6); p++ {
			set := bitset.New(phrases)
			for q := 0; q < phrases; q++ {
				if rng.Intn(2) == 0 {
					set.Add(q)
				}
			}
			if set.IsEmpty() {
				set.Add(rng.Intn(phrases))
			}
			id, err := s.Register(p, set)
			if err != nil {
				return false
			}
			ids[id] = set
		}
		if err := s.Build(); err != nil {
			return false
		}
		stats := mkStats(phrases, func(q int) PhraseStats {
			nb := rng.Intn(4)
			bidders := make([]int, nb)
			for i := range bidders {
				bidders[i] = rng.Intn(30)
			}
			return PhraseStats{
				MaxBid:   float64(rng.Intn(10)),
				SumBids:  float64(rng.Intn(50)),
				Bids:     nb,
				Searches: rng.Intn(100),
				Bidders:  bidders,
			}
		})
		res, _, err := s.Evaluate(stats)
		if err != nil {
			return false
		}
		for id, set := range ids {
			var wantMax, wantSum float64
			wantBids, wantSearches := 0, 0
			distinct := map[string]bool{}
			set.ForEach(func(q int) bool {
				if stats[q].MaxBid > wantMax {
					wantMax = stats[q].MaxBid
				}
				wantSum += stats[q].SumBids
				wantBids += stats[q].Bids
				wantSearches += stats[q].Searches
				for _, b := range stats[q].Bidders {
					distinct[strconv.Itoa(b)] = true
				}
				return true
			})
			r := res[id]
			if r.MaxBid != wantMax || r.SumBids != wantSum || r.Bids != wantBids || r.Searches != wantSearches {
				return false
			}
			// Sketch estimate within generous tolerance of the truth.
			if math.Abs(r.DistinctBidders-float64(len(distinct))) > 3+0.2*float64(len(distinct)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const phrases = 64
	s := New(phrases)
	for p := 0; p < 24; p++ {
		set := bitset.New(phrases)
		for q := 0; q < phrases; q++ {
			if rng.Intn(3) == 0 {
				set.Add(q)
			}
		}
		if set.IsEmpty() {
			set.Add(0)
		}
		if _, err := s.Register(p, set); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Build(); err != nil {
		b.Fatal(err)
	}
	stats := mkStats(phrases, func(q int) PhraseStats {
		return PhraseStats{MaxBid: rng.Float64() * 5, SumBids: rng.Float64() * 50, Bids: 10, Searches: 100}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Evaluate(stats); err != nil {
			b.Fatal(err)
		}
	}
}
