// Package auction provides the sponsored-search domain model and
// single-auction winner determination.
//
// Winner determination (Section I of the paper) assigns k ad slots to n
// advertisers maximizing the total expected realized bid Σ x_ij·ctr_ij·b_i,
// one slot per advertiser. Under the separability assumption
// ctr_ij = c_i·d_j (Section II-A) this reduces to ranking advertisers by
// b_i·c_i and assigning slots in order of d_j — a single linear scan. For
// arbitrary click-through matrices the problem is a maximum-weight bipartite
// matching, solved exactly here via the Hungarian algorithm as the reference
// the fast paths are tested against.
package auction

import (
	"fmt"
	"math"

	"sharedwd/internal/hungarian"
	"sharedwd/internal/topk"
)

// Advertiser is one bidder: a stated per-click bid b_i, the
// advertiser-specific click-through factor c_i, and a remaining daily
// budget. The zero Quality is invalid; use 1 for "no quality adjustment".
type Advertiser struct {
	ID      int
	Bid     float64
	Quality float64 // c_i, the advertiser-specific CTR factor
	Budget  float64 // remaining daily budget
}

// EffectiveBid returns b_i·c_i, the ranking score under separability.
func (a Advertiser) EffectiveBid() float64 { return a.Bid * a.Quality }

// Assignment is the outcome of winner determination: Slots[j] holds the
// advertiser ID assigned to slot j (or -1 for an unfilled slot), and Value
// is the total expected realized bid Σ ctr·b of the assignment.
type Assignment struct {
	Slots []int
	Value float64
}

// SolveSeparable performs winner determination under separability: slot
// factors d must be sorted descending (slot 0 is best); advertisers are
// ranked by b_i·c_i with ties broken by lower ID. Runs in one O(n·k) scan
// (k-list insertion), the paper's linear-time algorithm.
func SolveSeparable(advertisers []Advertiser, slotFactors []float64) Assignment {
	k := len(slotFactors)
	validateSlotFactors(slotFactors)
	best := topk.New(k)
	for _, a := range advertisers {
		best.Push(topk.Entry{ID: a.ID, Score: a.EffectiveBid()})
	}
	byID := make(map[int]Advertiser, len(advertisers))
	for _, a := range advertisers {
		byID[a.ID] = a
	}
	out := Assignment{Slots: make([]int, k)}
	for j := range out.Slots {
		out.Slots[j] = -1
	}
	for j, e := range best.Entries() {
		if e.Score <= 0 {
			break // empty slots beat non-positive expected value
		}
		out.Slots[j] = e.ID
		out.Value += slotFactors[j] * byID[e.ID].Quality * byID[e.ID].Bid
	}
	return out
}

// FromTopK converts an already-computed top-k list (e.g. the output of a
// shared aggregation plan) into a slot assignment. Scores in the list must
// be the effective bids b_i·c_i.
func FromTopK(list *topk.List, slotFactors []float64) Assignment {
	validateSlotFactors(slotFactors)
	out := Assignment{Slots: make([]int, len(slotFactors))}
	for j := range out.Slots {
		out.Slots[j] = -1
	}
	for j, e := range list.Entries() {
		if j >= len(slotFactors) || e.Score <= 0 {
			break
		}
		out.Slots[j] = e.ID
		out.Value += slotFactors[j] * e.Score
	}
	return out
}

// SolveGeneral performs winner determination for an arbitrary click-through
// matrix: ctr[i][j] is advertiser i's click probability in slot j; weights
// are ctr[i][j]·bids[i]. It solves the assignment integer program exactly
// (maximum-weight bipartite matching). IDs in the result index into bids.
func SolveGeneral(bids []float64, ctr [][]float64) Assignment {
	if len(bids) != len(ctr) {
		panic(fmt.Sprintf("auction: %d bids for %d ctr rows", len(bids), len(ctr)))
	}
	if len(ctr) == 0 {
		return Assignment{}
	}
	k := len(ctr[0])
	w := make([][]float64, len(bids))
	for i := range w {
		if len(ctr[i]) != k {
			panic("auction: ragged ctr matrix")
		}
		w[i] = make([]float64, k)
		for j := range w[i] {
			w[i][j] = bids[i] * ctr[i][j]
		}
	}
	rowMatch, total := hungarian.Solve(w)
	out := Assignment{Slots: make([]int, k), Value: total}
	for j := range out.Slots {
		out.Slots[j] = -1
	}
	for i, j := range rowMatch {
		if j >= 0 {
			out.Slots[j] = i
		}
	}
	return out
}

// SeparableCTR builds the rank-one click-through matrix c_i·d_j.
func SeparableCTR(quality, slotFactors []float64) [][]float64 {
	ctr := make([][]float64, len(quality))
	for i, c := range quality {
		ctr[i] = make([]float64, len(slotFactors))
		for j, d := range slotFactors {
			ctr[i][j] = c * d
		}
	}
	return ctr
}

// Decompose tests whether a click-through matrix is separable
// (ctr_ij = c_i·d_j within tol) and, if so, returns a decomposition with
// d normalized so that max_j d_j equals the matrix's first row maximum scale.
// The decomposition fixes c_0 to the first column ratio convention:
// d = first non-zero row, c_i = ctr_i1/d_1.
func Decompose(ctr [][]float64, tol float64) (c, d []float64, ok bool) {
	n := len(ctr)
	if n == 0 || len(ctr[0]) == 0 {
		return nil, nil, false
	}
	k := len(ctr[0])
	// Use the first row as the slot profile.
	base := ctr[0]
	var scale float64
	for _, v := range base {
		if v != 0 {
			scale = v
			break
		}
	}
	if scale == 0 {
		return nil, nil, false
	}
	d = make([]float64, k)
	copy(d, base)
	c = make([]float64, n)
	c[0] = 1
	for i := 1; i < n; i++ {
		// c_i is the per-row scale; derive from the first non-zero d_j.
		var ratio float64
		set := false
		for j := range d {
			if d[j] != 0 {
				ratio = ctr[i][j] / d[j]
				set = true
				break
			}
		}
		if !set {
			return nil, nil, false
		}
		c[i] = ratio
	}
	for i := range c {
		for j := range d {
			if math.Abs(ctr[i][j]-c[i]*d[j]) > tol {
				return nil, nil, false
			}
		}
	}
	return c, d, true
}

func validateSlotFactors(d []float64) {
	for j := 1; j < len(d); j++ {
		if d[j] > d[j-1] {
			panic(fmt.Sprintf("auction: slot factors not descending at %d: %v > %v", j, d[j], d[j-1]))
		}
	}
	for j, v := range d {
		if v < 0 {
			panic(fmt.Sprintf("auction: negative slot factor %v at %d", v, j))
		}
	}
}
