package auction

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sharedwd/internal/topk"
)

// TestPaperWorkedExample reproduces Figures 1–3: separable click-through
// rates over advertisers A, B, C and two slots, decomposing into
// c = (1.2, 1.1, 1.3), d = (0.3, 0.2), with bids such that winner
// determination assigns slot 1 to A and slot 2 to B. (The paper's Figure 3
// bid values are not printed in our copy; any bids with
// b_A·c_A > b_B·c_B > b_C·c_C realize the stated outcome.)
func TestPaperWorkedExample(t *testing.T) {
	ctr := [][]float64{
		{0.36, 0.24}, // A
		{0.33, 0.22}, // B
		{0.39, 0.26}, // C
	}
	c, d, ok := Decompose(ctr, 1e-9)
	if !ok {
		t.Fatal("Figure-1 matrix should be separable")
	}
	// The decomposition is unique up to scale; normalize to the paper's
	// c = (1.2, 1.1, 1.3), d = (0.3, 0.2) by scaling d to 0.3 at slot 1.
	scale := 0.3 / d[0]
	for j := range d {
		d[j] *= scale
	}
	for i := range c {
		c[i] /= scale
	}
	wantC := []float64{1.2, 1.1, 1.3}
	wantD := []float64{0.3, 0.2}
	for i := range wantC {
		if math.Abs(c[i]-wantC[i]) > 1e-9 {
			t.Fatalf("c = %v, want %v", c, wantC)
		}
	}
	for j := range wantD {
		if math.Abs(d[j]-wantD[j]) > 1e-9 {
			t.Fatalf("d = %v, want %v", d, wantD)
		}
	}

	advertisers := []Advertiser{
		{ID: 0, Bid: 10, Quality: 1.2}, // A
		{ID: 1, Bid: 9, Quality: 1.1},  // B
		{ID: 2, Bid: 1, Quality: 1.3},  // C
	}
	got := SolveSeparable(advertisers, wantD)
	if !reflect.DeepEqual(got.Slots, []int{0, 1}) {
		t.Fatalf("assignment = %v, want slot1→A, slot2→B", got.Slots)
	}
	// Expected value: 0.3·1.2·10 + 0.2·1.1·9 = 3.6 + 1.98.
	if math.Abs(got.Value-5.58) > 1e-9 {
		t.Fatalf("value = %v, want 5.58", got.Value)
	}
}

func TestSolveSeparableFewerAdvertisersThanSlots(t *testing.T) {
	got := SolveSeparable([]Advertiser{{ID: 7, Bid: 2, Quality: 1}}, []float64{0.5, 0.3, 0.1})
	if !reflect.DeepEqual(got.Slots, []int{7, -1, -1}) {
		t.Fatalf("Slots = %v", got.Slots)
	}
}

func TestSolveSeparableSkipsNonPositive(t *testing.T) {
	advertisers := []Advertiser{
		{ID: 0, Bid: 0, Quality: 1},
		{ID: 1, Bid: 5, Quality: 1},
	}
	got := SolveSeparable(advertisers, []float64{0.5, 0.3})
	if !reflect.DeepEqual(got.Slots, []int{1, -1}) {
		t.Fatalf("Slots = %v", got.Slots)
	}
}

func TestSlotFactorValidation(t *testing.T) {
	for _, d := range [][]float64{{0.2, 0.3}, {-0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("factors %v should panic", d)
				}
			}()
			SolveSeparable(nil, d)
		}()
	}
}

func TestFromTopK(t *testing.T) {
	l := topk.FromEntries(3, topk.Entry{ID: 4, Score: 9}, topk.Entry{ID: 2, Score: 5})
	got := FromTopK(l, []float64{0.4, 0.2, 0.1})
	if !reflect.DeepEqual(got.Slots, []int{4, 2, -1}) {
		t.Fatalf("Slots = %v", got.Slots)
	}
	if math.Abs(got.Value-(0.4*9+0.2*5)) > 1e-12 {
		t.Fatalf("Value = %v", got.Value)
	}
}

func TestSolveGeneralNonSeparable(t *testing.T) {
	// Non-separable CTRs where greedy-by-first-slot is wrong: advertiser 0
	// is great in slot 0 but advertiser 1 only clicks in slot 0.
	bids := []float64{10, 10}
	ctr := [][]float64{
		{0.5, 0.4}, // flexible
		{0.5, 0.0}, // slot-0 specialist
	}
	got := SolveGeneral(bids, ctr)
	// Optimal: give slot 0 to the specialist (1), slot 1 to 0: 5 + 4 = 9.
	if !reflect.DeepEqual(got.Slots, []int{1, 0}) || math.Abs(got.Value-9) > 1e-9 {
		t.Fatalf("got %+v, want slots [1 0] value 9", got)
	}
}

// TestQuickSeparableMatchesGeneral is the separability theorem, empirically:
// for separable CTRs the linear-scan solution attains the same value as the
// exact matching solver.
func TestQuickSeparableMatchesGeneral(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(4)
		advertisers := make([]Advertiser, n)
		bids := make([]float64, n)
		quality := make([]float64, n)
		for i := range advertisers {
			bids[i] = rng.Float64() * 10
			quality[i] = 0.1 + rng.Float64()
			advertisers[i] = Advertiser{ID: i, Bid: bids[i], Quality: quality[i]}
		}
		d := make([]float64, k)
		v := 0.9
		for j := range d {
			d[j] = v
			v *= 0.5 + 0.4*rng.Float64()
		}
		fast := SolveSeparable(advertisers, d)
		exact := SolveGeneral(bids, SeparableCTR(quality, d))
		return math.Abs(fast.Value-exact.Value) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecomposeRoundTrip: separable matrices decompose and reconstruct;
// perturbed matrices are rejected.
func TestQuickDecomposeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(8), 1+rng.Intn(5)
		c := make([]float64, n)
		d := make([]float64, k)
		for i := range c {
			c[i] = 0.2 + rng.Float64()
		}
		for j := range d {
			d[j] = 0.1 + rng.Float64()
		}
		ctr := SeparableCTR(c, d)
		cc, dd, ok := Decompose(ctr, 1e-9)
		if !ok {
			return false
		}
		for i := range ctr {
			for j := range ctr[i] {
				if math.Abs(ctr[i][j]-cc[i]*dd[j]) > 1e-9 {
					return false
				}
			}
		}
		if n >= 2 && k >= 2 {
			ctr[n-1][k-1] += 0.5 // break separability
			if _, _, ok := Decompose(ctr, 1e-9); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeEdgeCases(t *testing.T) {
	if _, _, ok := Decompose(nil, 1e-9); ok {
		t.Fatal("empty matrix should not decompose")
	}
	if _, _, ok := Decompose([][]float64{{0, 0}}, 1e-9); ok {
		t.Fatal("all-zero first row cannot anchor a decomposition")
	}
}

func BenchmarkSolveSeparable(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	advertisers := make([]Advertiser, n)
	for i := range advertisers {
		advertisers[i] = Advertiser{ID: i, Bid: rng.Float64() * 10, Quality: 0.5 + rng.Float64()}
	}
	d := []float64{0.30, 0.22, 0.15, 0.11, 0.08, 0.05, 0.03, 0.02}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveSeparable(advertisers, d)
	}
}
