// Package batching analyzes the round-granularity tradeoff the paper's
// introduction frames: batching simultaneous searches into rounds increases
// sharing (more co-occurring auctions per round) but adds latency (a query
// waits for its round to close). The paper's example: ~300,000 music
// searches/day ≈ one every ⅓ second, so ⅔-second rounds see about two
// music auctions per round, "well within the limits of user tolerance
// studies" — median latencies up to 2.2 s are tolerated, 3.6 s is too long
// (Sears–Jacko–Borella).
//
// The simulator models Poisson query arrivals per phrase, closes rounds at
// a fixed interval, and reports (a) the latency distribution queries
// experience waiting for their round plus winner determination, and (b) the
// aggregation work per auction under a shared plan, as a function of round
// length.
package batching

import (
	"fmt"
	"math"
	"math/rand"

	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/stats"
	"sharedwd/internal/topk"
)

// Config parameterizes a batching sweep.
type Config struct {
	// ArrivalsPerSecond is each phrase's Poisson arrival rate, indexed by
	// phrase.
	ArrivalsPerSecond []float64
	// Instance supplies the advertiser interest structure (its query rates
	// are ignored; occurrence is driven by the arrival process).
	Instance *plan.Instance
	// WDSecondsPerOp converts aggregation operations to winner-
	// determination latency (seconds per top-k merge).
	WDSecondsPerOp float64
	// SimSeconds is the simulated horizon per round length.
	SimSeconds float64
	Seed       int64
}

// Point is the outcome at one round length.
type Point struct {
	RoundSeconds float64
	// MedianLatencySeconds and P95LatencySeconds summarize query waiting
	// time (until round close) plus winner-determination time.
	MedianLatencySeconds float64
	P95LatencySeconds    float64
	// AuctionsPerRound is the mean number of distinct phrases auctioned
	// per round.
	AuctionsPerRound float64
	// OpsPerAuction is the mean shared aggregation operations per auction
	// — the quantity sharing drives down as rounds lengthen.
	OpsPerAuction float64
	// SharingSaving is 1 − shared/unshared operations over the horizon.
	SharingSaving float64
}

// Sweep simulates the configured workload at each round length and returns
// one Point per length. It panics on malformed configuration.
func Sweep(cfg Config, roundLengths []float64) []Point {
	if cfg.Instance == nil || len(cfg.ArrivalsPerSecond) != len(cfg.Instance.Queries) {
		panic("batching: arrival rates must match the instance's queries")
	}
	if cfg.SimSeconds <= 0 || cfg.WDSecondsPerOp < 0 {
		panic("batching: invalid horizon or WD cost")
	}
	shared := sharedagg.Build(cfg.Instance)
	naive := plan.NaivePlan(cfg.Instance)

	out := make([]Point, 0, len(roundLengths))
	for _, rl := range roundLengths {
		if rl <= 0 {
			panic(fmt.Sprintf("batching: non-positive round length %v", rl))
		}
		out = append(out, simulate(cfg, shared, naive, rl))
	}
	return out
}

func simulate(cfg Config, shared, naive *plan.Plan, roundLen float64) Point {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := len(cfg.ArrivalsPerSecond)
	rounds := int(cfg.SimSeconds / roundLen)
	if rounds < 1 {
		rounds = 1
	}

	leaf := func(v int) *topk.List {
		return topk.FromEntries(4, topk.Entry{ID: v, Score: float64(v)})
	}

	var latencies []float64
	var auctions stats.Summary
	sharedOps, naiveOps, totalAuctions := 0, 0, 0
	occurring := make([]bool, m)
	for r := 0; r < rounds; r++ {
		roundClose := float64(r+1) * roundLen
		for q := range occurring {
			occurring[q] = false
		}
		var waits []float64
		for q, lambda := range cfg.ArrivalsPerSecond {
			// Poisson arrivals within [close−len, close): each waits until
			// the round closes.
			n := poisson(rng, lambda*roundLen)
			if n == 0 {
				continue
			}
			occurring[q] = true
			for i := 0; i < n; i++ {
				t := roundClose - rng.Float64()*roundLen
				waits = append(waits, roundClose-t)
			}
		}
		_, ops := plan.Execute(shared, leaf, topk.Merge, occurring)
		_, nops := plan.Execute(naive, leaf, topk.Merge, occurring)
		sharedOps += ops
		naiveOps += nops
		count := 0
		for _, o := range occurring {
			if o {
				count++
			}
		}
		totalAuctions += count
		auctions.Add(float64(count))
		wd := float64(ops) * cfg.WDSecondsPerOp
		for _, w := range waits {
			latencies = append(latencies, w+wd)
		}
	}

	p := Point{RoundSeconds: roundLen, AuctionsPerRound: auctions.Mean()}
	if len(latencies) > 0 {
		p.MedianLatencySeconds = stats.Quantile(latencies, 0.5)
		p.P95LatencySeconds = stats.Quantile(latencies, 0.95)
	}
	if totalAuctions > 0 {
		p.OpsPerAuction = float64(sharedOps) / float64(totalAuctions)
	}
	if naiveOps > 0 {
		p.SharingSaving = 1 - float64(sharedOps)/float64(naiveOps)
	}
	return p
}

// poisson draws from Poisson(mean) by inversion (Knuth) for small means and
// a normal approximation for large ones.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// ToleranceMedian and ToleranceTooLong are the user-latency thresholds the
// paper cites (Sears–Jacko–Borella): median latencies up to 2.2 s are
// tolerated; ≥ 3.6 s is perceived as too long.
const (
	ToleranceMedian  = 2.2
	ToleranceTooLong = 3.6
)

// MaxTolerableRound returns the longest round length from the sweep whose
// median latency stays within the tolerated threshold, or -1 if none does.
func MaxTolerableRound(points []Point) float64 {
	best := -1.0
	for _, p := range points {
		if p.MedianLatencySeconds <= ToleranceMedian && p.RoundSeconds > best {
			best = p.RoundSeconds
		}
	}
	return best
}
