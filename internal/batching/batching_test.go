package batching

import (
	"math"
	"math/rand"
	"testing"

	"sharedwd/internal/plan"
)

func sweepFixture(t *testing.T) Config {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	inst := plan.RandomCoinFlipInstance(rng, 30, 8, 1)
	arrivals := make([]float64, len(inst.Queries))
	for q := range arrivals {
		arrivals[q] = 0.5 + rng.Float64()*2 // 0.5–2.5 queries/second
	}
	return Config{
		ArrivalsPerSecond: arrivals,
		Instance:          inst,
		WDSecondsPerOp:    1e-6,
		SimSeconds:        200,
		Seed:              7,
	}
}

func TestSweepValidation(t *testing.T) {
	cfg := sweepFixture(t)
	bad := cfg
	bad.ArrivalsPerSecond = bad.ArrivalsPerSecond[:2]
	for i, fn := range []func(){
		func() { Sweep(bad, []float64{1}) },
		func() { Sweep(cfg, []float64{0}) },
		func() { c := cfg; c.SimSeconds = 0; Sweep(c, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSweepTradeoffShape(t *testing.T) {
	cfg := sweepFixture(t)
	lengths := []float64{0.25, 0.5, 1.0, 2.0, 4.0}
	points := Sweep(cfg, lengths)
	if len(points) != len(lengths) {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.RoundSeconds != lengths[i] {
			t.Fatalf("point %d round length %v", i, p.RoundSeconds)
		}
		// Waiting time is bounded by the round length plus WD time.
		if p.MedianLatencySeconds > p.RoundSeconds+0.5 {
			t.Fatalf("median latency %v exceeds round %v", p.MedianLatencySeconds, p.RoundSeconds)
		}
		if p.P95LatencySeconds < p.MedianLatencySeconds {
			t.Fatalf("p95 %v below median %v", p.P95LatencySeconds, p.MedianLatencySeconds)
		}
	}
	// Longer rounds → more auctions per round and more co-occurrence, so
	// fewer shared ops per auction and higher latency.
	first, last := points[0], points[len(points)-1]
	if last.AuctionsPerRound <= first.AuctionsPerRound {
		t.Fatalf("auctions/round did not grow: %v -> %v", first.AuctionsPerRound, last.AuctionsPerRound)
	}
	if last.OpsPerAuction >= first.OpsPerAuction {
		t.Fatalf("ops/auction did not shrink: %v -> %v", first.OpsPerAuction, last.OpsPerAuction)
	}
	if last.MedianLatencySeconds <= first.MedianLatencySeconds {
		t.Fatalf("latency did not grow: %v -> %v", first.MedianLatencySeconds, last.MedianLatencySeconds)
	}
	if last.SharingSaving <= first.SharingSaving {
		t.Fatalf("sharing saving did not grow: %v -> %v", first.SharingSaving, last.SharingSaving)
	}
}

func TestMaxTolerableRound(t *testing.T) {
	pts := []Point{
		{RoundSeconds: 0.5, MedianLatencySeconds: 0.3},
		{RoundSeconds: 2.0, MedianLatencySeconds: 1.1},
		{RoundSeconds: 8.0, MedianLatencySeconds: 4.2},
	}
	if got := MaxTolerableRound(pts); got != 2.0 {
		t.Fatalf("MaxTolerableRound = %v, want 2.0", got)
	}
	if got := MaxTolerableRound([]Point{{RoundSeconds: 9, MedianLatencySeconds: 9}}); got != -1 {
		t.Fatalf("no tolerable round should give -1, got %v", got)
	}
}

// TestPaperMusicExample reproduces the introduction's arithmetic: ~300,000
// music searches/day ≈ 3.47/second; with ⅔-second rounds we expect ≈ 2.3
// music queries per round, and the paper asserts such rounds sit well
// within user latency tolerance.
func TestPaperMusicExample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := plan.RandomCoinFlipInstance(rng, 20, 1, 1)
	lambda := 300000.0 / 86400 // searches per second
	cfg := Config{
		ArrivalsPerSecond: []float64{lambda},
		Instance:          inst,
		WDSecondsPerOp:    1e-6,
		SimSeconds:        2000,
		Seed:              1,
	}
	pts := Sweep(cfg, []float64{2.0 / 3.0})
	p := pts[0]
	// Expected arrivals per round = λ·(2/3) ≈ 2.31 > 2, the paper's "2
	// music-related auctions per round".
	if p.AuctionsPerRound < 0.85 { // distinct phrases (only one here) occur in ≥85% of rounds
		t.Fatalf("music phrase occurred in only %v of rounds", p.AuctionsPerRound)
	}
	if p.MedianLatencySeconds > ToleranceMedian {
		t.Fatalf("⅔-second rounds show median latency %v, above tolerance", p.MedianLatencySeconds)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, mean := range []float64{0.3, 4, 50} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("poisson(%v) mean = %v", mean, got)
		}
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) should be 0")
	}
}
