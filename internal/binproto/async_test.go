package binproto

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"sharedwd/internal/serr"
	"sharedwd/internal/server"
	"sharedwd/internal/workload"
)

// The tests in this file run the binary tier over a *real* server.Server —
// which implements server.AsyncBackend — so they exercise the
// zero-goroutine path: reader-drain coalescing into SubmitAsync, pooled
// completions resolved by the round loop, and replies flushed by the
// connection writer. The fakeBackend tests in binproto_test.go cover the
// blocking fallback; these cover the fast path.

// startAsyncServer builds a one-worker round server with the given config
// and serves it over the binary protocol. The returned release function
// unblocks the round loop gate (idempotent via sync.Once in the caller's
// hands — call it exactly once).
func startAsyncServer(t *testing.T, wcfg server.Config, bcfg Config) (*Server, *server.Server, *workload.Workload) {
	t.Helper()
	gen := workload.DefaultConfig()
	gen.NumAdvertisers = 120
	gen.NumPhrases = 12
	gen.NumTopics = 3
	gen.Seed = 7
	w := workload.Generate(gen)
	srv, err := server.New(w, wcfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	bs := New(srv, bcfg)
	if err := bs.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { bs.Close() })
	return bs, srv, w
}

// gatedConfig returns a round-server config whose loop parks on hold at
// the head of every round close, with MaxBatch 1 so each admitted request
// occupies its own round and the intake ring fills predictably.
func gatedConfig(depth int, hold <-chan struct{}, entered chan<- struct{}) server.Config {
	cfg := server.DefaultConfig()
	cfg.RoundInterval = time.Hour // only traffic closes rounds
	cfg.MaxBatch = 1
	cfg.QueueDepth = depth
	cfg.BeforeStep = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-hold
	}
	return cfg
}

// TestBatchPartialOverflow pins the batch overload contract on the async
// path: a batch frame whose items straddle the admission boundary sheds
// ONLY the overflowing items — each with a retryable overload status —
// while the admitted item resolves normally, the connection stays alive,
// and nothing (goroutines or pooled objects) leaks.
func TestBatchPartialOverflow(t *testing.T) {
	before := runtime.NumGoroutine()

	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	bs, srv, w := startAsyncServer(t, gatedConfig(3, hold, entered), Config{MaxTimeout: 30 * time.Second})
	c := dialClient(t, bs.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
	defer cancel()

	p := w.PhraseNames
	// Request A dwells inside a held round; B and C wait in the intake
	// ring, leaving exactly one free slot for the batch to contend over.
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Submit(ctx, p[i])
		}(i)
		if i == 0 {
			<-entered // A is inside the round before B and C queue up
		}
	}
	waitFor(t, "ring to hold B and C", func() bool {
		return srv.Metrics().QueueDepth == 2
	})

	// The batch straddles the boundary: one slot free, three items.
	batchDone := make(chan struct{})
	var bres []server.Result
	var berr error
	go func() {
		defer close(batchDone)
		bres, berr = c.SubmitBatch(ctx, []string{p[3], p[4], p[5]})
	}()
	waitFor(t, "one batch item admitted", func() bool {
		return srv.Metrics().QueueDepth == 3
	})
	select {
	case <-batchDone:
		t.Fatal("batch reply arrived while its admitted item was still pending")
	default:
	}

	// The connection must stay serviceable mid-overload: stats frames are
	// answered off the round loop.
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("Stats during overload: %v", err)
	}

	close(hold)
	wg.Wait()
	<-batchDone

	for i, err := range errs {
		if err != nil {
			t.Errorf("queued Submit %d = %v, want success", i, err)
		}
	}
	if len(bres) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(bres))
	}
	if berr == nil {
		t.Fatal("partially shed batch returned nil error")
	}
	items := serr.SplitBatch(berr, 3)
	if items[0] != nil {
		t.Errorf("admitted batch item failed: %v", items[0])
	}
	if len(bres[0].Slots) == 0 {
		t.Error("admitted batch item returned no slots")
	}
	for i := 1; i < 3; i++ {
		if !errors.Is(items[i], serr.ErrOverloaded) {
			t.Errorf("overflow batch item %d = %v, want ErrOverloaded", i, items[i])
		}
		if len(bres[i].Slots) != 0 {
			t.Errorf("shed batch item %d carries slots", i)
		}
	}
	if got := srv.Metrics().Shed; got != 2 {
		t.Errorf("backend shed %d requests, want exactly the 2 overflow items", got)
	}

	// The conn survived the partial shed: a fresh query round-trips.
	if _, err := c.Submit(ctx, p[6]); err != nil {
		t.Fatalf("Submit after partial overflow: %v", err)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := bs.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	c.Close()
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// TestShutdownDrainsInFlightAsync is the async-backend twin of
// TestShutdownDrainsInFlight: requests parked inside a held round (rather
// than inside a blocking fakeBackend call) must be answered — not cut
// off — by a drain, and the backend must stay open until they resolve.
func TestShutdownDrainsInFlightAsync(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	bs, srv, w := startAsyncServer(t, gatedConfig(16, hold, entered), Config{MaxTimeout: 30 * time.Second})
	c := dialClient(t, bs.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
	defer cancel()

	const parked = 8
	var wg sync.WaitGroup
	errs := make([]error, parked)
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Submit(ctx, w.PhraseNames[i])
		}(i)
	}
	<-entered // one request is mid-round; the rest queue behind it
	waitFor(t, "requests admitted", func() bool {
		m := srv.Metrics()
		return m.Submitted-m.Unmatched >= parked
	})

	shutdownDone := make(chan error, 1)
	go func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		shutdownDone <- bs.Shutdown(sctx)
	}()
	// The drain must wait on the in-flight frames, not abandon them.
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while requests were parked in the round loop")
	case <-time.After(100 * time.Millisecond):
	}

	close(hold)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("parked Submit %d = %v, want success (drain must answer admitted frames)", i, err)
		}
	}
	if got := srv.Metrics().Answered; got < parked {
		t.Errorf("backend answered %d, want at least the %d drained requests", got, parked)
	}
}

// TestAsyncConformanceSmoke runs the plain request/reply contract over the
// async fast path — the same assertions the fakeBackend suite makes over
// the blocking fallback — so the two read paths cannot drift apart:
// queries resolve, junk refuses with a non-retryable no-auction status,
// batches keep item order, and interleaved pipelining completes out of
// order without loss.
func TestAsyncConformanceSmoke(t *testing.T) {
	wcfg := server.DefaultConfig()
	wcfg.RoundInterval = 2 * time.Millisecond
	wcfg.MaxBatch = 64
	wcfg.QueueDepth = 256
	bs, _, w := startAsyncServer(t, wcfg, Config{})
	c := dialClient(t, bs.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	res, err := c.Submit(ctx, w.PhraseNames[0])
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Phrase != 0 || len(res.Slots) == 0 {
		t.Fatalf("Submit result = phrase %d, %d slots", res.Phrase, len(res.Slots))
	}
	if _, err := c.Submit(ctx, "zzzz no such phrase zzzz"); !errors.Is(err, serr.ErrNoAuction) {
		t.Fatalf("junk query = %v, want ErrNoAuction", err)
	}

	queries := []string{w.PhraseNames[1], "zzzz junk zzzz", w.PhraseNames[2]}
	results, berr := c.SubmitBatch(ctx, queries)
	if len(results) != 3 {
		t.Fatalf("batch returned %d results", len(results))
	}
	items := serr.SplitBatch(berr, 3)
	if items[0] != nil || items[2] != nil || !errors.Is(items[1], serr.ErrNoAuction) {
		t.Fatalf("batch item errors = %v", items)
	}
	if results[0].Phrase != 1 || results[2].Phrase != 2 {
		t.Fatalf("batch order lost: phrases %d, %d", results[0].Phrase, results[2].Phrase)
	}

	// Pipelined concurrent submits share one conn and one intake ring.
	var wg sync.WaitGroup
	errs := make([]error, 64)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Submit(ctx, w.PhraseNames[i%len(w.PhraseNames)])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pipelined Submit %d: %v", i, err)
		}
	}
}
