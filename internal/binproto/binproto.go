// Package binproto is the binary wire protocol of the network serving
// tier: a length-prefixed request/response framing over raw TCP, served
// alongside the HTTP/JSON tier against the same server.Backend. It exists
// because the JSON edge costs ~9× in per-connection throughput against
// in-process Submit (EXPERIMENTS.md "Network tier"); the binary codec
// removes the JSON encode/decode and the per-request HTTP machinery, and
// connection multiplexing removes the request-per-connection round-trip
// discipline — one socket carries many in-flight queries, pipelined, with
// out-of-order completion.
//
// # Wire format
//
// A connection opens with a 5-byte client preamble — the ASCII magic
// "SWDB" plus a version byte — so a stray HTTP request (or any other
// protocol) is rejected before the first frame. After that, both
// directions speak frames:
//
//	uint32  length   // big-endian; bytes that follow (type + id + payload)
//	byte    type     // frame type (request 0x01-0x03, response 0x81-0x83)
//	uint64  id       // request ID, chosen by the client, echoed by the server
//	...payload       // type-specific
//
// The request ID is the multiplexing key: the client may have many frames
// in flight on one socket, and the server answers each frame exactly once,
// in whatever order the backend resolves them. Request payloads:
//
//	query (0x01):  uint32 timeout_ms | uint16 len | query bytes
//	batch (0x02):  uint32 timeout_ms | uint16 count | count × (uint16 len | query bytes)
//	stats (0x03):  (empty)
//
// timeout_ms is the per-request deadline in milliseconds; 0 means the
// server's DefaultTimeout, and any request is clamped to MaxTimeout —
// exactly the X-Timeout discipline of the HTTP tier. Response payloads
// open with a status byte and a flags byte (bit 0 = retryable), encoding
// the serr taxonomy as typed statuses:
//
//	reply (0x81):        status | flags | body
//	batch reply (0x82):  status | flags | {uint16 count | count × (status | flags | body)}
//	stats reply (0x83):  status | flags | uint32 len | Metrics JSON
//
// where an OK body is a fixed-width server.Result —
//
//	uint32 phrase | uint16 shard | uint32 round | uint64 latency_ns |
//	uint16 nslots | nslots × (uint16 slot | uint32 advertiser | float64 price)
//
// — and an error body is uint16 len | message bytes. The stats reply
// carries the same exact-round-trip Metrics JSON the HTTP tier serves on
// /v1/stats, so one schema feeds every transport; query results round-trip
// exactly against the JSON wire schema (the conformance suite pins it).
//
// # Server shape
//
// The server runs one reader and one writer goroutine per connection. The
// reader parses frames from a reused read buffer and admits each into a
// bounded in-flight table (MaxInFlight per connection; overflow is
// answered immediately with the retryable StatusOverflow, and a reused
// in-flight ID is a protocol error) before dispatching it to the backend
// on its own goroutine. Completions flow through one channel to the writer,
// which encodes into a reused write buffer and coalesces flushes — the
// codec allocates nothing on the hot path. Shutdown follows the netserve
// drain contract: the listener stops accepting, every admitted frame is
// answered through the normal backend drain, the writer flushes, and only
// then do sockets close.
//
// # Client
//
// Client is the multiplexing dial-side: concurrent Submit/SubmitBatch
// calls share one socket, each tagged with a fresh request ID and parked
// on its own reply channel; a reader goroutine routes responses back by
// ID. Statuses map back onto the serr sentinels, so errors.Is retry
// policies written against the in-process servers work unchanged over the
// wire.
package binproto

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sharedwd/internal/serr"
)

// Protocol identity: the connection preamble a client sends before its
// first frame.
const (
	// Magic is the 4-byte connection preamble.
	Magic = "SWDB"
	// Version is the protocol version byte following the magic.
	Version byte = 1
)

// Frame types. Requests flow client → server; responses echo the request's
// ID with the corresponding response type.
const (
	ftQuery      byte = 0x01
	ftBatch      byte = 0x02
	ftStats      byte = 0x03
	ftReply      byte = 0x81
	ftBatchReply byte = 0x82
	ftStatsReply byte = 0x83
)

// Status bytes: the serr taxonomy on the wire. Every response opens with
// one, plus a flags byte whose bit 0 (FlagRetryable) tells the client
// whether retrying the identical request can succeed.
const (
	// StatusOK: the request succeeded; the body is a result.
	StatusOK byte = 0
	// StatusNoAuction: the query matched no bid phrase (serr.ErrNoAuction).
	StatusNoAuction byte = 1
	// StatusOverloaded: the backend admission queue was full and the query
	// was shed (serr.ErrOverloaded). Retryable.
	StatusOverloaded byte = 2
	// StatusClosed: the server is draining or closed (serr.ErrClosed).
	StatusClosed byte = 3
	// StatusDeadline: the request's own deadline expired
	// (context.DeadlineExceeded). Retryable.
	StatusDeadline byte = 4
	// StatusCanceled: the request's context was canceled (context.Canceled).
	StatusCanceled byte = 5
	// StatusBadRequest: the frame was well-formed at the framing layer but
	// semantically invalid (empty query, reused in-flight ID, oversized
	// batch, unknown frame type).
	StatusBadRequest byte = 6
	// StatusInternal: an unclassified backend failure; the message carries
	// the detail.
	StatusInternal byte = 7
	// StatusOverflow: the connection's bounded in-flight table was full and
	// the frame was refused before reaching the backend — connection-level
	// backpressure, the multiplexed analogue of StatusOverloaded.
	// Retryable; clients map it onto serr.ErrOverloaded.
	StatusOverflow byte = 8
)

// FlagRetryable marks a response whose identical request may succeed if
// retried (backpressure and deadline statuses).
const FlagRetryable byte = 1 << 0

// Config tunes the binary tier. The zero value serves on a random loopback
// port with the same timeout discipline as the HTTP tier's defaults.
type Config struct {
	// Addr is the listen address ("" means 127.0.0.1:0 — a random
	// loopback port, the test- and demo-friendly default).
	Addr string

	// MaxFrame bounds any single frame, either direction (0 means 1 MiB).
	// An inbound frame declaring more is a connection-level protocol error:
	// the declared length is validated before any allocation, so a hostile
	// length field cannot size a buffer (the ws readFrame lesson).
	MaxFrame int

	// MaxInFlight bounds the per-connection in-flight table (0 means 1024).
	// A frame arriving while the table is full is answered immediately with
	// StatusOverflow instead of ever queueing unboundedly; each frame —
	// including a batch frame — occupies one slot.
	MaxInFlight int

	// MaxBatchItems bounds the queries in one batch frame (0 means 256).
	MaxBatchItems int

	// DefaultTimeout is the query deadline applied when the frame names
	// none (0 means 2s); MaxTimeout clamps client-requested deadlines
	// (0 means 10s) — the same clamp the HTTP tier applies to X-Timeout.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// WriteTimeout bounds each coalesced flush to a client socket (0 means
	// 30s); a client that stops reading for longer loses its connection.
	WriteTimeout time.Duration
}

// withDefaults returns cfg with zero values replaced by the documented
// defaults.
func (cfg Config) withDefaults() Config {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = 1 << 20
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1024
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 256
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	return cfg
}

// statusOf maps a backend error onto its wire status and flags — the
// binary analogue of the HTTP tier's error → status table.
func statusOf(err error) (status, flags byte) {
	switch {
	case err == nil:
		return StatusOK, 0
	case errors.Is(err, serr.ErrNoAuction):
		return StatusNoAuction, 0
	case errors.Is(err, serr.ErrOverloaded):
		return StatusOverloaded, FlagRetryable
	case errors.Is(err, serr.ErrClosed):
		return StatusClosed, 0
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadline, FlagRetryable
	case errors.Is(err, context.Canceled):
		return StatusCanceled, 0
	default:
		return StatusInternal, 0
	}
}

// errOf is statusOf's inverse on the client: wire statuses map back onto
// the serr sentinels (and context errors), so errors.Is policies written
// against the in-process servers hold across the wire. Unclassified
// statuses surface as a *RemoteError carrying the server's message.
func errOf(status, flags byte, msg string) error {
	switch status {
	case StatusOK:
		return nil
	case StatusNoAuction:
		return serr.ErrNoAuction
	case StatusOverloaded, StatusOverflow:
		return serr.ErrOverloaded
	case StatusClosed:
		return serr.ErrClosed
	case StatusDeadline:
		return context.DeadlineExceeded
	case StatusCanceled:
		return context.Canceled
	default:
		return &RemoteError{Status: status, Retryable: flags&FlagRetryable != 0, Msg: msg}
	}
}

// RemoteError is a server-reported failure that maps onto no sentinel:
// a bad request the client library should have prevented, or an internal
// backend failure. Retryable mirrors the wire flag.
type RemoteError struct {
	Status    byte
	Retryable bool
	Msg       string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("binproto: status %d: %s", e.Status, e.Msg)
}
