package binproto

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/serr"
	"sharedwd/internal/server"
)

// fakeBackend scripts Submit outcomes by query string, mirroring the
// netserve handler tests: "slow" queries park until release is closed (or
// their ctx expires), which is how the drain and multiplexing tests hold
// requests in flight.
type fakeBackend struct {
	release chan struct{}
	submits atomic.Int64
	parked  atomic.Int64
	closed  atomic.Bool
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{release: make(chan struct{})}
}

func (b *fakeBackend) Submit(ctx context.Context, query string) (server.Result, error) {
	b.submits.Add(1)
	switch query {
	case "junk":
		return server.Result{}, serr.ErrNoAuction
	case "overload":
		return server.Result{}, serr.ErrOverloaded
	case "closing":
		return server.Result{}, serr.ErrClosed
	case "boom":
		return server.Result{}, errors.New("kaput")
	case "slow":
		b.parked.Add(1)
		select {
		case <-b.release:
		case <-ctx.Done():
			return server.Result{}, ctx.Err()
		}
	}
	return server.Result{
		Phrase: 7,
		Shard:  1,
		Round:  42,
		Slots: []core.SlotResult{
			{Slot: 0, Advertiser: 3, PricePaid: 1.25},
			{Slot: 1, Advertiser: 9, PricePaid: 0.75},
		},
		Latency: 3 * time.Millisecond,
	}, nil
}

func (b *fakeBackend) SubmitBatch(ctx context.Context, queries []string) ([]server.Result, error) {
	results := make([]server.Result, len(queries))
	errs := make([]error, len(queries))
	for i, q := range queries {
		results[i], errs[i] = b.Submit(ctx, q)
	}
	return results, serr.JoinBatch(errs)
}

func (b *fakeBackend) Metrics() server.Metrics {
	return server.Metrics{Submitted: b.submits.Load(), Answered: b.submits.Load()}
}

func (b *fakeBackend) Close() { b.closed.Store(true) }

// startServer runs a binary tier over a fresh fake backend and tears it
// down with the test.
func startServer(t *testing.T, cfg Config) (*Server, *fakeBackend) {
	t.Helper()
	b := newFakeBackend()
	s := New(b, cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, b
}

func dialClient(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSubmitOverBinary(t *testing.T) {
	s, _ := startServer(t, Config{})
	c := dialClient(t, s.Addr())
	res, err := c.Submit(context.Background(), "hiking boots")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Phrase != 7 || res.Shard != 1 || res.Round != 42 || len(res.Slots) != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.Slots[0] != (core.SlotResult{Slot: 0, Advertiser: 3, PricePaid: 1.25}) {
		t.Fatalf("slot 0 = %+v", res.Slots[0])
	}
}

func TestErrorTaxonomyOverBinary(t *testing.T) {
	s, _ := startServer(t, Config{})
	c := dialClient(t, s.Addr())
	ctx := context.Background()
	for query, want := range map[string]error{
		"junk":     serr.ErrNoAuction,
		"overload": serr.ErrOverloaded,
		"closing":  serr.ErrClosed,
	} {
		if _, err := c.Submit(ctx, query); !errors.Is(err, want) {
			t.Errorf("Submit(%q) = %v, want %v", query, err, want)
		}
	}
	if _, err := c.Submit(ctx, "boom"); err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Errorf(`Submit("boom") = %v, want remote "kaput"`, err)
	}
	// A context that expires while the request is parked surfaces as
	// DeadlineExceeded — from the server's side of the wire.
	ctx2, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := c.Submit(ctx2, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf(`Submit("slow") = %v, want DeadlineExceeded`, err)
	}
}

func TestSubmitBatchOverBinary(t *testing.T) {
	s, _ := startServer(t, Config{})
	c := dialClient(t, s.Addr())
	queries := []string{"good", "junk", "also good", "overload"}
	results, err := c.SubmitBatch(context.Background(), queries)
	if err == nil {
		t.Fatal("batch with failures returned nil error")
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results, want %d", len(results), len(queries))
	}
	errs := serr.SplitBatch(err, len(queries))
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good items failed: %v", errs)
	}
	if !errors.Is(errs[1], serr.ErrNoAuction) || !errors.Is(errs[3], serr.ErrOverloaded) {
		t.Fatalf("batch errors = %v", errs)
	}
	if results[0].Phrase != 7 || len(results[2].Slots) != 2 {
		t.Fatalf("batch results = %+v", results)
	}
}

func TestStatsOverBinary(t *testing.T) {
	s, _ := startServer(t, Config{})
	c := dialClient(t, s.Addr())
	ctx := context.Background()
	if _, err := c.Submit(ctx, "hiking boots"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	m, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if m.Submitted < 1 {
		t.Fatalf("stats submitted = %d, want ≥ 1", m.Submitted)
	}
}

// rawConn speaks the wire format directly, for tests that need to observe
// frame-level behavior (ordering, statuses) beneath the Client API.
type rawConn struct {
	t    *testing.T
	netc net.Conn
	fr   *frameReader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	netc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { netc.Close() })
	if _, err := netc.Write(append([]byte(Magic), Version)); err != nil {
		t.Fatalf("preamble: %v", err)
	}
	return &rawConn{t: t, netc: netc, fr: newFrameReader(netc, 1<<20)}
}

func (rc *rawConn) write(frame []byte) {
	rc.t.Helper()
	if _, err := rc.netc.Write(frame); err != nil {
		rc.t.Fatalf("write: %v", err)
	}
}

func (rc *rawConn) read() (byte, uint64, []byte) {
	rc.t.Helper()
	rc.netc.SetReadDeadline(time.Now().Add(5 * time.Second))
	ft, id, payload, err := rc.fr.next()
	if err != nil {
		rc.t.Fatalf("read frame: %v", err)
	}
	return ft, id, append([]byte(nil), payload...)
}

// TestOutOfOrderCompletion pins the multiplexing contract: a fast query
// pipelined behind a parked one overtakes it on the same socket.
func TestOutOfOrderCompletion(t *testing.T) {
	s, b := startServer(t, Config{})
	rc := dialRaw(t, s.Addr())

	rc.write(AppendQuery(nil, 1, 0, "slow"))
	waitFor(t, "slow query parked", func() bool { return b.parked.Load() == 1 })
	rc.write(AppendQuery(nil, 2, 0, "fast"))

	ft, id, _ := rc.read()
	if ft != ftReply || id != 2 {
		t.Fatalf("first reply = (0x%02x, %d), want the fast query (0x%02x, 2)", ft, id, ftReply)
	}
	close(b.release)
	ft, id, payload := rc.read()
	if ft != ftReply || id != 1 {
		t.Fatalf("second reply = (0x%02x, %d), want the slow query", ft, id)
	}
	if res, rerr, perr := parseReply(payload); perr != nil || rerr != nil || res.Phrase != 7 {
		t.Fatalf("slow reply decoded = (%+v, %v, %v)", res, rerr, perr)
	}
}

// TestInFlightOverflow pins connection-level backpressure: a frame beyond
// MaxInFlight is answered immediately with the retryable overflow status,
// while admitted frames still resolve.
func TestInFlightOverflow(t *testing.T) {
	s, b := startServer(t, Config{MaxInFlight: 2})
	rc := dialRaw(t, s.Addr())

	rc.write(AppendQuery(nil, 1, 0, "slow"))
	rc.write(AppendQuery(nil, 2, 0, "slow"))
	waitFor(t, "both queries parked", func() bool { return b.parked.Load() == 2 })
	rc.write(AppendQuery(nil, 3, 0, "fast"))

	ft, id, payload := rc.read()
	if ft != ftReply || id != 3 {
		t.Fatalf("overflow reply = (0x%02x, %d), want id 3", ft, id)
	}
	if payload[0] != StatusOverflow || payload[1]&FlagRetryable == 0 {
		t.Fatalf("overflow status = (%d, %d), want retryable StatusOverflow", payload[0], payload[1])
	}
	close(b.release)
	seen := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		_, id, _ := rc.read()
		seen[id] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("admitted frames answered = %v, want ids 1 and 2", seen)
	}
}

// The Client maps overflow onto ErrOverloaded, so retry policies written
// against the in-process backpressure signal work unchanged.
func TestOverflowViaClient(t *testing.T) {
	s, b := startServer(t, Config{MaxInFlight: 1})
	c := dialClient(t, s.Addr())
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		_, err := c.Submit(ctx, "slow")
		done <- err
	}()
	waitFor(t, "slow query parked", func() bool { return b.parked.Load() == 1 })
	if _, err := c.Submit(ctx, "fast"); !errors.Is(err, serr.ErrOverloaded) {
		t.Fatalf("overflowed Submit = %v, want ErrOverloaded", err)
	}
	close(b.release)
	if err := <-done; err != nil {
		t.Fatalf("admitted Submit = %v", err)
	}
}

// TestDuplicateID pins the in-flight table's ID discipline: reusing an ID
// still in flight is a bad request, answered without disturbing the
// original.
func TestDuplicateID(t *testing.T) {
	s, b := startServer(t, Config{})
	rc := dialRaw(t, s.Addr())
	rc.write(AppendQuery(nil, 1, 0, "slow"))
	waitFor(t, "slow query parked", func() bool { return b.parked.Load() == 1 })
	rc.write(AppendQuery(nil, 1, 0, "fast"))
	_, id, payload := rc.read()
	if id != 1 || payload[0] != StatusBadRequest {
		t.Fatalf("duplicate reply = (%d, status %d), want (1, StatusBadRequest)", id, payload[0])
	}
	close(b.release)
	_, id, payload = rc.read()
	if id != 1 || payload[0] != StatusOK {
		t.Fatalf("original reply = (%d, status %d), want (1, StatusOK)", id, payload[0])
	}
}

// TestBadPreamble pins the protocol gate: a connection that opens with
// anything but the magic is dropped before frame parsing.
func TestBadPreamble(t *testing.T) {
	s, _ := startServer(t, Config{})
	netc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer netc.Close()
	// Exactly preamble-sized, so the server's close is a clean FIN.
	fmt.Fprintf(netc, "GET /")
	netc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := netc.Read(buf); err != io.EOF {
		t.Fatalf("read after bad preamble = %v, want EOF", err)
	}
}

// TestHostileLength pins the ws readFrame lesson end-to-end: a frame
// declaring 4 GiB fails the connection without the server allocating for
// it.
func TestHostileLength(t *testing.T) {
	s, _ := startServer(t, Config{MaxFrame: 1 << 16})
	netc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer netc.Close()
	netc.Write(append([]byte(Magic), Version))
	hostile := binary.BigEndian.AppendUint32(nil, 0xffffffff)
	netc.Write(hostile)
	netc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := netc.Read(buf); err != io.EOF {
		t.Fatalf("read after hostile length = %v, want EOF", err)
	}
}

// TestShutdownDrainsInFlight pins the drain contract under multiplexing:
// a Shutdown racing in-flight frames answers every admitted one, refuses
// new ones with StatusClosed, and closes the backend last.
func TestShutdownDrainsInFlight(t *testing.T) {
	s, b := startServer(t, Config{})
	c := dialClient(t, s.Addr())
	ctx := context.Background()

	const parked = 8
	var wg sync.WaitGroup
	errs := make([]error, parked)
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Submit(ctx, "slow")
		}(i)
	}
	waitFor(t, "queries parked", func() bool { return b.parked.Load() == parked })

	shutdownDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(sctx)
	}()
	// The drain must be waiting on the parked frames, not cutting them off.
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while frames were parked")
	case <-time.After(100 * time.Millisecond):
	}
	if b.closed.Load() {
		t.Fatal("backend closed while frames were in flight")
	}
	close(b.release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("parked Submit %d = %v, want success (drain must answer admitted frames)", i, err)
		}
	}
	if !b.closed.Load() {
		t.Fatal("Shutdown did not close the backend")
	}
}

// TestDrainRefusesNewFrames: frames arriving during a drain get
// StatusClosed rather than hanging or dropping.
func TestDrainRefusesNewFrames(t *testing.T) {
	s, b := startServer(t, Config{})
	rc := dialRaw(t, s.Addr())
	rc.write(AppendQuery(nil, 1, 0, "slow"))
	waitFor(t, "query parked", func() bool { return b.parked.Load() == 1 })

	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(sctx)
	}()
	waitFor(t, "conn draining", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})
	// Give the per-connection draining flag a moment to set, then probe.
	time.Sleep(50 * time.Millisecond)
	rc.write(AppendQuery(nil, 2, 0, "fast"))
	ft, id, payload := rc.read()
	if ft != ftReply || id != 2 || payload[0] != StatusClosed {
		t.Fatalf("mid-drain frame answered (0x%02x, %d, status %d), want StatusClosed", ft, id, payload[0])
	}
	close(b.release)
	_, id, payload = rc.read()
	if id != 1 || payload[0] != StatusOK {
		t.Fatalf("parked frame = (%d, status %d), want (1, OK)", id, payload[0])
	}
	<-drainDone
	if b.closed.Load() {
		t.Fatal("Drain closed the backend; only Shutdown may")
	}
}

// TestClientClose pins the client-side Close contract: outstanding calls
// fail with ErrClosed, later calls fail with ErrClosed, double Close is
// safe.
func TestClientClose(t *testing.T) {
	s, b := startServer(t, Config{})
	c := dialClient(t, s.Addr())
	done := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), "slow")
		done <- err
	}()
	waitFor(t, "query parked", func() bool { return b.parked.Load() == 1 })
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; !errors.Is(err, serr.ErrClosed) {
		t.Fatalf("outstanding Submit after Close = %v, want ErrClosed", err)
	}
	if _, err := c.Submit(context.Background(), "q"); !errors.Is(err, serr.ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	close(b.release)
}

// TestServerCloseFailsClients: when the server goes away abruptly, the
// client surfaces a connection-lost error on outstanding and future calls
// rather than hanging.
func TestServerCloseFailsClients(t *testing.T) {
	s, b := startServer(t, Config{})
	c := dialClient(t, s.Addr())
	done := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), "slow")
		done <- err
	}()
	waitFor(t, "query parked", func() bool { return b.parked.Load() == 1 })
	// Close while the query is still parked: the abort cancels its context,
	// so the client must see an error — a canceled-status reply or a dead
	// connection, depending on which side of the teardown the reply races.
	s.Close()
	if err := <-done; err == nil {
		t.Fatal("Submit across server Close = nil, want error")
	}
}

// TestNoGoroutineLeaks runs a multiplexed load burst, shuts everything
// down, and requires the goroutine count to settle back — the whole tier
// (conns, readers, writers, request goroutines) must unwind.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	s, b := startServer(t, Config{})
	close(b.release) // nothing parks; plain load
	var clients []*Client
	for i := 0; i < 4; i++ {
		clients = append(clients, dialClient(t, s.Addr()))
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					c.Submit(context.Background(), "hiking boots")
				}
			}(c)
		}
	}
	wg.Wait()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	cancel()
	for _, c := range clients {
		c.Close()
	}

	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// waitFor polls cond up to 5s; the test fails with what it was waiting on.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTimeoutClamp pins the deadline discipline: a frame asking for more
// than MaxTimeout is clamped, so a parked query fails by the server's
// bound, not the client's request.
func TestTimeoutClamp(t *testing.T) {
	s, _ := startServer(t, Config{MaxTimeout: 100 * time.Millisecond})
	rc := dialRaw(t, s.Addr())
	start := time.Now()
	rc.write(AppendQuery(nil, 1, 60_000, "slow")) // asks for 60s
	_, _, payload := rc.read()
	if payload[0] != StatusDeadline {
		t.Fatalf("status = %d, want StatusDeadline", payload[0])
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("clamped deadline took %v, want ~100ms", elapsed)
	}
}

// TestLargeBatchRefused: a batch wider than MaxBatchItems is refused as a
// bad request without failing the connection.
func TestLargeBatchRefused(t *testing.T) {
	s, _ := startServer(t, Config{MaxBatchItems: 4})
	rc := dialRaw(t, s.Addr())
	queries := make([]string, 8)
	for i := range queries {
		queries[i] = "q"
	}
	rc.write(AppendBatch(nil, 1, 0, queries))
	ft, id, payload := rc.read()
	if ft != ftBatchReply || id != 1 || payload[0] != StatusBadRequest {
		t.Fatalf("oversized batch = (0x%02x, %d, status %d), want bad request", ft, id, payload[0])
	}
	// The connection survives.
	rc.write(AppendQuery(nil, 2, 0, "fast"))
	if _, id, _ := rc.read(); id != 2 {
		t.Fatalf("follow-up reply id = %d, want 2", id)
	}
}
