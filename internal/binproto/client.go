package binproto

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/serr"
	"sharedwd/internal/server"
)

// Client is a multiplexing connection to a binary-tier server: any number
// of goroutines may Submit, SubmitBatch, and Stats concurrently over the
// one socket. Each call registers a fresh request ID, fires its frame
// through a shared writer, and parks on its own reply channel until the
// reader routes the response back by ID — so a slow query never blocks a
// fast one behind it. Close fails all outstanding calls with
// serr.ErrClosed; so do calls made after Close, matching the in-process
// servers' post-Close contract.
type Client struct {
	netc net.Conn

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan wireResp
	closed  bool

	// send carries encoded frames to the writer goroutine; bufPool recycles
	// the encode buffers it drains.
	send    chan []byte
	bufPool sync.Pool

	readerDone chan struct{}
	writerDone chan struct{}
	readErr    error // why the reader exited; set before readerDone closes
}

// wireResp is one routed response: the reply's decoded content, or the
// connection-level failure that voided it.
type wireResp struct {
	res     server.Result
	err     error
	results []server.Result
	errs    []error
	stats   []byte // owned copy of Metrics JSON
}

// Dial connects to a binary-tier server at addr, sends the protocol
// preamble, and starts the reader and writer goroutines.
func Dial(addr string) (*Client, error) {
	netc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	pre := append([]byte(Magic), Version)
	if _, err := netc.Write(pre); err != nil {
		netc.Close()
		return nil, err
	}
	c := &Client{
		netc:       netc,
		pending:    make(map[uint64]chan wireResp),
		send:       make(chan []byte, 64),
		readerDone: make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	c.bufPool.New = func() any { b := make([]byte, 0, 1024); return &b }
	go c.reader()
	go c.writer()
	return c, nil
}

// register installs a reply channel under a fresh ID. It fails with
// serr.ErrClosed once the client is closed.
func (c *Client) register() (uint64, chan wireResp, error) {
	id := c.nextID.Add(1)
	ch := make(chan wireResp, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, nil, serr.ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()
	return id, ch, nil
}

func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// timeoutMS derives the frame's timeout field from ctx: the remaining
// deadline in milliseconds (rounded up so a live deadline never becomes
// 0 = server default), or 0 when ctx has none.
func timeoutMS(ctx context.Context) uint32 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds() + 1
	if ms < 1 {
		ms = 1
	}
	if ms > 1<<31 {
		ms = 1 << 31
	}
	return uint32(ms)
}

// post encodes-and-sends via fn and waits for the routed response.
func (c *Client) post(ctx context.Context, fn func(b []byte, id uint64) []byte) (wireResp, error) {
	id, ch, err := c.register()
	if err != nil {
		return wireResp{}, err
	}
	bp := c.bufPool.Get().(*[]byte)
	*bp = fn((*bp)[:0], id)
	select {
	case c.send <- *bp:
	case <-c.readerDone:
		c.forget(id)
		c.bufPool.Put(bp)
		return wireResp{}, c.closedErr()
	case <-ctx.Done():
		c.forget(id)
		c.bufPool.Put(bp)
		return wireResp{}, ctx.Err()
	}
	select {
	case r := <-ch:
		return r, nil
	case <-ctx.Done():
		c.forget(id)
		return wireResp{}, ctx.Err()
	}
}

// Submit sends one query and blocks until its reply arrives. Errors map
// back onto the serr sentinels and context errors; see errOf.
func (c *Client) Submit(ctx context.Context, query string) (server.Result, error) {
	ms := timeoutMS(ctx)
	r, err := c.post(ctx, func(b []byte, id uint64) []byte {
		return AppendQuery(b, id, ms, query)
	})
	if err != nil {
		return server.Result{}, err
	}
	return r.res, r.err
}

// SubmitBatch sends many queries in one frame and blocks until the batch
// reply arrives — the Backend batch contract: results always has
// len(queries), and the error joins one *serr.ItemError per failed query.
func (c *Client) SubmitBatch(ctx context.Context, queries []string) ([]server.Result, error) {
	ms := timeoutMS(ctx)
	r, err := c.post(ctx, func(b []byte, id uint64) []byte {
		return AppendBatch(b, id, ms, queries)
	})
	if err != nil {
		return nil, err
	}
	if r.err != nil {
		// Whole-frame refusal: every item failed the same way.
		errs := make([]error, len(queries))
		for i := range errs {
			errs[i] = r.err
		}
		return make([]server.Result, len(queries)), serr.JoinBatch(errs)
	}
	if len(r.results) != len(queries) {
		return nil, fmt.Errorf("binproto: batch reply has %d items, want %d", len(r.results), len(queries))
	}
	return r.results, serr.JoinBatch(r.errs)
}

// Stats fetches the server's merged fleet metrics.
func (c *Client) Stats(ctx context.Context) (server.Metrics, error) {
	r, err := c.post(ctx, func(b []byte, id uint64) []byte {
		return AppendStatsReq(b, id)
	})
	if err != nil {
		return server.Metrics{}, err
	}
	if r.err != nil {
		return server.Metrics{}, r.err
	}
	var m server.Metrics
	if err := json.Unmarshal(r.stats, &m); err != nil {
		return server.Metrics{}, fmt.Errorf("binproto: decoding stats: %w", err)
	}
	return m, nil
}

// closedErr is the error outstanding and future calls see once the
// connection is down: ErrClosed for a local Close, the transport error
// otherwise.
func (c *Client) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.readErr == nil {
		return serr.ErrClosed
	}
	return fmt.Errorf("binproto: connection lost: %w", c.readErr)
}

// Close tears the connection down: outstanding calls fail with
// serr.ErrClosed, the reader and writer exit, and subsequent calls return
// serr.ErrClosed. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.readerDone
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.netc.Close() // unblocks the reader; writer exits on readerDone
	<-c.readerDone
	<-c.writerDone
	return nil
}

// reader routes response frames to their pending channels by request ID.
// On exit — server close, transport error, or local Close — it fails every
// outstanding call.
func (c *Client) reader() {
	fr := newFrameReader(c.netc, 1<<24) // generous: stats JSON and big batches
	var exitErr error
	for {
		ft, id, payload, err := fr.next()
		if err != nil {
			exitErr = err
			break
		}
		var resp wireResp
		switch ft {
		case ftReply:
			res, rerr, perr := parseReply(payload)
			if perr != nil {
				exitErr = perr
				goto out
			}
			resp = wireResp{res: res, err: rerr}
		case ftBatchReply:
			results, errs, frameErr, perr := parseBatchReply(payload)
			if perr != nil {
				exitErr = perr
				goto out
			}
			resp = wireResp{results: results, errs: errs, err: frameErr}
		case ftStatsReply:
			js, frameErr, perr := parseStatsReply(payload)
			if perr != nil {
				exitErr = perr
				goto out
			}
			resp = wireResp{stats: append([]byte(nil), js...), err: frameErr}
		default:
			exitErr = protoErrf("unknown response frame type 0x%02x", ft)
			goto out
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp // buffered; never blocks
		}
	}
out:
	c.mu.Lock()
	c.readErr = exitErr
	failWith := serr.ErrClosed
	if !c.closed {
		if exitErr != nil && !errors.Is(exitErr, net.ErrClosed) {
			failWith = fmt.Errorf("binproto: connection lost: %w", exitErr)
		}
		c.closed = true
		c.netc.Close()
	}
	orphans := c.pending
	c.pending = make(map[uint64]chan wireResp)
	c.mu.Unlock()
	for _, ch := range orphans {
		ch <- wireResp{err: failWith}
	}
	close(c.readerDone)
}

// writer drains encoded frames onto the socket, coalescing whatever is
// queued into one write, and recycles the buffers.
func (c *Client) writer() {
	defer close(c.writerDone)
	// Accumulate into one flat buffer so a burst of Submits costs one
	// syscall; the per-request buffers go back to the pool immediately.
	out := make([]byte, 0, 32<<10)
	for {
		select {
		case b := <-c.send:
			out = append(out[:0], b...)
			c.putBuf(b)
		coalesce:
			for {
				select {
				case b := <-c.send:
					out = append(out, b...)
					c.putBuf(b)
				default:
					break coalesce
				}
			}
			if _, err := c.netc.Write(out); err != nil {
				// Socket gone: the reader will notice and fail everything.
				// Keep draining sends so posters never block.
				for {
					select {
					case b := <-c.send:
						c.putBuf(b)
					case <-c.readerDone:
						return
					}
				}
			}
		case <-c.readerDone:
			return
		}
	}
}

func (c *Client) putBuf(b []byte) {
	b = b[:0]
	c.bufPool.Put(&b)
}
