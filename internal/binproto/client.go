package binproto

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/serr"
	"sharedwd/internal/server"
)

// pendingShards stripes the client's pending-request table: request IDs
// hash (by low bits — IDs are sequential, so consecutive requests land on
// consecutive stripes) onto independent mutex+map pairs, so hundreds of
// concurrent submitters no longer serialize on one table lock. Must be a
// power of two.
const pendingShards = 16

// pendingShard is one stripe of the table. closed latches when the reader
// has swept the stripe on exit: a register that loses that race fails
// with the connection's closed error instead of leaking an entry no one
// will ever route to.
type pendingShard struct {
	mu     sync.Mutex
	m      map[uint64]*call
	closed bool
	_      [24]byte // keep adjacent stripes' locks off one cache line
}

// call is one outstanding request's rendezvous. The reply channel is
// buffered(1) and pooled with the call; the forget-versus-deliver
// discipline in post guarantees it is empty whenever the call returns to
// the pool.
type call struct {
	ch chan wireResp
}

var callPool = sync.Pool{New: func() any { return &call{ch: make(chan wireResp, 1)} }}

// Client is a multiplexing connection to a binary-tier server: any number
// of goroutines may Submit, SubmitBatch, and Stats concurrently over the
// one socket. Each call registers a pooled rendezvous under a fresh
// request ID in a striped pending table, encodes its frame directly into
// the shared write buffer (so a burst of submitters coalesces into one
// writer syscall with no per-request buffer), and parks on its reusable
// reply channel until the reader routes the response back by ID — so a
// slow query never blocks a fast one behind it. Close fails all
// outstanding calls with serr.ErrClosed; so do calls made after Close,
// matching the in-process servers' post-Close contract.
type Client struct {
	netc net.Conn

	nextID atomic.Uint64

	shards [pendingShards]pendingShard

	// mu guards the cold connection state only (Close vs reader-exit);
	// nothing on the per-request path takes it.
	mu      sync.Mutex
	closed  bool
	readErr error // why the reader exited; set before readerDone closes

	// The write path: posters append encoded frames to wbuf under wmu and
	// nudge the writer, which swaps the buffer out and writes it whole.
	wmu   sync.Mutex
	wbuf  []byte
	wdead bool
	wwake chan struct{} // cap 1

	readerDone chan struct{}
	writerDone chan struct{}
}

// wireResp is one routed response: the reply's decoded content, or the
// connection-level failure that voided it.
type wireResp struct {
	res     server.Result
	err     error
	results []server.Result
	errs    []error
	stats   []byte // owned copy of Metrics JSON
}

// Dial connects to a binary-tier server at addr, sends the protocol
// preamble, and starts the reader and writer goroutines.
func Dial(addr string) (*Client, error) {
	netc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	pre := append([]byte(Magic), Version)
	if _, err := netc.Write(pre); err != nil {
		netc.Close()
		return nil, err
	}
	c := &Client{
		netc:       netc,
		wbuf:       make([]byte, 0, 32<<10),
		wwake:      make(chan struct{}, 1),
		readerDone: make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*call)
	}
	go c.reader()
	go c.writer()
	return c, nil
}

func (c *Client) shard(id uint64) *pendingShard {
	return &c.shards[id&(pendingShards-1)]
}

// register installs a pooled call under a fresh ID. It fails once the
// client is closed.
func (c *Client) register() (uint64, *call, error) {
	id := c.nextID.Add(1)
	ca := callPool.Get().(*call)
	sh := c.shard(id)
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		callPool.Put(ca)
		return 0, nil, serr.ErrClosed
	}
	sh.m[id] = ca
	sh.mu.Unlock()
	return id, ca, nil
}

// forget removes id from the pending table, reporting whether the entry
// was still there. True means the caller reclaimed sole ownership of the
// call (the reader can no longer see it); false means the reader (or its
// exit sweep) already took it and a delivery on the call's channel is
// imminent — the caller must collect it before recycling.
func (c *Client) forget(id uint64) bool {
	sh := c.shard(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	return ok
}

// timeoutMS derives the frame's timeout field from ctx: the remaining
// deadline in milliseconds (rounded up so a live deadline never becomes
// 0 = server default), or 0 when ctx has none.
func timeoutMS(ctx context.Context) uint32 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds() + 1
	if ms < 1 {
		ms = 1
	}
	if ms > 1<<31 {
		ms = 1 << 31
	}
	return uint32(ms)
}

// post encodes-and-sends via fn and waits for the routed response.
func (c *Client) post(ctx context.Context, fn func(b []byte, id uint64) []byte) (wireResp, error) {
	id, ca, err := c.register()
	if err != nil {
		return wireResp{}, c.closedErr()
	}
	c.wmu.Lock()
	if c.wdead {
		c.wmu.Unlock()
		if c.forget(id) {
			callPool.Put(ca)
			return wireResp{}, c.closedErr()
		}
		// The reader's exit sweep owns the call: collect its failure.
		r := <-ca.ch
		callPool.Put(ca)
		return r, nil
	}
	c.wbuf = fn(c.wbuf, id)
	c.wmu.Unlock()
	select {
	case c.wwake <- struct{}{}:
	default:
	}
	select {
	case r := <-ca.ch:
		callPool.Put(ca)
		return r, nil
	case <-ctx.Done():
		if c.forget(id) {
			callPool.Put(ca)
			return wireResp{}, ctx.Err()
		}
		// The reader took the entry first, so a delivery is imminent:
		// drain it so the pooled channel is clean, and return it — a real
		// answer that raced the deadline is still an answer.
		r := <-ca.ch
		callPool.Put(ca)
		return r, nil
	}
}

// Submit sends one query and blocks until its reply arrives. Errors map
// back onto the serr sentinels and context errors; see errOf.
func (c *Client) Submit(ctx context.Context, query string) (server.Result, error) {
	ms := timeoutMS(ctx)
	r, err := c.post(ctx, func(b []byte, id uint64) []byte {
		return AppendQuery(b, id, ms, query)
	})
	if err != nil {
		return server.Result{}, err
	}
	return r.res, r.err
}

// SubmitBatch sends many queries in one frame and blocks until the batch
// reply arrives — the Backend batch contract: results always has
// len(queries), and the error joins one *serr.ItemError per failed query.
func (c *Client) SubmitBatch(ctx context.Context, queries []string) ([]server.Result, error) {
	ms := timeoutMS(ctx)
	r, err := c.post(ctx, func(b []byte, id uint64) []byte {
		return AppendBatch(b, id, ms, queries)
	})
	if err != nil {
		return nil, err
	}
	if r.err != nil {
		// Whole-frame refusal: every item failed the same way.
		errs := make([]error, len(queries))
		for i := range errs {
			errs[i] = r.err
		}
		return make([]server.Result, len(queries)), serr.JoinBatch(errs)
	}
	if len(r.results) != len(queries) {
		return nil, fmt.Errorf("binproto: batch reply has %d items, want %d", len(r.results), len(queries))
	}
	return r.results, serr.JoinBatch(r.errs)
}

// Stats fetches the server's merged fleet metrics.
func (c *Client) Stats(ctx context.Context) (server.Metrics, error) {
	r, err := c.post(ctx, func(b []byte, id uint64) []byte {
		return AppendStatsReq(b, id)
	})
	if err != nil {
		return server.Metrics{}, err
	}
	if r.err != nil {
		return server.Metrics{}, r.err
	}
	var m server.Metrics
	if err := json.Unmarshal(r.stats, &m); err != nil {
		return server.Metrics{}, fmt.Errorf("binproto: decoding stats: %w", err)
	}
	return m, nil
}

// closedErr is the error outstanding and future calls see once the
// connection is down: ErrClosed for a local Close, the transport error
// otherwise.
func (c *Client) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.readErr == nil {
		return serr.ErrClosed
	}
	return fmt.Errorf("binproto: connection lost: %w", c.readErr)
}

// Close tears the connection down: outstanding calls fail with
// serr.ErrClosed, the reader and writer exit, and subsequent calls return
// serr.ErrClosed. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.readerDone
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.netc.Close() // unblocks the reader; writer exits on readerDone
	<-c.readerDone
	<-c.writerDone
	return nil
}

// reader routes response frames to their pending calls by request ID. On
// exit — server close, transport error, or local Close — it kills the
// write path, sweeps every stripe closed, and fails the orphans, in that
// order: a poster that passed the write-path liveness check registered
// before the sweep and is therefore guaranteed a delivery.
func (c *Client) reader() {
	fr := newFrameReader(c.netc, 1<<24) // generous: stats JSON and big batches
	var exitErr error
	for {
		ft, id, payload, err := fr.next()
		if err != nil {
			exitErr = err
			break
		}
		var resp wireResp
		switch ft {
		case ftReply:
			res, rerr, perr := parseReply(payload)
			if perr != nil {
				exitErr = perr
				goto out
			}
			resp = wireResp{res: res, err: rerr}
		case ftBatchReply:
			results, errs, frameErr, perr := parseBatchReply(payload)
			if perr != nil {
				exitErr = perr
				goto out
			}
			resp = wireResp{results: results, errs: errs, err: frameErr}
		case ftStatsReply:
			js, frameErr, perr := parseStatsReply(payload)
			if perr != nil {
				exitErr = perr
				goto out
			}
			resp = wireResp{stats: append([]byte(nil), js...), err: frameErr}
		default:
			exitErr = protoErrf("unknown response frame type 0x%02x", ft)
			goto out
		}
		sh := c.shard(id)
		sh.mu.Lock()
		ca := sh.m[id]
		delete(sh.m, id)
		sh.mu.Unlock()
		if ca != nil {
			ca.ch <- resp // buffered; never blocks
		}
	}
out:
	c.mu.Lock()
	c.readErr = exitErr
	failWith := serr.ErrClosed
	if !c.closed {
		if exitErr != nil && !errors.Is(exitErr, net.ErrClosed) {
			failWith = fmt.Errorf("binproto: connection lost: %w", exitErr)
		}
		c.closed = true
		c.netc.Close()
	}
	c.mu.Unlock()
	// Dead the write path BEFORE sweeping the stripes: any poster that saw
	// it alive has already registered, so the sweep below finds its call.
	c.wmu.Lock()
	c.wdead = true
	c.wbuf = c.wbuf[:0]
	c.wmu.Unlock()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.closed = true
		orphans := sh.m
		sh.m = make(map[uint64]*call)
		sh.mu.Unlock()
		for _, ca := range orphans {
			ca.ch <- wireResp{err: failWith}
		}
	}
	close(c.readerDone)
}

// writer swaps the shared encode buffer out under the lock and writes it
// whole: a burst of posters costs one syscall and zero per-request
// buffers. Posters never block on the socket — they append and move on.
func (c *Client) writer() {
	defer close(c.writerDone)
	spare := make([]byte, 0, 32<<10)
	for {
		select {
		case <-c.wwake:
		case <-c.readerDone:
			return
		}
		for {
			c.wmu.Lock()
			buf := c.wbuf
			c.wbuf = spare[:0]
			c.wmu.Unlock()
			if len(buf) == 0 {
				spare = buf
				break
			}
			_, err := c.netc.Write(buf)
			spare = buf[:0]
			if err != nil {
				// Socket gone: stop accepting frames; the reader notices
				// the dead socket and fails every outstanding call.
				c.wmu.Lock()
				c.wdead = true
				c.wbuf = c.wbuf[:0]
				c.wmu.Unlock()
				return
			}
		}
	}
}
