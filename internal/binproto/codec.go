package binproto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/server"
)

// The codec is append-style on the encode side — every encoder takes a
// destination []byte and returns the extended slice, so per-connection
// writers reuse one buffer and the hot path allocates nothing once the
// buffer has grown to its working size — and bounds-checked on the decode
// side: every parser reads counts and lengths from the wire but validates
// them against the bytes actually present before touching the payload, so
// a hostile frame can produce a protocol error, never a panic or an
// attacker-sized allocation.

// frame header: u32 length | byte type | u64 id. The length covers the
// type byte, the id, and the payload.
const headerLen = 4 + 1 + 8

// beginFrame appends a frame header with a zero length placeholder and
// returns (extended buffer, offset of the length word for finishFrame).
func beginFrame(b []byte, ft byte, id uint64) ([]byte, int) {
	at := len(b)
	b = append(b, 0, 0, 0, 0, ft)
	b = binary.BigEndian.AppendUint64(b, id)
	return b, at
}

// finishFrame patches the length word written by beginFrame.
func finishFrame(b []byte, at int) []byte {
	binary.BigEndian.PutUint32(b[at:], uint32(len(b)-at-4))
	return b
}

// AppendQuery appends a query request frame.
func AppendQuery(b []byte, id uint64, timeoutMS uint32, query string) []byte {
	b, at := beginFrame(b, ftQuery, id)
	b = binary.BigEndian.AppendUint32(b, timeoutMS)
	b = binary.BigEndian.AppendUint16(b, uint16(len(query)))
	b = append(b, query...)
	return finishFrame(b, at)
}

// AppendBatch appends a batch request frame.
func AppendBatch(b []byte, id uint64, timeoutMS uint32, queries []string) []byte {
	b, at := beginFrame(b, ftBatch, id)
	b = binary.BigEndian.AppendUint32(b, timeoutMS)
	b = binary.BigEndian.AppendUint16(b, uint16(len(queries)))
	for _, q := range queries {
		b = binary.BigEndian.AppendUint16(b, uint16(len(q)))
		b = append(b, q...)
	}
	return finishFrame(b, at)
}

// AppendStatsReq appends a stats request frame (empty payload).
func AppendStatsReq(b []byte, id uint64) []byte {
	b, at := beginFrame(b, ftStats, id)
	return finishFrame(b, at)
}

// appendResult appends the fixed-width result body of an OK reply.
func appendResult(b []byte, res *server.Result) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(res.Phrase))
	b = binary.BigEndian.AppendUint16(b, uint16(res.Shard))
	b = binary.BigEndian.AppendUint32(b, uint32(res.Round))
	b = binary.BigEndian.AppendUint64(b, uint64(res.Latency))
	b = binary.BigEndian.AppendUint16(b, uint16(len(res.Slots)))
	for i := range res.Slots {
		s := &res.Slots[i]
		b = binary.BigEndian.AppendUint16(b, uint16(s.Slot))
		b = binary.BigEndian.AppendUint32(b, uint32(s.Advertiser))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.PricePaid))
	}
	return b
}

// appendStatus appends one status | flags | body unit: an error message
// for non-OK statuses, a result for OK.
func appendStatus(b []byte, res *server.Result, err error) []byte {
	status, flags := statusOf(err)
	b = append(b, status, flags)
	if err != nil {
		msg := err.Error()
		if len(msg) > math.MaxUint16 {
			msg = msg[:math.MaxUint16]
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(msg)))
		return append(b, msg...)
	}
	return appendResult(b, res)
}

// AppendReply appends a single-query reply frame for (res, err).
func AppendReply(b []byte, id uint64, res *server.Result, err error) []byte {
	b, at := beginFrame(b, ftReply, id)
	b = appendStatus(b, res, err)
	return finishFrame(b, at)
}

// AppendErrorFrame appends a response frame of type ft carrying just a
// status — for frame-level refusals (overflow, duplicate ID, bad request)
// that never produced a body. msg may be empty. Valid for every response
// type: each one's non-OK shape is status | flags | u16 len | msg.
func AppendErrorFrame(b []byte, ft byte, id uint64, status, flags byte, msg string) []byte {
	b, at := beginFrame(b, ft, id)
	b = append(b, status, flags)
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(msg)))
	b = append(b, msg...)
	return finishFrame(b, at)
}

// AppendBatchReply appends a batch reply frame: a whole-frame OK status
// followed by one status | flags | body unit per item. results and errs
// must be the same length (the Backend batch contract: errs[i] non-nil
// marks item i failed).
func AppendBatchReply(b []byte, id uint64, results []server.Result, errs []error) []byte {
	b, at := beginFrame(b, ftBatchReply, id)
	b = append(b, StatusOK, 0)
	b = binary.BigEndian.AppendUint16(b, uint16(len(results)))
	for i := range results {
		var err error
		if i < len(errs) {
			err = errs[i]
		}
		b = appendStatus(b, &results[i], err)
	}
	return finishFrame(b, at)
}

// AppendStatsReply appends a stats reply frame carrying the Metrics JSON.
func AppendStatsReply(b []byte, id uint64, metricsJSON []byte) []byte {
	b, at := beginFrame(b, ftStatsReply, id)
	b = append(b, StatusOK, 0)
	b = binary.BigEndian.AppendUint32(b, uint32(len(metricsJSON)))
	b = append(b, metricsJSON...)
	return finishFrame(b, at)
}

// --- decode side ---

// errProtocol is a connection-fatal framing error: the peer violated the
// wire format and the connection cannot be trusted past this point.
type errProtocol struct{ msg string }

func (e *errProtocol) Error() string { return "binproto: protocol error: " + e.msg }

func protoErrf(format string, args ...any) error {
	return &errProtocol{msg: fmt.Sprintf(format, args...)}
}

// frameReader reads length-prefixed frames from r into one reused buffer.
// A frame's declared length is validated against maxFrame BEFORE the
// buffer grows, so a hostile length word can fail the connection but
// never size an allocation — the ws readFrame discipline. Reads go
// through an internal bufio.Reader, so a burst of pipelined frames lands
// in one syscall and buffered() lets the caller drain the rest of the
// burst without risking a blocking read.
type frameReader struct {
	r        *bufio.Reader
	maxFrame int
	hdr      [4]byte
	buf      []byte
}

func newFrameReader(r io.Reader, maxFrame int) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 32<<10), maxFrame: maxFrame, buf: make([]byte, 0, 4096)}
}

// buffered reports whether next() can return a whole frame without
// touching the underlying reader — the read-side coalescing primitive: a
// server drains every frame that arrived in the last syscall window into
// one submission batch before blocking again. A malformed length already
// in the buffer also reports true: next() will fail fast on it.
func (fr *frameReader) buffered() bool {
	n := fr.r.Buffered()
	if n < 4 {
		return false
	}
	hdr, _ := fr.r.Peek(4)
	length := uint64(binary.BigEndian.Uint32(hdr))
	if length < headerLen-4 || length > uint64(fr.maxFrame) {
		return true // protocol violation: let next() surface it now
	}
	return uint64(n) >= 4+length
}

// next reads one frame and returns its type, request ID, and payload. The
// payload aliases the reader's internal buffer — valid only until the
// next call. Returns io.EOF cleanly only on a frame boundary.
func (fr *frameReader) next() (ft byte, id uint64, payload []byte, err error) {
	if _, err = io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	// Keep the declared length wide until it has been bounds-checked; a
	// narrowing conversion first would let a huge declaration wrap around.
	length := uint64(binary.BigEndian.Uint32(fr.hdr[:]))
	if length < headerLen-4 {
		return 0, 0, nil, protoErrf("frame length %d shorter than type+id", length)
	}
	if length > uint64(fr.maxFrame) {
		return 0, 0, nil, protoErrf("frame length %d exceeds max %d", length, fr.maxFrame)
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	fr.buf = fr.buf[:length]
	if _, err = io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	ft = fr.buf[0]
	id = binary.BigEndian.Uint64(fr.buf[1:9])
	return ft, id, fr.buf[9:], nil
}

// byteReader is a sequential bounds-checked cursor over one payload. Every
// take checks the bytes actually present; ok latches false on the first
// short read so parsers can check once at the end.
type byteReader struct {
	b  []byte
	ok bool
}

func newByteReader(b []byte) byteReader { return byteReader{b: b, ok: true} }

func (br *byteReader) take(n int) []byte {
	if !br.ok || len(br.b) < n {
		br.ok = false
		return nil
	}
	out := br.b[:n]
	br.b = br.b[n:]
	return out
}

func (br *byteReader) u8() byte {
	if b := br.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (br *byteReader) u16() uint16 {
	if b := br.take(2); b != nil {
		return binary.BigEndian.Uint16(b)
	}
	return 0
}

func (br *byteReader) u32() uint32 {
	if b := br.take(4); b != nil {
		return binary.BigEndian.Uint32(b)
	}
	return 0
}

func (br *byteReader) u64() uint64 {
	if b := br.take(8); b != nil {
		return binary.BigEndian.Uint64(b)
	}
	return 0
}

func (br *byteReader) done() bool { return br.ok && len(br.b) == 0 }

// parseQuery decodes a query request payload. The query string is the
// payload's only allocation (the bytes alias the read buffer and must be
// copied out to survive the next frame).
func parseQuery(payload []byte) (timeoutMS uint32, query string, err error) {
	br := newByteReader(payload)
	timeoutMS = br.u32()
	qlen := int(br.u16())
	qb := br.take(qlen)
	if qb == nil || !br.done() {
		return 0, "", protoErrf("malformed query payload (%d bytes)", len(payload))
	}
	return timeoutMS, string(qb), nil
}

// parseBatch decodes a batch request payload. The declared count is only
// trusted after the items themselves fit the payload — each item's length
// is bounds-checked as it is read, so the count never sizes an allocation
// beyond the frame that actually arrived.
func parseBatch(payload []byte, maxItems int) (timeoutMS uint32, queries []string, err error) {
	br := newByteReader(payload)
	timeoutMS = br.u32()
	count := int(br.u16())
	if count > maxItems {
		return 0, nil, protoErrf("batch of %d items exceeds max %d", count, maxItems)
	}
	// Two bytes of length prefix per item is the floor; a count the
	// remaining bytes cannot hold is rejected before allocating for it.
	if !br.ok || count*2 > len(br.b) {
		return 0, nil, protoErrf("malformed batch payload (%d bytes)", len(payload))
	}
	queries = make([]string, count)
	for i := range queries {
		qlen := int(br.u16())
		qb := br.take(qlen)
		if qb == nil {
			return 0, nil, protoErrf("malformed batch payload (%d bytes)", len(payload))
		}
		queries[i] = string(qb)
	}
	if !br.done() {
		return 0, nil, protoErrf("trailing bytes in batch payload")
	}
	return timeoutMS, queries, nil
}

// parseStatus decodes one status | flags | body unit into (res, err). For
// OK statuses the result's Slots are freshly allocated (they must outlive
// the read buffer); the declared slot count is validated against the
// bytes present before the slice is sized.
func parseStatus(br *byteReader) (server.Result, error, error) {
	status := br.u8()
	flags := br.u8()
	if !br.ok {
		return server.Result{}, nil, protoErrf("truncated status")
	}
	if status != StatusOK {
		mlen := int(br.u16())
		mb := br.take(mlen)
		if mb == nil {
			return server.Result{}, nil, protoErrf("truncated error message")
		}
		return server.Result{}, errOf(status, flags, string(mb)), nil
	}
	var res server.Result
	res.Phrase = int(br.u32())
	res.Shard = int(br.u16())
	res.Round = int(br.u32())
	res.Latency = time.Duration(br.u64())
	nslots := int(br.u16())
	const slotWire = 2 + 4 + 8
	if !br.ok || nslots*slotWire > len(br.b) {
		return server.Result{}, nil, protoErrf("truncated result")
	}
	if nslots > 0 {
		res.Slots = make([]core.SlotResult, nslots)
		for i := range res.Slots {
			res.Slots[i].Slot = int(br.u16())
			res.Slots[i].Advertiser = int(br.u32())
			res.Slots[i].PricePaid = math.Float64frombits(br.u64())
		}
	}
	if !br.ok {
		return server.Result{}, nil, protoErrf("truncated result")
	}
	return res, nil, nil
}

// parseReply decodes a single-query reply payload.
func parseReply(payload []byte) (server.Result, error, error) {
	br := newByteReader(payload)
	res, rerr, perr := parseStatus(&br)
	if perr != nil {
		return server.Result{}, nil, perr
	}
	if !br.done() {
		return server.Result{}, nil, protoErrf("trailing bytes in reply")
	}
	return res, rerr, nil
}

// parseBatchReply decodes a batch reply payload into per-item results and
// errors. A non-OK frame status means the whole batch was refused; the
// returned frameErr applies to every item.
func parseBatchReply(payload []byte) (results []server.Result, errs []error, frameErr error, perr error) {
	br := newByteReader(payload)
	status := br.u8()
	flags := br.u8()
	if !br.ok {
		return nil, nil, nil, protoErrf("truncated batch reply")
	}
	if status != StatusOK {
		mlen := int(br.u16())
		mb := br.take(mlen)
		if mb == nil || !br.done() {
			return nil, nil, nil, protoErrf("truncated batch reply error")
		}
		return nil, nil, errOf(status, flags, string(mb)), nil
	}
	count := int(br.u16())
	// Each item is at least status+flags+u16: reject counts the payload
	// cannot hold before allocating result slices for them.
	if !br.ok || count*4 > len(br.b) {
		return nil, nil, nil, protoErrf("malformed batch reply (%d bytes)", len(payload))
	}
	results = make([]server.Result, count)
	errs = make([]error, count)
	for i := 0; i < count; i++ {
		res, rerr, perr := parseStatus(&br)
		if perr != nil {
			return nil, nil, nil, perr
		}
		results[i], errs[i] = res, rerr
	}
	if !br.done() {
		return nil, nil, nil, protoErrf("trailing bytes in batch reply")
	}
	return results, errs, nil, nil
}

// parseStatsReply decodes a stats reply payload, returning the Metrics
// JSON bytes (aliasing the read buffer — decode before the next frame).
func parseStatsReply(payload []byte) (metricsJSON []byte, frameErr error, perr error) {
	br := newByteReader(payload)
	status := br.u8()
	flags := br.u8()
	if !br.ok {
		return nil, nil, protoErrf("truncated stats reply")
	}
	if status != StatusOK {
		mlen := int(br.u16())
		mb := br.take(mlen)
		if mb == nil || !br.done() {
			return nil, nil, protoErrf("truncated stats reply error")
		}
		return nil, errOf(status, flags, string(mb)), nil
	}
	jlen := int(br.u32())
	jb := br.take(jlen)
	if jb == nil || !br.done() {
		return nil, nil, protoErrf("malformed stats reply (%d bytes)", len(payload))
	}
	return jb, nil, nil
}
