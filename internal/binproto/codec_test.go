package binproto

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/serr"
	"sharedwd/internal/server"
)

// decodeOne reads exactly one frame out of an encoded buffer.
func decodeOne(t *testing.T, b []byte, maxFrame int) (byte, uint64, []byte) {
	t.Helper()
	fr := newFrameReader(bytes.NewReader(b), maxFrame)
	ft, id, payload, err := fr.next()
	if err != nil {
		t.Fatalf("decoding frame: %v", err)
	}
	return ft, id, payload
}

func TestQueryRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		id      uint64
		timeout uint32
		query   string
	}{
		{1, 0, "hiking boots"},
		{math.MaxUint64, 250, ""},
		{42, math.MaxUint32, string(make([]byte, math.MaxUint16))},
	} {
		b := AppendQuery(nil, tc.id, tc.timeout, tc.query)
		ft, id, payload := decodeOne(t, b, 1<<20)
		if ft != ftQuery || id != tc.id {
			t.Fatalf("frame header = (0x%02x, %d), want (0x%02x, %d)", ft, id, ftQuery, tc.id)
		}
		timeout, query, err := parseQuery(payload)
		if err != nil {
			t.Fatalf("parseQuery: %v", err)
		}
		if timeout != tc.timeout || query != tc.query {
			t.Fatalf("parseQuery = (%d, %q), want (%d, %q)", timeout, query, tc.timeout, tc.query)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	queries := []string{"alpha", "", "gamma delta", "épsilon"}
	b := AppendBatch(nil, 7, 1500, queries)
	ft, id, payload := decodeOne(t, b, 1<<20)
	if ft != ftBatch || id != 7 {
		t.Fatalf("frame header = (0x%02x, %d)", ft, id)
	}
	timeout, got, err := parseBatch(payload, 256)
	if err != nil {
		t.Fatalf("parseBatch: %v", err)
	}
	if timeout != 1500 {
		t.Fatalf("timeout = %d, want 1500", timeout)
	}
	if len(got) != len(queries) {
		t.Fatalf("got %d queries, want %d", len(got), len(queries))
	}
	for i := range queries {
		if got[i] != queries[i] {
			t.Fatalf("query %d = %q, want %q", i, got[i], queries[i])
		}
	}
	if _, _, err := parseBatch(payload, len(queries)-1); err == nil {
		t.Fatal("parseBatch accepted a batch beyond maxItems")
	}
}

func sampleResult() server.Result {
	return server.Result{
		Phrase:  7,
		Shard:   3,
		Round:   42,
		Latency: 3 * time.Millisecond,
		Slots: []core.SlotResult{
			{Slot: 0, Advertiser: 11, PricePaid: 1.25},
			{Slot: 1, Advertiser: 9, PricePaid: 0.75},
			{Slot: 2, Advertiser: 400, PricePaid: math.Pi},
		},
	}
}

func sameResult(a, b server.Result) bool {
	if a.Phrase != b.Phrase || a.Shard != b.Shard || a.Round != b.Round || a.Latency != b.Latency {
		return false
	}
	if len(a.Slots) != len(b.Slots) {
		return false
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			return false
		}
	}
	return true
}

func TestReplyRoundTrip(t *testing.T) {
	res := sampleResult()
	b := AppendReply(nil, 9, &res, nil)
	ft, id, payload := decodeOne(t, b, 1<<20)
	if ft != ftReply || id != 9 {
		t.Fatalf("frame header = (0x%02x, %d)", ft, id)
	}
	got, rerr, perr := parseReply(payload)
	if perr != nil || rerr != nil {
		t.Fatalf("parseReply: %v / %v", perr, rerr)
	}
	if !sameResult(got, res) {
		t.Fatalf("result = %+v, want %+v", got, res)
	}
}

// TestReplyErrorTaxonomy pins the status bytes and the errOf inverse: each
// backend sentinel survives a wire round trip under errors.Is.
func TestReplyErrorTaxonomy(t *testing.T) {
	for _, tc := range []struct {
		in     error
		status byte
		retry  bool
	}{
		{serr.ErrNoAuction, StatusNoAuction, false},
		{serr.ErrOverloaded, StatusOverloaded, true},
		{serr.ErrClosed, StatusClosed, false},
		{context.DeadlineExceeded, StatusDeadline, true},
		{context.Canceled, StatusCanceled, false},
		{errors.New("kaput"), StatusInternal, false},
	} {
		b := AppendReply(nil, 1, &server.Result{}, tc.in)
		_, _, payload := decodeOne(t, b, 1<<20)
		if payload[0] != tc.status {
			t.Fatalf("%v: status = %d, want %d", tc.in, payload[0], tc.status)
		}
		if retry := payload[1]&FlagRetryable != 0; retry != tc.retry {
			t.Fatalf("%v: retryable = %v, want %v", tc.in, retry, tc.retry)
		}
		_, rerr, perr := parseReply(payload)
		if perr != nil {
			t.Fatalf("%v: parseReply: %v", tc.in, perr)
		}
		if tc.status == StatusInternal {
			var re *RemoteError
			if !errors.As(rerr, &re) || re.Msg != "kaput" {
				t.Fatalf("internal error decoded as %v", rerr)
			}
		} else if !errors.Is(rerr, tc.in) {
			t.Fatalf("decoded %v does not match %v", rerr, tc.in)
		}
	}
}

func TestBatchReplyRoundTrip(t *testing.T) {
	results := []server.Result{sampleResult(), {}, sampleResult()}
	errs := []error{nil, serr.ErrNoAuction, nil}
	b := AppendBatchReply(nil, 5, results, errs)
	ft, id, payload := decodeOne(t, b, 1<<20)
	if ft != ftBatchReply || id != 5 {
		t.Fatalf("frame header = (0x%02x, %d)", ft, id)
	}
	got, gerrs, frameErr, perr := parseBatchReply(payload)
	if perr != nil || frameErr != nil {
		t.Fatalf("parseBatchReply: %v / %v", perr, frameErr)
	}
	if len(got) != 3 || len(gerrs) != 3 {
		t.Fatalf("got %d results, %d errors", len(got), len(gerrs))
	}
	if !sameResult(got[0], results[0]) || !sameResult(got[2], results[2]) {
		t.Fatal("batch results corrupted in transit")
	}
	if !errors.Is(gerrs[1], serr.ErrNoAuction) || gerrs[0] != nil || gerrs[2] != nil {
		t.Fatalf("batch errors = %v", gerrs)
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	b := AppendErrorFrame(nil, ftBatchReply, 3, StatusOverflow, FlagRetryable, "")
	_, _, payload := decodeOne(t, b, 1<<20)
	_, _, frameErr, perr := parseBatchReply(payload)
	if perr != nil {
		t.Fatalf("parseBatchReply: %v", perr)
	}
	if !errors.Is(frameErr, serr.ErrOverloaded) {
		t.Fatalf("overflow decoded as %v, want ErrOverloaded", frameErr)
	}
}

func TestStatsReplyRoundTrip(t *testing.T) {
	js := []byte(`{"answered": 12}`)
	b := AppendStatsReply(nil, 2, js)
	_, _, payload := decodeOne(t, b, 1<<20)
	got, frameErr, perr := parseStatsReply(payload)
	if perr != nil || frameErr != nil {
		t.Fatalf("parseStatsReply: %v / %v", perr, frameErr)
	}
	if !bytes.Equal(got, js) {
		t.Fatalf("stats JSON = %q, want %q", got, js)
	}
}

// TestFrameReaderBounds pins the uint64-length discipline: a declared
// length past MaxFrame fails the connection before any buffer grows.
func TestFrameReaderBounds(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff, ftQuery}
	fr := newFrameReader(bytes.NewReader(huge), 1<<20)
	if _, _, _, err := fr.next(); err == nil {
		t.Fatal("frameReader accepted a 4 GiB declared length")
	} else {
		var pe *errProtocol
		if !errors.As(err, &pe) {
			t.Fatalf("oversized frame error = %v, want protocol error", err)
		}
	}
	// A length shorter than type+id is equally fatal.
	runt := []byte{0, 0, 0, 3, ftQuery, 0, 0}
	fr = newFrameReader(bytes.NewReader(runt), 1<<20)
	if _, _, _, err := fr.next(); err == nil {
		t.Fatal("frameReader accepted a runt frame")
	}
}

// TestEncodeAllocs pins the zero-allocation hot path: encoding into a
// pre-grown buffer allocates nothing.
func TestEncodeAllocs(t *testing.T) {
	res := sampleResult()
	buf := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendReply(buf[:0], 9, &res, nil)
	}); n != 0 {
		t.Fatalf("AppendReply allocates %.1f/op, want 0", n)
	}
	results := []server.Result{res, res}
	errs := []error{nil, nil}
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendBatchReply(buf[:0], 9, results, errs)
	}); n != 0 {
		t.Fatalf("AppendBatchReply allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendQuery(buf[:0], 9, 250, "hiking boots")
	}); n != 0 {
		t.Fatalf("AppendQuery allocates %.1f/op, want 0", n)
	}
}

// FuzzFrameRoundTrip checks encode → frame → decode identity for query
// frames over arbitrary IDs, timeouts, and query bytes.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(250), "hiking boots")
	f.Add(uint64(0), uint32(0), "")
	f.Add(uint64(math.MaxUint64), uint32(math.MaxUint32), "q")
	f.Fuzz(func(t *testing.T, id uint64, timeout uint32, query string) {
		if len(query) > math.MaxUint16 {
			query = query[:math.MaxUint16]
		}
		b := AppendQuery(nil, id, timeout, query)
		fr := newFrameReader(bytes.NewReader(b), 1<<20)
		ft, gotID, payload, err := fr.next()
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if ft != ftQuery || gotID != id {
			t.Fatalf("frame header = (0x%02x, %d), want (0x%02x, %d)", ft, gotID, ftQuery, id)
		}
		gotTimeout, gotQuery, err := parseQuery(payload)
		if err != nil {
			t.Fatalf("parseQuery of own encoding: %v", err)
		}
		if gotTimeout != timeout || gotQuery != query {
			t.Fatalf("round trip = (%d, %q), want (%d, %q)", gotTimeout, gotQuery, timeout, query)
		}
	})
}

// FuzzMalformedFrame feeds arbitrary bytes through the frame reader and
// every payload parser: they must never panic, and never allocate from a
// declared count the actual bytes cannot back (the PR-7 ws readFrame
// lesson). Parsers may reject; they may not trust.
func FuzzMalformedFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(AppendQuery(nil, 1, 250, "seed"))
	f.Add(AppendBatch(nil, 2, 0, []string{"a", "b"}))
	r := sampleResult()
	f.Add(AppendReply(nil, 3, &r, nil))
	f.Add(AppendBatchReply(nil, 4, []server.Result{r}, []error{nil}))
	f.Add(AppendStatsReply(nil, 5, []byte(`{}`)))
	// A frame declaring a big batch count with no bytes behind it.
	f.Add([]byte{0, 0, 0, 15, ftBatch, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		fr := newFrameReader(bytes.NewReader(data), maxFrame)
		for {
			_, _, payload, err := fr.next()
			if err != nil {
				return
			}
			// Run every parser over the payload regardless of the declared
			// type: a confused peer could mislabel frames, and no parser may
			// panic or over-allocate on any input.
			parseQuery(payload)
			parseBatch(payload, 256)
			parseReply(payload)
			parseBatchReply(payload)
			parseStatsReply(payload)
		}
	})
}
