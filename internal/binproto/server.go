package binproto

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"sharedwd/internal/serr"
	"sharedwd/internal/server"
)

// Server is the binary tier: a TCP listener whose connections multiplex
// frames against one server.Backend. Create with New, start with Start,
// stop with Shutdown (drain: every admitted frame answered) or Close
// (immediate). Drain stops the edge without closing the backend, for
// facades that share the backend with another transport.
type Server struct {
	cfg     Config
	backend server.Backend

	listener net.Listener

	mu       sync.Mutex
	conns    map[*conn]struct{}
	draining bool

	acceptDone chan struct{} // closed when the accept loop exits
}

// New builds the tier over backend. It does not open the listener — Start
// does.
func New(backend server.Backend, cfg Config) *Server {
	return &Server{
		cfg:        cfg.withDefaults(),
		backend:    backend,
		conns:      make(map[*conn]struct{}),
		acceptDone: make(chan struct{}),
	}
}

// Start opens the listener and begins accepting in a background goroutine.
// It returns once the port is bound, so Addr is valid immediately after.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.listener = ln
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		netc, err := s.listener.Accept()
		if err != nil {
			return // listener closed — Drain or Close
		}
		c := newConn(s, netc)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			netc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go c.serve()
	}
}

func (s *Server) detach(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Drain gracefully stops the binary edge without touching the backend: the
// listener stops accepting, every connection finishes its admitted frames
// through the normal backend drain (bounded by ctx — on expiry in-flight
// requests are force-canceled), writers flush, sockets close. The backend
// stays open, so a facade serving HTTP and binary off one backend can
// drain this edge first and let the HTTP tier's Shutdown close the
// backend.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.acceptDone
		return nil
	}
	s.draining = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if s.listener != nil {
		s.listener.Close()
		<-s.acceptDone
	}
	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *conn) {
			defer wg.Done()
			c.drain(ctx)
		}(c)
	}
	wg.Wait()
	return ctx.Err()
}

// Shutdown drains the edge (see Drain) and then drains the backend itself.
// Every admitted frame is answered before any socket closes.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.Drain(ctx)
	s.backend.Close()
	return err
}

// Close tears the tier down without waiting: listener and sockets close
// immediately, the backend is closed. Use Shutdown for a graceful drain.
func (s *Server) Close() error {
	s.mu.Lock()
	wasDraining := s.draining
	s.draining = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.listener != nil && !wasDraining {
		s.listener.Close()
	}
	if s.listener != nil {
		<-s.acceptDone
	}
	for _, c := range conns {
		c.abort()
	}
	s.backend.Close()
	return nil
}

// wireMsg is one encoded-to-be response handed from a request goroutine to
// the connection's writer: the writer encodes it into its reused buffer.
type wireMsg struct {
	ft      byte
	id      uint64
	refused bool // frame-level refusal: encode status/flags/msg only
	status  byte
	flags   byte
	msg     string
	res     server.Result
	err     error
	results []server.Result
	errs    []error
	stats   []byte // Metrics JSON for ftStatsReply
}

// refusal builds the frame-level refusal answering a request of type ft.
func refusal(ft byte, id uint64, status byte, msg string) wireMsg {
	reply := map[byte]byte{ftQuery: ftReply, ftBatch: ftBatchReply, ftStats: ftStatsReply}[ft]
	return wireMsg{ft: reply, id: id, refused: true, status: status, flags: retryFlag(status), msg: msg}
}

// conn is one multiplexed client connection: a reader goroutine parsing
// and admitting frames, request goroutines resolving them against the
// backend, and a writer goroutine encoding completions back — out of
// order, as they finish.
type conn struct {
	srv  *Server
	netc net.Conn

	// out carries completions to the writer. It is never closed — the
	// writer exits on stop instead, so a late completion can never panic
	// on a closed channel; it is simply dropped once stop is closed.
	out      chan wireMsg
	stop     chan struct{} // closed (once) to release the writer and any senders
	stopOnce sync.Once

	writerDone chan struct{}

	// ids is the bounded in-flight table; idMu also guards draining so an
	// inflight.Add can never race the drain's Wait.
	idMu     sync.Mutex
	ids      map[uint64]struct{}
	draining bool
	inflight sync.WaitGroup

	// ctx cancels every in-flight request when the connection dies.
	ctx    context.Context
	cancel context.CancelFunc
}

func newConn(s *Server, netc net.Conn) *conn {
	ctx, cancel := context.WithCancel(context.Background())
	return &conn{
		srv:        s,
		netc:       netc,
		out:        make(chan wireMsg, 64),
		stop:       make(chan struct{}),
		writerDone: make(chan struct{}),
		ids:        make(map[uint64]struct{}),
		ctx:        ctx,
		cancel:     cancel,
	}
}

// send hands a completion to the writer, unless the connection is already
// stopping (then the message is dropped — the socket is gone).
func (c *conn) send(m wireMsg) {
	select {
	case c.out <- m:
	case <-c.stop:
	}
}

// admit registers a request ID in the bounded in-flight table. On refusal
// it returns the status to answer with; on success the caller owes a
// finish(id) once the reply has been handed to the writer.
func (c *conn) admit(id uint64) (refuse byte, ok bool) {
	c.idMu.Lock()
	defer c.idMu.Unlock()
	if c.draining {
		return StatusClosed, false
	}
	if len(c.ids) >= c.srv.cfg.MaxInFlight {
		return StatusOverflow, false
	}
	if _, dup := c.ids[id]; dup {
		return StatusBadRequest, false
	}
	c.ids[id] = struct{}{}
	c.inflight.Add(1)
	return 0, true
}

func (c *conn) finish(id uint64) {
	c.idMu.Lock()
	delete(c.ids, id)
	c.idMu.Unlock()
	c.inflight.Done()
}

// timeout clamps a frame's requested deadline to the server's bounds.
func (c *conn) timeout(ms uint32) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = c.srv.cfg.DefaultTimeout
	}
	if d > c.srv.cfg.MaxTimeout {
		d = c.srv.cfg.MaxTimeout
	}
	return d
}

// serve runs the connection: preamble check, writer start, then the read
// loop until the client goes away or violates the protocol. Teardown on
// this path force-cancels in-flight requests (the reader cannot tell a
// hung client from a slow one); the graceful path is drain.
func (c *conn) serve() {
	defer c.srv.detach(c)

	// The preamble distinguishes a binproto client from a stray HTTP
	// request (or port scan) before any frame parsing.
	var magic [5]byte
	c.netc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c.netc, magic[:]); err != nil ||
		string(magic[:4]) != Magic || magic[4] != Version {
		c.cancel()
		c.netc.Close()
		close(c.writerDone) // writer never started
		return
	}
	c.netc.SetReadDeadline(time.Time{})

	go c.writer()

	fr := newFrameReader(c.netc, c.srv.cfg.MaxFrame)
	for {
		ft, id, payload, err := fr.next()
		if err != nil {
			break // EOF, socket error, or protocol violation — all fatal
		}
		if !c.handle(ft, id, payload) {
			break
		}
	}

	// Reader-exit teardown: no new frames can arrive, so the in-flight
	// count only decreases. Cancel them (the client is gone or broken),
	// wait them out, release the writer, close the socket.
	c.cancel()
	c.inflight.Wait()
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.writerDone
	c.netc.Close()
}

// handle admits and dispatches one frame. It returns false on a protocol
// violation that must fail the connection.
func (c *conn) handle(ft byte, id uint64, payload []byte) bool {
	switch ft {
	case ftQuery:
		timeoutMS, query, err := parseQuery(payload)
		if err != nil {
			return false
		}
		if refuse, ok := c.admit(id); !ok {
			c.send(refusal(ftQuery, id, refuse, ""))
			return true
		}
		d := c.timeout(timeoutMS)
		go func() {
			defer c.finish(id)
			ctx, cancel := context.WithTimeout(c.ctx, d)
			res, err := c.srv.backend.Submit(ctx, query)
			cancel()
			c.send(wireMsg{ft: ftReply, id: id, res: res, err: err})
		}()
		return true

	case ftBatch:
		timeoutMS, queries, err := parseBatch(payload, c.srv.cfg.MaxBatchItems)
		if err != nil {
			// An oversized batch count is a semantic refusal, not a framing
			// violation; answer it and keep the connection.
			var pe *errProtocol
			if errors.As(err, &pe) && len(payload) >= 6 {
				c.send(refusal(ftBatch, id, StatusBadRequest, pe.msg))
				return true
			}
			return false
		}
		if refuse, ok := c.admit(id); !ok {
			c.send(refusal(ftBatch, id, refuse, ""))
			return true
		}
		d := c.timeout(timeoutMS)
		go func() {
			defer c.finish(id)
			ctx, cancel := context.WithTimeout(c.ctx, d)
			results, err := c.srv.backend.SubmitBatch(ctx, queries)
			cancel()
			errs := serr.SplitBatch(err, len(queries))
			c.send(wireMsg{ft: ftBatchReply, id: id, results: results, errs: errs})
		}()
		return true

	case ftStats:
		if len(payload) != 0 {
			return false
		}
		if refuse, ok := c.admit(id); !ok {
			c.send(refusal(ftStats, id, refuse, ""))
			return true
		}
		go func() {
			defer c.finish(id)
			m := c.srv.backend.Metrics()
			js, err := json.Marshal(m)
			if err != nil {
				c.send(refusal(ftStats, id, StatusInternal, err.Error()))
				return
			}
			c.send(wireMsg{ft: ftStatsReply, id: id, stats: js})
		}()
		return true

	default:
		return false // unknown frame type: connection-fatal
	}
}

func retryFlag(status byte) byte {
	if status == StatusOverflow || status == StatusOverloaded {
		return FlagRetryable
	}
	return 0
}

// writer encodes completions into one reused buffer and coalesces flushes:
// after each message it drains whatever else is already queued before
// flushing once, so a burst of completions costs one syscall.
func (c *conn) writer() {
	defer close(c.writerDone)
	bw := bufio.NewWriterSize(c.netc, 32<<10)
	buf := make([]byte, 0, 4096)
	encode := func(m wireMsg) {
		buf = buf[:0]
		switch {
		case m.refused:
			buf = AppendErrorFrame(buf, m.ft, m.id, m.status, m.flags, m.msg)
		case m.ft == ftReply:
			buf = AppendReply(buf, m.id, &m.res, m.err)
		case m.ft == ftBatchReply:
			buf = AppendBatchReply(buf, m.id, m.results, m.errs)
		case m.ft == ftStatsReply:
			buf = AppendStatsReply(buf, m.id, m.stats)
		}
		bw.Write(buf)
	}
	for {
		select {
		case m := <-c.out:
			encode(m)
			// Opportunistic drain: anything already completed rides the
			// same flush.
		drainLoop:
			for {
				select {
				case m := <-c.out:
					encode(m)
				default:
					break drainLoop
				}
			}
			c.netc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
			if err := bw.Flush(); err != nil {
				// The socket is gone; stop accepting completions so request
				// goroutines don't block on a dead writer, and unblock the
				// reader via the closed socket.
				c.stopOnce.Do(func() { close(c.stop) })
				c.netc.Close()
				for {
					select {
					case <-c.out: // discard
					default:
						return
					}
				}
			}
		case <-c.stop:
			// Final drain: everything already queued still goes out.
			for {
				select {
				case m := <-c.out:
					encode(m)
				default:
					c.netc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
					bw.Flush()
					return
				}
			}
		}
	}
}

// drain is the graceful path: stop admitting (new frames get
// StatusClosed), wait for in-flight requests bounded by ctx (force-cancel
// on expiry), then release the writer — which flushes everything queued —
// and close the socket.
func (c *conn) drain(ctx context.Context) {
	c.idMu.Lock()
	c.draining = true
	c.idMu.Unlock()

	done := make(chan struct{})
	go func() {
		c.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		c.cancel() // deadline: force in-flight requests to resolve as canceled
		<-done
	}
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.writerDone
	c.cancel()
	c.netc.Close()
}

// abort is the immediate path: cancel everything and close the socket.
func (c *conn) abort() {
	c.cancel()
	c.stopOnce.Do(func() { close(c.stop) })
	c.netc.Close()
}
