package binproto

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/serr"
	"sharedwd/internal/server"
)

// Server is the binary tier: a TCP listener whose connections multiplex
// frames against one server.Backend. Create with New, start with Start,
// stop with Shutdown (drain: every admitted frame answered) or Close
// (immediate). Drain stops the edge without closing the backend, for
// facades that share the backend with another transport.
//
// When the backend also implements server.AsyncBackend (both in-process
// servers do), requests ride the zero-goroutine fast path: the per-conn
// reader drains every pipelined frame available in one syscall window
// into a pooled batch, submits it with one SubmitAsync call, and pooled
// completions enqueue replies straight onto the writer — no goroutine, no
// context, and no channel per request. Backends without the callback path
// fall back to the original goroutine-per-admitted-frame scheme with
// identical wire semantics.
type Server struct {
	cfg     Config
	backend server.Backend

	listener net.Listener

	mu       sync.Mutex
	conns    map[*conn]struct{}
	draining bool

	acceptDone chan struct{} // closed when the accept loop exits
}

// New builds the tier over backend. It does not open the listener — Start
// does.
func New(backend server.Backend, cfg Config) *Server {
	return &Server{
		cfg:        cfg.withDefaults(),
		backend:    backend,
		conns:      make(map[*conn]struct{}),
		acceptDone: make(chan struct{}),
	}
}

// Start opens the listener and begins accepting in a background goroutine.
// It returns once the port is bound, so Addr is valid immediately after.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.listener = ln
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		netc, err := s.listener.Accept()
		if err != nil {
			return // listener closed — Drain or Close
		}
		c := newConn(s, netc)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			netc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go c.serve()
	}
}

func (s *Server) detach(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Drain gracefully stops the binary edge without touching the backend: the
// listener stops accepting, every connection finishes its admitted frames
// through the normal backend path (bounded by ctx — on expiry in-flight
// requests on the blocking path are force-canceled; async in-flight items
// resolve at their next round close, which the still-open backend
// guarantees), writers flush, sockets close. The backend stays open, so a
// facade serving HTTP and binary off one backend can drain this edge first
// and let the HTTP tier's Shutdown close the backend.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.acceptDone
		return nil
	}
	s.draining = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if s.listener != nil {
		s.listener.Close()
		<-s.acceptDone
	}
	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *conn) {
			defer wg.Done()
			c.drain(ctx)
		}(c)
	}
	wg.Wait()
	return ctx.Err()
}

// Shutdown drains the edge (see Drain) and then drains the backend itself.
// Every admitted frame is answered before any socket closes.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.Drain(ctx)
	s.backend.Close()
	return err
}

// Close tears the tier down without waiting: listener and sockets close
// immediately, the backend is closed. Use Shutdown for a graceful drain.
func (s *Server) Close() error {
	s.mu.Lock()
	wasDraining := s.draining
	s.draining = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.listener != nil && !wasDraining {
		s.listener.Close()
	}
	if s.listener != nil {
		<-s.acceptDone
	}
	for _, c := range conns {
		c.abort()
	}
	s.backend.Close()
	return nil
}

// wireMsg is one completed response handed to the connection's writer: the
// writer encodes it into its reused buffer. bc, when non-nil, is the
// pooled batch completion whose slices the message borrows; the writer
// recycles it after encoding (or the drop path does).
type wireMsg struct {
	ft      byte
	id      uint64
	refused bool // frame-level refusal: encode status/flags/msg only
	status  byte
	flags   byte
	msg     string
	res     server.Result
	err     error
	results []server.Result
	errs    []error
	stats   []byte // Metrics JSON for ftStatsReply
	bc      *batchComp
}

// refusal builds the frame-level refusal answering a request of type ft.
func refusal(ft byte, id uint64, status byte, msg string) wireMsg {
	reply := map[byte]byte{ftQuery: ftReply, ftBatch: ftBatchReply, ftStats: ftStatsReply}[ft]
	return wireMsg{ft: reply, id: id, refused: true, status: status, flags: retryFlag(status), msg: msg}
}

// queryComp is the pooled completion for one ftQuery frame on the async
// path: the round loop's Complete enqueues the reply and releases the
// in-flight slot. Pooling a concrete type (rather than closing over c and
// id) keeps the per-request allocation count at zero.
type queryComp struct {
	c  *conn
	id uint64
}

var queryCompPool = sync.Pool{New: func() any { return new(queryComp) }}

// Complete fires exactly once, on the round loop (or synchronously on
// refusal). It recycles itself first — after send nothing may touch q.
func (q *queryComp) Complete(_ int, res server.Result, err error) {
	c, id := q.c, q.id
	q.c = nil
	queryCompPool.Put(q)
	c.send(wireMsg{ft: ftReply, id: id, res: res, err: err})
	c.finish(id)
}

// batchComp is the pooled counting completion for one ftBatch frame: every
// item writes its disjoint slot and decrements; the final decrement emits
// the one batch reply. Items may complete from any mix of round loops
// (sharded backends) and synchronous refusals — the atomic countdown
// publishes all slot writes to whichever caller sends the reply.
type batchComp struct {
	c         *conn
	id        uint64
	remaining atomic.Int32
	results   []server.Result
	errs      []error
}

var batchCompPool = sync.Pool{New: func() any { return new(batchComp) }}

func newBatchComp(c *conn, id uint64, n int) *batchComp {
	b := batchCompPool.Get().(*batchComp)
	b.c, b.id = c, id
	b.remaining.Store(int32(n))
	if cap(b.results) < n {
		b.results = make([]server.Result, n)
		b.errs = make([]error, n)
	} else {
		b.results = b.results[:n]
		b.errs = b.errs[:n]
	}
	return b
}

// putBatchComp clears borrowed references (Slots point into round-loop
// copies; errors may hold backend state) and recycles. Called by the
// writer after encoding, or by the drop path.
func putBatchComp(b *batchComp) {
	for i := range b.results {
		b.results[i] = server.Result{}
		b.errs[i] = nil
	}
	b.c = nil
	batchCompPool.Put(b)
}

func (b *batchComp) Complete(i int, res server.Result, err error) {
	b.results[i] = res
	b.errs[i] = err
	if b.remaining.Add(-1) > 0 {
		return
	}
	// Last item in: emit the reply. The writer (or drop path) recycles b,
	// so read everything needed before send.
	c, id := b.c, b.id
	c.send(wireMsg{ft: ftBatchReply, id: id, results: b.results, errs: b.errs, bc: b})
	c.finish(id)
}

// conn is one multiplexed client connection: a reader goroutine parsing,
// admitting, and (on the async path) batch-submitting frames, and a writer
// goroutine encoding completions back — out of order, as they finish. The
// writer's intake is a mutex-guarded double-buffered slice, so a round
// loop delivering completions can never block on a slow connection; it is
// naturally bounded by MaxInFlight admission.
type conn struct {
	srv   *Server
	netc  net.Conn
	async server.AsyncBackend // nil: fall back to goroutine-per-request

	// Writer queue. wdead flips once the socket is gone or the writer has
	// exited — after that enqueues are dropped (and their pooled carriers
	// recycled) instead of accumulating unread.
	wmu   sync.Mutex
	wq    []wireMsg
	wdead bool
	wwake chan struct{} // cap 1: non-blocking nudge after enqueue

	stop     chan struct{} // closed (once) to release the writer
	stopOnce sync.Once

	writerDone chan struct{}

	// ids is the bounded in-flight table; idMu also guards draining so an
	// inflight.Add can never race the drain's Wait.
	idMu     sync.Mutex
	ids      map[uint64]struct{}
	draining bool
	inflight sync.WaitGroup

	// ctx cancels blocking-path in-flight requests when the connection
	// dies; async-path items carry deadlines instead and resolve at round
	// close.
	ctx    context.Context
	cancel context.CancelFunc
}

func newConn(s *Server, netc net.Conn) *conn {
	ctx, cancel := context.WithCancel(context.Background())
	async, _ := s.backend.(server.AsyncBackend)
	return &conn{
		srv:        s,
		netc:       netc,
		async:      async,
		wwake:      make(chan struct{}, 1),
		stop:       make(chan struct{}),
		writerDone: make(chan struct{}),
		ids:        make(map[uint64]struct{}),
		ctx:        ctx,
		cancel:     cancel,
	}
}

// send enqueues a completion for the writer. It never blocks; once the
// connection is down the message is dropped (the socket is gone) and any
// pooled carrier recycled.
func (c *conn) send(m wireMsg) {
	c.wmu.Lock()
	if c.wdead {
		c.wmu.Unlock()
		if m.bc != nil {
			putBatchComp(m.bc)
		}
		return
	}
	c.wq = append(c.wq, m)
	c.wmu.Unlock()
	select {
	case c.wwake <- struct{}{}:
	default:
	}
}

// admit registers a request ID in the bounded in-flight table. On refusal
// it returns the status to answer with; on success the caller owes a
// finish(id) once the reply has been handed to the writer.
func (c *conn) admit(id uint64) (refuse byte, ok bool) {
	c.idMu.Lock()
	defer c.idMu.Unlock()
	if c.draining {
		return StatusClosed, false
	}
	if len(c.ids) >= c.srv.cfg.MaxInFlight {
		return StatusOverflow, false
	}
	if _, dup := c.ids[id]; dup {
		return StatusBadRequest, false
	}
	c.ids[id] = struct{}{}
	c.inflight.Add(1)
	return 0, true
}

func (c *conn) finish(id uint64) {
	c.idMu.Lock()
	delete(c.ids, id)
	c.idMu.Unlock()
	c.inflight.Done()
}

// timeout clamps a frame's requested deadline to the server's bounds.
func (c *conn) timeout(ms uint32) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = c.srv.cfg.DefaultTimeout
	}
	if d > c.srv.cfg.MaxTimeout {
		d = c.srv.cfg.MaxTimeout
	}
	return d
}

// serve runs the connection: preamble check, writer start, then the read
// loop until the client goes away or violates the protocol. Teardown on
// this path force-cancels blocking-path in-flight requests (the reader
// cannot tell a hung client from a slow one) and waits out async-path
// completions (at most one round interval away while the backend lives);
// the graceful path is drain.
func (c *conn) serve() {
	defer c.srv.detach(c)

	// The preamble distinguishes a binproto client from a stray HTTP
	// request (or port scan) before any frame parsing.
	var magic [5]byte
	c.netc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c.netc, magic[:]); err != nil ||
		string(magic[:4]) != Magic || magic[4] != Version {
		c.cancel()
		c.netc.Close()
		close(c.writerDone) // writer never started
		return
	}
	c.netc.SetReadDeadline(time.Time{})

	go c.writer()

	fr := newFrameReader(c.netc, c.srv.cfg.MaxFrame)
	if c.async != nil {
		c.readAsync(fr)
	} else {
		c.readBlocking(fr)
	}

	// Reader-exit teardown: no new frames can arrive, so the in-flight
	// count only decreases. Cancel the blocking path, wait everything out,
	// release the writer, close the socket.
	c.cancel()
	c.inflight.Wait()
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.writerDone
	c.netc.Close()
}

// readAsync is the zero-goroutine read loop: block for one frame, then
// drain every further frame already buffered (one syscall window's worth
// of pipelining), ingest them all into one pooled item batch, and submit
// the batch with a single SubmitAsync call before blocking again.
func (c *conn) readAsync(fr *frameReader) {
	items := make([]server.AsyncItem, 0, 64)
	for {
		ft, id, payload, err := fr.next()
		if err != nil {
			return // EOF, socket error, or protocol violation — all fatal
		}
		ok := c.ingest(ft, id, payload, &items)
		for ok && fr.buffered() {
			ft, id, payload, err = fr.next()
			if err != nil {
				ok = false
				break
			}
			ok = c.ingest(ft, id, payload, &items)
		}
		// Admitted items must be submitted even when a later frame just
		// failed the connection — admission owes each one a completion.
		if len(items) > 0 {
			c.async.SubmitAsync(items)
			for i := range items {
				items[i] = server.AsyncItem{} // drop refs for the pool's sake
			}
			items = items[:0]
		}
		if !ok {
			return
		}
	}
}

// ingest admits one frame on the async path, appending its work items.
// Refusals answer immediately through the writer queue. Returns false on a
// protocol violation that must fail the connection.
func (c *conn) ingest(ft byte, id uint64, payload []byte, items *[]server.AsyncItem) bool {
	switch ft {
	case ftQuery:
		timeoutMS, query, err := parseQuery(payload)
		if err != nil {
			return false
		}
		if refuse, ok := c.admit(id); !ok {
			c.send(refusal(ftQuery, id, refuse, ""))
			return true
		}
		qc := queryCompPool.Get().(*queryComp)
		qc.c, qc.id = c, id
		*items = append(*items, server.AsyncItem{
			Query:    query,
			Deadline: time.Now().Add(c.timeout(timeoutMS)),
			Done:     qc,
		})
		return true

	case ftBatch:
		timeoutMS, queries, err := parseBatch(payload, c.srv.cfg.MaxBatchItems)
		if err != nil {
			// An oversized batch count is a semantic refusal, not a framing
			// violation; answer it and keep the connection.
			var pe *errProtocol
			if errors.As(err, &pe) && len(payload) >= 6 {
				c.send(refusal(ftBatch, id, StatusBadRequest, pe.msg))
				return true
			}
			return false
		}
		if refuse, ok := c.admit(id); !ok {
			c.send(refusal(ftBatch, id, refuse, ""))
			return true
		}
		if len(queries) == 0 {
			c.send(wireMsg{ft: ftBatchReply, id: id})
			c.finish(id)
			return true
		}
		bc := newBatchComp(c, id, len(queries))
		deadline := time.Now().Add(c.timeout(timeoutMS))
		for i, q := range queries {
			*items = append(*items, server.AsyncItem{Query: q, Deadline: deadline, Done: bc, Index: i})
		}
		return true

	case ftStats:
		if len(payload) != 0 {
			return false
		}
		if refuse, ok := c.admit(id); !ok {
			c.send(refusal(ftStats, id, refuse, ""))
			return true
		}
		// Stats marshals a full Metrics snapshot — rare and heavy; keep it
		// off the read loop so it never delays a syscall window's queries.
		go c.answerStats(id)
		return true

	default:
		return false // unknown frame type: connection-fatal
	}
}

func (c *conn) answerStats(id uint64) {
	defer c.finish(id)
	m := c.srv.backend.Metrics()
	js, err := json.Marshal(m)
	if err != nil {
		c.send(refusal(ftStats, id, StatusInternal, err.Error()))
		return
	}
	c.send(wireMsg{ft: ftStatsReply, id: id, stats: js})
}

// readBlocking is the fallback read loop for backends without the
// callback fast path: one goroutine per admitted frame, bounded by the
// MaxInFlight table, with per-request contexts for cancellation.
func (c *conn) readBlocking(fr *frameReader) {
	for {
		ft, id, payload, err := fr.next()
		if err != nil {
			return // EOF, socket error, or protocol violation — all fatal
		}
		if !c.handle(ft, id, payload) {
			return
		}
	}
}

// handle admits and dispatches one frame on the blocking path. It returns
// false on a protocol violation that must fail the connection.
func (c *conn) handle(ft byte, id uint64, payload []byte) bool {
	switch ft {
	case ftQuery:
		timeoutMS, query, err := parseQuery(payload)
		if err != nil {
			return false
		}
		if refuse, ok := c.admit(id); !ok {
			c.send(refusal(ftQuery, id, refuse, ""))
			return true
		}
		d := c.timeout(timeoutMS)
		go func() {
			defer c.finish(id)
			ctx, cancel := context.WithTimeout(c.ctx, d)
			res, err := c.srv.backend.Submit(ctx, query)
			cancel()
			c.send(wireMsg{ft: ftReply, id: id, res: res, err: err})
		}()
		return true

	case ftBatch:
		timeoutMS, queries, err := parseBatch(payload, c.srv.cfg.MaxBatchItems)
		if err != nil {
			// An oversized batch count is a semantic refusal, not a framing
			// violation; answer it and keep the connection.
			var pe *errProtocol
			if errors.As(err, &pe) && len(payload) >= 6 {
				c.send(refusal(ftBatch, id, StatusBadRequest, pe.msg))
				return true
			}
			return false
		}
		if refuse, ok := c.admit(id); !ok {
			c.send(refusal(ftBatch, id, refuse, ""))
			return true
		}
		d := c.timeout(timeoutMS)
		go func() {
			defer c.finish(id)
			ctx, cancel := context.WithTimeout(c.ctx, d)
			results, err := c.srv.backend.SubmitBatch(ctx, queries)
			cancel()
			errs := serr.SplitBatch(err, len(queries))
			c.send(wireMsg{ft: ftBatchReply, id: id, results: results, errs: errs})
		}()
		return true

	case ftStats:
		if len(payload) != 0 {
			return false
		}
		if refuse, ok := c.admit(id); !ok {
			c.send(refusal(ftStats, id, refuse, ""))
			return true
		}
		go c.answerStats(id)
		return true

	default:
		return false // unknown frame type: connection-fatal
	}
}

func retryFlag(status byte) byte {
	if status == StatusOverflow || status == StatusOverloaded {
		return FlagRetryable
	}
	return 0
}

// discardQueue marks the writer intake dead and recycles whatever was
// still queued. After this, send drops messages instead of accumulating
// them unread.
func (c *conn) discardQueue() {
	c.wmu.Lock()
	c.wdead = true
	batch := c.wq
	c.wq = nil
	c.wmu.Unlock()
	for i := range batch {
		if batch[i].bc != nil {
			putBatchComp(batch[i].bc)
		}
	}
}

// writer encodes completions into one reused buffer and coalesces flushes:
// each pass swaps out everything queued, encodes it, and flushes once —
// so a burst of completions costs one syscall, and enqueuers (round-loop
// completions included) never wait on the socket.
func (c *conn) writer() {
	defer close(c.writerDone)
	bw := bufio.NewWriterSize(c.netc, 32<<10)
	buf := make([]byte, 0, 4096)
	spare := make([]wireMsg, 0, 64)
	encode := func(m *wireMsg) {
		buf = buf[:0]
		switch {
		case m.refused:
			buf = AppendErrorFrame(buf, m.ft, m.id, m.status, m.flags, m.msg)
		case m.ft == ftReply:
			buf = AppendReply(buf, m.id, &m.res, m.err)
		case m.ft == ftBatchReply:
			buf = AppendBatchReply(buf, m.id, m.results, m.errs)
		case m.ft == ftStatsReply:
			buf = AppendStatsReply(buf, m.id, m.stats)
		}
		bw.Write(buf)
		if m.bc != nil {
			putBatchComp(m.bc)
		}
	}
	// flushAll drains the queue to empty and flushes; false on socket
	// failure.
	flushAll := func() bool {
		for {
			c.wmu.Lock()
			batch := c.wq
			c.wq = spare[:0]
			c.wmu.Unlock()
			if len(batch) == 0 {
				spare = batch
				return true
			}
			for i := range batch {
				encode(&batch[i])
				batch[i] = wireMsg{} // release refs (results, errors, stats)
			}
			spare = batch[:0]
			c.netc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
			if err := bw.Flush(); err != nil {
				return false
			}
		}
	}
	for {
		select {
		case <-c.wwake:
			if !flushAll() {
				// The socket is gone; stop accepting completions and
				// unblock the reader via the closed socket.
				c.stopOnce.Do(func() { close(c.stop) })
				c.discardQueue()
				c.netc.Close()
				return
			}
		case <-c.stop:
			// Final drain: everything already queued still goes out.
			flushAll()
			c.discardQueue()
			return
		}
	}
}

// drain is the graceful path: stop admitting (new frames get
// StatusClosed), wait for in-flight requests bounded by ctx (force-cancel
// the blocking path on expiry; async items resolve at their next round
// close since the backend is still open), then release the writer — which
// flushes everything queued — and close the socket.
func (c *conn) drain(ctx context.Context) {
	c.idMu.Lock()
	c.draining = true
	c.idMu.Unlock()

	done := make(chan struct{})
	go func() {
		c.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		c.cancel() // deadline: force blocking in-flight requests to resolve as canceled
		<-done
	}
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.writerDone
	c.cancel()
	c.netc.Close()
}

// abort is the immediate path: cancel everything and close the socket.
func (c *conn) abort() {
	c.cancel()
	c.stopOnce.Do(func() { close(c.stop) })
	c.netc.Close()
}
