// Package bitset provides dense, fixed-capacity bitsets used throughout the
// shared winner-determination planner to represent sets of advertisers
// (variables of ⊕-expressions) and sets of queries (membership signatures).
//
// Under the semilattice axioms {A1..A4} of the paper, two ⊕-expressions are
// A-equivalent iff their variable sets are equal (Lemma 1), so the planner
// manipulates nothing but these sets; making them fast and allocation-light
// matters for plan construction time.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset. The zero value is an empty set of capacity zero;
// use New to create a set able to hold elements in [0, n).
//
// All binary operations (Union, Intersect, ...) require operands created
// with the same capacity; mixing capacities panics, because silently
// truncating a set of advertisers would corrupt a plan.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set able to hold elements in [0, n).
func New(n int) Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a set of capacity n containing exactly the given
// elements.
func FromIndices(n int, indices ...int) Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Cap returns the capacity the set was created with.
func (s Set) Cap() int { return s.n }

func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

func (s Set) checkSame(t Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}

// Add inserts i into the set.
func (s Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (i % wordBits)
}

// Remove deletes i from the set.
func (s Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (i % wordBits)
}

// Contains reports whether i is in the set.
func (s Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{n: s.n, words: w}
}

// Clear removes all elements in place.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Union returns a new set s ∪ t.
func (s Set) Union(t Set) Set {
	s.checkSame(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] | t.words[i]
	}
	return r
}

// UnionInPlace sets s = s ∪ t.
func (s Set) UnionInPlace(t Set) {
	s.checkSame(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Intersect returns a new set s ∩ t.
func (s Set) Intersect(t Set) Set {
	s.checkSame(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] & t.words[i]
	}
	return r
}

// Difference returns a new set s \ t.
func (s Set) Difference(t Set) Set {
	s.checkSame(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] &^ t.words[i]
	}
	return r
}

// DifferenceInPlace sets s = s \ t.
func (s Set) DifferenceInPlace(t Set) {
	s.checkSame(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	s.checkSame(t)
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	s.checkSame(t)
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is nonempty.
func (s Set) Intersects(t Set) bool {
	s.checkSame(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectCount returns |s ∩ t| without allocating.
func (s Set) IntersectCount(t Set) int {
	s.checkSame(t)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// Indices returns the elements of the set in ascending order.
func (s Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for each element in ascending order. It stops early if fn
// returns false.
func (s Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Key returns a string usable as a map key identifying the set's contents.
// Sets with equal contents (and capacity) have equal keys.
func (s Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(w >> (8 * i)))
		}
	}
	return b.String()
}

// String renders the set as "{i1, i2, ...}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
