package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.IsEmpty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Cap() != 100 {
		t.Fatalf("Cap = %d, want 100", s.Cap())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("unexpected member %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("missing member %d after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("64 still present after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { New(10).Add(10) },
		func() { New(10).Add(-1) },
		func() { New(10).Contains(10) },
		func() { New(10).Remove(-1) },
		func() { New(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	New(10).Union(New(20))
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(10, 1, 2, 3)
	b := FromIndices(10, 3, 4, 5)

	if got := a.Union(b).Indices(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b).Indices(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Difference(b).Indices(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Difference = %v", got)
	}
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if a.IntersectCount(b) != 1 {
		t.Fatalf("IntersectCount = %d, want 1", a.IntersectCount(b))
	}
	c := FromIndices(10, 7, 8)
	if a.Intersects(c) {
		t.Fatal("a should not intersect c")
	}
}

func TestSubsetEqual(t *testing.T) {
	a := FromIndices(70, 1, 64)
	b := FromIndices(70, 1, 2, 64)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊄ a expected")
	}
	if !a.SubsetOf(a) {
		t.Fatal("a ⊆ a expected")
	}
	if a.Equal(b) {
		t.Fatal("a ≠ b expected")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone should equal original")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(10, 1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("mutating clone affected original")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromIndices(10, 1, 2)
	a.UnionInPlace(FromIndices(10, 2, 3))
	if got := a.Indices(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("UnionInPlace = %v", got)
	}
	a.DifferenceInPlace(FromIndices(10, 1))
	if got := a.Indices(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("DifferenceInPlace = %v", got)
	}
	a.Clear()
	if !a.IsEmpty() {
		t.Fatal("Clear should empty the set")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(10, 1, 2, 3, 4)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Fatalf("seen = %v", seen)
	}
}

func TestKeyDistinguishesContents(t *testing.T) {
	a := FromIndices(128, 0, 127)
	b := FromIndices(128, 0, 126)
	if a.Key() == b.Key() {
		t.Fatal("distinct sets share Key")
	}
	if a.Key() != a.Clone().Key() {
		t.Fatal("equal sets have distinct Key")
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(10, 3, 1).String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

// randomSet builds a Set plus a reference map from an rng.
func randomSet(rng *rand.Rand, n int) (Set, map[int]bool) {
	s := New(n)
	ref := make(map[int]bool)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Add(i)
			ref[i] = true
		}
	}
	return s, ref
}

func TestQuickAgainstMapModel(t *testing.T) {
	// Property: Union/Intersect/Difference agree with a map-based model.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, ra := randomSet(rng, n)
		b, rb := randomSet(rng, n)
		u, x, d := a.Union(b), a.Intersect(b), a.Difference(b)
		for i := 0; i < n; i++ {
			if u.Contains(i) != (ra[i] || rb[i]) {
				return false
			}
			if x.Contains(i) != (ra[i] && rb[i]) {
				return false
			}
			if d.Contains(i) != (ra[i] && !rb[i]) {
				return false
			}
		}
		return u.Count() == len(unionMap(ra, rb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func unionMap(a, b map[int]bool) map[int]bool {
	u := make(map[int]bool)
	for k, v := range a {
		if v {
			u[k] = true
		}
	}
	for k, v := range b {
		if v {
			u[k] = true
		}
	}
	return u
}

func TestQuickSemilatticeLaws(t *testing.T) {
	// Union is associative, commutative, idempotent — the same laws the
	// planner assumes of ⊕ via Lemma 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		a, _ := randomSet(rng, n)
		b, _ := randomSet(rng, n)
		c, _ := randomSet(rng, n)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		if !a.Union(a).Equal(a) {
			return false
		}
		return a.Union(New(n)).Equal(a) // identity element
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIndicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, _ := randomSet(rng, n)
		back := FromIndices(n, a.Indices()...)
		return back.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, _ := randomSet(rng, 4096)
	y, _ := randomSet(rng, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.UnionInPlace(y)
	}
}

func BenchmarkIntersectCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, _ := randomSet(rng, 4096)
	y, _ := randomSet(rng, 4096)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.IntersectCount(y)
	}
	_ = sink
}
