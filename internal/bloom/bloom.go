// Package bloom implements Bloom filters, the paper's running example of a
// duplicate-insensitive aggregate: filter union is associative, commutative,
// and idempotent with the empty filter as identity — a semilattice, exactly
// the algebra (axioms A1–A4) the shared aggregation framework of Section II
// covers. The analytics service uses unions of per-phrase bidder sketches to
// estimate how many distinct advertisers bid on a phrase set, sharing the
// union DAG across overlapping queries.
package bloom

import (
	"fmt"
	"hash/fnv"
	"math"

	"sharedwd/internal/bitset"
)

// Filter is a Bloom filter over strings with m bits and k hash functions.
// Filters combined with Union must share identical (m, k) parameters.
type Filter struct {
	m, k int
	bits bitset.Set
	n    int // insertions (for cardinality bookkeeping; unions re-estimate)
}

// New returns an empty filter with mBits bits and kHashes hash functions.
func New(mBits, kHashes int) *Filter {
	if mBits <= 0 || kHashes <= 0 {
		panic(fmt.Sprintf("bloom: invalid parameters m=%d k=%d", mBits, kHashes))
	}
	return &Filter{m: mBits, k: kHashes, bits: bitset.New(mBits)}
}

// OptimalParams returns (m, k) sized for the expected number of items at the
// target false-positive rate, via the standard formulas
// m = −n·ln p / (ln 2)² and k = (m/n)·ln 2.
func OptimalParams(expectedItems int, falsePositive float64) (mBits, kHashes int) {
	if expectedItems <= 0 || falsePositive <= 0 || falsePositive >= 1 {
		panic("bloom: invalid sizing parameters")
	}
	n := float64(expectedItems)
	m := math.Ceil(-n * math.Log(falsePositive) / (math.Ln2 * math.Ln2))
	k := math.Max(1, math.Round(m/n*math.Ln2))
	return int(m), int(k)
}

// indices derives the k bit positions for an item using double hashing over
// a single 64-bit FNV digest (Kirsch–Mitzenmacher).
func (f *Filter) indices(item string) []int {
	h := fnv.New64a()
	h.Write([]byte(item))
	d := h.Sum64()
	h1 := d & 0xffffffff
	h2 := d >> 32
	if h2 == 0 {
		h2 = 0x9e3779b9
	}
	out := make([]int, f.k)
	for i := range out {
		out[i] = int((h1 + uint64(i)*h2) % uint64(f.m))
	}
	return out
}

// Add inserts an item.
func (f *Filter) Add(item string) {
	for _, i := range f.indices(item) {
		f.bits.Add(i)
	}
	f.n++
}

// Contains reports whether the item may have been inserted (false positives
// possible, false negatives not).
func (f *Filter) Contains(item string) bool {
	for _, i := range f.indices(item) {
		if !f.bits.Contains(i) {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (f *Filter) Clone() *Filter {
	return &Filter{m: f.m, k: f.k, bits: f.bits.Clone(), n: f.n}
}

// Union returns the filter representing the union of the two item sets.
// It panics if parameters differ. Union is the ⊕ of the semilattice: it is
// associative, commutative, idempotent, and New(m,k) is its identity.
func Union(a, b *Filter) *Filter {
	if a.m != b.m || a.k != b.k {
		panic(fmt.Sprintf("bloom: union of incompatible filters (%d,%d) vs (%d,%d)", a.m, a.k, b.m, b.k))
	}
	return &Filter{m: a.m, k: a.k, bits: a.bits.Union(b.bits)}
}

// Equal reports whether two filters have identical parameters and bits.
func (f *Filter) Equal(o *Filter) bool {
	return f.m == o.m && f.k == o.k && f.bits.Equal(o.bits)
}

// SetBits returns how many bits are set.
func (f *Filter) SetBits() int { return f.bits.Count() }

// EstimateCount estimates the number of distinct items represented, via the
// standard fill-ratio inversion n̂ = −(m/k)·ln(1 − X/m) with X set bits.
// A saturated filter returns +Inf.
func (f *Filter) EstimateCount() float64 {
	x := float64(f.bits.Count())
	m := float64(f.m)
	if x >= m {
		return math.Inf(1)
	}
	return -m / float64(f.k) * math.Log(1-x/m)
}

// FalsePositiveRate estimates the current false-positive probability
// (fill ratio to the k-th power).
func (f *Filter) FalsePositiveRate() float64 {
	fill := float64(f.bits.Count()) / float64(f.m)
	return math.Pow(fill, float64(f.k))
}
