package bloom

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 3) },
		func() { New(64, 0) },
		func() { OptimalParams(0, 0.01) },
		func() { OptimalParams(10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 4)
	items := []string{"music", "hiking boots", "high heels", "dvds", ""}
	for _, it := range items {
		f.Add(it)
	}
	for _, it := range items {
		if !f.Contains(it) {
			t.Fatalf("false negative for %q", it)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 1000
	m, k := OptimalParams(n, 0.01)
	f := New(m, k)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("nonmember-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false-positive rate %v, sized for 0.01", rate)
	}
	if est := f.FalsePositiveRate(); est > 0.03 {
		t.Fatalf("estimated fp rate %v", est)
	}
}

func TestEstimateCount(t *testing.T) {
	m, k := OptimalParams(500, 0.01)
	f := New(m, k)
	for i := 0; i < 500; i++ {
		f.Add(fmt.Sprintf("item-%d", i))
	}
	est := f.EstimateCount()
	if math.Abs(est-500) > 50 {
		t.Fatalf("EstimateCount = %v, want ≈ 500", est)
	}
	sat := New(8, 1)
	for i := 0; i < 100; i++ {
		sat.Add(fmt.Sprintf("x%d", i))
	}
	if !math.IsInf(sat.EstimateCount(), 1) {
		t.Fatal("saturated filter should estimate +Inf")
	}
}

func TestUnionSemantics(t *testing.T) {
	a := New(256, 3)
	b := New(256, 3)
	a.Add("alpha")
	b.Add("beta")
	u := Union(a, b)
	if !u.Contains("alpha") || !u.Contains("beta") {
		t.Fatal("union must contain both sides' items")
	}
	if a.Contains("beta") {
		t.Fatal("union must not mutate inputs")
	}
}

func TestUnionIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Union(New(128, 3), New(256, 3))
}

// TestQuickSemilatticeAxioms: union satisfies A1–A4 with the empty filter
// as identity — the algebra the shared-aggregation framework needs.
func TestQuickSemilatticeAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Filter {
			fl := New(128, 3)
			for i := 0; i < rng.Intn(10); i++ {
				fl.Add(fmt.Sprintf("i%d", rng.Intn(50)))
			}
			return fl
		}
		a, b, c := mk(), mk(), mk()
		if !Union(a, b).Equal(Union(b, a)) { // A4
			return false
		}
		if !Union(Union(a, b), c).Equal(Union(a, Union(b, c))) { // A1
			return false
		}
		if !Union(a, a).Equal(a.withoutN()) { // A3
			return false
		}
		return Union(a, New(128, 3)).Equal(a.withoutN()) // A2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// withoutN normalizes the insertion counter away for Equal comparisons
// (unions re-estimate cardinality from bits rather than tracking n).
func (f *Filter) withoutN() *Filter {
	c := f.Clone()
	c.n = 0
	return c
}

func TestCloneIndependence(t *testing.T) {
	a := New(128, 2)
	a.Add("x")
	b := a.Clone()
	b.Add("y")
	if a.Contains("y") && a.SetBits() == b.SetBits() {
		t.Fatal("clone shares storage with original")
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(1<<16, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add("benchmark-item")
	}
}

func BenchmarkUnion(b *testing.B) {
	x, y := New(1<<16, 5), New(1<<16, 5)
	for i := 0; i < 1000; i++ {
		x.Add(fmt.Sprintf("x%d", i))
		y.Add(fmt.Sprintf("y%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Union(x, y)
	}
}
