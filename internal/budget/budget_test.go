package budget

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewThrottlerValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func() (*Throttler, error)
	}{
		{"negative bid", func() (*Throttler, error) { return NewThrottler(0, -1, 5, 1, nil) }},
		{"negative budget", func() (*Throttler, error) { return NewThrottler(0, 1, -5, 1, nil) }},
		{"zero auctions", func() (*Throttler, error) { return NewThrottler(0, 1, 5, 0, nil) }},
		{"bad price", func() (*Throttler, error) {
			return NewThrottler(0, 1, 5, 1, []OutstandingAd{{Price: 0, CTR: 0.5}})
		}},
		{"bad ctr", func() (*Throttler, error) {
			return NewThrottler(0, 1, 5, 1, []OutstandingAd{{Price: 1, CTR: 1.5}})
		}},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNoOutstandingAds(t *testing.T) {
	// With no outstanding ads, b̂ = min(b, β/m) — the paper's base case.
	cases := []struct {
		bid, budget float64
		auctions    int
		want        float64
	}{
		{2, 100, 3, 2}, // plenty of budget
		{2, 3, 3, 1},   // β/m = 1 < b
		{2, 0, 1, 0},   // exhausted
		{0, 100, 1, 0}, // zero bid
	}
	for _, c := range cases {
		tr := MustThrottler(0, c.bid, c.budget, c.auctions, nil)
		if !tr.IsExact() {
			t.Fatalf("no-ads throttler should be exact: %v", tr.Bounds())
		}
		if got := tr.Exact(); !almostEq(got, c.want, 1e-12) {
			t.Errorf("bid=%v β=%v m=%d: got %v, want %v", c.bid, c.budget, c.auctions, got, c.want)
		}
		if got := ExactThrottledBid(c.bid, c.budget, c.auctions, nil); !almostEq(got, c.want, 1e-12) {
			t.Errorf("enumeration: got %v, want %v", got, c.want)
		}
	}
}

func TestFastPathFullBid(t *testing.T) {
	// ω ≤ β − m·b: even if everything is clicked the advertiser can pay.
	ads := []OutstandingAd{{Price: 1, CTR: 0.5}, {Price: 2, CTR: 0.9}}
	tr := MustThrottler(0, 2, 100, 3, ads)
	if !tr.IsExact() || tr.Bounds().Lo != 2 {
		t.Fatalf("fast path failed: %v", tr.Bounds())
	}
}

func TestExactSingleAdByHand(t *testing.T) {
	// b=2, β=4, m=2, one ad π=3 ctr=0.5:
	// clicked: min(2, (4-3)/2) = 0.5; not: min(2, 4/2) = 2 → b̂ = 1.25.
	ads := []OutstandingAd{{Price: 3, CTR: 0.5}}
	want := 1.25
	if got := ExactThrottledBid(2, 4, 2, ads); !almostEq(got, want, 1e-12) {
		t.Fatalf("enumeration = %v, want %v", got, want)
	}
	if got := ExactThrottledBidDP(2, 4, 2, ads, 0.01); !almostEq(got, want, 1e-9) {
		t.Fatalf("DP = %v, want %v", got, want)
	}
	tr := MustThrottler(0, 2, 4, 2, ads)
	if got := tr.Exact(); !almostEq(got, want, 1e-9) {
		t.Fatalf("throttler exact = %v, want %v", got, want)
	}
}

func TestOverBudgetGoesToZero(t *testing.T) {
	// Outstanding debt certain to exceed the budget: b̂ = 0.
	ads := []OutstandingAd{{Price: 10, CTR: 1}}
	if got := ExactThrottledBid(5, 8, 1, ads); got != 0 {
		t.Fatalf("b̂ = %v, want 0", got)
	}
	tr := MustThrottler(0, 5, 8, 1, ads)
	if got := tr.Exact(); !almostEq(got, 0, 1e-12) {
		t.Fatalf("throttler = %v, want 0", got)
	}
}

// TestQuickEnumerationMatchesDP: the two exact methods agree on cent-valued
// instances.
func TestQuickEnumerationMatchesDP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := rng.Intn(10)
		ads := make([]OutstandingAd, l)
		for i := range ads {
			ads[i] = OutstandingAd{
				Price: float64(1+rng.Intn(500)) / 100, // cents
				CTR:   rng.Float64(),
			}
		}
		bid := float64(rng.Intn(300)) / 100
		budgetCents := float64(rng.Intn(1000)) / 100
		m := 1 + rng.Intn(4)
		a := ExactThrottledBid(bid, budgetCents, m, ads)
		b := ExactThrottledBidDP(bid, budgetCents, m, ads, 0.01)
		return almostEq(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBoundsContainTruthAtEveryLevel: the anytime interval must contain
// the exact b̂ at every expansion level, tighten overall, and collapse to
// the exact value at full expansion.
func TestQuickBoundsContainTruthAtEveryLevel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(8)
		ads := make([]OutstandingAd, l)
		for i := range ads {
			ads[i] = OutstandingAd{Price: 0.5 + rng.Float64()*5, CTR: rng.Float64()}
		}
		bid := rng.Float64() * 3
		budget := rng.Float64() * 10
		m := 1 + rng.Intn(4)
		truth := ExactThrottledBid(bid, budget, m, ads)
		tr := MustThrottler(0, bid, budget, m, ads)
		first := tr.Bounds()
		for {
			bd := tr.Bounds()
			if truth < bd.Lo-1e-9 || truth > bd.Hi+1e-9 {
				return false
			}
			if tr.Level() >= l {
				break
			}
			tr.Refine()
		}
		final := tr.Bounds()
		if !almostEq(final.Lo, truth, 1e-9) || !almostEq(final.Hi, truth, 1e-9) {
			return false
		}
		return final.Width() <= first.Width()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineTightensMonotonically(t *testing.T) {
	ads := []OutstandingAd{
		{Price: 4, CTR: 0.3}, {Price: 2, CTR: 0.7}, {Price: 1, CTR: 0.5}, {Price: 3, CTR: 0.2},
	}
	tr := MustThrottler(0, 2, 6, 2, ads)
	prev := tr.Bounds().Width()
	for tr.Refine() {
		w := tr.Bounds().Width()
		if w > prev+1e-9 {
			t.Fatalf("width grew: %v -> %v at level %d", prev, w, tr.Level())
		}
		prev = w
	}
}

func TestCompareResolvesWithoutFullExpansion(t *testing.T) {
	// Clearly separated advertisers should compare with few refinements.
	adsA := []OutstandingAd{{Price: 0.1, CTR: 0.1}, {Price: 0.1, CTR: 0.1}}
	a := MustThrottler(0, 5, 100, 1, adsA) // essentially b̂ ≈ 5
	heavy := make([]OutstandingAd, 12)
	for i := range heavy {
		heavy[i] = OutstandingAd{Price: 10, CTR: 0.99}
	}
	b := MustThrottler(1, 5, 10, 1, heavy) // nearly certainly broke: b̂ ≈ 0
	got, st := Compare(a, b)
	if got != 1 {
		t.Fatalf("Compare = %d, want 1", got)
	}
	if st.Refinements >= 12 {
		t.Fatalf("Compare used %d refinements; bounds should separate early", st.Refinements)
	}
}

func TestCompareEqualExact(t *testing.T) {
	a := MustThrottler(0, 2, 100, 1, nil)
	b := MustThrottler(1, 2, 100, 1, nil)
	if got, _ := Compare(a, b); got != 0 {
		t.Fatalf("Compare = %d, want 0", got)
	}
}

// TestQuickCompareAgreesWithExact: the bound-driven comparison must agree
// with comparing the exact values.
func TestQuickCompareAgreesWithExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(id int) (*Throttler, float64) {
			l := rng.Intn(7)
			ads := make([]OutstandingAd, l)
			for i := range ads {
				ads[i] = OutstandingAd{Price: 0.5 + rng.Float64()*4, CTR: rng.Float64()}
			}
			bid := rng.Float64() * 3
			budget := rng.Float64() * 12
			m := 1 + rng.Intn(3)
			return MustThrottler(id, bid, budget, m, ads), ExactThrottledBid(bid, budget, m, ads)
		}
		a, va := mk(0)
		b, vb := mk(1)
		got, _ := Compare(a, b)
		switch {
		case va < vb-1e-9:
			return got == -1
		case va > vb+1e-9:
			return got == 1
		default:
			return true // too close to call either way; any answer defensible
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTopKUncertainMatchesExact: lazy selection returns exactly the
// top-k by exact throttled bid (with ID tie-breaks).
func TestQuickTopKUncertainMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(n)
		ts := make([]*Throttler, n)
		exact := make([]float64, n)
		for i := range ts {
			l := rng.Intn(6)
			ads := make([]OutstandingAd, l)
			for j := range ads {
				ads[j] = OutstandingAd{Price: 0.5 + rng.Float64()*4, CTR: rng.Float64()}
			}
			bid := rng.Float64() * 3
			budget := rng.Float64() * 12
			m := 1 + rng.Intn(3)
			ts[i] = MustThrottler(i, bid, budget, m, ads)
			exact[i] = ExactThrottledBid(bid, budget, m, ads)
		}
		res := TopKUncertain(k, ts)
		if len(res.Winners) != k {
			return false
		}
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		sort.SliceStable(ids, func(a, b int) bool {
			if exact[ids[a]] != exact[ids[b]] {
				return exact[ids[a]] > exact[ids[b]]
			}
			return ids[a] < ids[b]
		})
		for i, w := range res.Winners {
			// Allow swaps among near-equal values.
			if !almostEq(exact[ids[i]], exact[w.ID], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKUncertainEdgeCases(t *testing.T) {
	if res := TopKUncertain(3, nil); len(res.Winners) != 0 {
		t.Fatal("empty input should yield no winners")
	}
	a := MustThrottler(0, 1, 10, 1, nil)
	if res := TopKUncertain(0, []*Throttler{a}); len(res.Winners) != 0 {
		t.Fatal("k=0 should yield no winners")
	}
	if res := TopKUncertain(5, []*Throttler{a}); len(res.Winners) != 1 {
		t.Fatal("k > n should yield all")
	}
}

func TestLargestPriceFirstExpansionIsEffective(t *testing.T) {
	// One huge uncertain ad and many small ones: expanding the huge one
	// first should collapse most of the width in a single refinement.
	ads := []OutstandingAd{{Price: 50, CTR: 0.5}}
	for i := 0; i < 10; i++ {
		ads = append(ads, OutstandingAd{Price: 0.1, CTR: 0.5})
	}
	tr := MustThrottler(0, 3, 60, 1, ads)
	w0 := tr.Bounds().Width()
	tr.Refine() // expands the π=50 ad
	w1 := tr.Bounds().Width()
	if w1 > 0.5*w0 {
		t.Fatalf("width only %v -> %v after expanding the dominant ad", w0, w1)
	}
}

func TestDecayedCTR(t *testing.T) {
	cases := []struct {
		name                       string
		ctr0, age, halfLife, horiz float64
		want                       float64
	}{
		{"age zero", 0.4, 0, 10, 100, 0.4},
		{"one half-life", 0.4, 10, 10, 100, 0.2},
		{"at horizon", 0.4, 100, 10, 100, 0},
		{"beyond horizon", 0.4, 150, 10, 100, 0},
		{"negative age clamps to just-displayed", 0.4, -1, 10, 100, 0.4},
		{"zero ctr0", 0, 5, 10, 100, 0},
		{"negative ctr0", -0.2, 5, 10, 100, 0},
		{"negative ctr0 and negative age", -0.2, -5, 10, 100, 0},
		{"zero half-life (would be NaN at age 0)", 0.4, 0, 0, 100, 0},
		{"zero half-life, positive age", 0.4, 5, 0, 100, 0},
		{"negative half-life (would be +Inf)", 0.4, 5, -10, 100, 0},
		{"zero horizon", 0.4, 0, 10, 0, 0},
		{"negative horizon, negative age", 0.4, -5, 10, -1, 0},
	}
	for _, c := range cases {
		got := DecayedCTR(c.ctr0, c.age, c.halfLife, c.horiz)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s: DecayedCTR(%v, %v, %v, %v) = %v, want finite",
				c.name, c.ctr0, c.age, c.halfLife, c.horiz, got)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Fatalf("%s: DecayedCTR(%v, %v, %v, %v) = %v, want %v",
				c.name, c.ctr0, c.age, c.halfLife, c.horiz, got, c.want)
		}
	}
}

// TestThrottledBidDPNeverNegative is the regression for the saturation sign
// bug: one 0.9-CTR $1 ad against a $0.60 budget on a $1 grid saturates the
// DP at cell 1, and β − 1·unit = −0.4 used to leak through unclamped,
// yielding b̂ = −0.30 where enumeration gives +0.06.
func TestThrottledBidDPNeverNegative(t *testing.T) {
	ads := []OutstandingAd{{Price: 1, CTR: 0.9}}
	got := ExactThrottledBidDP(1.0, 0.6, 1, ads, 1.0)
	want := ExactThrottledBid(1.0, 0.6, 1, ads) // 0.1·0.6 + 0.9·0 = 0.06
	if got < 0 {
		t.Fatalf("DP throttled bid is negative: %v", got)
	}
	if !almostEq(want, 0.06, 1e-12) {
		t.Fatalf("enumeration sanity: %v, want 0.06", want)
	}
	// unit-multiple prices: DP error is below unit/(2m).
	if !almostEq(got, want, 1.0/2) {
		t.Fatalf("DP %v vs enumeration %v beyond grid resolution", got, want)
	}
}

// TestQuickDPMatchesEnumerationOffGridBudget cross-validates the DP against
// enumeration when the budget is deliberately NOT a unit multiple — the
// regime of the saturation clamp. With unit-multiple prices the documented
// error bound is unit/(2m); with arbitrary prices, (l+1)·unit/(2m). The DP
// must also never leave [0, bid].
func TestQuickDPMatchesEnumerationOffGridBudget(t *testing.T) {
	const unit = 0.05
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(8)
		onGridPrices := seed%2 == 0
		ads := make([]OutstandingAd, l)
		for i := range ads {
			var price float64
			if onGridPrices {
				price = unit * float64(1+rng.Intn(60))
			} else {
				price = 0.01 + rng.Float64()*3
			}
			ads[i] = OutstandingAd{Price: price, CTR: rng.Float64()}
		}
		bid := 0.1 + rng.Float64()*3
		m := 1 + rng.Intn(3)
		// An off-grid budget: a grid point plus a fraction strictly inside
		// (0, unit), so saturation truncation is exercised.
		budgetLeft := unit*float64(rng.Intn(40)) + unit*(0.1+0.8*rng.Float64())
		a := ExactThrottledBid(bid, budgetLeft, m, ads)
		b := ExactThrottledBidDP(bid, budgetLeft, m, ads, unit)
		if b < 0 || b > bid+1e-12 {
			t.Logf("seed %d: DP %v outside [0, %v]", seed, b, bid)
			return false
		}
		tol := unit / (2 * float64(m))
		if !onGridPrices {
			tol = float64(l+1) * unit / (2 * float64(m))
		}
		if !almostEq(a, b, tol+1e-9) {
			t.Logf("seed %d: enum %v vs DP %v beyond tolerance %v (l=%d m=%d onGrid=%v)",
				seed, a, b, tol, l, m, onGridPrices)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExactEnumeration(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ads := make([]OutstandingAd, 18)
	for i := range ads {
		ads[i] = OutstandingAd{Price: 0.5 + rng.Float64()*4, CTR: rng.Float64()}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExactThrottledBid(2, 20, 2, ads)
	}
}

func BenchmarkCompareHoeffding(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mkAds := func() []OutstandingAd {
		ads := make([]OutstandingAd, 18)
		for i := range ads {
			ads[i] = OutstandingAd{Price: 0.5 + rng.Float64()*4, CTR: rng.Float64()}
		}
		return ads
	}
	adsA, adsB := mkAds(), mkAds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := MustThrottler(0, 2.5, 30, 2, adsA)
		y := MustThrottler(1, 1.0, 15, 2, adsB)
		Compare(x, y)
	}
}
