package budget

import (
	"math"
	"sort"
)

// Distribution is a discrete probability distribution over outstanding-debt
// outcomes for one advertiser: each Outcome is a possible value of
// min(β, S) — the budget actually consumed by outstanding ads — with its
// probability. Outcomes are sorted ascending and probabilities sum to 1.
type Distribution struct {
	Outcomes []Outcome
	budget   float64
}

// Outcome is one (debt value, probability) pair.
type Outcome struct {
	Debt float64
	Prob float64
}

// DebtDistribution enumerates the exact distribution of min(β, S) over the
// 2^l click outcomes of the outstanding ads, merging equal debts. Use for
// small l (the engine's pricing path or reporting, not hot loops).
func DebtDistribution(budget float64, ads []OutstandingAd) Distribution {
	acc := map[float64]float64{}
	var rec func(j int, prob, sum float64)
	rec = func(j int, prob, sum float64) {
		if prob == 0 {
			return
		}
		if j == len(ads) {
			acc[math.Min(budget, sum)] += prob
			return
		}
		rec(j+1, prob*ads[j].CTR, sum+ads[j].Price)
		rec(j+1, prob*(1-ads[j].CTR), sum)
	}
	rec(0, 1, 0)
	d := Distribution{budget: budget, Outcomes: make([]Outcome, 0, len(acc))}
	for debt, prob := range acc {
		d.Outcomes = append(d.Outcomes, Outcome{Debt: debt, Prob: prob})
	}
	sort.Slice(d.Outcomes, func(i, j int) bool { return d.Outcomes[i].Debt < d.Outcomes[j].Debt })
	return d
}

// Mean returns E[min(β, S)].
func (d Distribution) Mean() float64 {
	m := 0.0
	for _, o := range d.Outcomes {
		m += o.Debt * o.Prob
	}
	return m
}

// ProbBroke returns the probability that outstanding debts consume the
// entire budget — the quantity a provider watches when deciding whether an
// advertiser should still be entered into auctions at all.
func (d Distribution) ProbBroke() float64 {
	p := 0.0
	for _, o := range d.Outcomes {
		if o.Debt >= d.budget-1e-12 {
			p += o.Prob
		}
	}
	return p
}

// Quantile returns the smallest debt value whose cumulative probability
// reaches q ∈ [0, 1].
func (d Distribution) Quantile(q float64) float64 {
	if len(d.Outcomes) == 0 {
		return 0
	}
	cum := 0.0
	for _, o := range d.Outcomes {
		cum += o.Prob
		if cum >= q-1e-12 {
			return o.Debt
		}
	}
	return d.Outcomes[len(d.Outcomes)-1].Debt
}

// ThrottledBid computes b̂ from the distribution — an alternative route to
// ExactThrottledBid used to cross-check the two implementations.
func (d Distribution) ThrottledBid(bid float64, auctions int) float64 {
	m := float64(auctions)
	total := 0.0
	for _, o := range d.Outcomes {
		total += o.Prob * math.Min(bid, (d.budget-o.Debt)/m)
	}
	return total
}
