package budget

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDebtDistributionByHand(t *testing.T) {
	// One ad, π=3, ctr=0.25, budget 10: debt 0 w.p. .75, 3 w.p. .25.
	d := DebtDistribution(10, []OutstandingAd{{Price: 3, CTR: 0.25}})
	if len(d.Outcomes) != 2 {
		t.Fatalf("outcomes = %v", d.Outcomes)
	}
	if d.Outcomes[0] != (Outcome{0, 0.75}) || d.Outcomes[1] != (Outcome{3, 0.25}) {
		t.Fatalf("outcomes = %v", d.Outcomes)
	}
	if !almostEq(d.Mean(), 0.75, 1e-12) {
		t.Fatalf("Mean = %v", d.Mean())
	}
	if d.ProbBroke() != 0 {
		t.Fatalf("ProbBroke = %v", d.ProbBroke())
	}
}

func TestDebtDistributionSaturation(t *testing.T) {
	// Two ads of π=4 against budget 5: S ∈ {0,4,8} but debt caps at 5.
	d := DebtDistribution(5, []OutstandingAd{{Price: 4, CTR: 0.5}, {Price: 4, CTR: 0.5}})
	if got := d.ProbBroke(); !almostEq(got, 0.25, 1e-12) {
		t.Fatalf("ProbBroke = %v, want 0.25 (both clicked)", got)
	}
	if q := d.Quantile(1.0); q != 5 {
		t.Fatalf("Quantile(1) = %v, want saturated 5", q)
	}
	if q := d.Quantile(0.2); q != 0 {
		t.Fatalf("Quantile(0.2) = %v, want 0", q)
	}
}

func TestDistributionEmpty(t *testing.T) {
	d := DebtDistribution(7, nil)
	if len(d.Outcomes) != 1 || d.Outcomes[0].Debt != 0 || d.Outcomes[0].Prob != 1 {
		t.Fatalf("empty ads: %v", d.Outcomes)
	}
	if Distribution.Quantile(Distribution{}, 0.5) != 0 {
		t.Fatal("empty distribution quantile should be 0")
	}
}

// TestQuickDistributionConsistent: probabilities sum to 1, the
// distribution-based throttled bid matches ExactThrottledBid, and the mean
// matches min(β,S)'s expectation computed directly.
func TestQuickDistributionConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := rng.Intn(9)
		ads := make([]OutstandingAd, l)
		for i := range ads {
			ads[i] = OutstandingAd{Price: 0.5 + rng.Float64()*4, CTR: rng.Float64()}
		}
		budget := rng.Float64() * 12
		d := DebtDistribution(budget, ads)
		sum := 0.0
		prev := math.Inf(-1)
		for _, o := range d.Outcomes {
			if o.Debt <= prev {
				return false // must be strictly ascending (merged)
			}
			prev = o.Debt
			sum += o.Prob
		}
		if !almostEq(sum, 1, 1e-9) {
			return false
		}
		bid := rng.Float64() * 3
		m := 1 + rng.Intn(3)
		return almostEq(d.ThrottledBid(bid, m), ExactThrottledBid(bid, budget, m, ads), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
