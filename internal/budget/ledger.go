package budget

import (
	"math"
	"sync/atomic"
)

// Ledger is the central cross-shard budget authority for sharded serving.
// When auctions for the same advertiser run on different engine shards,
// each shard charges clicks against this shared ledger instead of its
// private spend table, so Section IV's invariant — an advertiser never pays
// more than its stated budget β — holds globally and exactly, not just
// per shard.
//
// Every charge is a single combined reserve-and-settle: TryCharge
// atomically checks the remaining budget and deducts the price in one
// compare-and-swap on the float64 bit pattern, so two shards racing to
// charge the last dollar can never both win. There are no locks and no
// per-round barriers; a charge is one CAS in the common case.
//
// Thread safety: all methods are safe for concurrent use by any number of
// goroutines.
type Ledger struct {
	// remaining[i] and spent[i] hold math.Float64bits of the advertiser's
	// remaining budget and cumulative settled spend.
	remaining []atomic.Uint64
	spent     []atomic.Uint64
}

// NewLedger creates a ledger with the given initial budgets, indexed by
// advertiser ID. Negative budgets are treated as zero.
func NewLedger(budgets []float64) *Ledger {
	l := &Ledger{
		remaining: make([]atomic.Uint64, len(budgets)),
		spent:     make([]atomic.Uint64, len(budgets)),
	}
	for i, b := range budgets {
		if b < 0 {
			b = 0
		}
		l.remaining[i].Store(math.Float64bits(b))
	}
	return l
}

// N returns the number of advertisers the ledger tracks.
func (l *Ledger) N() int { return len(l.remaining) }

// Remaining returns advertiser i's current remaining budget.
func (l *Ledger) Remaining(i int) float64 {
	return math.Float64frombits(l.remaining[i].Load())
}

// Spent returns advertiser i's cumulative settled spend.
func (l *Ledger) Spent(i int) float64 {
	return math.Float64frombits(l.spent[i].Load())
}

// TotalSpent returns the sum of settled spend across all advertisers.
func (l *Ledger) TotalSpent() float64 {
	total := 0.0
	for i := range l.spent {
		total += math.Float64frombits(l.spent[i].Load())
	}
	return total
}

// TryCharge atomically reserves and settles price against advertiser i's
// remaining budget. It returns true and deducts the price when the budget
// covers it (within the same 1e-9 accounting epsilon the single-engine path
// uses), and false — charging nothing — otherwise. The check and the
// deduction are one atomic step: concurrent charges from different shards
// serialize through the CAS, so cumulative spend can never exceed the
// initial budget (plus deposits) by more than the epsilon.
func (l *Ledger) TryCharge(i int, price float64) bool {
	if price <= 0 {
		return price == 0
	}
	for {
		oldBits := l.remaining[i].Load()
		old := math.Float64frombits(oldBits)
		if price > old+1e-9 {
			return false
		}
		neu := old - price
		if neu < 0 {
			neu = 0
		}
		if l.remaining[i].CompareAndSwap(oldBits, math.Float64bits(neu)) {
			l.atomicAdd(&l.spent[i], price)
			return true
		}
	}
}

// Deposit atomically raises advertiser i's remaining budget by amount
// (mid-run budget top-ups). Negative or zero amounts are ignored.
func (l *Ledger) Deposit(i int, amount float64) {
	if amount <= 0 {
		return
	}
	l.atomicAdd(&l.remaining[i], amount)
}

func (*Ledger) atomicAdd(a *atomic.Uint64, x float64) {
	for {
		oldBits := a.Load()
		neu := math.Float64frombits(oldBits) + x
		if a.CompareAndSwap(oldBits, math.Float64bits(neu)) {
			return
		}
	}
}
