package budget

import (
	"math"
	"sync"
	"testing"
)

func TestLedgerBasics(t *testing.T) {
	l := NewLedger([]float64{10, 0, -5})
	if l.N() != 3 {
		t.Fatalf("N = %d", l.N())
	}
	if l.Remaining(0) != 10 || l.Remaining(1) != 0 || l.Remaining(2) != 0 {
		t.Fatalf("remaining = %v %v %v", l.Remaining(0), l.Remaining(1), l.Remaining(2))
	}
	if !l.TryCharge(0, 4) {
		t.Fatal("charge within budget refused")
	}
	if got := l.Remaining(0); math.Abs(got-6) > 1e-12 {
		t.Fatalf("Remaining = %v, want 6", got)
	}
	if got := l.Spent(0); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Spent = %v, want 4", got)
	}
	if l.TryCharge(0, 6.001) {
		t.Fatal("overdraft accepted")
	}
	if !l.TryCharge(0, 6) {
		t.Fatal("exact-remaining charge refused")
	}
	if l.Remaining(0) != 0 {
		t.Fatalf("Remaining = %v, want 0", l.Remaining(0))
	}
	if l.TryCharge(1, 0.01) {
		t.Fatal("charge against zero budget accepted")
	}
	// Zero-price charges succeed without moving anything; negative fail.
	if !l.TryCharge(1, 0) || l.TryCharge(1, -1) {
		t.Fatal("zero/negative price handling wrong")
	}
	if got := l.TotalSpent(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("TotalSpent = %v, want 10", got)
	}
}

func TestLedgerEpsilonMatchesEngine(t *testing.T) {
	// The single-engine path accepts a click when spent+price ≤ budget+1e-9;
	// the ledger must accept the same boundary cases.
	l := NewLedger([]float64{1})
	if !l.TryCharge(0, 1+0.5e-9) {
		t.Fatal("charge inside the accounting epsilon refused")
	}
	if l.Remaining(0) != 0 {
		t.Fatalf("Remaining = %v, want clamped 0", l.Remaining(0))
	}
}

func TestLedgerDeposit(t *testing.T) {
	l := NewLedger([]float64{1})
	if l.TryCharge(0, 5) {
		t.Fatal("charge beyond budget accepted")
	}
	l.Deposit(0, 4)
	l.Deposit(0, -3) // ignored
	if !l.TryCharge(0, 5) {
		t.Fatal("charge after deposit refused")
	}
	if got := l.Spent(0); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Spent = %v, want 5", got)
	}
}

// TestLedgerConcurrentExactness races many goroutines charging one
// advertiser and checks the Section IV invariant: total settled spend never
// exceeds the budget, and every successful charge is accounted for.
func TestLedgerConcurrentExactness(t *testing.T) {
	const (
		workers = 16
		charges = 2000
		price   = 1.0
		budget  = workers * charges / 4 // only a quarter of attempts can win
	)
	l := NewLedger([]float64{budget})
	var wg sync.WaitGroup
	var won [workers]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < charges; k++ {
				if l.TryCharge(0, price) {
					won[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range won {
		total += n
	}
	if total != budget {
		t.Fatalf("successful charges = %d, want exactly %d", total, budget)
	}
	if got := l.Spent(0); math.Abs(got-budget) > 1e-6 {
		t.Fatalf("Spent = %v, want %v", got, float64(budget))
	}
	if got := l.Remaining(0); got != 0 {
		t.Fatalf("Remaining = %v, want 0", got)
	}
}
