package budget

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"sharedwd/internal/stats"
	"sharedwd/internal/workload"
)

// Authority is the budget state the pacing controller reads and refreshes:
// remaining budget, cumulative settled spend, and mid-run deposits.
// *Ledger implements it; implementations must be safe for concurrent use
// (the pacer is shared across engine shards, like the ledger itself).
type Authority interface {
	Remaining(advertiser int) float64
	Spent(advertiser int) float64
	Deposit(advertiser int, amount float64)
}

var _ Authority = (*Ledger)(nil)

// PacerConfig parameterizes the online pacing controller.
type PacerConfig struct {
	// Horizon is the number of rounds a budget epoch should last: the
	// target spend curve is budget·min(1, elapsed/Horizon).
	Horizon int
	// Gain is the controller's feedback gain: each round the pacing factor
	// is multiplied by exp(−Gain·err/perRound), where err is realized minus
	// target spend and perRound the ideal per-round spend. Larger gains
	// converge faster but oscillate harder.
	Gain float64
	// MaxStep bounds the per-round |log-factor| change, so a transient
	// spend spike cannot slam the factor to its floor in one round.
	MaxStep float64
	// MinFactor is the pacing-factor floor for active advertisers with
	// budget remaining, keeping everyone probing the market so the
	// controller can observe a spend rate to correct against.
	MinFactor float64
}

// DefaultPacerConfig returns a controller tuning that converges within a
// few dozen rounds on the synthetic workloads without visible oscillation.
func DefaultPacerConfig() PacerConfig {
	return PacerConfig{Horizon: 1000, Gain: 0.08, MaxStep: 0.35, MinFactor: 0.02}
}

// Validate reports whether the pacing configuration is usable.
func (c PacerConfig) Validate() error {
	if c.Horizon < 1 {
		return fmt.Errorf("budget: non-positive pacing horizon %d", c.Horizon)
	}
	if c.Gain <= 0 {
		return fmt.Errorf("budget: non-positive pacing gain %v", c.Gain)
	}
	if c.MaxStep <= 0 {
		return fmt.Errorf("budget: non-positive pacing max step %v", c.MaxStep)
	}
	if c.MinFactor <= 0 || c.MinFactor > 1 {
		return fmt.Errorf("budget: pacing factor floor %v outside (0,1]", c.MinFactor)
	}
	return nil
}

// Pacer is the per-advertiser online pacing controller (ROADMAP's
// multi-round budget pacing): a multiplicative feedback loop that adapts
// each advertiser's throttle factor — a multiplier in (0,1] applied to the
// stated bid before the Section IV throttled-bid machinery — so realized
// spend tracks the linear target curve budget·min(1, elapsed/Horizon)
// instead of front-loading. Spend is observed from the shared Authority
// (the fleet's budget.Ledger settlements), so pacing reacts to what clicks
// actually charged, never to modeled estimates alone.
//
// One Pacer is shared by every engine of a fleet, exactly like the Ledger:
// each shard calls SyncRound at its round boundary, the first caller for a
// round advances the controller once from settled spend, and later callers
// (and every bid computation) read the published factors lock-free. Factors
// for round t are therefore a pure function of the schedule and spend
// settled through round t−1 — which is why a sharded and a single-engine
// run over the same deterministic workload pace identically.
//
// The Pacer also owns the lifecycle schedule's budget-refresh epochs:
// applying a refresh means one Deposit on the shared authority, so it must
// happen exactly once per fleet — the round-gated SyncRound gives that for
// free. Join/leave events reset or zero the joining advertiser's controller
// state; engines consume the same schedule independently for participation.
//
// Thread safety: SyncRound, Factor, Round, and Metrics are safe for
// concurrent use by any number of goroutines.
type Pacer struct {
	cfg       PacerConfig
	auth      Authority
	lifecycle *workload.Lifecycle
	budgets   []float64 // initial budgets (the 0-refresh level)

	// synced is the last round the controller stepped, for the lock-free
	// fast path; factorBits[i] is the published math.Float64bits factor.
	synced     atomic.Int64
	factorBits []atomic.Uint64

	mu     sync.Mutex
	cursor int // lifecycle consumption cursor
	active []bool
	// Per-advertiser epoch state: the round the current budget epoch
	// started, settled spend at that point, and the budget to pace over it.
	epochStart  []int
	baseSpend   []float64
	epochBudget []float64
	factor      []float64 // working copy of the published factors

	rounds, epochs int64
	lastTarget     float64 // Σ target spend at the last sync
	lastActual     float64 // Σ realized epoch spend at the last sync
	throttled      int     // advertisers with factor < 1 at the last sync
	absErr         stats.Summary
}

// NewPacer builds a controller over the authority's budget state. budgets
// are the initial (refresh-level-0) budgets, indexed by advertiser ID; the
// lifecycle schedule is optional (nil means every advertiser active, no
// refresh epochs) but must cover the same universe when present.
func NewPacer(auth Authority, budgets []float64, cfg PacerConfig, lc *workload.Lifecycle) (*Pacer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if auth == nil {
		return nil, fmt.Errorf("budget: pacer needs a budget authority")
	}
	if lc != nil && lc.NumAdvertisers() != len(budgets) {
		return nil, fmt.Errorf("budget: lifecycle over %d advertisers, pacer over %d", lc.NumAdvertisers(), len(budgets))
	}
	n := len(budgets)
	p := &Pacer{
		cfg:         cfg,
		auth:        auth,
		lifecycle:   lc,
		budgets:     append([]float64(nil), budgets...),
		factorBits:  make([]atomic.Uint64, n),
		active:      make([]bool, n),
		epochStart:  make([]int, n),
		baseSpend:   make([]float64, n),
		epochBudget: make([]float64, n),
		factor:      make([]float64, n),
	}
	p.synced.Store(-1)
	for i := 0; i < n; i++ {
		p.active[i] = lc == nil || lc.InitiallyActive(i)
		p.baseSpend[i] = auth.Spent(i)
		p.epochBudget[i] = auth.Remaining(i)
		if p.active[i] {
			p.factor[i] = 1
		}
		p.factorBits[i].Store(math.Float64bits(p.factor[i]))
	}
	return p, nil
}

// N returns the number of advertisers the pacer controls.
func (p *Pacer) N() int { return len(p.factor) }

// Round returns the last round the controller stepped (−1 before any sync).
func (p *Pacer) Round() int { return int(p.synced.Load()) }

// Factor returns advertiser i's current pacing factor in [0, 1]: the
// multiplier engines apply to the stated bid this round. 0 means the
// advertiser is inactive (left, or campaign not started). Lock-free.
func (p *Pacer) Factor(i int) float64 {
	return math.Float64frombits(p.factorBits[i].Load())
}

// SyncRound advances the controller to the given round. It is idempotent
// per round and shared-safe: the first caller for a round applies pending
// lifecycle events (joins, leaves, budget-refresh deposits) and recomputes
// every factor from spend settled so far; callers for already-synced rounds
// return immediately on an atomic fast path. Engines call it at the top of
// Step, before charging the round's clicks, so factors are a function of
// spend through the previous round. Steady-state syncs allocate nothing.
func (p *Pacer) SyncRound(round int) {
	if int64(round) <= p.synced.Load() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if int64(round) <= p.synced.Load() {
		return
	}
	if p.lifecycle != nil {
		p.cursor = p.lifecycle.Apply(p.cursor, round, p.applyEvent)
	}
	p.step(round)
	p.rounds++
	p.synced.Store(int64(round))
}

// applyEvent folds one lifecycle event into the controller state. Called
// with mu held, from SyncRound's cursor walk.
func (p *Pacer) applyEvent(ev workload.LifecycleEvent) {
	i := ev.Advertiser
	switch ev.Kind {
	case workload.LifecycleJoin:
		if p.active[i] {
			return
		}
		p.active[i] = true
		p.epochStart[i] = ev.Round
		p.baseSpend[i] = p.auth.Spent(i)
		p.epochBudget[i] = p.auth.Remaining(i)
		p.factor[i] = 1
	case workload.LifecycleLeave:
		p.active[i] = false
		p.factor[i] = 0
	case workload.LifecycleRefresh:
		want := ev.Budget
		if want <= 0 {
			want = p.budgets[i]
		}
		if cur := p.auth.Remaining(i); want > cur {
			p.auth.Deposit(i, want-cur)
		}
		p.epochStart[i] = ev.Round
		p.baseSpend[i] = p.auth.Spent(i)
		p.epochBudget[i] = p.auth.Remaining(i)
		if p.active[i] {
			p.factor[i] = 1
		}
		p.epochs++
	}
}

// step runs one controller update at the given round: for every active
// advertiser, compare settled epoch spend against the target curve and
// nudge the factor multiplicatively toward it. Called with mu held.
func (p *Pacer) step(round int) {
	var targetSum, actualSum, absErrSum float64
	activeN, throttled := 0, 0
	for i := range p.factor {
		if !p.active[i] {
			p.factorBits[i].Store(math.Float64bits(0))
			continue
		}
		activeN++
		elapsed := float64(round - p.epochStart[i])
		frac := elapsed / float64(p.cfg.Horizon)
		if frac > 1 {
			frac = 1
		}
		target := p.epochBudget[i] * frac
		actual := p.auth.Spent(i) - p.baseSpend[i]
		err := actual - target
		perRound := p.epochBudget[i] / float64(p.cfg.Horizon)
		if perRound < 1e-12 {
			perRound = 1e-12
		}
		adj := -p.cfg.Gain * err / perRound
		if adj > p.cfg.MaxStep {
			adj = p.cfg.MaxStep
		} else if adj < -p.cfg.MaxStep {
			adj = -p.cfg.MaxStep
		}
		f := p.factor[i] * math.Exp(adj)
		if f < p.cfg.MinFactor {
			f = p.cfg.MinFactor
		} else if f > 1 {
			f = 1
		}
		p.factor[i] = f
		p.factorBits[i].Store(math.Float64bits(f))
		targetSum += target
		actualSum += actual
		if err > 0 {
			absErrSum += err
		} else {
			absErrSum -= err
		}
		if f < 1 {
			throttled++
		}
	}
	p.lastTarget, p.lastActual, p.throttled = targetSum, actualSum, throttled
	if activeN > 0 {
		p.absErr.Add(absErrSum / float64(activeN))
	}
}

// PacingMetrics is the pacing observability snapshot carried in
// server.Metrics. The snake_case JSON tags are part of the stable wire
// schema; stats.Summary's custom codec keeps the error distribution exact
// across a marshal/unmarshal round trip, and Merge aggregates snapshots
// from independent fleets (within one fleet the single shared pacer is
// attached once by the front end, never summed across shards).
type PacingMetrics struct {
	// Enabled reports whether a pacing controller is attached.
	Enabled bool `json:"enabled"`
	// Advertisers is the controlled universe size; Active the advertisers
	// currently active (joined, not left) at the last sync.
	Advertisers int `json:"advertisers"`
	Active      int `json:"active"`
	// Rounds counts controller steps; Epochs counts budget-refresh events
	// applied.
	Rounds int64 `json:"rounds"`
	Epochs int64 `json:"epochs"`
	// TargetSpend and ActualSpend are the fleet sums of the per-advertiser
	// target-curve value and realized epoch spend at the last sync — the
	// two ends of the feedback loop; their gap is the current pacing error.
	TargetSpend float64 `json:"target_spend"`
	ActualSpend float64 `json:"actual_spend"`
	// FactorSum is the sum of active advertisers' pacing factors at the
	// last sync (mean = FactorSum/Active); Throttled counts factors < 1.
	FactorSum float64 `json:"factor_sum"`
	Throttled int     `json:"throttled"`
	// AbsError is the distribution over controller steps of the mean
	// per-advertiser |realized − target| spend.
	AbsError stats.Summary `json:"abs_error"`
}

// Merge returns the field-wise aggregate of two pacing snapshots.
func (pm PacingMetrics) Merge(o PacingMetrics) PacingMetrics {
	out := pm
	out.Enabled = pm.Enabled || o.Enabled
	out.Advertisers += o.Advertisers
	out.Active += o.Active
	out.Rounds += o.Rounds
	out.Epochs += o.Epochs
	out.TargetSpend += o.TargetSpend
	out.ActualSpend += o.ActualSpend
	out.FactorSum += o.FactorSum
	out.Throttled += o.Throttled
	out.AbsError.Merge(o.AbsError)
	return out
}

// Metrics returns the controller's current observability snapshot.
func (p *Pacer) Metrics() PacingMetrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := PacingMetrics{
		Enabled:     true,
		Advertisers: len(p.factor),
		Rounds:      p.rounds,
		Epochs:      p.epochs,
		TargetSpend: p.lastTarget,
		ActualSpend: p.lastActual,
		Throttled:   p.throttled,
		AbsError:    p.absErr,
	}
	for i, a := range p.active {
		if a {
			m.Active++
			m.FactorSum += p.factor[i]
		}
	}
	return m
}
