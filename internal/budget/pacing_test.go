package budget

import (
	"math"
	"sync"
	"testing"

	"sharedwd/internal/workload"
)

func TestPacerConfigValidate(t *testing.T) {
	if err := DefaultPacerConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []PacerConfig{
		{Horizon: 0, Gain: 0.1, MaxStep: 0.3, MinFactor: 0.1},
		{Horizon: 100, Gain: -1, MaxStep: 0.3, MinFactor: 0.1},
		{Horizon: 100, Gain: 0.1, MaxStep: 0, MinFactor: 0.1},
		{Horizon: 100, Gain: 0.1, MaxStep: 0.3, MinFactor: -0.1},
		{Horizon: 100, Gain: 0.1, MaxStep: 0.3, MinFactor: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated", i, cfg)
		}
	}
}

func TestNewPacerValidation(t *testing.T) {
	ledger := NewLedger([]float64{10, 10})
	if _, err := NewPacer(nil, []float64{10, 10}, DefaultPacerConfig(), nil); err == nil {
		t.Fatal("nil authority accepted")
	}
	if _, err := NewPacer(ledger, []float64{10, 10}, PacerConfig{}, nil); err == nil {
		t.Fatal("zero config accepted")
	}
	lc, err := workload.NewLifecycle(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPacer(ledger, []float64{10, 10}, DefaultPacerConfig(), lc); err == nil {
		t.Fatal("mismatched lifecycle universe accepted")
	}
}

// pacedSim drives the controller against a synthetic spend process where
// realized spend responds linearly to the published factor — each round,
// advertiser i spends rate_i x Factor(i), budget permitting. It is the
// feedback loop the controller faces in the engines, minus the auction.
type pacedSim struct {
	t      *testing.T
	ledger *Ledger
	pacer  *Pacer
	rates  []float64
}

func newPacedSim(t *testing.T, budgets, rates []float64, cfg PacerConfig, lc *workload.Lifecycle) *pacedSim {
	t.Helper()
	ledger := NewLedger(budgets)
	pacer, err := NewPacer(ledger, budgets, cfg, lc)
	if err != nil {
		t.Fatal(err)
	}
	return &pacedSim{t: t, ledger: ledger, pacer: pacer, rates: rates}
}

// round syncs the controller and settles one round of factor-scaled spend.
func (s *pacedSim) round(r int) {
	s.pacer.SyncRound(r)
	for i, rate := range s.rates {
		want := rate * s.pacer.Factor(i)
		if want <= 0 {
			continue
		}
		if remaining := s.ledger.Remaining(i); want > remaining {
			want = remaining
		}
		if want > 0 {
			s.ledger.TryCharge(i, want)
		}
	}
}

// TestPacerConvergesToTargetCurve: an advertiser whose natural spend rate
// is 5x its target curve must be throttled onto the curve — the budget
// lasts the horizon (>= 90% spent at the end, not exhausted before 80% of
// it) instead of exhausting front-loaded at ~20%.
func TestPacerConvergesToTargetCurve(t *testing.T) {
	const (
		horizon = 400
		budget  = 100.0
		rate    = 5 * budget / horizon // 5x the per-round target
	)
	cfg := DefaultPacerConfig()
	cfg.Horizon = horizon
	s := newPacedSim(t, []float64{budget}, []float64{rate}, cfg, nil)

	exhaustedAt := -1
	for r := 0; r < horizon; r++ {
		s.round(r)
		if exhaustedAt < 0 && s.ledger.Remaining(0) <= 1e-9 {
			exhaustedAt = r
		}
		// The spend curve must never run far ahead of the target curve:
		// allow slack for the controller's settling transient.
		target := budget * float64(r+1) / horizon
		if spent := s.ledger.Spent(0); spent > target+0.15*budget {
			t.Fatalf("round %d: spent %v, target %v — front-loaded", r, spent, target)
		}
	}
	spent := s.ledger.Spent(0)
	if spent < 0.9*budget {
		t.Fatalf("spent %v of %v by the horizon, want >= 90%%", spent, budget)
	}
	if exhaustedAt >= 0 && exhaustedAt < int(0.8*horizon) {
		t.Fatalf("budget exhausted at round %d, before 80%% of the %d-round horizon", exhaustedAt, horizon)
	}
	m := s.pacer.Metrics()
	if !m.Enabled || m.Rounds != horizon || m.Throttled != 1 {
		t.Fatalf("metrics %+v: want enabled, %d rounds, 1 throttled", m, horizon)
	}
	if f := s.pacer.Factor(0); f >= 1 || f < cfg.MinFactor {
		t.Fatalf("terminal factor %v outside [%v, 1)", f, cfg.MinFactor)
	}
}

// TestPacerUnderspenderStaysOpen: an advertiser whose natural rate cannot
// reach the target curve must never be throttled — the factor stays at 1.
func TestPacerUnderspenderStaysOpen(t *testing.T) {
	cfg := DefaultPacerConfig()
	cfg.Horizon = 200
	s := newPacedSim(t, []float64{1000}, []float64{1}, cfg, nil) // target 5/round, rate 1
	for r := 0; r < 200; r++ {
		s.round(r)
		if f := s.pacer.Factor(0); f != 1 {
			t.Fatalf("round %d: underspender throttled to %v", r, f)
		}
	}
	if m := s.pacer.Metrics(); m.Throttled != 0 {
		t.Fatalf("metrics report %d throttled", m.Throttled)
	}
}

// TestPacerRefreshEpoch: a budget-refresh event deposits the top-up into
// the authority exactly once, restarts the target curve, and resets the
// advertiser's factor to 1.
func TestPacerRefreshEpoch(t *testing.T) {
	const (
		horizon = 100
		budget  = 50.0
	)
	lc, err := workload.NewLifecycle(1, []workload.LifecycleEvent{
		{Round: horizon, Kind: workload.LifecycleRefresh, Advertiser: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPacerConfig()
	cfg.Horizon = horizon
	s := newPacedSim(t, []float64{budget}, []float64{5 * budget / horizon}, cfg, lc)

	for r := 0; r < horizon; r++ {
		s.round(r)
	}
	preSpent := s.ledger.Spent(0)
	preFactor := s.pacer.Factor(0)
	if preFactor >= 1 {
		t.Fatalf("factor %v not throttled before the refresh", preFactor)
	}

	s.pacer.SyncRound(horizon) // refresh applies at the top of this sync
	if got := s.ledger.Spent(0); got < preSpent {
		t.Fatalf("spent went backwards: %v -> %v", preSpent, got)
	}
	// The deposit restored remaining to the initial budget; round
	// `horizon`'s own spend has not been charged yet.
	if rem := s.ledger.Remaining(0); math.Abs(rem-budget) > 1e-9 {
		t.Fatalf("remaining %v after refresh, want %v", rem, budget)
	}
	m := s.pacer.Metrics()
	if m.Epochs != 1 {
		t.Fatalf("epochs = %d, want 1", m.Epochs)
	}
	// The refresh reset the factor to 1; the same sync's controller step
	// sees a zero-length epoch (target = actual = 0) and leaves it there.
	if f := s.pacer.Factor(0); f != 1 {
		t.Fatalf("factor %v after refresh, want 1 (was %v)", f, preFactor)
	}

	for i, rate := range s.rates { // settle round `horizon` itself
		s.ledger.TryCharge(i, rate*s.pacer.Factor(i))
	}
	for r := horizon + 1; r < 2*horizon; r++ {
		s.round(r)
	}
	// Two fully-paced epochs: total spend exceeds one epoch's budget and
	// stays within both.
	spent := s.ledger.Spent(0)
	if spent <= 1.5*budget || spent > 2*budget+1e-9 {
		t.Fatalf("spent %v over two epochs of %v", spent, budget)
	}
}

// TestPacerJoinLeave: an advertiser joining mid-horizon has factor 0 (does
// not bid) before its join and a live factor after; leaving zeroes it
// again. The Active metric tracks the transitions.
func TestPacerJoinLeave(t *testing.T) {
	lc, err := workload.NewLifecycle(2, []workload.LifecycleEvent{
		{Round: 30, Kind: workload.LifecycleJoin, Advertiser: 1},
		{Round: 60, Kind: workload.LifecycleLeave, Advertiser: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPacerConfig()
	cfg.Horizon = 100
	budgets := []float64{100, 100}
	s := newPacedSim(t, budgets, []float64{1, 1}, cfg, lc)

	s.round(0)
	if s.pacer.Factor(1) != 0 {
		t.Fatalf("factor %v before join, want 0", s.pacer.Factor(1))
	}
	if m := s.pacer.Metrics(); m.Active != 1 {
		t.Fatalf("active = %d before join, want 1", m.Active)
	}
	for r := 1; r < 30; r++ {
		s.round(r)
	}
	if s.ledger.Spent(1) != 0 {
		t.Fatalf("inactive advertiser spent %v", s.ledger.Spent(1))
	}
	s.round(30)
	if s.pacer.Factor(1) <= 0 {
		t.Fatalf("factor %v after join, want > 0", s.pacer.Factor(1))
	}
	if m := s.pacer.Metrics(); m.Active != 2 {
		t.Fatalf("active = %d after join, want 2", m.Active)
	}
	for r := 31; r < 60; r++ {
		s.round(r)
	}
	joined := s.ledger.Spent(1)
	if joined <= 0 {
		t.Fatal("joined advertiser never spent")
	}
	s.round(60)
	if s.pacer.Factor(1) != 0 {
		t.Fatalf("factor %v after leave, want 0", s.pacer.Factor(1))
	}
	for r := 61; r < 100; r++ {
		s.round(r)
	}
	if got := s.ledger.Spent(1); got != joined {
		t.Fatalf("left advertiser kept spending: %v -> %v", joined, got)
	}
	if m := s.pacer.Metrics(); m.Active != 1 {
		t.Fatalf("active = %d after leave, want 1", m.Active)
	}
}

// TestPacerSyncRoundIdempotent: concurrent engines (shards) racing to sync
// the same round must apply the controller step exactly once per round —
// the property the fleet's shared controller relies on. Run under -race.
func TestPacerSyncRoundIdempotent(t *testing.T) {
	const (
		shards  = 8
		rounds  = 200
		horizon = 400
	)
	budgets := []float64{100, 100, 100}
	ledger := NewLedger(budgets)
	cfg := DefaultPacerConfig()
	cfg.Horizon = horizon
	pacer, err := NewPacer(ledger, budgets, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for g := 0; g < shards; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pacer.SyncRound(r)
				for i := range budgets {
					_ = pacer.Factor(i)
				}
			}()
		}
		wg.Wait()
		for i := range budgets {
			ledger.TryCharge(i, 0.1)
		}
	}
	if m := pacer.Metrics(); m.Rounds != rounds {
		t.Fatalf("controller stepped %d times over %d rounds", m.Rounds, rounds)
	}
	if got := pacer.Round(); got != rounds-1 {
		t.Fatalf("synced round %d, want %d", got, rounds-1)
	}
}

// TestPacingMetricsMerge: field-wise aggregation across fleets.
func TestPacingMetricsMerge(t *testing.T) {
	a := PacingMetrics{Enabled: true, Advertisers: 2, Active: 1, Rounds: 10, Epochs: 1,
		TargetSpend: 5, ActualSpend: 4, FactorSum: 0.5, Throttled: 1}
	b := PacingMetrics{Advertisers: 3, Active: 3, Rounds: 7, TargetSpend: 1, ActualSpend: 2, FactorSum: 3}
	got := a.Merge(b)
	if !got.Enabled || got.Advertisers != 5 || got.Active != 4 || got.Rounds != 17 ||
		got.Epochs != 1 || got.TargetSpend != 6 || got.ActualSpend != 6 ||
		got.FactorSum != 3.5 || got.Throttled != 1 {
		t.Fatalf("merge = %+v", got)
	}
}
