package budget

// Scheduler selects which of two overlapping throttled-bid intervals to
// refine next during a comparison. The paper's conclusion leaves "how to
// schedule the refinement of these bounds" as future work; this file makes
// the policy pluggable and the benchmark harness compares the options.
type Scheduler int

// The available refinement schedulers.
const (
	// WidestFirst refines the throttler with the wider interval — greatest
	// expected tightening per step. The default.
	WidestFirst Scheduler = iota
	// RoundRobin alternates sides regardless of widths.
	RoundRobin
	// CheapestFirst refines the throttler at the lower expansion level,
	// whose next step costs the least (cost doubles per level).
	CheapestFirst
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case WidestFirst:
		return "widest-first"
	case RoundRobin:
		return "round-robin"
	case CheapestFirst:
		return "cheapest-first"
	default:
		return "unknown"
	}
}

// CompareWith orders two throttled bids like Compare, but refining under
// the given scheduler. All schedulers produce the same answer (bounds
// always contain the exact value); they differ only in work performed.
func CompareWith(a, b *Throttler, sched Scheduler) (int, CompareStats) {
	var st CompareStats
	turn := 0
	for {
		ab, bb := a.Bounds(), b.Bounds()
		switch {
		case ab.Below(bb):
			return -1, st
		case bb.Below(ab):
			return 1, st
		}
		var target *Throttler
		switch {
		case a.IsExact() && b.IsExact():
			switch {
			case ab.Lo < bb.Lo:
				return -1, st
			case ab.Lo > bb.Lo:
				return 1, st
			default:
				return 0, st
			}
		case a.IsExact():
			target = b
		case b.IsExact():
			target = a
		default:
			switch sched {
			case WidestFirst:
				if ab.Width() >= bb.Width() {
					target = a
				} else {
					target = b
				}
			case RoundRobin:
				if turn%2 == 0 {
					target = a
				} else {
					target = b
				}
			case CheapestFirst:
				if a.Level() <= b.Level() {
					target = a
				} else {
					target = b
				}
			default:
				target = a
			}
		}
		turn++
		if target.Level() >= refineCutoff {
			target.Exact()
		} else {
			target.Refine()
		}
		st.Refinements++
	}
}
