package budget

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSchedulerString(t *testing.T) {
	for s, want := range map[Scheduler]string{
		WidestFirst: "widest-first", RoundRobin: "round-robin", CheapestFirst: "cheapest-first",
	} {
		if s.String() != want {
			t.Fatalf("String = %q, want %q", s.String(), want)
		}
	}
	if Scheduler(99).String() != "unknown" {
		t.Fatal("unknown scheduler name")
	}
}

// TestQuickAllSchedulersAgree: every scheduler resolves comparisons to the
// same answer as exact evaluation — they differ only in work.
func TestQuickAllSchedulersAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(id int) (*Throttler, *Throttler, *Throttler, float64) {
			l := rng.Intn(7)
			ads := make([]OutstandingAd, l)
			for i := range ads {
				ads[i] = OutstandingAd{Price: 0.5 + rng.Float64()*4, CTR: rng.Float64()}
			}
			bid := rng.Float64() * 3
			budget := rng.Float64() * 12
			m := 1 + rng.Intn(3)
			// Fresh throttler per scheduler so refinement state is equal.
			t1 := MustThrottler(id, bid, budget, m, ads)
			t2 := MustThrottler(id, bid, budget, m, ads)
			t3 := MustThrottler(id, bid, budget, m, ads)
			return t1, t2, t3, ExactThrottledBid(bid, budget, m, ads)
		}
		a1, a2, a3, va := mk(0)
		b1, b2, b3, vb := mk(1)
		r1, _ := CompareWith(a1, b1, WidestFirst)
		r2, _ := CompareWith(a2, b2, RoundRobin)
		r3, _ := CompareWith(a3, b3, CheapestFirst)
		switch {
		case va < vb-1e-9:
			return r1 == -1 && r2 == -1 && r3 == -1
		case va > vb+1e-9:
			return r1 == 1 && r2 == 1 && r3 == 1
		default:
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCompareIsWidestFirst: the default Compare matches CompareWith under
// WidestFirst on identical fresh state.
func TestCompareIsWidestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		mk := func(id int) (*Throttler, *Throttler) {
			l := rng.Intn(8)
			ads := make([]OutstandingAd, l)
			for i := range ads {
				ads[i] = OutstandingAd{Price: 0.5 + rng.Float64()*4, CTR: rng.Float64()}
			}
			bid := rng.Float64() * 3
			budget := rng.Float64() * 12
			return MustThrottler(id, bid, budget, 2, ads), MustThrottler(id, bid, budget, 2, ads)
		}
		a1, a2 := mk(0)
		b1, b2 := mk(1)
		got1, st1 := Compare(a1, b1)
		got2, st2 := CompareWith(a2, b2, WidestFirst)
		if got1 != got2 || st1.Refinements != st2.Refinements {
			t.Fatalf("trial %d: Compare (%d, %d) != CompareWith widest (%d, %d)",
				trial, got1, st1.Refinements, got2, st2.Refinements)
		}
	}
}

// BenchmarkSchedulerComparison measures total refinements per scheduler
// over a batch of random comparisons — the paper's open scheduling
// question, answered empirically.
func BenchmarkSchedulerComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	const pairs = 30
	type spec struct {
		bid, budget float64
		m           int
		ads         []OutstandingAd
	}
	mk := func() spec {
		ads := make([]OutstandingAd, 14)
		for i := range ads {
			ads[i] = OutstandingAd{Price: 0.5 + rng.Float64()*4, CTR: rng.Float64()}
		}
		return spec{bid: rng.Float64() * 4, budget: rng.Float64() * 25, m: 1 + rng.Intn(3), ads: ads}
	}
	var left, right [pairs]spec
	for i := range left {
		left[i], right[i] = mk(), mk()
	}
	for _, sched := range []Scheduler{WidestFirst, RoundRobin, CheapestFirst} {
		b.Run(sched.String(), func(b *testing.B) {
			b.ReportAllocs()
			var refinements int
			for i := 0; i < b.N; i++ {
				refinements = 0
				for p := 0; p < pairs; p++ {
					x := MustThrottler(0, left[p].bid, left[p].budget, left[p].m, left[p].ads)
					y := MustThrottler(1, right[p].bid, right[p].budget, right[p].m, right[p].ads)
					_, st := CompareWith(x, y, sched)
					refinements += st.Refinements
				}
			}
			b.ReportMetric(float64(refinements)/pairs, "refinements/pair")
		})
	}
}
