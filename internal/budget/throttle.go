// Package budget implements Section IV of the paper: winner determination
// under budget uncertainty.
//
// An advertiser's remaining budget β is uncertain whenever ads displayed in
// earlier auctions are still awaiting clicks: each outstanding ad j will
// eventually cost its price π_j with probability ctr_j. With m auctions in
// the current round and stated bid b, the paper's throttled bid is
//
//	b̂ = E[min(b, max(0, β − S)/m)],  S = Σ_j X_j,  X_j ∈ {π_j w.p. ctr_j, 0}.
//
// This package computes b̂ three ways: exact subset enumeration, an exact
// dynamic program over currency units, and — the paper's contribution —
// anytime upper/lower bounds built from Hoeffding's inequality that tighten
// by expanding the largest-price outstanding ads first, so that two
// throttled bids can be compared without ever computing either exactly.
package budget

import (
	"fmt"
	"math"
	"sort"
)

// OutstandingAd is a displayed ad awaiting a click: the price a click would
// cost and the (current) probability that the click eventually happens.
type OutstandingAd struct {
	Price float64
	CTR   float64
}

// Interval is a closed interval [Lo, Hi] bounding an uncertain quantity.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x ∈ [Lo, Hi].
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// Below reports whether the entire interval lies strictly below the other.
func (iv Interval) Below(o Interval) bool { return iv.Hi < o.Lo }

func (iv Interval) String() string { return fmt.Sprintf("[%.6g, %.6g]", iv.Lo, iv.Hi) }

// Throttler computes anytime bounds on one advertiser's throttled bid b̂.
// Refine tightens the bounds by one expansion level (branching explicitly on
// the largest-price outstanding ad not yet expanded, per the paper's
// largest-π-first order); after l refinements the bounds are exact.
type Throttler struct {
	ID       int // advertiser identity, for deterministic tie-breaking
	Bid      float64
	Budget   float64 // β: remaining budget before outstanding debts
	Auctions int     // m: auctions the advertiser enters this round

	ads []OutstandingAd // sorted by ascending price
	// Prefix aggregates over ads[0..p): mean, Σπ², Σπ.
	mu, w2, omega []float64

	level  int // ads expanded explicitly (from the largest down)
	bounds Interval
}

// NewThrottler validates inputs and returns a throttler at expansion level
// 0 (pure Hoeffding bounds). Prices must be positive, CTRs in [0,1],
// budget ≥ 0, bid ≥ 0, auctions ≥ 1.
func NewThrottler(id int, bid, budget float64, auctions int, ads []OutstandingAd) (*Throttler, error) {
	if bid < 0 || budget < 0 {
		return nil, fmt.Errorf("budget: negative bid %v or budget %v", bid, budget)
	}
	if auctions < 1 {
		return nil, fmt.Errorf("budget: advertiser in %d auctions", auctions)
	}
	sorted := append([]OutstandingAd(nil), ads...)
	for _, ad := range sorted {
		if ad.Price <= 0 {
			return nil, fmt.Errorf("budget: outstanding ad price %v must be positive", ad.Price)
		}
		if ad.CTR < 0 || ad.CTR > 1 {
			return nil, fmt.Errorf("budget: outstanding ad ctr %v outside [0,1]", ad.CTR)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Price < sorted[j].Price })
	t := &Throttler{ID: id, Bid: bid, Budget: budget, Auctions: auctions, ads: sorted}
	l := len(sorted)
	t.mu = make([]float64, l+1)
	t.w2 = make([]float64, l+1)
	t.omega = make([]float64, l+1)
	for j, ad := range sorted {
		t.mu[j+1] = t.mu[j] + ad.CTR*ad.Price
		t.w2[j+1] = t.w2[j] + ad.Price*ad.Price
		t.omega[j+1] = t.omega[j] + ad.Price
	}
	t.recompute()
	return t, nil
}

// MustThrottler is NewThrottler that panics on error.
func MustThrottler(id int, bid, budget float64, auctions int, ads []OutstandingAd) *Throttler {
	t, err := NewThrottler(id, bid, budget, auctions, ads)
	if err != nil {
		panic(err)
	}
	return t
}

// Bounds returns the current interval for b̂.
func (t *Throttler) Bounds() Interval { return t.bounds }

// IsExact reports whether no further tightening is possible: the bounds
// have collapsed (fast path, or numerically) or every ad is expanded.
func (t *Throttler) IsExact() bool {
	return t.level >= len(t.ads) || t.bounds.Width() <= 1e-12
}

// Level returns the number of outstanding ads expanded so far.
func (t *Throttler) Level() int { return t.level }

// Refine expands one more outstanding ad (largest remaining price first) and
// recomputes the bounds. It reports whether any tightening is still possible
// afterwards; refining an exact throttler is a no-op returning false.
func (t *Throttler) Refine() bool {
	if t.level >= len(t.ads) {
		return false
	}
	t.level++
	t.recompute()
	return t.level < len(t.ads) && !t.IsExact()
}

// Exact collapses the bounds to the exact throttled bid (via plain subset
// enumeration, which shares the O(2^l) shape of full refinement but with
// far cheaper constants) and returns it.
func (t *Throttler) Exact() float64 {
	if !t.IsExact() {
		v := ExactThrottledBid(t.Bid, t.Budget, t.Auctions, t.ads)
		t.bounds = Interval{v, v}
		t.level = len(t.ads)
	}
	return t.bounds.Lo
}

// recompute evaluates the b̂ bounds at the current expansion level:
//
//	b̂ = b·Pr(S < β−mb) + (β·Pr(A) − E(S·1_A))/m,  A = [max(0, β−mb), β).
func (t *Throttler) recompute() {
	b, beta, m := t.Bid, t.Budget, float64(t.Auctions)
	l := len(t.ads)
	if b == 0 || t.omega[l] <= beta-m*b {
		// Fast path from the paper: the advertiser can afford full bids in
		// all m auctions even if every outstanding ad is clicked.
		t.bounds = Interval{b, b}
		return
	}
	x0 := beta - m*b
	pr1 := t.prLess(l, x0)
	prA := intervalSubClamp(t.prLess(l, beta), t.prLess(l, x0))
	eA := t.eRange(l, x0, beta)
	lo := b*pr1.Lo + math.Max(0, beta*prA.Lo-eA.Hi)/m
	hi := b*pr1.Hi + math.Max(0, beta*prA.Hi-eA.Lo)/m
	t.bounds = Interval{clamp(lo, 0, b), clamp(hi, 0, b)}
	if t.bounds.Lo > t.bounds.Hi { // numeric safety
		mid := (t.bounds.Lo + t.bounds.Hi) / 2
		t.bounds = Interval{mid, mid}
	}
}

// prLess bounds Pr(S_p < x) for the prefix of the first p (smallest-price)
// ads, branching explicitly on ads with index ≥ floor = l − level and using
// Hoeffding's inequality below that.
func (t *Throttler) prLess(p int, x float64) Interval {
	floor := len(t.ads) - t.level
	if p > floor {
		ad := t.ads[p-1]
		hit := t.prLess(p-1, x-ad.Price)
		miss := t.prLess(p-1, x)
		return Interval{
			Lo: ad.CTR*hit.Lo + (1-ad.CTR)*miss.Lo,
			Hi: ad.CTR*hit.Hi + (1-ad.CTR)*miss.Hi,
		}
	}
	return t.hoeffdingPr(p, x)
}

// hoeffdingPr bounds Pr(S_p < x) from the prefix aggregates alone. S_p is a
// sum of independent bounded variables X_j ∈ [0, π_j], so Hoeffding gives
// Pr(S ≥ μ+t), Pr(S ≤ μ−t) ≤ exp(−2t²/Σπ²).
//
// Note: the paper additionally floors/caps its bounds at 0.5 (treating the
// mean as a median); that step is not sound for skewed sums, so this
// implementation keeps the pure Hoeffding bounds. See DESIGN.md.
func (t *Throttler) hoeffdingPr(p int, x float64) Interval {
	if x <= 0 {
		return Interval{0, 0} // S ≥ 0 always
	}
	omega, mu, w2 := t.omega[p], t.mu[p], t.w2[p]
	if x > omega {
		return Interval{1, 1} // S ≤ ω always
	}
	if w2 == 0 {
		// No outstanding mass in the prefix: S = 0 < x deterministically
		// (x > 0 here). Unreachable when all prices are positive and p > 0,
		// but kept for safety.
		return Interval{1, 1}
	}
	if x > mu {
		return Interval{math.Max(0, 1-math.Exp(-2*(x-mu)*(x-mu)/w2)), 1}
	}
	return Interval{0, math.Min(1, math.Exp(-2*(mu-x)*(mu-x)/w2))}
}

// eRange bounds E(S_p · 1{x ≤ S_p < y}), expanding explicit ads per the
// paper's recursion
//
//	E(S_l·1{x≤S_l<y}) = ctr_l·[E(S_{l−1}·1{x−π≤·<y−π}) + π·Pr(x−π ≤ S_{l−1} < y−π)]
//	                  + (1−ctr_l)·E(S_{l−1}·1{x≤·<y})
//
// and at the Hoeffding floor using x·Pr ≤ E ≤ min(y, ω, on-mean cap)·Pr.
func (t *Throttler) eRange(p int, x, y float64) Interval {
	if y <= 0 || x >= y {
		return Interval{0, 0}
	}
	floor := len(t.ads) - t.level
	if p > floor {
		ad := t.ads[p-1]
		eHit := t.eRange(p-1, x-ad.Price, y-ad.Price)
		prHit := intervalSubClamp(t.prLess(p-1, y-ad.Price), t.prLess(p-1, x-ad.Price))
		eMiss := t.eRange(p-1, x, y)
		return Interval{
			Lo: ad.CTR*(eHit.Lo+ad.Price*prHit.Lo) + (1-ad.CTR)*eMiss.Lo,
			Hi: ad.CTR*(eHit.Hi+ad.Price*prHit.Hi) + (1-ad.CTR)*eMiss.Hi,
		}
	}
	pr := intervalSubClamp(t.prLess(p, y), t.prLess(p, x))
	loMass := math.Max(0, x)
	hiMass := math.Min(y, t.omega[p])
	return Interval{
		Lo: loMass * pr.Lo,
		Hi: math.Min(hiMass*pr.Hi, t.mu[p]), // E(S·1_A) ≤ E(S) = μ
	}
}

// intervalSubClamp computes bounds for Pr(x ≤ S < y) = Pr(S<y) − Pr(S<x),
// clamped to [0,1], per the paper's range-bound derivation.
func intervalSubClamp(y, x Interval) Interval {
	return Interval{
		Lo: clamp(y.Lo-x.Hi, 0, 1),
		Hi: clamp(y.Hi-x.Lo, 0, 1),
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ExactThrottledBid computes b̂ by exhaustive enumeration over the 2^l click
// outcomes of the outstanding ads — the paper's O(2^l) reference method.
// Use only for small l (tests, and pricing the k winners).
func ExactThrottledBid(bid, budget float64, auctions int, ads []OutstandingAd) float64 {
	if auctions < 1 {
		panic("budget: auctions must be ≥ 1")
	}
	m := float64(auctions)
	var rec func(j int, prob, sum float64) float64
	rec = func(j int, prob, sum float64) float64 {
		if prob == 0 {
			return 0
		}
		if j == len(ads) {
			return prob * math.Min(bid, math.Max(0, budget-sum)/m)
		}
		return rec(j+1, prob*ads[j].CTR, sum+ads[j].Price) +
			rec(j+1, prob*(1-ads[j].CTR), sum)
	}
	return rec(0, 1, 0)
}

// ExactThrottledBidDP computes b̂ by dynamic programming over currency
// units: the distribution of min(β, S) on a grid of `unit`-sized steps
// (e.g. cents). Exact when every price and the budget are multiples of
// unit; runs in O(l · β/unit) — the paper's O(β) alternative.
//
// Grid resolution: with prices that are unit multiples but an off-grid
// budget, the only error source is grid saturation at round(β/unit), so
// |DP − exact| < unit/(2m). With arbitrary prices each of the l prices
// additionally rounds by at most unit/2, giving |DP − exact| ≤
// (l+1)·unit/(2m). The result is always in [0, bid].
func ExactThrottledBidDP(bid, budget float64, auctions int, ads []OutstandingAd, unit float64) float64 {
	if auctions < 1 || unit <= 0 {
		panic("budget: invalid auctions or unit")
	}
	// S never exceeds the total outstanding value ω, so the grid needs only
	// min(β, ω) cells — crucial when budgets dwarf outstanding debt.
	omega := 0.0
	for _, ad := range ads {
		omega += ad.Price
	}
	cap := int(math.Round(math.Min(budget, omega) / unit))
	dist := make([]float64, cap+1)
	dist[0] = 1
	for _, ad := range ads {
		step := int(math.Round(ad.Price / unit))
		next := make([]float64, cap+1)
		for s, p := range dist {
			if p == 0 {
				continue
			}
			hit := s + step
			if hit > cap {
				hit = cap // min(β, S) saturates at β
			}
			next[hit] += p * ad.CTR
			next[s] += p * (1 - ad.CTR)
		}
		dist = next
	}
	m := float64(auctions)
	total := 0.0
	for s, p := range dist {
		if p == 0 {
			continue
		}
		// The max(0, ·) clamp mirrors the formula (and the enumeration
		// path): when the grid saturates at cap < β/unit — a budget that is
		// not a unit multiple — β − s·unit can go negative for outcomes whose
		// true spend S exceeds β, and those outcomes contribute 0, not a
		// negative bid.
		total += p * math.Min(bid, math.Max(0, budget-float64(s)*unit)/m)
	}
	return total
}

// DecayedCTR models an outstanding ad's click probability as decaying with
// the ad's age: ctr(t) = ctr0 · 2^(−age/halfLife), truncated to zero beyond
// horizon — the shape Section IV suggests, which lets old unclicked ads be
// discarded.
//
// Edge behavior: a non-positive ctr0, halfLife, or horizon yields 0 (an ad
// with no click mass, an instantly-decayed model, and an already-passed
// truncation point respectively — never NaN or ±Inf); a negative age is
// clamped to 0, treating the ad as just displayed.
func DecayedCTR(ctr0, age, halfLife, horizon float64) float64 {
	if ctr0 <= 0 || halfLife <= 0 || horizon <= 0 {
		return 0
	}
	if age < 0 {
		age = 0
	}
	if age >= horizon {
		return 0
	}
	return ctr0 * math.Exp2(-age/halfLife)
}
