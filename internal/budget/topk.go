package budget

import (
	"sort"
)

// CompareStats reports the refinement work a comparison performed.
type CompareStats struct {
	Refinements int
}

// refineCutoff is the expansion level beyond which Compare stops refining
// bounds and falls back to exact evaluation: each further level doubles the
// recomputation cost, so past this point plain enumeration is cheaper than
// continuing to tighten intervals that refuse to separate (near-ties). The
// paper leaves refinement scheduling as future work; this is the simple
// cost-crossover policy.
const refineCutoff = 8

// Compare orders two throttled bids, refining whichever throttler currently
// has the wider bounds until the intervals separate or both are exact. It
// returns -1, 0, or +1 as a's throttled bid is less than, equal to, or
// greater than b's. Refinement state is retained on the throttlers, so
// later comparisons reuse the work (the paper's bound caching).
func Compare(a, b *Throttler) (int, CompareStats) {
	var st CompareStats
	for {
		ab, bb := a.Bounds(), b.Bounds()
		switch {
		case ab.Below(bb):
			return -1, st
		case bb.Below(ab):
			return 1, st
		}
		// Overlapping: refine the wider interval first (largest expected
		// tightening per unit work).
		var target *Throttler
		switch {
		case a.IsExact() && b.IsExact():
			switch {
			case ab.Lo < bb.Lo:
				return -1, st
			case ab.Lo > bb.Lo:
				return 1, st
			default:
				return 0, st
			}
		case a.IsExact():
			target = b
		case b.IsExact():
			target = a
		case ab.Width() >= bb.Width():
			target = a
		default:
			target = b
		}
		if target.Level() >= refineCutoff {
			target.Exact()
		} else {
			target.Refine()
		}
		st.Refinements++
	}
}

// TopKResult is the outcome of top-k selection under uncertain bids.
type TopKResult struct {
	// Winners holds the selected throttlers in descending throttled-bid
	// order (exact values are forced for winners, as the paper notes
	// pricing requires them).
	Winners []*Throttler
	// Refinements counts bound-tightening steps across the whole selection.
	Refinements int
}

// TopKUncertain selects the k advertisers with the highest throttled bids
// without computing most bids exactly: it lazily refines only the
// throttlers whose intervals straddle the selection boundary, in the spirit
// of the multisimulation scheduling of Ré–Dalvi–Suciu that the paper cites.
// Ties between exact equal bids break by ascending advertiser ID.
func TopKUncertain(k int, ts []*Throttler) TopKResult {
	var res TopKResult
	if k <= 0 || len(ts) == 0 {
		return res
	}
	if k > len(ts) {
		k = len(ts)
	}
	order := append([]*Throttler(nil), ts...)
	for {
		// Order by optimistic bound; the candidate set is the first k.
		sort.SliceStable(order, func(i, j int) bool {
			oi, oj := order[i].Bounds(), order[j].Bounds()
			if oi.Lo != oj.Lo {
				return oi.Lo > oj.Lo
			}
			if oi.Hi != oj.Hi {
				return oi.Hi > oj.Hi
			}
			return order[i].ID < order[j].ID
		})
		inMin := order[k-1].Bounds().Lo // weakest selected lower bound
		// The selection is certain when no outsider's upper bound exceeds
		// the weakest insider's lower bound (strictly; equality is resolved
		// by exactness + ID below).
		boundary := -1
		for j := k; j < len(order); j++ {
			out := order[j].Bounds()
			if out.Hi > inMin || (out.Hi == inMin && !(order[j].IsExact() && order[k-1].IsExact())) {
				boundary = j
				break
			}
		}
		if boundary == -1 {
			break
		}
		// Refine the widest interval among the straddlers: the weakest
		// insider and the strongest outsider.
		in, out := order[k-1], order[boundary]
		target := in
		if out.Bounds().Width() > in.Bounds().Width() || (target.IsExact() && !out.IsExact()) {
			target = out
		}
		if target.IsExact() {
			// Both boundary throttlers exact with equal values: the ID
			// tie-break in the sort already ordered them; re-check.
			if in.Bounds().Lo == out.Bounds().Lo {
				break
			}
			target = out
		}
		if target.Level() >= refineCutoff {
			target.Exact()
		} else {
			target.Refine()
		}
		res.Refinements++
	}
	res.Winners = order[:k]
	// Pricing needs winners' exact values (paper: only k of them, so this
	// is cheap relative to exact-for-everyone).
	for _, w := range res.Winners {
		w.Exact()
	}
	sort.SliceStable(res.Winners, func(i, j int) bool {
		wi, wj := res.Winners[i].Bounds().Lo, res.Winners[j].Bounds().Lo
		if wi != wj {
			return wi > wj
		}
		return res.Winners[i].ID < res.Winners[j].ID
	})
	return res
}
