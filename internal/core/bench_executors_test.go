package core

import (
	"testing"

	"sharedwd/internal/workload"
)

// BenchmarkExecutorRound compares the shared-plan execution strategies —
// original map-memo Execute, generic slab executor, flat-compiled runner —
// and the Independent baseline on the same workload BenchmarkRoundResolution
// uses (1000 advertisers, 32 phrases, half occurring each round,
// non-exhausting budgets so every round is identical). The memo/slab force
// flags are package-private, which is why this benchmark lives in package
// core; the README's executor table is regenerated from it.
func BenchmarkExecutorRound(b *testing.B) {
	variants := []struct {
		name        string
		memo, slab  bool
		independent bool
	}{
		{name: "memo", memo: true},
		{name: "slab", slab: true},
		{name: "compiled"},
		{name: "independent", independent: true},
	}
	for _, v := range variants {
		wcfg := workload.DefaultConfig()
		wcfg.NumAdvertisers = 1000
		wcfg.NumPhrases = 32
		wcfg.NumTopics = 6
		wcfg.MinBudget = 1e6 // never exhausts: every round costs the same
		wcfg.MaxBudget = 2e6
		w := workload.Generate(wcfg)
		cfg := DefaultConfig()
		cfg.Policy = Naive
		if v.independent {
			cfg.Sharing = Independent
		}
		eng, err := New(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng.forceMemo = v.memo
		eng.forceSlab = v.slab
		occ := make([]bool, wcfg.NumPhrases)
		for q := range occ {
			occ[q] = q%2 == 0
		}
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Step(occ)
			}
		})
	}
}
