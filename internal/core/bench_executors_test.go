package core

import (
	"testing"

	"sharedwd/internal/workload"
)

// BenchmarkExecutorRound compares the shared-plan execution strategies —
// original map-memo Execute, generic slab executor, flat-compiled runner
// (sequential and pooled at 2/4/8 workers, frontier scheduling forced so
// the parallel path is what's measured) — and the Independent baseline on
// the same workload BenchmarkRoundResolution uses (1000 advertisers, 32
// phrases, half occurring each round, non-exhausting budgets so every
// round is identical). The memo/slab force flags and the sequential-cutoff
// override are package-private, which is why this benchmark lives in
// package core; the README's executor table is regenerated from it, and
// tools/benchjson derives each workers=N variant's `speedup` against
// compiled/workers=1 (an explicit alias of the historical "compiled" row,
// kept so old BENCH_core.json records stay comparable).
func BenchmarkExecutorRound(b *testing.B) {
	variants := []struct {
		name        string
		memo, slab  bool
		independent bool
		workers     int
	}{
		{name: "memo", memo: true},
		{name: "slab", slab: true},
		{name: "compiled"},
		{name: "compiled/workers=1", workers: 1},
		{name: "compiled/workers=2", workers: 2},
		{name: "compiled/workers=4", workers: 4},
		{name: "compiled/workers=8", workers: 8},
		{name: "independent", independent: true},
	}
	for _, v := range variants {
		wcfg := workload.DefaultConfig()
		wcfg.NumAdvertisers = 1000
		wcfg.NumPhrases = 32
		wcfg.NumTopics = 6
		wcfg.MinBudget = 1e6 // never exhausts: every round costs the same
		wcfg.MaxBudget = 2e6
		w := workload.Generate(wcfg)
		cfg := DefaultConfig()
		cfg.Policy = Naive
		if v.independent {
			cfg.Sharing = Independent
		}
		if v.workers > 1 {
			cfg.Workers = v.workers
		}
		eng, err := New(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		eng.forceMemo = v.memo
		eng.forceSlab = v.slab
		if v.workers > 1 {
			// Force the frontier scheduler so the pooled rows measure the
			// parallel path, not the sequential cutoff's inline fallback.
			eng.runner.SetSequentialCutoff(0)
		}
		occ := make([]bool, wcfg.NumPhrases)
		for q := range occ {
			occ[q] = q%2 == 0
		}
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Step(occ)
			}
		})
	}
}
