package core

import (
	"sync"
	"sync/atomic"

	"sharedwd/internal/plan"
	"sharedwd/internal/topk"
)

// executeConcurrent evaluates the shared plan for one round with parallelism
// at the query level: occurring queries' DAG walks are distributed over at
// most `workers` goroutines via a shared atomic work index, and every node
// carries a sync.Once so a shared subtree is computed exactly once no matter
// how many queries race into it. This granularity — whole subtrees per task,
// synchronization only at shared nodes — beats per-node task scheduling,
// whose channel overhead exceeds the ~300ns cost of a single top-k merge.
// Exactly min(workers, queries) goroutines exist at any moment (earlier
// versions spawned one goroutine per query and only gated execution with a
// semaphore, so a round with thousands of occurring queries created
// thousands of goroutines).
//
// Results and materialization counts match plan.Execute exactly.
func executeConcurrent(p *plan.Plan, leaf func(v int) *topk.List, occurring []bool, workers int) (map[int]*topk.List, int) {
	once := make([]sync.Once, len(p.Nodes))
	results := make([]*topk.List, len(p.Nodes))
	var materialized atomic.Int64

	var eval func(id int) *topk.List
	eval = func(id int) *topk.List {
		once[id].Do(func() {
			n := p.Nodes[id]
			if n.IsLeaf() {
				results[id] = leaf(n.ID)
				return
			}
			l := eval(n.Left)
			r := eval(n.Right)
			results[id] = topk.Merge(l, r)
			materialized.Add(1)
		})
		return results[id]
	}

	roots := make([]int, 0, len(p.QueryNode))
	out := make(map[int]*topk.List, len(p.QueryNode))
	for qi, id := range p.QueryNode {
		if occurring != nil && !occurring[qi] {
			continue
		}
		out[qi] = nil // reserve the key; filled after the walks complete
		roots = append(roots, id)
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(roots) {
					return
				}
				eval(roots[i])
			}
		}()
	}
	// The caller works too, so workers == 1 runs fully inline.
	for {
		i := int(next.Add(1)) - 1
		if i >= len(roots) {
			break
		}
		eval(roots[i])
	}
	wg.Wait()
	for qi := range out {
		out[qi] = results[p.QueryNode[qi]]
	}
	return out, int(materialized.Load())
}
