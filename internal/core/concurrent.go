package core

import (
	"sync"
	"sync/atomic"

	"sharedwd/internal/plan"
	"sharedwd/internal/topk"
)

// executeConcurrent evaluates the shared plan for one round with parallelism
// at the query level: each occurring query's DAG walk runs in its own
// goroutine (bounded by workers), and every node carries a sync.Once so a
// shared subtree is computed exactly once no matter how many queries race
// into it. This granularity — whole subtrees per task, synchronization only
// at shared nodes — beats per-node task scheduling, whose channel overhead
// exceeds the ~300ns cost of a single top-k merge.
//
// Results and materialization counts match plan.Execute exactly.
func executeConcurrent(p *plan.Plan, leaf func(v int) *topk.List, occurring []bool, workers int) (map[int]*topk.List, int) {
	once := make([]sync.Once, len(p.Nodes))
	results := make([]*topk.List, len(p.Nodes))
	var materialized atomic.Int64

	var eval func(id int) *topk.List
	eval = func(id int) *topk.List {
		once[id].Do(func() {
			n := p.Nodes[id]
			if n.IsLeaf() {
				results[id] = leaf(n.ID)
				return
			}
			l := eval(n.Left)
			r := eval(n.Right)
			results[id] = topk.Merge(l, r)
			materialized.Add(1)
		})
		return results[id]
	}

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	out := make(map[int]*topk.List, len(p.QueryNode))
	for qi, id := range p.QueryNode {
		if occurring != nil && !occurring[qi] {
			continue
		}
		out[qi] = nil // reserve the key; filled after the walk completes
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sem <- struct{}{}
			eval(id)
			<-sem
		}(id)
	}
	wg.Wait()
	for qi := range out {
		out[qi] = results[p.QueryNode[qi]]
	}
	return out, int(materialized.Load())
}
