package core

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/topk"
)

// TestExecuteConcurrentBoundsGoroutines is the regression test for the
// unbounded-spawn bug: executeConcurrent used to start one goroutine per
// occurring query and only gate execution with a semaphore, so a round with
// many queries created many goroutines. Now at most `workers` goroutines
// (including the caller) may be evaluating at once, and at most workers−1
// are spawned.
func TestExecuteConcurrentBoundsGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := plan.RandomOverlapInstance(rng, 128, 64, 8, 1, 1)
	p := sharedagg.Build(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	const workers = 2
	var active, maxActive, peakGoroutines atomic.Int64
	base := runtime.NumGoroutine()
	leaf := func(v int) *topk.List {
		n := active.Add(1)
		for {
			m := maxActive.Load()
			if n <= m || maxActive.CompareAndSwap(m, n) {
				break
			}
		}
		if g := int64(runtime.NumGoroutine()); g > peakGoroutines.Load() {
			peakGoroutines.Store(g)
		}
		time.Sleep(100 * time.Microsecond) // widen the race window
		active.Add(-1)
		l := topk.New(4)
		l.Push(topk.Entry{ID: v, Score: float64(v + 1)})
		return l
	}

	out, _ := executeConcurrent(p, leaf, nil, workers)
	if len(out) != len(inst.Queries) {
		t.Fatalf("resolved %d queries, want %d", len(out), len(inst.Queries))
	}
	if got := maxActive.Load(); got > workers {
		t.Errorf("observed %d concurrent leaf evaluations, want ≤ %d", got, workers)
	}
	// peakGoroutines is sampled racily (other goroutines may exist), so allow
	// slack; the old implementation spawned one goroutine per query and blew
	// far past this bound (base + 64).
	if got := int(peakGoroutines.Load()); got > base+workers+4 {
		t.Errorf("peak goroutine count %d (base %d) — spawning is not bounded by workers=%d", got, base, workers)
	}
}
