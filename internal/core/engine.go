// Package core is the shared winner-determination engine — the system the
// paper's techniques compose into. Per round it:
//
//  1. collects the clicks arriving from earlier rounds and charges budgets
//     (never above an advertiser's daily budget);
//  2. computes each advertiser's bid for the round — either the stated bid
//     (naive policy) or the Section-IV throttled bid b̂ that accounts for
//     outstanding ads awaiting clicks;
//  3. resolves every occurring bid phrase's auction by executing the shared
//     top-(k+1) aggregation plan built offline by the Section-II heuristic
//     (optionally in parallel across plan nodes), or an unshared per-auction
//     scan for the baseline;
//  4. prices the winners (first-price / GSP / laddered VCG) and displays
//     their ads, registering them with the delayed-click simulator.
//
// The engine's counters expose exactly the quantities the paper's
// evaluation cares about: aggregation nodes materialized per round (the
// shared-plan cost model), revenue, and clicks that had to be forgiven
// because a naive policy let an advertiser win more than his budget could
// pay for (the Section-IV gaming loss).
package core

import (
	"fmt"

	"sharedwd/internal/auction"
	"sharedwd/internal/budget"
	"sharedwd/internal/plan"
	"sharedwd/internal/pricing"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/topk"
	"sharedwd/internal/workload"
)

// BudgetPolicy selects how remaining budgets influence bidding.
type BudgetPolicy int

// Budget policies.
const (
	// Naive ignores outstanding ads: an advertiser bids min(b_i, β_i) as
	// long as any budget remains — the gameable behaviour of Section IV.
	Naive BudgetPolicy = iota
	// Throttled uses the paper's b̂_i = E[min(b_i, max(0, β_i − S)/m_i)].
	Throttled
)

func (p BudgetPolicy) String() string {
	if p == Throttled {
		return "throttled"
	}
	return "naive"
}

// SharingMode selects how winner determination is computed across the
// round's simultaneous auctions.
type SharingMode int

// Sharing modes.
const (
	// SharedAggregation executes the Section-II shared top-k plan.
	SharedAggregation SharingMode = iota
	// Independent scans each occurring phrase's advertisers separately.
	Independent
)

func (m SharingMode) String() string {
	if m == Independent {
		return "independent"
	}
	return "shared"
}

// Config parameterizes the engine.
type Config struct {
	Pricing pricing.Rule
	Policy  BudgetPolicy
	Sharing SharingMode
	// Workers > 1 evaluates the shared plan's DAG concurrently.
	Workers int
	// ClickHazard and ClickHorizon parameterize the delayed-click model.
	ClickHazard  float64
	ClickHorizon int
	// ThrottleEnumLimit bounds the outstanding-ad count for exact subset
	// enumeration; beyond it the currency-grid DP is used.
	ThrottleEnumLimit int
	// ThrottleUnit is the DP currency grid (e.g. 0.01 = cents).
	ThrottleUnit float64
	// Reserve is the per-click reserve price: bidders below it do not
	// participate, and no winner pays less. Zero disables it.
	Reserve float64
}

// DefaultConfig returns a GSP, throttled, shared configuration.
func DefaultConfig() Config {
	return Config{
		Pricing:           pricing.GSP,
		Policy:            Throttled,
		Sharing:           SharedAggregation,
		Workers:           1,
		ClickHazard:       0.3,
		ClickHorizon:      20,
		ThrottleEnumLimit: 16,
		ThrottleUnit:      0.01,
	}
}

// Engine resolves rounds of simultaneous sponsored-search auctions over a
// fixed workload.
type Engine struct {
	cfg Config
	w   *workload.Workload

	inst *plan.Instance
	plan *plan.Plan

	clicks *workload.ClickSim
	spent  []float64 // realized payments per advertiser
	round  int

	stats Stats
}

// Stats accumulates engine-lifetime counters.
type Stats struct {
	Rounds           int
	AuctionsResolved int
	// NodesMaterialized counts top-k aggregation operations performed (the
	// Section-II cost metric). For Independent mode it counts the per-scan
	// pushes equivalent: one per advertiser scanned beyond the first per
	// auction, to keep the two modes comparable.
	NodesMaterialized int
	Revenue           float64
	ClicksCharged     int
	// ClicksForgiven counts clicks whose price exceeded the advertiser's
	// remaining budget and could not be charged — the paper's lost revenue.
	ClicksForgiven int
	ForgivenValue  float64
	AdsDisplayed   int
}

// New builds an engine (and, in shared mode, the offline aggregation plan)
// for the workload.
func New(w *workload.Workload, cfg Config) (*Engine, error) {
	if w.Quality != nil {
		return nil, fmt.Errorf("core: per-phrase quality workloads need the shared-sort pipeline; Engine uses the shared-aggregation regime (global c_i)")
	}
	if cfg.ClickHazard <= 0 || cfg.ClickHazard > 1 || cfg.ClickHorizon < 1 {
		return nil, fmt.Errorf("core: invalid click model (hazard %v, horizon %d)", cfg.ClickHazard, cfg.ClickHorizon)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: negative worker count %d", cfg.Workers)
	}
	if cfg.ThrottleUnit <= 0 {
		return nil, fmt.Errorf("core: non-positive throttle unit %v", cfg.ThrottleUnit)
	}
	e := &Engine{
		cfg:    cfg,
		w:      w,
		clicks: workload.NewClickSim(w.Rng(), cfg.ClickHazard, cfg.ClickHorizon),
		spent:  make([]float64, len(w.Advertisers)),
	}
	if cfg.Sharing == SharedAggregation {
		queries := make([]plan.Query, len(w.Interests))
		for q := range w.Interests {
			queries[q] = plan.Query{Vars: w.Interests[q], Rate: w.Rates[q]}
		}
		inst, err := plan.NewInstance(len(w.Advertisers), queries)
		if err != nil {
			return nil, fmt.Errorf("core: building plan instance: %w", err)
		}
		e.inst = inst
		e.plan = sharedagg.Build(inst)
		if err := e.plan.Validate(); err != nil {
			return nil, fmt.Errorf("core: invalid shared plan: %w", err)
		}
	}
	return e, nil
}

// Stats returns the accumulated counters.
func (e *Engine) Stats() Stats { return e.stats }

// Round returns the number of the next round to be stepped.
func (e *Engine) Round() int { return e.round }

// Spent returns how much advertiser i has paid so far.
func (e *Engine) Spent(i int) float64 { return e.spent[i] }

// Remaining returns advertiser i's remaining budget.
func (e *Engine) Remaining(i int) float64 { return e.w.Advertisers[i].Budget - e.spent[i] }

// AdvertiserReport summarizes one advertiser's day so far.
type AdvertiserReport struct {
	ID        int
	Bid       float64
	Budget    float64
	Spent     float64
	Remaining float64
	// Outstanding is the number of displayed ads still awaiting clicks.
	Outstanding int
	// OutstandingExposure is the total price of those ads — the worst-case
	// debt the throttled bid accounts for (the paper's ω).
	OutstandingExposure float64
}

// Report returns advertiser i's current accounting snapshot.
func (e *Engine) Report(i int) AdvertiserReport {
	a := e.w.Advertisers[i]
	prices, _ := e.clicks.Outstanding(i, e.round)
	exposure := 0.0
	for _, p := range prices {
		exposure += p
	}
	return AdvertiserReport{
		ID:                  i,
		Bid:                 a.Bid,
		Budget:              a.Budget,
		Spent:               e.spent[i],
		Remaining:           a.Budget - e.spent[i],
		Outstanding:         len(prices),
		OutstandingExposure: exposure,
	}
}

// SlotResult is one filled slot in one auction.
type SlotResult struct {
	Slot       int
	Advertiser int
	PricePaid  float64 // per-click price
}

// RoundReport is the outcome of one engine step.
type RoundReport struct {
	Round int
	// Auctions maps occurring phrase → its filled slots.
	Auctions map[int][]SlotResult
	// Clicks that arrived this round (from earlier displays).
	Clicks []workload.Click
	// Materialized counts aggregation work performed this round.
	Materialized int
}

// Step advances one round: occurring[q] says whether phrase q's auction
// runs. Passing nil samples occurrence from the workload's search rates.
func (e *Engine) Step(occurring []bool) RoundReport {
	if occurring == nil {
		occurring = e.w.SampleRound()
	}
	if len(occurring) != len(e.w.Interests) {
		panic(fmt.Sprintf("core: %d occurrence flags for %d phrases", len(occurring), len(e.w.Interests)))
	}
	rep := RoundReport{Round: e.round, Auctions: make(map[int][]SlotResult)}

	// 1. Deliver clicks from earlier rounds and charge budgets.
	rep.Clicks = e.clicks.Advance(e.round)
	for _, c := range rep.Clicks {
		if e.spent[c.Advertiser]+c.Price <= e.w.Advertisers[c.Advertiser].Budget+1e-9 {
			e.spent[c.Advertiser] += c.Price
			e.stats.Revenue += c.Price
			e.stats.ClicksCharged++
		} else {
			e.stats.ClicksForgiven++
			e.stats.ForgivenValue += c.Price
		}
	}

	// 2. Per-advertiser round bids under the budget policy.
	mCount := e.auctionCounts(occurring)
	roundBid := make([]float64, len(e.w.Advertisers))
	for i, a := range e.w.Advertisers {
		if mCount[i] == 0 {
			continue
		}
		roundBid[i] = e.policyBid(i, a, mCount[i])
	}

	// 3. Winner determination across the occurring auctions.
	k := len(e.w.SlotFactors)
	var results map[int]*topk.List
	switch e.cfg.Sharing {
	case SharedAggregation:
		leaf := func(v int) *topk.List {
			l := topk.New(k + 1)
			if s := roundBid[v] * e.w.Advertisers[v].Quality; s > 0 {
				l.Push(topk.Entry{ID: v, Score: s})
			}
			return l
		}
		if e.cfg.Workers > 1 {
			results, rep.Materialized = executeConcurrent(e.plan, leaf, occurring, e.cfg.Workers)
		} else {
			results, rep.Materialized = plan.Execute(e.plan, leaf, topk.Merge, occurring)
		}
	case Independent:
		results = make(map[int]*topk.List)
		for q, occ := range occurring {
			if !occ {
				continue
			}
			l := topk.New(k + 1)
			scanned := 0
			e.w.Interests[q].ForEach(func(v int) bool {
				if s := roundBid[v] * e.w.Advertisers[v].Quality; s > 0 {
					l.Push(topk.Entry{ID: v, Score: s})
				}
				scanned++
				return true
			})
			if scanned > 1 {
				rep.Materialized += scanned - 1
			}
			results[q] = l
		}
	}

	// 4. Assign, price, display — in phrase order, so the click
	// simulator's random stream is consumed deterministically.
	for q := 0; q < len(occurring); q++ {
		list, ok := results[q]
		if !ok {
			continue
		}
		e.stats.AuctionsResolved++
		ranked := make([]pricing.Ranked, 0, list.Len())
		for _, entry := range list.Entries() {
			ranked = append(ranked, pricing.Ranked{
				ID:      entry.ID,
				Bid:     roundBid[entry.ID],
				Quality: e.w.Advertisers[entry.ID].Quality,
			})
		}
		ranked, prices := pricing.PricesWithReserve(e.cfg.Pricing, ranked, e.w.SlotFactors, e.cfg.Reserve)
		for j := 0; j < len(prices) && j < k; j++ {
			adv := ranked[j]
			if adv.Bid <= 0 {
				break
			}
			ctr := adv.Quality * e.w.SlotFactors[j]
			if ctr > 1 {
				ctr = 1
			}
			e.clicks.Display(adv.ID, prices[j], ctr, e.round)
			e.stats.AdsDisplayed++
			rep.Auctions[q] = append(rep.Auctions[q], SlotResult{Slot: j, Advertiser: adv.ID, PricePaid: prices[j]})
		}
	}

	e.stats.NodesMaterialized += rep.Materialized
	e.stats.Rounds++
	e.round++
	return rep
}

// Drain advances rounds with no occurring auctions until every pending
// click has resolved, so end-of-day accounting is complete.
func (e *Engine) Drain() {
	none := make([]bool, len(e.w.Interests))
	for e.clicks.PendingCount() > 0 {
		e.Step(none)
	}
}

// auctionCounts computes m_i: the number of occurring auctions each
// advertiser takes part in this round.
func (e *Engine) auctionCounts(occurring []bool) []int {
	m := make([]int, len(e.w.Advertisers))
	for q, occ := range occurring {
		if !occ {
			continue
		}
		e.w.Interests[q].ForEach(func(i int) bool {
			m[i]++
			return true
		})
	}
	return m
}

// policyBid computes the advertiser's bid for this round under the
// configured budget policy.
func (e *Engine) policyBid(i int, a auction.Advertiser, m int) float64 {
	remaining := a.Budget - e.spent[i]
	if remaining <= 0 {
		return 0
	}
	switch e.cfg.Policy {
	case Naive:
		if a.Bid < remaining {
			return a.Bid
		}
		return remaining
	case Throttled:
		prices, ctrs := e.clicks.Outstanding(i, e.round)
		omega := 0.0
		for _, p := range prices {
			omega += p
		}
		// Paper's fast path: even if every outstanding ad is clicked, the
		// advertiser can still afford m full bids — no throttling needed.
		if omega <= remaining-float64(m)*a.Bid {
			return a.Bid
		}
		ads := make([]budget.OutstandingAd, len(prices))
		for j := range prices {
			ads[j] = budget.OutstandingAd{Price: prices[j], CTR: ctrs[j]}
		}
		if len(ads) <= e.cfg.ThrottleEnumLimit {
			return budget.ExactThrottledBid(a.Bid, remaining, m, ads)
		}
		return budget.ExactThrottledBidDP(a.Bid, remaining, m, ads, e.cfg.ThrottleUnit)
	default:
		panic(fmt.Sprintf("core: unknown budget policy %d", e.cfg.Policy))
	}
}
