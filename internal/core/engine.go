// Package core is the shared winner-determination engine — the system the
// paper's techniques compose into. Per round it:
//
//  1. collects the clicks arriving from earlier rounds and charges budgets
//     (never above an advertiser's daily budget);
//  2. computes each advertiser's bid for the round — either the stated bid
//     (naive policy) or the Section-IV throttled bid b̂ that accounts for
//     outstanding ads awaiting clicks;
//  3. resolves every occurring bid phrase's auction by executing the shared
//     top-(k+1) aggregation plan built offline by the Section-II heuristic
//     (optionally in parallel across plan nodes), or an unshared per-auction
//     scan for the baseline;
//  4. prices the winners (first-price / GSP / laddered VCG) and displays
//     their ads, registering them with the delayed-click simulator.
//
// The engine's counters expose exactly the quantities the paper's
// evaluation cares about: aggregation nodes materialized per round (the
// shared-plan cost model), revenue, and clicks that had to be forgiven
// because a naive policy let an advertiser win more than his budget could
// pay for (the Section-IV gaming loss).
package core

import (
	"fmt"

	"sharedwd/internal/budget"
	"sharedwd/internal/plan"
	"sharedwd/internal/pricing"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/topk"
	"sharedwd/internal/workload"
)

// BudgetPolicy selects how remaining budgets influence bidding.
type BudgetPolicy int

// Budget policies.
const (
	// Naive ignores outstanding ads: an advertiser bids min(b_i, β_i) as
	// long as any budget remains — the gameable behaviour of Section IV.
	Naive BudgetPolicy = iota
	// Throttled uses the paper's b̂_i = E[min(b_i, max(0, β_i − S)/m_i)].
	Throttled
)

func (p BudgetPolicy) String() string {
	if p == Throttled {
		return "throttled"
	}
	return "naive"
}

// SharingMode selects how winner determination is computed across the
// round's simultaneous auctions.
type SharingMode int

// Sharing modes.
const (
	// SharedAggregation executes the Section-II shared top-k plan.
	SharedAggregation SharingMode = iota
	// Independent scans each occurring phrase's advertisers separately.
	Independent
)

func (m SharingMode) String() string {
	if m == Independent {
		return "independent"
	}
	return "shared"
}

// BudgetLedger is the engine's hook for external budget authority. When a
// Config carries one, remaining-budget reads and click charges go through
// it instead of the engine-private spend table, so several engines (the
// shards of a sharded server) can share one advertiser budget pool with
// exact global accounting. budget.Ledger implements it.
//
// Implementations must be safe for concurrent use: each engine calls from
// its own goroutine, but the ledger is shared across engines.
type BudgetLedger interface {
	// Remaining returns the advertiser's current remaining budget.
	Remaining(advertiser int) float64
	// TryCharge atomically deducts price from the advertiser's remaining
	// budget, returning false (and charging nothing) if the budget does not
	// cover it.
	TryCharge(advertiser int, price float64) bool
}

// Config parameterizes the engine.
type Config struct {
	Pricing pricing.Rule
	Policy  BudgetPolicy
	Sharing SharingMode
	// Workers > 1 runs each round's heavy phases on a persistent worker
	// pool: leaf scoring (throttled-bid computation) splits the advertiser
	// range across workers, and the compiled plan's dirty cone is executed
	// through the cost-aware frontier scheduler — Span-balanced chunks plus
	// dependency-release, see DESIGN.md §11 — rather than level barriers.
	// Small dirty cones (the incremental-cache steady state) still run
	// inline. Call Close on the engine to stop the pool's goroutines.
	Workers int
	// IncrementalCache carries plan-node results across rounds and
	// re-materializes only the dirty cone: nodes whose descendant
	// advertiser scores changed, plus nodes the round's occurrence set
	// demands for the first time. This generalizes the paper's Section
	// III-B result caching to the Section-II aggregation DAG; with it on,
	// Stats.NodesMaterialized counts only recomputed nodes and
	// Stats.NodesCached the cache hits.
	IncrementalCache bool
	// ClickHazard and ClickHorizon parameterize the delayed-click model.
	ClickHazard  float64
	ClickHorizon int
	// ThrottleEnumLimit bounds the outstanding-ad count for exact subset
	// enumeration; beyond it the currency-grid DP is used.
	ThrottleEnumLimit int
	// ThrottleUnit is the DP currency grid (e.g. 0.01 = cents).
	ThrottleUnit float64
	// Reserve is the per-click reserve price: bidders below it do not
	// participate, and no winner pays less. Zero disables it.
	Reserve float64
	// Ledger, when non-nil, is the shared budget authority consulted for
	// remaining budgets and charged for clicks in place of the
	// engine-private spend table. The engine still accumulates its local
	// Spent view (this engine's share of each advertiser's spend), but the
	// admit/forgive decision for every click is the ledger's. Used by the
	// sharded server to keep Section IV accounting exact across shards.
	Ledger BudgetLedger
	// ClickOutcome, when non-nil, replaces the click simulator's random
	// draws with a deterministic outcome function (see
	// workload.OutcomeFunc). Sharded and single-engine runs given the same
	// pure function see identical click fates, which is what the
	// equivalence property tests rely on.
	ClickOutcome workload.OutcomeFunc
	// Pacer, when non-nil, is the shared online pacing controller: at the
	// top of every Step the engine syncs it to the round (idempotent across
	// the shards sharing it), and each advertiser's stated bid is scaled by
	// its published pacing factor before the budget policy runs — the
	// throttle knob that makes budgets exhaust smoothly over the configured
	// horizon instead of front-loading. See budget.Pacer.
	Pacer *budget.Pacer
	// Lifecycle, when non-nil, is the advertiser lifecycle schedule the
	// engine consumes at round boundaries: join/leave events toggle
	// participation (an inactive advertiser places no bids; its outstanding
	// ads still settle and charge). Budget-refresh events are not applied
	// here — they belong to the Pacer, which holds the fleet's single
	// budget authority. Every shard consumes the same schedule
	// independently, so active sets agree with no coordination.
	Lifecycle *workload.Lifecycle
}

// DefaultConfig returns a GSP, throttled, shared configuration.
func DefaultConfig() Config {
	return Config{
		Pricing:           pricing.GSP,
		Policy:            Throttled,
		Sharing:           SharedAggregation,
		Workers:           1,
		ClickHazard:       0.3,
		ClickHorizon:      20,
		ThrottleEnumLimit: 16,
		ThrottleUnit:      0.01,
	}
}

// Engine resolves rounds of simultaneous sponsored-search auctions over a
// fixed workload.
//
// Thread safety: an Engine is single-threaded by contract. Step, Drain,
// Stats, Spent, and Close must all be called from one goroutine (Workers > 1
// only parallelizes work inside a Step, behind the same contract). A
// RoundReport's Auctions field views scratch buffers that the next Step
// overwrites; callers keeping results across rounds must copy them. The
// server package wraps an Engine in a round loop to provide a concurrent
// front end.
type Engine struct {
	cfg Config
	w   *workload.Workload

	inst *plan.Instance
	plan *plan.Plan

	// runner executes the flat-compiled instruction stream (prog) over
	// dense entry slabs — the default shared-mode path; pool (Workers > 1)
	// drives its cost-aware frontier scheduler and the parallel leaf
	// scoring pass.
	prog   *plan.Program
	runner *plan.Runner
	pool   *plan.Pool

	// exec owns the per-node *topk.List slab of the original slab
	// executor, kept as a reference strategy for the equivalence tests.
	exec   *plan.Executor[*topk.List]
	leafFn func(prev *topk.List, v int) *topk.List
	opFn   func(prev, a, b *topk.List) *topk.List

	// forceMemo routes shared-mode winner determination through the
	// original map-memo plan.Execute; forceSlab through the generic slab
	// executor. Both exist purely as reference strategies for the
	// equivalence tests — the compiled runner is the production path.
	forceMemo bool
	forceSlab bool

	clicks *workload.ClickSim
	spent  []float64 // realized payments per advertiser
	round  int

	// active[i] is advertiser i's lifecycle participation flag; lifeCursor
	// tracks schedule consumption and lifeFn is the pinned event-apply
	// closure (built once so round boundaries never allocate).
	active     []bool
	lifeCursor int
	lifeFn     func(workload.LifecycleEvent)

	scr roundScratch
	// tscr[w] is pool worker w's throttled-bid scratch; tscr[0] serves the
	// sequential path. scoreFn is the pinned parallel-scoring body.
	tscr    []throttleScratch
	scoreFn func(worker, lo, hi int)

	stats Stats
}

// roundScratch holds every per-round buffer Step reuses, so steady-state
// rounds allocate nothing. RoundReports returned by Step view into these
// buffers and are valid until the next Step.
type roundScratch struct {
	occ      []bool
	mCount   []int
	roundBid []float64
	// score[i] is the round's effective score b̂_i·c_i, computed once per
	// round; every execution strategy (compiled, slab, memo, independent)
	// reads leaf values from this one slab so they score bit-identically.
	score []float64
	// lastScore[i] is the effective score advertiser i's cached leaf value
	// was computed from (IncrementalCache mode).
	lastScore []float64
	ranked    []pricing.Ranked
	parts     []pricing.Ranked
	prices    []float64
	auctions  map[int][]SlotResult
	slots     [][]SlotResult // per-phrase slot buffers backing auctions
	indep     []*topk.List   // Independent-mode per-phrase lists
}

// throttleScratch is one worker's outstanding-ad buffers for the throttled
// bid computation. The engine owns one per pool worker (index 0 doubles as
// the sequential path's scratch), so parallel leaf scoring never shares
// append targets; the pad keeps adjacent workers' slice headers — rewritten
// on every AppendOutstanding — off each other's cache lines.
type throttleScratch struct {
	outPrices []float64
	outCTRs   []float64
	ads       []budget.OutstandingAd
	_         [56]byte
}

// scoreGrain is the advertiser-range claim unit for parallel leaf scoring:
// coarse enough that cursor traffic is negligible, fine enough that a run
// of expensive throttled bids (deep outstanding sets) can be stolen.
const scoreGrain = 64

// Stats accumulates engine-lifetime counters. The JSON tags are the stable
// wire schema shared by the network tier's /v1/stats endpoint and the
// WebSocket round feed; renaming one is a breaking API change.
type Stats struct {
	Rounds           int `json:"rounds"`
	AuctionsResolved int `json:"auctions_resolved"`
	// NodesMaterialized counts top-k aggregation operations performed (the
	// Section-II cost metric). For Independent mode it counts the per-scan
	// pushes equivalent: one per advertiser scanned beyond the first per
	// auction, to keep the two modes comparable. With IncrementalCache it
	// counts only nodes actually recomputed — which is exactly the paper's
	// expected-materialization cost model — while cache hits accumulate in
	// NodesCached.
	NodesMaterialized int `json:"nodes_materialized"`
	// NodesCached counts plan nodes served from the cross-round cache
	// instead of being recomputed (IncrementalCache mode only).
	// NodesMaterialized + NodesCached equals what NodesMaterialized would
	// be with the cache off.
	NodesCached   int     `json:"nodes_cached"`
	Revenue       float64 `json:"revenue"`
	ClicksCharged int     `json:"clicks_charged"`
	// ClicksForgiven counts clicks whose price exceeded the advertiser's
	// remaining budget and could not be charged — the paper's lost revenue.
	ClicksForgiven int     `json:"clicks_forgiven"`
	ForgivenValue  float64 `json:"forgiven_value"`
	AdsDisplayed   int     `json:"ads_displayed"`
}

// Add returns the field-wise sum of two stat sets — the aggregation used to
// roll per-shard engine counters up into one fleet-wide view.
func (s Stats) Add(o Stats) Stats {
	s.Rounds += o.Rounds
	s.AuctionsResolved += o.AuctionsResolved
	s.NodesMaterialized += o.NodesMaterialized
	s.NodesCached += o.NodesCached
	s.Revenue += o.Revenue
	s.ClicksCharged += o.ClicksCharged
	s.ClicksForgiven += o.ClicksForgiven
	s.ForgivenValue += o.ForgivenValue
	s.AdsDisplayed += o.AdsDisplayed
	return s
}

// New builds an engine (and, in shared mode, the offline aggregation plan)
// for the workload.
func New(w *workload.Workload, cfg Config) (*Engine, error) {
	if w.Quality != nil {
		return nil, fmt.Errorf("core: per-phrase quality workloads need the shared-sort pipeline; Engine uses the shared-aggregation regime (global c_i)")
	}
	if cfg.ClickHazard <= 0 || cfg.ClickHazard > 1 || cfg.ClickHorizon < 1 {
		return nil, fmt.Errorf("core: invalid click model (hazard %v, horizon %d)", cfg.ClickHazard, cfg.ClickHorizon)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: negative worker count %d", cfg.Workers)
	}
	if cfg.ThrottleUnit <= 0 {
		return nil, fmt.Errorf("core: non-positive throttle unit %v", cfg.ThrottleUnit)
	}
	if cfg.Lifecycle != nil && cfg.Lifecycle.NumAdvertisers() != len(w.Advertisers) {
		return nil, fmt.Errorf("core: lifecycle over %d advertisers, workload has %d", cfg.Lifecycle.NumAdvertisers(), len(w.Advertisers))
	}
	if cfg.Pacer != nil && cfg.Pacer.N() != len(w.Advertisers) {
		return nil, fmt.Errorf("core: pacer over %d advertisers, workload has %d", cfg.Pacer.N(), len(w.Advertisers))
	}
	e := &Engine{
		cfg:    cfg,
		w:      w,
		clicks: workload.NewClickSim(w.Rng(), cfg.ClickHazard, cfg.ClickHorizon),
		spent:  make([]float64, len(w.Advertisers)),
		active: make([]bool, len(w.Advertisers)),
	}
	for i := range e.active {
		e.active[i] = cfg.Lifecycle == nil || cfg.Lifecycle.InitiallyActive(i)
	}
	e.lifeFn = func(ev workload.LifecycleEvent) {
		switch ev.Kind {
		case workload.LifecycleJoin:
			e.active[ev.Advertiser] = true
		case workload.LifecycleLeave:
			e.active[ev.Advertiser] = false
		}
	}
	if cfg.ClickOutcome != nil {
		e.clicks.SetOutcome(cfg.ClickOutcome)
	}
	e.scr.mCount = make([]int, len(w.Advertisers))
	e.scr.roundBid = make([]float64, len(w.Advertisers))
	e.scr.score = make([]float64, len(w.Advertisers))
	e.scr.lastScore = make([]float64, len(w.Advertisers))
	nscr := cfg.Workers
	if nscr < 1 {
		nscr = 1
	}
	e.tscr = make([]throttleScratch, nscr)
	e.scoreFn = func(worker, lo, hi int) {
		ts := &e.tscr[worker]
		mCount := e.scr.mCount
		for i := lo; i < hi; i++ {
			if mCount[i] == 0 || !e.active[i] {
				continue
			}
			a := e.w.Advertisers[i]
			bid := e.pacedBid(i, a.Bid)
			if bid <= 0 {
				continue
			}
			b := e.policyBid(i, bid, mCount[i], ts)
			e.scr.roundBid[i] = b
			e.scr.score[i] = b * a.Quality
		}
	}
	e.scr.auctions = make(map[int][]SlotResult, len(w.Interests))
	e.scr.slots = make([][]SlotResult, len(w.Interests))
	k := len(w.SlotFactors)
	if cfg.Sharing == SharedAggregation {
		queries := make([]plan.Query, len(w.Interests))
		for q := range w.Interests {
			queries[q] = plan.Query{Vars: w.Interests[q], Rate: w.Rates[q]}
		}
		inst, err := plan.NewInstance(len(w.Advertisers), queries)
		if err != nil {
			return nil, fmt.Errorf("core: building plan instance: %w", err)
		}
		e.inst = inst
		var perr error
		e.plan, e.prog, perr = sharedagg.BuildCompiled(inst)
		if perr != nil {
			return nil, fmt.Errorf("core: %w", perr)
		}
		e.runner = plan.NewRunner(e.prog, k+1)
		e.exec = plan.NewExecutor[*topk.List](e.plan)
		if cfg.Workers > 1 {
			e.pool = plan.NewPool(cfg.Workers)
			e.runner.SetPool(e.pool)
			e.exec.SetPool(e.pool)
		}
		// The leaf and op closures are built once so steady-state rounds
		// never allocate func values; both recycle the slab slot's previous
		// list instead of allocating a new one.
		e.leafFn = func(prev *topk.List, v int) *topk.List {
			if prev == nil {
				prev = topk.New(k + 1)
			} else {
				prev.Reset()
			}
			if s := e.scr.score[v]; s > 0 {
				prev.Push(topk.Entry{ID: v, Score: s})
			}
			return prev
		}
		e.opFn = func(prev, a, b *topk.List) *topk.List {
			if prev == nil {
				prev = topk.New(k + 1)
			}
			return topk.MergeInto(prev, a, b)
		}
	} else {
		e.scr.indep = make([]*topk.List, len(w.Interests))
	}
	return e, nil
}

// PlanInstance returns the planning instance the engine's live shared plan
// was built from (nil in Independent mode). The online replanner re-poses
// it under observed rates; callers must treat it as immutable.
func (e *Engine) PlanInstance() *plan.Instance { return e.inst }

// InstallPlan hot-swaps the engine's shared aggregation plan for a freshly
// compiled one over the same queries and universe — the replanner's swap
// step. Because all complete plans for the same queries are A-equivalent
// (Lemma 1), swapping changes only the cost of winner determination, never
// its results; the swap is therefore safe at any round boundary.
//
// The swap installs a fresh Runner and Executor, which starts a clean
// incremental-cache epoch: every node of the new plan is invalid until its
// first materialization, and the lastScore tags are zeroed to match the
// empty cache. Must be called from the engine's owning goroutine, between
// Steps — the server's round loop does exactly that.
func (e *Engine) InstallPlan(inst *plan.Instance, p *plan.Plan, prog *plan.Program) error {
	if e.cfg.Sharing != SharedAggregation {
		return fmt.Errorf("core: InstallPlan on a %v engine", e.cfg.Sharing)
	}
	if inst == nil || p == nil || prog == nil {
		return fmt.Errorf("core: InstallPlan with nil instance, plan, or program")
	}
	if inst.NumVars != len(e.w.Advertisers) {
		return fmt.Errorf("core: plan instance has %d variables, engine %d advertisers", inst.NumVars, len(e.w.Advertisers))
	}
	if len(inst.Queries) != len(e.w.Interests) {
		return fmt.Errorf("core: plan instance has %d queries, engine %d phrases", len(inst.Queries), len(e.w.Interests))
	}
	k := len(e.w.SlotFactors)
	e.inst = inst
	e.plan = p
	e.prog = prog
	e.runner = plan.NewRunner(prog, k+1)
	e.exec = plan.NewExecutor[*topk.List](p)
	if e.pool != nil {
		e.runner.SetPool(e.pool)
		e.exec.SetPool(e.pool)
	}
	for i := range e.scr.lastScore {
		e.scr.lastScore[i] = 0
	}
	return nil
}

// Close stops the engine's worker pool, if any; the engine must not be
// stepped afterwards. Close is idempotent: repeated calls are no-ops.
// Engines with Workers ≤ 1 need no Close. Like every Engine method it must
// be called from the owning goroutine — the server's round loop guarantees
// no Step is in flight (the pool's own Close is additionally safe against
// concurrent pool.Close calls).
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
		e.runner.SetPool(nil)
		e.exec.SetPool(nil)
	}
}

// Stats returns the accumulated counters.
func (e *Engine) Stats() Stats { return e.stats }

// Round returns the number of the next round to be stepped.
func (e *Engine) Round() int { return e.round }

// Spent returns how much advertiser i has paid so far through this engine.
// With a shared ledger this is the engine's share of the global spend; the
// ledger's Spent is the cross-shard total.
func (e *Engine) Spent(i int) float64 { return e.spent[i] }

// Remaining returns advertiser i's remaining budget — from the shared
// ledger when one is configured, else from this engine's own accounting.
func (e *Engine) Remaining(i int) float64 {
	if e.cfg.Ledger != nil {
		return e.cfg.Ledger.Remaining(i)
	}
	return e.w.Advertisers[i].Budget - e.spent[i]
}

// AdvertiserReport summarizes one advertiser's day so far.
type AdvertiserReport struct {
	ID        int
	Bid       float64
	Budget    float64
	Spent     float64
	Remaining float64
	// Outstanding is the number of displayed ads still awaiting clicks.
	Outstanding int
	// OutstandingExposure is the total price of those ads — the worst-case
	// debt the throttled bid accounts for (the paper's ω).
	OutstandingExposure float64
}

// Report returns advertiser i's current accounting snapshot.
func (e *Engine) Report(i int) AdvertiserReport {
	a := e.w.Advertisers[i]
	prices, _ := e.clicks.Outstanding(i, e.round)
	exposure := 0.0
	for _, p := range prices {
		exposure += p
	}
	return AdvertiserReport{
		ID:                  i,
		Bid:                 a.Bid,
		Budget:              a.Budget,
		Spent:               e.spent[i],
		Remaining:           e.Remaining(i),
		Outstanding:         len(prices),
		OutstandingExposure: exposure,
	}
}

// SlotResult is one filled slot in one auction. The JSON tags are the
// stable wire schema the network tier's query responses use.
type SlotResult struct {
	Slot       int     `json:"slot"`
	Advertiser int     `json:"advertiser"`
	PricePaid  float64 `json:"price_paid"` // per-click price
}

// RoundReport is the outcome of one engine step. Its Auctions map and
// Clicks slice view engine-owned scratch buffers that the next Step
// overwrites; callers that retain a report across rounds must copy what
// they keep.
type RoundReport struct {
	Round int
	// Auctions maps occurring phrase → its filled slots.
	Auctions map[int][]SlotResult
	// Clicks that arrived this round (from earlier displays).
	Clicks []workload.Click
	// Materialized counts aggregation work performed this round; with
	// IncrementalCache on, only nodes actually recomputed.
	Materialized int
	// Cached counts plan nodes served from the cross-round cache this round
	// (IncrementalCache mode only). Materialized + Cached is what
	// Materialized would be with the cache off.
	Cached int
}

// Step advances one round: occurring[q] says whether phrase q's auction
// runs. Passing nil samples occurrence from the workload's search rates.
func (e *Engine) Step(occurring []bool) RoundReport {
	if occurring == nil {
		e.scr.occ = e.w.SampleRoundInto(e.scr.occ)
		occurring = e.scr.occ
	}
	if len(occurring) != len(e.w.Interests) {
		panic(fmt.Sprintf("core: %d occurrence flags for %d phrases", len(occurring), len(e.w.Interests)))
	}
	clear(e.scr.auctions)
	rep := RoundReport{Round: e.round, Auctions: e.scr.auctions}

	// 0. Round-boundary control plane: sync the shared pacing controller
	// (first engine to reach this round steps it from spend settled through
	// the previous round — before any of this round's charges land) and
	// fold pending lifecycle events into the participation flags.
	if e.cfg.Pacer != nil {
		e.cfg.Pacer.SyncRound(e.round)
	}
	if e.cfg.Lifecycle != nil {
		e.lifeCursor = e.cfg.Lifecycle.Apply(e.lifeCursor, e.round, e.lifeFn)
	}

	// 1. Deliver clicks from earlier rounds and charge budgets. With a
	// shared ledger the admit/forgive decision is its atomic TryCharge
	// (reserve and settle in one CAS); e.spent then tracks this engine's
	// share of the global spend.
	rep.Clicks = e.clicks.Advance(e.round)
	for _, c := range rep.Clicks {
		var charged bool
		if e.cfg.Ledger != nil {
			charged = e.cfg.Ledger.TryCharge(c.Advertiser, c.Price)
		} else {
			charged = e.spent[c.Advertiser]+c.Price <= e.w.Advertisers[c.Advertiser].Budget+1e-9
		}
		if charged {
			e.spent[c.Advertiser] += c.Price
			e.stats.Revenue += c.Price
			e.stats.ClicksCharged++
		} else {
			e.stats.ClicksForgiven++
			e.stats.ForgivenValue += c.Price
		}
	}

	// 2. Per-advertiser round bids under the budget policy, and the shared
	// score slab: score[i] = b̂_i·c_i is computed exactly once here, so
	// every execution strategy reads identical leaf values (no per-path
	// float recomputation to diverge on).
	mCount := e.auctionCounts(occurring)
	roundBid := e.scr.roundBid
	score := e.scr.score
	for i := range roundBid {
		roundBid[i] = 0
		score[i] = 0
	}
	if e.pool != nil && e.cfg.Policy == Throttled {
		// Parallel leaf scoring: per-advertiser work under the throttled
		// policy is an exact enumeration or DP over the outstanding-ad
		// set, so the pool claims advertiser ranges from a shared cursor
		// and each worker appends into its own padded scratch. Writes per
		// advertiser are disjoint and every bid is a pure function of
		// round-start state, so scores are bit-identical to sequential.
		e.pool.RunRange(len(e.w.Advertisers), scoreGrain, e.scoreFn)
	} else {
		for i, a := range e.w.Advertisers {
			if mCount[i] == 0 || !e.active[i] {
				continue
			}
			bid := e.pacedBid(i, a.Bid)
			if bid <= 0 {
				continue
			}
			roundBid[i] = e.policyBid(i, bid, mCount[i], &e.tscr[0])
			score[i] = roundBid[i] * a.Quality
		}
	}

	// 3. Winner determination across the occurring auctions.
	k := len(e.w.SlotFactors)
	var memoResults map[int]*topk.List // forceMemo reference path only
	var slabResults []*topk.List       // forceSlab reference path only
	compiled := false
	switch e.cfg.Sharing {
	case SharedAggregation:
		switch {
		case e.forceMemo:
			leaf := func(v int) *topk.List {
				l := topk.New(k + 1)
				if s := score[v]; s > 0 {
					l.Push(topk.Entry{ID: v, Score: s})
				}
				return l
			}
			if e.cfg.Workers > 1 {
				memoResults, rep.Materialized = executeConcurrent(e.plan, leaf, occurring, e.cfg.Workers)
			} else {
				memoResults, rep.Materialized = plan.Execute(e.plan, leaf, topk.Merge, occurring)
			}
		case e.forceSlab:
			if e.cfg.IncrementalCache {
				e.invalidateChangedScores(mCount, e.exec.Invalidate)
				rep.Materialized, rep.Cached = e.exec.ExecuteIncremental(e.leafFn, e.opFn, occurring)
			} else {
				rep.Materialized = e.exec.Execute(e.leafFn, e.opFn, occurring)
			}
			slabResults = e.exec.Results()
		default:
			// Production path: the flat-compiled instruction stream.
			if e.cfg.IncrementalCache {
				e.invalidateChangedScores(mCount, e.runner.Invalidate)
				rep.Materialized, rep.Cached = e.runner.RunIncremental(score, occurring)
			} else {
				rep.Materialized = e.runner.Run(score, occurring)
			}
			compiled = true
		}
	case Independent:
		for q, occ := range occurring {
			if !occ {
				continue
			}
			l := e.scr.indep[q]
			if l == nil {
				l = topk.New(k + 1)
				e.scr.indep[q] = l
			} else {
				l.Reset()
			}
			scanned := 0
			e.w.Interests[q].ForEach(func(v int) bool {
				if s := score[v]; s > 0 {
					l.Push(topk.Entry{ID: v, Score: s})
				}
				scanned++
				return true
			})
			if scanned > 1 {
				rep.Materialized += scanned - 1
			}
		}
	}

	// 4. Assign, price, display — in phrase order, so the click
	// simulator's random stream is consumed deterministically. Every
	// occurring auction is resolved (possibly with an empty ranking when
	// no participant has a positive score).
	for q := 0; q < len(occurring); q++ {
		if !occurring[q] {
			continue
		}
		e.stats.AuctionsResolved++
		ranked := e.scr.ranked[:0]
		if compiled {
			for _, entry := range e.runner.QueryRun(q) {
				ranked = append(ranked, pricing.Ranked{
					ID:      entry.ID,
					Bid:     roundBid[entry.ID],
					Quality: e.w.Advertisers[entry.ID].Quality,
				})
			}
		} else {
			var list *topk.List
			switch {
			case memoResults != nil:
				list = memoResults[q]
			case slabResults != nil:
				list = slabResults[q]
			default:
				list = e.scr.indep[q]
			}
			if list != nil {
				for i, n := 0, list.Len(); i < n; i++ {
					entry := list.At(i)
					ranked = append(ranked, pricing.Ranked{
						ID:      entry.ID,
						Bid:     roundBid[entry.ID],
						Quality: e.w.Advertisers[entry.ID].Quality,
					})
				}
			}
		}
		e.scr.ranked = ranked
		parts, prices := pricing.AppendPricesWithReserve(e.scr.parts[:0], e.scr.prices[:0], e.cfg.Pricing, ranked, e.w.SlotFactors, e.cfg.Reserve)
		if e.cfg.Reserve > 0 {
			e.scr.parts = parts // retain grown capacity across auctions
		}
		e.scr.prices = prices
		slots := e.scr.slots[q][:0]
		for j := 0; j < len(prices) && j < k; j++ {
			adv := parts[j]
			if adv.Bid <= 0 {
				break
			}
			ctr := adv.Quality * e.w.SlotFactors[j]
			if ctr > 1 {
				ctr = 1
			}
			e.clicks.Display(adv.ID, prices[j], ctr, e.round)
			e.stats.AdsDisplayed++
			slots = append(slots, SlotResult{Slot: j, Advertiser: adv.ID, PricePaid: prices[j]})
		}
		e.scr.slots[q] = slots
		if len(slots) > 0 {
			rep.Auctions[q] = slots
		}
	}

	e.stats.NodesMaterialized += rep.Materialized
	e.stats.NodesCached += rep.Cached
	e.stats.Rounds++
	e.round++
	return rep
}

// Drain advances rounds with no occurring auctions until every pending
// click has resolved, so end-of-day accounting is complete.
func (e *Engine) Drain() {
	none := make([]bool, len(e.w.Interests))
	for e.clicks.PendingCount() > 0 {
		e.Step(none)
	}
}

// invalidateChangedScores drops cached plan values for every leaf whose
// effective score changed since its cached value was computed
// (IncrementalCache mode). Advertisers outside this round's auctions are
// skipped: their leaves are not needed, and their cached values stay tagged
// with the score they were built from. The invalidate func is the active
// executor's (compiled runner or reference slab executor).
func (e *Engine) invalidateChangedScores(mCount []int, invalidate func(int)) {
	score := e.scr.score
	last := e.scr.lastScore
	for i := range mCount {
		if mCount[i] == 0 {
			continue
		}
		if s := score[i]; s != last[i] {
			invalidate(i)
			last[i] = s
		}
	}
}

// auctionCounts computes m_i: the number of occurring auctions each
// advertiser takes part in this round. The returned slice is the engine's
// round scratch, overwritten by the next call.
func (e *Engine) auctionCounts(occurring []bool) []int {
	m := e.scr.mCount
	for i := range m {
		m[i] = 0
	}
	for q, occ := range occurring {
		if !occ {
			continue
		}
		e.w.Interests[q].ForEach(func(i int) bool {
			m[i]++
			return true
		})
	}
	return m
}

// pacedBid scales advertiser i's stated bid by its published pacing factor
// (1 when no pacer is attached): the controller's throttle applied before
// the budget policy, so the Section IV machinery computes b̂ from the
// effective — paced — bid.
func (e *Engine) pacedBid(i int, bid float64) float64 {
	if e.cfg.Pacer == nil {
		return bid
	}
	return bid * e.cfg.Pacer.Factor(i)
}

// policyBid computes the advertiser's bid for this round under the
// configured budget policy, from the effective stated bid (already pacing-
// scaled). ts is the calling worker's scratch; parallel scoring passes a
// distinct one per worker, the sequential path tscr[0].
func (e *Engine) policyBid(i int, bid float64, m int, ts *throttleScratch) float64 {
	remaining := e.Remaining(i)
	if remaining <= 0 {
		return 0
	}
	switch e.cfg.Policy {
	case Naive:
		if bid < remaining {
			return bid
		}
		return remaining
	case Throttled:
		prices, ctrs := e.clicks.AppendOutstanding(ts.outPrices[:0], ts.outCTRs[:0], i, e.round)
		ts.outPrices, ts.outCTRs = prices, ctrs
		omega := 0.0
		for _, p := range prices {
			omega += p
		}
		// Paper's fast path: even if every outstanding ad is clicked, the
		// advertiser can still afford m full bids — no throttling needed.
		if omega <= remaining-float64(m)*bid {
			return bid
		}
		ads := ts.ads[:0]
		for j := range prices {
			ads = append(ads, budget.OutstandingAd{Price: prices[j], CTR: ctrs[j]})
		}
		ts.ads = ads
		if len(ads) <= e.cfg.ThrottleEnumLimit {
			return budget.ExactThrottledBid(bid, remaining, m, ads)
		}
		return budget.ExactThrottledBidDP(bid, remaining, m, ads, e.cfg.ThrottleUnit)
	default:
		panic(fmt.Sprintf("core: unknown budget policy %d", e.cfg.Policy))
	}
}
