package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sharedwd/internal/auction"
	"sharedwd/internal/bitset"
	"sharedwd/internal/plan"
	"sharedwd/internal/pricing"
	"sharedwd/internal/topk"
	"sharedwd/internal/workload"
)

func smallWorkload(seed int64) *workload.Workload {
	cfg := workload.DefaultConfig()
	cfg.NumAdvertisers = 60
	cfg.NumPhrases = 8
	cfg.NumTopics = 3
	cfg.Slots = 3
	cfg.Seed = seed
	return workload.Generate(cfg)
}

func TestNewValidation(t *testing.T) {
	w := smallWorkload(1)
	bad := DefaultConfig()
	bad.ClickHazard = 0
	if _, err := New(w, bad); err == nil {
		t.Fatal("zero hazard should be rejected")
	}
	bad = DefaultConfig()
	bad.ThrottleUnit = 0
	if _, err := New(w, bad); err == nil {
		t.Fatal("zero throttle unit should be rejected")
	}
	pq := workload.DefaultConfig()
	pq.PerPhraseQuality = true
	if _, err := New(workload.Generate(pq), DefaultConfig()); err == nil {
		t.Fatal("per-phrase-quality workload should be rejected by the aggregation engine")
	}
}

func TestStepResolvesOccurringAuctions(t *testing.T) {
	w := smallWorkload(2)
	eng, err := New(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]bool, len(w.Interests))
	occ[0], occ[3] = true, true
	rep := eng.Step(occ)
	if len(rep.Auctions) != 2 {
		t.Fatalf("resolved %d auctions, want 2", len(rep.Auctions))
	}
	for q, slots := range rep.Auctions {
		if q != 0 && q != 3 {
			t.Fatalf("unexpected auction for phrase %d", q)
		}
		if len(slots) == 0 || len(slots) > len(w.SlotFactors) {
			t.Fatalf("phrase %d filled %d slots", q, len(slots))
		}
		seen := map[int]bool{}
		for _, s := range slots {
			if seen[s.Advertiser] {
				t.Fatal("advertiser won two slots in one auction")
			}
			seen[s.Advertiser] = true
			if s.PricePaid < 0 {
				t.Fatal("negative price")
			}
		}
	}
	if eng.Stats().AuctionsResolved != 2 || eng.Stats().Rounds != 1 {
		t.Fatalf("stats: %+v", eng.Stats())
	}
}

// TestSharedMatchesIndependentOutcomes: shared-plan winner determination
// must award exactly the same slots at the same prices as per-auction scans
// under the naive policy with fresh budgets (identical inputs).
func TestSharedMatchesIndependentOutcomes(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		w1 := smallWorkload(seed)
		w2 := smallWorkload(seed)
		cfgS := DefaultConfig()
		cfgS.Policy = Naive
		cfgI := cfgS
		cfgI.Sharing = Independent
		engS, err := New(w1, cfgS)
		if err != nil {
			t.Fatal(err)
		}
		engI, err := New(w2, cfgI)
		if err != nil {
			t.Fatal(err)
		}
		occ := make([]bool, len(w1.Interests))
		for q := range occ {
			occ[q] = q%2 == 0
		}
		repS := engS.Step(occ)
		repI := engI.Step(occ)
		if len(repS.Auctions) != len(repI.Auctions) {
			t.Fatalf("auction counts differ: %d vs %d", len(repS.Auctions), len(repI.Auctions))
		}
		for q, slotsS := range repS.Auctions {
			slotsI := repI.Auctions[q]
			if len(slotsS) != len(slotsI) {
				t.Fatalf("phrase %d slot counts differ", q)
			}
			for j := range slotsS {
				if slotsS[j] != slotsI[j] {
					t.Fatalf("phrase %d slot %d: shared %+v vs independent %+v",
						q, j, slotsS[j], slotsI[j])
				}
			}
		}
		// Sharing must do less aggregation work.
		if repS.Materialized >= repI.Materialized {
			t.Fatalf("shared materialized %d ≥ independent %d", repS.Materialized, repI.Materialized)
		}
	}
}

// TestConcurrentMatchesSequential: the parallel DAG executor returns
// identical results and materialization counts across worker counts.
func TestConcurrentMatchesSequential(t *testing.T) {
	w := smallWorkload(7)
	queries := make([]plan.Query, len(w.Interests))
	for q := range w.Interests {
		queries[q] = plan.Query{Vars: w.Interests[q], Rate: w.Rates[q]}
	}
	inst := plan.MustInstance(len(w.Advertisers), queries)
	eng, err := New(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = inst
	rng := rand.New(rand.NewSource(3))
	k := len(w.SlotFactors)
	leaf := func(v int) *topk.List {
		l := topk.New(k + 1)
		l.Push(topk.Entry{ID: v, Score: w.Advertisers[v].EffectiveBid()})
		return l
	}
	for trial := 0; trial < 20; trial++ {
		occ := make([]bool, len(w.Interests))
		for q := range occ {
			occ[q] = rng.Intn(2) == 0
		}
		seq, matSeq := plan.Execute(eng.plan, leaf, topk.Merge, occ)
		for _, workers := range []int{1, 2, 8} {
			con, matCon := executeConcurrent(eng.plan, leaf, occ, workers)
			if matSeq != matCon {
				t.Fatalf("materialized %d vs %d (workers=%d)", matSeq, matCon, workers)
			}
			if len(seq) != len(con) {
				t.Fatalf("result sizes differ")
			}
			for qi, l := range seq {
				if !l.Equal(con[qi]) {
					t.Fatalf("query %d differs with %d workers", qi, workers)
				}
			}
		}
	}
}

func TestConcurrentEmptyRound(t *testing.T) {
	w := smallWorkload(8)
	eng, err := New(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]bool, len(w.Interests)) // nothing occurs
	res, mat := executeConcurrent(eng.plan, func(v int) *topk.List { return topk.New(2) }, occ, 4)
	if len(res) != 0 || mat != 0 {
		t.Fatalf("empty round: %d results, %d materialized", len(res), mat)
	}
}

// TestBudgetNeverExceeded: the cardinal accounting invariant, under both
// policies, across many rounds with delayed clicks.
func TestBudgetNeverExceeded(t *testing.T) {
	for _, policy := range []BudgetPolicy{Naive, Throttled} {
		w := smallWorkload(11)
		// Tighten budgets to force the boundary.
		for i := range w.Advertisers {
			w.Advertisers[i].Budget = 5 + float64(i%7)
		}
		cfg := DefaultConfig()
		cfg.Policy = policy
		eng, err := New(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 60; r++ {
			eng.Step(nil)
			w.PerturbBids(0.05)
		}
		eng.Drain()
		for i := range w.Advertisers {
			if eng.Spent(i) > w.Advertisers[i].Budget+1e-6 {
				t.Fatalf("%v policy: advertiser %d spent %v of budget %v",
					policy, i, eng.Spent(i), w.Advertisers[i].Budget)
			}
		}
	}
}

// TestThrottledForgivesLessThanNaive: with tight budgets and slow clicks,
// the throttled policy loses (forgives) materially less revenue.
func TestThrottledForgivesLessThanNaive(t *testing.T) {
	run := func(policy BudgetPolicy) Stats {
		w := smallWorkload(13)
		for i := range w.Advertisers {
			w.Advertisers[i].Budget = 3
		}
		cfg := DefaultConfig()
		cfg.Policy = policy
		cfg.ClickHazard = 0.15
		cfg.ClickHorizon = 40
		eng, err := New(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		occ := make([]bool, len(w.Interests))
		for q := range occ {
			occ[q] = true
		}
		for r := 0; r < 40; r++ {
			eng.Step(occ)
		}
		eng.Drain()
		return eng.Stats()
	}
	naive := run(Naive)
	throttled := run(Throttled)
	if naive.ForgivenValue == 0 {
		t.Fatal("scenario failed to induce forgiven clicks under naive policy")
	}
	if throttled.ForgivenValue > 0.5*naive.ForgivenValue {
		t.Fatalf("throttled forgave %v vs naive %v; want < half",
			throttled.ForgivenValue, naive.ForgivenValue)
	}
}

func TestGamingScenario(t *testing.T) {
	naive, err := RunGamingExperiment(5, 40, 20, Naive)
	if err != nil {
		t.Fatal(err)
	}
	throttled, err := RunGamingExperiment(5, 40, 20, Throttled)
	if err != nil {
		t.Fatal(err)
	}
	if naive.OverDelivery() < 2 {
		t.Fatalf("naive over-delivery = %.2f; the gaming attack should work", naive.OverDelivery())
	}
	if throttled.OverDelivery() > 0.6*naive.OverDelivery() {
		t.Fatalf("throttled over-delivery = %.2f vs naive %.2f; throttling should blunt the attack",
			throttled.OverDelivery(), naive.OverDelivery())
	}
	if throttled.GamerPaid > throttled.GamerBudget+1e-9 || naive.GamerPaid > naive.GamerBudget+1e-9 {
		t.Fatal("no policy may charge above budget")
	}
	if naive.GamerWins <= throttled.GamerWins {
		t.Fatalf("naive wins %d should exceed throttled wins %d", naive.GamerWins, throttled.GamerWins)
	}
}

func TestAdvertiserReport(t *testing.T) {
	w := smallWorkload(31)
	eng, err := New(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]bool, len(w.Interests))
	for q := range occ {
		occ[q] = true
	}
	rep := eng.Step(occ)
	var winner int = -1
	for _, slots := range rep.Auctions {
		if len(slots) > 0 {
			winner = slots[0].Advertiser
			break
		}
	}
	if winner == -1 {
		t.Fatal("no winner to report on")
	}
	r := eng.Report(winner)
	if r.ID != winner || r.Budget != w.Advertisers[winner].Budget {
		t.Fatalf("report identity wrong: %+v", r)
	}
	if r.Outstanding == 0 || r.OutstandingExposure <= 0 {
		t.Fatalf("winner should have outstanding ads: %+v", r)
	}
	if r.Remaining != r.Budget-r.Spent {
		t.Fatalf("remaining inconsistent: %+v", r)
	}
}

func TestReservePriceEnforced(t *testing.T) {
	w := smallWorkload(23)
	cfg := DefaultConfig()
	cfg.Policy = Naive
	cfg.Reserve = 2.0
	eng, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]bool, len(w.Interests))
	for q := range occ {
		occ[q] = true
	}
	filled := 0
	for r := 0; r < 5; r++ {
		rep := eng.Step(occ)
		for _, slots := range rep.Auctions {
			for _, s := range slots {
				filled++
				if s.PricePaid < cfg.Reserve-1e-9 {
					t.Fatalf("price %v below reserve %v", s.PricePaid, cfg.Reserve)
				}
				if w.Advertisers[s.Advertiser].Bid < cfg.Reserve {
					t.Fatalf("sub-reserve bidder %d won a slot", s.Advertiser)
				}
			}
		}
	}
	if filled == 0 {
		t.Fatal("reserve killed every auction; scenario broken")
	}
}

func TestDrainResolvesEverything(t *testing.T) {
	w := smallWorkload(17)
	eng, err := New(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		eng.Step(nil)
	}
	eng.Drain()
	if eng.clicks.PendingCount() != 0 {
		t.Fatalf("pending = %d after drain", eng.clicks.PendingCount())
	}
}

// TestQuickRevenueConservation: revenue equals Σ spent; forgiven value is
// never charged; displayed counts bound click counts.
func TestQuickAccountingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		w := smallWorkload(seed%100 + 1)
		rng := rand.New(rand.NewSource(seed))
		for i := range w.Advertisers {
			w.Advertisers[i].Budget = 2 + rng.Float64()*20
		}
		cfg := DefaultConfig()
		if rng.Intn(2) == 0 {
			cfg.Policy = Naive
		}
		if rng.Intn(2) == 0 {
			cfg.Pricing = pricing.VCG
		}
		eng, err := New(w, cfg)
		if err != nil {
			return false
		}
		for r := 0; r < 15; r++ {
			eng.Step(nil)
		}
		eng.Drain()
		st := eng.Stats()
		totalSpent := 0.0
		for i := range w.Advertisers {
			totalSpent += eng.Spent(i)
		}
		if math.Abs(totalSpent-st.Revenue) > 1e-6 {
			return false
		}
		return st.ClicksCharged+st.ClicksForgiven <= st.AdsDisplayed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineWithCustomWorkload(t *testing.T) {
	advertisers := []auction.Advertiser{
		{ID: 0, Bid: 5, Quality: 1, Budget: 100},
		{ID: 1, Bid: 4, Quality: 1, Budget: 100},
		{ID: 2, Bid: 3, Quality: 1, Budget: 100},
	}
	all := bitset.FromIndices(3, 0, 1, 2)
	w, err := workload.NewCustom(advertisers, []bitset.Set{all}, []float64{1}, []float64{0.5, 0.25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Step([]bool{true})
	slots := rep.Auctions[0]
	if len(slots) != 2 || slots[0].Advertiser != 0 || slots[1].Advertiser != 1 {
		t.Fatalf("slots = %+v", slots)
	}
	// GSP prices: slot0 pays next effective bid 4; slot1 pays 3.
	if math.Abs(slots[0].PricePaid-4) > 1e-9 || math.Abs(slots[1].PricePaid-3) > 1e-9 {
		t.Fatalf("prices = %v, %v", slots[0].PricePaid, slots[1].PricePaid)
	}
}

func BenchmarkRoundSharedVsIndependent(b *testing.B) {
	for _, mode := range []SharingMode{SharedAggregation, Independent} {
		cfg := workload.DefaultConfig()
		cfg.NumAdvertisers = 2000
		cfg.NumPhrases = 64
		cfg.NumTopics = 8
		w := workload.Generate(cfg)
		ecfg := DefaultConfig()
		ecfg.Sharing = mode
		ecfg.Policy = Naive
		eng, err := New(w, ecfg)
		if err != nil {
			b.Fatal(err)
		}
		occ := make([]bool, len(w.Interests))
		for q := range occ {
			occ[q] = q%2 == 0
		}
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Step(occ)
			}
		})
	}
}

func BenchmarkRoundWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		cfg := workload.DefaultConfig()
		cfg.NumAdvertisers = 2000
		cfg.NumPhrases = 64
		cfg.NumTopics = 8
		w := workload.Generate(cfg)
		ecfg := DefaultConfig()
		ecfg.Workers = workers
		ecfg.Policy = Naive
		eng, err := New(w, ecfg)
		if err != nil {
			b.Fatal(err)
		}
		occ := make([]bool, len(w.Interests))
		for q := range occ {
			occ[q] = true
		}
		b.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Step(occ)
			}
		})
	}
}
