package core

import (
	"math/rand"
	"testing"

	"sharedwd/internal/pricing"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/workload"
)

// TestEngineStrategyEquivalence is the engine-level equivalence property:
// over 4 scenarios × 60 randomized rounds (random occurrence vectors, bid
// perturbation, budgets that exhaust mid-day, GSP and VCG, naive and
// throttled policies), every execution strategy — slab reference, memo,
// flat-compiled, incremental variants of both slab and compiled, pooled
// variants at 2, 4, and 8 workers (including forced-frontier scheduling and
// mid-run plan hot-swaps), plus the unshared Independent baseline — must
// produce identical RoundReports, Stats, and final per-advertiser
// accounting.
// Materialization counters for the shared strategies are normalized by
// Materialized + Cached, which must equal the cache-off cost exactly
// (Independent uses a different cost metric and is exempt from that check,
// but its winners, prices, clicks, and revenue must still match).
func TestEngineStrategyEquivalence(t *testing.T) {
	scenarios := []struct {
		name    string
		rule    pricing.Rule
		policy  BudgetPolicy
		reserve float64
	}{
		{"gsp-naive", pricing.GSP, Naive, 0},
		{"vcg-naive", pricing.VCG, Naive, 0},
		{"gsp-throttled", pricing.GSP, Throttled, 0},
		{"vcg-throttled-reserve", pricing.VCG, Throttled, 0.4},
	}
	type variant struct {
		name        string
		workers     int
		incremental bool
		memo        bool
		slab        bool
		independent bool
		// frontier drops the pooled runner's sequential cutoff to 0, so
		// every dirty cone — even the small cached-steady-state ones —
		// exercises the dependency-release scheduler.
		frontier bool
		// swap hot-swaps a freshly compiled plan (rotated rates) into the
		// engine every 20 rounds; results must be unchanged (Lemma 1), and
		// the swap must reset the new runner's frontier state, not just the
		// score slab.
		swap bool
	}
	variants := []variant{
		{name: "slab", workers: 1, slab: true}, // reference
		{name: "memo", workers: 1, memo: true},
		{name: "compiled", workers: 1},
		{name: "slab-incremental", workers: 1, slab: true, incremental: true},
		{name: "compiled-incremental", workers: 1, incremental: true},
		{name: "slab-pool", workers: 4, slab: true},
		{name: "compiled-pool", workers: 4},
		{name: "slab-pool-incremental", workers: 4, slab: true, incremental: true},
		{name: "compiled-pool-incremental", workers: 4, incremental: true},
		{name: "compiled-pool2-incremental", workers: 2, incremental: true},
		{name: "compiled-pool8-frontier", workers: 8, frontier: true},
		{name: "compiled-pool8-incremental-frontier", workers: 8, incremental: true, frontier: true},
		{name: "compiled-pool-swap", workers: 4, frontier: true, swap: true},
		{name: "compiled-pool-incremental-swap", workers: 4, incremental: true, frontier: true, swap: true},
		{name: "independent", workers: 1, independent: true},
	}
	for si, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			wcfg := workload.DefaultConfig()
			wcfg.NumAdvertisers = 120
			wcfg.NumPhrases = 16
			wcfg.NumTopics = 4
			wcfg.MinBudget = 2 // small: many advertisers exhaust mid-run
			wcfg.MaxBudget = 20
			wcfg.Seed = int64(100 + si)

			base := DefaultConfig()
			base.Pricing = sc.rule
			base.Policy = sc.policy
			base.Reserve = sc.reserve
			base.Sharing = SharedAggregation

			engines := make([]*Engine, len(variants))
			worlds := make([]*workload.Workload, len(variants))
			for i, v := range variants {
				cfg := base
				cfg.Workers = v.workers
				cfg.IncrementalCache = v.incremental
				if v.independent {
					cfg.Sharing = Independent
				}
				// Each engine gets its own same-seed workload so identical
				// stepping consumes identical random streams.
				worlds[i] = workload.Generate(wcfg)
				eng, err := New(worlds[i], cfg)
				if err != nil {
					t.Fatal(err)
				}
				eng.forceMemo = v.memo
				eng.forceSlab = v.slab
				if v.frontier {
					eng.runner.SetSequentialCutoff(0)
				}
				engines[i] = eng
				defer eng.Close()
			}

			rng := rand.New(rand.NewSource(wcfg.Seed * 7))
			occ := make([]bool, wcfg.NumPhrases)
			const rounds = 60
			for round := 0; round < rounds; round++ {
				for q := range occ {
					occ[q] = rng.Float64() < 0.6
				}
				ref := engines[0].Step(occ)
				refFull := ref.Materialized + ref.Cached
				for i := 1; i < len(engines); i++ {
					rep := engines[i].Step(occ)
					compareReports(t, variants[i].name, round, ref, rep)
					// Swap variants run a structurally different (but
					// A-equivalent) plan after their first hot-swap, so
					// their aggregation cost legitimately diverges; results
					// above must still match exactly.
					exemptCost := variants[i].independent || (variants[i].swap && round >= 20)
					if got := rep.Materialized + rep.Cached; got != refFull && !exemptCost {
						t.Fatalf("%s round %d: materialized %d + cached %d, want %d total",
							variants[i].name, round, rep.Materialized, rep.Cached, refFull)
					}
					if !variants[i].incremental && rep.Cached != 0 {
						t.Fatalf("%s round %d: non-incremental engine reported %d cached nodes",
							variants[i].name, round, rep.Cached)
					}
					if t.Failed() {
						t.FailNow()
					}
				}
				if round%3 == 2 {
					for _, w := range worlds {
						w.PerturbBids(0.15)
					}
				}
				// Hot-swap a replan into the swap variants mid-run: a plan
				// rebuilt under rotated rates has different structure but,
				// being A-equivalent, must not perturb any later report.
				if round%20 == 19 {
					for i, v := range variants {
						if !v.swap {
							continue
						}
						base := engines[i].PlanInstance()
						rates := make([]float64, len(base.Queries))
						for q := range rates {
							rates[q] = base.Queries[(q+round)%len(rates)].Rate + 0.01
						}
						inst2, p2, prog2, err := sharedagg.BuildCompiledWithRates(base, rates)
						if err != nil {
							t.Fatal(err)
						}
						if err := engines[i].InstallPlan(inst2, p2, prog2); err != nil {
							t.Fatal(err)
						}
						if v.frontier {
							engines[i].runner.SetSequentialCutoff(0)
						}
					}
				}
			}

			for _, e := range engines {
				e.Drain()
			}
			refStats := engines[0].Stats()
			for i := 1; i < len(engines); i++ {
				es := engines[i].Stats()
				if es.NodesMaterialized+es.NodesCached != refStats.NodesMaterialized && !variants[i].independent && !variants[i].swap {
					t.Errorf("%s: lifetime materialized %d + cached %d, want %d",
						variants[i].name, es.NodesMaterialized, es.NodesCached, refStats.NodesMaterialized)
				}
				es.NodesMaterialized, es.NodesCached = refStats.NodesMaterialized, refStats.NodesCached
				if es != refStats {
					t.Errorf("%s: final stats %+v, want %+v", variants[i].name, es, refStats)
				}
				for a := range worlds[0].Advertisers {
					if got, want := engines[i].Spent(a), engines[0].Spent(a); got != want {
						t.Errorf("%s: advertiser %d spent %v, want %v", variants[i].name, a, got, want)
						break
					}
				}
			}
		})
	}
}

func compareReports(t *testing.T, name string, round int, want, got RoundReport) {
	t.Helper()
	if got.Round != want.Round {
		t.Errorf("%s round %d: report round %d, want %d", name, round, got.Round, want.Round)
	}
	if len(got.Clicks) != len(want.Clicks) {
		t.Errorf("%s round %d: %d clicks, want %d", name, round, len(got.Clicks), len(want.Clicks))
		return
	}
	for i := range want.Clicks {
		if got.Clicks[i] != want.Clicks[i] {
			t.Errorf("%s round %d: click %d = %+v, want %+v", name, round, i, got.Clicks[i], want.Clicks[i])
			return
		}
	}
	if len(got.Auctions) != len(want.Auctions) {
		t.Errorf("%s round %d: %d auctions with slots, want %d", name, round, len(got.Auctions), len(want.Auctions))
		return
	}
	for q, wantSlots := range want.Auctions {
		gotSlots, ok := got.Auctions[q]
		if !ok || len(gotSlots) != len(wantSlots) {
			t.Errorf("%s round %d phrase %d: slots %v, want %v", name, round, q, gotSlots, wantSlots)
			return
		}
		for j := range wantSlots {
			if gotSlots[j] != wantSlots[j] {
				t.Errorf("%s round %d phrase %d slot %d: %+v, want %+v",
					name, round, q, j, gotSlots[j], wantSlots[j])
				return
			}
		}
	}
}
