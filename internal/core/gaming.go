package core

import (
	"fmt"

	"sharedwd/internal/auction"
	"sharedwd/internal/bitset"
	"sharedwd/internal/workload"
)

// GamingResult summarizes the Section-IV gaming experiment for one budget
// policy: how much click value the near-broke "gamer" extracted versus what
// he could actually pay.
type GamingResult struct {
	Policy BudgetPolicy

	GamerBudget float64
	// GamerPaid is what the gamer was actually charged (≤ budget, always).
	GamerPaid float64
	// GamerClickValue is the total price of all the gamer's clicks —
	// charged or forgiven. Under a naive policy this exceeds the budget;
	// the excess is the search provider's lost revenue.
	GamerClickValue float64
	// GamerWins counts auctions the gamer won.
	GamerWins int

	Revenue       float64
	ForgivenValue float64
}

// OverDelivery is the ratio of click value the gamer received to his
// budget; values materially above 1 mean the system was gamed.
func (g GamingResult) OverDelivery() float64 {
	if g.GamerBudget == 0 {
		return 0
	}
	return g.GamerClickValue / g.GamerBudget
}

// RunGamingExperiment repeats RunGamingScenario over reps independent
// seeds and returns the averaged result. A single run is noisy — one
// early-arriving click ends the attack — so the paper-style comparison
// between policies is made on the mean.
func RunGamingExperiment(seed int64, rounds, reps int, policy BudgetPolicy) (GamingResult, error) {
	if reps <= 0 {
		return GamingResult{}, fmt.Errorf("core: reps must be positive")
	}
	var avg GamingResult
	for r := 0; r < reps; r++ {
		res, err := RunGamingScenario(seed+int64(r)*7919, rounds, policy)
		if err != nil {
			return GamingResult{}, err
		}
		avg.GamerBudget = res.GamerBudget
		avg.GamerPaid += res.GamerPaid
		avg.GamerClickValue += res.GamerClickValue
		avg.GamerWins += res.GamerWins
		avg.Revenue += res.Revenue
		avg.ForgivenValue += res.ForgivenValue
	}
	f := float64(reps)
	avg.Policy = policy
	avg.GamerPaid /= f
	avg.GamerClickValue /= f
	avg.GamerWins = avg.GamerWins / reps
	avg.Revenue /= f
	avg.ForgivenValue /= f
	return avg, nil
}

// RunGamingScenario reproduces the Section-IV demonstration: one
// high-volume bid phrase; a "gamer" (advertiser 0) with a high bid but a
// budget worth roughly one click; competitors with ample budgets. Clicks
// are slow to arrive, so a naive policy lets the gamer win round after
// round before any click lands — and then forgives the payments his budget
// cannot cover. The throttled policy drives b̂ toward zero as his
// outstanding ads pile up.
func RunGamingScenario(seed int64, rounds int, policy BudgetPolicy) (GamingResult, error) {
	const n = 6
	advertisers := make([]auction.Advertiser, n)
	// The gamer: top effective bid, tiny budget (≈ one click at GSP price).
	advertisers[0] = auction.Advertiser{ID: 0, Bid: 4.0, Quality: 1.0, Budget: 4.0}
	for i := 1; i < n; i++ {
		advertisers[i] = auction.Advertiser{
			ID: i, Bid: 3.0 - 0.2*float64(i), Quality: 1.0, Budget: 1e6,
		}
	}
	everyone := bitset.New(n)
	for i := 0; i < n; i++ {
		everyone.Add(i)
	}
	w, err := workload.NewCustom(advertisers,
		[]bitset.Set{everyone}, []float64{1}, []float64{0.9, 0.5}, seed)
	if err != nil {
		return GamingResult{}, err
	}

	cfg := DefaultConfig()
	cfg.Policy = policy
	cfg.ClickHazard = 0.08 // slow clicks: many auctions before payment is known
	cfg.ClickHorizon = 60
	eng, err := New(w, cfg)
	if err != nil {
		return GamingResult{}, err
	}

	res := GamingResult{Policy: policy, GamerBudget: advertisers[0].Budget}
	occurring := []bool{true}
	countRound := func(rep RoundReport) {
		for _, slots := range rep.Auctions {
			for _, s := range slots {
				if s.Advertiser == 0 {
					res.GamerWins++
				}
			}
		}
		for _, c := range rep.Clicks {
			if c.Advertiser == 0 {
				res.GamerClickValue += c.Price
			}
		}
	}
	for r := 0; r < rounds; r++ {
		countRound(eng.Step(occurring))
	}
	// Let every outstanding click resolve before accounting.
	none := []bool{false}
	for eng.clicks.PendingCount() > 0 {
		countRound(eng.Step(none))
	}
	res.GamerPaid = eng.Spent(0)
	res.Revenue = eng.Stats().Revenue
	res.ForgivenValue = eng.Stats().ForgivenValue
	if res.GamerPaid > res.GamerBudget+1e-9 {
		return res, fmt.Errorf("core: charged the gamer %v above budget %v", res.GamerPaid, res.GamerBudget)
	}
	return res, nil
}
