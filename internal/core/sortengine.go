package core

import (
	"fmt"
	"sort"

	"sharedwd/internal/pricing"
	"sharedwd/internal/sharedsort"
	"sharedwd/internal/ta"
	"sharedwd/internal/topk"
	"sharedwd/internal/workload"
)

// SortEngine resolves rounds in the Section III regime: the
// advertiser-specific click-through factor c_i^q differs per bid phrase, so
// top-k aggregates of b·c cannot be shared across phrases — only the bids
// are common. Winner determination per occurring phrase runs the threshold
// algorithm over two sorted access paths: the shared merge-sort forest
// supplies advertisers by descending bid (work shared across phrases and
// cached within a round), and a precomputed static order supplies them by
// descending quality (the paper's footnote: quality factors change rarely
// and their orderings are precomputed).
//
// Thread safety: like Engine, a SortEngine is single-threaded by contract —
// Step, Drain, Stats, Spent, and Close must run on one goroutine, and
// RoundReport.Auctions views per-round scratch that must be copied to
// outlive the next Step.
type SortEngine struct {
	cfg Config
	w   *workload.Workload

	plan *sharedsort.Plan
	// byQuality[q] is phrase q's advertisers sorted by descending c_i^q,
	// with the matching value array for the TA source.
	byQuality [][]int
	qualVals  [][]float64

	clicks *workload.ClickSim
	spent  []float64
	round  int
	stats  SortStats

	// Lifecycle/pacing state, mirroring Engine: active bidder flags driven
	// by the schedule's join/leave events, with a pinned callback so the
	// per-round Apply stays allocation-free.
	active     []bool
	lifeCursor int
	lifeFn     func(workload.LifecycleEvent)
}

// SortStats accumulates SortEngine counters.
type SortStats struct {
	Rounds           int
	AuctionsResolved int
	// SortedAccesses sums threshold-algorithm sorted accesses — the work
	// metric TA minimizes.
	SortedAccesses int
	// MergePulls sums merge-operator invocations in the shared sort forest.
	MergePulls    int
	Revenue       float64
	ClicksCharged int
	AdsDisplayed  int
}

// NewSortEngine builds the Section III pipeline for a per-phrase-quality
// workload (workload.Config.PerPhraseQuality). The shared merge-sort plan
// is built offline from the interest sets and search rates.
func NewSortEngine(w *workload.Workload, cfg Config) (*SortEngine, error) {
	if w.Quality == nil {
		return nil, fmt.Errorf("core: SortEngine needs a per-phrase-quality workload; use Engine for the global-quality regime")
	}
	if cfg.ClickHazard <= 0 || cfg.ClickHazard > 1 || cfg.ClickHorizon < 1 {
		return nil, fmt.Errorf("core: invalid click model (hazard %v, horizon %d)", cfg.ClickHazard, cfg.ClickHorizon)
	}
	p, err := sharedsort.Build(len(w.Advertisers), w.Interests, w.Rates, sharedsort.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: building shared sort plan: %w", err)
	}
	if cfg.Lifecycle != nil && cfg.Lifecycle.NumAdvertisers() != len(w.Advertisers) {
		return nil, fmt.Errorf("core: lifecycle over %d advertisers, workload has %d", cfg.Lifecycle.NumAdvertisers(), len(w.Advertisers))
	}
	if cfg.Pacer != nil && cfg.Pacer.N() != len(w.Advertisers) {
		return nil, fmt.Errorf("core: pacer over %d advertisers, workload has %d", cfg.Pacer.N(), len(w.Advertisers))
	}
	e := &SortEngine{
		cfg:    cfg,
		w:      w,
		plan:   p,
		clicks: workload.NewClickSim(w.Rng(), cfg.ClickHazard, cfg.ClickHorizon),
		spent:  make([]float64, len(w.Advertisers)),
		active: make([]bool, len(w.Advertisers)),
	}
	for i := range e.active {
		e.active[i] = cfg.Lifecycle == nil || cfg.Lifecycle.InitiallyActive(i)
	}
	e.lifeFn = func(ev workload.LifecycleEvent) {
		switch ev.Kind {
		case workload.LifecycleJoin:
			e.active[ev.Advertiser] = true
		case workload.LifecycleLeave:
			e.active[ev.Advertiser] = false
		}
	}
	e.byQuality = make([][]int, len(w.Interests))
	e.qualVals = make([][]float64, len(w.Interests))
	for q := range w.Interests {
		ids := w.Interests[q].Indices()
		sort.Slice(ids, func(a, b int) bool {
			qa, qb := w.QualityFor(q, ids[a]), w.QualityFor(q, ids[b])
			if qa != qb {
				return qa > qb
			}
			return ids[a] < ids[b]
		})
		vals := make([]float64, len(ids))
		for i, id := range ids {
			vals[i] = w.QualityFor(q, id)
		}
		e.byQuality[q] = ids
		e.qualVals[q] = vals
	}
	return e, nil
}

// Stats returns the accumulated counters.
func (e *SortEngine) Stats() SortStats { return e.stats }

// Spent returns how much advertiser i has paid so far.
func (e *SortEngine) Spent(i int) float64 { return e.spent[i] }

// Step advances one round. occurring[q] selects the round's phrases; nil
// samples from the workload's search rates. Budget handling follows the
// naive policy (throttling composes with TA through the same bid vector:
// callers can pre-throttle by adjusting workload bids; the full uncertain-
// bid pipeline lives in Engine).
func (e *SortEngine) Step(occurring []bool) RoundReport {
	if occurring == nil {
		occurring = e.w.SampleRound()
	}
	if len(occurring) != len(e.w.Interests) {
		panic(fmt.Sprintf("core: %d occurrence flags for %d phrases", len(occurring), len(e.w.Interests)))
	}
	rep := RoundReport{Round: e.round, Auctions: make(map[int][]SlotResult)}

	// Round-boundary sync before any of this round's charges: the shared
	// pacer publishes factors from spend settled through the previous round,
	// and the lifecycle schedule flips local active flags (refresh events
	// are the pacer's alone; see workload.LifecycleRefresh).
	if e.cfg.Pacer != nil {
		e.cfg.Pacer.SyncRound(e.round)
	}
	if e.cfg.Lifecycle != nil {
		e.lifeCursor = e.cfg.Lifecycle.Apply(e.lifeCursor, e.round, e.lifeFn)
	}

	rep.Clicks = e.clicks.Advance(e.round)
	for _, c := range rep.Clicks {
		charged := false
		if e.cfg.Ledger != nil {
			charged = e.cfg.Ledger.TryCharge(c.Advertiser, c.Price)
		} else if e.spent[c.Advertiser]+c.Price <= e.w.Advertisers[c.Advertiser].Budget+1e-9 {
			charged = true
		}
		if charged {
			e.spent[c.Advertiser] += c.Price
			e.stats.Revenue += c.Price
			e.stats.ClicksCharged++
		}
	}

	// Round bids: paced stated bid clipped to remaining budget (naive
	// policy); inactive advertisers sit the round out.
	bids := make([]float64, len(e.w.Advertisers))
	for i, a := range e.w.Advertisers {
		if !e.active[i] {
			continue
		}
		remaining := a.Budget - e.spent[i]
		if e.cfg.Ledger != nil {
			remaining = e.cfg.Ledger.Remaining(i)
		}
		bid := a.Bid
		if e.cfg.Pacer != nil {
			bid *= e.cfg.Pacer.Factor(i)
		}
		switch {
		case remaining <= 0 || bid <= 0:
			bids[i] = 0
		case bid < remaining:
			bids[i] = bid
		default:
			bids[i] = remaining
		}
	}
	e.plan.BeginRound(bids)

	k := len(e.w.SlotFactors)
	for q, occ := range occurring {
		if !occ {
			continue
		}
		stream := e.plan.Stream(q)
		if stream == nil {
			continue
		}
		e.stats.AuctionsResolved++
		qualSrc := &ta.SliceSource{IDs: e.byQuality[q], Vals: e.qualVals[q]}
		score := func(id int) float64 { return bids[id] * e.w.QualityFor(q, id) }
		// k+1 so GSP has its price-setter below the last slot.
		top, st := ta.TopK(k+1, stream, qualSrc, score)
		e.stats.SortedAccesses += st.SortedAccesses

		ranked := make([]pricing.Ranked, 0, top.Len())
		for _, entry := range top.Entries() {
			if entry.Score <= 0 {
				break
			}
			ranked = append(ranked, pricing.Ranked{
				ID: entry.ID, Bid: bids[entry.ID], Quality: e.w.QualityFor(q, entry.ID),
			})
		}
		ranked, prices := pricing.PricesWithReserve(e.cfg.Pricing, ranked, e.w.SlotFactors, e.cfg.Reserve)
		for j := 0; j < len(prices) && j < k; j++ {
			adv := ranked[j]
			ctr := adv.Quality * e.w.SlotFactors[j]
			if ctr > 1 {
				ctr = 1
			}
			e.clicks.Display(adv.ID, prices[j], ctr, e.round)
			e.stats.AdsDisplayed++
			rep.Auctions[q] = append(rep.Auctions[q], SlotResult{Slot: j, Advertiser: adv.ID, PricePaid: prices[j]})
		}
	}

	e.stats.MergePulls += e.plan.RoundPulls()
	e.stats.Rounds++
	e.round++
	return rep
}

// TopKFor runs winner determination for a single phrase with the current
// bid vector, without pricing or display — for tests and tooling.
func (e *SortEngine) TopKFor(q, k int, bids []float64) (*topk.List, ta.Stats) {
	e.plan.BeginRound(bids)
	stream := e.plan.Stream(q)
	if stream == nil {
		return topk.New(k), ta.Stats{}
	}
	qualSrc := &ta.SliceSource{IDs: e.byQuality[q], Vals: e.qualVals[q]}
	score := func(id int) float64 { return bids[id] * e.w.QualityFor(q, id) }
	return ta.TopK(k, stream, qualSrc, score)
}
