package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sharedwd/internal/workload"
)

func perPhraseWorkload(seed int64) *workload.Workload {
	cfg := workload.DefaultConfig()
	cfg.NumAdvertisers = 80
	cfg.NumPhrases = 10
	cfg.NumTopics = 3
	cfg.Slots = 3
	cfg.Seed = seed
	cfg.PerPhraseQuality = true
	return workload.Generate(cfg)
}

func TestNewSortEngineValidation(t *testing.T) {
	global := workload.Generate(workload.DefaultConfig())
	if _, err := NewSortEngine(global, DefaultConfig()); err == nil {
		t.Fatal("global-quality workload should be rejected")
	}
	bad := DefaultConfig()
	bad.ClickHorizon = 0
	if _, err := NewSortEngine(perPhraseWorkload(1), bad); err == nil {
		t.Fatal("invalid click model should be rejected")
	}
}

// TestSortEngineMatchesBruteForce: for every phrase, the TA-over-shared-sort
// pipeline returns exactly the top advertisers by b_i·c_i^q.
func TestSortEngineMatchesBruteForce(t *testing.T) {
	w := perPhraseWorkload(2)
	eng, err := NewSortEngine(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bids := w.Bids()
	for q := 0; q < len(w.Interests); q++ {
		got, st := eng.TopKFor(q, 4, bids)
		ids := w.Interests[q].Indices()
		sort.Slice(ids, func(a, b int) bool {
			sa := bids[ids[a]] * w.QualityFor(q, ids[a])
			sb := bids[ids[b]] * w.QualityFor(q, ids[b])
			if sa != sb {
				return sa > sb
			}
			return ids[a] < ids[b]
		})
		want := ids
		if len(want) > 4 {
			want = want[:4]
		}
		gotIDs := got.IDs()
		if len(gotIDs) != len(want) {
			t.Fatalf("phrase %d: got %v want %v", q, gotIDs, want)
		}
		for i := range want {
			if gotIDs[i] != want[i] {
				t.Fatalf("phrase %d rank %d: got %v want %v", q, i, gotIDs, want)
			}
		}
		if st.SortedAccesses > 2*len(ids) {
			t.Fatalf("phrase %d: TA overran (%d accesses for %d advertisers)", q, st.SortedAccesses, len(ids))
		}
	}
}

func TestSortEngineStepResolvesAndPrices(t *testing.T) {
	w := perPhraseWorkload(3)
	eng, err := NewSortEngine(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]bool, len(w.Interests))
	occ[0], occ[2], occ[5] = true, true, true
	rep := eng.Step(occ)
	if len(rep.Auctions) != 3 {
		t.Fatalf("resolved %d auctions, want 3", len(rep.Auctions))
	}
	for q, slots := range rep.Auctions {
		seen := map[int]bool{}
		for _, s := range slots {
			if seen[s.Advertiser] {
				t.Fatalf("phrase %d: advertiser %d twice", q, s.Advertiser)
			}
			seen[s.Advertiser] = true
			if s.PricePaid < 0 || s.PricePaid > w.Advertisers[s.Advertiser].Bid+1e-9 {
				t.Fatalf("phrase %d: price %v vs bid %v", q, s.PricePaid, w.Advertisers[s.Advertiser].Bid)
			}
		}
	}
	st := eng.Stats()
	if st.AuctionsResolved != 3 || st.SortedAccesses == 0 || st.MergePulls == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSortEngineBudgetsRespected: end-of-run spend never exceeds budgets.
func TestSortEngineBudgetsRespected(t *testing.T) {
	w := perPhraseWorkload(4)
	for i := range w.Advertisers {
		w.Advertisers[i].Budget = 3 + float64(i%5)
	}
	eng, err := NewSortEngine(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 60; r++ {
		eng.Step(nil)
		w.PerturbBids(0.05)
	}
	for i := range w.Advertisers {
		if eng.Spent(i) > w.Advertisers[i].Budget+1e-6 {
			t.Fatalf("advertiser %d spent %v of %v", i, eng.Spent(i), w.Advertisers[i].Budget)
		}
	}
}

// TestQuickSortEngineWinnersValid: winners always come from the phrase's
// interest set, in descending score order.
func TestQuickSortEngineWinnersValid(t *testing.T) {
	f := func(seed int64) bool {
		w := perPhraseWorkload(seed%50 + 1)
		eng, err := NewSortEngine(w, DefaultConfig())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		occ := make([]bool, len(w.Interests))
		for q := range occ {
			occ[q] = rng.Intn(2) == 0
		}
		rep := eng.Step(occ)
		for q, slots := range rep.Auctions {
			if !occ[q] {
				return false
			}
			prev := -1.0
			for _, s := range slots {
				if !w.Interests[q].Contains(s.Advertiser) {
					return false
				}
				score := w.Advertisers[s.Advertiser].Bid * w.QualityFor(q, s.Advertiser)
				if prev >= 0 && score > prev+1e-9 {
					return false // slots must be in descending score order
				}
				prev = score
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSortEngineSharedWorkCounter: with heavy overlap, per-round merge
// pulls are far below the independent-sort bound.
func TestSortEngineSharedWorkCounter(t *testing.T) {
	w := perPhraseWorkload(6)
	eng, err := NewSortEngine(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]bool, len(w.Interests))
	for q := range occ {
		occ[q] = true
	}
	eng.Step(occ)
	st := eng.Stats()
	// Upper bound if every phrase fully sorted privately: Σ_q |I_q|·log.
	full := 0
	for q := range w.Interests {
		n := w.Interests[q].Count()
		full += n * bitsLen(n)
	}
	if st.MergePulls >= full {
		t.Fatalf("merge pulls %d not below independent full-sort bound %d", st.MergePulls, full)
	}
}

func bitsLen(n int) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}

func BenchmarkSortEngineRound(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.NumAdvertisers = 1000
	cfg.NumPhrases = 24
	cfg.PerPhraseQuality = true
	w := workload.Generate(cfg)
	eng, err := NewSortEngine(w, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	occ := make([]bool, len(w.Interests))
	for q := range occ {
		occ[q] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(occ)
	}
}
