package core

import (
	"testing"

	"sharedwd/internal/budget"
	"sharedwd/internal/workload"
)

// TestStepSteadyStateZeroAlloc pins the tentpole guarantee: after warm-up, a
// shared-mode round with the incremental cache on performs zero heap
// allocations — every per-round structure (bids, slab values, top-k lists,
// rankings, prices, slot results, the report's auction map, the click
// simulator's buffers) is reused from engine scratch. The guarantee holds in
// pool mode too: worker dispatch sends pinned closures in fixed-size task
// structs, and the frontier scheduler's per-round state is preallocated —
// AllocsPerRun counts every goroutine's allocations, so a single stray
// worker-side allocation would fail the Workers > 1 cases.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	cases := []struct {
		name string
		// workers is the engine pool size; forceParallel drops the runner's
		// sequential cutoff to 0 so even the steady state's small dirty
		// cones exercise the full frontier scheduler, not the inline path.
		workers       int
		forceParallel bool
	}{
		{"workers=1", 1, false},
		{"workers=4", 4, false},
		{"workers=4/frontier", 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wcfg := workload.DefaultConfig()
			wcfg.NumAdvertisers = 300
			wcfg.NumPhrases = 24
			wcfg.MinBudget = 1e6 // never exhausts: keeps the display load steady
			wcfg.MaxBudget = 2e6
			w := workload.Generate(wcfg)

			cfg := DefaultConfig()
			cfg.Policy = Naive
			cfg.Sharing = SharedAggregation
			cfg.Workers = tc.workers
			cfg.IncrementalCache = true
			eng, err := New(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			if tc.forceParallel {
				eng.runner.SetSequentialCutoff(0)
			}

			occ := make([]bool, wcfg.NumPhrases)
			for q := range occ {
				occ[q] = q%2 == 0
			}
			// Warm-up: past the click horizon several times over, so the
			// pending-ad and scratch buffers reach their steady-state
			// high-water capacities.
			for i := 0; i < 300; i++ {
				eng.Step(occ)
			}
			if avg := testing.AllocsPerRun(200, func() { eng.Step(occ) }); avg != 0 {
				t.Fatalf("steady-state Step allocates %v times per round, want 0", avg)
			}
		})
	}
}

// TestStepSteadyStateZeroAllocPaced extends the guarantee to the pacing
// subsystem: with a ledger, a pacing controller (synced every round: the
// controller step runs each Step, not just the fast path), and a live
// lifecycle schedule attached, the cached steady-state round still
// performs zero heap allocations — all pacing state is preallocated, the
// per-round sync and factor reads are allocation-free, and the lifecycle
// replay uses a pinned callback.
func TestStepSteadyStateZeroAllocPaced(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 300
	wcfg.NumPhrases = 24
	wcfg.MinBudget = 1e6 // never exhausts: keeps the display load steady
	wcfg.MaxBudget = 2e6
	w := workload.Generate(wcfg)

	budgets := make([]float64, len(w.Advertisers))
	for i, a := range w.Advertisers {
		budgets[i] = a.Budget
	}
	ledger := budget.NewLedger(budgets)
	// A refresh tail keeps lifecycle events pending past warm-up, so the
	// steady-state rounds measured below exercise the event-replay path.
	events := make([]workload.LifecycleEvent, 0, 1200)
	for r := 0; r < 1200; r += 2 {
		events = append(events, workload.LifecycleEvent{Round: r, Kind: workload.LifecycleRefresh, Advertiser: r % len(budgets)})
	}
	lc, err := workload.NewLifecycle(len(budgets), events)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := budget.DefaultPacerConfig()
	pcfg.Horizon = 1e6 // target curve binds: the controller actively throttles
	pacer, err := budget.NewPacer(ledger, budgets, pcfg, lc)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Policy = Naive
	cfg.Sharing = SharedAggregation
	cfg.IncrementalCache = true
	cfg.Ledger = ledger
	cfg.Pacer = pacer
	cfg.Lifecycle = lc
	eng, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	occ := make([]bool, wcfg.NumPhrases)
	for q := range occ {
		occ[q] = q%2 == 0
	}
	for i := 0; i < 300; i++ {
		eng.Step(occ)
	}
	if avg := testing.AllocsPerRun(200, func() { eng.Step(occ) }); avg != 0 {
		t.Fatalf("paced steady-state Step allocates %v times per round, want 0", avg)
	}
	if m := pacer.Metrics(); m.Throttled == 0 {
		t.Fatal("pacing never engaged — the zero-alloc claim did not cover the controller's active path")
	}
}
