// Package hungarian implements the Kuhn–Munkres (Hungarian) algorithm for
// maximum-weight bipartite matching in O(n·m·min(n,m)) time.
//
// The paper's Section V adapts the non-separable winner-determination
// framework of Martin–Gehrke–Halpern (ICDE'08): build the advertiser×slot
// bipartite graph weighted by expected realized bid, prune it to O(k²)
// advertisers, and find the maximum-weight matching with this algorithm.
package hungarian

import (
	"fmt"
	"math"
)

// Solve finds a maximum-weight matching between rows ("advertisers") and
// columns ("slots") of the weight matrix w, where w[i][j] ≥ 0 is the value
// of assigning row i to column j. Not every row or column need be matched:
// unprofitable assignments (weight 0) may be left out.
//
// It returns rowMatch with rowMatch[i] = matched column or -1, and the total
// weight of the matching. Solve panics if the matrix is ragged.
func Solve(w [][]float64) (rowMatch []int, total float64) {
	n := len(w)
	if n == 0 {
		return nil, 0
	}
	m := len(w[0])
	for i, row := range w {
		if len(row) != m {
			panic(fmt.Sprintf("hungarian: ragged matrix: row %d has %d cols, want %d", i, len(row), m))
		}
	}

	// The classic potentials formulation solves min-cost perfect assignment
	// on a square matrix. Embed: square side s = max(n, m)+pad so that every
	// row/col can be "matched to nothing" at cost 0, and negate weights.
	s := n + m // n dummy cols for rows, m dummy rows for cols
	const inf = math.MaxFloat64
	cost := func(i, j int) float64 {
		if i < n && j < m {
			return -w[i][j]
		}
		return 0 // dummy assignment = leaving the real row/col unmatched
	}

	// Jonker-style O(s³) Hungarian with row potentials u, column potentials v.
	// match[j] = row matched to column j (1-based internal indexing per the
	// standard e-maxx formulation, adapted to 0-based).
	u := make([]float64, s+1)
	v := make([]float64, s+1)
	match := make([]int, s+1) // column -> row, 0 = unmatched
	way := make([]int, s+1)

	for i := 1; i <= s; i++ {
		match[0] = i
		j0 := 0
		minv := make([]float64, s+1)
		used := make([]bool, s+1)
		for j := 0; j <= s; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := match[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= s; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= s; j++ {
				if used[j] {
					u[match[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if match[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			match[j0] = match[j1]
			j0 = j1
		}
	}

	rowMatch = make([]int, n)
	for i := range rowMatch {
		rowMatch[i] = -1
	}
	for j := 1; j <= s; j++ {
		i := match[j] - 1
		if i >= 0 && i < n && j-1 < m {
			// Only keep assignments that actually add value; a zero-weight
			// match is equivalent to leaving both sides unmatched.
			if w[i][j-1] > 0 {
				rowMatch[i] = j - 1
				total += w[i][j-1]
			}
		}
	}
	return rowMatch, total
}

// BruteForce finds the maximum-weight matching by exhaustive search over
// column subsets; exponential in len(w[0]), usable only for small instances.
// It exists to certify Solve in tests.
func BruteForce(w [][]float64) (rowMatch []int, total float64) {
	n := len(w)
	if n == 0 {
		return nil, 0
	}
	m := len(w[0])
	best := make([]int, n)
	cur := make([]int, n)
	for i := range best {
		best[i], cur[i] = -1, -1
	}
	var bestVal float64
	usedCol := make([]bool, m)
	var rec func(i int, val float64)
	rec = func(i int, val float64) {
		if i == n {
			if val > bestVal {
				bestVal = val
				copy(best, cur)
			}
			return
		}
		cur[i] = -1
		rec(i+1, val)
		for j := 0; j < m; j++ {
			if usedCol[j] || w[i][j] <= 0 {
				continue
			}
			usedCol[j] = true
			cur[i] = j
			rec(i+1, val+w[i][j])
			cur[i] = -1
			usedCol[j] = false
		}
	}
	rec(0, 0)
	return best, bestVal
}
