package hungarian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	rm, total := Solve(nil)
	if rm != nil || total != 0 {
		t.Fatalf("Solve(nil) = %v, %v", rm, total)
	}
}

func TestSingleCell(t *testing.T) {
	rm, total := Solve([][]float64{{5}})
	if rm[0] != 0 || total != 5 {
		t.Fatalf("got %v %v, want [0] 5", rm, total)
	}
}

func TestZeroWeightLeftUnmatched(t *testing.T) {
	rm, total := Solve([][]float64{{0}})
	if rm[0] != -1 || total != 0 {
		t.Fatalf("got %v %v, want [-1] 0", rm, total)
	}
}

func TestSquareKnown(t *testing.T) {
	w := [][]float64{
		{7, 5, 11},
		{5, 4, 1},
		{9, 3, 2},
	}
	// Optimal: row0->2 (11), row1->1 (4), row2->0 (9) = 24.
	rm, total := Solve(w)
	if total != 24 {
		t.Fatalf("total = %v, want 24 (match %v)", total, rm)
	}
	if rm[0] != 2 || rm[1] != 1 || rm[2] != 0 {
		t.Fatalf("match = %v, want [2 1 0]", rm)
	}
}

func TestRectangularMoreRows(t *testing.T) {
	// 4 advertisers, 2 slots: only the best two rows get slots.
	w := [][]float64{
		{1, 2},
		{10, 9},
		{3, 8},
		{2, 2},
	}
	rm, total := Solve(w)
	if total != 18 { // row1->0 (10), row2->1 (8)
		t.Fatalf("total = %v, want 18 (match %v)", total, rm)
	}
	if rm[0] != -1 || rm[1] != 0 || rm[2] != 1 || rm[3] != -1 {
		t.Fatalf("match = %v", rm)
	}
}

func TestRectangularMoreCols(t *testing.T) {
	w := [][]float64{
		{1, 5, 3},
	}
	rm, total := Solve(w)
	if rm[0] != 1 || total != 5 {
		t.Fatalf("match = %v total = %v", rm, total)
	}
}

func TestRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged matrix")
		}
	}()
	Solve([][]float64{{1, 2}, {3}})
}

func TestNoConflictingAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n, m := 1+rng.Intn(8), 1+rng.Intn(8)
		w := randomMatrix(rng, n, m)
		rm, _ := Solve(w)
		seen := map[int]bool{}
		for i, j := range rm {
			if j == -1 {
				continue
			}
			if j < 0 || j >= m {
				t.Fatalf("row %d matched to invalid col %d", i, j)
			}
			if seen[j] {
				t.Fatalf("column %d assigned twice: %v", j, rm)
			}
			seen[j] = true
		}
	}
}

func randomMatrix(rng *rand.Rand, n, m int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, m)
		for j := range w[i] {
			w[i][j] = float64(rng.Intn(20)) // include zeros
		}
	}
	return w
}

// TestQuickMatchesBruteForce certifies Solve against exhaustive search on
// random small instances, including rectangular ones and zero weights.
func TestQuickMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(5), 1+rng.Intn(5)
		w := randomMatrix(rng, n, m)
		_, got := Solve(w)
		_, want := BruteForce(w)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloatWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(5), 1+rng.Intn(5)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				w[i][j] = rng.Float64() * 10
			}
		}
		_, got := Solve(w)
		_, want := BruteForce(w)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve64x8(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	w := randomMatrix(rng, 64, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Solve(w)
	}
}

func BenchmarkSolve256x16(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	w := randomMatrix(rng, 256, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Solve(w)
	}
}
