package netserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"sharedwd/internal/serr"
	"sharedwd/internal/server"
)

// Client is the HTTP dial-side of the tier: the inverse of handlers.go,
// mapping /v1/query (and /v1/query/batch, /v1/stats) responses back onto
// server.Result and the serr taxonomy, so errors.Is retry policies written
// against the in-process servers hold over HTTP. It is safe for concurrent
// use; requests ride the transport's connection pool.
type Client struct {
	base   string
	hc     *http.Client
	closed atomic.Bool
}

// NewClient returns a client for the tier at addr (a host:port, as
// returned by Server.Addr).
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     60 * time.Second,
			},
		},
	}
}

// statusErr is submitStatus's inverse: HTTP statuses map back onto the
// sentinels the backend raised. Unclassified statuses keep the server's
// message.
func statusErr(code int, msg string) error {
	switch code {
	case http.StatusNotFound:
		return serr.ErrNoAuction
	case http.StatusTooManyRequests:
		return serr.ErrOverloaded
	case http.StatusServiceUnavailable:
		return serr.ErrClosed
	case http.StatusGatewayTimeout:
		return context.DeadlineExceeded
	case 499:
		return context.Canceled
	default:
		return fmt.Errorf("netserve: HTTP %d: %s", code, msg)
	}
}

// post sends one JSON request and decodes the response into out,
// translating error bodies through statusErr.
func (c *Client) post(ctx context.Context, path string, reqBody, out any) error {
	if c.closed.Load() {
		return serr.ErrClosed
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(reqBody); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err // *url.Error unwraps to the context error on deadline
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var eresp errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
			return statusErr(resp.StatusCode, "")
		}
		return statusErr(resp.StatusCode, eresp.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit submits one query via POST /v1/query. The context's deadline, if
// any, rides as X-Timeout so the server's clamp applies to the same value
// the client waits for.
func (c *Client) Submit(ctx context.Context, query string) (server.Result, error) {
	if c.closed.Load() {
		return server.Result{}, serr.ErrClosed
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(queryRequest{Query: query}); err != nil {
		return server.Result{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query", &buf)
	if err != nil {
		return server.Result{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set("X-Timeout", time.Until(dl).Round(time.Millisecond).String())
	}
	var qr queryResponse
	if err := c.do(req, &qr); err != nil {
		return server.Result{}, err
	}
	return server.Result{
		Phrase:  qr.Phrase,
		Shard:   qr.Shard,
		Round:   qr.Round,
		Slots:   qr.Slots,
		Latency: time.Duration(qr.LatencyNS),
	}, nil
}

// SubmitBatch submits many queries via POST /v1/query/batch — the Backend
// batch contract: results always has len(queries), and the error joins one
// *serr.ItemError per failed query (expand with serr.SplitBatch).
func (c *Client) SubmitBatch(ctx context.Context, queries []string) ([]server.Result, error) {
	var br batchResponse
	if err := c.post(ctx, "/v1/query/batch", batchRequest{Queries: queries}, &br); err != nil {
		return nil, err
	}
	if len(br.Results) != len(queries) {
		return nil, fmt.Errorf("netserve: batch reply has %d items, want %d", len(br.Results), len(queries))
	}
	results := make([]server.Result, len(queries))
	errs := make([]error, len(queries))
	for i, item := range br.Results {
		if item.Error != "" || item.Code != 0 {
			errs[i] = statusErr(item.Code, item.Error)
			continue
		}
		results[i] = server.Result{
			Phrase:  item.Phrase,
			Shard:   item.Shard,
			Round:   item.Round,
			Slots:   item.Slots,
			Latency: time.Duration(item.LatencyNS),
		}
	}
	return results, serr.JoinBatch(errs)
}

// Stats fetches the server's merged fleet metrics from GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (server.Metrics, error) {
	if c.closed.Load() {
		return server.Metrics{}, serr.ErrClosed
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return server.Metrics{}, err
	}
	var m server.Metrics
	if err := c.do(req, &m); err != nil {
		return server.Metrics{}, err
	}
	return m, nil
}

// Close releases the connection pool; subsequent calls return
// serr.ErrClosed. It does not touch the server. Idempotent.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.hc.CloseIdleConnections()
	return nil
}
