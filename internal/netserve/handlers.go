package netserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/serr"
)

// queryRequest is the POST /v1/query body.
type queryRequest struct {
	// Query is the search phrase to auction.
	Query string `json:"query"`
	// Timeout is the optional per-request deadline as a Go duration string
	// ("250ms", "2s"); the X-Timeout header takes precedence. Absent both,
	// the server's DefaultTimeout applies; either way MaxTimeout clamps.
	Timeout string `json:"timeout,omitempty"`
}

// queryResponse is the POST /v1/query success body.
type queryResponse struct {
	Query  string            `json:"query"`
	Phrase int               `json:"phrase"`
	Shard  int               `json:"shard"`
	Round  int               `json:"round"`
	Slots  []core.SlotResult `json:"slots"`
	// LatencyNS is the backend's submit-to-answer latency in nanoseconds
	// (the network round trip is the client's to measure).
	LatencyNS int64 `json:"latency_ns"`
}

// batchRequest is the POST /v1/query/batch body: many queries resolved in
// (at most) one round per shard via the backend's SubmitBatch. One Timeout
// covers the whole batch.
type batchRequest struct {
	Queries []string `json:"queries"`
	Timeout string   `json:"timeout,omitempty"`
}

// batchItem is one entry of the POST /v1/query/batch response: the auction
// outcome for queries[i], or that item's error. Code carries the HTTP
// status the same failure maps to on /v1/query, so batch clients reuse the
// single-query status table.
type batchItem struct {
	Query     string            `json:"query"`
	Phrase    int               `json:"phrase,omitempty"`
	Shard     int               `json:"shard,omitempty"`
	Round     int               `json:"round,omitempty"`
	Slots     []core.SlotResult `json:"slots,omitempty"`
	LatencyNS int64             `json:"latency_ns,omitempty"`
	Error     string            `json:"error,omitempty"`
	Retryable bool              `json:"retryable,omitempty"`
	Code      int               `json:"code,omitempty"`
}

// batchResponse is the POST /v1/query/batch success body. The HTTP status
// is 200 whenever the batch itself was accepted — per-item failures live
// in the items.
type batchResponse struct {
	Results []batchItem `json:"results"`
}

// routes builds the v1 mux. Method-qualified patterns (Go 1.22 ServeMux)
// give wrong-method requests a 405 with Allow for free. The rate limiter
// guards only the endpoints that reach the backend or pin a connection
// (/v1/query, /v1/query/batch, /v1/live); the observability endpoints stay
// exempt so a Prometheus scraper sharing a host (or NAT) with a chatty
// client never loses a scrape to that client's bucket.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/query", s.limited(http.HandlerFunc(s.handleQuery)))
	mux.Handle("POST /v1/query/batch", s.limited(http.HandlerFunc(s.handleBatch)))
	mux.Handle("GET /v1/live", s.limited(http.HandlerFunc(s.handleLive)))
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// limited wraps h with the rate limiter when one is configured.
func (s *Server) limited(h http.Handler) http.Handler {
	if s.limiter == nil {
		return h
	}
	return s.limiter.Middleware(h)
}

// requestTimeout resolves the effective deadline for one query: X-Timeout
// header, then the body's timeout field, then DefaultTimeout — clamped to
// MaxTimeout. A malformed or non-positive duration is a client error.
func (s *Server) requestTimeout(r *http.Request, body queryRequest) (time.Duration, error) {
	raw := r.Header.Get("X-Timeout")
	if raw == "" {
		raw = body.Timeout
	}
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad timeout %q: %v", raw, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad timeout %q: must be positive", raw)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// handleQuery submits one query to the backend and renders the auction
// outcome. The serving error taxonomy maps onto HTTP statuses:
//
//	serr.ErrNoAuction       → 404 (the query matches no bid phrase)
//	serr.ErrOverloaded      → 429 + Retry-After (admission backpressure)
//	serr.ErrClosed          → 503 (server draining)
//	context.DeadlineExceeded → 504 (the request's own deadline)
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit), false)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error(), false)
		return
	}
	// Drain any trailing bytes so keep-alive connections stay reusable.
	io.Copy(io.Discard, body)
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "empty query", false)
		return
	}
	timeout, err := s.requestTimeout(r, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	res, err := s.backend.Submit(ctx, req.Query)
	if err != nil {
		code, retryable := submitStatus(err)
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, err.Error(), retryable)
		return
	}

	resp := queryResponse{
		Query:     req.Query,
		Phrase:    res.Phrase,
		Shard:     res.Shard,
		Round:     res.Round,
		Slots:     res.Slots,
		LatencyNS: int64(res.Latency),
	}
	if resp.Slots == nil {
		resp.Slots = []core.SlotResult{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// submitStatus maps one serving error onto its HTTP status and retryable
// flag — the single-query table, shared with per-item batch errors:
//
//	serr.ErrNoAuction        → 404 (the query matches no bid phrase)
//	serr.ErrOverloaded       → 429 (admission backpressure; retryable)
//	serr.ErrClosed           → 503 (server draining)
//	context.DeadlineExceeded → 504 (the request's own deadline; retryable)
//	context.Canceled         → 499 (the client went away)
func submitStatus(err error) (code int, retryable bool) {
	switch {
	case errors.Is(err, serr.ErrNoAuction):
		return http.StatusNotFound, false
	case errors.Is(err, serr.ErrOverloaded):
		return http.StatusTooManyRequests, true
	case errors.Is(err, serr.ErrClosed):
		return http.StatusServiceUnavailable, false
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, true
	case errors.Is(err, context.Canceled):
		return 499, false
	default:
		return http.StatusInternalServerError, false
	}
}

// handleBatch submits many queries in one request via the backend's batch
// path — grouped per shard, resolved in at most one round each — and
// renders per-item outcomes. The response is 200 whenever the batch was
// accepted; each failed item carries its own error, retryable flag, and
// the /v1/query status code the same failure would have produced.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	// The single-query body bound assumes one phrase; scale it by the
	// batch width the backend tolerates.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes*64)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit), false)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error(), false)
		return
	}
	io.Copy(io.Discard, body)
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch", false)
		return
	}
	timeout, err := s.requestTimeout(r, queryRequest{Timeout: req.Timeout})
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	results, berr := s.backend.SubmitBatch(ctx, req.Queries)
	errs := serr.SplitBatch(berr, len(req.Queries))

	resp := batchResponse{Results: make([]batchItem, len(req.Queries))}
	for i, q := range req.Queries {
		item := &resp.Results[i]
		item.Query = q
		if errs[i] != nil {
			code, retryable := submitStatus(errs[i])
			item.Error = errs[i].Error()
			item.Retryable = retryable
			item.Code = code
			continue
		}
		item.Phrase = results[i].Phrase
		item.Shard = results[i].Shard
		item.Round = results[i].Round
		item.LatencyNS = int64(results[i].Latency)
		item.Slots = results[i].Slots
		if item.Slots == nil {
			item.Slots = []core.SlotResult{}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleStats renders the merged fleet metrics as JSON — the same stable
// snake_case schema server.Metrics marshals to, so the body unmarshals
// back into a server.Metrics that can be re-merged with other replicas'.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.backend.Metrics())
}

// handleMetrics renders the same numbers in Prometheus text exposition
// format, plus the edge tier's own counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	edge := edgeStats{
		liveConns:    s.hub.Conns(),
		liveDropped:  s.hub.Dropped(),
		httpRequests: s.requests.Load(),
	}
	if s.limiter != nil {
		edge.raterefused = s.limiter.Refused()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeProm(w, s.backend.Metrics(), edge)
}

// handleLive upgrades to WebSocket and subscribes the connection to the
// round feed. The call blocks in the hub's reader loop until the
// connection ends — http.Server has already released the connection to us
// via Hijack, so holding the handler goroutine is the intended shape.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	conn, br := wsUpgrade(w, r)
	if conn == nil {
		return // wsUpgrade wrote the HTTP error
	}
	s.hub.serve(conn, br)
}
