package netserve

import (
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// RateLimiter is a token-bucket admission filter keyed by client address:
// each remote host owns a bucket of capacity burst refilled at rate tokens
// per second, and a request finding the bucket empty is refused. It is the
// network edge's first shed point — cheaper than the admission queue,
// per-client instead of global — so one chatty client cannot spend the
// whole fleet's queue depth. Safe for concurrent use.
type RateLimiter struct {
	rate  float64 // tokens added per second
	burst float64 // bucket capacity

	now func() time.Time // test hook; time.Now in production

	mu      sync.Mutex
	buckets map[string]*bucket

	refused atomic.Int64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the per-client table; at the cap, the next new client
// evicts every stale bucket (full again, so indistinguishable from
// absent) — or, when all clients are recently active, the stalest one —
// so the table never exceeds maxBuckets entries.
const maxBuckets = 4096

// NewRateLimiter returns a limiter admitting rate requests per second per
// client with bursts of burst. rate must be positive; burst < 1 is raised
// to 1 (a limiter that admits nothing is a firewall, not a limiter).
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		panic("netserve: non-positive rate limit")
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &RateLimiter{
		rate:    rate,
		burst:   b,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// Allow consumes one token from key's bucket, reporting whether one was
// available. New keys start with a full bucket.
func (l *RateLimiter) Allow(key string) bool {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.evictFull(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		l.refused.Add(1)
		return false
	}
	b.tokens--
	return true
}

// evictFull drops every bucket that has refilled to capacity — a full
// bucket behaves identically to no bucket, so eviction never changes an
// admission decision. When no bucket has refilled (every client recently
// active) it evicts the stalest one instead, so the table stays bounded
// at maxBuckets no matter the churn; the client that loses its bucket is
// the one that has gone longest without a request, and the worst it
// suffers is a fresh full bucket. Called with the lock held.
func (l *RateLimiter) evictFull(now time.Time) {
	var stalestKey string
	var stalestLast time.Time
	evicted := false
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
			evicted = true
			continue
		}
		if stalestKey == "" || b.last.Before(stalestLast) {
			stalestKey, stalestLast = k, b.last
		}
	}
	if !evicted && stalestKey != "" {
		delete(l.buckets, stalestKey)
	}
}

// Refused returns how many requests the limiter has refused.
func (l *RateLimiter) Refused() int64 { return l.refused.Load() }

// clientKey extracts the per-client bucket key from a request: the remote
// host without the ephemeral port, so one client's connections share one
// bucket.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Middleware wraps next with the rate limit: refused requests get 429 with
// a Retry-After hint and the standard error body.
func (l *RateLimiter) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !l.Allow(clientKey(r)) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded", true)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// errorResponse is the JSON error body every non-2xx response carries.
type errorResponse struct {
	Error string `json:"error"`
	// Retryable mirrors the serving error taxonomy: backpressure (429) and
	// timeouts are retryable, a closed server or an unmatched query is not.
	Retryable bool `json:"retryable"`
}

func writeError(w http.ResponseWriter, status int, msg string, retryable bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg, Retryable: retryable})
}
