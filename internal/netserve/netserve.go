// Package netserve is the network serving tier: an HTTP/JSON front end
// over a round server (single-engine server.Server or sharded
// shard.Server). It exposes
//
//	POST /v1/query    — submit one query, get winners and prices as JSON
//	GET  /v1/stats    — the merged fleet server.Metrics as JSON
//	GET  /v1/metrics  — the same metrics in Prometheus text format
//	GET  /v1/live     — a WebSocket pushing per-round summaries
//
// The package is split along its three concerns: handlers.go maps HTTP to
// the backend and its error taxonomy, middleware.go holds the per-client
// token-bucket rate limiter, and ws.go is the hand-rolled RFC 6455 subset
// behind /v1/live (the repo takes no dependencies; the stdlib has no
// WebSocket support).
//
// Robustness at the edge: request bodies are bounded, every request gets a
// deadline (client-chosen, clamped to a server maximum), connections carry
// read/write timeouts, per-client token buckets shed abusive traffic
// before it reaches the admission queue, and Shutdown drains — the
// listener stops accepting, in-flight queries are answered through the
// normal worker drain, live subscribers get a going-away close frame.
package netserve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"sharedwd/internal/server"
)

// Backend is the round server the tier fronts — the canonical fleet-facing
// contract, promoted to internal/server so every transport (this HTTP
// tier, the binary tier in internal/binproto, in-process clients) programs
// against one interface. Both server.Server and shard.Server satisfy it.
type Backend = server.Backend

// Config tunes the network tier. The zero value serves on a random
// loopback port with production-shaped timeouts and no rate limit.
type Config struct {
	// Addr is the listen address ("" means 127.0.0.1:0 — a random
	// loopback port, the test- and demo-friendly default).
	Addr string

	// ReadTimeout / WriteTimeout / IdleTimeout are the per-connection HTTP
	// timeouts (zero values get 10s / 30s / 60s). WriteTimeout must cover
	// MaxTimeout or slow queries lose their connection mid-reply.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration

	// MaxBodyBytes bounds the /v1/query request body (0 means 4096 —
	// queries are phrases, not documents).
	MaxBodyBytes int64

	// DefaultTimeout is the query deadline applied when the client names
	// none (0 means 2s); MaxTimeout clamps client-requested deadlines
	// (0 means 10s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// RateLimit, when positive, enables the per-client token bucket at
	// RateLimit requests per second with bursts of RateBurst (0 bursts
	// default to 2×RateLimit rounded up). The bucket guards /v1/query and
	// /v1/live; /v1/stats and /v1/metrics are exempt so scrapes survive a
	// chatty co-located client.
	RateLimit float64
	RateBurst int

	// LiveQueue is each /v1/live subscriber's send-queue depth (0 means
	// 16); a subscriber that falls this many round summaries behind is
	// dropped rather than ever stalling the round loop.
	LiveQueue int
}

// withDefaults returns cfg with zero values replaced by the documented
// defaults.
func (cfg Config) withDefaults() Config {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4096
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Second
	}
	if cfg.RateLimit > 0 && cfg.RateBurst <= 0 {
		cfg.RateBurst = int(2*cfg.RateLimit + 0.999)
	}
	if cfg.LiveQueue <= 0 {
		cfg.LiveQueue = 16
	}
	return cfg
}

// NewHubFor returns the live-feed hub New would create for cfg — for
// callers that must wire the hub's RoundHook into the backend's round
// loops before constructing the tier (the round hook is fixed at worker
// start, so the hub has to exist first).
func NewHubFor(cfg Config) *Hub {
	cfg = cfg.withDefaults()
	return NewHub(cfg.LiveQueue, cfg.WriteTimeout)
}

// Server is the network tier: an http.Server bound to a Backend, with the
// live-feed hub and optional rate limiter in front. Create with New, start
// with Start, stop with Shutdown (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	backend Backend
	hub     *Hub
	limiter *RateLimiter

	httpSrv  *http.Server
	listener net.Listener
	requests atomic.Int64 // v1 HTTP requests received (rate-limited included)

	done chan struct{} // closed when the serve goroutine exits
	err  atomic.Value  // terminal http.Serve error, if any
}

// New builds the tier over backend. hub carries the /v1/live feed and must
// be the same hub whose RoundHook the backend's workers publish to (the
// facade wires this; a nil hub gets a fresh, unfed one so /v1/live still
// answers the handshake). New does not open the listener — Start does.
func New(backend Backend, hub *Hub, cfg Config) *Server {
	cfg = cfg.withDefaults()
	if hub == nil {
		hub = NewHub(cfg.LiveQueue, cfg.WriteTimeout)
	}
	s := &Server{
		cfg:     cfg,
		backend: backend,
		hub:     hub,
		done:    make(chan struct{}),
	}
	if cfg.RateLimit > 0 {
		s.limiter = NewRateLimiter(cfg.RateLimit, cfg.RateBurst)
	}
	s.httpSrv = &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  cfg.ReadTimeout,
		WriteTimeout: cfg.WriteTimeout,
		IdleTimeout:  cfg.IdleTimeout,
	}
	return s
}

// Handler returns the tier's root handler — the v1 mux, with the rate
// limiter wrapped around /v1/query and /v1/live (observability endpoints
// are exempt) — for tests and embedding into an existing mux.
func (s *Server) Handler() http.Handler {
	return s.routes()
}

// Start opens the listener and begins serving in a background goroutine.
// It returns once the port is bound, so Addr is valid immediately after.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.listener = ln
	go func() {
		defer close(s.done)
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err.Store(err)
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Start) — with Addr
// ":0", this is where the kernel actually put us.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Err returns the terminal serve error, if the serve loop died with one.
func (s *Server) Err() error {
	if v := s.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Shutdown drains the tier: the listener stops accepting, in-flight HTTP
// requests run to completion (bounded by ctx), live subscribers get a
// going-away close frame, and finally the backend drains its own queues.
// Every admitted request is answered. Safe to call once; Close after
// Shutdown is a no-op on the backend side only if the backend tolerates
// double Close (both servers here do).
func (s *Server) Shutdown(ctx context.Context) error {
	// 1. Stop accepting and wait for in-flight handlers. The backend is
	// still open, so /v1/query handlers finish normally. Hijacked /v1/live
	// connections are not tracked by http.Server — the hub owns them.
	err := s.httpSrv.Shutdown(ctx)
	// 2. Close the live feed: close frames out, writer goroutines joined.
	s.hub.Close()
	// 3. Drain the backend (workers answer everything already admitted).
	s.backend.Close()
	if s.listener != nil {
		<-s.done
	}
	return err
}

// Close tears the tier down without waiting for in-flight requests. Use
// Shutdown for a graceful drain.
func (s *Server) Close() error {
	err := s.httpSrv.Close()
	s.hub.Close()
	s.backend.Close()
	if s.listener != nil {
		<-s.done
	}
	return err
}

// Hub returns the live-feed hub (for wiring round hooks and tests).
func (s *Server) Hub() *Hub { return s.hub }
