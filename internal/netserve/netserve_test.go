package netserve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/serr"
	"sharedwd/internal/server"
)

// fakeBackend scripts Submit outcomes by query string, so handler tests
// cover the whole error taxonomy without a real engine. "slow" queries
// park until release is closed (or their ctx expires), which is how the
// drain tests hold requests in flight.
type fakeBackend struct {
	release chan struct{}
	submits atomic.Int64
	closed  atomic.Bool
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{release: make(chan struct{})}
}

func (b *fakeBackend) Submit(ctx context.Context, query string) (server.Result, error) {
	b.submits.Add(1)
	switch query {
	case "junk":
		return server.Result{}, serr.ErrNoAuction
	case "overload":
		return server.Result{}, serr.ErrOverloaded
	case "closing":
		return server.Result{}, serr.ErrClosed
	case "slow":
		select {
		case <-b.release:
		case <-ctx.Done():
			return server.Result{}, ctx.Err()
		}
	}
	return server.Result{
		Phrase: 7,
		Shard:  1,
		Round:  42,
		Slots: []core.SlotResult{
			{Slot: 0, Advertiser: 3, PricePaid: 1.25},
			{Slot: 1, Advertiser: 9, PricePaid: 0.75},
		},
		Latency: 3 * time.Millisecond,
	}, nil
}

// SubmitBatch follows the Backend batch contract over the same scripted
// outcomes: one ItemError per failed query, results always len(queries).
func (b *fakeBackend) SubmitBatch(ctx context.Context, queries []string) ([]server.Result, error) {
	results := make([]server.Result, len(queries))
	errs := make([]error, len(queries))
	for i, q := range queries {
		results[i], errs[i] = b.Submit(ctx, q)
	}
	return results, serr.JoinBatch(errs)
}

func (b *fakeBackend) Metrics() server.Metrics {
	m := server.Metrics{
		Uptime:    90 * time.Second,
		Submitted: 100, Answered: 80, Unmatched: 10, Shed: 5, TimedOut: 3, Expired: 2,
		QueueDepth: 4, QueueCap: 64,
		Rounds: 50, EmptyRounds: 20,
		Engine: core.Stats{Rounds: 30, AuctionsResolved: 75, Revenue: 12.5},
	}
	for i := 0; i < 100; i++ {
		m.TotalLatency.Summary.Add(float64(i) / 1000)
	}
	if sec := m.Uptime.Seconds(); sec > 0 {
		m.RoundsPerSec = float64(m.Rounds) / sec
		m.QueriesPerSec = float64(m.Answered) / sec
	}
	return m
}

func (b *fakeBackend) Close() { b.closed.Store(true) }

// newTestServer builds an unstarted tier over a fresh fake backend.
func newTestServer(t *testing.T, cfg Config) (*Server, *fakeBackend) {
	t.Helper()
	b := newFakeBackend()
	return New(b, nil, cfg), b
}

func postQuery(t *testing.T, h http.Handler, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestQueryHandler(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	cases := []struct {
		name       string
		body       string
		hdr        map[string]string
		wantStatus int
		retryable  bool // checked only on errors
	}{
		{name: "ok", body: `{"query":"hiking boots"}`, wantStatus: http.StatusOK},
		{name: "ok with timeout field", body: `{"query":"boots","timeout":"250ms"}`, wantStatus: http.StatusOK},
		{name: "ok with timeout header", body: `{"query":"boots"}`, hdr: map[string]string{"X-Timeout": "250ms"}, wantStatus: http.StatusOK},
		{name: "empty query", body: `{"query":""}`, wantStatus: http.StatusBadRequest},
		{name: "blank query", body: `{"query":"   "}`, wantStatus: http.StatusBadRequest},
		{name: "bad json", body: `{"query":`, wantStatus: http.StatusBadRequest},
		{name: "bad timeout", body: `{"query":"x","timeout":"soon"}`, wantStatus: http.StatusBadRequest},
		{name: "negative timeout", body: `{"query":"x","timeout":"-1s"}`, wantStatus: http.StatusBadRequest},
		{name: "no auction", body: `{"query":"junk"}`, wantStatus: http.StatusNotFound},
		{name: "overloaded", body: `{"query":"overload"}`, wantStatus: http.StatusTooManyRequests, retryable: true},
		{name: "closed", body: `{"query":"closing"}`, wantStatus: http.StatusServiceUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postQuery(t, h, tc.body, tc.hdr)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tc.wantStatus, w.Body)
			}
			if tc.wantStatus == http.StatusOK {
				var resp queryResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					t.Fatalf("bad response JSON: %v", err)
				}
				if resp.Phrase != 7 || resp.Round != 42 || len(resp.Slots) != 2 {
					t.Fatalf("unexpected response %+v", resp)
				}
				if resp.Slots[0].PricePaid != 1.25 {
					t.Fatalf("slot price = %v, want 1.25", resp.Slots[0].PricePaid)
				}
				return
			}
			var er errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
				t.Fatalf("error body is not JSON: %v (%s)", err, w.Body)
			}
			if er.Error == "" {
				t.Fatal("error body has empty message")
			}
			if er.Retryable != tc.retryable {
				t.Fatalf("retryable = %v, want %v", er.Retryable, tc.retryable)
			}
		})
	}
}

func TestQueryDeadline(t *testing.T) {
	s, _ := newTestServer(t, Config{DefaultTimeout: 20 * time.Millisecond})
	w := postQuery(t, s.Handler(), `{"query":"slow"}`, nil)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow query status = %d, want 504 (body %s)", w.Code, w.Body)
	}
	var er errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || !er.Retryable {
		t.Fatalf("timeout should be a retryable JSON error, got %s (err %v)", w.Body, err)
	}
}

func TestQueryBodyBound(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBodyBytes: 64})
	big := `{"query":"` + strings.Repeat("x", 200) + `"}`
	w := postQuery(t, s.Handler(), big, nil)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", w.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/query", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query status = %d, want 405", w.Code)
	}
	if allow := w.Header().Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("Allow header = %q, want POST", allow)
	}
}

// TestStatsRoundTrip is the wire-schema acceptance check: the /v1/stats
// body must unmarshal back into a server.Metrics equal in every counter
// and distribution to what the backend reported.
func TestStatsRoundTrip(t *testing.T) {
	s, b := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var got server.Metrics
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatalf("stats did not unmarshal into Metrics: %v", err)
	}
	want := b.Metrics()
	if got.Submitted != want.Submitted || got.Answered != want.Answered ||
		got.Shed != want.Shed || got.Uptime != want.Uptime ||
		got.Engine != want.Engine {
		t.Fatalf("decoded metrics differ: got %+v want %+v", got, want)
	}
	if got.TotalLatency.Count() != want.TotalLatency.Count() ||
		got.TotalLatency.Mean() != want.TotalLatency.Mean() {
		t.Fatalf("latency distribution did not round-trip: got n=%d mean=%v",
			got.TotalLatency.Count(), got.TotalLatency.Mean())
	}
}

// promLine matches one Prometheus sample line:  name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// TestMetricsPrometheusFormat parses the exposition line by line: every
// non-comment line must be a well-formed sample, every family must carry
// HELP and TYPE, and a few known values must match the backend.
func TestMetricsPrometheusFormat(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}

	types := map[string]string{}
	samples := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(w.Body.String()), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		samples[name] = line[strings.LastIndex(line, " ")+1:]
	}

	// Every sample belongs to a declared family (summaries declare the
	// base name; _sum/_count ride on it).
	for name := range samples {
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if _, ok := types[name]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q has no TYPE declaration", name)
			}
		}
	}
	for fam, typ := range types {
		switch typ {
		case "counter", "gauge":
			if _, ok := samples[fam]; !ok {
				t.Fatalf("family %q (%s) has no sample", fam, typ)
			}
		case "summary":
			if _, ok := samples[fam+"_count"]; !ok {
				t.Fatalf("summary %q missing _count", fam)
			}
		default:
			t.Fatalf("family %q has unexpected type %q", fam, typ)
		}
	}

	if got := samples["sharedwd_submitted_total"]; got != "100" {
		t.Fatalf("sharedwd_submitted_total = %q, want 100", got)
	}
	if got := samples["sharedwd_engine_auctions_resolved_total"]; got != "75" {
		t.Fatalf("sharedwd_engine_auctions_resolved_total = %q, want 75", got)
	}
	if got := samples["sharedwd_total_latency_seconds_count"]; got != "100" {
		t.Fatalf("sharedwd_total_latency_seconds_count = %q, want 100", got)
	}
}

func TestRateLimiterBurstAndRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewRateLimiter(10, 3) // 10 tokens/sec, burst 3
	l.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !l.Allow("a") {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	if l.Allow("a") {
		t.Fatal("request beyond burst admitted")
	}
	if l.Refused() != 1 {
		t.Fatalf("refused = %d, want 1", l.Refused())
	}
	// Other clients have their own buckets.
	if !l.Allow("b") {
		t.Fatal("fresh client refused while another is limited")
	}
	// 100ms refills one token at 10/sec.
	now = now.Add(100 * time.Millisecond)
	if !l.Allow("a") {
		t.Fatal("refilled token refused")
	}
	if l.Allow("a") {
		t.Fatal("second request after single-token refill admitted")
	}
	// A long quiet period refills to burst, not beyond.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !l.Allow("a") {
			t.Fatalf("request %d within refilled burst refused", i)
		}
	}
	if l.Allow("a") {
		t.Fatal("bucket refilled beyond burst")
	}
}

func TestRateLimitMiddleware(t *testing.T) {
	s, _ := newTestServer(t, Config{RateLimit: 1, RateBurst: 2})
	h := s.Handler()
	post := func(remote string) int {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(`{"query":"hiking boots"}`))
		req.RemoteAddr = remote
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code
	}
	codes := []int{}
	for i := 0; i < 4; i++ {
		codes = append(codes, post("192.0.2.1:5000")) // same host, varying port later
	}
	if codes[0] != 200 || codes[1] != 200 {
		t.Fatalf("burst requests got %v, want two 200s first", codes)
	}
	if codes[2] != http.StatusTooManyRequests || codes[3] != http.StatusTooManyRequests {
		t.Fatalf("post-burst requests got %v, want 429s", codes)
	}
	// A different source port is the same client: still limited.
	if code := post("192.0.2.1:6000"); code != http.StatusTooManyRequests {
		t.Fatalf("same host, new port admitted (%d); buckets must key on host", code)
	}
	// A different host is a different client.
	if code := post("192.0.2.2:5000"); code != http.StatusOK {
		t.Fatalf("different host refused (%d)", code)
	}
	// Observability endpoints are exempt: the rate-limited client's host
	// (think a Prometheus scraper behind the same NAT) still scrapes.
	for _, path := range []string{"/v1/stats", "/v1/metrics"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		req.RemoteAddr = "192.0.2.1:5000"
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s from rate-limited host = %d, want 200 (exempt)", path, w.Code)
		}
	}
}

func TestRateLimiterTableBounded(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewRateLimiter(10, 3)
	l.now = func() time.Time { return now }
	// With time frozen, every bucket stays mid-drain (tokens < burst), so
	// full-bucket eviction never applies; the stalest-bucket fallback must
	// still hold the table at maxBuckets as new clients keep arriving.
	for i := 0; i < maxBuckets+64; i++ {
		if !l.Allow(fmt.Sprintf("client-%d", i)) {
			t.Fatalf("fresh client %d refused", i)
		}
		if n := len(l.buckets); n > maxBuckets {
			t.Fatalf("bucket table grew to %d entries, beyond cap %d", n, maxBuckets)
		}
	}
}

// --- WebSocket client helpers (test side of RFC 6455) ---

// wsDial performs the client half of the opening handshake against a
// started Server and returns the raw connection positioned after the 101.
func wsDial(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	key := base64.StdEncoding.EncodeToString([]byte("0123456789abcdef"))
	fmt.Fprintf(conn, "GET /v1/live HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n", addr, key)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("read status: %v", err)
	}
	if !strings.Contains(status, "101") {
		t.Fatalf("handshake status = %q, want 101", strings.TrimSpace(status))
	}
	var accept string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read headers: %v", err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Sec-WebSocket-Accept: "); ok {
			accept = v
		}
	}
	if accept != wsAccept(key) {
		t.Fatalf("Sec-WebSocket-Accept = %q, want %q", accept, wsAccept(key))
	}
	return conn, br
}

// wsReadFrame reads one server frame (unmasked) from the test client side.
func wsReadFrame(t *testing.T, br *bufio.Reader) (byte, []byte) {
	t.Helper()
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatalf("read frame header: %v", err)
	}
	length := int(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			t.Fatalf("read extended length: %v", err)
		}
		length = int(binary.BigEndian.Uint16(ext[:]))
	case 127:
		t.Fatal("unexpectedly huge server frame")
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatalf("read payload: %v", err)
	}
	return hdr[0] & 0x0F, payload
}

// wsWriteClientFrame writes one masked client frame.
func wsWriteClientFrame(t *testing.T, conn net.Conn, op byte, payload []byte) {
	t.Helper()
	if len(payload) >= 126 {
		t.Fatal("test helper supports only short frames")
	}
	mask := [4]byte{0x12, 0x34, 0x56, 0x78}
	buf := make([]byte, 0, 6+len(payload))
	buf = append(buf, 0x80|op, 0x80|byte(len(payload)))
	buf = append(buf, mask[:]...)
	for i, b := range payload {
		buf = append(buf, b^mask[i%4])
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatalf("write client frame: %v", err)
	}
}

// startServer starts the tier on a loopback port and returns its address.
func startServer(t *testing.T, s *Server) string {
	t.Helper()
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return s.Addr()
}

func TestLiveFeedBroadcast(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	addr := startServer(t, s)
	defer s.Close()

	conn, br := wsDial(t, addr)
	defer conn.Close()

	// The subscriber registers asynchronously with the handler goroutine;
	// wait for the hub to see it before broadcasting.
	waitFor(t, func() bool { return s.Hub().Conns() == 1 })

	hook := s.Hub().RoundHook()
	rs := server.RoundSummary{Shard: 2, Round: 9, Queries: 17, P95: 0.004}
	hook(rs)

	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	op, payload := wsReadFrame(t, br)
	if op != opText {
		t.Fatalf("opcode = %#x, want text", op)
	}
	var got server.RoundSummary
	if err := json.Unmarshal(payload, &got); err != nil {
		t.Fatalf("payload is not a RoundSummary: %v (%s)", err, payload)
	}
	if got != rs {
		t.Fatalf("round summary = %+v, want %+v", got, rs)
	}

	// Ping → pong with the same payload.
	wsWriteClientFrame(t, conn, opPing, []byte("hello"))
	op, payload = wsReadFrame(t, br)
	if op != opPong || string(payload) != "hello" {
		t.Fatalf("ping answer = %#x %q, want pong hello", op, payload)
	}

	// Client close → server echoes the client's status code (RFC 6455
	// §5.5.1), connection unregistered.
	wsWriteClientFrame(t, conn, opClose, closePayload(4000, "done"))
	op, payload = wsReadFrame(t, br)
	if op != opClose || len(payload) < 2 || binary.BigEndian.Uint16(payload) != 4000 {
		t.Fatalf("close answer = %#x %v, want close echoing 4000", op, payload)
	}
	waitFor(t, func() bool { return s.Hub().Conns() == 0 })
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	// A masked frame whose 64-bit extended length is past int64 (or just
	// past the size cap) must be a protocol error — not a negative length
	// that slips past the bound check into make, which panics.
	for _, declared := range []uint64{maxClientFrame + 1, 1 << 63, ^uint64(0)} {
		var buf bytes.Buffer
		buf.Write([]byte{0x80 | opText, 0x80 | 127}) // FIN text, masked, 64-bit length
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], declared)
		buf.Write(ext[:])
		buf.Write([]byte{0x12, 0x34, 0x56, 0x78}) // mask key
		if _, _, err := readFrame(bufio.NewReader(&buf)); err == nil {
			t.Fatalf("frame declaring %d bytes accepted", declared)
		}
	}
}

func TestLiveFeedRejectsOversizedFrame(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	addr := startServer(t, s)
	defer s.Close()

	conn, br := wsDial(t, addr)
	defer conn.Close()
	waitFor(t, func() bool { return s.Hub().Conns() == 1 })

	// 14 bytes claiming a 2^63-byte payload: the server must answer with a
	// protocol-error close and unregister the connection, not panic the
	// handler and leak the hub registration.
	frame := []byte{0x80 | opText, 0x80 | 127}
	var ext [8]byte
	binary.BigEndian.PutUint64(ext[:], 1<<63)
	frame = append(frame, ext[:]...)
	frame = append(frame, 0x12, 0x34, 0x56, 0x78)
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("write oversized frame: %v", err)
	}

	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	op, p := wsReadFrame(t, br)
	if op != opClose || len(p) < 2 || binary.BigEndian.Uint16(p) != 1002 {
		t.Fatalf("answer = %#x %v, want close 1002", op, p)
	}
	waitFor(t, func() bool { return s.Hub().Conns() == 0 })
}

func TestLiveFeedDropsSlowConsumer(t *testing.T) {
	s, _ := newTestServer(t, Config{LiveQueue: 2})
	addr := startServer(t, s)
	defer s.Close()

	conn, br := wsDial(t, addr)
	defer conn.Close()
	waitFor(t, func() bool { return s.Hub().Conns() == 1 })

	// Never read: the send queue (2) plus the socket buffer absorb some
	// frames, then the hub must drop us rather than block.
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 10_000 && s.Hub().Dropped() == 0; i++ {
		s.Hub().Broadcast(payload)
	}
	if s.Hub().Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", s.Hub().Dropped())
	}
	waitFor(t, func() bool { return s.Hub().Conns() == 0 })

	// The dropped client eventually sees a 1008 close frame.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		op, p := wsReadFrame(t, br)
		if op != opClose {
			continue // buffered broadcast frames before the close
		}
		if len(p) < 2 || binary.BigEndian.Uint16(p) != 1008 {
			t.Fatalf("close payload = %v, want status 1008", p)
		}
		break
	}
}

func TestLiveFeedRejectsPlainGET(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/live", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusUpgradeRequired {
		t.Fatalf("plain GET /v1/live = %d, want 426", w.Code)
	}
}

// TestShutdownDrains is the graceful-drain acceptance check: every request
// admitted before Shutdown is answered, the live feed closes cleanly, and
// no goroutine survives.
func TestShutdownDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s, b := newTestServer(t, Config{DefaultTimeout: 5 * time.Second})
	addr := startServer(t, s)

	// A live subscriber to drain too.
	wsc, wsbr := wsDial(t, addr)
	defer wsc.Close()
	waitFor(t, func() bool { return s.Hub().Conns() == 1 })

	// Park inFlight requests on the backend.
	const inFlight = 8
	var started, done sync.WaitGroup
	codes := make([]int, inFlight)
	client := &http.Client{}
	for i := 0; i < inFlight; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/query",
				strings.NewReader(`{"query":"slow"}`))
			started.Done()
			resp, err := client.Do(req)
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	started.Wait()
	waitFor(t, func() bool { return b.submits.Load() >= inFlight })

	// Shutdown concurrently with the parked requests; release the backend
	// once the listener has stopped accepting.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// New connections must be refused once the listener closes.
	waitFor(t, func() bool {
		c, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			return true
		}
		c.Close()
		return false
	})
	close(b.release)

	done.Wait()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("in-flight request %d answered %d, want 200 (all: %v)", i, code, codes)
		}
	}
	if !b.closed.Load() {
		t.Fatal("backend not closed by Shutdown")
	}

	// The live subscriber got a going-away close frame.
	wsc.SetReadDeadline(time.Now().Add(2 * time.Second))
	op, p := wsReadFrame(t, wsbr)
	if op != opClose || len(p) < 2 || binary.BigEndian.Uint16(p) != 1001 {
		t.Fatalf("live close frame = %#x %v, want close 1001", op, p)
	}

	// Zero goroutine leaks (allow the runtime a moment to reap).
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline })
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
