package netserve

import (
	"fmt"
	"io"

	"sharedwd/internal/server"
)

// The Prometheus text exposition (format 0.0.4) of the fleet's merged
// server.Metrics. Metric names derive from the Metrics JSON schema's
// snake_case keys under the sharedwd_ prefix — counters get the _total
// suffix, the four latency stages become summary families with quantile
// labels — so the /v1/stats JSON and /v1/metrics scrape describe the same
// numbers under mechanically related names.

// promCounter writes one counter family.
func promCounter(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
}

// promGauge writes one gauge family.
func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
}

// promSummary writes one summary family from a latency distribution:
// histogram-estimated quantiles plus the exact sum and count.
func promSummary(w io.Writer, name, help string, d server.LatencyDist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		fmt.Fprintf(w, "%s{quantile=%q} %v\n", name, fmt.Sprintf("%g", q), d.Quantile(q))
	}
	fmt.Fprintf(w, "%s_sum %v\n", name, d.Mean()*float64(d.Count()))
	fmt.Fprintf(w, "%s_count %d\n", name, d.Count())
}

// edgeStats carries the network tier's own counters into the exposition,
// alongside the serving fleet's.
type edgeStats struct {
	liveConns    int
	liveDropped  int64
	raterefused  int64
	httpRequests int64
}

// writeProm renders the merged fleet metrics (plus the edge's own
// counters) in Prometheus text exposition format.
func writeProm(w io.Writer, m server.Metrics, edge edgeStats) {
	promGauge(w, "sharedwd_uptime_seconds", "Time since the oldest serving worker started.", m.Uptime.Seconds())

	promCounter(w, "sharedwd_submitted_total", "Queries submitted (answered + in flight + unmatched + shed + timed out).", float64(m.Submitted))
	promCounter(w, "sharedwd_answered_total", "Queries answered with an auction outcome.", float64(m.Answered))
	promCounter(w, "sharedwd_unmatched_total", "Queries matching no bid phrase (no auction ran).", float64(m.Unmatched))
	promCounter(w, "sharedwd_shed_total", "Queries shed by admission-queue backpressure.", float64(m.Shed))
	promCounter(w, "sharedwd_timed_out_total", "Queries whose deadline expired before their round closed.", float64(m.TimedOut))
	promCounter(w, "sharedwd_expired_total", "Admitted queries abandoned by their caller before the round closed.", float64(m.Expired))

	promGauge(w, "sharedwd_queue_depth", "Current admission-queue occupancy summed across workers.", float64(m.QueueDepth))
	promGauge(w, "sharedwd_queue_cap", "Admission-queue capacity summed across workers.", float64(m.QueueCap))

	promCounter(w, "sharedwd_rounds_total", "Engine rounds closed across workers.", float64(m.Rounds))
	promCounter(w, "sharedwd_empty_rounds_total", "Rounds closed with no live request (zero-traffic ticks).", float64(m.EmptyRounds))
	promGauge(w, "sharedwd_rounds_per_sec", "Lifetime round rate.", m.RoundsPerSec)
	promGauge(w, "sharedwd_queries_per_sec", "Lifetime answered-query rate.", m.QueriesPerSec)

	promSummary(w, "sharedwd_admission_wait_seconds", "Time spent in the admission queue.", m.AdmissionWait)
	promSummary(w, "sharedwd_round_wait_seconds", "Time waiting for the round to close after dequeue.", m.RoundWait)
	promSummary(w, "sharedwd_winner_determination_seconds", "Winner-determination time per non-empty round.", m.WinnerDetermination)
	promSummary(w, "sharedwd_total_latency_seconds", "Total submit-to-answer latency.", m.TotalLatency)

	promCounter(w, "sharedwd_engine_rounds_total", "Engine-lifetime rounds.", float64(m.Engine.Rounds))
	promCounter(w, "sharedwd_engine_auctions_resolved_total", "Auctions resolved.", float64(m.Engine.AuctionsResolved))
	promCounter(w, "sharedwd_engine_nodes_materialized_total", "Top-k aggregation operations performed.", float64(m.Engine.NodesMaterialized))
	promCounter(w, "sharedwd_engine_nodes_cached_total", "Plan nodes served from the cross-round cache.", float64(m.Engine.NodesCached))
	promCounter(w, "sharedwd_engine_revenue_total", "Revenue from charged clicks.", m.Engine.Revenue)
	promCounter(w, "sharedwd_engine_clicks_charged_total", "Clicks charged against budgets.", float64(m.Engine.ClicksCharged))
	promCounter(w, "sharedwd_engine_clicks_forgiven_total", "Clicks forgiven because the budget was exhausted.", float64(m.Engine.ClicksForgiven))
	promCounter(w, "sharedwd_engine_forgiven_value_total", "Value of forgiven clicks (the paper's lost revenue).", m.Engine.ForgivenValue)
	promCounter(w, "sharedwd_engine_ads_displayed_total", "Ads displayed.", float64(m.Engine.AdsDisplayed))

	promCounter(w, "sharedwd_plan_swaps_total", "Plans hot-swapped into engines by the adaptive replanner.", float64(m.PlanSwaps))
	promCounter(w, "sharedwd_replan_builds_total", "Background plan rebuilds started.", float64(m.ReplanBuilds))

	if m.Pacing.Enabled {
		promGauge(w, "sharedwd_pacing_advertisers", "Advertiser universe under pacing control.", float64(m.Pacing.Advertisers))
		promGauge(w, "sharedwd_pacing_active", "Advertisers currently active (joined, not left).", float64(m.Pacing.Active))
		promCounter(w, "sharedwd_pacing_rounds_total", "Pacing controller steps taken.", float64(m.Pacing.Rounds))
		promCounter(w, "sharedwd_pacing_epochs_total", "Budget-refresh epochs applied.", float64(m.Pacing.Epochs))
		promGauge(w, "sharedwd_pacing_target_spend", "Fleet target-curve spend at the last controller step.", m.Pacing.TargetSpend)
		promGauge(w, "sharedwd_pacing_actual_spend", "Fleet realized epoch spend at the last controller step.", m.Pacing.ActualSpend)
		promGauge(w, "sharedwd_pacing_throttled", "Advertisers with pacing factor below 1 at the last step.", float64(m.Pacing.Throttled))
		if m.Pacing.Active > 0 {
			promGauge(w, "sharedwd_pacing_factor_mean", "Mean pacing factor over active advertisers.", m.Pacing.FactorSum/float64(m.Pacing.Active))
		}
		promGauge(w, "sharedwd_pacing_abs_error_mean", "Mean per-advertiser |realized - target| spend per controller step.", m.Pacing.AbsError.Mean())
	}

	promGauge(w, "sharedwd_live_connections", "Current /v1/live WebSocket subscribers.", float64(edge.liveConns))
	promCounter(w, "sharedwd_live_dropped_total", "Slow /v1/live subscribers disconnected.", float64(edge.liveDropped))
	promCounter(w, "sharedwd_rate_limited_total", "Requests refused by the edge rate limiter.", float64(edge.raterefused))
	promCounter(w, "sharedwd_http_requests_total", "HTTP requests received by the edge (rate-limited included).", float64(edge.httpRequests))
}
