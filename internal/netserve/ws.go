package netserve

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/server"
)

// The WebSocket support is a hand-rolled server-side subset of RFC 6455 —
// the stdlib has no WebSocket package and this repo adds no dependencies.
// Scope: the opening handshake (server role), text data frames out,
// control-frame handling in (ping → pong, close → close), and a broadcast
// hub whose per-connection buffered send queues drop slow consumers
// instead of ever blocking the round loop that publishes into it.

const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket frame opcodes (RFC 6455 §5.2).
const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// maxClientFrame bounds what a client may send on the live feed — the feed
// is server-push; inbound traffic is control frames and noise.
const maxClientFrame = 4096

// wsAccept computes the Sec-WebSocket-Accept token for a handshake key.
func wsAccept(key string) string {
	h := sha1.New()
	io.WriteString(h, key)
	io.WriteString(h, wsGUID)
	return base64.StdEncoding.EncodeToString(h.Sum(nil))
}

// headerContainsToken reports whether a comma-separated header value
// contains the token (ASCII case-insensitive), as RFC 7230 list syntax
// requires — "Connection: keep-alive, Upgrade" must match "upgrade".
func headerContainsToken(value, token string) bool {
	for _, part := range strings.Split(value, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// wsUpgrade performs the RFC 6455 §4.2 server-side opening handshake:
// validates the upgrade headers, hijacks the connection, clears the HTTP
// server's deadlines (the hub manages per-frame deadlines from here on),
// and writes the 101 response. On failure it writes the HTTP error itself
// and returns a nil conn.
func wsUpgrade(w http.ResponseWriter, r *http.Request) (net.Conn, *bufio.Reader) {
	if !headerContainsToken(r.Header.Get("Connection"), "upgrade") ||
		!headerContainsToken(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "netserve: /v1/live speaks WebSocket; missing Upgrade headers", http.StatusUpgradeRequired)
		return nil, nil
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, fmt.Sprintf("netserve: unsupported WebSocket version %q", v), http.StatusUpgradeRequired)
		return nil, nil
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "netserve: missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, nil
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "netserve: connection cannot be hijacked", http.StatusInternalServerError)
		return nil, nil
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		http.Error(w, "netserve: hijack failed", http.StatusInternalServerError)
		return nil, nil
	}
	// The HTTP server set read/write deadlines for the request cycle; a
	// live feed outlives them. Per-frame deadlines take over.
	conn.SetDeadline(time.Time{})
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close()
		return nil, nil
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, nil
	}
	return conn, rw.Reader
}

// writeFrame writes one unmasked server-to-client frame with FIN set.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	var hdr [10]byte
	hdr[0] = 0x80 | op
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) < 1<<16:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(payload)))
		n = 10
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// closePayload renders a close frame's status code + reason text.
func closePayload(code uint16, reason string) []byte {
	p := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(p, code)
	copy(p[2:], reason)
	return p
}

// readFrame reads one client-to-server frame and unmasks its payload. RFC
// 6455 §5.1 requires every client frame be masked; unmasked or oversized
// frames are protocol errors.
func readFrame(br *bufio.Reader) (op byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	op = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	// The declared length stays uint64 until after the bound check: the
	// 64-bit extended form can name sizes past int64, which must hit the
	// size limit, not wrap negative and slip past it into make.
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if !masked {
		return 0, nil, fmt.Errorf("netserve: unmasked client frame")
	}
	if length > maxClientFrame {
		return 0, nil, fmt.Errorf("netserve: client frame of %d bytes exceeds %d", length, maxClientFrame)
	}
	var mask [4]byte
	if _, err = io.ReadFull(br, mask[:]); err != nil {
		return 0, nil, err
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(br, payload); err != nil {
		return 0, nil, err
	}
	for i := range payload {
		payload[i] ^= mask[i%4]
	}
	return op, payload, nil
}

// closeEcho picks the status the server sends back for a received close
// frame. RFC 6455 §5.5.1 has the endpoint typically echo the client's own
// status code; an empty close payload answers 1000, and a code that may
// not appear on the wire (<1000, or the reserved 1005/1006/1015) is a
// protocol error.
func closeEcho(payload []byte) uint16 {
	if len(payload) < 2 {
		return 1000
	}
	code := binary.BigEndian.Uint16(payload)
	if code < 1000 || code == 1005 || code == 1006 || code == 1015 {
		return 1002
	}
	return code
}

// wsFrame is one queued outbound frame.
type wsFrame struct {
	op      byte
	payload []byte
}

// wsConn is one live-feed subscriber: the hijacked TCP connection plus its
// bounded send queue. The writer goroutine is the only writer to the
// socket; the reader goroutine only consumes control frames.
type wsConn struct {
	netc net.Conn
	br   *bufio.Reader
	send chan wsFrame
	stop chan struct{}
	once sync.Once

	// closeCode/closeReason are what the writer sends in its parting close
	// frame; set (before kill) by whoever decides to end the connection.
	closeCode   uint16
	closeReason string
}

// kill schedules the connection's teardown: the writer goroutine sends the
// close frame and closes the socket, which in turn unblocks the reader.
// Idempotent and safe from any goroutine.
func (c *wsConn) kill(code uint16, reason string) {
	c.once.Do(func() {
		c.closeCode, c.closeReason = code, reason
		close(c.stop)
	})
}

// Hub fans round summaries out to every connected /v1/live subscriber.
// Each connection owns a buffered send queue; Broadcast never blocks — a
// subscriber whose queue is full when a message arrives is dropped (its
// connection closed with status 1008) rather than ever stalling the
// publisher, which is a serving round loop. Safe for concurrent use.
type Hub struct {
	queue        int
	writeTimeout time.Duration

	mu     sync.Mutex
	conns  map[*wsConn]struct{}
	closed bool
	wg     sync.WaitGroup

	dropped   atomic.Int64 // slow consumers disconnected
	delivered atomic.Int64 // frames enqueued for delivery
}

// NewHub returns an empty hub whose per-connection send queues hold queue
// messages (minimum 1; 16 is a sane default) and whose frame writes time
// out after writeTimeout (0 means 10 s).
func NewHub(queue int, writeTimeout time.Duration) *Hub {
	if queue < 1 {
		queue = 1
	}
	if writeTimeout <= 0 {
		writeTimeout = 10 * time.Second
	}
	return &Hub{
		queue:        queue,
		writeTimeout: writeTimeout,
		conns:        make(map[*wsConn]struct{}),
	}
}

// Conns returns the current subscriber count.
func (h *Hub) Conns() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

// Dropped returns how many slow consumers have been disconnected.
func (h *Hub) Dropped() int64 { return h.dropped.Load() }

// Delivered returns how many frames have been enqueued for delivery.
func (h *Hub) Delivered() int64 { return h.delivered.Load() }

// RoundHook adapts the hub to server.Config.OnRound: each round summary is
// marshaled once and broadcast to every subscriber. With no subscribers it
// returns without marshaling, so an unwatched server pays nothing.
func (h *Hub) RoundHook() func(server.RoundSummary) {
	return func(rs server.RoundSummary) {
		if h.Conns() == 0 {
			return
		}
		data, err := json.Marshal(rs)
		if err != nil {
			return // a struct of ints and floats cannot fail; belt and braces
		}
		h.Broadcast(data)
	}
}

// Broadcast enqueues one text frame to every subscriber without blocking:
// subscribers whose queue is full are dropped. Safe for concurrent use.
func (h *Hub) Broadcast(payload []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for c := range h.conns {
		select {
		case c.send <- wsFrame{op: opText, payload: payload}:
			h.delivered.Add(1)
		default:
			delete(h.conns, c)
			h.dropped.Add(1)
			c.kill(1008, "slow consumer")
		}
	}
}

// serve registers a freshly upgraded connection and runs its reader loop
// (the caller's goroutine) plus a writer goroutine. It returns when the
// connection is torn down — client close, protocol error, slow-consumer
// drop, or hub shutdown.
func (h *Hub) serve(netc net.Conn, br *bufio.Reader) {
	c := &wsConn{
		netc: netc,
		br:   br,
		send: make(chan wsFrame, h.queue),
		stop: make(chan struct{}),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		netc.SetWriteDeadline(time.Now().Add(h.writeTimeout))
		writeFrame(netc, opClose, closePayload(1001, "server shutting down"))
		netc.Close()
		return
	}
	h.conns[c] = struct{}{}
	h.wg.Add(1) // the writer; the reader runs on the caller's goroutine
	h.mu.Unlock()

	go h.writer(c)
	h.reader(c)
}

// writer drains the send queue onto the socket until the connection is
// killed, then sends the close frame and closes the socket (which unblocks
// the reader).
func (h *Hub) writer(c *wsConn) {
	defer h.wg.Done()
	defer c.netc.Close()
	for {
		select {
		case f := <-c.send:
			c.netc.SetWriteDeadline(time.Now().Add(h.writeTimeout))
			if err := writeFrame(c.netc, f.op, f.payload); err != nil {
				c.kill(1002, "write failed")
				h.detach(c)
				return
			}
		case <-c.stop:
			c.netc.SetWriteDeadline(time.Now().Add(h.writeTimeout))
			writeFrame(c.netc, opClose, closePayload(c.closeCode, c.closeReason))
			return
		}
	}
}

// reader consumes client frames: pong replies to pings, teardown on close
// frames or protocol errors, and everything else is discarded (the live
// feed is one-way).
func (h *Hub) reader(c *wsConn) {
	for {
		op, payload, err := readFrame(c.br)
		if err != nil {
			c.kill(1002, "protocol error")
			h.detach(c)
			return
		}
		switch op {
		case opClose:
			c.kill(closeEcho(payload), "")
			h.detach(c)
			return
		case opPing:
			// Best effort: a pong that would overflow the queue is dropped,
			// never blocked on.
			select {
			case c.send <- wsFrame{op: opPong, payload: payload}:
			default:
			}
		case opPong, opText, opBinary, opContinuation:
			// Ignored: the feed is server-push.
		}
	}
}

// detach removes a connection from the broadcast set (no-op if Broadcast
// already dropped it).
func (h *Hub) detach(c *wsConn) {
	h.mu.Lock()
	delete(h.conns, c)
	h.mu.Unlock()
}

// Close disconnects every subscriber with a going-away close frame,
// refuses new registrations, and waits for all writer goroutines to exit.
// Idempotent; safe to call concurrently.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	for c := range h.conns {
		delete(h.conns, c)
		c.kill(1001, "server shutting down")
	}
	h.mu.Unlock()
	h.wg.Wait()
}
