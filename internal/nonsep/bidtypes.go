package nonsep

import (
	"fmt"
)

// BidType selects what event an advertiser pays for, per the ICDE'08
// framework Section V builds on: advertisers may bid on clicks (classic
// CPC), on impressions (CPM — pay whenever the ad is shown), or on
// purchases/conversions (CPA — pay when a click converts).
type BidType int

// The supported bid types.
const (
	PerClick BidType = iota
	PerImpression
	PerAction
)

// String names the bid type.
func (t BidType) String() string {
	switch t {
	case PerClick:
		return "per-click"
	case PerImpression:
		return "per-impression"
	case PerAction:
		return "per-action"
	default:
		return fmt.Sprintf("BidType(%d)", int(t))
	}
}

// Bidder is one advertiser in the generalized setting: a bid of the given
// type, a per-slot click-through row, and (for PerAction bidders) a
// conversion rate — the probability a click becomes a purchase.
type Bidder struct {
	Bid            float64
	Type           BidType
	CTR            []float64 // ctr per slot, arbitrary (non-separable)
	ConversionRate float64   // used by PerAction
}

// ExpectedValue returns the expected realized bid of placing the bidder in
// slot j: what the search provider expects to collect from that placement.
//
//	per-impression: bid            (the impression itself realizes the bid)
//	per-click:      bid·ctr_j
//	per-action:     bid·ctr_j·conv
func (b Bidder) ExpectedValue(j int) float64 {
	switch b.Type {
	case PerImpression:
		return b.Bid
	case PerClick:
		return b.Bid * b.CTR[j]
	case PerAction:
		return b.Bid * b.CTR[j] * b.ConversionRate
	default:
		panic(fmt.Sprintf("nonsep: unknown bid type %d", b.Type))
	}
}

// SolveMixed performs winner determination over bidders of mixed bid types:
// the advertiser×slot graph is weighted by expected realized bid, pruned to
// each slot's top-k candidates, and matched with the Hungarian algorithm —
// the full ICDE'08 pipeline with the paper's shared top-k primitive
// applicable to the pruning stage.
func SolveMixed(bidders []Bidder) Result {
	if len(bidders) == 0 {
		return Result{}
	}
	k := len(bidders[0].CTR)
	weights := make([][]float64, len(bidders))
	for i, b := range bidders {
		if len(b.CTR) != k {
			panic(fmt.Sprintf("nonsep: bidder %d has %d ctr entries, want %d", i, len(b.CTR), k))
		}
		if b.Bid < 0 || b.ConversionRate < 0 || b.ConversionRate > 1 {
			panic(fmt.Sprintf("nonsep: bidder %d has invalid bid %v or conversion %v", i, b.Bid, b.ConversionRate))
		}
		weights[i] = make([]float64, k)
		for j := range weights[i] {
			weights[i][j] = b.ExpectedValue(j)
		}
	}
	// Reuse the weight-matrix pipeline with unit "bids": weights already
	// embed the bid, so pass bids=1 and ctr=weights.
	ones := make([]float64, len(bidders))
	for i := range ones {
		ones[i] = 1
	}
	return Solve(ones, weights)
}

// SolveMixedExhaustive is the unpruned reference for SolveMixed.
func SolveMixedExhaustive(bidders []Bidder) Result {
	if len(bidders) == 0 {
		return Result{}
	}
	k := len(bidders[0].CTR)
	weights := make([][]float64, len(bidders))
	for i, b := range bidders {
		weights[i] = make([]float64, k)
		for j := range weights[i] {
			weights[i][j] = b.ExpectedValue(j)
		}
	}
	ones := make([]float64, len(bidders))
	for i := range ones {
		ones[i] = 1
	}
	return SolveExhaustive(ones, weights)
}
