package nonsep

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBidTypeString(t *testing.T) {
	for bt, want := range map[BidType]string{
		PerClick: "per-click", PerImpression: "per-impression", PerAction: "per-action",
	} {
		if bt.String() != want {
			t.Fatalf("String(%d) = %q", bt, bt.String())
		}
	}
}

func TestExpectedValueByHand(t *testing.T) {
	b := Bidder{Bid: 10, CTR: []float64{0.5, 0.2}, ConversionRate: 0.1}
	b.Type = PerImpression
	if b.ExpectedValue(0) != 10 || b.ExpectedValue(1) != 10 {
		t.Fatal("per-impression value should ignore slot")
	}
	b.Type = PerClick
	if b.ExpectedValue(0) != 5 || b.ExpectedValue(1) != 2 {
		t.Fatal("per-click value should scale by ctr")
	}
	b.Type = PerAction
	if math.Abs(b.ExpectedValue(0)-0.5) > 1e-12 {
		t.Fatal("per-action value should scale by ctr·conversion")
	}
}

func TestSolveMixedKnown(t *testing.T) {
	// A CPM bidder realizes its bid regardless of slot, so it should take
	// the *worst* slot, freeing the best slot for the CPC bidder.
	bidders := []Bidder{
		{Bid: 3, Type: PerImpression, CTR: []float64{0.5, 0.1}},
		{Bid: 10, Type: PerClick, CTR: []float64{0.5, 0.1}},
	}
	res := SolveMixed(bidders)
	if res.Slots[0] != 1 || res.Slots[1] != 0 {
		t.Fatalf("slots = %v, want CPC in slot 0, CPM in slot 1", res.Slots)
	}
	if math.Abs(res.Value-(5+3)) > 1e-9 {
		t.Fatalf("value = %v, want 8", res.Value)
	}
}

func TestSolveMixedValidation(t *testing.T) {
	for i, bad := range [][]Bidder{
		{{Bid: 1, CTR: []float64{0.1, 0.2}}, {Bid: 1, CTR: []float64{0.1}}},
		{{Bid: -1, CTR: []float64{0.1}}},
		{{Bid: 1, CTR: []float64{0.1}, ConversionRate: 2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			SolveMixed(bad)
		}()
	}
	if res := SolveMixed(nil); len(res.Slots) != 0 {
		t.Fatal("empty input should yield empty result")
	}
}

func randomBidders(rng *rand.Rand, n, k int) []Bidder {
	out := make([]Bidder, n)
	for i := range out {
		b := Bidder{
			Bid:            rng.Float64() * 10,
			Type:           BidType(rng.Intn(3)),
			CTR:            make([]float64, k),
			ConversionRate: rng.Float64(),
		}
		for j := range b.CTR {
			if rng.Intn(4) != 0 {
				b.CTR[j] = rng.Float64() * 0.5
			}
		}
		out[i] = b
	}
	return out
}

// TestQuickMixedPruningLossless: the k²-pruned mixed-type solution matches
// exhaustive matching.
func TestQuickMixedPruningLossless(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bidders := randomBidders(rng, 1+rng.Intn(25), 1+rng.Intn(4))
		a := SolveMixed(bidders)
		b := SolveMixedExhaustive(bidders)
		return math.Abs(a.Value-b.Value) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMixedReducesToClassic: with all bidders PerClick, SolveMixed
// agrees with the classic Solve on the same weights.
func TestQuickMixedReducesToClassic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(15), 1+rng.Intn(4)
		bidders := make([]Bidder, n)
		bids := make([]float64, n)
		ctr := make([][]float64, n)
		for i := range bidders {
			bids[i] = rng.Float64() * 10
			ctr[i] = make([]float64, k)
			for j := range ctr[i] {
				ctr[i][j] = rng.Float64() * 0.5
			}
			bidders[i] = Bidder{Bid: bids[i], Type: PerClick, CTR: ctr[i]}
		}
		return math.Abs(SolveMixed(bidders).Value-Solve(bids, ctr).Value) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
