// Package nonsep implements the non-separable winner-determination
// framework of Martin–Gehrke–Halpern (ICDE'08) that Section V of the paper
// adapts: for an arbitrary click-through matrix, build the advertiser×slot
// bipartite graph weighted by expected realized bid, prune each slot to its
// top-k incident advertisers (leaving at most k² candidates), and find the
// maximum-weight matching over the pruned graph with the Hungarian
// algorithm.
//
// The pruning is lossless: if an advertiser is outside the top k weights of
// every slot, then in any assignment using him some slot could swap to an
// unused top-k advertiser of at least that weight (at most k−1 of a slot's
// top k are occupied elsewhere), so an optimal assignment over the pruned
// graph is optimal overall.
//
// The per-slot top-k selection is exactly the aggregation primitive of
// Section II, so shared winner determination plugs in here: PruneShared
// computes per-slot candidate lists with the shared top-k machinery when
// several simultaneous auctions share advertisers.
package nonsep

import (
	"fmt"
	"sort"

	"sharedwd/internal/hungarian"
	"sharedwd/internal/topk"
)

// Result is the outcome of non-separable winner determination.
type Result struct {
	// Slots[j] is the advertiser assigned to slot j, or -1.
	Slots []int
	// Value is the total expected realized bid.
	Value float64
	// Candidates is the number of advertisers surviving pruning.
	Candidates int
}

// Solve performs winner determination for bids and an arbitrary
// click-through matrix ctr[i][j] using top-k pruning + Hungarian matching.
func Solve(bids []float64, ctr [][]float64) Result {
	if len(bids) != len(ctr) {
		panic(fmt.Sprintf("nonsep: %d bids for %d ctr rows", len(bids), len(ctr)))
	}
	if len(ctr) == 0 {
		return Result{}
	}
	k := len(ctr[0])
	candidates := Prune(bids, ctr)
	return matchCandidates(bids, ctr, k, candidates)
}

// Prune returns the union over slots of each slot's top-k advertisers by
// weight b_i·ctr_ij — at most k² candidates, ordered ascending.
func Prune(bids []float64, ctr [][]float64) []int {
	if len(ctr) == 0 {
		return nil
	}
	k := len(ctr[0])
	seen := make(map[int]bool)
	for j := 0; j < k; j++ {
		slotTop := topk.New(k)
		for i, row := range ctr {
			if len(row) != k {
				panic("nonsep: ragged ctr matrix")
			}
			if w := bids[i] * row[j]; w > 0 {
				slotTop.Push(topk.Entry{ID: i, Score: w})
			}
		}
		for _, e := range slotTop.Entries() {
			seen[e.ID] = true
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// PruneShared computes each slot's top-k candidate list from pre-aggregated
// per-slot top-k lists (e.g. produced by a shared aggregation plan across
// simultaneous auctions) and returns the pruned candidate union. Lists must
// be scored by b_i·ctr_ij for their slot.
func PruneShared(perSlot []*topk.List) []int {
	seen := make(map[int]bool)
	for _, l := range perSlot {
		for _, e := range l.Entries() {
			seen[e.ID] = true
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// SolveWithCandidates runs the matching stage over an explicit candidate
// set (as produced by Prune or PruneShared).
func SolveWithCandidates(bids []float64, ctr [][]float64, candidates []int) Result {
	if len(ctr) == 0 {
		return Result{}
	}
	return matchCandidates(bids, ctr, len(ctr[0]), candidates)
}

func matchCandidates(bids []float64, ctr [][]float64, k int, candidates []int) Result {
	w := make([][]float64, len(candidates))
	for ci, i := range candidates {
		w[ci] = make([]float64, k)
		for j := 0; j < k; j++ {
			w[ci][j] = bids[i] * ctr[i][j]
		}
	}
	rowMatch, total := hungarian.Solve(w)
	res := Result{Slots: make([]int, k), Value: total, Candidates: len(candidates)}
	for j := range res.Slots {
		res.Slots[j] = -1
	}
	for ci, j := range rowMatch {
		if j >= 0 {
			res.Slots[j] = candidates[ci]
		}
	}
	return res
}

// SolveExhaustive matches over all advertisers with no pruning — the
// reference implementation pruning is certified against.
func SolveExhaustive(bids []float64, ctr [][]float64) Result {
	if len(ctr) == 0 {
		return Result{}
	}
	all := make([]int, len(bids))
	for i := range all {
		all[i] = i
	}
	return matchCandidates(bids, ctr, len(ctr[0]), all)
}
