package nonsep

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sharedwd/internal/topk"
)

func randomInstance(rng *rand.Rand, n, k int) ([]float64, [][]float64) {
	bids := make([]float64, n)
	ctr := make([][]float64, n)
	for i := range bids {
		bids[i] = rng.Float64() * 10
		ctr[i] = make([]float64, k)
		for j := range ctr[i] {
			if rng.Intn(4) == 0 {
				continue // sparse zeros: slot specialists
			}
			ctr[i][j] = rng.Float64() * 0.5
		}
	}
	return bids, ctr
}

func TestSolveEmpty(t *testing.T) {
	res := Solve(nil, nil)
	if res.Value != 0 || len(res.Slots) != 0 {
		t.Fatalf("empty solve: %+v", res)
	}
}

func TestSolveKnownInstance(t *testing.T) {
	bids := []float64{10, 10, 4}
	ctr := [][]float64{
		{0.5, 0.4},
		{0.5, 0.0},
		{0.1, 0.1},
	}
	res := Solve(bids, ctr)
	if !reflect.DeepEqual(res.Slots, []int{1, 0}) || math.Abs(res.Value-9) > 1e-9 {
		t.Fatalf("got %+v, want slots [1 0] value 9", res)
	}
}

func TestPruneKeepsAtMostKSquared(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bids, ctr := randomInstance(rng, 500, 4)
	cands := Prune(bids, ctr)
	if len(cands) > 16 {
		t.Fatalf("pruned to %d > k² = 16", len(cands))
	}
}

// TestQuickPruningIsLossless: the pruned solution equals the exhaustive
// matching value on random instances, including sparse specialist CTRs.
func TestQuickPruningIsLossless(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(30), 1+rng.Intn(4)
		bids, ctr := randomInstance(rng, n, k)
		pruned := Solve(bids, ctr)
		full := SolveExhaustive(bids, ctr)
		return math.Abs(pruned.Value-full.Value) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAssignmentIsConsistent: no advertiser appears twice, and the
// reported value equals the assignment's recomputed value.
func TestQuickAssignmentIsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(30), 1+rng.Intn(5)
		bids, ctr := randomInstance(rng, n, k)
		res := Solve(bids, ctr)
		seen := map[int]bool{}
		value := 0.0
		for j, i := range res.Slots {
			if i == -1 {
				continue
			}
			if seen[i] {
				return false
			}
			seen[i] = true
			value += bids[i] * ctr[i][j]
		}
		return math.Abs(value-res.Value) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPruneSharedMatchesPrune: feeding per-slot top-k lists (as a shared
// plan would produce) through PruneShared yields the same candidates as the
// direct Prune, and the same final assignment value.
func TestPruneSharedMatchesPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n, k := 2+rng.Intn(20), 1+rng.Intn(4)
		bids, ctr := randomInstance(rng, n, k)
		perSlot := make([]*topk.List, k)
		for j := 0; j < k; j++ {
			l := topk.New(k)
			for i := 0; i < n; i++ {
				if w := bids[i] * ctr[i][j]; w > 0 {
					l.Push(topk.Entry{ID: i, Score: w})
				}
			}
			perSlot[j] = l
		}
		a := Prune(bids, ctr)
		b := PruneShared(perSlot)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Prune %v != PruneShared %v", a, b)
		}
		va := SolveWithCandidates(bids, ctr, a).Value
		vb := SolveExhaustive(bids, ctr).Value
		if math.Abs(va-vb) > 1e-9 {
			t.Fatalf("value %v != %v", va, vb)
		}
	}
}

func BenchmarkSolvePruned(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{200, 2000} {
		bids, ctr := randomInstance(rng, n, 8)
		b.Run(map[int]string{200: "n=200", 2000: "n=2000"}[n], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Solve(bids, ctr)
			}
		})
	}
}

func BenchmarkSolveExhaustive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bids, ctr := randomInstance(rng, 200, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SolveExhaustive(bids, ctr)
	}
}
