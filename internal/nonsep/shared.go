package nonsep

import (
	"fmt"

	"sharedwd/internal/bitset"
	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/topk"
)

// SharedPruner implements the integration Section V describes: when several
// simultaneous auctions need non-separable winner determination over
// overlapping advertiser sets (and the click-through matrix depends on the
// advertiser and slot but not the phrase), the graph-pruning step — top-k
// advertisers per slot — is exactly the paper's shared top-k aggregation.
// One shared plan is built offline over the phrase interest sets and
// executed once per slot per round, reusing every shared sub-aggregate;
// the per-phrase Hungarian matching then runs on ≤ k² candidates each.
type SharedPruner struct {
	interests []bitset.Set
	slots     int
	p         *plan.Plan
	// queryOf maps each phrase to its plan query: phrases with identical
	// (A-equivalent) interest sets share one query, with the combined
	// occurrence rate 1 − Π(1 − sr).
	queryOf []int
}

// NewSharedPruner builds the shared plan for the phrase interest sets
// (capacity = number of advertisers) and slot count.
func NewSharedPruner(interests []bitset.Set, rates []float64, slots int) (*SharedPruner, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("nonsep: non-positive slot count %d", slots)
	}
	if len(interests) == 0 || len(interests) != len(rates) {
		return nil, fmt.Errorf("nonsep: %d interest sets, %d rates", len(interests), len(rates))
	}
	var queries []plan.Query
	queryOf := make([]int, len(interests))
	index := make(map[string]int)
	for q, in := range interests {
		if id, ok := index[in.Key()]; ok {
			// Identical interest sets share one aggregate; the shared
			// node's occurrence rate is 1 − Π(1 − sr) over its phrases.
			queryOf[q] = id
			queries[id].Rate = 1 - (1-queries[id].Rate)*(1-rates[q])
			continue
		}
		id := len(queries)
		index[in.Key()] = id
		queryOf[q] = id
		queries = append(queries, plan.Query{Vars: in, Rate: rates[q]})
	}
	inst, err := plan.NewInstance(interests[0].Cap(), queries)
	if err != nil {
		return nil, fmt.Errorf("nonsep: %w", err)
	}
	sp := &SharedPruner{interests: interests, slots: slots, p: sharedagg.Build(inst), queryOf: queryOf}
	if err := sp.p.Validate(); err != nil {
		return nil, fmt.Errorf("nonsep: invalid shared plan: %w", err)
	}
	return sp, nil
}

// PlanCost reports the shared plan's aggregation-node count and the naive
// per-phrase baseline's, per slot execution.
func (sp *SharedPruner) PlanCost() (shared, naive int) {
	return sp.p.TotalCost(), plan.NaivePlan(sp.p.Inst).TotalCost()
}

// SolveRound resolves every occurring phrase's auction: bids and ctr give
// the phrase-independent weight matrix w[i][j] = bids[i]·ctr[i][j]; the
// shared plan computes each phrase's per-slot top-k candidate lists; the
// pruned Hungarian matching finishes each auction. It returns per-phrase
// results and the total aggregation operations performed (the shared-work
// metric).
func (sp *SharedPruner) SolveRound(bids []float64, ctr [][]float64, occurring []bool) (map[int]Result, int, error) {
	n := sp.interests[0].Cap()
	if len(bids) != n || len(ctr) != n {
		return nil, 0, fmt.Errorf("nonsep: %d bids/%d ctr rows for %d advertisers", len(bids), len(ctr), n)
	}
	if occurring != nil && len(occurring) != len(sp.interests) {
		return nil, 0, fmt.Errorf("nonsep: %d occurrence flags for %d phrases", len(occurring), len(sp.interests))
	}
	// Translate phrase occurrence to query occurrence (a shared query runs
	// if any of its phrases occurred).
	queryOcc := make([]bool, len(sp.p.Inst.Queries))
	for q := range sp.interests {
		if occurring == nil || occurring[q] {
			queryOcc[sp.queryOf[q]] = true
		}
	}
	// Per-slot pass: aggregate top-k of w[·][slot] through the shared plan.
	perSlot := make([]map[int]*topk.List, sp.slots)
	ops := 0
	for j := 0; j < sp.slots; j++ {
		j := j
		leaf := func(v int) *topk.List {
			l := topk.New(sp.slots)
			if len(ctr[v]) != sp.slots {
				panic(fmt.Sprintf("nonsep: advertiser %d has %d ctr entries, want %d", v, len(ctr[v]), sp.slots))
			}
			if w := bids[v] * ctr[v][j]; w > 0 {
				l.Push(topk.Entry{ID: v, Score: w})
			}
			return l
		}
		res, mat := plan.Execute(sp.p, leaf, topk.Merge, queryOcc)
		perSlot[j] = res
		ops += mat
	}
	out := make(map[int]Result, len(sp.interests))
	for q := range sp.interests {
		if occurring != nil && !occurring[q] {
			continue
		}
		lists := make([]*topk.List, sp.slots)
		for j := 0; j < sp.slots; j++ {
			lists[j] = perSlot[j][sp.queryOf[q]]
		}
		out[q] = SolveWithCandidates(bids, ctr, PruneShared(lists))
	}
	return out, ops, nil
}
