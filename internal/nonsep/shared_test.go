package nonsep

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sharedwd/internal/bitset"
)

func sharedFixture(rng *rand.Rand, n, phrases, slots int) ([]bitset.Set, []float64, []float64, [][]float64) {
	interests := make([]bitset.Set, phrases)
	rates := make([]float64, phrases)
	for q := range interests {
		s := bitset.New(n)
		for a := 0; a < n/2; a++ {
			s.Add(a) // heavy overlap in the first half
		}
		for a := n / 2; a < n; a++ {
			if rng.Intn(3) == 0 {
				s.Add(a)
			}
		}
		if s.IsEmpty() {
			s.Add(rng.Intn(n))
		}
		interests[q] = s
		rates[q] = 0.5 + rng.Float64()*0.5
	}
	bids := make([]float64, n)
	ctr := make([][]float64, n)
	for i := range bids {
		bids[i] = rng.Float64() * 10
		ctr[i] = make([]float64, slots)
		for j := range ctr[i] {
			if rng.Intn(4) != 0 {
				ctr[i][j] = rng.Float64() * 0.5
			}
		}
	}
	return interests, rates, bids, ctr
}

func TestNewSharedPrunerValidation(t *testing.T) {
	s := bitset.FromIndices(3, 0, 1)
	if _, err := NewSharedPruner([]bitset.Set{s}, []float64{1}, 0); err == nil {
		t.Fatal("zero slots should be rejected")
	}
	if _, err := NewSharedPruner(nil, nil, 2); err == nil {
		t.Fatal("no interests should be rejected")
	}
	if _, err := NewSharedPruner([]bitset.Set{s}, []float64{1, 1}, 2); err == nil {
		t.Fatal("rate mismatch should be rejected")
	}
}

// TestQuickSharedRoundMatchesPerPhraseExhaustive: the shared-pruned round
// results equal exhaustive matching restricted to each phrase's interest
// set — lossless sharing, per phrase, per slot.
func TestQuickSharedRoundMatchesPerPhraseExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, phrases, slots := 6+rng.Intn(20), 2+rng.Intn(4), 1+rng.Intn(3)
		interests, rates, bids, ctr := sharedFixture(rng, n, phrases, slots)
		sp, err := NewSharedPruner(interests, rates, slots)
		if err != nil {
			return false
		}
		occurring := make([]bool, phrases)
		for q := range occurring {
			occurring[q] = rng.Intn(4) > 0
		}
		got, _, err := sp.SolveRound(bids, ctr, occurring)
		if err != nil {
			return false
		}
		for q, occ := range occurring {
			res, ok := got[q]
			if ok != occ {
				return false
			}
			if !occ {
				continue
			}
			want := SolveWithCandidates(bids, ctr, interests[q].Indices())
			if math.Abs(res.Value-want.Value) > 1e-9 {
				return false
			}
			// Winners must come from the phrase's interest set.
			for _, adv := range res.Slots {
				if adv >= 0 && !interests[q].Contains(adv) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedPrunerSharesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	interests, rates, bids, ctr := sharedFixture(rng, 120, 8, 3)
	sp, err := NewSharedPruner(interests, rates, 3)
	if err != nil {
		t.Fatal(err)
	}
	shared, naive := sp.PlanCost()
	if shared >= naive {
		t.Fatalf("shared plan %d not below naive %d", shared, naive)
	}
	occ := make([]bool, len(interests))
	for q := range occ {
		occ[q] = true
	}
	_, ops, err := sp.SolveRound(bids, ctr, occ)
	if err != nil {
		t.Fatal(err)
	}
	if ops != shared*3 { // one plan execution per slot, all queries occur
		t.Fatalf("ops = %d, want %d (plan cost × slots)", ops, shared*3)
	}
}

func TestSolveRoundValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	interests, rates, bids, ctr := sharedFixture(rng, 10, 2, 2)
	sp, err := NewSharedPruner(interests, rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sp.SolveRound(bids[:5], ctr, nil); err == nil {
		t.Fatal("short bids should error")
	}
	if _, _, err := sp.SolveRound(bids, ctr, []bool{true}); err == nil {
		t.Fatal("short occurrence vector should error")
	}
}
