package plan

// Flat plan compilation. Compile lowers a Plan's pointer-and-struct DAG
// into a Program: a topologically ordered instruction stream over dense
// int32 arrays, so execution is a single cache-friendly loop with no
// per-node map lookups, interface dispatch, or closure calls (see
// DESIGN.md §8). Two lowering steps do the work:
//
//   - Fusion. An internal node with exactly one parent that computes no
//     query exists only to feed that parent, so its value never needs to
//     be materialized separately: the compiler absorbs such single-use
//     subtrees into their consumer, producing one n-ary instruction per
//     materialization point. Fragment chains — the left-deep towers
//     sharedagg builds over each fragment's leaves — collapse this way
//     into a single fold over the leaf score slab, which is exactly the
//     linear top-k scan the independent baseline runs, while shared
//     interior nodes (multiple parents, or query outputs) remain
//     individually materialized and cacheable.
//
//   - Linearization. Instructions are emitted level-major (DAG depth, then
//     node ID), which is a topological order, keeps each pool level's
//     worklist contiguous, and preserves the descending-sweep cone-marking
//     trick of the slab executor at instruction granularity.
//
// The lowering preserves the Plan's cost accounting exactly: a fused
// instruction spans the internal nodes it absorbed, an instruction is in a
// round's cone iff all its spanned nodes are, and Σ Span over a cone
// equals the node count plan.Execute would materialize — invariants the
// compile property tests assert on random plans.

// Instruction kinds.
const (
	// OpMerge2 merges the runs of two materialized child nodes with the
	// two-pointer kernel.
	OpMerge2 OpKind = iota
	// OpFold folds an argument span — leaf scores and/or materialized
	// runs — into the output run by insertion-merge.
	OpFold
)

// OpKind discriminates the execution kernel of one instruction.
type OpKind uint8

// Program is the flat compilation of a complete Plan. All per-instruction
// arrays are indexed by instruction; CSR spans (ArgStart, NodeStart) are
// one longer than the instruction count. Node IDs are the Plan's.
type Program struct {
	NumVars  int // leaf count (advertisers)
	NumNodes int // total plan nodes, leaves included

	Kind []OpKind
	Out  []int32 // output node ID per instruction
	// Args[ArgStart[i]:ArgStart[i+1]] are instruction i's inputs in plan
	// order; an argument < NumVars is a leaf read from the score slab,
	// anything else is the output of an earlier instruction.
	ArgStart []int32
	Args     []int32
	// NodeIDs[NodeStart[i]:NodeStart[i+1]] are the internal plan nodes
	// instruction i materializes (its output plus fused descendants);
	// Span[i] is their count — the instruction's contribution to the
	// paper's aggregation-operation cost.
	NodeStart []int32
	NodeIDs   []int32
	Span      []int32
	// Level is the instruction's DAG depth (leaves sit at depth 0, so an
	// instruction over leaves alone has level 1); instructions are ordered
	// by (Level, Out), so each level is a contiguous index range and every
	// argument precedes its consumer.
	Level    []int32
	MaxLevel int32

	// InstrOf maps a node ID to the instruction producing it, or -1 for
	// leaves and fused interior nodes (which no instruction outputs).
	InstrOf []int32

	// QueryNode maps each query to the node computing it (leaf IDs
	// included); LeafQueries lists the distinct leaf nodes among them,
	// which the runner materializes directly from the score slab.
	QueryNode   []int32
	LeafQueries []int32

	// Reverse adjacency of the *original* DAG in CSR form
	// (Parents[ParentStart[v]:ParentStart[v+1]]), used for dirty-cone
	// invalidation: fused interior nodes keep their edges so validity
	// propagates through chains exactly as in the slab executor.
	ParentStart []int32
	Parents     []int32
}

// NumInstr returns the instruction count.
func (pr *Program) NumInstr() int { return len(pr.Out) }

// Compile lowers a complete plan into a Program. The plan must not grow
// afterwards (plans are append-only, so build the full plan first).
func Compile(p *Plan) *Program {
	if !p.Complete() {
		panic("plan: Compile of incomplete plan")
	}
	n := len(p.Nodes)
	numVars := p.Inst.NumVars

	parentCount := make([]int32, n)
	for id := numVars; id < n; id++ {
		parentCount[p.Nodes[id].Left]++
		parentCount[p.Nodes[id].Right]++
	}
	isQuery := make([]bool, n)
	for _, id := range p.QueryNode {
		isQuery[id] = true
	}
	// fused[v]: internal node absorbed into its single consumer — never
	// individually materialized, queried, or shared.
	fused := make([]bool, n)
	for id := numVars; id < n; id++ {
		fused[id] = parentCount[id] == 1 && !isQuery[id]
	}

	pr := &Program{
		NumVars:  numVars,
		NumNodes: n,
		InstrOf:  make([]int32, n),
	}

	// Emit one instruction per materialized internal node, in node order
	// first; the level-major permutation is applied below.
	type instr struct {
		out   int32
		args  []int32
		nodes []int32
		level int32
	}
	var instrs []instr
	nodeLevel := make([]int32, n) // level of materialized nodes (leaves 0)
	var expand func(ins *instr, c int)
	expand = func(ins *instr, c int) {
		if c >= numVars && fused[c] {
			ins.nodes = append(ins.nodes, int32(c))
			expand(ins, p.Nodes[c].Left)
			expand(ins, p.Nodes[c].Right)
			return
		}
		ins.args = append(ins.args, int32(c))
		if nodeLevel[c]+1 > ins.level {
			ins.level = nodeLevel[c] + 1
		}
	}
	for id := numVars; id < n; id++ {
		if fused[id] {
			continue
		}
		ins := instr{out: int32(id), nodes: []int32{int32(id)}}
		expand(&ins, p.Nodes[id].Left)
		expand(&ins, p.Nodes[id].Right)
		nodeLevel[id] = ins.level
		if ins.level > pr.MaxLevel {
			pr.MaxLevel = ins.level
		}
		instrs = append(instrs, ins)
	}

	// Level-major order: counting sort by level keeps ascending node order
	// within each level, so the result is topological and deterministic.
	levelStart := make([]int32, pr.MaxLevel+2)
	for i := range instrs {
		levelStart[instrs[i].level+1]++
	}
	for l := 1; l < len(levelStart); l++ {
		levelStart[l] += levelStart[l-1]
	}
	order := make([]int32, len(instrs))
	next := make([]int32, pr.MaxLevel+1)
	copy(next, levelStart)
	for i := range instrs {
		l := instrs[i].level
		order[next[l]] = int32(i)
		next[l]++
	}

	pr.Kind = make([]OpKind, len(instrs))
	pr.Out = make([]int32, len(instrs))
	pr.Span = make([]int32, len(instrs))
	pr.Level = make([]int32, len(instrs))
	pr.ArgStart = make([]int32, len(instrs)+1)
	pr.NodeStart = make([]int32, len(instrs)+1)
	for v := range pr.InstrOf {
		pr.InstrOf[v] = -1
	}
	for pos, idx := range order {
		ins := &instrs[idx]
		pr.Out[pos] = ins.out
		pr.Span[pos] = int32(len(ins.nodes))
		pr.Level[pos] = ins.level
		pr.InstrOf[ins.out] = int32(pos)
		pr.ArgStart[pos+1] = pr.ArgStart[pos] + int32(len(ins.args))
		pr.NodeStart[pos+1] = pr.NodeStart[pos] + int32(len(ins.nodes))
		pr.Args = append(pr.Args, ins.args...)
		pr.NodeIDs = append(pr.NodeIDs, ins.nodes...)
		if len(ins.args) == 2 && ins.args[0] >= int32(numVars) && ins.args[1] >= int32(numVars) {
			pr.Kind[pos] = OpMerge2
		} else {
			pr.Kind[pos] = OpFold
		}
	}

	pr.QueryNode = make([]int32, len(p.QueryNode))
	seenLeaf := make(map[int32]bool)
	for qi, id := range p.QueryNode {
		pr.QueryNode[qi] = int32(id)
		if id < numVars && !seenLeaf[int32(id)] {
			seenLeaf[int32(id)] = true
			pr.LeafQueries = append(pr.LeafQueries, int32(id))
		}
	}

	// Reverse adjacency CSR over the full original DAG.
	pr.ParentStart = make([]int32, n+1)
	for id := numVars; id < n; id++ {
		pr.ParentStart[p.Nodes[id].Left+1]++
		pr.ParentStart[p.Nodes[id].Right+1]++
	}
	for v := 1; v <= n; v++ {
		pr.ParentStart[v] += pr.ParentStart[v-1]
	}
	pr.Parents = make([]int32, pr.ParentStart[n])
	fill := make([]int32, n)
	copy(fill, pr.ParentStart[:n])
	for id := numVars; id < n; id++ {
		nd := p.Nodes[id]
		pr.Parents[fill[nd.Left]] = int32(id)
		fill[nd.Left]++
		pr.Parents[fill[nd.Right]] = int32(id)
		fill[nd.Right]++
	}
	return pr
}
