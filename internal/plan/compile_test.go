package plan_test

import (
	"math/rand"
	"testing"

	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/topk"
)

// randomPlans yields validated shared and naive plans over random overlap
// instances, the same universe the executor equivalence test runs on.
func randomPlans(t *testing.T, seed int64) (*plan.Instance, []*plan.Plan) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst := plan.RandomOverlapInstance(rng, 40, 12, 4, 0.3, 0.9)
	plans := []*plan.Plan{sharedagg.Build(inst), plan.NaivePlan(inst)}
	for _, p := range plans {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	return inst, plans
}

// TestCompileInvariants pins the structural contract of Compile on random
// plans: the instructions partition the internal nodes (so Σ Span equals the
// plan's TotalCost), the level-major order is topological, the kind
// discrimination matches the argument shape, and the Parents CSR reproduces
// the original DAG's reverse adjacency.
func TestCompileInvariants(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		inst, plans := randomPlans(t, seed)
		for _, p := range plans {
			pr := plan.Compile(p)
			if pr.NumVars != inst.NumVars || pr.NumNodes != len(p.Nodes) {
				t.Fatalf("seed %d: program dims %d/%d, plan %d/%d",
					seed, pr.NumVars, pr.NumNodes, inst.NumVars, len(p.Nodes))
			}

			// Partition: every internal node covered exactly once.
			covered := make([]int, pr.NumNodes)
			spanSum := 0
			for ins := 0; ins < pr.NumInstr(); ins++ {
				nodes := pr.NodeIDs[pr.NodeStart[ins]:pr.NodeStart[ins+1]]
				if len(nodes) != int(pr.Span[ins]) {
					t.Fatalf("seed %d ins %d: %d covered nodes, span %d", seed, ins, len(nodes), pr.Span[ins])
				}
				spanSum += len(nodes)
				for _, nd := range nodes {
					covered[nd]++
				}
				if pr.InstrOf[pr.Out[ins]] != int32(ins) {
					t.Fatalf("seed %d ins %d: InstrOf(out %d) = %d", seed, ins, pr.Out[ins], pr.InstrOf[pr.Out[ins]])
				}
			}
			if spanSum != p.TotalCost() {
				t.Fatalf("seed %d: Σ span %d, plan TotalCost %d", seed, spanSum, p.TotalCost())
			}
			for nd := inst.NumVars; nd < pr.NumNodes; nd++ {
				if covered[nd] != 1 {
					t.Fatalf("seed %d: internal node %d covered %d times", seed, nd, covered[nd])
				}
			}
			for v := 0; v < inst.NumVars; v++ {
				if covered[v] != 0 || pr.InstrOf[v] != -1 {
					t.Fatalf("seed %d: leaf %d covered %d, InstrOf %d", seed, v, covered[v], pr.InstrOf[v])
				}
			}

			// Topological order and kind discrimination.
			for ins := 0; ins < pr.NumInstr(); ins++ {
				if ins > 0 && pr.Level[ins] < pr.Level[ins-1] {
					t.Fatalf("seed %d: level order broken at %d", seed, ins)
				}
				args := pr.Args[pr.ArgStart[ins]:pr.ArgStart[ins+1]]
				internal := 0
				for _, a := range args {
					if a >= int32(pr.NumVars) {
						internal++
						dep := pr.InstrOf[a]
						if dep < 0 || dep >= int32(ins) {
							t.Fatalf("seed %d ins %d: arg %d produced by instruction %d", seed, ins, a, dep)
						}
						if pr.Level[dep] >= pr.Level[ins] {
							t.Fatalf("seed %d ins %d: arg level %d >= %d", seed, ins, pr.Level[dep], pr.Level[ins])
						}
					}
				}
				wantMerge2 := len(args) == 2 && internal == 2
				if (pr.Kind[ins] == plan.OpMerge2) != wantMerge2 {
					t.Fatalf("seed %d ins %d: kind %v for %d args (%d internal)",
						seed, ins, pr.Kind[ins], len(args), internal)
				}
			}

			// Parents CSR == reverse adjacency of the original DAG.
			wantParents := make(map[int32]map[int32]bool)
			for id := inst.NumVars; id < len(p.Nodes); id++ {
				nd := p.Nodes[id]
				for _, c := range []int{nd.Left, nd.Right} {
					if wantParents[int32(c)] == nil {
						wantParents[int32(c)] = map[int32]bool{}
					}
					wantParents[int32(c)][int32(id)] = true
				}
			}
			for v := int32(0); v < int32(pr.NumNodes); v++ {
				ps := pr.Parents[pr.ParentStart[v]:pr.ParentStart[v+1]]
				if len(ps) != len(wantParents[v]) {
					t.Fatalf("seed %d node %d: %d parents, want %d", seed, v, len(ps), len(wantParents[v]))
				}
				for _, par := range ps {
					if !wantParents[v][par] {
						t.Fatalf("seed %d node %d: spurious parent %d", seed, v, par)
					}
				}
			}
		}
	}
}

// TestRunnerMatchesExecute is the compiled-path equivalence property: over
// random plans and rounds of changing leaf scores and occurrence vectors,
// the flat runner — full, incremental, and pool-driven — must reproduce the
// memo-based Execute's query results entry for entry, and its work counters
// must tie out against the memo materialization count.
func TestRunnerMatchesExecute(t *testing.T) {
	const k = 5
	pool := plan.NewPool(4)
	defer pool.Close()
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		inst, plans := randomPlans(t, seed)
		for _, p := range plans {
			pr := plan.Compile(p)
			scores := make([]float64, inst.NumVars)
			for v := range scores {
				if rng.Intn(4) > 0 {
					scores[v] = 1 + rng.Float64()*9
				}
			}
			memoLeaf := func(v int) *topk.List {
				l := topk.New(k)
				if s := scores[v]; s > 0 {
					l.Push(topk.Entry{ID: v, Score: s})
				}
				return l
			}

			full := plan.NewRunner(pr, k)
			incr := plan.NewRunner(pr, k)
			par := plan.NewRunner(pr, k)
			par.SetPool(pool)
			// parAll and parIncr force every cone through the frontier
			// scheduler (cutoff 0), covering the dependency-release path
			// even on cones the default cutoff would run inline.
			parAll := plan.NewRunner(pr, k)
			parAll.SetPool(pool)
			parAll.SetSequentialCutoff(0)
			parIncr := plan.NewRunner(pr, k)
			parIncr.SetPool(pool)
			parIncr.SetSequentialCutoff(0)

			for round := 0; round < 30; round++ {
				// Sparse score churn, reported to the incremental runner.
				for i := rng.Intn(6); i > 0; i-- {
					v := rng.Intn(inst.NumVars)
					if rng.Intn(5) == 0 {
						scores[v] = 0 // advertiser drops out entirely
					} else {
						scores[v] = 1 + rng.Float64()*9
					}
					incr.Invalidate(v)
					parIncr.Invalidate(v)
				}
				occ := make([]bool, len(inst.Queries))
				for q := range occ {
					occ[q] = rng.Intn(3) > 0
				}
				if round%7 == 0 {
					occ = nil // the "all occur" convention
				}

				want, wantMat := plan.Execute(p, memoLeaf, topk.Merge, occ)

				check := func(name string, r *plan.Runner, recomputed, cached int, expectCache bool) {
					t.Helper()
					if recomputed+cached != wantMat {
						t.Fatalf("seed %d %s round %d: recomputed %d + cached %d != memo materialized %d",
							seed, name, round, recomputed, cached, wantMat)
					}
					if !expectCache && cached != 0 {
						t.Fatalf("%s: full runner reported %d cached nodes", name, cached)
					}
					for qi, l := range want {
						if occ != nil && !occ[qi] {
							continue
						}
						run := r.QueryRun(qi)
						if len(run) != l.Len() {
							t.Fatalf("seed %d %s round %d: query %d has %d entries, want %v",
								seed, name, round, qi, len(run), l)
						}
						for i, e := range run {
							if l.At(i) != e {
								t.Fatalf("seed %d %s round %d: query %d entry %d = %+v, want %+v",
									seed, name, round, qi, i, e, l.At(i))
							}
						}
					}
				}
				check("full", full, full.Run(scores, occ), 0, false)
				r, c := incr.RunIncremental(scores, occ)
				check("incremental", incr, r, c, true)
				check("pool", par, par.Run(scores, occ), 0, false)
				check("pool-frontier", parAll, parAll.Run(scores, occ), 0, false)
				r, c = parIncr.RunIncremental(scores, occ)
				check("pool-incremental", parIncr, r, c, true)
			}
		}
	}
}

// TestRunnerIncrementalSteadyState mirrors the slab executor's caching test
// on the compiled layout: unchanged scores and occurrence serve the whole
// cone from cache, a single dirty leaf recomputes only part of it, and
// InvalidateAll forces a full recompute.
func TestRunnerIncrementalSteadyState(t *testing.T) {
	const k = 5
	rng := rand.New(rand.NewSource(42))
	inst := plan.RandomOverlapInstance(rng, 30, 8, 3, 0.5, 0.9)
	p := sharedagg.Build(inst)
	pr := plan.Compile(p)
	scores := make([]float64, inst.NumVars)
	for v := range scores {
		scores[v] = 1 + rng.Float64()*9
	}
	r := plan.NewRunner(pr, k)
	occ := make([]bool, len(inst.Queries))
	for q := range occ {
		occ[q] = q%2 == 0
	}
	r1, c1 := r.RunIncremental(scores, occ)
	if r1 == 0 || c1 != 0 {
		t.Fatalf("first round: recomputed %d, cached %d", r1, c1)
	}
	r2, c2 := r.RunIncremental(scores, occ)
	if r2 != 0 || c2 != r1 {
		t.Fatalf("steady round: recomputed %d, cached %d (want 0, %d)", r2, c2, r1)
	}
	var dirty int
	for q := range occ {
		if occ[q] {
			dirty = inst.Queries[q].Vars.Indices()[0]
			break
		}
	}
	scores[dirty] *= 2
	r.Invalidate(dirty)
	r3, c3 := r.RunIncremental(scores, occ)
	if r3 == 0 || r3+c3 != r1 {
		t.Fatalf("dirty round: recomputed %d, cached %d (cone %d)", r3, c3, r1)
	}
	if r3 >= r1 {
		t.Fatalf("one dirty leaf recomputed the whole cone (%d of %d)", r3, r1)
	}
	r.InvalidateAll()
	r4, _ := r.RunIncremental(scores, occ)
	if r4 != r1 {
		t.Fatalf("after InvalidateAll recomputed %d, want %d", r4, r1)
	}
}
