package plan

import (
	"fmt"
	"strings"
)

// DOT renders the plan as a Graphviz digraph: variable leaves as circles,
// interior aggregates as boxes labeled with their variable-set size, and
// query nodes highlighted with the queries they compute. Useful for
// inspecting what the sharing heuristics build.
func (p *Plan) DOT() string {
	queryOf := map[int][]int{}
	for qi, id := range p.QueryNode {
		if id >= 0 {
			queryOf[id] = append(queryOf[id], qi)
		}
	}
	// Only render nodes that participate in some query's computation.
	used := make([]bool, len(p.Nodes))
	var mark func(id int)
	mark = func(id int) {
		if id < 0 || used[id] {
			return
		}
		used[id] = true
		n := p.Nodes[id]
		if !n.IsLeaf() {
			mark(n.Left)
			mark(n.Right)
		}
	}
	for _, id := range p.QueryNode {
		mark(id)
	}

	var b strings.Builder
	b.WriteString("digraph sharedplan {\n  rankdir=BT;\n  node [fontsize=10];\n")
	for id, n := range p.Nodes {
		if !used[id] {
			continue
		}
		switch {
		case n.IsLeaf():
			fmt.Fprintf(&b, "  n%d [label=\"x%d\" shape=circle width=0.3];\n", id, id)
		case len(queryOf[id]) > 0:
			fmt.Fprintf(&b, "  n%d [label=\"⊕ |%d|\\nqueries %v\" shape=doubleoctagon style=filled fillcolor=lightblue];\n",
				id, n.Vars.Count(), queryOf[id])
		default:
			fmt.Fprintf(&b, "  n%d [label=\"⊕ |%d|\" shape=box];\n", id, n.Vars.Count())
		}
	}
	for id, n := range p.Nodes {
		if !used[id] || n.IsLeaf() {
			continue
		}
		fmt.Fprintf(&b, "  n%d -> n%d;\n  n%d -> n%d;\n", n.Left, id, n.Right, id)
	}
	b.WriteString("}\n")
	return b.String()
}
