package plan

import (
	"sort"

	"sharedwd/internal/bitset"
)

// ExactMinTotalCost finds a plan with minimum total cost (number of
// aggregation nodes) for the instance by iterative-deepening search over
// unions of already-available variable sets. This is the deterministic
// (sr_q = 1) core that Theorem 2 proves NP-hard, so the search is
// exponential; it exists to certify heuristic plans on small instances and
// to demonstrate the hardness empirically in the Figure-5 harness.
//
// The search prunes candidate unions that are not subsets of any query: in
// any optimal plan every node lies below some query node, and labels grow
// upward by union, so such nodes can never appear in an optimal plan.
func ExactMinTotalCost(inst *Instance) *Plan {
	// Upper bound: per-query left-deep chains (the naive plan).
	best := chainPerQuery(inst)
	bestCost := best.TotalCost()

	queryKeys := make(map[string]bool, len(inst.Queries))
	var multiQueries []bitset.Set
	for _, q := range inst.Queries {
		if q.Vars.Count() > 1 {
			queryKeys[q.Vars.Key()] = true
			multiQueries = append(multiQueries, q.Vars)
		}
	}
	if len(multiQueries) == 0 {
		return NewPlan(inst) // all queries are single variables
	}

	// state: available sets, as (plan under construction).
	for limit := len(multiQueries); limit < bestCost; limit++ {
		p := NewPlan(inst)
		seen := make(map[string]bool) // states already explored at this limit
		if found := exactDFS(p, limit, queryKeys, seen); found != nil {
			return found
		}
	}
	return best
}

// exactDFS tries to complete plan p using at most budget more aggregation
// nodes. It returns a completed plan or nil.
func exactDFS(p *Plan, budget int, queryKeys map[string]bool, seen map[string]bool) *Plan {
	missing := 0
	for _, id := range p.QueryNode {
		if id == -1 {
			missing++
		}
	}
	if missing == 0 {
		return clonePlan(p)
	}
	if missing > budget {
		return nil // each missing query needs at least one more node
	}
	if key := stateKey(p, budget); seen[key] {
		return nil
	} else {
		seen[key] = true
	}

	// Candidate unions: pairs of existing nodes whose union is new and a
	// subset of some query. Try unions that complete a query first.
	type cand struct {
		l, r     int
		key      string
		complete bool
		size     int
	}
	have := make(map[string]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		have[n.Vars.Key()] = true
	}
	var cands []cand
	candSeen := make(map[string]bool)
	for l := 0; l < len(p.Nodes); l++ {
		for r := l + 1; r < len(p.Nodes); r++ {
			u := p.Nodes[l].Vars.Union(p.Nodes[r].Vars)
			key := u.Key()
			if have[key] || candSeen[key] {
				continue
			}
			if !subsetOfAnyQuery(u, p.Inst) {
				continue
			}
			candSeen[key] = true
			cands = append(cands, cand{l, r, key, queryKeys[key], u.Count()})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].complete != cands[b].complete {
			return cands[a].complete
		}
		if cands[a].size != cands[b].size {
			return cands[a].size > cands[b].size
		}
		return cands[a].key < cands[b].key
	})
	for _, c := range cands {
		save := len(p.Nodes)
		saveQN := append([]int(nil), p.QueryNode...)
		p.AddAggregate(c.l, c.r)
		if found := exactDFS(p, budget-1, queryKeys, seen); found != nil {
			return found
		}
		p.Nodes = p.Nodes[:save]
		copy(p.QueryNode, saveQN)
	}
	return nil
}

func subsetOfAnyQuery(u bitset.Set, inst *Instance) bool {
	for _, q := range inst.Queries {
		if u.SubsetOf(q.Vars) {
			return true
		}
	}
	return false
}

// stateKey canonically identifies the set of available variable sets plus
// remaining budget, so symmetric construction orders are explored once.
func stateKey(p *Plan, budget int) string {
	keys := make([]string, 0, p.TotalCost())
	for i := p.Inst.NumVars; i < len(p.Nodes); i++ {
		keys = append(keys, p.Nodes[i].Vars.Key())
	}
	sort.Strings(keys)
	out := string(rune(budget))
	for _, k := range keys {
		out += "|" + k
	}
	return out
}

func clonePlan(p *Plan) *Plan {
	c := &Plan{
		Inst:      p.Inst,
		Nodes:     append([]Node(nil), p.Nodes...),
		QueryNode: append([]int(nil), p.QueryNode...),
	}
	return c
}

// chainPerQuery is the unshared baseline: each query is computed by its own
// left-deep chain over its variables, with no reuse at all. Its total cost
// is Σ_q (|X_q| − 1). This is the "no sharing" series in Figure 4.
func chainPerQuery(inst *Instance) *Plan {
	p := NewPlan(inst)
	for qi, q := range inst.Queries {
		if p.QueryNode[qi] != -1 {
			continue // single-variable query
		}
		vars := q.Vars.Indices()
		acc := vars[0]
		for _, v := range vars[1:] {
			// Always create fresh nodes: the naive plan shares nothing, so
			// equal labels may appear on distinct nodes.
			id := len(p.Nodes)
			u := p.Nodes[acc].Vars.Union(p.Nodes[v].Vars)
			p.Nodes = append(p.Nodes, Node{ID: id, Vars: u, Left: acc, Right: v})
			acc = id
		}
		p.QueryNode[qi] = acc
	}
	return p
}

// NaivePlan exposes the unshared per-query baseline.
func NaivePlan(inst *Instance) *Plan { return chainPerQuery(inst) }
