package plan

import (
	"sort"

	"sharedwd/internal/bitset"
)

// ExactMinExpectedCost finds a plan minimizing the *expected* per-round
// materialization cost Σ_v (1 − Π_{q: v⤳q}(1 − sr_q)) — the probabilistic
// objective of Section II-B that Figure 4 plots — by exhaustive search over
// plans with bounded extra nodes. Exponential; only for certifying the
// heuristic on tiny instances.
//
// The search explores the same union-closure space as ExactMinTotalCost but
// scores complete plans by expected cost. Since adding nodes can lower the
// expected cost (a cheap shared node may replace probable private work) the
// search explores up to maxExtra nodes beyond the per-query minimum even
// after completion.
func ExactMinExpectedCost(inst *Instance, maxExtra int) *Plan {
	best := NaivePlan(inst)
	bestCost := best.ExpectedCost()

	queryKeys := make(map[string]bool, len(inst.Queries))
	multi := 0
	for _, q := range inst.Queries {
		if q.Vars.Count() > 1 {
			queryKeys[q.Vars.Key()] = true
			multi++
		}
	}
	if multi == 0 {
		return NewPlan(inst)
	}

	limit := multi + maxExtra
	seen := make(map[string]bool)
	var rec func(p *Plan)
	rec = func(p *Plan) {
		if p.Complete() {
			if c := p.ExpectedCost(); c < bestCost {
				bestCost = c
				best = clonePlan(p)
			}
			// Keep exploring: more nodes may still reduce expected cost,
			// bounded by limit below.
		}
		if p.TotalCost() >= limit {
			return
		}
		key := stateKey(p, limit-p.TotalCost())
		if seen[key] {
			return
		}
		seen[key] = true

		type cand struct {
			l, r int
			key  string
		}
		have := make(map[string]bool, len(p.Nodes))
		for _, n := range p.Nodes {
			have[n.Vars.Key()] = true
		}
		var cands []cand
		candSeen := make(map[string]bool)
		for l := 0; l < len(p.Nodes); l++ {
			for r := l + 1; r < len(p.Nodes); r++ {
				u := p.Nodes[l].Vars.Union(p.Nodes[r].Vars)
				k := u.Key()
				if have[k] || candSeen[k] || !subsetOfAnyQuery(u, p.Inst) {
					continue
				}
				candSeen[k] = true
				cands = append(cands, cand{l, r, k})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].key < cands[b].key })
		for _, c := range cands {
			save := len(p.Nodes)
			saveQN := append([]int(nil), p.QueryNode...)
			p.AddAggregate(c.l, c.r)
			rec(p)
			p.Nodes = p.Nodes[:save]
			copy(p.QueryNode, saveQN)
		}
	}
	rec(NewPlan(inst))
	return best
}

// FragmentCount returns the number of non-empty fragments (variable
// equivalence classes by query membership) of the instance — the size of
// the stage-1 partition and a lower bound on how coarse any sharing can be.
func FragmentCount(inst *Instance) int {
	m := len(inst.Queries)
	sig := make([]bitset.Set, inst.NumVars)
	for v := range sig {
		sig[v] = bitset.New(m)
	}
	for qi, q := range inst.Queries {
		q.Vars.ForEach(func(v int) bool {
			sig[v].Add(qi)
			return true
		})
	}
	distinct := make(map[string]bool)
	for v := 0; v < inst.NumVars; v++ {
		if !sig[v].IsEmpty() {
			distinct[sig[v].Key()] = true
		}
	}
	return len(distinct)
}
