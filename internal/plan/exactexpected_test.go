package plan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactMinExpectedCostSimple(t *testing.T) {
	// Two queries sharing {0,1} at rate 1: optimal expected cost is 3
	// (shared node + two query nodes), beating naive's 4.
	inst := MustInstance(4, []Query{q(4, 1, 0, 1, 2), q(4, 1, 0, 1, 3)})
	p := ExactMinExpectedCost(inst, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.ExpectedCost(); got != 3 {
		t.Fatalf("ExpectedCost = %v, want 3", got)
	}
}

func TestExactMinExpectedCostLowRatePrefersNaiveShape(t *testing.T) {
	// At very low rates, a shared node materializes with probability
	// ≈ 2p while saving work of probability ≈ p per query — still a win;
	// but an *extra* intermediate node that helps only one query is pure
	// cost. The exact planner must never be worse than naive.
	inst := MustInstance(4, []Query{q(4, 0.05, 0, 1, 2), q(4, 0.05, 0, 1, 3)})
	exact := ExactMinExpectedCost(inst, 2)
	naive := NaivePlan(inst)
	if exact.ExpectedCost() > naive.ExpectedCost()+1e-12 {
		t.Fatalf("exact %v worse than naive %v", exact.ExpectedCost(), naive.ExpectedCost())
	}
}

func TestExactMinExpectedCostSingletons(t *testing.T) {
	inst := MustInstance(3, []Query{q(3, 1, 2)})
	p := ExactMinExpectedCost(inst, 1)
	if p.TotalCost() != 0 || !p.Complete() {
		t.Fatalf("singleton instance: cost=%d complete=%v", p.TotalCost(), p.Complete())
	}
}

// TestQuickExactExpectedDominates: the exact expected-cost plan is never
// worse than naive or than the exact min-total-cost plan's expected cost,
// on tiny instances.
func TestQuickExactExpectedDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := RandomCoinFlipInstance(rng, 4+rng.Intn(2), 2, 0.1+0.9*rng.Float64())
		exp := ExactMinExpectedCost(inst, 2)
		if exp.Validate() != nil {
			return false
		}
		if exp.ExpectedCost() > NaivePlan(inst).ExpectedCost()+1e-9 {
			return false
		}
		return exp.ExpectedCost() <= ExactMinTotalCost(inst).ExpectedCost()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentCount(t *testing.T) {
	// Queries {0,1,2} and {0,1,3} over 5 vars: fragments {0,1}, {2}, {3};
	// var 4 belongs to no query.
	inst := MustInstance(5, []Query{q(5, 1, 0, 1, 2), q(5, 1, 0, 1, 3)})
	if got := FragmentCount(inst); got != 3 {
		t.Fatalf("FragmentCount = %d, want 3", got)
	}
}
