package plan

// Executor evaluates one Plan round after round with zero steady-state
// allocations. Where Execute builds a fresh map memo and result map every
// round, the Executor owns a dense value slab indexed by node ID plus an
// epoch-stamp slice: marking the round's needed cone is a stamp write, not a
// map insert, and node values are (re)computed in place.
//
// Two execution modes share the slab:
//
//   - Execute recomputes every node in the needed cone, exactly like the
//     memo-based Execute free function (and with an identical materialized
//     count).
//   - ExecuteIncremental reuses any cached node value whose descendant
//     leaves are unchanged since it was computed — the paper's Section III-B
//     result-caching argument applied to the Section-II aggregation DAG.
//     Callers report leaf changes via Invalidate, which marks the leaf's
//     ancestor cone dirty through a precomputed reverse adjacency.
//
// Values are reused in place: the leaf and op callbacks receive the slot's
// previous value (the zero value of T on first use) and return the slot's
// new value, so a pointer-typed T can reset and refill one allocation per
// node for the lifetime of the executor.
//
// An Executor is not safe for concurrent use; attach a Pool with SetPool to
// evaluate each DAG level in parallel instead.
type Executor[T any] struct {
	p *Plan

	vals  []T      // value slab, one slot per node
	need  []uint64 // epoch stamp: node is in this round's cone
	valid []bool   // slot holds a value consistent with current leaves
	epoch uint64

	parents [][]int32 // reverse adjacency, for dirty-cone invalidation
	level   []int32   // DAG depth per node (leaves = 0)
	stack   []int32   // invalidation scratch

	// Per-level worklists of nodes to recompute this round (pool mode).
	worklists [][]int32

	qres []T // per-query result slab

	pool  *Pool
	op    func(prev T, a, b T) T // pinned during a parallel pass
	runFn func(id int32)
}

// NewExecutor builds a reusable executor for the plan. The plan must be
// complete; its node set must not grow afterwards (plans are append-only, so
// build the full plan first).
func NewExecutor[T any](p *Plan) *Executor[T] {
	if !p.Complete() {
		panic("plan: NewExecutor of incomplete plan")
	}
	n := len(p.Nodes)
	ex := &Executor[T]{
		p:       p,
		vals:    make([]T, n),
		need:    make([]uint64, n),
		valid:   make([]bool, n),
		parents: make([][]int32, n),
		level:   make([]int32, n),
		qres:    make([]T, len(p.QueryNode)),
	}
	maxLevel := int32(0)
	for id := p.Inst.NumVars; id < n; id++ {
		nd := p.Nodes[id]
		ex.parents[nd.Left] = append(ex.parents[nd.Left], int32(id))
		ex.parents[nd.Right] = append(ex.parents[nd.Right], int32(id))
		l := ex.level[nd.Left]
		if r := ex.level[nd.Right]; r > l {
			l = r
		}
		ex.level[id] = l + 1
		if l+1 > maxLevel {
			maxLevel = l + 1
		}
	}
	ex.worklists = make([][]int32, maxLevel+1)
	ex.runFn = func(id int32) {
		nd := &ex.p.Nodes[id]
		ex.vals[id] = ex.op(ex.vals[id], ex.vals[nd.Left], ex.vals[nd.Right])
	}
	return ex
}

// Plan returns the plan the executor evaluates.
func (ex *Executor[T]) Plan() *Plan { return ex.p }

// SetPool attaches (or with nil detaches) a worker pool. With a pool, each
// DAG level's dirty nodes are computed concurrently; levels run in sequence,
// so every child is ready before its parent. Results are identical to
// sequential execution because each node is still computed exactly once from
// the same inputs.
func (ex *Executor[T]) SetPool(p *Pool) { ex.pool = p }

// Results returns the per-query result slab: Results()[qi] holds query qi's
// value if qi
// occurred in the last Execute/ExecuteIncremental call. Slots of
// non-occurring queries hold stale values; consult the occurrence vector.
// The slab is overwritten by the next call.
func (ex *Executor[T]) Results() []T { return ex.qres }

// Invalidate marks variable leaf v's value changed: v and every ancestor are
// dropped from the cache so the next ExecuteIncremental recomputes them. The
// walk prunes at already-invalid nodes, which is sound because an invalid
// node's ancestors are invalid by construction.
func (ex *Executor[T]) Invalidate(v int) {
	if !ex.valid[v] {
		return
	}
	ex.valid[v] = false
	ex.stack = append(ex.stack[:0], int32(v))
	for len(ex.stack) > 0 {
		n := ex.stack[len(ex.stack)-1]
		ex.stack = ex.stack[:len(ex.stack)-1]
		for _, p := range ex.parents[n] {
			if ex.valid[p] {
				ex.valid[p] = false
				ex.stack = append(ex.stack, p)
			}
		}
	}
}

// InvalidateAll drops every cached value.
func (ex *Executor[T]) InvalidateAll() {
	for i := range ex.valid {
		ex.valid[i] = false
	}
}

// Execute evaluates every node needed by the occurring queries (nil means
// all occur), recomputing the full cone. leaf(prev, v) returns the round's
// value for variable v and op(prev, a, b) returns a⊕b; both receive the
// slot's previous value for in-place reuse. The returned count is the number
// of internal nodes materialized — identical to the memo-based Execute.
func (ex *Executor[T]) Execute(leaf func(prev T, v int) T, op func(prev T, a, b T) T, occurring []bool) (materialized int) {
	materialized, _ = ex.run(leaf, op, occurring, false)
	return materialized
}

// ExecuteIncremental evaluates the occurring queries, reusing every cached
// node value still consistent with the leaves (see Invalidate). It returns
// how many internal nodes were recomputed and how many were served from
// cache; recomputed+cached equals the cone size Execute would materialize.
func (ex *Executor[T]) ExecuteIncremental(leaf func(prev T, v int) T, op func(prev T, a, b T) T, occurring []bool) (recomputed, cached int) {
	return ex.run(leaf, op, occurring, true)
}

func (ex *Executor[T]) run(leaf func(prev T, v int) T, op func(prev T, a, b T) T, occurring []bool, incremental bool) (recomputed, cached int) {
	ex.epoch++
	nodes := ex.p.Nodes
	numVars := ex.p.Inst.NumVars

	// Mark the needed cone top-down. Children precede parents by
	// construction, so one descending sweep from the highest needed node
	// reaches every dependency.
	maxNeeded := -1
	for qi, id := range ex.p.QueryNode {
		if occurring != nil && !occurring[qi] {
			continue
		}
		ex.need[id] = ex.epoch
		if id > maxNeeded {
			maxNeeded = id
		}
	}
	for id := maxNeeded; id >= numVars; id-- {
		if ex.need[id] != ex.epoch {
			continue
		}
		nd := &nodes[id]
		ex.need[nd.Left] = ex.epoch
		ex.need[nd.Right] = ex.epoch
	}

	parallel := ex.pool != nil
	if parallel {
		for l := range ex.worklists {
			ex.worklists[l] = ex.worklists[l][:0]
		}
	}

	// Evaluate the cone bottom-up (ascending IDs are a topological order).
	// Leaves are always computed inline — they are cheap and feed every
	// level — while internal nodes either compute inline (sequential) or
	// batch into per-level worklists for the pool.
	for id := 0; id <= maxNeeded; id++ {
		if ex.need[id] != ex.epoch {
			continue
		}
		if id < numVars {
			if !incremental || !ex.valid[id] {
				ex.vals[id] = leaf(ex.vals[id], id)
				ex.valid[id] = true
			}
			continue
		}
		if incremental && ex.valid[id] {
			cached++
			continue
		}
		recomputed++
		ex.valid[id] = true
		if parallel {
			l := ex.level[id]
			ex.worklists[l] = append(ex.worklists[l], int32(id))
			continue
		}
		nd := &nodes[id]
		ex.vals[id] = op(ex.vals[id], ex.vals[nd.Left], ex.vals[nd.Right])
	}
	if parallel {
		ex.op = op
		for _, wl := range ex.worklists {
			ex.pool.Run(wl, ex.runFn)
		}
	}

	for qi, id := range ex.p.QueryNode {
		if occurring != nil && !occurring[qi] {
			continue
		}
		ex.qres[qi] = ex.vals[id]
	}
	return recomputed, cached
}
