package plan_test

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
)

// max2 is an idempotent ⊕, valid on any well-formed plan; maxOp adapts it
// to the slab executor's prev-reusing signature.
func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxOp(prev, a, b int) int { return max2(a, b) }

// TestExecutorMatchesExecute is the executor-level equivalence property:
// over randomized instances and many rounds of changing leaf values and
// occurrence vectors, the slab executor, the incremental executor, and the
// pool-driven executor all reproduce the memo-based Execute bit for bit,
// and their work counters tie out (recomputed+cached == memo materialized).
func TestExecutorMatchesExecute(t *testing.T) {
	pool := plan.NewPool(4)
	defer pool.Close()
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := plan.RandomOverlapInstance(rng, 40, 12, 4, 0.3, 0.9)
		for _, p := range []*plan.Plan{sharedagg.Build(inst), plan.NaivePlan(inst)} {
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			leafVal := make([]int, inst.NumVars)
			for v := range leafVal {
				leafVal[v] = rng.Intn(1000)
			}
			memoLeaf := func(v int) int { return leafVal[v] }
			slabLeaf := func(prev, v int) int { return leafVal[v] }

			slab := plan.NewExecutor[int](p)
			incr := plan.NewExecutor[int](p)
			par := plan.NewExecutor[int](p)
			parIncr := plan.NewExecutor[int](p)
			par.SetPool(pool)
			parIncr.SetPool(pool)

			for round := 0; round < 30; round++ {
				// Sparse leaf churn, reported to the incremental executors.
				for i := rng.Intn(6); i > 0; i-- {
					v := rng.Intn(inst.NumVars)
					leafVal[v] = rng.Intn(1000)
					incr.Invalidate(v)
					parIncr.Invalidate(v)
				}
				occ := make([]bool, len(inst.Queries))
				for q := range occ {
					occ[q] = rng.Intn(3) > 0
				}
				if round%7 == 0 {
					occ = nil // the "all occur" convention
				}

				want, wantMat := plan.Execute(p, memoLeaf, max2, occ)

				check := func(name string, got []int, recomputed, cached int, expectCache bool) {
					t.Helper()
					if recomputed+cached != wantMat {
						t.Fatalf("seed %d %s round %d: recomputed %d + cached %d != memo materialized %d",
							seed, name, round, recomputed, cached, wantMat)
					}
					if !expectCache && cached != 0 {
						t.Fatalf("%s: full executor reported %d cached nodes", name, cached)
					}
					for qi, v := range want {
						if got[qi] != v {
							t.Fatalf("seed %d %s round %d: query %d = %d, want %d",
								seed, name, round, qi, got[qi], v)
						}
					}
				}
				m := slab.Execute(slabLeaf, maxOp, occ)
				check("slab", slab.Results(), m, 0, false)
				r, c := incr.ExecuteIncremental(slabLeaf, maxOp, occ)
				check("incremental", incr.Results(), r, c, true)
				m = par.Execute(slabLeaf, maxOp, occ)
				check("pool", par.Results(), m, 0, false)
				r, c = parIncr.ExecuteIncremental(slabLeaf, maxOp, occ)
				check("pool+incremental", parIncr.Results(), r, c, true)
			}
		}
	}
}

// TestExecutorIncrementalCachesSteadyState: with no leaf churn and a fixed
// occurrence vector, the second round must be served entirely from cache.
func TestExecutorIncrementalCachesSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst := plan.RandomOverlapInstance(rng, 30, 8, 3, 0.5, 0.9)
	p := sharedagg.Build(inst)
	leafVal := make([]int, inst.NumVars)
	for v := range leafVal {
		leafVal[v] = rng.Intn(100)
	}
	leaf := func(prev, v int) int { return leafVal[v] }
	ex := plan.NewExecutor[int](p)
	occ := make([]bool, len(inst.Queries))
	for q := range occ {
		occ[q] = q%2 == 0
	}
	r1, c1 := ex.ExecuteIncremental(leaf, maxOp, occ)
	if r1 == 0 || c1 != 0 {
		t.Fatalf("first round: recomputed %d, cached %d", r1, c1)
	}
	r2, c2 := ex.ExecuteIncremental(leaf, maxOp, occ)
	if r2 != 0 || c2 != r1 {
		t.Fatalf("steady round: recomputed %d, cached %d (want 0, %d)", r2, c2, r1)
	}
	// A single leaf change recomputes only its ancestor cone.
	var dirty int
	for q := range occ {
		if occ[q] {
			dirty = inst.Queries[q].Vars.Indices()[0]
			break
		}
	}
	leafVal[dirty]++
	ex.Invalidate(dirty)
	r3, c3 := ex.ExecuteIncremental(leaf, maxOp, occ)
	if r3 == 0 || r3+c3 != r1 {
		t.Fatalf("dirty round: recomputed %d, cached %d (cone %d)", r3, c3, r1)
	}
	if r3 >= r1 {
		t.Fatalf("one dirty leaf recomputed the whole cone (%d of %d)", r3, r1)
	}
	// InvalidateAll recomputes everything again.
	ex.InvalidateAll()
	r4, _ := ex.ExecuteIncremental(leaf, maxOp, occ)
	if r4 != r1 {
		t.Fatalf("after InvalidateAll recomputed %d, want %d", r4, r1)
	}
}

// TestExecutorValueReuse: the executor must hand each slot's previous value
// back to leaf/op so pointer-typed values are recycled, not reallocated.
func TestExecutorValueReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := plan.RandomOverlapInstance(rng, 20, 6, 2, 1, 1)
	p := sharedagg.Build(inst)
	type box struct{ v int }
	var fresh atomic.Int64
	leaf := func(prev *box, v int) *box {
		if prev == nil {
			fresh.Add(1)
			prev = &box{}
		}
		prev.v = v
		return prev
	}
	op := func(prev, a, b *box) *box {
		if prev == nil {
			fresh.Add(1)
			prev = &box{}
		}
		prev.v = max2(a.v, b.v)
		return prev
	}
	ex := plan.NewExecutor[*box](p)
	ex.Execute(leaf, op, nil)
	warm := fresh.Load()
	for i := 0; i < 5; i++ {
		ex.Execute(leaf, op, nil)
	}
	if fresh.Load() != warm {
		t.Fatalf("steady-state rounds allocated %d new boxes", fresh.Load()-warm)
	}
}

func TestPoolRunCoversAllIDs(t *testing.T) {
	pool := plan.NewPool(3)
	defer pool.Close()
	for _, n := range []int{0, 1, 2, 3, 7, 100} {
		ids := make([]int32, n)
		hit := make([]atomic.Int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		pool.Run(ids, func(id int32) { hit[id].Add(1) })
		for i := range hit {
			if hit[i].Load() != 1 {
				t.Fatalf("n=%d: id %d run %d times", n, i, hit[i].Load())
			}
		}
	}
}
