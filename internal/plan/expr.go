package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a syntactic ⊕-expression: a magma term over integer variables.
// This representation is needed when associativity or commutativity is
// absent (Figure-5 rows 1–5), where A-equivalence is finer than
// variable-set equality and Lemma 1 does not apply.
type Expr struct {
	Var         int // valid when leaf
	Left, Right *Expr
}

// V returns a variable leaf.
func V(v int) *Expr { return &Expr{Var: v} }

// Op returns the expression l ⊕ r.
func Op(l, r *Expr) *Expr { return &Expr{Var: -1, Left: l, Right: r} }

// IsLeaf reports whether the expression is a single variable.
func (e *Expr) IsLeaf() bool { return e.Left == nil }

// ChainExpr builds the canonical right-associated expression
// x1 ⊕ (x2 ⊕ (... ⊕ xk)) over the given variables.
func ChainExpr(vars ...int) *Expr {
	if len(vars) == 0 {
		panic("plan: ChainExpr of no variables")
	}
	e := V(vars[len(vars)-1])
	for i := len(vars) - 2; i >= 0; i-- {
		e = Op(V(vars[i]), e)
	}
	return e
}

// String renders the expression with explicit parentheses.
func (e *Expr) String() string {
	if e.IsLeaf() {
		return fmt.Sprintf("x%d", e.Var)
	}
	return "(" + e.Left.String() + "⊕" + e.Right.String() + ")"
}

// Size returns the number of ⊕ occurrences in the expression.
func (e *Expr) Size() int {
	if e.IsLeaf() {
		return 0
	}
	return 1 + e.Left.Size() + e.Right.Size()
}

// Vars returns the sorted distinct variables mentioned.
func (e *Expr) Vars() []int {
	seen := map[int]bool{}
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x.IsLeaf() {
			seen[x.Var] = true
			return
		}
		walk(x.Left)
		walk(x.Right)
	}
	walk(e)
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Axioms selects which algebraic laws hold of ⊕, in the paper's numbering:
// A1 associativity, A2 identity, A3 idempotence, A4 commutativity,
// A5 divisibility.
type Axioms struct {
	Assoc, Identity, Idem, Comm, Div bool
}

// Structure names the algebraic structure the axioms define, where one is
// standard (per the paper's Section VII list).
func (a Axioms) Structure() string {
	switch {
	case a.Assoc && a.Identity && a.Comm && a.Div:
		return "Abelian group"
	case a.Assoc && a.Identity && a.Div:
		return "group"
	case a.Assoc && a.Idem && a.Comm:
		return "semilattice"
	case a.Assoc && a.Idem:
		return "band"
	case a.Assoc && a.Identity:
		return "monoid"
	case a.Assoc:
		return "semigroup"
	case a.Identity && a.Div:
		return "loop"
	case a.Div:
		return "quasigroup"
	default:
		return "magma"
	}
}

func (a Axioms) String() string {
	yn := func(b bool) string {
		if b {
			return "Y"
		}
		return "N"
	}
	return fmt.Sprintf("A1=%s A2=%s A3=%s A4=%s A5=%s",
		yn(a.Assoc), yn(a.Identity), yn(a.Idem), yn(a.Comm), yn(a.Div))
}

// Canon returns a canonical string for e under the axiom set, such that two
// expressions are A-equivalent iff their canonical strings are equal.
//
//   - With associativity and commutativity the term flattens to a multiset
//     of variables (a set if also idempotent) — Lemma 1's regime.
//   - With associativity alone it flattens to a sequence (adjacent equal
//     collapse under idempotence: a band normal form for our chain terms).
//   - Without associativity the tree shape is significant; commutativity
//     sorts the two children, idempotence collapses x⊕x with equal sides.
//
// Identity (A2) and divisibility (A5) contribute no rewrites over variables:
// as the paper notes, aggregating *variables* cannot exploit the identity
// element (a variable may or may not hold it), and likewise divisibility's
// solutions are values, not available terms.
func (a Axioms) Canon(e *Expr) string {
	if a.Assoc {
		var leaves []string
		var flat func(*Expr)
		flat = func(x *Expr) {
			if x.IsLeaf() {
				leaves = append(leaves, fmt.Sprintf("x%d", x.Var))
				return
			}
			flat(x.Left)
			flat(x.Right)
		}
		flat(e)
		if a.Comm {
			sort.Strings(leaves)
			if a.Idem {
				// Semilattice: set semantics (Lemma 1).
				dedup := leaves[:0]
				for _, l := range leaves {
					if len(dedup) > 0 && dedup[len(dedup)-1] == l {
						continue
					}
					dedup = append(dedup, l)
				}
				leaves = dedup
			}
			return strings.Join(leaves, "·")
		}
		if a.Idem {
			// Band (associative + idempotent, non-commutative): use the
			// classical free-band normal form, under which e.g. abab = ab.
			return bandCanon(leaves)
		}
		return strings.Join(leaves, "·")
	}
	// Non-associative: recurse on the tree.
	if e.IsLeaf() {
		return fmt.Sprintf("x%d", e.Var)
	}
	l, r := a.Canon(e.Left), a.Canon(e.Right)
	if a.Idem && l == r {
		return l
	}
	if a.Comm && r < l {
		l, r = r, l
	}
	return "(" + l + "•" + r + ")"
}

// Equivalent reports whether two expressions are A-equivalent under the
// axiom set.
func (a Axioms) Equivalent(e1, e2 *Expr) bool { return a.Canon(e1) == a.Canon(e2) }

// bandCanon computes the free-band normal form of a word of letters: two
// words are equal in the free band (associative, idempotent) iff they have
// the same content, the same (prefix before the last-arriving letter, that
// letter), and symmetrically for the suffix — applied recursively
// (Green–Rees structure of free bands).
func bandCanon(word []string) string {
	content := map[string]bool{}
	for _, l := range word {
		content[l] = true
	}
	switch len(content) {
	case 0:
		return ""
	case 1:
		return word[0]
	}
	// Shortest prefix containing every letter; its last element is the
	// letter whose first occurrence is latest.
	seen := map[string]bool{}
	var pIdx int
	for i, l := range word {
		if !seen[l] {
			seen[l] = true
			if len(seen) == len(content) {
				pIdx = i
				break
			}
		}
	}
	// Shortest suffix containing every letter, scanning from the right.
	seen = map[string]bool{}
	var sIdx int
	for i := len(word) - 1; i >= 0; i-- {
		if !seen[word[i]] {
			seen[word[i]] = true
			if len(seen) == len(content) {
				sIdx = i
				break
			}
		}
	}
	return "<" + bandCanon(word[:pIdx]) + "|" + word[pIdx] + "‖" + word[sIdx] + "|" + bandCanon(word[sIdx+1:]) + ">"
}
