package plan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExprBasics(t *testing.T) {
	e := Op(V(0), Op(V(1), V(2)))
	if e.String() != "(x0⊕(x1⊕x2))" {
		t.Fatalf("String = %q", e.String())
	}
	if e.Size() != 2 {
		t.Fatalf("Size = %d", e.Size())
	}
	if got := e.Vars(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Vars = %v", got)
	}
	if !V(3).IsLeaf() || e.IsLeaf() {
		t.Fatal("IsLeaf wrong")
	}
}

func TestChainExpr(t *testing.T) {
	e := ChainExpr(1, 2, 3)
	if e.String() != "(x1⊕(x2⊕x3))" {
		t.Fatalf("ChainExpr = %q", e.String())
	}
	if ChainExpr(7).String() != "x7" {
		t.Fatal("single-var chain")
	}
}

func TestCanonNoAxioms(t *testing.T) {
	ax := Axioms{}
	// Different association = different expressions for a magma.
	if ax.Equivalent(Op(Op(V(0), V(1)), V(2)), Op(V(0), Op(V(1), V(2)))) {
		t.Fatal("magma should distinguish associations")
	}
	if ax.Equivalent(Op(V(0), V(1)), Op(V(1), V(0))) {
		t.Fatal("magma should distinguish operand order")
	}
	if !ax.Equivalent(Op(V(0), V(1)), Op(V(0), V(1))) {
		t.Fatal("identical expressions must be equivalent")
	}
}

func TestCanonCommutative(t *testing.T) {
	ax := Axioms{Comm: true}
	if !ax.Equivalent(Op(V(0), V(1)), Op(V(1), V(0))) {
		t.Fatal("commutativity should equate x0⊕x1 and x1⊕x0")
	}
	if ax.Equivalent(Op(Op(V(0), V(1)), V(2)), Op(V(0), Op(V(1), V(2)))) {
		t.Fatal("commutativity alone must not equate different associations")
	}
}

func TestCanonIdempotentNonAssoc(t *testing.T) {
	ax := Axioms{Idem: true}
	if !ax.Equivalent(Op(V(0), V(0)), V(0)) {
		t.Fatal("x⊕x should collapse to x")
	}
	inner := Op(V(0), V(1))
	if !ax.Equivalent(Op(inner, inner), inner) {
		t.Fatal("e⊕e should collapse to e")
	}
}

func TestCanonAssociative(t *testing.T) {
	ax := Axioms{Assoc: true}
	if !ax.Equivalent(Op(Op(V(0), V(1)), V(2)), Op(V(0), Op(V(1), V(2)))) {
		t.Fatal("associativity should equate associations")
	}
	if ax.Equivalent(Op(V(0), V(1)), Op(V(1), V(0))) {
		t.Fatal("semigroup must distinguish operand order")
	}
}

func TestCanonSemilattice(t *testing.T) {
	ax := Axioms{Assoc: true, Comm: true, Idem: true}
	// Lemma 1: equivalence iff same variable set.
	e1 := Op(Op(V(2), V(0)), Op(V(1), V(0)))
	e2 := Op(V(0), Op(V(1), V(2)))
	if !ax.Equivalent(e1, e2) {
		t.Fatal("semilattice: same var set must be equivalent")
	}
	if ax.Equivalent(e1, Op(V(0), V(1))) {
		t.Fatal("semilattice: different var sets must differ")
	}
}

func TestCanonFreeBand(t *testing.T) {
	ax := Axioms{Assoc: true, Idem: true}
	a, b := V(0), V(1)
	ab := Op(a, b)
	abab := Op(ab, ab)
	if !ax.Equivalent(abab, ab) {
		t.Fatal("free band: (ab)(ab) = ab")
	}
	aba := Op(ab, a)
	if ax.Equivalent(aba, ab) {
		t.Fatal("free band: aba ≠ ab")
	}
	if ax.Equivalent(aba, Op(a, Op(b, Op(a, b)))) { // abab = ab ≠ aba
		t.Fatal("free band: aba ≠ abab")
	}
	// a·b·a·b·a = (ab)(ab)a = aba.
	ababa := Op(abab, a)
	if !ax.Equivalent(ababa, aba) {
		t.Fatal("free band: ababa = aba")
	}
	bab := Op(Op(b, a), b)
	if ax.Equivalent(aba, bab) {
		t.Fatal("free band: aba ≠ bab")
	}
}

func TestCanonMultisetVsSet(t *testing.T) {
	// Abelian-group-style (assoc+comm, no idem): multiplicity matters.
	ax := Axioms{Assoc: true, Comm: true}
	if ax.Equivalent(Op(V(0), V(0)), V(0)) {
		t.Fatal("without idempotence x⊕x ≠ x")
	}
	if !ax.Equivalent(Op(Op(V(1), V(0)), V(0)), Op(V(0), Op(V(0), V(1)))) {
		t.Fatal("assoc+comm should equate multiset-equal terms")
	}
}

func TestStructureNames(t *testing.T) {
	cases := []struct {
		ax   Axioms
		want string
	}{
		{Axioms{}, "magma"},
		{Axioms{Assoc: true}, "semigroup"},
		{Axioms{Assoc: true, Identity: true}, "monoid"},
		{Axioms{Assoc: true, Identity: true, Div: true}, "group"},
		{Axioms{Assoc: true, Identity: true, Comm: true, Div: true}, "Abelian group"},
		{Axioms{Assoc: true, Idem: true}, "band"},
		{Axioms{Assoc: true, Idem: true, Comm: true}, "semilattice"},
		{Axioms{Div: true}, "quasigroup"},
		{Axioms{Identity: true, Div: true}, "loop"},
	}
	for _, c := range cases {
		if got := c.ax.Structure(); got != c.want {
			t.Errorf("Structure(%v) = %q, want %q", c.ax, got, c.want)
		}
	}
	if s := (Axioms{Assoc: true, Comm: true}).String(); s != "A1=Y A2=N A3=N A4=Y A5=N" {
		t.Fatalf("String = %q", s)
	}
}

// TestQuickCanonRespectsEvaluation: if two random expressions are declared
// equivalent under an axiom set, they must evaluate equally under a concrete
// operator satisfying those axioms (soundness of Canon).
func TestQuickCanonRespectsEvaluation(t *testing.T) {
	type opCase struct {
		ax Axioms
		op func(a, b float64) float64
	}
	cases := []opCase{
		{Axioms{}, MagmaOp},
		{Axioms{Div: true}, QuasigroupOp},
		{Axioms{Idem: true, Comm: true, Div: true}, MidpointOp},
		{Axioms{Assoc: true, Identity: true, Comm: true, Div: true}, SumOp},
		{Axioms{Assoc: true, Idem: true, Comm: true}, MaxOp},
		{Axioms{Identity: true, Div: true}, LoopOp},
	}
	for ci, c := range cases {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			nVars := 1 + rng.Intn(4)
			e1 := randomExpr(rng, nVars, rng.Intn(5))
			e2 := randomExpr(rng, nVars, rng.Intn(5))
			if !c.ax.Equivalent(e1, e2) {
				return true // nothing to check
			}
			vals := make([]float64, nVars)
			for i := range vals {
				vals[i] = float64(rng.Intn(5))
			}
			leaf := func(v int) float64 { return vals[v] }
			return math.Abs(EvalExpr(e1, leaf, c.op)-EvalExpr(e2, leaf, c.op)) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Fatalf("case %d (%v): %v", ci, c.ax, err)
		}
	}
}

// TestLoopOpProperties verifies the hard-coded order-5 loop really is a
// non-associative loop: two-sided identity 0 and Latin-square rows/columns.
func TestLoopOpProperties(t *testing.T) {
	for a := 0; a < 5; a++ {
		if LoopOp(float64(a), 0) != float64(a) || LoopOp(0, float64(a)) != float64(a) {
			t.Fatalf("0 is not an identity at %d", a)
		}
		rowSeen, colSeen := map[float64]bool{}, map[float64]bool{}
		for b := 0; b < 5; b++ {
			rowSeen[LoopOp(float64(a), float64(b))] = true
			colSeen[LoopOp(float64(b), float64(a))] = true
		}
		if len(rowSeen) != 5 || len(colSeen) != 5 {
			t.Fatalf("row/col %d not a permutation", a)
		}
	}
	assocFails := false
	for a := 0; a < 5 && !assocFails; a++ {
		for b := 0; b < 5 && !assocFails; b++ {
			for c := 0; c < 5; c++ {
				l := LoopOp(LoopOp(float64(a), float64(b)), float64(c))
				r := LoopOp(float64(a), LoopOp(float64(b), float64(c)))
				if l != r {
					assocFails = true
					break
				}
			}
		}
	}
	if !assocFails {
		t.Fatal("LoopOp is unexpectedly associative")
	}
}
