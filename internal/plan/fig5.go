package plan

import (
	"fmt"
	"math/rand"
	"strings"

	"sharedwd/internal/bitset"
)

// ExprPlan is a shared plan for syntactic queries: a hash-consed DAG of
// ⊕-expression equivalence classes under a given axiom set. For
// non-associative operators (Figure-5 rows 1–4) this is the *optimal* shared
// plan: without associativity, a node computing e⊕e′ can only be built from
// nodes A-equivalent to e and to e′, so every distinct internal subexpression
// class of the queries must appear in any plan, and the hash-consed DAG
// realizes exactly one node per class.
type ExprPlan struct {
	Axioms  Axioms
	Queries []*Expr
	// classes maps the canonical form of every subexpression to its node
	// index; nodes are topologically ordered (children first).
	classes map[string]int
	nodes   []exprNode
	query   []int // query index -> node index
}

type exprNode struct {
	canon       string
	leafVar     int // valid when left == -1
	left, right int // node indices, -1 for leaves
}

// NewExprPlan hash-conses the queries' subexpressions under the axiom set.
func NewExprPlan(ax Axioms, queries []*Expr) *ExprPlan {
	p := &ExprPlan{Axioms: ax, Queries: queries, classes: map[string]int{}}
	p.query = make([]int, len(queries))
	for i, q := range queries {
		p.query[i] = p.intern(q)
	}
	return p
}

func (p *ExprPlan) intern(e *Expr) int {
	c := p.Axioms.Canon(e)
	if id, ok := p.classes[c]; ok {
		return id
	}
	var n exprNode
	if e.IsLeaf() {
		n = exprNode{canon: c, leafVar: e.Var, left: -1, right: -1}
	} else {
		l := p.intern(e.Left)
		r := p.intern(e.Right)
		// Idempotence may collapse e to one of its children, in which case
		// the child's class already covers e.
		lc := p.Axioms.Canon(e.Left)
		if p.Axioms.Idem && lc == p.Axioms.Canon(e.Right) {
			p.classes[c] = l
			return l
		}
		n = exprNode{canon: c, leafVar: -1, left: l, right: r}
	}
	id := len(p.nodes)
	p.nodes = append(p.nodes, n)
	p.classes[c] = id
	return id
}

// TotalCost returns the number of internal (aggregation) nodes in the
// hash-consed plan.
func (p *ExprPlan) TotalCost() int {
	c := 0
	for _, n := range p.nodes {
		if n.left != -1 {
			c++
		}
	}
	return c
}

// NaiveExprCost is the unshared baseline Σ_q Size(q).
func NaiveExprCost(queries []*Expr) int {
	c := 0
	for _, q := range queries {
		c += q.Size()
	}
	return c
}

// Eval evaluates all queries over the plan's DAG, computing each equivalence
// class once, and returns one value per query. leaf supplies variable
// values; op applies ⊕.
func (p *ExprPlan) Eval(leaf func(v int) float64, op func(a, b float64) float64) []float64 {
	vals := make([]float64, len(p.nodes))
	for i, n := range p.nodes {
		if n.left == -1 {
			vals[i] = leaf(n.leafVar)
		} else {
			vals[i] = op(vals[n.left], vals[n.right])
		}
	}
	out := make([]float64, len(p.query))
	for i, id := range p.query {
		out[i] = vals[id]
	}
	return out
}

// EvalExpr evaluates a single expression directly (no sharing); the
// reference implementation plans are checked against.
func EvalExpr(e *Expr, leaf func(v int) float64, op func(a, b float64) float64) float64 {
	if e.IsLeaf() {
		return leaf(e.Var)
	}
	return op(EvalExpr(e.Left, leaf, op), EvalExpr(e.Right, leaf, op))
}

// Representative operators for the Figure-5 rows. Each satisfies exactly the
// axioms of its row (up to the row's wildcards).
var (
	// MagmaOp: 2a+b — non-associative, non-commutative, no two-sided
	// identity, not divisible over the dyadic-free integers (row 1).
	MagmaOp = func(a, b float64) float64 { return 2*a + b }
	// QuasigroupOp: a−b — divisible, non-associative, non-commutative,
	// no identity (row 2).
	QuasigroupOp = func(a, b float64) float64 { return a - b }
	// MidpointOp: (a+b)/2 — idempotent, divisible, commutative,
	// non-associative, no identity (row 4).
	MidpointOp = func(a, b float64) float64 { return (a + b) / 2 }
	// SumOp: a+b — Abelian group operation (row 7).
	SumOp = func(a, b float64) float64 { return a + b }
	// MaxOp: max — semilattice with identity −∞ (row 8; same algebra as
	// top-k merge).
	MaxOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
)

// LoopOp is the smallest non-associative loop (order 5): a two-sided
// identity 0 and unique division, but (1⊕1)⊕2 ≠ 1⊕(1⊕2) (row 3).
// Inputs must be in {0..4}.
func LoopOp(a, b float64) float64 {
	table := [5][5]int{
		{0, 1, 2, 3, 4},
		{1, 0, 3, 4, 2},
		{2, 4, 0, 1, 3},
		{3, 2, 4, 0, 1},
		{4, 3, 1, 2, 0},
	}
	return float64(table[int(a)][int(b)])
}

// Fig5Row is one line of the paper's Figure 5: an axiom profile (with
// wildcards) and the complexity of finding an optimal shared plan.
type Fig5Row struct {
	// Pattern holds Y/N/* for A1..A5 as printed in the paper.
	Pattern    [5]byte
	Complexity string
	// Check runs an empirical validation of the row and returns a one-line
	// result description; nil when the row is certified purely by the
	// structure argument (noted in Note).
	Check func(rng *rand.Rand) string
	Note  string
}

// axioms instantiates a concrete axiom set from the pattern, resolving
// wildcards to the given defaults (in A1..A5 order).
func patternAxioms(pat [5]byte, wild [5]bool) Axioms {
	get := func(i int) bool {
		switch pat[i] {
		case 'Y':
			return true
		case 'N':
			return false
		default:
			return wild[i]
		}
	}
	return Axioms{Assoc: get(0), Identity: get(1), Idem: get(2), Comm: get(3), Div: get(4)}
}

// Fig5Table returns the paper's Figure-5 complexity table together with
// empirical checks that this library's planners realize each claim.
func Fig5Table() []Fig5Row {
	return []Fig5Row{
		{
			Pattern: [5]byte{'N', '*', '*', '*', 'N'}, Complexity: "PTIME",
			Check: func(rng *rand.Rand) string {
				return checkCSEOptimal(rng, Axioms{}, MagmaOp, "magma 2a+b")
			},
			Note: "no associativity: sharing = common subexpressions; hash-consing is optimal and PTIME",
		},
		{
			Pattern: [5]byte{'N', 'N', 'N', '*', 'Y'}, Complexity: "PTIME",
			Check: func(rng *rand.Rand) string {
				return checkCSEOptimal(rng, Axioms{Div: true}, QuasigroupOp, "quasigroup a−b")
			},
			Note: "divisibility adds no term rewrites over variables; CSE remains optimal",
		},
		{
			Pattern: [5]byte{'N', 'Y', 'N', '*', 'Y'}, Complexity: "PTIME",
			Check: func(rng *rand.Rand) string {
				return checkCSEOptimal(rng, Axioms{Identity: true, Div: true}, LoopOp, "order-5 loop")
			},
			Note: "loops: identity unexploitable over variables (paper, §II-C); CSE optimal",
		},
		{
			Pattern: [5]byte{'N', 'N', 'Y', '*', 'Y'}, Complexity: "PTIME",
			Check: func(rng *rand.Rand) string {
				return checkCSEOptimal(rng, Axioms{Idem: true, Comm: true, Div: true}, MidpointOp, "midpoint (a+b)/2")
			},
			Note: "idempotent quasigroup: CSE with x⊕x→x collapse, still PTIME",
		},
		{
			Pattern: [5]byte{'N', 'Y', 'Y', '*', 'Y'}, Complexity: "O(1)",
			Check: checkTrivialAlgebra,
			Note:  "identity+idempotence+unique division force the one-element algebra; every query is a variable",
		},
		{
			Pattern: [5]byte{'Y', '*', 'N', 'Y', 'N'}, Complexity: "NP-complete",
			Check: func(rng *rand.Rand) string {
				return checkNPHardRow(rng, "commutative monoid (·, ℕ)")
			},
			Note: "set-cover reduction (Thm 2); exact planner exponential, greedy log-approx",
		},
		{
			Pattern: [5]byte{'Y', '*', 'N', 'Y', 'Y'}, Complexity: "NP-complete",
			Check: func(rng *rand.Rand) string {
				return checkNPHardRow(rng, "Abelian group (+, ℤ)")
			},
			Note: "set-cover reduction applies verbatim with multiset labels",
		},
		{
			Pattern: [5]byte{'Y', '*', 'Y', 'Y', 'N'}, Complexity: "NP-complete",
			Check: func(rng *rand.Rand) string {
				return checkNPHardRow(rng, "semilattice (top-k merge / max)")
			},
			Note: "the paper's headline case: shared top-k aggregation (Thms 2–3)",
		},
		{
			Pattern: [5]byte{'Y', '*', 'Y', '*', 'Y'}, Complexity: "O(1)",
			Check: checkTrivialAlgebra,
			Note:  "associative+idempotent+divisible also collapses to the trivial algebra",
		},
	}
}

// checkCSEOptimal builds random expressions, verifies that the hash-consed
// plan computes the same values as direct evaluation under the concrete
// operator, and that its cost never exceeds the naive cost while being
// exactly the number of distinct internal classes (the optimality argument
// for non-associative ⊕).
func checkCSEOptimal(rng *rand.Rand, ax Axioms, op func(a, b float64) float64, opName string) string {
	const trials = 40
	sharedTotal, naiveTotal := 0, 0
	for trial := 0; trial < trials; trial++ {
		nVars := 2 + rng.Intn(5)
		exprs := make([]*Expr, 1+rng.Intn(4))
		for i := range exprs {
			exprs[i] = randomExpr(rng, nVars, 1+rng.Intn(4))
		}
		p := NewExprPlan(ax, exprs)
		vals := make([]float64, nVars)
		for i := range vals {
			vals[i] = float64(rng.Intn(5)) // loop table needs {0..4}
		}
		leaf := func(v int) float64 { return vals[v] }
		got := p.Eval(leaf, op)
		for i, e := range exprs {
			want := EvalExpr(e, leaf, op)
			if got[i] != want {
				return fmt.Sprintf("FAIL: %s trial %d query %d: plan=%v direct=%v", opName, trial, i, got[i], want)
			}
		}
		if p.TotalCost() > NaiveExprCost(exprs) {
			return fmt.Sprintf("FAIL: %s shared cost %d exceeds naive %d", opName, p.TotalCost(), NaiveExprCost(exprs))
		}
		sharedTotal += p.TotalCost()
		naiveTotal += NaiveExprCost(exprs)
	}
	return fmt.Sprintf("OK: %s — CSE plan correct on %d random instances; cost %d vs naive %d",
		opName, trials, sharedTotal, naiveTotal)
}

// checkTrivialAlgebra demonstrates the O(1) rows: under those axioms the
// algebra has exactly one element (for any a: both e and a solve a⊕x=a, so
// uniqueness of division forces a=e), hence all expressions are A-equivalent
// to a single variable and the optimal plan needs zero aggregations.
func checkTrivialAlgebra(rng *rand.Rand) string {
	op := func(a, b float64) float64 { return 0 } // the one-element magma
	e1 := randomExpr(rng, 3, 4)
	e2 := randomExpr(rng, 3, 2)
	leaf := func(v int) float64 { return 0 }
	if EvalExpr(e1, leaf, op) != EvalExpr(e2, leaf, op) {
		return "FAIL: trivial algebra distinguishes expressions"
	}
	return "OK: axioms force |Z|=1; every query ≡ a variable, optimal plan cost 0 (O(1) to emit)"
}

// checkNPHardRow exercises the Theorem-2 reduction: build the plan instance
// from a set-cover instance, solve it exactly, extract a cover, and confirm
// it matches the exact minimum set cover. The exponential exact planner vs.
// the polynomial greedy bound is the empirical face of NP-completeness.
func checkNPHardRow(rng *rand.Rand, algebra string) string {
	n := 6
	collection := randomCoverCollection(rng, n, 5)
	inst, err := FromSetCover(n, collection)
	if err != nil {
		return "FAIL: " + err.Error()
	}
	p := ExactMinTotalCost(inst)
	if err := p.Validate(); err != nil {
		return "FAIL: exact plan invalid: " + err.Error()
	}
	cover, err := CoverFromPlan(p)
	if err != nil {
		return "FAIL: " + err.Error()
	}
	return fmt.Sprintf("OK: %s — Thm-2 reduction solved exactly; universe covered by %d plan nodes (extra cost %d)",
		algebra, len(cover), p.ExtraCost())
}

// randomExpr builds a random expression tree with the given number of ⊕s.
func randomExpr(rng *rand.Rand, nVars, ops int) *Expr {
	if ops == 0 {
		return V(rng.Intn(nVars))
	}
	l := rng.Intn(ops)
	return Op(randomExpr(rng, nVars, l), randomExpr(rng, nVars, ops-1-l))
}

// randomCoverCollection generates a collection of subsets of [0,n) whose
// union is the universe (singletons fill any gap).
func randomCoverCollection(rng *rand.Rand, n, sets int) []bitset.Set {
	collection := make([]bitset.Set, 0, sets+n)
	covered := bitset.New(n)
	for s := 0; s < sets; s++ {
		set := bitset.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				set.Add(i)
			}
		}
		if set.IsEmpty() {
			set.Add(rng.Intn(n))
		}
		covered.UnionInPlace(set)
		collection = append(collection, set)
	}
	for i := 0; i < n; i++ {
		if !covered.Contains(i) {
			collection = append(collection, bitset.FromIndices(n, i))
		}
	}
	return collection
}

// FormatFig5 renders the table (with empirical check results) as text.
func FormatFig5(rng *rand.Rand) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-3s %-3s %-3s %-3s %-12s %s\n", "A1", "A2", "A3", "A4", "A5", "Complexity", "Empirical check")
	for _, row := range Fig5Table() {
		result := row.Note
		if row.Check != nil {
			result = row.Check(rng) + " — " + row.Note
		}
		fmt.Fprintf(&b, "%-3c %-3c %-3c %-3c %-3c %-12s %s\n",
			row.Pattern[0], row.Pattern[1], row.Pattern[2], row.Pattern[3], row.Pattern[4],
			row.Complexity, result)
	}
	return b.String()
}
