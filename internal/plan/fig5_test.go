package plan

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestExprPlanSharesCommonSubexpressions(t *testing.T) {
	// q0 = x0⊕x1, q1 = (x0⊕x1)⊕x2: the naive cost is 3, CSE cost is 2.
	sub := Op(V(0), V(1))
	p := NewExprPlan(Axioms{}, []*Expr{sub, Op(sub, V(2))})
	if p.TotalCost() != 2 {
		t.Fatalf("TotalCost = %d, want 2", p.TotalCost())
	}
	if NaiveExprCost(p.Queries) != 3 {
		t.Fatalf("naive = %d, want 3", NaiveExprCost(p.Queries))
	}
}

func TestExprPlanCommutativeSharing(t *testing.T) {
	// The paper's example: with commutativity, x⊕y and (y⊕x)⊕z share work.
	q0 := Op(V(0), V(1))
	q1 := Op(Op(V(1), V(0)), V(2))
	if p := NewExprPlan(Axioms{}, []*Expr{q0, q1}); p.TotalCost() != 3 {
		t.Fatalf("magma cost = %d, want 3 (no sharing without A4)", p.TotalCost())
	}
	if p := NewExprPlan(Axioms{Comm: true}, []*Expr{q0, q1}); p.TotalCost() != 2 {
		t.Fatalf("commutative cost = %d, want 2", p.TotalCost())
	}
}

func TestExprPlanIdempotentCollapse(t *testing.T) {
	e := Op(V(0), V(0))
	p := NewExprPlan(Axioms{Idem: true}, []*Expr{e})
	if p.TotalCost() != 0 {
		t.Fatalf("x⊕x should collapse to the leaf; cost = %d", p.TotalCost())
	}
	vals := p.Eval(func(v int) float64 { return 7 }, MidpointOp)
	if vals[0] != 7 {
		t.Fatalf("Eval = %v", vals)
	}
}

// TestQuickExprPlanEvaluatesCorrectly: the hash-consed DAG must compute the
// same values as direct evaluation for operators matching the axiom set.
func TestQuickExprPlanEvaluatesCorrectly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(4)
		exprs := make([]*Expr, 1+rng.Intn(4))
		for i := range exprs {
			exprs[i] = randomExpr(rng, nVars, rng.Intn(5))
		}
		p := NewExprPlan(Axioms{Div: true}, exprs) // quasigroup row
		vals := make([]float64, nVars)
		for i := range vals {
			vals[i] = rng.Float64() * 10
		}
		leaf := func(v int) float64 { return vals[v] }
		got := p.Eval(leaf, QuasigroupOp)
		for i, e := range exprs {
			if got[i] != EvalExpr(e, leaf, QuasigroupOp) {
				return false
			}
		}
		return p.TotalCost() <= NaiveExprCost(exprs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFig5TableAllRowsPass(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rows := Fig5Table()
	if len(rows) != 9 {
		t.Fatalf("Figure 5 has 9 rows, got %d", len(rows))
	}
	for i, row := range rows {
		if row.Check == nil {
			continue
		}
		result := row.Check(rng)
		if strings.HasPrefix(result, "FAIL") {
			t.Errorf("row %d (%s): %s", i+1, row.Complexity, result)
		}
	}
}

func TestFig5PatternsMatchPaper(t *testing.T) {
	want := []string{
		"N****N", // spacer-free check below uses joined pattern
	}
	_ = want
	patterns := [][5]byte{
		{'N', '*', '*', '*', 'N'},
		{'N', 'N', 'N', '*', 'Y'},
		{'N', 'Y', 'N', '*', 'Y'},
		{'N', 'N', 'Y', '*', 'Y'},
		{'N', 'Y', 'Y', '*', 'Y'},
		{'Y', '*', 'N', 'Y', 'N'},
		{'Y', '*', 'N', 'Y', 'Y'},
		{'Y', '*', 'Y', 'Y', 'N'},
		{'Y', '*', 'Y', '*', 'Y'},
	}
	complexities := []string{
		"PTIME", "PTIME", "PTIME", "PTIME", "O(1)",
		"NP-complete", "NP-complete", "NP-complete", "O(1)",
	}
	rows := Fig5Table()
	for i, row := range rows {
		if row.Pattern != patterns[i] {
			t.Errorf("row %d pattern = %s, want %s", i+1, row.Pattern, patterns[i])
		}
		if row.Complexity != complexities[i] {
			t.Errorf("row %d complexity = %s, want %s", i+1, row.Complexity, complexities[i])
		}
	}
}

func TestFormatFig5(t *testing.T) {
	out := FormatFig5(rand.New(rand.NewSource(1)))
	if !strings.Contains(out, "NP-complete") || !strings.Contains(out, "PTIME") {
		t.Fatalf("FormatFig5 output missing rows:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("FormatFig5 reports failures:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // header + 9 rows
		t.Fatalf("FormatFig5 has %d lines, want 10:\n%s", len(lines), out)
	}
}

func TestPatternAxioms(t *testing.T) {
	ax := patternAxioms([5]byte{'Y', '*', 'N', '*', 'Y'}, [5]bool{false, true, false, false, false})
	want := Axioms{Assoc: true, Identity: true, Idem: false, Comm: false, Div: true}
	if ax != want {
		t.Fatalf("patternAxioms = %+v, want %+v", ax, want)
	}
}
