// Package plan implements the paper's abstract shared-aggregation framework
// (Section II-C): ⊕-expressions over variables, A-plans (DAGs of binary
// aggregations), the total/extra/expected cost model, plan execution, an
// exact optimal planner for small instances, the set-cover reductions behind
// Theorems 2 and 3, and the per-algebraic-structure planners that back the
// Figure-5 complexity table.
//
// Under axioms A1–A4 (semilattice with identity) Lemma 1 says two
// ⊕-expressions are A-equivalent iff their variable sets coincide, so this
// package identifies expressions with bitsets of variables. The syntactic
// (magma) representation needed when associativity or commutativity is
// absent lives in expr.go.
package plan

import (
	"fmt"
	"math"
	"math/rand"

	"sharedwd/internal/bitset"
)

// Query is one aggregate query: the set of variables (advertisers) it
// aggregates and its search rate sr_q — the probability that the query's bid
// phrase occurs in a given round (an independent Bernoulli trial, per the
// paper's model).
type Query struct {
	Vars bitset.Set
	Rate float64
}

// Instance is a shared-aggregation problem: n variables and a set of
// aggregate queries over them.
type Instance struct {
	NumVars int
	Queries []Query
}

// NewInstance builds an instance from query variable sets, validating that
// rates are probabilities and variable sets fit the capacity. Empty query
// sets are rejected; duplicate (A-equivalent) queries are rejected — the
// paper assumes duplicates are removed upfront.
func NewInstance(numVars int, queries []Query) (*Instance, error) {
	if numVars <= 0 {
		return nil, fmt.Errorf("plan: instance needs at least one variable, got %d", numVars)
	}
	seen := make(map[string]int, len(queries))
	for i, q := range queries {
		if q.Vars.Cap() != numVars {
			return nil, fmt.Errorf("plan: query %d has capacity %d, want %d", i, q.Vars.Cap(), numVars)
		}
		if q.Vars.IsEmpty() {
			return nil, fmt.Errorf("plan: query %d is empty", i)
		}
		if q.Rate < 0 || q.Rate > 1 {
			return nil, fmt.Errorf("plan: query %d has rate %v outside [0,1]", i, q.Rate)
		}
		if j, dup := seen[q.Vars.Key()]; dup {
			return nil, fmt.Errorf("plan: queries %d and %d are A-equivalent (%v)", j, i, q.Vars)
		}
		seen[q.Vars.Key()] = i
	}
	return &Instance{NumVars: numVars, Queries: queries}, nil
}

// MustInstance is NewInstance that panics on error; for tests and fixed
// experiment setups.
func MustInstance(numVars int, queries []Query) *Instance {
	inst, err := NewInstance(numVars, queries)
	if err != nil {
		panic(err)
	}
	return inst
}

// WithRates returns a copy of the instance with per-query rates replaced by
// rates (one per query, each a probability). Variable sets are shared with
// the receiver — they are immutable once an instance is built — so re-posing
// an instance under observed traffic (the online replanner's job) costs one
// Query slice. NaN or out-of-range rates are rejected.
func (in *Instance) WithRates(rates []float64) (*Instance, error) {
	if len(rates) != len(in.Queries) {
		return nil, fmt.Errorf("plan: %d rates for %d queries", len(rates), len(in.Queries))
	}
	qs := make([]Query, len(in.Queries))
	for i, q := range in.Queries {
		r := rates[i]
		if math.IsNaN(r) || r < 0 || r > 1 {
			return nil, fmt.Errorf("plan: query %d rate %v outside [0,1]", i, r)
		}
		qs[i] = Query{Vars: q.Vars, Rate: r}
	}
	return &Instance{NumVars: in.NumVars, Queries: qs}, nil
}

// UniformRates returns a copy of the instance with every query's rate set to
// sr. Used by the Figure-4 sweep.
func (in *Instance) UniformRates(sr float64) *Instance {
	qs := make([]Query, len(in.Queries))
	for i, q := range in.Queries {
		qs[i] = Query{Vars: q.Vars, Rate: sr}
	}
	return &Instance{NumVars: in.NumVars, Queries: qs}
}

// TotalQueryVars returns Σ_q |X_q|, the bound the paper uses for the greedy
// heuristic's step count.
func (in *Instance) TotalQueryVars() int {
	t := 0
	for _, q := range in.Queries {
		t += q.Vars.Count()
	}
	return t
}

// RandomCoinFlipInstance reproduces the construction behind Figure 4:
// numQueries top-k queries over numVars advertisers, where each advertiser
// joins each query by an independent fair coin flip; duplicate and empty
// queries are re-flipped. All rates are set to rate.
//
// The Figure-4 configuration is numVars=20, numQueries=10.
func RandomCoinFlipInstance(rng *rand.Rand, numVars, numQueries int, rate float64) *Instance {
	queries := make([]Query, 0, numQueries)
	seen := make(map[string]bool)
	for len(queries) < numQueries {
		v := bitset.New(numVars)
		for i := 0; i < numVars; i++ {
			if rng.Intn(2) == 0 {
				v.Add(i)
			}
		}
		if v.IsEmpty() || seen[v.Key()] {
			continue
		}
		seen[v.Key()] = true
		queries = append(queries, Query{Vars: v, Rate: rate})
	}
	return MustInstance(numVars, queries)
}

// RandomOverlapInstance generates an instance with topic structure: vars are
// partitioned into numTopics topics, and each query draws its variables from
// 1–2 topics plus a small random sprinkle. This mimics the paper's
// shoe-store motivation (general stores shared across phrases, specialists
// not) and drives the larger benchmark sweeps. Rates are drawn uniformly
// from [rateLo, rateHi].
func RandomOverlapInstance(rng *rand.Rand, numVars, numQueries, numTopics int, rateLo, rateHi float64) *Instance {
	if numTopics <= 0 {
		panic("plan: numTopics must be positive")
	}
	topicOf := make([]int, numVars)
	for i := range topicOf {
		topicOf[i] = rng.Intn(numTopics)
	}
	queries := make([]Query, 0, numQueries)
	seen := make(map[string]bool)
	for attempts := 0; len(queries) < numQueries && attempts < numQueries*100; attempts++ {
		v := bitset.New(numVars)
		t1 := rng.Intn(numTopics)
		t2 := t1
		if rng.Intn(2) == 0 {
			t2 = rng.Intn(numTopics)
		}
		for i := 0; i < numVars; i++ {
			switch {
			case topicOf[i] == t1 || topicOf[i] == t2:
				if rng.Float64() < 0.8 {
					v.Add(i)
				}
			case rng.Float64() < 0.02:
				v.Add(i)
			}
		}
		if v.IsEmpty() || seen[v.Key()] {
			continue
		}
		seen[v.Key()] = true
		queries = append(queries, Query{Vars: v, Rate: rateLo + rng.Float64()*(rateHi-rateLo)})
	}
	return MustInstance(numVars, queries)
}
