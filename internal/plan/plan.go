package plan

import (
	"fmt"

	"sharedwd/internal/bitset"
)

// Leaf marks the child slots of leaf nodes.
const Leaf = -1

// Node is one vertex of an A-plan DAG. Leaves (Left == Leaf) are labeled
// with a single variable; internal nodes aggregate exactly two children and
// are labeled, per Lemma 1, with the union of their children's variable sets.
type Node struct {
	ID          int
	Vars        bitset.Set
	Left, Right int // child node IDs, or Leaf
}

// IsLeaf reports whether the node is a variable leaf.
func (n Node) IsLeaf() bool { return n.Left == Leaf }

// Plan is an A-plan for an instance: a DAG whose first NumVars nodes are the
// variable leaves and whose internal nodes are binary ⊕-aggregations.
// QueryNode maps each instance query to the node computing it.
//
// Plans are append-only: nodes are never removed, so node IDs are stable.
type Plan struct {
	Inst      *Instance
	Nodes     []Node
	QueryNode []int
}

// NewPlan creates a plan containing only the variable leaves, with all
// queries unassigned (-1).
func NewPlan(inst *Instance) *Plan {
	p := &Plan{
		Inst:      inst,
		Nodes:     make([]Node, 0, inst.NumVars+2*len(inst.Queries)),
		QueryNode: make([]int, len(inst.Queries)),
	}
	for i := 0; i < inst.NumVars; i++ {
		p.Nodes = append(p.Nodes, Node{ID: i, Vars: bitset.FromIndices(inst.NumVars, i), Left: Leaf, Right: Leaf})
	}
	for i := range p.QueryNode {
		p.QueryNode[i] = -1
		// A query consisting of a single variable is computed by its leaf.
		if inst.Queries[i].Vars.Count() == 1 {
			p.QueryNode[i] = inst.Queries[i].Vars.Indices()[0]
		}
	}
	return p
}

// AddAggregate appends a new internal node aggregating children l and r and
// returns its ID. The node's label is the union of the children's labels.
// If the new node's variable set equals an unassigned query, that query is
// bound to it.
func (p *Plan) AddAggregate(l, r int) int {
	if l < 0 || l >= len(p.Nodes) || r < 0 || r >= len(p.Nodes) {
		panic(fmt.Sprintf("plan: aggregate of invalid children %d, %d", l, r))
	}
	id := len(p.Nodes)
	vars := p.Nodes[l].Vars.Union(p.Nodes[r].Vars)
	p.Nodes = append(p.Nodes, Node{ID: id, Vars: vars, Left: l, Right: r})
	for qi, q := range p.Inst.Queries {
		if p.QueryNode[qi] == -1 && q.Vars.Equal(vars) {
			p.QueryNode[qi] = id
		}
	}
	return id
}

// Chain aggregates the given node IDs left-deep ((a⊕b)⊕c)… and returns the
// final node ID. A single ID is returned unchanged. It panics on empty input.
func (p *Plan) Chain(ids []int) int {
	if len(ids) == 0 {
		panic("plan: Chain of no nodes")
	}
	acc := ids[0]
	for _, id := range ids[1:] {
		acc = p.AddAggregate(acc, id)
	}
	return acc
}

// Complete reports whether every query is assigned a computing node.
func (p *Plan) Complete() bool {
	for _, id := range p.QueryNode {
		if id == -1 {
			return false
		}
	}
	return true
}

// TotalCost is the number of internal (aggregation) nodes — the paper's
// total cost of an A-plan.
func (p *Plan) TotalCost() int { return len(p.Nodes) - p.Inst.NumVars }

// BaseCost is |E|: every plan must compute each query with some node, so no
// plan for the instance costs less than this (counting only multi-variable
// queries, since single-variable queries are leaves).
func (p *Plan) BaseCost() int {
	c := 0
	for _, q := range p.Inst.Queries {
		if q.Vars.Count() > 1 {
			c++
		}
	}
	return c
}

// ExtraCost is TotalCost − BaseCost: the partial results beyond the
// unavoidable per-query aggregates. Inapproximability (Theorem 3) is stated
// in terms of this quantity.
func (p *Plan) ExtraCost() int { return p.TotalCost() - p.BaseCost() }

// reach returns, for every node, the bitset of queries whose computation
// uses the node (v ⤳ q): q's assigned node and all its descendants.
func (p *Plan) reach() []bitset.Set {
	m := len(p.Inst.Queries)
	reach := make([]bitset.Set, len(p.Nodes))
	for i := range reach {
		reach[i] = bitset.New(m)
	}
	for qi, id := range p.QueryNode {
		if id == -1 {
			continue
		}
		var mark func(n int)
		mark = func(n int) {
			if reach[n].Contains(qi) {
				return
			}
			reach[n].Add(qi)
			if !p.Nodes[n].IsLeaf() {
				mark(p.Nodes[n].Left)
				mark(p.Nodes[n].Right)
			}
		}
		mark(id)
	}
	return reach
}

// ExpectedCost returns the expected number of internal nodes materialized
// per round: Σ_v (1 − Π_{q: v⤳q} (1 − sr_q)), the paper's plan cost
// objective. Unreachable internal nodes contribute 0. It panics if the plan
// is incomplete, since the cost of an incomplete plan is meaningless.
func (p *Plan) ExpectedCost() float64 {
	if !p.Complete() {
		panic("plan: ExpectedCost of incomplete plan")
	}
	reach := p.reach()
	total := 0.0
	for i := p.Inst.NumVars; i < len(p.Nodes); i++ {
		probNone := 1.0
		reach[i].ForEach(func(qi int) bool {
			probNone *= 1 - p.Inst.Queries[qi].Rate
			return true
		})
		if !reach[i].IsEmpty() {
			total += 1 - probNone
		}
	}
	return total
}

// Validate checks the paper's A-plan well-formedness conditions: children
// precede parents (acyclicity by construction), every internal label is the
// union of its children's labels, every leaf is a distinct single variable,
// and every query is assigned a node whose label is A-equivalent to it
// (equal variable sets, by Lemma 1).
func (p *Plan) Validate() error {
	if len(p.Nodes) < p.Inst.NumVars {
		return fmt.Errorf("plan: missing leaves: %d nodes for %d vars", len(p.Nodes), p.Inst.NumVars)
	}
	for i := 0; i < p.Inst.NumVars; i++ {
		n := p.Nodes[i]
		if !n.IsLeaf() {
			return fmt.Errorf("plan: node %d should be a leaf", i)
		}
		if n.Vars.Count() != 1 || !n.Vars.Contains(i) {
			return fmt.Errorf("plan: leaf %d labeled %v, want {%d}", i, n.Vars, i)
		}
	}
	for i := p.Inst.NumVars; i < len(p.Nodes); i++ {
		n := p.Nodes[i]
		if n.ID != i {
			return fmt.Errorf("plan: node %d has ID %d", i, n.ID)
		}
		if n.IsLeaf() {
			return fmt.Errorf("plan: node %d beyond leaves has no children", i)
		}
		if n.Left >= i || n.Right >= i || n.Left < 0 || n.Right < 0 {
			return fmt.Errorf("plan: node %d references non-preceding children %d, %d", i, n.Left, n.Right)
		}
		if !n.Vars.Equal(p.Nodes[n.Left].Vars.Union(p.Nodes[n.Right].Vars)) {
			return fmt.Errorf("plan: node %d label %v is not the union of its children", i, n.Vars)
		}
	}
	for qi, id := range p.QueryNode {
		if id == -1 {
			return fmt.Errorf("plan: query %d unassigned", qi)
		}
		if id < 0 || id >= len(p.Nodes) {
			return fmt.Errorf("plan: query %d assigned to invalid node %d", qi, id)
		}
		if !p.Nodes[id].Vars.Equal(p.Inst.Queries[qi].Vars) {
			return fmt.Errorf("plan: query %d (%v) assigned to node labeled %v",
				qi, p.Inst.Queries[qi].Vars, p.Nodes[id].Vars)
		}
	}
	return nil
}

// DisjointChildren reports whether every internal node aggregates
// variable-disjoint children. Plans with this property evaluate
// non-idempotent (multiset-semantics) aggregates such as sum and count
// correctly: every variable reaches each query exactly once. Idempotent
// operators (top-k, max, Bloom union) are correct on any valid plan.
func (p *Plan) DisjointChildren() bool {
	for i := p.Inst.NumVars; i < len(p.Nodes); i++ {
		n := p.Nodes[i]
		if p.Nodes[n.Left].Vars.Intersects(p.Nodes[n.Right].Vars) {
			return false
		}
	}
	return true
}

// Execute evaluates the plan for one round. leaf supplies the value of each
// variable; op is the ⊕ aggregation; occurring[qi] says whether query qi's
// bid phrase occurred this round (nil means all occur). Only nodes needed
// for occurring queries are materialized — materialized returns how many
// internal nodes were, which is exactly the per-round cost the expected-cost
// model predicts.
//
// Execute is a free function rather than a method because Go methods cannot
// introduce type parameters.
func Execute[T any](p *Plan, leaf func(v int) T, op func(a, b T) T, occurring []bool) (results map[int]T, materialized int) {
	if !p.Complete() {
		panic("plan: Execute of incomplete plan")
	}
	memo := make(map[int]T)
	var eval func(id int) T
	eval = func(id int) T {
		if v, ok := memo[id]; ok {
			return v
		}
		n := p.Nodes[id]
		var v T
		if n.IsLeaf() {
			v = leaf(n.ID)
		} else {
			v = op(eval(n.Left), eval(n.Right))
			materialized++
		}
		memo[id] = v
		return v
	}
	results = make(map[int]T)
	for qi, id := range p.QueryNode {
		if occurring != nil && !occurring[qi] {
			continue
		}
		results[qi] = eval(id)
	}
	return results, materialized
}

// String renders the plan compactly for debugging.
func (p *Plan) String() string {
	s := fmt.Sprintf("plan{vars=%d, internal=%d", p.Inst.NumVars, p.TotalCost())
	for qi, id := range p.QueryNode {
		s += fmt.Sprintf(", q%d→n%d", qi, id)
	}
	return s + "}"
}
