package plan

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sharedwd/internal/bitset"
	"sharedwd/internal/topk"
)

func q(n int, rate float64, vars ...int) Query {
	return Query{Vars: bitset.FromIndices(n, vars...), Rate: rate}
}

func TestNewInstanceValidation(t *testing.T) {
	cases := []struct {
		name    string
		numVars int
		queries []Query
		wantErr string
	}{
		{"no vars", 0, nil, "at least one variable"},
		{"empty query", 4, []Query{q(4, 1)}, "empty"},
		{"bad rate", 4, []Query{{Vars: bitset.FromIndices(4, 0), Rate: 1.5}}, "rate"},
		{"capacity mismatch", 4, []Query{q(5, 1, 0)}, "capacity"},
		{"duplicate", 4, []Query{q(4, 1, 0, 1), q(4, 0.5, 1, 0)}, "A-equivalent"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewInstance(c.numVars, c.queries)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, c.wantErr)
			}
		})
	}
	if _, err := NewInstance(4, []Query{q(4, 1, 0, 1)}); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestPlanConstructionAndValidate(t *testing.T) {
	inst := MustInstance(4, []Query{q(4, 1, 0, 1), q(4, 1, 0, 1, 2)})
	p := NewPlan(inst)
	if p.Complete() {
		t.Fatal("fresh plan should be incomplete")
	}
	n01 := p.AddAggregate(0, 1)
	if p.QueryNode[0] != n01 {
		t.Fatal("query 0 should bind to node {0,1}")
	}
	n012 := p.AddAggregate(n01, 2)
	if p.QueryNode[1] != n012 {
		t.Fatal("query 1 should bind to node {0,1,2}")
	}
	if !p.Complete() {
		t.Fatal("plan should be complete")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalCost() != 2 || p.BaseCost() != 2 || p.ExtraCost() != 0 {
		t.Fatalf("costs = %d/%d/%d", p.TotalCost(), p.BaseCost(), p.ExtraCost())
	}
}

func TestSingleVariableQueryIsLeaf(t *testing.T) {
	inst := MustInstance(3, []Query{q(3, 1, 2)})
	p := NewPlan(inst)
	if p.QueryNode[0] != 2 {
		t.Fatalf("singleton query should bind to leaf 2, got %d", p.QueryNode[0])
	}
	if !p.Complete() {
		t.Fatal("plan with only singleton queries should be complete")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.BaseCost() != 0 || p.ExpectedCost() != 0 {
		t.Fatalf("BaseCost=%d ExpectedCost=%v, want 0/0", p.BaseCost(), p.ExpectedCost())
	}
}

func TestChain(t *testing.T) {
	inst := MustInstance(4, []Query{q(4, 1, 0, 1, 2, 3)})
	p := NewPlan(inst)
	root := p.Chain([]int{0, 1, 2, 3})
	if p.QueryNode[0] != root {
		t.Fatal("chain root should bind the query")
	}
	if p.TotalCost() != 3 {
		t.Fatalf("TotalCost = %d, want 3", p.TotalCost())
	}
	if p.Chain([]int{2}) != 2 {
		t.Fatal("Chain of one node should return it")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	inst := MustInstance(3, []Query{q(3, 1, 0, 1)})
	p := NewPlan(inst)
	p.AddAggregate(0, 1)
	p.Nodes[3].Vars = bitset.FromIndices(3, 0, 2) // corrupt the label
	if err := p.Validate(); err == nil {
		t.Fatal("Validate should reject label != union of children")
	}
	p2 := NewPlan(inst)
	if err := p2.Validate(); err == nil {
		t.Fatal("Validate should reject unassigned query")
	}
}

func TestExpectedCostDeterministic(t *testing.T) {
	// Two queries at rate 1 sharing one node: every internal node counts 1.
	inst := MustInstance(4, []Query{q(4, 1, 0, 1, 2), q(4, 1, 0, 1, 3)})
	p := NewPlan(inst)
	shared := p.AddAggregate(0, 1)
	p.AddAggregate(shared, 2)
	p.AddAggregate(shared, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.ExpectedCost(); got != 3 {
		t.Fatalf("ExpectedCost = %v, want 3", got)
	}
	if p.TotalCost() != 3 || p.ExtraCost() != 1 {
		t.Fatalf("TotalCost=%d ExtraCost=%d", p.TotalCost(), p.ExtraCost())
	}
}

func TestExpectedCostProbabilistic(t *testing.T) {
	// Shared node feeding two queries at rate p is materialized with
	// probability 1-(1-p)²; private nodes with probability p.
	inst := MustInstance(4, []Query{q(4, 0.5, 0, 1, 2), q(4, 0.25, 0, 1, 3)})
	p := NewPlan(inst)
	shared := p.AddAggregate(0, 1)
	p.AddAggregate(shared, 2)
	p.AddAggregate(shared, 3)
	want := (1 - 0.5*0.75) + 0.5 + 0.25
	if got := p.ExpectedCost(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpectedCost = %v, want %v", got, want)
	}
}

// TestExpectedCostMatchesMonteCarlo verifies the closed-form expected cost
// against simulation: draw Bernoulli query occurrences, execute the plan,
// count materialized nodes.
func TestExpectedCostMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := RandomCoinFlipInstance(rng, 12, 6, 0.4)
	p := NaivePlan(inst)
	// Make it interesting: also test a shared plan built by hand — chain all
	// variables once, then bind is impossible in general, so stick with the
	// naive plan plus verify on a second, partially shared plan below.
	verifyMonteCarlo(t, rng, p)

	inst2 := MustInstance(5, []Query{q(5, 0.3, 0, 1, 2), q(5, 0.7, 0, 1, 3, 4)})
	p2 := NewPlan(inst2)
	n01 := p2.AddAggregate(0, 1)
	p2.AddAggregate(n01, 2)
	n34 := p2.AddAggregate(3, 4)
	p2.AddAggregate(n01, n34)
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
	verifyMonteCarlo(t, rng, p2)
}

func verifyMonteCarlo(t *testing.T, rng *rand.Rand, p *Plan) {
	t.Helper()
	const rounds = 20000
	total := 0
	occurring := make([]bool, len(p.Inst.Queries))
	leaf := func(v int) int { return v }
	op := func(a, b int) int { return a + b }
	for r := 0; r < rounds; r++ {
		for qi, qq := range p.Inst.Queries {
			occurring[qi] = rng.Float64() < qq.Rate
		}
		_, mat := Execute(p, leaf, op, occurring)
		total += mat
	}
	got := float64(total) / rounds
	want := p.ExpectedCost()
	if math.Abs(got-want) > 0.05*want+0.05 {
		t.Fatalf("Monte-Carlo cost %v vs expected %v", got, want)
	}
}

func TestExecuteWithTopK(t *testing.T) {
	// Execute a plan with the real top-k merge and check against direct
	// aggregation of each query's variable set.
	inst := MustInstance(6, []Query{q(6, 1, 0, 1, 2, 3), q(6, 1, 2, 3, 4, 5)})
	p := NewPlan(inst)
	n01 := p.AddAggregate(0, 1)
	n23 := p.AddAggregate(2, 3)
	n45 := p.AddAggregate(4, 5)
	p.AddAggregate(n01, n23)
	p.AddAggregate(n23, n45)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bids := []float64{5, 9, 2, 7, 4, 8}
	const k = 2
	leaf := func(v int) *topk.List {
		return topk.FromEntries(k, topk.Entry{ID: v, Score: bids[v]})
	}
	results, mat := Execute(p, leaf, topk.Merge, nil)
	if mat != 5 {
		t.Fatalf("materialized = %d, want 5", mat)
	}
	for qi, want := range [][]int{{1, 3}, {5, 3}} {
		got := results[qi].IDs()
		if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("query %d IDs = %v, want %v", qi, got, want)
		}
	}
}

func TestExecuteSkipsNonOccurring(t *testing.T) {
	inst := MustInstance(4, []Query{q(4, 1, 0, 1), q(4, 1, 2, 3)})
	p := NewPlan(inst)
	p.AddAggregate(0, 1)
	p.AddAggregate(2, 3)
	results, mat := Execute(p, func(v int) int { return v }, func(a, b int) int { return a + b },
		[]bool{true, false})
	if mat != 1 {
		t.Fatalf("materialized = %d, want 1", mat)
	}
	if _, ok := results[1]; ok {
		t.Fatal("non-occurring query should not be in results")
	}
	if results[0] != 1 {
		t.Fatalf("results[0] = %v", results[0])
	}
}

func TestNaivePlanCost(t *testing.T) {
	inst := MustInstance(5, []Query{q(5, 1, 0, 1, 2), q(5, 1, 0, 1, 2, 3, 4)})
	p := NaivePlan(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalCost() != 2+4 {
		t.Fatalf("naive TotalCost = %d, want 6", p.TotalCost())
	}
}

func TestExactMinTotalCostSharesPrefix(t *testing.T) {
	// Queries {0,1,2} and {0,1,3} share {0,1}: optimal cost 3 (< naive 4).
	inst := MustInstance(4, []Query{q(4, 1, 0, 1, 2), q(4, 1, 0, 1, 3)})
	p := ExactMinTotalCost(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalCost() != 3 {
		t.Fatalf("exact TotalCost = %d, want 3", p.TotalCost())
	}
}

func TestExactMinTotalCostNoSharingPossible(t *testing.T) {
	inst := MustInstance(4, []Query{q(4, 1, 0, 1), q(4, 1, 2, 3)})
	p := ExactMinTotalCost(inst)
	if p.TotalCost() != 2 {
		t.Fatalf("TotalCost = %d, want 2", p.TotalCost())
	}
}

func TestExactSingletonOnly(t *testing.T) {
	inst := MustInstance(3, []Query{q(3, 1, 1)})
	p := ExactMinTotalCost(inst)
	if p.TotalCost() != 0 || !p.Complete() {
		t.Fatalf("TotalCost = %d complete=%v", p.TotalCost(), p.Complete())
	}
}

func TestExactNestedSubexpressions(t *testing.T) {
	// {0,1}, {0,1,2}, {0,1,2,3}: a tower shares everything; cost 3.
	inst := MustInstance(4, []Query{q(4, 1, 0, 1), q(4, 1, 0, 1, 2), q(4, 1, 0, 1, 2, 3)})
	p := ExactMinTotalCost(inst)
	if p.TotalCost() != 3 {
		t.Fatalf("TotalCost = %d, want 3", p.TotalCost())
	}
}

func TestFromSetCoverReduction(t *testing.T) {
	// Universe {0..3}, sets {0,1}, {2,3}, {1,2}. Min cover = 2.
	coll := []bitset.Set{
		bitset.FromIndices(4, 0, 1),
		bitset.FromIndices(4, 2, 3),
		bitset.FromIndices(4, 1, 2),
	}
	inst, err := FromSetCover(4, coll)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Queries) != 4 { // 3 sets + universe
		t.Fatalf("queries = %d, want 4", len(inst.Queries))
	}
	p := ExactMinTotalCost(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Plan: 3 set queries (3 nodes) + universe from the size-2 cover (1 node).
	if p.TotalCost() != 4 {
		t.Fatalf("TotalCost = %d, want 4", p.TotalCost())
	}
	cover, err := CoverFromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 2 {
		t.Fatalf("extracted cover size = %d, want 2 (cover: %v)", len(cover), cover)
	}
	u := bitset.New(4)
	for _, s := range cover {
		u.UnionInPlace(s)
	}
	if u.Count() != 4 {
		t.Fatalf("extracted cover does not cover universe: %v", cover)
	}
}

func TestFromSetCoverErrors(t *testing.T) {
	if _, err := FromSetCover(3, []bitset.Set{bitset.FromIndices(3, 0)}); err == nil {
		t.Fatal("non-covering collection should be rejected")
	}
	if _, err := FromSetCover(3, []bitset.Set{bitset.New(3), bitset.FromIndices(3, 0, 1, 2)}); err == nil {
		t.Fatal("empty set should be rejected")
	}
}

func TestFromSetCoverClosed(t *testing.T) {
	coll := []bitset.Set{
		bitset.FromIndices(4, 0, 1, 2),
		bitset.FromIndices(4, 2, 3),
	}
	inst, err := FromSetCoverClosed(4, coll)
	if err != nil {
		t.Fatal(err)
	}
	// Prefix closure: {0,1},{0,1,2} from the first set; {2,3} from the
	// second; plus universe {0,1,2,3}.
	if len(inst.Queries) != 4 {
		t.Fatalf("queries = %d, want 4: %v", len(inst.Queries), inst.Queries)
	}
}

func TestRandomCoinFlipInstanceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := RandomCoinFlipInstance(rng, 20, 10, 0.3)
	if inst.NumVars != 20 || len(inst.Queries) != 10 {
		t.Fatalf("instance shape %d/%d", inst.NumVars, len(inst.Queries))
	}
	seen := map[string]bool{}
	for _, qq := range inst.Queries {
		if qq.Vars.IsEmpty() {
			t.Fatal("empty query generated")
		}
		if qq.Rate != 0.3 {
			t.Fatalf("rate = %v", qq.Rate)
		}
		if seen[qq.Vars.Key()] {
			t.Fatal("duplicate query generated")
		}
		seen[qq.Vars.Key()] = true
	}
}

func TestRandomOverlapInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst := RandomOverlapInstance(rng, 50, 12, 5, 0.2, 0.8)
	if len(inst.Queries) != 12 {
		t.Fatalf("queries = %d", len(inst.Queries))
	}
	for _, qq := range inst.Queries {
		if qq.Rate < 0.2 || qq.Rate > 0.8 {
			t.Fatalf("rate %v outside [0.2,0.8]", qq.Rate)
		}
	}
}

func TestUniformRates(t *testing.T) {
	inst := MustInstance(4, []Query{q(4, 0.9, 0, 1), q(4, 0.1, 2, 3)})
	u := inst.UniformRates(0.5)
	for _, qq := range u.Queries {
		if qq.Rate != 0.5 {
			t.Fatalf("rate = %v", qq.Rate)
		}
	}
	if inst.Queries[0].Rate != 0.9 {
		t.Fatal("UniformRates must not mutate the original")
	}
	if inst.TotalQueryVars() != 4 {
		t.Fatalf("TotalQueryVars = %d", inst.TotalQueryVars())
	}
}

func TestDOT(t *testing.T) {
	inst := MustInstance(4, []Query{q(4, 1, 0, 1, 2), q(4, 1, 0, 1, 3)})
	p := NewPlan(inst)
	shared := p.AddAggregate(0, 1)
	p.AddAggregate(shared, 2)
	p.AddAggregate(shared, 3)
	dot := p.DOT()
	for _, want := range []string{"digraph", "doubleoctagon", "n0 -> n4", "x0", "queries [0]"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Variable 3 is used; an unused variable in a bigger instance should
	// not be rendered.
	inst2 := MustInstance(5, []Query{q(5, 1, 0, 1)})
	p2 := NewPlan(inst2)
	p2.AddAggregate(0, 1)
	if strings.Contains(p2.DOT(), "\"x4\"") {
		t.Fatal("unused leaf rendered")
	}
}

// TestQuickExactNeverWorseThanNaive: on random small instances the exact
// planner is valid and at most the naive cost.
func TestQuickExactNeverWorseThanNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := RandomCoinFlipInstance(rng, 4+rng.Intn(3), 2+rng.Intn(2), 1)
		p := ExactMinTotalCost(inst)
		if p.Validate() != nil {
			return false
		}
		return p.TotalCost() <= NaivePlan(inst).TotalCost()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
