package plan

import (
	"fmt"
	"sync"
)

// Pool is a persistent, bounded worker pool for level-parallel plan
// execution. It replaces the per-round goroutine-per-query pattern: exactly
// `workers` goroutines are started once and live until Close, and each round
// the Executor hands them the dirty nodes of one DAG level at a time.
// Dispatch sends fixed-size task structs over a buffered channel and reuses
// one WaitGroup, so a steady-state Run performs no allocations.
type Pool struct {
	workers int
	tasks   chan poolTask
	done    sync.WaitGroup // per-Run barrier (Run is not reentrant)
	stopped sync.WaitGroup // worker exit barrier for Close
}

type poolTask struct {
	ids  []int32
	fn   func(id int32)
	done *sync.WaitGroup
}

// NewPool starts a pool of exactly `workers` goroutines (≥ 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("plan: pool needs ≥ 1 worker, got %d", workers))
	}
	p := &Pool{workers: workers, tasks: make(chan poolTask, workers)}
	p.stopped.Add(workers)
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

// Workers returns the pool's fixed worker count.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) work() {
	defer p.stopped.Done()
	for t := range p.tasks {
		for _, id := range t.ids {
			t.fn(id)
		}
		t.done.Done()
	}
}

// Run applies fn to every id, splitting the slice into one contiguous chunk
// per worker, and returns when all chunks finish. fn calls for distinct ids
// must be independent (the Executor guarantees this within one DAG level).
// Run must not be called concurrently with itself.
func (p *Pool) Run(ids []int32, fn func(id int32)) {
	if len(ids) == 0 {
		return
	}
	if len(ids) == 1 || p.workers == 1 {
		// Not worth a handoff; run inline on the caller's goroutine.
		for _, id := range ids {
			fn(id)
		}
		return
	}
	chunk := (len(ids) + p.workers - 1) / p.workers
	tasks := (len(ids) + chunk - 1) / chunk
	p.done.Add(tasks - 1)
	for lo := chunk; lo < len(ids); lo += chunk {
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		p.tasks <- poolTask{ids: ids[lo:hi], fn: fn, done: &p.done}
	}
	// The caller works the first chunk itself instead of idling.
	for _, id := range ids[:chunk] {
		fn(id)
	}
	p.done.Wait()
}

// Close shuts the workers down and waits for them to exit. The pool must
// not be used afterwards.
func (p *Pool) Close() {
	close(p.tasks)
	p.stopped.Wait()
}
