package plan

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a persistent, bounded worker group for parallel plan execution.
// A pool of size w provides w-way parallelism counting the caller: w−1
// helper goroutines are started once and live until Close, and the caller's
// goroutine always works alongside them as worker 0. Work is distributed
// dynamically — helpers and caller claim cost-balanced chunks from a shared
// atomic cursor — so a straggling chunk is stolen, not waited on.
//
// Three entry points share the helpers:
//
//   - Broadcast hands every worker (caller included) one call of fn with a
//     stable worker index in [0, Workers) — the primitive the Runner's
//     frontier executor builds on, and the hook for per-worker scratch.
//   - Run applies fn to each id of a worklist, claiming fixed-size chunks
//     off a shared cursor (the slab Executor's per-level scheduling).
//   - RunRange splits [0, n) into grain-sized half-open intervals claimed
//     the same way, for data-parallel loops such as leaf scoring.
//
// Dispatch sends fixed-size task structs over per-helper buffered channels
// and reuses pinned closures plus one WaitGroup, so a steady-state call
// performs no allocations. None of the entry points are reentrant or safe
// for concurrent use with each other; the engine serializes them within a
// round.
type Pool struct {
	workers int
	tasks   []chan poolTask // one per helper goroutine (workers 1..w−1)
	done    sync.WaitGroup  // per-call barrier
	stopped sync.WaitGroup  // helper exit barrier for Close
	closed  sync.Once

	// cursor is the shared claim point of Run/RunRange, padded so helpers
	// hammering it do not false-share the pool's cold fields.
	cursor paddedCounter

	// Pinned dispatch state (set before a Broadcast, read after the
	// channel-send happens-before edge) and pinned worker closures, so
	// steady-state calls allocate nothing.
	runIDs    []int32
	runFn     func(id int32)
	runChunk  int32
	rangeN    int
	rangeGrin int
	rangeFn   func(worker, lo, hi int)
	runWkr    func(worker int)
	rangeWkr  func(worker int)
}

// paddedCounter is an atomic counter alone on its cache line.
type paddedCounter struct {
	_ [64]byte
	v atomic.Int64
	_ [64]byte
}

type poolTask struct {
	fn   func(worker int)
	done *sync.WaitGroup
}

// minRunChunk is the smallest worklist chunk Run hands out: claiming work
// finer than this costs more cursor traffic than the kernels it covers.
const minRunChunk = 8

// chunksPerWorker over-partitions Run worklists so an unlucky worker can
// shed load to idle ones instead of serializing the tail.
const chunksPerWorker = 4

// NewPool starts a pool providing `workers`-way parallelism (≥ 1): the
// caller's goroutine plus workers−1 helpers.
func NewPool(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("plan: pool needs ≥ 1 worker, got %d", workers))
	}
	p := &Pool{workers: workers, tasks: make([]chan poolTask, workers-1)}
	p.runWkr = func(int) {
		ids, fn, chunk := p.runIDs, p.runFn, int64(p.runChunk)
		n := int64(len(ids))
		for {
			lo := p.cursor.v.Add(chunk) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for _, id := range ids[lo:hi] {
				fn(id)
			}
		}
	}
	p.rangeWkr = func(worker int) {
		n, grain, fn := int64(p.rangeN), int64(p.rangeGrin), p.rangeFn
		for {
			lo := p.cursor.v.Add(grain) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(worker, int(lo), int(hi))
		}
	}
	p.stopped.Add(workers - 1)
	for i := range p.tasks {
		ch := make(chan poolTask, 1)
		p.tasks[i] = ch
		go p.work(ch, i+1)
	}
	return p
}

// Workers returns the pool's parallelism (caller included).
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) work(ch chan poolTask, worker int) {
	defer p.stopped.Done()
	for t := range ch {
		t.fn(worker)
		t.done.Done()
	}
}

// Broadcast calls fn once on every worker — the caller as worker 0 and each
// helper with its fixed index — and returns when all calls finish. fn must
// claim actual work from shared state (e.g. an atomic cursor): worker
// indices name scratch regions, they do not partition work. Broadcast must
// not be called concurrently with itself, Run, or RunRange.
func (p *Pool) Broadcast(fn func(worker int)) {
	if p.workers == 1 {
		fn(0)
		return
	}
	p.done.Add(len(p.tasks))
	for _, ch := range p.tasks {
		ch <- poolTask{fn: fn, done: &p.done}
	}
	fn(0)
	p.done.Wait()
}

// Run applies fn to every id and returns when all calls finish. Workers
// claim contiguous fixed-size chunks from a shared cursor, so no worker
// idles while another holds a long tail, and short worklists (at most one
// chunk) run inline on the caller with no handoff at all — there are never
// degenerate empty or singleton chunks. fn calls for distinct ids must be
// independent.
func (p *Pool) Run(ids []int32, fn func(id int32)) {
	if len(ids) == 0 {
		return
	}
	chunk := (len(ids) + p.workers*chunksPerWorker - 1) / (p.workers * chunksPerWorker)
	if chunk < minRunChunk {
		chunk = minRunChunk
	}
	if p.workers == 1 || len(ids) <= chunk {
		for _, id := range ids {
			fn(id)
		}
		return
	}
	p.runIDs, p.runFn, p.runChunk = ids, fn, int32(chunk)
	p.cursor.v.Store(0)
	p.Broadcast(p.runWkr)
	p.runIDs, p.runFn = nil, nil
}

// RunRange applies fn to half-open sub-intervals covering [0, n), each at
// most grain wide, claimed from a shared cursor like Run's chunks. fn
// additionally receives the executing worker's index for per-worker
// scratch. Single-worker pools and ranges of at most grain elements run as
// one inline fn(0, 0, n) call on the caller.
func (p *Pool) RunRange(n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p.workers == 1 || n <= grain {
		fn(0, 0, n)
		return
	}
	p.rangeN, p.rangeGrin, p.rangeFn = n, grain, fn
	p.cursor.v.Store(0)
	p.Broadcast(p.rangeWkr)
	p.rangeFn = nil
}

// Close shuts the helpers down and waits for them to exit. Close is
// idempotent and safe to call from multiple goroutines; every call returns
// only once the helpers are gone. The pool must not be used afterwards.
func (p *Pool) Close() {
	p.closed.Do(func() {
		for _, ch := range p.tasks {
			close(ch)
		}
	})
	p.stopped.Wait()
}
