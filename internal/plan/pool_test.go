package plan_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"sharedwd/internal/plan"
)

// TestPoolRunCoverage pins Run's contract across the chunking regimes: every
// id is visited exactly once whether the worklist is shorter than one chunk
// (inline path — the degenerate-chunk fix), spans a few chunks, or
// over-partitions heavily.
func TestPoolRunCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, workers := range []int{1, 2, 3, 8} {
		pool := plan.NewPool(workers)
		for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 64, 1000} {
			ids := make([]int32, n)
			for i := range ids {
				ids[i] = int32(rng.Intn(1 << 20))
			}
			hits := make(map[int32]int, n)
			var mu sync.Mutex
			pool.Run(ids, func(id int32) {
				mu.Lock()
				hits[id]++
				mu.Unlock()
			})
			total := 0
			for _, c := range hits {
				total += c
			}
			if total != n {
				t.Fatalf("workers=%d n=%d: %d calls", workers, n, total)
			}
			for _, id := range ids {
				if hits[id] == 0 {
					t.Fatalf("workers=%d n=%d: id %d never visited", workers, n, id)
				}
			}
		}
		pool.Close()
	}
}

// TestPoolRunRange pins RunRange: the claimed intervals tile [0, n) exactly,
// each at most grain wide, and worker indices stay within [0, Workers).
func TestPoolRunRange(t *testing.T) {
	for _, workers := range []int{1, 4} {
		pool := plan.NewPool(workers)
		for _, n := range []int{0, 1, 5, 64, 777} {
			covered := make([]int32, n)
			pool.RunRange(n, 16, func(worker, lo, hi int) {
				if worker < 0 || worker >= pool.Workers() {
					t.Errorf("worker index %d out of range", worker)
				}
				if lo >= hi {
					t.Errorf("bad interval [%d, %d)", lo, hi)
				}
				if workers > 1 && hi-lo > 16 {
					t.Errorf("interval [%d, %d) wider than grain", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
		pool.Close()
	}
}

// TestPoolBroadcast pins the per-worker contract: fn runs exactly once per
// worker index, 0 through Workers−1, with the caller as worker 0.
func TestPoolBroadcast(t *testing.T) {
	for _, workers := range []int{1, 2, 6} {
		pool := plan.NewPool(workers)
		seen := make([]int32, workers)
		for round := 0; round < 3; round++ {
			pool.Broadcast(func(w int) {
				atomic.AddInt32(&seen[w], 1)
			})
		}
		for w, c := range seen {
			if c != 3 {
				t.Fatalf("workers=%d: worker %d ran %d times, want 3", workers, w, c)
			}
		}
		pool.Close()
	}
}

// TestPoolCloseIdempotent pins the hardening satellite: Close may be called
// repeatedly and concurrently, and every call returns only after the helper
// goroutines have exited.
func TestPoolCloseIdempotent(t *testing.T) {
	pool := plan.NewPool(4)
	pool.Run([]int32{1, 2, 3}, func(int32) {})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Close()
		}()
	}
	wg.Wait()
	pool.Close() // and once more, sequentially
}
