package plan

import (
	"fmt"

	"sharedwd/internal/bitset"
)

// FromSetCover builds the Theorem-2 reduction: given a set-cover instance
// (universe [0,n) and a collection of subsets whose union is the universe),
// it returns a shared-aggregation instance with one variable per universe
// element, one query per collection set, and one extra query for the
// universe itself. A minimum-cost A-plan for this instance yields a minimum
// set cover, which is what makes optimal shared aggregation NP-hard.
//
// All rates are 1, matching the theorem's deterministic setting.
func FromSetCover(n int, collection []bitset.Set) (*Instance, error) {
	if n <= 0 {
		return nil, fmt.Errorf("plan: empty universe")
	}
	union := bitset.New(n)
	queries := make([]Query, 0, len(collection)+1)
	seen := make(map[string]bool)
	for i, s := range collection {
		if s.Cap() != n {
			return nil, fmt.Errorf("plan: set %d capacity %d, want %d", i, s.Cap(), n)
		}
		if s.IsEmpty() {
			return nil, fmt.Errorf("plan: set %d is empty", i)
		}
		union.UnionInPlace(s)
		if seen[s.Key()] {
			continue // duplicate sets map to one A-equivalent query
		}
		seen[s.Key()] = true
		queries = append(queries, Query{Vars: s, Rate: 1})
	}
	full := bitset.New(n)
	for i := 0; i < n; i++ {
		full.Add(i)
	}
	if !union.Equal(full) {
		return nil, fmt.Errorf("plan: collection does not cover the universe")
	}
	if !seen[full.Key()] {
		queries = append(queries, Query{Vars: full, Rate: 1})
	}
	return NewInstance(n, queries)
}

// FromSetCoverClosed builds the Theorem-3 (inapproximability) variant: the
// collection queries are closed under sub-expressions — every prefix of each
// canonical expression e_S is itself a query — before the universe query is
// added. In a plan for this instance, all nodes except those computing the
// universe query have zero extra cost, so the plan's extra cost equals the
// cost of covering the universe, which inherits set cover's log-factor
// inapproximability.
func FromSetCoverClosed(n int, collection []bitset.Set) (*Instance, error) {
	closed := make([]bitset.Set, 0, len(collection)*2)
	seen := make(map[string]bool)
	for i, s := range collection {
		if s.Cap() != n {
			return nil, fmt.Errorf("plan: set %d capacity %d, want %d", i, s.Cap(), n)
		}
		// Prefixes of the canonical expression x_{i1} ⊕ x_{i2} ⊕ ... in
		// ascending variable order; prefixes of length ≥ 2 are queries
		// (length-1 prefixes are variables, excluded by convention).
		prefix := bitset.New(n)
		count := 0
		s.ForEach(func(v int) bool {
			prefix.Add(v)
			count++
			if count >= 2 && !seen[prefix.Key()] {
				seen[prefix.Key()] = true
				closed = append(closed, prefix.Clone())
			}
			return true
		})
		if count == 1 && !seen[s.Key()] { // singleton sets stay as queries
			seen[s.Key()] = true
			closed = append(closed, s.Clone())
		}
	}
	return FromSetCover(n, closed)
}

// CoverFromPlan extracts a set cover of the universe query from a completed
// plan for a FromSetCover instance, mirroring the cut argument in the proof
// of Theorem 2: walk down from the universe query's node and cut at nodes
// that compute collection queries (or leaves). The returned indices refer to
// the instance's queries; singletons are returned as negative(-1-var).
func CoverFromPlan(p *Plan) ([]bitset.Set, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Find the universe query (the one containing all variables).
	uq := -1
	for qi, q := range p.Inst.Queries {
		if q.Vars.Count() == p.Inst.NumVars {
			uq = qi
			break
		}
	}
	if uq == -1 {
		return nil, fmt.Errorf("plan: instance has no universe query")
	}
	queryNodes := make(map[int]bool)
	for qi, id := range p.QueryNode {
		if qi != uq {
			queryNodes[id] = true
		}
	}
	var cover []bitset.Set
	var walk func(id int)
	walk = func(id int) {
		n := p.Nodes[id]
		if queryNodes[id] || n.IsLeaf() {
			cover = append(cover, n.Vars)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	root := p.QueryNode[uq]
	n := p.Nodes[root]
	if n.IsLeaf() {
		return []bitset.Set{n.Vars}, nil
	}
	walk(n.Left)
	walk(n.Right)
	return cover, nil
}
