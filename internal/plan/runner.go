package plan

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"sharedwd/internal/topk"
)

// Runner executes a compiled Program over dense top-k entry slabs, round
// after round, with zero steady-state allocations. It is the flat,
// operator-specialized counterpart of Executor[*topk.List]: node values are
// fixed-stride segments of one contiguous []topk.Entry slab instead of
// heap-allocated lists, leaves are scored once per round into a caller-
// provided score slab instead of through a closure per node, and each
// instruction dispatches to one of two concrete merge kernels instead of a
// generic op callback.
//
// The three execution modes of the slab executor carry over:
//
//   - Run recomputes every instruction in the round's needed cone, marked
//     by epoch stamps (a stamp write per instruction, no clearing pass).
//   - RunIncremental additionally skips instructions whose output node is
//     still valid — i.e. no descendant leaf score changed since it was
//     computed (see Invalidate) — preserving the Section III-B dirty-cone
//     caching semantics at instruction granularity.
//   - SetPool runs the round's dirty cone on a worker pool through a
//     cost-aware scheduler (see DESIGN.md §11): the initial dependency-free
//     frontier is split into chunks balanced by Span — the instruction's
//     exact aggregation-op cost — and claimed from a shared cursor, and
//     every later instruction is released the moment its last argument
//     finishes, through per-instruction pending counters, instead of
//     waiting for a per-level barrier. Dirty cones cheaper than the
//     sequential cutoff run inline, so the cached steady state never pays
//     a rendezvous.
//
// A Runner is not safe for concurrent use (the pool only parallelizes work
// inside one Run call).
type Runner struct {
	prog *Program
	k    int // run capacity per node (slots+1 in the engine)

	ents []topk.Entry // value slab: NumNodes segments of stride k
	lens []int32      // entries held per node segment

	need  []uint64 // per-instruction epoch stamp: in this round's cone
	epoch uint64
	valid []bool  // per-node: value consistent with current leaf scores
	stack []int32 // invalidation scratch

	// Instruction-level consumer CSR: cons[consStart[i]:consStart[i+1]]
	// lists the instructions reading instruction i's output, one entry per
	// argument edge. Built once at NewRunner from Args/InstrOf.
	consStart []int32
	cons      []int32

	// Per-round frontier state (pool mode). dirty is the round's scheduled
	// instructions in topological (ascending) order; live stamps them for
	// the round; pending[i] counts i's not-yet-finished live argument
	// edges; ready holds the initial pending==0 frontier, cut into
	// cost-balanced chunks ending at chunkEnd; slots is the release ring
	// late instructions flow through (holding ins+1, 0 = empty).
	dirty     []int32
	live      []uint64
	pending   []atomic.Int32
	ready     []int32
	chunkEnd  []int32
	slots     []atomic.Int32
	lateTotal int64

	chunkCursor paddedCounter
	claimHead   paddedCounter
	pushTail    paddedCounter

	seqCutoff int

	pool   *Pool
	scores []float64 // pinned during a parallel pass
	parFn  func(worker int)
}

// DefaultSequentialCutoff is the dirty-cone cost (in Span units, i.e.
// aggregation ops) below which a pooled Runner executes inline: the cached
// steady state's dirty cones are far below it, so the 0-alloc fast path
// never pays worker rendezvous, while full recomputes on shared plans sit
// far above it.
const DefaultSequentialCutoff = 256

// NewRunner builds a reusable runner for the program with per-node run
// capacity k (the engine passes slots+1, matching its top-k lists).
func NewRunner(prog *Program, k int) *Runner {
	if k <= 0 {
		panic(fmt.Sprintf("plan: non-positive run capacity %d", k))
	}
	n := prog.NumInstr()
	r := &Runner{
		prog:      prog,
		k:         k,
		ents:      make([]topk.Entry, prog.NumNodes*k),
		lens:      make([]int32, prog.NumNodes),
		need:      make([]uint64, n),
		valid:     make([]bool, prog.NumNodes),
		dirty:     make([]int32, 0, n),
		live:      make([]uint64, n),
		pending:   make([]atomic.Int32, n),
		ready:     make([]int32, 0, n),
		chunkEnd:  make([]int32, 0, n),
		slots:     make([]atomic.Int32, n),
		seqCutoff: DefaultSequentialCutoff,
	}
	// Consumer CSR: one edge per materialized (non-leaf) argument. The
	// argument is always an earlier instruction's output, so InstrOf
	// resolves it directly.
	numVars := int32(prog.NumVars)
	r.consStart = make([]int32, n+1)
	for i := 0; i < n; i++ {
		for _, a := range prog.Args[prog.ArgStart[i]:prog.ArgStart[i+1]] {
			if a >= numVars {
				r.consStart[prog.InstrOf[a]+1]++
			}
		}
	}
	for i := 1; i <= n; i++ {
		r.consStart[i] += r.consStart[i-1]
	}
	r.cons = make([]int32, r.consStart[n])
	fill := make([]int32, n)
	copy(fill, r.consStart[:n])
	for i := 0; i < n; i++ {
		for _, a := range prog.Args[prog.ArgStart[i]:prog.ArgStart[i+1]] {
			if a >= numVars {
				p := prog.InstrOf[a]
				r.cons[fill[p]] = int32(i)
				fill[p]++
			}
		}
	}
	r.parFn = r.parallelWorker
	return r
}

// Program returns the compiled program the runner executes.
func (r *Runner) Program() *Program { return r.prog }

// SetPool attaches (or with nil detaches) a worker pool for cost-aware
// parallel execution of each round's dirty cone. Results are identical to
// sequential execution because each instruction still runs exactly once,
// after all its arguments, from the same inputs.
func (r *Runner) SetPool(p *Pool) { r.pool = p }

// SetSequentialCutoff overrides the dirty-cone cost (in Span units) below
// which a pooled runner executes inline. 0 forces every dirty cone through
// the parallel scheduler — useful in tests; the default is
// DefaultSequentialCutoff.
func (r *Runner) SetSequentialCutoff(spans int) { r.seqCutoff = spans }

// seg returns node id's slab segment (full capacity; r.lens[id] holds the
// live length).
func (r *Runner) seg(id int32) []topk.Entry {
	base := int(id) * r.k
	return r.ents[base : base+r.k]
}

// QueryRun returns query qi's result run from the last Run/RunIncremental
// call, in rank order. The returned slice views the slab and is overwritten
// by the next call; it is only meaningful if qi occurred in that round.
func (r *Runner) QueryRun(qi int) []topk.Entry {
	id := r.prog.QueryNode[qi]
	return r.seg(id)[:r.lens[id]]
}

// Invalidate marks leaf v's score changed: every ancestor's cached value is
// dropped so the next RunIncremental recomputes its instruction. The walk
// prunes at already-invalid nodes, which is sound because an invalid node's
// ancestors are invalid by construction (fused interior nodes keep their
// DAG edges, so validity propagates through chains).
func (r *Runner) Invalidate(v int) {
	r.valid[v] = false
	r.stack = append(r.stack[:0], int32(v))
	for len(r.stack) > 0 {
		nd := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		for _, p := range r.prog.Parents[r.prog.ParentStart[nd]:r.prog.ParentStart[nd+1]] {
			if r.valid[p] {
				r.valid[p] = false
				r.stack = append(r.stack, p)
			}
		}
	}
}

// InvalidateAll drops every cached value.
func (r *Runner) InvalidateAll() {
	for i := range r.valid {
		r.valid[i] = false
	}
}

// Run evaluates every instruction needed by the occurring queries (nil
// means all occur), recomputing the full cone. scores[v] is leaf v's value
// for the round (b̂_v·c_v in the engine); entries are emitted only for
// strictly positive scores. The returned count is the number of internal
// plan nodes materialized — identical to the memo-based Execute on the same
// occurrence vector.
func (r *Runner) Run(scores []float64, occurring []bool) (materialized int) {
	materialized, _ = r.run(scores, occurring, false)
	return materialized
}

// RunIncremental evaluates the occurring queries, reusing every cached
// instruction output still consistent with the leaf scores (see
// Invalidate). It returns how many internal plan nodes were recomputed and
// how many were served from cache; recomputed+cached equals the cone size
// Run would materialize. Fused chains cache as one unit, so the split can
// be coarser than the node-granular slab executor's — the sum invariant is
// what both guarantee.
func (r *Runner) RunIncremental(scores []float64, occurring []bool) (recomputed, cached int) {
	return r.run(scores, occurring, true)
}

func (r *Runner) run(scores []float64, occurring []bool, incremental bool) (recomputed, cached int) {
	if len(scores) < r.prog.NumVars {
		panic(fmt.Sprintf("plan: %d leaf scores for %d variables", len(scores), r.prog.NumVars))
	}
	r.epoch++
	prog := r.prog

	// Leaf-assigned queries are materialized straight from the score slab;
	// no instruction produces them.
	for _, id := range prog.LeafQueries {
		if s := scores[id]; s > 0 {
			r.seg(id)[0] = topk.Entry{ID: int(id), Score: s}
			r.lens[id] = 1
		} else {
			r.lens[id] = 0
		}
	}

	// Mark the needed cone top-down. Arguments' instructions precede their
	// consumers in the level-major order, so one descending sweep from the
	// highest needed instruction reaches every dependency.
	maxI := int32(-1)
	for qi, id := range prog.QueryNode {
		if occurring != nil && !occurring[qi] {
			continue
		}
		ins := prog.InstrOf[id]
		if ins < 0 {
			continue // leaf query, handled above
		}
		r.need[ins] = r.epoch
		if ins > maxI {
			maxI = ins
		}
	}
	numVars := int32(prog.NumVars)
	for ins := maxI; ins >= 0; ins-- {
		if r.need[ins] != r.epoch {
			continue
		}
		for _, a := range prog.Args[prog.ArgStart[ins]:prog.ArgStart[ins+1]] {
			if a >= numVars {
				r.need[prog.InstrOf[a]] = r.epoch
			}
		}
	}

	parallel := r.pool != nil
	if parallel {
		r.dirty = r.dirty[:0]
	}
	dirtySpan := 0

	// Schedule the cone bottom-up (ascending instruction index is a
	// topological order). Validity is settled here, single-threaded, so the
	// parallel pass only runs kernels.
	for ins := int32(0); ins <= maxI; ins++ {
		if r.need[ins] != r.epoch {
			continue
		}
		span := int(prog.Span[ins])
		if incremental && r.valid[prog.Out[ins]] {
			cached += span
			continue
		}
		recomputed += span
		for _, nd := range prog.NodeIDs[prog.NodeStart[ins]:prog.NodeStart[ins+1]] {
			r.valid[nd] = true
		}
		if parallel {
			r.dirty = append(r.dirty, ins)
			r.live[ins] = r.epoch
			dirtySpan += span
			continue
		}
		r.exec(ins, scores)
	}
	if parallel {
		if dirtySpan < r.seqCutoff || len(r.dirty) < 2 {
			// Sequential cutoff: a small dirty cone (the incremental-cache
			// steady state) is cheaper to run inline than to hand to the
			// pool. dirty is in topological order, so inline execution is
			// safe.
			for _, ins := range r.dirty {
				r.exec(ins, scores)
			}
		} else {
			r.runParallel(scores)
		}
	}
	return recomputed, cached
}

// runParallel executes the round's dirty cone on the pool: cost-balanced
// chunks of the dependency-free frontier first, then dependency-released
// instructions as they unlock.
func (r *Runner) runParallel(scores []float64) {
	prog := r.prog
	numVars := int32(prog.NumVars)

	// Reset the frontier from this round's cone: pending[i] counts i's
	// argument edges into live (scheduled) instructions; cached and leaf
	// arguments are already materialized and count for nothing.
	r.ready = r.ready[:0]
	readySpan := 0
	for _, ins := range r.dirty {
		n := int32(0)
		for _, a := range prog.Args[prog.ArgStart[ins]:prog.ArgStart[ins+1]] {
			if a >= numVars && r.live[prog.InstrOf[a]] == r.epoch {
				n++
			}
		}
		r.pending[ins].Store(n)
		if n == 0 {
			r.ready = append(r.ready, ins)
			readySpan += int(prog.Span[ins])
		}
	}

	// Cut the ready list into chunks balanced by Span — the exact
	// aggregation-op cost of each instruction — so one fat fold does not
	// serialize the frontier while count-equal chunks idle.
	r.chunkEnd = r.chunkEnd[:0]
	target := readySpan / (r.pool.Workers() * chunksPerWorker)
	if target < 1 {
		target = 1
	}
	acc := 0
	for i, ins := range r.ready {
		acc += int(prog.Span[ins])
		if acc >= target {
			r.chunkEnd = append(r.chunkEnd, int32(i+1))
			acc = 0
		}
	}
	if n := int32(len(r.ready)); len(r.chunkEnd) == 0 || r.chunkEnd[len(r.chunkEnd)-1] != n {
		r.chunkEnd = append(r.chunkEnd, n)
	}

	// Ring reset: every instruction that is not initially ready is pushed
	// exactly once when its last argument finishes, so the ring needs
	// late-many cleared slots and never wraps.
	late := len(r.dirty) - len(r.ready)
	for i := 0; i < late; i++ {
		r.slots[i].Store(0)
	}
	r.lateTotal = int64(late)
	r.chunkCursor.v.Store(0)
	r.claimHead.v.Store(0)
	r.pushTail.v.Store(0)

	r.scores = scores
	r.pool.Broadcast(r.parFn)
	r.scores = nil
}

// parallelWorker is one worker's share of a parallel round: claim
// cost-balanced frontier chunks while they last, then claim release-ring
// slots until every late instruction is spoken for.
func (r *Runner) parallelWorker(int) {
	scores := r.scores
	nChunks := int64(len(r.chunkEnd))
	for {
		c := r.chunkCursor.v.Add(1) - 1
		if c >= nChunks {
			break
		}
		lo := int32(0)
		if c > 0 {
			lo = r.chunkEnd[c-1]
		}
		for _, ins := range r.ready[lo:r.chunkEnd[c]] {
			r.execUnlock(ins, scores)
		}
	}
	for {
		idx := r.claimHead.v.Add(1) - 1
		if idx >= r.lateTotal {
			return
		}
		// The slot's instruction may not be unlocked yet; its producer is
		// running on another worker, so yield rather than burn the bus
		// (essential when GOMAXPROCS < pool size).
		for {
			if v := r.slots[idx].Load(); v != 0 {
				r.execUnlock(v-1, scores)
				break
			}
			runtime.Gosched()
		}
	}
}

// execUnlock runs one instruction's kernel, then releases any consumer
// whose last argument this was into the ring. The atomic decrement chain on
// pending plus the slot store publish the slab writes to whichever worker
// claims the consumer.
func (r *Runner) execUnlock(ins int32, scores []float64) {
	r.exec(ins, scores)
	for _, c := range r.cons[r.consStart[ins]:r.consStart[ins+1]] {
		if r.live[c] == r.epoch && r.pending[c].Add(-1) == 0 {
			idx := r.pushTail.v.Add(1) - 1
			r.slots[idx].Store(c + 1)
		}
	}
}

// exec runs one instruction's kernel.
func (r *Runner) exec(ins int32, scores []float64) {
	prog := r.prog
	out := prog.Out[ins]
	dst := r.seg(out)
	args := prog.Args[prog.ArgStart[ins]:prog.ArgStart[ins+1]]
	if prog.Kind[ins] == OpMerge2 {
		a, b := args[0], args[1]
		r.lens[out] = int32(topk.MergeRuns(dst, r.k, r.seg(a)[:r.lens[a]], r.seg(b)[:r.lens[b]]))
		return
	}
	numVars := int32(prog.NumVars)
	n := 0
	for _, a := range args {
		if a < numVars {
			if s := scores[a]; s > 0 {
				n = topk.PushRun(dst, n, r.k, topk.Entry{ID: int(a), Score: s})
			}
			continue
		}
		n = topk.FoldRun(dst, n, r.k, r.seg(a)[:r.lens[a]])
	}
	r.lens[out] = int32(n)
}
