package plan

import (
	"fmt"

	"sharedwd/internal/topk"
)

// Runner executes a compiled Program over dense top-k entry slabs, round
// after round, with zero steady-state allocations. It is the flat,
// operator-specialized counterpart of Executor[*topk.List]: node values are
// fixed-stride segments of one contiguous []topk.Entry slab instead of
// heap-allocated lists, leaves are scored once per round into a caller-
// provided score slab instead of through a closure per node, and each
// instruction dispatches to one of two concrete merge kernels instead of a
// generic op callback.
//
// The three execution modes of the slab executor carry over unchanged:
//
//   - Run recomputes every instruction in the round's needed cone, marked
//     by epoch stamps (a stamp write per instruction, no clearing pass).
//   - RunIncremental additionally skips instructions whose output node is
//     still valid — i.e. no descendant leaf score changed since it was
//     computed (see Invalidate) — preserving the Section III-B dirty-cone
//     caching semantics at instruction granularity.
//   - SetPool schedules each DAG level's dirty instructions on a worker
//     pool; levels run in sequence so every argument is ready before its
//     consumer, and instructions within a level write disjoint segments.
//
// A Runner is not safe for concurrent use (the pool only parallelizes work
// inside one Run call).
type Runner struct {
	prog *Program
	k    int // run capacity per node (slots+1 in the engine)

	ents []topk.Entry // value slab: NumNodes segments of stride k
	lens []int32      // entries held per node segment

	need  []uint64 // per-instruction epoch stamp: in this round's cone
	epoch uint64
	valid []bool  // per-node: value consistent with current leaf scores
	stack []int32 // invalidation scratch

	worklists [][]int32 // per-level dirty instructions (pool mode)

	pool   *Pool
	scores []float64 // pinned during a parallel pass
	runFn  func(ins int32)
}

// NewRunner builds a reusable runner for the program with per-node run
// capacity k (the engine passes slots+1, matching its top-k lists).
func NewRunner(prog *Program, k int) *Runner {
	if k <= 0 {
		panic(fmt.Sprintf("plan: non-positive run capacity %d", k))
	}
	r := &Runner{
		prog:      prog,
		k:         k,
		ents:      make([]topk.Entry, prog.NumNodes*k),
		lens:      make([]int32, prog.NumNodes),
		need:      make([]uint64, prog.NumInstr()),
		valid:     make([]bool, prog.NumNodes),
		worklists: make([][]int32, prog.MaxLevel+1),
	}
	r.runFn = func(ins int32) { r.exec(ins, r.scores) }
	return r
}

// Program returns the compiled program the runner executes.
func (r *Runner) Program() *Program { return r.prog }

// SetPool attaches (or with nil detaches) a worker pool for level-parallel
// execution. Results are identical to sequential execution because each
// instruction still runs exactly once from the same inputs.
func (r *Runner) SetPool(p *Pool) { r.pool = p }

// seg returns node id's slab segment (full capacity; r.lens[id] holds the
// live length).
func (r *Runner) seg(id int32) []topk.Entry {
	base := int(id) * r.k
	return r.ents[base : base+r.k]
}

// QueryRun returns query qi's result run from the last Run/RunIncremental
// call, in rank order. The returned slice views the slab and is overwritten
// by the next call; it is only meaningful if qi occurred in that round.
func (r *Runner) QueryRun(qi int) []topk.Entry {
	id := r.prog.QueryNode[qi]
	return r.seg(id)[:r.lens[id]]
}

// Invalidate marks leaf v's score changed: every ancestor's cached value is
// dropped so the next RunIncremental recomputes its instruction. The walk
// prunes at already-invalid nodes, which is sound because an invalid node's
// ancestors are invalid by construction (fused interior nodes keep their
// DAG edges, so validity propagates through chains).
func (r *Runner) Invalidate(v int) {
	r.valid[v] = false
	r.stack = append(r.stack[:0], int32(v))
	for len(r.stack) > 0 {
		nd := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		for _, p := range r.prog.Parents[r.prog.ParentStart[nd]:r.prog.ParentStart[nd+1]] {
			if r.valid[p] {
				r.valid[p] = false
				r.stack = append(r.stack, p)
			}
		}
	}
}

// InvalidateAll drops every cached value.
func (r *Runner) InvalidateAll() {
	for i := range r.valid {
		r.valid[i] = false
	}
}

// Run evaluates every instruction needed by the occurring queries (nil
// means all occur), recomputing the full cone. scores[v] is leaf v's value
// for the round (b̂_v·c_v in the engine); entries are emitted only for
// strictly positive scores. The returned count is the number of internal
// plan nodes materialized — identical to the memo-based Execute on the same
// occurrence vector.
func (r *Runner) Run(scores []float64, occurring []bool) (materialized int) {
	materialized, _ = r.run(scores, occurring, false)
	return materialized
}

// RunIncremental evaluates the occurring queries, reusing every cached
// instruction output still consistent with the leaf scores (see
// Invalidate). It returns how many internal plan nodes were recomputed and
// how many were served from cache; recomputed+cached equals the cone size
// Run would materialize. Fused chains cache as one unit, so the split can
// be coarser than the node-granular slab executor's — the sum invariant is
// what both guarantee.
func (r *Runner) RunIncremental(scores []float64, occurring []bool) (recomputed, cached int) {
	return r.run(scores, occurring, true)
}

func (r *Runner) run(scores []float64, occurring []bool, incremental bool) (recomputed, cached int) {
	if len(scores) < r.prog.NumVars {
		panic(fmt.Sprintf("plan: %d leaf scores for %d variables", len(scores), r.prog.NumVars))
	}
	r.epoch++
	prog := r.prog

	// Leaf-assigned queries are materialized straight from the score slab;
	// no instruction produces them.
	for _, id := range prog.LeafQueries {
		if s := scores[id]; s > 0 {
			r.seg(id)[0] = topk.Entry{ID: int(id), Score: s}
			r.lens[id] = 1
		} else {
			r.lens[id] = 0
		}
	}

	// Mark the needed cone top-down. Arguments' instructions precede their
	// consumers in the level-major order, so one descending sweep from the
	// highest needed instruction reaches every dependency.
	maxI := int32(-1)
	for qi, id := range prog.QueryNode {
		if occurring != nil && !occurring[qi] {
			continue
		}
		ins := prog.InstrOf[id]
		if ins < 0 {
			continue // leaf query, handled above
		}
		r.need[ins] = r.epoch
		if ins > maxI {
			maxI = ins
		}
	}
	numVars := int32(prog.NumVars)
	for ins := maxI; ins >= 0; ins-- {
		if r.need[ins] != r.epoch {
			continue
		}
		for _, a := range prog.Args[prog.ArgStart[ins]:prog.ArgStart[ins+1]] {
			if a >= numVars {
				r.need[prog.InstrOf[a]] = r.epoch
			}
		}
	}

	parallel := r.pool != nil
	if parallel {
		for l := range r.worklists {
			r.worklists[l] = r.worklists[l][:0]
		}
	}

	// Execute the cone bottom-up (ascending instruction index is a
	// topological order). Validity is settled at schedule time so the
	// parallel pass only runs kernels.
	for ins := int32(0); ins <= maxI; ins++ {
		if r.need[ins] != r.epoch {
			continue
		}
		span := int(prog.Span[ins])
		if incremental && r.valid[prog.Out[ins]] {
			cached += span
			continue
		}
		recomputed += span
		for _, nd := range prog.NodeIDs[prog.NodeStart[ins]:prog.NodeStart[ins+1]] {
			r.valid[nd] = true
		}
		if parallel {
			l := prog.Level[ins]
			r.worklists[l] = append(r.worklists[l], ins)
			continue
		}
		r.exec(ins, scores)
	}
	if parallel {
		r.scores = scores
		for _, wl := range r.worklists {
			r.pool.Run(wl, r.runFn)
		}
	}
	return recomputed, cached
}

// exec runs one instruction's kernel.
func (r *Runner) exec(ins int32, scores []float64) {
	prog := r.prog
	out := prog.Out[ins]
	dst := r.seg(out)
	args := prog.Args[prog.ArgStart[ins]:prog.ArgStart[ins+1]]
	if prog.Kind[ins] == OpMerge2 {
		a, b := args[0], args[1]
		r.lens[out] = int32(topk.MergeRuns(dst, r.k, r.seg(a)[:r.lens[a]], r.seg(b)[:r.lens[b]]))
		return
	}
	numVars := int32(prog.NumVars)
	n := 0
	for _, a := range args {
		if a < numVars {
			if s := scores[a]; s > 0 {
				n = topk.PushRun(dst, n, r.k, topk.Entry{ID: int(a), Score: s})
			}
			continue
		}
		n = topk.FoldRun(dst, n, r.k, r.seg(a)[:r.lens[a]])
	}
	r.lens[out] = int32(n)
}
