package plan

import (
	"encoding/json"
	"fmt"

	"sharedwd/internal/bitset"
)

// The paper's plans are built offline ("we try to find a single plan
// offline that works well on average") and executed online at every round.
// This file provides the wire format between the two halves: a compact JSON
// encoding of an instance plus its plan, with full structural validation on
// load so a corrupted or stale plan can never reach the executor.

type serialInstance struct {
	NumVars int           `json:"num_vars"`
	Queries []serialQuery `json:"queries"`
}

type serialQuery struct {
	Vars []int   `json:"vars"`
	Rate float64 `json:"rate"`
}

type serialPlan struct {
	Instance  serialInstance `json:"instance"`
	Nodes     []serialNode   `json:"nodes"` // internal nodes only, in ID order
	QueryNode []int          `json:"query_node"`
}

type serialNode struct {
	Left  int `json:"l"`
	Right int `json:"r"`
}

// MarshalJSON encodes the plan (with its instance) for offline storage.
func (p *Plan) MarshalJSON() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("plan: refusing to marshal invalid plan: %w", err)
	}
	s := serialPlan{
		Instance: serialInstance{
			NumVars: p.Inst.NumVars,
			Queries: make([]serialQuery, len(p.Inst.Queries)),
		},
		Nodes:     make([]serialNode, 0, p.TotalCost()),
		QueryNode: append([]int(nil), p.QueryNode...),
	}
	for i, q := range p.Inst.Queries {
		s.Instance.Queries[i] = serialQuery{Vars: q.Vars.Indices(), Rate: q.Rate}
	}
	for i := p.Inst.NumVars; i < len(p.Nodes); i++ {
		s.Nodes = append(s.Nodes, serialNode{Left: p.Nodes[i].Left, Right: p.Nodes[i].Right})
	}
	return json.Marshal(s)
}

// UnmarshalPlan decodes and fully validates a plan previously produced by
// MarshalJSON. Labels are recomputed from the structure (they are derived
// data), so a tampered encoding fails validation rather than executing
// incorrectly.
func UnmarshalPlan(data []byte) (*Plan, error) {
	var s serialPlan
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("plan: decoding: %w", err)
	}
	queries := make([]Query, len(s.Instance.Queries))
	for i, q := range s.Instance.Queries {
		for _, v := range q.Vars {
			if v < 0 || v >= s.Instance.NumVars {
				return nil, fmt.Errorf("plan: query %d references variable %d outside [0,%d)", i, v, s.Instance.NumVars)
			}
		}
		queries[i] = Query{Vars: bitset.FromIndices(s.Instance.NumVars, q.Vars...), Rate: q.Rate}
	}
	inst, err := NewInstance(s.Instance.NumVars, queries)
	if err != nil {
		return nil, err
	}
	if len(s.QueryNode) != len(queries) {
		return nil, fmt.Errorf("plan: %d query bindings for %d queries", len(s.QueryNode), len(queries))
	}
	p := NewPlan(inst)
	for i, n := range s.Nodes {
		id := inst.NumVars + i
		if n.Left < 0 || n.Left >= id || n.Right < 0 || n.Right >= id {
			return nil, fmt.Errorf("plan: node %d references invalid children (%d, %d)", id, n.Left, n.Right)
		}
		p.AddAggregate(n.Left, n.Right)
	}
	// Restore the recorded bindings (AddAggregate may have auto-bound, but
	// the stored assignment is authoritative), then validate everything.
	copy(p.QueryNode, s.QueryNode)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("plan: decoded plan invalid: %w", err)
	}
	return p, nil
}
