package plan

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMarshalRejectsInvalid(t *testing.T) {
	inst := MustInstance(3, []Query{q(3, 1, 0, 1)})
	p := NewPlan(inst) // incomplete
	if _, err := json.Marshal(p); err == nil {
		t.Fatal("marshaling an incomplete plan should fail")
	}
}

func TestRoundTripByHand(t *testing.T) {
	inst := MustInstance(4, []Query{q(4, 0.5, 0, 1, 2), q(4, 0.25, 0, 1, 3)})
	p := NewPlan(inst)
	shared := p.AddAggregate(0, 1)
	p.AddAggregate(shared, 2)
	p.AddAggregate(shared, 3)

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalCost() != p.TotalCost() {
		t.Fatalf("cost %d != %d", back.TotalCost(), p.TotalCost())
	}
	if back.ExpectedCost() != p.ExpectedCost() {
		t.Fatalf("expected cost %v != %v", back.ExpectedCost(), p.ExpectedCost())
	}
	for qi := range p.QueryNode {
		if back.QueryNode[qi] != p.QueryNode[qi] {
			t.Fatalf("query %d bound to %d, want %d", qi, back.QueryNode[qi], p.QueryNode[qi])
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	inst := MustInstance(3, []Query{q(3, 1, 0, 1, 2)})
	p := NewPlan(inst)
	p.Chain([]int{0, 1, 2})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(s string) string
		wantErr bool
	}{
		{"garbage", func(s string) string { return "{" }, true},
		{"bad child", func(s string) string { return strings.Replace(s, `{"l":0,"r":1}`, `{"l":0,"r":99}`, 1) }, true},
		{"bad variable", func(s string) string { return strings.Replace(s, `"vars":[0,1,2]`, `"vars":[0,1,7]`, 1) }, true},
		{"bad binding", func(s string) string { return strings.Replace(s, `"query_node":[4]`, `"query_node":[3]`, 1) }, true},
		{"intact", func(s string) string { return s }, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := UnmarshalPlan([]byte(c.mutate(string(data))))
			if (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr = %v\nencoding: %s", err, c.wantErr, data)
			}
		})
	}
}

// TestQuickRoundTripPreservesSemantics: serialize/deserialize preserves
// structure, costs, and execution results for heuristic-built plans.
func TestQuickRoundTripPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := RandomCoinFlipInstance(rng, 4+rng.Intn(10), 2+rng.Intn(4), rng.Float64())
		p := NaivePlan(inst) // any valid plan; heuristics tested elsewhere
		data, err := json.Marshal(p)
		if err != nil {
			return false
		}
		back, err := UnmarshalPlan(data)
		if err != nil {
			return false
		}
		if back.TotalCost() != p.TotalCost() || back.ExpectedCost() != p.ExpectedCost() {
			return false
		}
		vals := make([]int, inst.NumVars)
		for i := range vals {
			vals[i] = rng.Intn(100)
		}
		leaf := func(v int) int { return vals[v] }
		op := func(a, b int) int { return a + b } // naive plans are disjoint
		r1, _ := Execute(p, leaf, op, nil)
		r2, _ := Execute(back, leaf, op, nil)
		for qi := range r1 {
			if r1[qi] != r2[qi] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
