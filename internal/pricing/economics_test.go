package pricing

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// outcome runs a full auction: rank by effective bid, price, and return
// each advertiser's expected utility ctr·(value − price), where ctr =
// quality·slotFactor and value is the advertiser's true per-click value.
func outcome(rule Rule, bidders []Ranked, values []float64, d []float64) map[int]float64 {
	ranked := append([]Ranked(nil), bidders...)
	sort.SliceStable(ranked, func(a, b int) bool {
		ea, eb := ranked[a].effective(), ranked[b].effective()
		if ea != eb {
			return ea > eb
		}
		return ranked[a].ID < ranked[b].ID
	})
	prices := Prices(rule, ranked, d)
	util := make(map[int]float64, len(bidders))
	for _, r := range bidders {
		util[r.ID] = 0
	}
	for j, p := range prices {
		r := ranked[j]
		util[r.ID] = r.Quality * d[j] * (values[r.ID] - p)
	}
	return util
}

func randomMarket(rng *rand.Rand) ([]Ranked, []float64, []float64) {
	n := 2 + rng.Intn(6)
	bidders := make([]Ranked, n)
	values := make([]float64, n)
	for i := range bidders {
		values[i] = 1 + rng.Float64()*9
		bidders[i] = Ranked{ID: i, Bid: values[i], Quality: 0.3 + rng.Float64()}
	}
	k := 1 + rng.Intn(3)
	d := make([]float64, k)
	v := 0.5
	for j := range d {
		d[j] = v
		v *= 0.3 + 0.5*rng.Float64()
	}
	return bidders, values, d
}

// TestQuickVCGTruthful: under laddered VCG, no advertiser can increase his
// expected utility by misreporting his per-click value — the property the
// paper cites VCG pricing for.
func TestQuickVCGTruthful(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bidders, values, d := randomMarket(rng)
		truthful := outcome(VCG, bidders, values, d)
		for i := range bidders {
			for trial := 0; trial < 6; trial++ {
				dev := append([]Ranked(nil), bidders...)
				dev[i].Bid = rng.Float64() * 12 // arbitrary misreport
				u := outcome(VCG, dev, values, d)
				if u[i] > truthful[i]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestGSPNotTruthful documents the contrast: under GSP a bidder can gain
// by shading his bid (Edelman–Ostrovsky–Schwarz's classic example).
func TestGSPNotTruthful(t *testing.T) {
	// Three bidders valuing a click at 10, 4, 2; two slots with d = .2, .18.
	values := []float64{10, 4, 2}
	bidders := []Ranked{
		{ID: 0, Bid: 10, Quality: 1},
		{ID: 1, Bid: 4, Quality: 1},
		{ID: 2, Bid: 2, Quality: 1},
	}
	d := []float64{0.2, 0.18}
	truthful := outcome(GSP, bidders, values, d)
	// Bidder 0 truthful: wins slot 0 at price 4 → u = .2·(10−4) = 1.2.
	// Shading to 3: slot 1 at price 2 → u = .18·(10−2) = 1.44 > 1.2.
	shaded := append([]Ranked(nil), bidders...)
	shaded[0].Bid = 3
	dev := outcome(GSP, shaded, values, d)
	if !(dev[0] > truthful[0]) {
		t.Fatalf("GSP deviation utility %v should beat truthful %v", dev[0], truthful[0])
	}
}

// TestQuickVCGLocallyEnvyFree: under truthful bidding, no VCG winner would
// rather have an adjacent slot at that slot's per-click price — the local
// envy-freeness the paper mentions. Stated, as in
// Edelman–Ostrovsky–Schwarz, for homogeneous quality: with heterogeneous
// quality a slot's per-click price is scaled to its *occupant's* quality,
// so cross-bidder price comparisons are not meaningful.
func TestQuickVCGLocallyEnvyFree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bidders, values, d := randomMarket(rng)
		for i := range bidders {
			bidders[i].Quality = 1
		}
		ranked := append([]Ranked(nil), bidders...)
		sort.SliceStable(ranked, func(a, b int) bool {
			ea, eb := ranked[a].effective(), ranked[b].effective()
			if ea != eb {
				return ea > eb
			}
			return ranked[a].ID < ranked[b].ID
		})
		prices := Prices(VCG, ranked, d)
		for j := range prices {
			r := ranked[j]
			own := r.Quality * d[j] * (values[r.ID] - prices[j])
			for _, jj := range []int{j - 1, j + 1} {
				if jj < 0 || jj >= len(prices) {
					continue
				}
				other := r.Quality * d[jj] * (values[r.ID] - prices[jj])
				if other > own+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
