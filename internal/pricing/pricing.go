// Package pricing implements the per-click pricing rules the paper cites as
// consumers of winner determination: first-price, generalized second price
// (GSP, as used by Google and Yahoo!), and the laddered VCG prices of
// Aggarwal–Goel–Motwani for separable position auctions.
//
// All rules run *after* winner determination: they take the advertisers
// ranked by effective bid b_i·c_i and the descending slot factors d_j, and
// produce a per-click price for each filled slot. Every rule maintains the
// universal constraint that an advertiser is never charged more than his
// bid.
package pricing

import (
	"fmt"
)

// Ranked is one advertiser in effective-bid order (rank 0 = best). Bid is
// the stated (possibly throttled) per-click bid b_i; Quality is c_i.
type Ranked struct {
	ID      int
	Bid     float64
	Quality float64
}

func (r Ranked) effective() float64 { return r.Bid * r.Quality }

// Rule identifies a pricing rule.
type Rule int

// The supported pricing rules.
const (
	FirstPrice Rule = iota
	GSP
	VCG
)

// String returns the rule's conventional name.
func (r Rule) String() string {
	switch r {
	case FirstPrice:
		return "first-price"
	case GSP:
		return "GSP"
	case VCG:
		return "VCG"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// Prices computes the per-click price for each of the first k ranked
// advertisers under the rule. ranked must be sorted by descending effective
// bid and include, if available, at least one advertiser beyond the last
// slot (the price-setter); slotFactors must be descending and positive.
// The result has min(k, len(ranked)) entries, price[j] for slot j's winner.
func Prices(rule Rule, ranked []Ranked, slotFactors []float64) []float64 {
	return AppendPrices(nil, rule, ranked, slotFactors)
}

// AppendPrices is Prices writing into dst (appending after its length), for
// hot paths that reuse a price buffer across auctions. Steady-state calls
// with sufficient capacity perform no allocations for up to 16 slots.
func AppendPrices(dst []float64, rule Rule, ranked []Ranked, slotFactors []float64) []float64 {
	k := len(slotFactors)
	if k == 0 {
		return dst
	}
	for j := 1; j < k; j++ {
		if slotFactors[j] > slotFactors[j-1] {
			panic(fmt.Sprintf("pricing: slot factors not descending: %v", slotFactors))
		}
	}
	winners := k
	if len(ranked) < winners {
		winners = len(ranked)
	}
	base := len(dst)
	for j := 0; j < winners; j++ {
		dst = append(dst, 0)
	}
	prices := dst[base:]
	switch rule {
	case FirstPrice:
		for j := 0; j < winners; j++ {
			prices[j] = ranked[j].Bid
		}
	case GSP:
		// Winner j pays the minimum bid that keeps his position: the next
		// advertiser's effective bid scaled by his own quality.
		for j := 0; j < winners; j++ {
			if j+1 < len(ranked) {
				prices[j] = ranked[j+1].effective() / ranked[j].Quality
			} // else: no competitor below → reserve price 0
		}
	case VCG:
		// Laddered pricing (Aggarwal–Goel–Motwani): per-click prices built
		// bottom-up so each winner pays exactly the externality he imposes:
		//   p_k·c_k·d_k = b_{k+1}·c_{k+1}·d_k
		//   p_j·c_j·d_j = p_{j+1}·c_{j+1}·d_{j+1} + b_{j+1}·c_{j+1}·(d_j − d_{j+1})
		// expected[j] is p_j·c_j·d_j, the winner's total expected payment;
		// auctions of ≤ 16 slots use a stack buffer to stay allocation-free.
		var expBuf [16]float64
		var expected []float64
		if winners > len(expBuf) {
			expected = make([]float64, winners)
		} else {
			expected = expBuf[:winners]
		}
		for j := winners - 1; j >= 0; j-- {
			next := 0.0
			if j+1 < len(ranked) {
				dNext := 0.0
				if j+1 < winners {
					dNext = slotFactors[j+1]
					next = expected[j+1] + ranked[j+1].effective()*(slotFactors[j]-dNext)
				} else {
					// Losing advertiser j+1 would take the whole slot.
					next = ranked[j+1].effective() * slotFactors[j]
				}
			}
			expected[j] = next
			if slotFactors[j] > 0 && ranked[j].Quality > 0 {
				prices[j] = next / (ranked[j].Quality * slotFactors[j])
			}
		}
	default:
		panic(fmt.Sprintf("pricing: unknown rule %d", rule))
	}
	// Universal constraint: never charge above the bid. For GSP/VCG with a
	// correctly sorted ranking this is automatic; clamping also guards the
	// first-price path against caller error.
	for j := range prices {
		if prices[j] > ranked[j].Bid {
			prices[j] = ranked[j].Bid
		}
		if prices[j] < 0 {
			prices[j] = 0
		}
	}
	return dst
}

// FilterReserve returns the prefix-preserving sub-ranking of advertisers
// whose bids meet the reserve price — the participants of an auction with
// a reserve. The input must already be sorted by effective bid.
func FilterReserve(ranked []Ranked, reserve float64) []Ranked {
	if reserve <= 0 {
		return ranked
	}
	return AppendFilterReserve(make([]Ranked, 0, len(ranked)), ranked, reserve)
}

// AppendFilterReserve is FilterReserve appending into dst, for callers that
// reuse a participants buffer across auctions.
func AppendFilterReserve(dst, ranked []Ranked, reserve float64) []Ranked {
	for _, r := range ranked {
		if r.Bid >= reserve {
			dst = append(dst, r)
		}
	}
	return dst
}

// PricesWithReserve prices the winners of an auction with a per-click
// reserve: sub-reserve bidders do not participate (and in particular do
// not set prices), every winner pays at least the reserve, and no winner
// ever pays above his bid. The returned prices align with
// FilterReserve(ranked, reserve).
func PricesWithReserve(rule Rule, ranked []Ranked, slotFactors []float64, reserve float64) ([]Ranked, []float64) {
	return AppendPricesWithReserve(nil, nil, rule, ranked, slotFactors, reserve)
}

// AppendPricesWithReserve is PricesWithReserve appending participants and
// prices into caller-owned buffers (appending after their lengths; the
// returned slices are the appended portions, which for length-0 buffers are
// the grown buffers themselves). When reserve ≤ 0 the returned participants
// slice is `ranked` itself and dstParts is untouched, so the zero-reserve
// hot path copies nothing.
func AppendPricesWithReserve(dstParts []Ranked, dstPrices []float64, rule Rule, ranked []Ranked, slotFactors []float64, reserve float64) ([]Ranked, []float64) {
	participants := ranked
	if reserve > 0 {
		base := len(dstParts)
		dstParts = AppendFilterReserve(dstParts, ranked, reserve)
		participants = dstParts[base:]
	}
	base := len(dstPrices)
	dstPrices = AppendPrices(dstPrices, rule, participants, slotFactors)
	prices := dstPrices[base:]
	for j := range prices {
		if prices[j] < reserve {
			prices[j] = reserve
		}
		if prices[j] > participants[j].Bid {
			prices[j] = participants[j].Bid
		}
	}
	return participants, prices
}
