package pricing

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func rankedFixture() []Ranked {
	// Effective bids: 12, 9.9, 1.3 (the Figures 1–3 advertisers).
	return []Ranked{
		{ID: 0, Bid: 10, Quality: 1.2},
		{ID: 1, Bid: 9, Quality: 1.1},
		{ID: 2, Bid: 1, Quality: 1.3},
	}
}

func TestFirstPrice(t *testing.T) {
	p := Prices(FirstPrice, rankedFixture(), []float64{0.3, 0.2})
	if p[0] != 10 || p[1] != 9 {
		t.Fatalf("first-price = %v", p)
	}
}

func TestGSPByHand(t *testing.T) {
	p := Prices(GSP, rankedFixture(), []float64{0.3, 0.2})
	// Slot 0: next effective 9.9 / own quality 1.2 = 8.25.
	// Slot 1: next effective 1.3 / 1.1 ≈ 1.1818.
	if math.Abs(p[0]-8.25) > 1e-9 {
		t.Fatalf("GSP slot0 = %v, want 8.25", p[0])
	}
	if math.Abs(p[1]-1.3/1.1) > 1e-9 {
		t.Fatalf("GSP slot1 = %v, want %v", p[1], 1.3/1.1)
	}
}

func TestGSPNoCompetitorBelow(t *testing.T) {
	p := Prices(GSP, rankedFixture()[:1], []float64{0.3, 0.2})
	if len(p) != 1 || p[0] != 0 {
		t.Fatalf("lone bidder should pay reserve 0, got %v", p)
	}
}

func TestVCGByHand(t *testing.T) {
	// Classic two-slot example with quality 1: bids 10, 9, 1; d = 0.3, 0.2.
	r := []Ranked{{0, 10, 1}, {1, 9, 1}, {2, 1, 1}}
	p := Prices(VCG, r, []float64{0.3, 0.2})
	// Slot 1: p1·0.2 = b2·0.2 → p1 = 1.
	// Slot 0: p0·0.3 = p1·0.2 + b1·(0.3−0.2) = 0.2 + 0.9 → p0 = 1.1/0.3.
	if math.Abs(p[1]-1) > 1e-9 {
		t.Fatalf("VCG slot1 = %v, want 1", p[1])
	}
	if math.Abs(p[0]-1.1/0.3) > 1e-9 {
		t.Fatalf("VCG slot0 = %v, want %v", p[0], 1.1/0.3)
	}
}

func TestVCGEqualsSecondPriceSingleSlot(t *testing.T) {
	// One slot: VCG and GSP both degenerate to second price.
	r := []Ranked{{0, 10, 1}, {1, 7, 1}}
	d := []float64{0.4}
	vcg := Prices(VCG, r, d)
	gsp := Prices(GSP, r, d)
	if math.Abs(vcg[0]-7) > 1e-9 || math.Abs(gsp[0]-7) > 1e-9 {
		t.Fatalf("single-slot: vcg=%v gsp=%v, want 7", vcg, gsp)
	}
}

func TestEmptySlotsAndRanked(t *testing.T) {
	if p := Prices(GSP, rankedFixture(), nil); p != nil {
		t.Fatalf("no slots should price nothing, got %v", p)
	}
	if p := Prices(VCG, nil, []float64{0.3}); len(p) != 0 {
		t.Fatalf("no advertisers should price nothing, got %v", p)
	}
}

func TestUnsortedFactorsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Prices(GSP, rankedFixture(), []float64{0.2, 0.3})
}

func TestRuleString(t *testing.T) {
	for r, want := range map[Rule]string{FirstPrice: "first-price", GSP: "GSP", VCG: "VCG"} {
		if r.String() != want {
			t.Fatalf("String(%d) = %q", r, r.String())
		}
	}
}

func randomRanked(rng *rand.Rand) ([]Ranked, []float64) {
	n := 1 + rng.Intn(10)
	r := make([]Ranked, n)
	for i := range r {
		r[i] = Ranked{ID: i, Bid: rng.Float64() * 10, Quality: 0.2 + rng.Float64()}
	}
	sort.Slice(r, func(a, b int) bool { return r[a].effective() > r[b].effective() })
	k := 1 + rng.Intn(4)
	d := make([]float64, k)
	v := 0.5
	for j := range d {
		d[j] = v
		v *= 0.4 + 0.5*rng.Float64()
	}
	return r, d
}

// TestQuickPriceNeverExceedsBid: the universal pricing constraint, for every
// rule on random instances.
func TestQuickPriceNeverExceedsBid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, d := randomRanked(rng)
		for _, rule := range []Rule{FirstPrice, GSP, VCG} {
			for j, p := range Prices(rule, r, d) {
				if p > r[j].Bid+1e-9 || p < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVCGBelowGSP: with truthful bids, each winner's expected VCG
// payment is at most his GSP payment (Edelman–Ostrovsky–Schwarz).
func TestQuickVCGBelowGSP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, d := randomRanked(rng)
		gsp := Prices(GSP, r, d)
		vcg := Prices(VCG, r, d)
		for j := range vcg {
			if vcg[j] > gsp[j]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterReserve(t *testing.T) {
	r := rankedFixture() // bids 10, 9, 1
	if got := FilterReserve(r, 5); len(got) != 2 {
		t.Fatalf("participants = %v", got)
	}
	if got := FilterReserve(r, 0); len(got) != 3 {
		t.Fatal("zero reserve should keep everyone")
	}
	if got := FilterReserve(r, 20); len(got) != 0 {
		t.Fatalf("unattainable reserve should keep no one, got %v", got)
	}
}

func TestPricesWithReserveByHand(t *testing.T) {
	r := rankedFixture() // effective 12, 9.9, 1.3
	d := []float64{0.3, 0.2}
	// Reserve 5 removes advertiser 2: slot 0 pays GSP 8.25; slot 1, with
	// no competitor below, pays the reserve instead of 0.
	participants, prices := PricesWithReserve(GSP, r, d, 5)
	if len(participants) != 2 || len(prices) != 2 {
		t.Fatalf("participants/prices = %v/%v", participants, prices)
	}
	if math.Abs(prices[0]-8.25) > 1e-9 {
		t.Fatalf("slot0 = %v, want 8.25", prices[0])
	}
	if prices[1] != 5 {
		t.Fatalf("slot1 = %v, want reserve 5", prices[1])
	}
}

// TestQuickReserveInvariants: with any reserve, every price is in
// [reserve, bid] and every winner's bid meets the reserve.
func TestQuickReserveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, d := randomRanked(rng)
		reserve := rng.Float64() * 8
		for _, rule := range []Rule{FirstPrice, GSP, VCG} {
			participants, prices := PricesWithReserve(rule, r, d, reserve)
			for j, p := range prices {
				if participants[j].Bid < reserve {
					return false
				}
				if p < reserve-1e-9 || p > participants[j].Bid+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVCGIsExternality: total VCG payments equal the welfare loss the
// winners impose on others — checked by recomputing the optimal assignment
// value without each winner (small instances, exhaustive welfare).
func TestQuickVCGIsExternality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		r := make([]Ranked, n)
		for i := range r {
			r[i] = Ranked{ID: i, Bid: float64(1 + rng.Intn(10)), Quality: 1}
		}
		sort.Slice(r, func(a, b int) bool {
			if r[a].effective() != r[b].effective() {
				return r[a].effective() > r[b].effective()
			}
			return r[a].ID < r[b].ID
		})
		k := 1 + rng.Intn(3)
		d := make([]float64, k)
		v := 0.5
		for j := range d {
			d[j] = v
			v *= 0.5
		}
		prices := Prices(VCG, r, d)
		welfare := func(rs []Ranked) float64 {
			total := 0.0
			for j := 0; j < len(d) && j < len(rs); j++ {
				total += rs[j].effective() * d[j]
			}
			return total
		}
		for j := range prices {
			// Externality of winner j: others' welfare without him minus
			// others' welfare with him.
			without := append(append([]Ranked{}, r[:j]...), r[j+1:]...)
			othersWith := welfare(r) - r[j].effective()*d[j]
			ext := welfare(without) - othersWith
			if math.Abs(prices[j]*r[j].Quality*d[j]-ext) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
