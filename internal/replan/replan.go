// Package replan keeps a serving engine's shared aggregation plan matched
// to the traffic it actually sees. The Section II-D heuristic optimizes a
// plan for the *expected* materialization cost under per-query arrival
// rates, but the serving stack builds that plan once, from the workload's
// static rates; under traffic drift the compiled plan silently decays
// toward the independent-scan cost sharing is supposed to beat.
//
// A Planner closes that loop online, in three pieces:
//
//   - a rate Tracker: exponentially-decayed per-phrase occurrence counters,
//     updated once per round from the round's occurrence vector, estimating
//     the arrival rates of the recent past;
//   - a drift trigger: on a fixed cadence (and outside a post-swap
//     hysteresis window) the observed rates are compared against the rates
//     the live plan was built for, via a per-phrase max-ratio test and a
//     mean Bernoulli relative-entropy test — either exceeding its threshold
//     fires a rebuild;
//   - a background builder: a single goroutine that re-poses the planning
//     instance under the observed rates and runs the full fragment +
//     greedy-completion heuristic plus flat compilation
//     (sharedagg.BuildCompiledWithRates), publishing the finished Build
//     through an atomic pointer.
//
// The round loop polls for a finished Build at each round boundary (one
// atomic load) and installs it with core.Engine.InstallPlan — an O(plan)
// pointer swap plus fresh executor state, so admission never pauses and the
// incremental dirty-cone cache starts a clean epoch. Because every complete
// plan over the same queries computes identical top-k results (Lemma 1:
// A-equivalence is variable-set equality), a mid-stream swap changes only
// the cost of winner determination, never the winners — the equivalence
// property the tests pin down.
//
// Thread safety: Observe, Stats, ObservedRates*, and Close must be called
// from one goroutine (the round loop that owns the engine). Only the
// builder goroutine runs concurrently, and it communicates exclusively
// through the request channel and the atomic Build pointer.
package replan

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
)

// Config parameterizes the online replanner. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Alpha is the exponential-decay weight per round of the rate tracker:
	// rate ← (1−Alpha)·rate + Alpha·occurred. Smaller values average over a
	// longer window (the estimate's half-life is ≈ ln 2 / Alpha rounds).
	Alpha float64
	// WarmupRounds is how many rounds must be observed before the first
	// drift check, so the decayed estimate has converged away from its
	// prior (the planned rates) before it can trigger a rebuild.
	WarmupRounds int
	// CheckEvery is the drift-check cadence in rounds.
	CheckEvery int
	// MaxRatio fires a rebuild when some phrase's observed/planned rate
	// ratio (either direction, both sides floored at RateFloor) exceeds it.
	// +Inf disables the ratio trigger.
	MaxRatio float64
	// MinKL fires a rebuild when the mean per-phrase Bernoulli relative
	// entropy KL(observed ‖ planned), in nats, exceeds it. +Inf disables
	// the entropy trigger.
	MinKL float64
	// CooldownRounds is the hysteresis window: after a rebuilt plan is
	// delivered, no new build triggers for this many rounds, so a rate
	// estimate still converging toward the new baseline cannot thrash the
	// builder.
	CooldownRounds int
	// RateFloor clamps both sides of the ratio and entropy computations
	// away from 0 and 1, keeping never-seen and always-on phrases from
	// producing infinite drift.
	RateFloor float64
}

// DefaultConfig returns a conservative replanning configuration: a ~35
// round estimate half-life, drift checks every 50 rounds after a 200 round
// warmup, a 3× per-phrase ratio or 0.15 nat mean-divergence trigger, and a
// 400 round post-swap cooldown.
func DefaultConfig() Config {
	return Config{
		Alpha:          0.02,
		WarmupRounds:   200,
		CheckEvery:     50,
		MaxRatio:       3,
		MinKL:          0.15,
		CooldownRounds: 400,
		RateFloor:      0.01,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("replan: alpha %v outside (0,1]", c.Alpha)
	}
	if c.WarmupRounds < 0 || c.CooldownRounds < 0 {
		return fmt.Errorf("replan: negative warmup %d or cooldown %d", c.WarmupRounds, c.CooldownRounds)
	}
	if c.CheckEvery < 1 {
		return fmt.Errorf("replan: non-positive check cadence %d", c.CheckEvery)
	}
	if c.MaxRatio <= 1 {
		return fmt.Errorf("replan: max-ratio trigger %v must exceed 1", c.MaxRatio)
	}
	if c.MinKL <= 0 {
		return fmt.Errorf("replan: non-positive divergence trigger %v", c.MinKL)
	}
	if c.RateFloor <= 0 || c.RateFloor >= 0.5 {
		return fmt.Errorf("replan: rate floor %v outside (0, 0.5)", c.RateFloor)
	}
	return nil
}

// Tracker estimates per-phrase arrival rates with exponentially-decayed
// occurrence counters. It is initialized from the rates the live plan was
// built for, so the estimate starts at the prior and decays toward observed
// traffic. Not safe for concurrent use.
type Tracker struct {
	alpha  float64
	rates  []float64
	rounds int
}

// NewTracker builds a tracker seeded with the given prior rates.
func NewTracker(prior []float64, alpha float64) *Tracker {
	return &Tracker{alpha: alpha, rates: append([]float64(nil), prior...)}
}

// Observe folds one round's occurrence vector into the estimate.
func (t *Tracker) Observe(occ []bool) {
	if len(occ) != len(t.rates) {
		panic(fmt.Sprintf("replan: %d occurrence flags for %d phrases", len(occ), len(t.rates)))
	}
	for q, o := range occ {
		x := 0.0
		if o {
			x = 1
		}
		t.rates[q] += t.alpha * (x - t.rates[q])
	}
	t.rounds++
}

// Rounds returns how many rounds have been observed.
func (t *Tracker) Rounds() int { return t.rounds }

// Rates returns a copy of the current estimate.
func (t *Tracker) Rates() []float64 { return append([]float64(nil), t.rates...) }

// RatesInto copies the current estimate into dst (grown if needed) and
// returns it, so steady-state callers avoid allocating.
func (t *Tracker) RatesInto(dst []float64) []float64 {
	if cap(dst) < len(t.rates) {
		dst = make([]float64, len(t.rates))
	}
	dst = dst[:len(t.rates)]
	copy(dst, t.rates)
	return dst
}

// Drift quantifies how far observed rates have moved from the rates the
// live plan was optimized for. maxRatio is the largest per-phrase ratio
// max(obs/planned, planned/obs) with both sides floored at floor; kl is the
// mean per-phrase Bernoulli relative entropy KL(observed ‖ planned) in
// nats, with both probabilities clamped into [floor, 1−floor].
func Drift(planned, observed []float64, floor float64) (maxRatio, kl float64) {
	if len(planned) != len(observed) {
		panic(fmt.Sprintf("replan: %d planned rates vs %d observed", len(planned), len(observed)))
	}
	if len(planned) == 0 {
		return 1, 0
	}
	maxRatio = 1
	for q := range planned {
		p := clampRate(planned[q], floor)
		o := clampRate(observed[q], floor)
		if r := o / p; r > maxRatio {
			maxRatio = r
		}
		if r := p / o; r > maxRatio {
			maxRatio = r
		}
		kl += o*math.Log(o/p) + (1-o)*math.Log((1-o)/(1-p))
	}
	kl /= float64(len(planned))
	return maxRatio, kl
}

func clampRate(r, floor float64) float64 {
	if r < floor {
		return floor
	}
	if r > 1-floor {
		return 1 - floor
	}
	return r
}

// Build is one finished background rebuild: the re-posed instance, the
// heuristic's plan, its flat compilation, and the observed rates it was
// optimized for. Install it with core.Engine.InstallPlan at a round
// boundary.
type Build struct {
	Inst  *plan.Instance
	Plan  *plan.Plan
	Prog  *plan.Program
	Rates []float64
	// Seq numbers builds from 1 in trigger order.
	Seq int
	// BuildTime is how long the background heuristic + compilation took.
	BuildTime time.Duration
}

// Stats counts the planner's lifetime activity. All fields are maintained
// by the Observe goroutine; read them from the same goroutine.
type Stats struct {
	// Rounds observed and drift Checks run.
	Rounds, Checks int
	// Builds started in the background; Delivered of those handed to the
	// caller for installation; Failed rebuilds (instance re-posing or plan
	// validation errors — none are expected on a well-formed universe).
	Builds, Delivered, Failed int
	// LastMaxRatio and LastKL are the drift measures at the most recent
	// check.
	LastMaxRatio, LastKL float64
}

type buildReq struct {
	base  *plan.Instance
	rates []float64
	seq   int
}

// Planner ties the tracker, the drift trigger, and the background builder
// together for one engine's round loop. See the package comment for the
// threading contract.
type Planner struct {
	cfg     Config
	tracker *Tracker
	// base is the instance the live plan answers; planned its rates.
	base    *plan.Instance
	planned []float64

	sinceCheck int
	cooldown   int
	stats      Stats
	seq        int

	building  atomic.Bool
	built     atomic.Pointer[Build]
	failed    atomic.Int64
	reqCh     chan buildReq
	done      chan struct{}
	closeOnce sync.Once
}

// New builds a planner for the instance the live plan was built from. The
// instance's query rates are adopted as the drift baseline and the
// tracker's prior. The background builder goroutine starts immediately;
// Close stops it.
func New(inst *plan.Instance, cfg Config) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inst == nil {
		return nil, fmt.Errorf("replan: nil instance")
	}
	planned := make([]float64, len(inst.Queries))
	for i, q := range inst.Queries {
		planned[i] = q.Rate
	}
	p := &Planner{
		cfg:     cfg,
		tracker: NewTracker(planned, cfg.Alpha),
		base:    inst,
		planned: planned,
		reqCh:   make(chan buildReq, 1),
		done:    make(chan struct{}),
	}
	go p.builder()
	return p, nil
}

// Observe folds one round's occurrence vector into the rate estimate, runs
// the drift trigger on its cadence, and returns a non-nil *Build when a
// freshly compiled plan is ready — the caller must install it (the planner
// has already adopted its rates as the new drift baseline and entered the
// cooldown window). Must be called from the round-loop goroutine.
func (p *Planner) Observe(occ []bool) *Build {
	p.tracker.Observe(occ)

	// Adopt a finished background build first: delivery *is* the round
	// boundary the caller installs at.
	if b := p.built.Swap(nil); b != nil {
		p.base = b.Inst
		p.planned = append(p.planned[:0], b.Rates...)
		p.cooldown = p.cfg.CooldownRounds
		p.stats.Delivered++
		return b
	}
	p.stats.Failed = int(p.failed.Load())

	if p.cooldown > 0 {
		p.cooldown--
		return nil
	}
	if p.tracker.Rounds() < p.cfg.WarmupRounds {
		return nil
	}
	p.sinceCheck++
	if p.sinceCheck < p.cfg.CheckEvery {
		return nil
	}
	p.sinceCheck = 0
	if p.building.Load() {
		return nil // a rebuild is already in flight
	}
	p.stats.Checks++
	maxRatio, kl := Drift(p.planned, p.tracker.rates, p.cfg.RateFloor)
	p.stats.LastMaxRatio, p.stats.LastKL = maxRatio, kl
	if maxRatio <= p.cfg.MaxRatio && kl <= p.cfg.MinKL {
		return nil
	}
	p.seq++
	p.stats.Builds++
	p.building.Store(true)
	p.reqCh <- buildReq{base: p.base, rates: p.tracker.Rates(), seq: p.seq}
	return nil
}

// ObservedRates returns a copy of the current per-phrase rate estimate.
func (p *Planner) ObservedRates() []float64 { return p.tracker.Rates() }

// ObservedRatesInto is ObservedRates into a reusable buffer.
func (p *Planner) ObservedRatesInto(dst []float64) []float64 { return p.tracker.RatesInto(dst) }

// PlannedRates returns a copy of the rates the live plan was built for.
func (p *Planner) PlannedRates() []float64 { return append([]float64(nil), p.planned...) }

// Stats returns the planner's lifetime counters.
func (p *Planner) Stats() Stats { return p.stats }

// Close stops the background builder and waits for it to exit. It must not
// race Observe (call it after the round loop has stopped); it is idempotent.
func (p *Planner) Close() {
	p.closeOnce.Do(func() {
		close(p.reqCh)
		<-p.done
	})
}

// builder is the background goroutine: it runs the full planning heuristic
// and flat compilation for each requested rate snapshot and publishes the
// result. The round loop's trigger guarantees at most one request is in
// flight (the building flag), so the 1-buffered channel never blocks the
// loop.
func (p *Planner) builder() {
	defer close(p.done)
	for req := range p.reqCh {
		start := time.Now()
		inst, pl, prog, err := sharedagg.BuildCompiledWithRates(req.base, req.rates)
		if err != nil {
			p.failed.Add(1)
			p.building.Store(false)
			continue
		}
		p.built.Store(&Build{
			Inst:      inst,
			Plan:      pl,
			Prog:      prog,
			Rates:     req.rates,
			Seq:       req.seq,
			BuildTime: time.Since(start),
		})
		p.building.Store(false)
	}
}
