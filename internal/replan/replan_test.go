package replan

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.WarmupRounds = -1 },
		func(c *Config) { c.CooldownRounds = -1 },
		func(c *Config) { c.CheckEvery = 0 },
		func(c *Config) { c.MaxRatio = 1 },
		func(c *Config) { c.MinKL = 0 },
		func(c *Config) { c.RateFloor = 0 },
		func(c *Config) { c.RateFloor = 0.5 },
	}
	for i, mut := range cases {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDrift(t *testing.T) {
	same := []float64{0.5, 0.2, 0.9}
	ratio, kl := Drift(same, same, 0.01)
	if ratio != 1 || kl != 0 {
		t.Fatalf("no-drift: ratio %v, kl %v", ratio, kl)
	}
	// One phrase doubles: max ratio 2, positive divergence.
	ratio, kl = Drift([]float64{0.2, 0.5}, []float64{0.4, 0.5}, 0.01)
	if math.Abs(ratio-2) > 1e-12 {
		t.Fatalf("doubled phrase: ratio %v, want 2", ratio)
	}
	if kl <= 0 {
		t.Fatalf("doubled phrase: kl %v, want > 0", kl)
	}
	// Flooring keeps never-seen phrases finite in both directions.
	ratio, kl = Drift([]float64{0}, []float64{1}, 0.01)
	if math.IsInf(ratio, 0) || math.IsNaN(kl) || math.IsInf(kl, 0) {
		t.Fatalf("extreme drift not clamped: ratio %v, kl %v", ratio, kl)
	}
	if math.Abs(ratio-99) > 1e-9 { // 0.99 / 0.01
		t.Fatalf("extreme drift ratio %v, want 99", ratio)
	}
	if empty, kl := func() (float64, float64) { return Drift(nil, nil, 0.01) }(); empty != 1 || kl != 0 {
		t.Fatalf("empty drift: %v, %v", empty, kl)
	}
}

func TestTrackerConverges(t *testing.T) {
	tr := NewTracker([]float64{0.5, 0.5}, 0.1)
	occ := []bool{true, false}
	for i := 0; i < 300; i++ {
		tr.Observe(occ)
	}
	rates := tr.Rates()
	if rates[0] < 0.999 || rates[1] > 0.001 {
		t.Fatalf("tracker failed to converge: %v", rates)
	}
	if tr.Rounds() != 300 {
		t.Fatalf("Rounds = %d", tr.Rounds())
	}
	// RatesInto reuses the buffer.
	buf := make([]float64, 2)
	if got := tr.RatesInto(buf); &got[0] != &buf[0] || got[0] != rates[0] {
		t.Fatal("RatesInto did not fill the provided buffer")
	}
}

// aggressive returns a configuration that reacts within tens of rounds, for
// tests that need a trigger to fire quickly.
func aggressive() Config {
	return Config{
		Alpha:          0.2,
		WarmupRounds:   20,
		CheckEvery:     5,
		MaxRatio:       1.5,
		MinKL:          0.02,
		CooldownRounds: 20,
		RateFloor:      0.01,
	}
}

// driftedOcc returns a deterministic occurrence pattern far from the
// workload's planned rates: the first half of the phrases always occur, the
// rest never do.
func driftedOcc(n int) []bool {
	occ := make([]bool, n)
	for q := range occ {
		occ[q] = q < n/2
	}
	return occ
}

func TestPlannerTriggersAndDelivers(t *testing.T) {
	w := workload.Generate(workload.DefaultConfig())
	eng, err := core.New(w, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	p, err := New(eng.PlanInstance(), aggressive())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	occ := driftedOcc(len(w.Interests))
	var build *Build
	deadline := time.Now().Add(10 * time.Second)
	for build == nil && time.Now().Before(deadline) {
		build = p.Observe(occ)
		if p.Stats().Builds > 0 && build == nil {
			// A rebuild is in flight on the background goroutine; give it a
			// moment, as a round loop's inter-round gap would.
			time.Sleep(time.Millisecond)
		}
	}
	if build == nil {
		t.Fatalf("no build delivered under sustained drift; stats %+v", p.Stats())
	}
	if build.Seq != 1 || build.Inst == nil || build.Plan == nil || build.Prog == nil {
		t.Fatalf("malformed build: %+v", build)
	}
	if err := eng.InstallPlan(build.Inst, build.Plan, build.Prog); err != nil {
		t.Fatalf("installing delivered build: %v", err)
	}
	st := p.Stats()
	if st.Delivered != 1 || st.Builds < 1 {
		t.Fatalf("stats after delivery: %+v", st)
	}
	// The delivered rates became the new baseline: the same traffic no
	// longer counts as drift once the estimate settles.
	planned := p.PlannedRates()
	for q, r := range planned {
		if occ[q] && r < 0.5 {
			t.Fatalf("baseline not adopted: planned[%d] = %v under always-on traffic", q, r)
		}
	}
}

func TestPlannerNoFalseTrigger(t *testing.T) {
	// Traffic that exactly matches the planned rates (deterministic 0/1
	// phrases) must never trigger a rebuild.
	w := workload.Generate(workload.DefaultConfig())
	occ := driftedOcc(len(w.Interests))
	rates := make([]float64, len(w.Interests))
	for q := range rates {
		if occ[q] {
			rates[q] = 1
		}
	}
	if err := w.SetRates(rates); err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(w, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	p, err := New(eng.PlanInstance(), aggressive())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 500; i++ {
		if b := p.Observe(occ); b != nil {
			t.Fatalf("round %d: build delivered with zero drift", i)
		}
	}
	if st := p.Stats(); st.Builds != 0 || st.Checks == 0 {
		t.Fatalf("stats %+v: want checks > 0 and no builds", st)
	}
}

func TestPlannerCloseIdempotent(t *testing.T) {
	w := workload.Generate(workload.DefaultConfig())
	eng, err := core.New(w, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	p, err := New(eng.PlanInstance(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
}

// TestSwapEquivalence is the tentpole's correctness pin: an engine that
// hot-swaps to a rebuilt plan mid-stream must produce byte-identical
// winners, prices, clicks, and accounting to an engine that ran the rebuilt
// plan from round zero. Both engines are driven by the same recorded
// occurrence vectors over same-seed workloads, so every random stream
// (clicks, bid walk) is consumed identically — the only degree of freedom
// is the plan, and Lemma 1 says plans cannot change results. Run under
// -race in CI, this also exercises the swap against the builder goroutine.
func TestSwapEquivalence(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 300
	wcfg.NumPhrases = 24
	wcfg.Seed = 42
	wSwap := workload.Generate(wcfg)
	wNative := workload.Generate(wcfg)

	ecfg := core.DefaultConfig()
	ecfg.IncrementalCache = true // the swap must reset the cache epoch correctly
	engSwap, err := core.New(wSwap, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer engSwap.Close()
	engNative, err := core.New(wNative, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer engNative.Close()

	// The drifted rate vector: the workload's rates rotated by half the
	// phrase universe.
	n := len(wSwap.Rates)
	drifted := make([]float64, n)
	for q := range drifted {
		drifted[q] = wSwap.Rates[(q+n/2)%n]
	}

	// The native engine runs the drifted-rates plan from round zero.
	inst, p, prog, err := sharedagg.BuildCompiledWithRates(engNative.PlanInstance(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	if err := engNative.InstallPlan(inst, p, prog); err != nil {
		t.Fatal(err)
	}

	const rounds, swapAt = 600, 300
	rng := rand.New(rand.NewSource(99))
	occ := make([]bool, n)
	for r := 0; r < rounds; r++ {
		if r == swapAt {
			inst, p, prog, err := sharedagg.BuildCompiledWithRates(engSwap.PlanInstance(), drifted)
			if err != nil {
				t.Fatal(err)
			}
			if err := engSwap.InstallPlan(inst, p, prog); err != nil {
				t.Fatal(err)
			}
		}
		for q := range occ {
			occ[q] = rng.Float64() < drifted[q]
		}
		repSwap := engSwap.Step(occ)
		repNative := engNative.Step(occ)
		compareRounds(t, r, repSwap, repNative)
		// Bids walk identically on both same-seed workloads.
		wSwap.PerturbBids(0.05)
		wNative.PerturbBids(0.05)
	}

	sSwap, sNative := engSwap.Stats(), engNative.Stats()
	// Everything the auctions produced must match exactly; only the
	// materialization cost counters may differ (that is the whole point of
	// replanning — same answers, different cost).
	sSwap.NodesMaterialized, sNative.NodesMaterialized = 0, 0
	sSwap.NodesCached, sNative.NodesCached = 0, 0
	if sSwap != sNative {
		t.Fatalf("lifetime stats diverged:\nswap:   %+v\nnative: %+v", sSwap, sNative)
	}
}

func compareRounds(t *testing.T, round int, a, b core.RoundReport) {
	t.Helper()
	if len(a.Auctions) != len(b.Auctions) {
		t.Fatalf("round %d: %d vs %d auctions", round, len(a.Auctions), len(b.Auctions))
	}
	for q, slotsA := range a.Auctions {
		slotsB, ok := b.Auctions[q]
		if !ok || len(slotsA) != len(slotsB) {
			t.Fatalf("round %d phrase %d: slot sets differ (%v vs %v)", round, q, slotsA, slotsB)
		}
		for i := range slotsA {
			if slotsA[i] != slotsB[i] {
				t.Fatalf("round %d phrase %d slot %d: %+v vs %+v", round, q, i, slotsA[i], slotsB[i])
			}
		}
	}
	if len(a.Clicks) != len(b.Clicks) {
		t.Fatalf("round %d: %d vs %d clicks", round, len(a.Clicks), len(b.Clicks))
	}
	for i := range a.Clicks {
		if a.Clicks[i] != b.Clicks[i] {
			t.Fatalf("round %d click %d: %+v vs %+v", round, i, a.Clicks[i], b.Clicks[i])
		}
	}
}

// TestRebuiltPlanMatchesNativeBuild pins determinism: rebuilding under the
// same rates yields a plan with identical expected cost to one built from a
// workload carrying those rates natively, so the post-swap engine pays
// exactly the natively-built per-round cost.
func TestRebuiltPlanMatchesNativeBuild(t *testing.T) {
	w := workload.Generate(workload.DefaultConfig())
	eng, err := core.New(w, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	n := len(w.Rates)
	drifted := make([]float64, n)
	for q := range drifted {
		drifted[q] = w.Rates[(q+n/2)%n]
	}
	_, rebuilt, _, err := sharedagg.BuildCompiledWithRates(eng.PlanInstance(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	native, err := eng.PlanInstance().WithRates(drifted)
	if err != nil {
		t.Fatal(err)
	}
	nativePlan := sharedagg.Build(native)
	if got, want := rebuilt.ExpectedCost(), nativePlan.ExpectedCost(); got != want {
		t.Fatalf("rebuilt plan cost %v, native %v", got, want)
	}
}
