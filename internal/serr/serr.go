// Package serr is the serving layer's error taxonomy — the single home for
// the sentinel errors every serving front end (the single-engine
// server.Server, the multi-core shard.Server) returns from Submit, plus the
// QueryError wrapper that attaches shard and phrase context to a per-query
// failure.
//
// The contract, shared by all front ends:
//
//   - Sentinels are compared with errors.Is, never string matching.
//   - Wrapping preserves identity: a QueryError (or any %w chain) around a
//     sentinel still satisfies errors.Is(err, ErrOverloaded) etc., so
//     callers write one retry/backoff policy that works against both the
//     single server and the sharded server.
//   - ErrOverloaded is retryable (backpressure), ErrClosed is terminal,
//     ErrNoAuction is a property of the query, not of server health.
//
// The facade package sharedwd re-exports the sentinels; internal/server
// keeps deprecated aliases for one release.
package serr

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by the serving front ends' Submit methods.
var (
	// ErrOverloaded is the backpressure signal: the admission queue of the
	// shard (or server) that would serve the query is full, and the query
	// was shed without being enqueued. Callers should back off or retry —
	// against another replica, or later.
	ErrOverloaded = errors.New("sharedwd: overloaded, admission queue full")
	// ErrClosed means the server is shutting down (or shut down) and admits
	// no new queries.
	ErrClosed = errors.New("sharedwd: server closed")
	// ErrNoAuction means the query matched no bid phrase after the
	// two-stage mapping, so no auction runs for it (the paper's unmatched
	// traffic).
	ErrNoAuction = errors.New("sharedwd: query matches no bid phrase")
)

// QueryError decorates a per-query serving failure with the routing context
// the error occurred in: which shard refused the query and which bid phrase
// it had matched. It wraps the underlying cause, so errors.Is against the
// sentinels (and errors such as context.DeadlineExceeded) keeps working.
type QueryError struct {
	// Shard is the shard that served or refused the query; -1 when the
	// failure happened before routing (e.g. an unmatched query).
	Shard int
	// Phrase is the global bid-phrase ID the query matched; -1 when it
	// matched none.
	Phrase int
	// Err is the underlying cause (a sentinel or a context error).
	Err error
}

// Error renders "shard 2, phrase 17: <cause>", omitting fields that are
// unknown (-1).
func (e *QueryError) Error() string {
	switch {
	case e.Shard < 0 && e.Phrase < 0:
		return e.Err.Error()
	case e.Shard < 0:
		return fmt.Sprintf("phrase %d: %v", e.Phrase, e.Err)
	case e.Phrase < 0:
		return fmt.Sprintf("shard %d: %v", e.Shard, e.Err)
	default:
		return fmt.Sprintf("shard %d, phrase %d: %v", e.Shard, e.Phrase, e.Err)
	}
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *QueryError) Unwrap() error { return e.Err }

// Wrap returns err decorated with shard and phrase context, or nil when err
// is nil. An err that is already a *QueryError is returned unchanged (the
// innermost context — recorded where the failure happened — wins).
func Wrap(shard, phrase int, err error) error {
	if err == nil {
		return nil
	}
	var qe *QueryError
	if errors.As(err, &qe) {
		return err
	}
	return &QueryError{Shard: shard, Phrase: phrase, Err: err}
}

// ItemError attributes one failed item of a batch submission to its index
// in the batch. SubmitBatch implementations join one ItemError per failed
// query; errors.Is against the sentinels (and context errors) matches
// through it, and SplitBatch recovers the dense per-item view.
type ItemError struct {
	// Index is the item's position in the submitted batch.
	Index int
	// Err is the underlying per-item failure (a sentinel, a context error,
	// or a *QueryError wrapping one).
	Err error
}

// Error renders "batch item 3: <cause>".
func (e *ItemError) Error() string { return fmt.Sprintf("batch item %d: %v", e.Index, e.Err) }

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *ItemError) Unwrap() error { return e.Err }

// JoinBatch combines a dense per-item error slice into one batch error:
// nil when every entry is nil, otherwise an errors.Join of one *ItemError
// per failed index. It is the inverse of SplitBatch.
func JoinBatch(errs []error) error {
	var items []error
	for i, err := range errs {
		if err != nil {
			items = append(items, &ItemError{Index: i, Err: err})
		}
	}
	if len(items) == 0 {
		return nil
	}
	return errors.Join(items...)
}

// SplitBatch expands a SubmitBatch error back into a dense per-item slice
// of length n: out[i] is item i's failure, nil where it succeeded. A nil
// err yields all-nil. An err that carries no *ItemError at all — a
// whole-batch failure such as a context error — is assigned to every item,
// because no item can have succeeded.
func SplitBatch(err error, n int) []error {
	out := make([]error, n)
	if err == nil {
		return out
	}
	found := false
	var walk func(error)
	walk = func(err error) {
		if joined, ok := err.(interface{ Unwrap() []error }); ok {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
			return
		}
		var ie *ItemError
		if errors.As(err, &ie) {
			if ie.Index >= 0 && ie.Index < n {
				out[ie.Index] = ie.Err
				found = true
			}
		}
	}
	walk(err)
	if !found {
		for i := range out {
			out[i] = err
		}
	}
	return out
}
