package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharedwd/internal/serr"
)

// --- intake ring ---

// TestIntakeRingExactCapacity pins the property the lifecycle and soak
// tests depend on: the ring's shed onset is exactly the configured depth,
// even though the slot array rounds up to a power of two — including the
// depth-1 degenerate case.
func TestIntakeRingExactCapacity(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 5, 8} {
		r := newIntakeRing(depth)
		if got := r.capacity(); got != depth {
			t.Fatalf("depth %d: capacity() = %d", depth, got)
		}
		reqs := make([]*request, depth+1)
		for i := range reqs {
			reqs[i] = &request{phrase: i}
		}
		for i := 0; i < depth; i++ {
			if !r.push(reqs[i]) {
				t.Fatalf("depth %d: push %d refused below capacity", depth, i)
			}
		}
		if r.push(reqs[depth]) {
			t.Fatalf("depth %d: push beyond capacity admitted", depth)
		}
		if got := r.length(); got != depth {
			t.Fatalf("depth %d: length() = %d at capacity", depth, got)
		}
		// FIFO out, and a freed slot readmits.
		if got := r.pop(); got != reqs[0] {
			t.Fatalf("depth %d: pop = %v, want first request", depth, got)
		}
		if !r.push(reqs[depth]) {
			t.Fatalf("depth %d: push refused after a pop freed a slot", depth)
		}
		for i := 1; i <= depth; i++ {
			if got := r.pop(); got != reqs[i] {
				t.Fatalf("depth %d: pop %d out of order", depth, i)
			}
		}
		if got := r.pop(); got != nil {
			t.Fatalf("depth %d: pop on empty ring = %v", depth, got)
		}
	}
}

// TestIntakeRingConcurrent hammers the MPSC contract under the race
// detector: every push that reported success is popped exactly once, and
// nothing is lost or duplicated across producer bursts.
func TestIntakeRingConcurrent(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	r := newIntakeRing(64)

	var pushed atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				req := &request{phrase: p*perProducer + i}
				for !r.push(req) {
					// Full: the consumer will catch up.
				}
				pushed.Add(1)
			}
		}(p)
	}

	seen := make(map[int]bool, producers*perProducer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(seen) < producers*perProducer {
			req := r.pop()
			if req == nil {
				continue
			}
			if seen[req.phrase] {
				t.Errorf("phrase %d popped twice", req.phrase)
				return
			}
			seen[req.phrase] = true
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("consumer stalled: %d of %d popped", len(seen), producers*perProducer)
	}
	if got := r.length(); got != 0 {
		t.Fatalf("ring not empty after drain: length %d", got)
	}
}

// --- pooled request recycling ---

// TestPooledRequestReuseRace is the satellite regression test: requests
// are pooled with an epoch guard, and a waiter abandoning at its deadline
// must never race a late round-loop reply into a recycled object. The mix
// below — tiny random deadlines against a live round loop, under -race —
// makes the Answered/Abandoned CAS race constant; any ownership bug shows
// up as a race report, a stuck Submit, or a reply crossing requests.
func TestPooledRequestReuseRace(t *testing.T) {
	cfg := testConfig()
	cfg.RoundInterval = 500 * time.Microsecond
	w := testWorkload(t)
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const perG = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Deadlines straddle the round interval, so some requests
				// resolve and some abandon — both CAS outcomes exercised.
				d := time.Duration(i%5) * 250 * time.Microsecond
				ctx, cancel := context.WithTimeout(context.Background(), d)
				phrase := w.PhraseNames[(g+i)%len(w.PhraseNames)]
				res, err := s.Submit(ctx, phrase)
				cancel()
				if err == nil {
					// A delivered result must be internally consistent —
					// a cross-request reply would betray pool corruption.
					if res.Phrase < 0 || res.Phrase >= len(w.PhraseNames) {
						t.Errorf("impossible phrase %d", res.Phrase)
					}
				} else if !errors.Is(err, context.DeadlineExceeded) &&
					!errors.Is(err, serr.ErrOverloaded) {
					t.Errorf("Submit: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()

	m := s.Metrics()
	if m.Answered+m.TimedOut+m.Shed+m.Expired == 0 {
		t.Fatal("no traffic recorded")
	}
	if m.Answered == 0 {
		t.Fatal("every request timed out; the race never ran both CAS arms")
	}
	if m.TimedOut == 0 {
		t.Fatal("no request abandoned; the race never ran both CAS arms")
	}
}

// --- callback fast path ---

type collectComp struct {
	mu      sync.Mutex
	results []Result
	errs    []error
	fired   []int32
	wg      sync.WaitGroup
}

func newCollectComp(n int) *collectComp {
	c := &collectComp{
		results: make([]Result, n),
		errs:    make([]error, n),
		fired:   make([]int32, n),
	}
	c.wg.Add(n)
	return c
}

func (c *collectComp) Complete(i int, res Result, err error) {
	if n := atomic.AddInt32(&c.fired[i], 1); n != 1 {
		panic("completion fired twice for one item")
	}
	c.mu.Lock()
	c.results[i], c.errs[i] = res, err
	c.mu.Unlock()
	c.wg.Done()
}

// TestSubmitAsync covers the callback fast path end to end on one server:
// matched queries resolve through the round loop with the same results
// Submit gives, unmatched ones refuse synchronously, and every completion
// fires exactly once.
func TestSubmitAsync(t *testing.T) {
	w := testWorkload(t)
	s, err := New(w, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	n := len(w.PhraseNames) + 1
	cc := newCollectComp(n)
	items := make([]AsyncItem, n)
	for i := 0; i < n-1; i++ {
		items[i] = AsyncItem{
			Query:    "  " + w.PhraseNames[i] + "  ", // matcher normalizes
			Deadline: time.Now().Add(5 * time.Second),
			Done:     cc,
			Index:    i,
		}
	}
	items[n-1] = AsyncItem{Query: "no such phrase at all", Done: cc, Index: n - 1}
	s.SubmitAsync(items)
	cc.wg.Wait()

	for i := 0; i < n-1; i++ {
		if cc.errs[i] != nil {
			t.Fatalf("item %d: %v", i, cc.errs[i])
		}
		if cc.results[i].Phrase != i {
			t.Errorf("item %d: phrase %d", i, cc.results[i].Phrase)
		}
		if len(cc.results[i].Slots) == 0 {
			t.Errorf("item %d: no slots", i)
		}
		if cc.results[i].Latency <= 0 {
			t.Errorf("item %d: non-positive latency %v", i, cc.results[i].Latency)
		}
	}
	if !errors.Is(cc.errs[n-1], serr.ErrNoAuction) {
		t.Fatalf("unmatched item: %v, want ErrNoAuction", cc.errs[n-1])
	}
}

// TestSubmitAsyncDeadline pins the async deadline semantics: an admitted
// item whose deadline passes before its round closes is answered with
// context.DeadlineExceeded (at the next round close, not never).
func TestSubmitAsyncDeadline(t *testing.T) {
	cfg := testConfig()
	cfg.RoundInterval = 40 * time.Millisecond
	cfg.MaxBatch = 0 // only the ticker closes rounds
	w := testWorkload(t)
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cc := newCollectComp(1)
	s.SubmitAsync([]AsyncItem{{
		Query:    w.PhraseNames[0],
		Deadline: time.Now().Add(time.Millisecond),
		Done:     cc,
	}})
	cc.wg.Wait()
	if !errors.Is(cc.errs[0], context.DeadlineExceeded) {
		t.Fatalf("expired async item: %v, want DeadlineExceeded", cc.errs[0])
	}
}

// TestSubmitAsyncOverload stalls the round loop with a full ring and
// checks that the overflowing async item refuses synchronously with the
// retryable sentinel while admitted items still resolve.
func TestSubmitAsyncOverload(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	cfg := testConfig()
	cfg.RoundInterval = time.Hour
	cfg.MaxBatch = 1
	cfg.QueueDepth = 1
	cfg.BeforeStep = func() {
		entered <- struct{}{}
		<-hold
	}
	w := testWorkload(t)
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A dwells inside the round; B fills the single ring slot; C must shed.
	ccA := newCollectComp(1)
	s.SubmitAsync([]AsyncItem{{Query: w.PhraseNames[0], Done: ccA}})
	<-entered

	ccB := newCollectComp(1)
	s.SubmitAsync([]AsyncItem{{Query: w.PhraseNames[1], Done: ccB}})
	deadline := time.Now().Add(2 * time.Second)
	for s.worker.queueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request B never reached the ring")
		}
		time.Sleep(100 * time.Microsecond)
	}

	ccC := newCollectComp(1)
	s.SubmitAsync([]AsyncItem{{Query: w.PhraseNames[2], Done: ccC}})
	ccC.wg.Wait() // synchronous refusal: no round needed
	if !errors.Is(ccC.errs[0], serr.ErrOverloaded) {
		t.Fatalf("overflow item: %v, want ErrOverloaded", ccC.errs[0])
	}

	close(hold)
	ccA.wg.Wait()
	ccB.wg.Wait()
	if ccA.errs[0] != nil || ccB.errs[0] != nil {
		t.Fatalf("admitted items failed: %v / %v", ccA.errs[0], ccB.errs[0])
	}
}

// TestSubmitAsyncConcurrentClose races SubmitAsync against Close under
// the race detector: whatever interleaving wins, every item's completion
// fires exactly once — answered by the final rounds or refused with
// ErrClosed — and nothing deadlocks or leaks.
func TestSubmitAsyncConcurrentClose(t *testing.T) {
	w := testWorkload(t)
	cfg := testConfig()
	cfg.RoundInterval = 200 * time.Microsecond
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 50
	var fired atomic.Int64
	var answered, closed, overloaded atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				cc := newCollectComp(1)
				s.SubmitAsync([]AsyncItem{{
					Query: w.PhraseNames[(g+i)%len(w.PhraseNames)],
					Done:  cc,
				}})
				cc.wg.Wait()
				fired.Add(1)
				switch {
				case cc.errs[0] == nil:
					answered.Add(1)
				case errors.Is(cc.errs[0], serr.ErrClosed):
					closed.Add(1)
				case errors.Is(cc.errs[0], serr.ErrOverloaded):
					overloaded.Add(1)
				default:
					t.Errorf("unexpected async error: %v", cc.errs[0])
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let traffic flow, then slam the door
	s.Close()
	wg.Wait()

	if got := fired.Load(); got != goroutines*perG {
		t.Fatalf("%d completions for %d items", got, goroutines*perG)
	}
	if answered.Load() == 0 {
		t.Error("no item answered before Close")
	}
	if closed.Load() == 0 {
		t.Error("no item refused after Close (Close raced nothing)")
	}
}
