package server

import (
	"context"
	"time"
)

// Backend is the canonical fleet-facing serving contract: the method set
// every front end (the HTTP/JSON tier in internal/netserve, the binary
// tier in internal/binproto, and in-process callers through the facade's
// Client) programs against. Both the single-engine Server here and the
// sharded shard.Server satisfy it.
//
// The error taxonomy is internal/serr's: Submit and the per-item errors of
// SubmitBatch reduce to serr.ErrNoAuction / serr.ErrOverloaded /
// serr.ErrClosed or a context error, possibly wrapped (errors.Is matches
// through the wrappers).
type Backend interface {
	// Submit routes one query through the matcher into a round and blocks
	// until the round resolves it, ctx expires, or the server sheds it.
	Submit(ctx context.Context, query string) (Result, error)

	// SubmitBatch admits many queries at once and blocks until every one
	// has resolved or failed. The returned slice always has len(queries);
	// results[i] is meaningful only when query i succeeded. The error is
	// nil when every query succeeded; otherwise it joins one
	// *serr.ItemError per failed query (serr.SplitBatch expands it back
	// into a dense per-item slice). A batch is cheaper than len(queries)
	// Submits: admission is amortized, no per-query goroutine is spawned,
	// and all queries land in the same round(s) wherever possible.
	SubmitBatch(ctx context.Context, queries []string) ([]Result, error)

	// Metrics returns the merged observability view across the fleet.
	Metrics() Metrics

	// Close drains and stops the backend: pending Submits are answered,
	// outstanding clicks settle, and every goroutine the backend started
	// exits. Idempotent and safe to call concurrently.
	Close()
}

// Completion receives one query's outcome on the callback fast path. It
// is an interface rather than a func value so implementations can be
// pooled concrete types — a closure per request would put an allocation
// back on the path the pool exists to clear.
//
// Complete fires exactly once per submitted item: from the round loop when
// the item was admitted, or synchronously from SubmitAsync on refusal. It
// runs on the loop goroutine, so it must be fast and must never block —
// hand the result to a writer queue or drop it.
type Completion interface {
	Complete(i int, res Result, err error)
}

// AsyncItem is one query on the callback fast path. The Done completion is
// invoked with Index, so one Completion can serve a whole batch with each
// item writing a disjoint slot.
type AsyncItem struct {
	// Query is the raw query string (matched by the backend's matcher).
	Query string
	// Deadline bounds how long the item may wait for a round; zero means
	// no deadline. An expired item is answered with
	// context.DeadlineExceeded at the next round close.
	Deadline time.Time
	// Done receives the outcome, exactly once.
	Done Completion
	// Index is passed through to Done.Complete.
	Index int
}

// AsyncBackend is the callback fast path the network tiers use to shed
// per-request goroutines: SubmitAsync admits a batch of items and returns
// without blocking; outcomes arrive through each item's Completion. The
// items slice is only read during the call — the caller may reuse it
// immediately after SubmitAsync returns.
//
// Errors delivered to completions reduce to the same serr taxonomy as
// Backend (match with errors.Is); under sharding they are the bare
// sentinels without *serr.QueryError routing context.
type AsyncBackend interface {
	SubmitAsync(items []AsyncItem)
}

// Compile-time checks: both serving front ends implement the contract.
// (shard.Server asserts its own conformance in its package.)
var (
	_ Backend      = (*Server)(nil)
	_ AsyncBackend = (*Server)(nil)
)
