package server

import "context"

// Backend is the canonical fleet-facing serving contract: the method set
// every front end (the HTTP/JSON tier in internal/netserve, the binary
// tier in internal/binproto, and in-process callers through the facade's
// Client) programs against. Both the single-engine Server here and the
// sharded shard.Server satisfy it.
//
// The error taxonomy is internal/serr's: Submit and the per-item errors of
// SubmitBatch reduce to serr.ErrNoAuction / serr.ErrOverloaded /
// serr.ErrClosed or a context error, possibly wrapped (errors.Is matches
// through the wrappers).
type Backend interface {
	// Submit routes one query through the matcher into a round and blocks
	// until the round resolves it, ctx expires, or the server sheds it.
	Submit(ctx context.Context, query string) (Result, error)

	// SubmitBatch admits many queries at once and blocks until every one
	// has resolved or failed. The returned slice always has len(queries);
	// results[i] is meaningful only when query i succeeded. The error is
	// nil when every query succeeded; otherwise it joins one
	// *serr.ItemError per failed query (serr.SplitBatch expands it back
	// into a dense per-item slice). A batch is cheaper than len(queries)
	// Submits: admission is amortized, no per-query goroutine is spawned,
	// and all queries land in the same round(s) wherever possible.
	SubmitBatch(ctx context.Context, queries []string) ([]Result, error)

	// Metrics returns the merged observability view across the fleet.
	Metrics() Metrics

	// Close drains and stops the backend: pending Submits are answered,
	// outstanding clicks settle, and every goroutine the backend started
	// exits. Idempotent and safe to call concurrently.
	Close()
}

// Compile-time checks: both serving front ends implement the contract.
// (shard.Server asserts its own conformance in its package.)
var _ Backend = (*Server)(nil)
