package server

import (
	"sync/atomic"
)

// intakeRing is the bounded multi-producer single-consumer queue in front
// of the round loop: submitters push under the admission read lock, the
// loop pops between rounds. It replaces the old buffered channel so that
// concurrent submitters contend on one CAS instead of the channel's
// single lock, and so the loop can drain a burst without a per-element
// select.
//
// The design is a Vyukov bounded queue — per-slot sequence numbers make
// publish/consume a pair of atomic stores with no spinning on the happy
// path — plus an explicit occupancy gate so the *logical* capacity is
// exactly the configured QueueDepth even though the slot array is rounded
// up to a power of two for cheap masking. The gate can only over-estimate
// occupancy (head is monotonic), so the ring never admits beyond capacity;
// with a stalled consumer the shed onset is exact, which the queue-full
// lifecycle and soak tests depend on.
//
// Thread safety: any number of goroutines may push; exactly one goroutine
// (the round loop) may pop. length and capacity are safe anywhere.
type intakeRing struct {
	slots []intakeSlot
	mask  uint64
	cap   uint64 // logical capacity: the configured QueueDepth

	_    [64]byte // keep the producer and consumer cursors off one line
	tail atomic.Uint64
	_    [64]byte
	head atomic.Uint64
}

type intakeSlot struct {
	seq atomic.Uint64
	req *request
}

// newIntakeRing builds a ring with logical capacity depth (≥ 1). The slot
// array is the next power of two ≥ max(depth, 2); the extra physical slots
// are unreachable past the occupancy gate.
func newIntakeRing(depth int) *intakeRing {
	n := 2
	for n < depth {
		n <<= 1
	}
	r := &intakeRing{
		slots: make([]intakeSlot, n),
		mask:  uint64(n - 1),
		cap:   uint64(depth),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues req, returning false when the ring already holds cap
// requests (the caller sheds). Safe for concurrent producers.
func (r *intakeRing) push(req *request) bool {
	for {
		pos := r.tail.Load()
		if pos-r.head.Load() >= r.cap {
			// head was loaded after tail and only grows, so this view of
			// occupancy is an upper bound: a full verdict here is exact
			// whenever the consumer is not mid-pop. One fresh re-read
			// settles the race with a concurrent pop.
			if pos-r.head.Load() >= r.cap {
				return false
			}
			continue
		}
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		if seq == pos {
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.req = req
				slot.seq.Store(pos + 1)
				return true
			}
		} else if seq < pos {
			// The slot still holds an unconsumed request from a previous
			// lap. The occupancy gate makes this unreachable (physical
			// slots ≥ logical capacity), but shed rather than spin if an
			// invariant ever breaks.
			return false
		}
		// Another producer claimed pos first; retry with a fresh tail.
	}
}

// pop dequeues one request, or nil when the ring is empty (or a producer
// has claimed a slot but not yet published it — the caller retries on its
// next drain). Single consumer only.
func (r *intakeRing) pop() *request {
	pos := r.head.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return nil
	}
	req := slot.req
	slot.req = nil
	slot.seq.Store(pos + uint64(len(r.slots)))
	r.head.Store(pos + 1)
	return req
}

// length is the current occupancy: exact when the ring is quiescent, an
// upper bound while producers are mid-claim. Safe anywhere.
func (r *intakeRing) length() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// capacity is the configured logical capacity.
func (r *intakeRing) capacity() int { return int(r.cap) }
