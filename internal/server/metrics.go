package server

import (
	"sort"
	"time"

	"sharedwd/internal/budget"
	"sharedwd/internal/core"
	"sharedwd/internal/stats"
)

// LatencyDist is one pipeline stage's latency distribution (seconds): an
// exact streaming summary (count, mean, min, max) plus the bucketed
// histogram quantiles are estimated from. The zero value is an empty
// distribution. Merge combines distributions from different workers, so a
// sharded server's fleet-wide P95 is computed over the union of samples,
// not averaged per shard.
//
// The JSON tags (with the custom codecs on stats.Summary and
// stats.Histogram) are the stable wire schema: a marshal/unmarshal round
// trip reproduces the distribution exactly, including its quantiles, so
// /v1/stats consumers can re-merge distributions fetched from different
// replicas.
type LatencyDist struct {
	// Summary carries the exact count, mean, min, max, and variance.
	Summary stats.Summary `json:"summary"`
	// Hist is the bucketed distribution behind Quantile; nil when empty.
	Hist *stats.Histogram `json:"hist,omitempty"`
}

// Count returns the number of observations.
func (d LatencyDist) Count() int { return d.Summary.N() }

// Mean returns the exact mean (0 when empty).
func (d LatencyDist) Mean() float64 { return d.Summary.Mean() }

// Max returns the exact maximum (0 when empty).
func (d LatencyDist) Max() float64 { return d.Summary.Max() }

// Quantile estimates the q-quantile from the histogram (0 when empty).
func (d LatencyDist) Quantile(q float64) float64 {
	if d.Hist == nil {
		return 0
	}
	return d.Hist.Quantile(q)
}

// P50 estimates the median.
func (d LatencyDist) P50() float64 { return d.Quantile(0.5) }

// P95 estimates the 95th percentile.
func (d LatencyDist) P95() float64 { return d.Quantile(0.95) }

// Merge returns the distribution of the union of both sample streams. The
// summary combine is exact; histogram counts merge bucket-wise when the
// geometries match (they do whenever the workers share a config) and by
// midpoint re-adding otherwise. Neither operand is mutated.
func (d LatencyDist) Merge(o LatencyDist) LatencyDist {
	out := d
	out.Summary.Merge(o.Summary)
	switch {
	case d.Hist == nil && o.Hist == nil:
		out.Hist = nil
	case d.Hist == nil:
		out.Hist = o.Hist.Clone()
	default:
		out.Hist = d.Hist.Clone()
		out.Hist.Merge(o.Hist)
	}
	return out
}

// Metrics is the unified observability view across the serving stack: one
// type carries the admission counters, queue occupancy, round/throughput
// rates, per-stage latency distributions, and the engine's lifetime
// counters — whether they describe one core.Engine, one server.Worker, or
// a whole sharded fleet. Merge aggregates worker metrics into fleet
// metrics.
//
// The snake_case JSON tags are the stable wire schema shared by the
// network tier's /v1/stats endpoint and the Prometheus exposition's metric
// names; a marshaled Metrics unmarshals back into an equal Metrics
// (latency distributions included), so replicas' stats can be fetched,
// decoded, and re-merged.
type Metrics struct {
	// Uptime is the time since the (oldest merged) worker started,
	// marshaled as integer nanoseconds.
	Uptime time.Duration `json:"uptime_ns"`

	// Admission counters. Submitted = Answered + in flight + Unmatched +
	// Shed + TimedOut (+ Expired requests answered with their ctx error).
	Submitted int64 `json:"submitted"`
	Answered  int64 `json:"answered"`
	Unmatched int64 `json:"unmatched"`
	Shed      int64 `json:"shed"`
	TimedOut  int64 `json:"timed_out"`
	Expired   int64 `json:"expired"`

	// QueueDepth is the current admission-queue occupancy summed across
	// workers; QueueCap the summed bound.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	// Rounds counts engine rounds closed across workers; EmptyRounds those
	// with no live request (zero-traffic ticks). RoundsPerSec and
	// QueriesPerSec are lifetime rates over Uptime.
	Rounds        int64   `json:"rounds"`
	EmptyRounds   int64   `json:"empty_rounds"`
	RoundsPerSec  float64 `json:"rounds_per_sec"`
	QueriesPerSec float64 `json:"queries_per_sec"`

	// Per-stage latency (seconds): time in the admission queue, time
	// waiting for the round to close, winner-determination time per
	// non-empty round, and total submit-to-answer latency.
	AdmissionWait       LatencyDist `json:"admission_wait"`
	RoundWait           LatencyDist `json:"round_wait"`
	WinnerDetermination LatencyDist `json:"winner_determination"`
	TotalLatency        LatencyDist `json:"total_latency"`

	// Engine is the engine-lifetime counter sum as of the last closed
	// round on each worker.
	Engine core.Stats `json:"engine"`

	// Observed is the adaptive replanner's per-phrase arrival-rate
	// estimate, one sample per phrase keyed by global phrase ID and sorted
	// by it. Empty when replanning is off. Merging workers concatenates
	// their samples — a sharded fleet partitions the phrase universe, so
	// the union is the fleet-wide estimate.
	Observed []RateSample `json:"observed,omitempty"`
	// PlanSwaps counts plans hot-swapped into engines; ReplanBuilds counts
	// background rebuilds started (a build in flight when the server closes
	// is started but never swapped).
	PlanSwaps    int64 `json:"plan_swaps"`
	ReplanBuilds int64 `json:"replan_builds"`
	// PlanSwapLatency is the distribution of in-loop swap installation
	// times (seconds) — the round-loop stall a hot swap actually costs.
	PlanSwapLatency stats.Summary `json:"plan_swap_latency"`

	// Pacing is the budget-pacing controller's spend-curve view: target vs
	// realized spend, throttle activity, and the per-round pacing-error
	// distribution. Zero (Enabled false) when pacing is off. On a sharded
	// fleet the controller is shared, so the shard server attaches it once
	// to the fleet view rather than per worker.
	Pacing budget.PacingMetrics `json:"pacing"`
}

// RateSample is one phrase's observed arrival-rate estimate.
type RateSample struct {
	// Phrase is the global phrase ID.
	Phrase int `json:"phrase"`
	// Rate is the exponentially-decayed occurrence-rate estimate in [0,1].
	Rate float64 `json:"rate"`
}

// ObservedRates projects the Observed samples onto a dense vector over a
// global phrase universe of size n: out[id] is phrase id's observed rate, 0
// for phrases with no sample. Samples outside [0,n) are dropped.
func (m Metrics) ObservedRates(n int) []float64 {
	out := make([]float64, n)
	for _, s := range m.Observed {
		if s.Phrase >= 0 && s.Phrase < n {
			out[s.Phrase] = s.Rate
		}
	}
	return out
}

// Merge returns the aggregate of two metric sets: counters and engine
// stats sum, latency distributions merge sample-exactly, Uptime is the
// larger of the two (the workers ran concurrently, not serially), and the
// lifetime rates are recomputed over it. Neither operand is mutated.
func (m Metrics) Merge(o Metrics) Metrics {
	out := m
	if o.Uptime > out.Uptime {
		out.Uptime = o.Uptime
	}
	out.Submitted += o.Submitted
	out.Answered += o.Answered
	out.Unmatched += o.Unmatched
	out.Shed += o.Shed
	out.TimedOut += o.TimedOut
	out.Expired += o.Expired
	out.QueueDepth += o.QueueDepth
	out.QueueCap += o.QueueCap
	out.Rounds += o.Rounds
	out.EmptyRounds += o.EmptyRounds
	out.AdmissionWait = m.AdmissionWait.Merge(o.AdmissionWait)
	out.RoundWait = m.RoundWait.Merge(o.RoundWait)
	out.WinnerDetermination = m.WinnerDetermination.Merge(o.WinnerDetermination)
	out.TotalLatency = m.TotalLatency.Merge(o.TotalLatency)
	out.Engine = m.Engine.Add(o.Engine)
	if len(m.Observed)+len(o.Observed) > 0 {
		out.Observed = make([]RateSample, 0, len(m.Observed)+len(o.Observed))
		out.Observed = append(out.Observed, m.Observed...)
		out.Observed = append(out.Observed, o.Observed...)
		sort.Slice(out.Observed, func(i, j int) bool { return out.Observed[i].Phrase < out.Observed[j].Phrase })
	}
	out.PlanSwaps += o.PlanSwaps
	out.ReplanBuilds += o.ReplanBuilds
	out.PlanSwapLatency.Merge(o.PlanSwapLatency)
	out.Pacing = m.Pacing.Merge(o.Pacing)
	out.RoundsPerSec, out.QueriesPerSec = 0, 0
	if sec := out.Uptime.Seconds(); sec > 0 {
		out.RoundsPerSec = float64(out.Rounds) / sec
		out.QueriesPerSec = float64(out.Answered) / sec
	}
	return out
}
