package server

import (
	"math"
	"testing"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/stats"
)

func distOf(lo, hi float64, xs ...float64) LatencyDist {
	d := LatencyDist{Hist: stats.NewHistogram(lo, hi, 64)}
	for _, x := range xs {
		d.Summary.Add(x)
		d.Hist.Add(x)
	}
	return d
}

func TestLatencyDistMerge(t *testing.T) {
	a := distOf(0, 1, 0.1, 0.2, 0.3)
	b := distOf(0, 1, 0.4, 0.9)
	m := a.Merge(b)
	if m.Count() != 5 {
		t.Fatalf("Count = %d, want 5", m.Count())
	}
	if want := (0.1 + 0.2 + 0.3 + 0.4 + 0.9) / 5; math.Abs(m.Mean()-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", m.Mean(), want)
	}
	if m.Max() != 0.9 {
		t.Fatalf("Max = %v, want 0.9", m.Max())
	}
	if m.Hist.N() != 5 {
		t.Fatalf("merged hist N = %d, want 5", m.Hist.N())
	}
	// Operands are untouched (Merge clones).
	if a.Count() != 3 || a.Hist.N() != 3 || b.Hist.N() != 2 {
		t.Fatal("Merge mutated an operand")
	}
	// Zero-value distributions are identity elements.
	var zero LatencyDist
	if got := zero.Merge(a); got.Count() != 3 || got.Hist.N() != 3 {
		t.Fatalf("zero.Merge = %+v", got)
	}
	if got := a.Merge(zero); got.Count() != 3 {
		t.Fatalf("a.Merge(zero) = %+v", got)
	}
	if got := zero.Merge(zero); got.Count() != 0 || got.P95() != 0 {
		t.Fatalf("zero.Merge(zero) = %+v", got)
	}
}

func TestMetricsMerge(t *testing.T) {
	a := Metrics{
		Uptime: 2 * time.Second, Submitted: 10, Answered: 8, Unmatched: 1,
		Shed: 1, Rounds: 4, EmptyRounds: 1, QueueDepth: 2, QueueCap: 16,
		TotalLatency: distOf(0, 1, 0.1, 0.2),
		Engine:       core.Stats{Rounds: 4, Revenue: 3.5, ClicksCharged: 2},
	}
	b := Metrics{
		Uptime: 3 * time.Second, Submitted: 20, Answered: 19, TimedOut: 1,
		Rounds: 6, QueueDepth: 1, QueueCap: 16,
		TotalLatency: distOf(0, 1, 0.4),
		Engine:       core.Stats{Rounds: 6, Revenue: 1.5, AdsDisplayed: 7},
	}
	m := a.Merge(b)
	if m.Uptime != 3*time.Second {
		t.Fatalf("Uptime = %v, want max (3s)", m.Uptime)
	}
	if m.Submitted != 30 || m.Answered != 27 || m.Unmatched != 1 || m.Shed != 1 || m.TimedOut != 1 {
		t.Fatalf("counters wrong: %+v", m)
	}
	if m.Rounds != 10 || m.EmptyRounds != 1 || m.QueueDepth != 3 || m.QueueCap != 32 {
		t.Fatalf("round/queue counters wrong: %+v", m)
	}
	if want := 27.0 / 3.0; math.Abs(m.QueriesPerSec-want) > 1e-9 {
		t.Fatalf("QueriesPerSec = %v, want %v", m.QueriesPerSec, want)
	}
	if want := 10.0 / 3.0; math.Abs(m.RoundsPerSec-want) > 1e-9 {
		t.Fatalf("RoundsPerSec = %v, want %v", m.RoundsPerSec, want)
	}
	if m.TotalLatency.Count() != 3 {
		t.Fatalf("TotalLatency.Count = %d, want 3", m.TotalLatency.Count())
	}
	if m.Engine.Rounds != 10 || math.Abs(m.Engine.Revenue-5) > 1e-12 ||
		m.Engine.ClicksCharged != 2 || m.Engine.AdsDisplayed != 7 {
		t.Fatalf("engine stats wrong: %+v", m.Engine)
	}

	// The legacy projection carries the merged numbers.
	snap := m.Snapshot()
	if snap.Answered != 27 || snap.TotalLatency.Count != 3 ||
		math.Abs(snap.TotalLatency.Mean-m.TotalLatency.Mean()) > 1e-12 {
		t.Fatalf("snapshot projection wrong: %+v", snap)
	}
}

// TestServerMetricsMatchesSnapshot: the deprecated Snapshot and the new
// Metrics must agree on a live server.
func TestServerMetricsMatchesSnapshot(t *testing.T) {
	s, err := New(testWorkload(t), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Metrics()
	snap := s.Snapshot()
	if snap.QueueCap != m.QueueCap || snap.Rounds < m.Rounds {
		t.Fatalf("Snapshot %+v disagrees with Metrics %+v", snap, m)
	}
}
