package server

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"sharedwd/internal/budget"
	"sharedwd/internal/core"
	"sharedwd/internal/stats"
)

func distOf(lo, hi float64, xs ...float64) LatencyDist {
	d := LatencyDist{Hist: stats.NewHistogram(lo, hi, 64)}
	for _, x := range xs {
		d.Summary.Add(x)
		d.Hist.Add(x)
	}
	return d
}

func TestLatencyDistMerge(t *testing.T) {
	a := distOf(0, 1, 0.1, 0.2, 0.3)
	b := distOf(0, 1, 0.4, 0.9)
	m := a.Merge(b)
	if m.Count() != 5 {
		t.Fatalf("Count = %d, want 5", m.Count())
	}
	if want := (0.1 + 0.2 + 0.3 + 0.4 + 0.9) / 5; math.Abs(m.Mean()-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", m.Mean(), want)
	}
	if m.Max() != 0.9 {
		t.Fatalf("Max = %v, want 0.9", m.Max())
	}
	if m.Hist.N() != 5 {
		t.Fatalf("merged hist N = %d, want 5", m.Hist.N())
	}
	// Operands are untouched (Merge clones).
	if a.Count() != 3 || a.Hist.N() != 3 || b.Hist.N() != 2 {
		t.Fatal("Merge mutated an operand")
	}
	// Zero-value distributions are identity elements.
	var zero LatencyDist
	if got := zero.Merge(a); got.Count() != 3 || got.Hist.N() != 3 {
		t.Fatalf("zero.Merge = %+v", got)
	}
	if got := a.Merge(zero); got.Count() != 3 {
		t.Fatalf("a.Merge(zero) = %+v", got)
	}
	if got := zero.Merge(zero); got.Count() != 0 || got.P95() != 0 {
		t.Fatalf("zero.Merge(zero) = %+v", got)
	}
}

func TestMetricsMerge(t *testing.T) {
	a := Metrics{
		Uptime: 2 * time.Second, Submitted: 10, Answered: 8, Unmatched: 1,
		Shed: 1, Rounds: 4, EmptyRounds: 1, QueueDepth: 2, QueueCap: 16,
		TotalLatency: distOf(0, 1, 0.1, 0.2),
		Engine:       core.Stats{Rounds: 4, Revenue: 3.5, ClicksCharged: 2},
	}
	b := Metrics{
		Uptime: 3 * time.Second, Submitted: 20, Answered: 19, TimedOut: 1,
		Rounds: 6, QueueDepth: 1, QueueCap: 16,
		TotalLatency: distOf(0, 1, 0.4),
		Engine:       core.Stats{Rounds: 6, Revenue: 1.5, AdsDisplayed: 7},
	}
	m := a.Merge(b)
	if m.Uptime != 3*time.Second {
		t.Fatalf("Uptime = %v, want max (3s)", m.Uptime)
	}
	if m.Submitted != 30 || m.Answered != 27 || m.Unmatched != 1 || m.Shed != 1 || m.TimedOut != 1 {
		t.Fatalf("counters wrong: %+v", m)
	}
	if m.Rounds != 10 || m.EmptyRounds != 1 || m.QueueDepth != 3 || m.QueueCap != 32 {
		t.Fatalf("round/queue counters wrong: %+v", m)
	}
	if want := 27.0 / 3.0; math.Abs(m.QueriesPerSec-want) > 1e-9 {
		t.Fatalf("QueriesPerSec = %v, want %v", m.QueriesPerSec, want)
	}
	if want := 10.0 / 3.0; math.Abs(m.RoundsPerSec-want) > 1e-9 {
		t.Fatalf("RoundsPerSec = %v, want %v", m.RoundsPerSec, want)
	}
	if m.TotalLatency.Count() != 3 {
		t.Fatalf("TotalLatency.Count = %d, want 3", m.TotalLatency.Count())
	}
	if m.Engine.Rounds != 10 || math.Abs(m.Engine.Revenue-5) > 1e-12 ||
		m.Engine.ClicksCharged != 2 || m.Engine.AdsDisplayed != 7 {
		t.Fatalf("engine stats wrong: %+v", m.Engine)
	}

}

// TestMetricsJSONRoundTrip is the wire contract behind /v1/stats and the
// WebSocket feed: a marshaled Metrics decodes back into an equal Metrics —
// latency distributions, quantiles, observed rates and all — so replicas'
// stats can be fetched over HTTP, decoded, and re-merged exactly.
func TestMetricsJSONRoundTrip(t *testing.T) {
	m := Metrics{
		Uptime: 90 * time.Second, Submitted: 100, Answered: 80, Unmatched: 5,
		Shed: 10, TimedOut: 3, Expired: 2, QueueDepth: 7, QueueCap: 64,
		Rounds: 40, EmptyRounds: 4, RoundsPerSec: 0.44, QueriesPerSec: 0.88,
		AdmissionWait:       distOf(0, 1, 0.001, 0.002),
		RoundWait:           distOf(0, 1, 0.003),
		WinnerDetermination: distOf(0, 1, 0.0004, 0.0005, 0.0006),
		TotalLatency:        distOf(0, 1, 0.01, 0.02, 0.03, 0.9),
		Engine: core.Stats{
			Rounds: 40, AuctionsResolved: 75, NodesMaterialized: 1234,
			NodesCached: 56, Revenue: 78.25, ClicksCharged: 31,
			ClicksForgiven: 2, ForgivenValue: 1.5, AdsDisplayed: 200,
		},
		Observed:     []RateSample{{Phrase: 0, Rate: 0.25}, {Phrase: 3, Rate: 0.75}},
		PlanSwaps:    2,
		ReplanBuilds: 3,
		Pacing: budget.PacingMetrics{
			Enabled: true, Advertisers: 200, Active: 180, Rounds: 40, Epochs: 2,
			TargetSpend: 55.5, ActualSpend: 54.25, FactorSum: 120.5, Throttled: 33,
		},
	}
	m.PlanSwapLatency.Add(0.0001)
	m.PlanSwapLatency.Add(0.0002)
	m.Pacing.AbsError.Add(0.4)
	m.Pacing.AbsError.Add(0.2)

	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the stable snake_case schema.
	for _, key := range []string{
		`"uptime_ns":90000000000`, `"submitted":100`, `"timed_out":3`,
		`"queue_depth":7`, `"queries_per_sec":0.88`, `"admission_wait"`,
		`"winner_determination"`, `"total_latency"`, `"auctions_resolved":75`,
		`"nodes_materialized":1234`, `"plan_swaps":2`, `"observed"`,
		`"pacing"`, `"enabled":true`, `"target_spend":55.5`,
		`"actual_spend":54.25`, `"factor_sum":120.5`, `"throttled":33`,
		`"abs_error"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("wire schema missing %s in %s", key, data)
		}
	}

	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Uptime != m.Uptime || back.Submitted != m.Submitted ||
		back.Answered != m.Answered || back.Shed != m.Shed ||
		back.Engine != m.Engine || back.PlanSwaps != m.PlanSwaps {
		t.Fatalf("counters did not round-trip:\n got %+v\nwant %+v", back, m)
	}
	if back.TotalLatency.Count() != m.TotalLatency.Count() ||
		back.TotalLatency.Mean() != m.TotalLatency.Mean() ||
		back.TotalLatency.P95() != m.TotalLatency.P95() {
		t.Fatalf("TotalLatency did not round-trip: %+v", back.TotalLatency)
	}
	if back.WinnerDetermination.P50() != m.WinnerDetermination.P50() {
		t.Fatal("WinnerDetermination quantiles did not round-trip")
	}
	if len(back.Observed) != 2 || back.Observed[1] != m.Observed[1] {
		t.Fatalf("Observed did not round-trip: %+v", back.Observed)
	}
	if back.PlanSwapLatency != m.PlanSwapLatency {
		t.Fatalf("PlanSwapLatency did not round-trip: %+v", back.PlanSwapLatency)
	}
	if back.Pacing != m.Pacing {
		t.Fatalf("Pacing did not round-trip:\n got %+v\nwant %+v", back.Pacing, m.Pacing)
	}

	// The decoded distributions keep merging exactly: Merge of decoded
	// metrics equals decoding a Merge.
	merged := m.Merge(m)
	backMerged := back.Merge(back)
	if merged.TotalLatency.Count() != backMerged.TotalLatency.Count() ||
		merged.TotalLatency.P95() != backMerged.TotalLatency.P95() {
		t.Fatal("merge after round trip diverged")
	}
}
