// Package server is the online serving layer the paper's introduction
// frames but the offline engine cannot provide by itself: queries arrive
// continuously and concurrently, are batched into rounds to create sharing
// opportunity, and must be answered within user-tolerable latency
// (Sears–Jacko–Borella: median ≤ 2.2 s tolerated, ≥ 3.6 s too long — see
// internal/batching).
//
// Server wraps the single-goroutine core.Engine in a long-lived round loop:
//
//	callers ──Submit──▶ bounded admission queue ──▶ round loop ──▶ Engine.Step
//	   ▲                      (shed when full)        │
//	   └────────── per-request result channel ◀───────┘
//
// Raw query strings are admitted concurrently through a bounded queue
// (backpressure: ErrOverloaded when full; per-request deadlines via
// context.Context), mapped to bid phrases with workload.Matcher, and
// batched until the round closes — on a ticker or when MaxBatch requests
// are pending, whichever first. The loop drives Engine.Step once per round
// and wakes every waiting request with its auction's slot assignment and
// per-click prices. Close stops admission, resolves in-flight requests in
// a final round, drains the engine's outstanding clicks, and stops every
// goroutine the server started.
//
// Thread safety: Server is safe for concurrent use — any number of
// goroutines may call Submit and Snapshot while the round loop runs. The
// wrapped Engine, Workload, and Matcher are owned by the server once New
// returns and must not be used concurrently by the caller.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/stats"
	"sharedwd/internal/workload"
)

// Sentinel errors returned by Submit.
var (
	// ErrOverloaded is the backpressure signal: the admission queue is full
	// and the query was shed without being enqueued. Callers should back off
	// or retry against another replica.
	ErrOverloaded = errors.New("server: overloaded, admission queue full")
	// ErrClosed means the server is shutting down (or shut down) and admits
	// no new queries.
	ErrClosed = errors.New("server: closed")
	// ErrNoAuction means the query matched no bid phrase after the two-stage
	// mapping, so no auction runs for it (the paper's unmatched traffic).
	ErrNoAuction = errors.New("server: query matches no bid phrase")
)

// Config parameterizes the round server. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// Engine configures the wrapped winner-determination engine.
	Engine core.Config
	// RoundInterval is the ticker period at which rounds close regardless of
	// batch size — the latency/sharing tradeoff knob of the paper's §I.
	// Longer rounds batch more simultaneous auctions (more sharing) at the
	// cost of queries waiting longer for their round.
	RoundInterval time.Duration
	// MaxBatch closes the round early once this many requests are pending,
	// bounding worst-case latency under load. 0 disables the size threshold
	// (rounds close only on the ticker).
	MaxBatch int
	// QueueDepth bounds the admission queue; a Submit arriving when the
	// queue holds QueueDepth requests is shed with ErrOverloaded.
	QueueDepth int
	// BidWalkScale, when positive, applies one step of the workload's
	// multiplicative bid random walk after every round, modeling the
	// automated bidding programs the paper assumes run between rounds.
	BidWalkScale float64
	// LatencyRange is the upper bound of the latency histograms (seconds).
	// 0 defaults to 10× RoundInterval; observations beyond it are clamped
	// into the top bucket, biasing high quantiles toward the bound.
	LatencyRange float64

	// beforeStep, when set, runs on the round loop immediately before each
	// non-empty Engine.Step — a test hook for making the loop dwell so that
	// admission-queue backpressure can be exercised deterministically.
	beforeStep func()
}

// DefaultConfig returns a serving configuration suited to the synthetic
// workloads: 5 ms rounds, early close at 256 pending, 4096-deep queue, and
// the engine's default (GSP, throttled, shared) configuration with the
// cross-round incremental cache on — the setting where batching pays.
func DefaultConfig() Config {
	ecfg := core.DefaultConfig()
	ecfg.IncrementalCache = true
	return Config{
		Engine:        ecfg,
		RoundInterval: 5 * time.Millisecond,
		MaxBatch:      256,
		QueueDepth:    4096,
	}
}

// Validate reports whether the serving configuration is usable.
func (c Config) Validate() error {
	if c.RoundInterval <= 0 {
		return fmt.Errorf("server: non-positive round interval %v", c.RoundInterval)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("server: non-positive queue depth %d", c.QueueDepth)
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("server: negative max batch %d", c.MaxBatch)
	}
	if c.BidWalkScale < 0 {
		return fmt.Errorf("server: negative bid walk scale %v", c.BidWalkScale)
	}
	if c.LatencyRange < 0 {
		return fmt.Errorf("server: negative latency range %v", c.LatencyRange)
	}
	return nil
}

// Result is one answered query: the auction outcome of the phrase the query
// matched, in the round that served it. Slots is an independent copy — it
// remains valid after later rounds.
type Result struct {
	// Phrase is the bid-phrase ID the query matched.
	Phrase int
	// Round is the engine round that resolved the auction.
	Round int
	// Slots is the auction's slot assignment with per-click prices; empty
	// when no advertiser placed a positive effective bid.
	Slots []core.SlotResult
	// AdmissionWait is time spent in the admission queue; RoundWait is time
	// waiting for the round to close after dequeue; Latency is the total
	// Submit-to-answer duration including winner determination.
	AdmissionWait, RoundWait, Latency time.Duration
}

type reply struct {
	res Result
	err error
}

type request struct {
	phrase   int
	enqueued time.Time
	dequeued time.Time
	ctx      context.Context
	done     chan reply // buffered(1): the loop never blocks on delivery
}

// Server is a long-lived, concurrent round server over a single workload.
// It is safe for concurrent use by multiple goroutines.
type Server struct {
	cfg     Config
	eng     *core.Engine
	w       *workload.Workload
	matcher *workload.Matcher

	queue chan *request

	// admitMu makes Submit-vs-Close admission exact: Submit enqueues under
	// the read lock; Close flips closed under the write lock, after which no
	// request can enter the queue and the loop's final drain is complete.
	admitMu sync.RWMutex
	closed  bool

	closing   chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once

	// Counters on the admission fast path (Submit-side).
	submitted atomic.Int64
	unmatched atomic.Int64
	shed      atomic.Int64
	timedOut  atomic.Int64

	// Loop-owned observability, guarded by mu for Snapshot.
	mu            sync.Mutex
	start         time.Time
	rounds        int64
	emptyRounds   int64
	answered      int64
	expired       int64
	admissionHist *stats.Histogram
	roundHist     *stats.Histogram
	wdHist        *stats.Histogram
	latencyHist   *stats.Histogram
	admissionSum  stats.Summary
	roundSum      stats.Summary
	wdSummary     stats.Summary
	latencySum    stats.Summary
	engStats      core.Stats
}

// New builds the engine for the workload and starts the round loop. The
// server takes ownership of the workload: the caller must not mutate or
// step it while the server runs. Close must be called to release the loop
// (and the engine's worker pool, if any).
func New(w *workload.Workload, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := core.New(w, cfg.Engine)
	if err != nil {
		return nil, err
	}
	hi := cfg.LatencyRange
	if hi <= 0 {
		hi = 10 * cfg.RoundInterval.Seconds()
	}
	s := &Server{
		cfg:      cfg,
		eng:      eng,
		w:        w,
		matcher:  workload.NewMatcher(w.PhraseNames),
		queue:    make(chan *request, cfg.QueueDepth),
		closing:  make(chan struct{}),
		loopDone: make(chan struct{}),
		start:    time.Now(),

		admissionHist: stats.NewHistogram(0, hi, 256),
		roundHist:     stats.NewHistogram(0, hi, 256),
		wdHist:        stats.NewHistogram(0, hi, 256),
		latencyHist:   stats.NewHistogram(0, hi, 256),
	}
	go s.loop()
	return s, nil
}

// Matcher exposes the server's query-to-phrase matcher so callers can
// register rewrites (synonyms) before serving traffic. Matcher.AddRewrite
// is not safe concurrently with Submit; configure rewrites first.
func (s *Server) Matcher() *workload.Matcher { return s.matcher }

// Submit admits one raw query and blocks until its round resolves, the
// context is done, or the server refuses it. Errors: ErrNoAuction (query
// matches no bid phrase), ErrOverloaded (admission queue full — the
// backpressure signal), ErrClosed, or ctx.Err() once the deadline expires.
// Safe for concurrent use.
func (s *Server) Submit(ctx context.Context, query string) (Result, error) {
	s.submitted.Add(1)
	phrase, ok := s.matcher.Match(query)
	if !ok {
		s.unmatched.Add(1)
		return Result{}, ErrNoAuction
	}
	req := &request{
		phrase:   phrase,
		enqueued: time.Now(),
		ctx:      ctx,
		done:     make(chan reply, 1),
	}
	if err := s.admit(req); err != nil {
		return Result{}, err
	}
	select {
	case r := <-req.done:
		return r.res, r.err
	case <-ctx.Done():
		s.timedOut.Add(1)
		return Result{}, ctx.Err()
	}
}

func (s *Server) admit(req *request) error {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.queue <- req:
		return nil
	default:
		s.shed.Add(1)
		return ErrOverloaded
	}
}

// Close stops admission, resolves every in-flight request in a final round,
// drains the engine's outstanding clicks (so end-of-day budget accounting
// is complete), stops the engine's worker pool, and waits for the round
// loop to exit. It is idempotent and safe to call concurrently.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.admitMu.Lock()
		s.closed = true
		s.admitMu.Unlock()
		close(s.closing)
		<-s.loopDone
	})
}

// loop is the single goroutine that owns the engine: it batches admitted
// requests and closes rounds on the ticker or the MaxBatch threshold.
func (s *Server) loop() {
	defer close(s.loopDone)
	ticker := time.NewTicker(s.cfg.RoundInterval)
	defer ticker.Stop()

	var pending []*request
	occ := make([]bool, len(s.w.Interests))
	for {
		// Stop pulling from the queue while the batch is full so that
		// backpressure propagates: the queue fills, and Submit sheds.
		in := s.queue
		if s.cfg.MaxBatch > 0 && len(pending) >= s.cfg.MaxBatch {
			in = nil
		}
		select {
		case req := <-in:
			req.dequeued = time.Now()
			pending = append(pending, req)
			pending = s.drainInto(pending)
			if s.cfg.MaxBatch > 0 && len(pending) >= s.cfg.MaxBatch {
				pending = s.closeRound(pending, occ)
			}
		case <-ticker.C:
			pending = s.drainInto(pending)
			pending = s.closeRound(pending, occ)
		case <-s.closing:
			// closed was set before closing fired, so the queue can no
			// longer grow: one final drain sees every admitted request.
			pending = s.drainInto(pending)
			s.closeRound(pending, occ)
			s.eng.Drain()
			s.mu.Lock()
			s.engStats = s.eng.Stats()
			s.mu.Unlock()
			s.eng.Close()
			return
		}
	}
}

// drainInto moves whatever is queued into the batch, up to MaxBatch.
func (s *Server) drainInto(pending []*request) []*request {
	now := time.Now()
	for s.cfg.MaxBatch == 0 || len(pending) < s.cfg.MaxBatch {
		select {
		case req := <-s.queue:
			req.dequeued = now
			pending = append(pending, req)
		default:
			return pending
		}
	}
	return pending
}

// closeRound resolves one round for the pending batch and wakes every
// waiter. Empty rounds still step the engine with no occurring auctions so
// that delayed clicks keep arriving and budgets keep settling in real time
// (zero-traffic ticks are not a stall). Returns the reusable empty batch.
func (s *Server) closeRound(pending []*request, occ []bool) []*request {
	closeStart := time.Now()
	for i := range occ {
		occ[i] = false
	}
	live := pending[:0]
	expired := int64(0)
	for _, req := range pending {
		if req.ctx != nil && req.ctx.Err() != nil {
			// The waiter is gone; skip so an abandoned query does not force
			// an auction, but keep the buffered reply harmless to send.
			req.done <- reply{err: req.ctx.Err()}
			expired++
			continue
		}
		occ[req.phrase] = true
		live = append(live, req)
	}

	if len(live) > 0 && s.cfg.beforeStep != nil {
		s.cfg.beforeStep()
	}
	wdStart := time.Now()
	rep := s.eng.Step(occ)
	wdDur := time.Since(wdStart)
	if s.cfg.BidWalkScale > 0 {
		s.w.PerturbBids(s.cfg.BidWalkScale)
	}

	// Copy each occurring phrase's slots once; RoundReport views engine
	// scratch that the next Step overwrites.
	var slotCopies map[int][]core.SlotResult
	if len(live) > 0 && len(rep.Auctions) > 0 {
		slotCopies = make(map[int][]core.SlotResult, len(rep.Auctions))
		for q, slots := range rep.Auctions {
			slotCopies[q] = append([]core.SlotResult(nil), slots...)
		}
	}
	answerTime := time.Now()
	for _, req := range live {
		res := Result{
			Phrase:        req.phrase,
			Round:         rep.Round,
			Slots:         slotCopies[req.phrase],
			AdmissionWait: req.dequeued.Sub(req.enqueued),
			RoundWait:     closeStart.Sub(req.dequeued),
			Latency:       answerTime.Sub(req.enqueued),
		}
		req.done <- reply{res: res}
	}

	s.mu.Lock()
	s.rounds++
	if len(live) == 0 {
		s.emptyRounds++
	} else {
		s.wdHist.Add(wdDur.Seconds())
		s.wdSummary.Add(wdDur.Seconds())
	}
	s.answered += int64(len(live))
	s.expired += expired
	for _, req := range live {
		adm := req.dequeued.Sub(req.enqueued).Seconds()
		rw := closeStart.Sub(req.dequeued).Seconds()
		s.admissionHist.Add(adm)
		s.admissionSum.Add(adm)
		s.roundHist.Add(rw)
		s.roundSum.Add(rw)
		lat := answerTime.Sub(req.enqueued).Seconds()
		s.latencyHist.Add(lat)
		s.latencySum.Add(lat)
	}
	s.engStats = s.eng.Stats()
	s.mu.Unlock()

	return pending[:0]
}

// LatencyStats summarizes one pipeline stage's latency distribution in
// seconds. Quantiles are histogram estimates (see stats.Histogram.Quantile);
// Mean and Max are exact.
type LatencyStats struct {
	Count          int
	Mean, P50, P95 float64
	Max            float64
}

func latencyStats(h *stats.Histogram, max float64) LatencyStats {
	ls := LatencyStats{Count: h.N(), Max: max}
	if h.N() == 0 {
		return ls
	}
	ls.P50 = h.Quantile(0.5)
	ls.P95 = h.Quantile(0.95)
	return ls
}

// Snapshot is a point-in-time view of the server's health: admission and
// shed counters, queue depth, round and throughput rates, per-stage latency
// distributions, and the wrapped engine's lifetime counters.
type Snapshot struct {
	Uptime time.Duration

	// Admission counters. Submitted = answered + in flight + Unmatched +
	// Shed + TimedOut (+ Expired requests answered with their ctx error).
	Submitted, Answered, Unmatched, Shed, TimedOut, Expired int64

	// QueueDepth is the current admission-queue occupancy; QueueCap its
	// bound.
	QueueDepth, QueueCap int

	// Rounds counts engine rounds closed; EmptyRounds those with no live
	// request (zero-traffic ticks). RoundsPerSec and QueriesPerSec are
	// lifetime rates.
	Rounds, EmptyRounds         int64
	RoundsPerSec, QueriesPerSec float64

	// Per-stage latency (seconds): time in the admission queue, time
	// waiting for the round to close, winner-determination time per
	// non-empty round, and total Submit-to-answer latency.
	AdmissionWait, RoundWait, WinnerDetermination, TotalLatency LatencyStats

	// Engine is the wrapped engine's lifetime counters as of the last
	// closed round.
	Engine core.Stats
}

// Snapshot returns current observability counters. Safe for concurrent use
// with Submit and the round loop.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	up := time.Since(s.start)
	snap := Snapshot{
		Uptime:      up,
		Submitted:   s.submitted.Load(),
		Answered:    s.answered,
		Unmatched:   s.unmatched.Load(),
		Shed:        s.shed.Load(),
		TimedOut:    s.timedOut.Load(),
		Expired:     s.expired,
		QueueDepth:  len(s.queue),
		QueueCap:    cap(s.queue),
		Rounds:      s.rounds,
		EmptyRounds: s.emptyRounds,
		Engine:      s.engStats,

		AdmissionWait:       latencyStats(s.admissionHist, s.admissionSum.Max()),
		RoundWait:           latencyStats(s.roundHist, s.roundSum.Max()),
		WinnerDetermination: latencyStats(s.wdHist, s.wdSummary.Max()),
		TotalLatency:        latencyStats(s.latencyHist, s.latencySum.Max()),
	}
	snap.AdmissionWait.Mean = s.admissionSum.Mean()
	snap.RoundWait.Mean = s.roundSum.Mean()
	snap.WinnerDetermination.Mean = s.wdSummary.Mean()
	snap.TotalLatency.Mean = s.latencySum.Mean()
	if sec := up.Seconds(); sec > 0 {
		snap.RoundsPerSec = float64(s.rounds) / sec
		snap.QueriesPerSec = float64(s.answered) / sec
	}
	return snap
}
