// Package server is the online serving layer the paper's introduction
// frames but the offline engine cannot provide by itself: queries arrive
// continuously and concurrently, are batched into rounds to create sharing
// opportunity, and must be answered within user-tolerable latency
// (Sears–Jacko–Borella: median ≤ 2.2 s tolerated, ≥ 3.6 s too long — see
// internal/batching).
//
// The serving unit is Worker: one bounded admission queue feeding one
// round loop pinned to one single-goroutine core.Engine:
//
//	callers ──SubmitPhrase──▶ bounded admission queue ──▶ round loop ──▶ Engine.Step
//	   ▲                           (shed when full)         │
//	   └─────────── per-request result channel ◀────────────┘
//
// Server is the single-engine front end over one worker: raw query strings
// are admitted concurrently, mapped to bid phrases with workload.Matcher,
// and batched until the round closes — on a ticker or when MaxBatch
// requests are pending, whichever first. The shard package runs one worker
// per engine shard behind the same contract to scale across cores.
// Backpressure is ErrOverloaded when the queue is full; per-request
// deadlines come from context.Context. Close stops admission, resolves
// in-flight requests in a final round, drains the engine's outstanding
// clicks, and stops every goroutine the server started.
//
// Observability is the Metrics type — counters, queue occupancy, and
// per-stage latency distributions with exact means and histogram quantiles
// — which merges across workers (Metrics.Merge) into fleet-wide views and
// carries the stable snake_case JSON schema the network tier serves.
// Config.OnRound additionally streams one RoundSummary per non-empty round
// to a live feed (the netserve WebSocket hub subscribes through it).
//
// Thread safety: Server is safe for concurrent use — any number of
// goroutines may call Submit, Metrics, and Snapshot while the round loop
// runs. The wrapped Engine, Workload, and Matcher are owned by the server
// once New returns and must not be used concurrently by the caller.
package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"sharedwd/internal/budget"
	"sharedwd/internal/core"
	"sharedwd/internal/replan"
	"sharedwd/internal/serr"
	"sharedwd/internal/workload"
)

// Config parameterizes a round worker (and hence the single-worker Server).
// The zero value is not valid; start from DefaultConfig.
type Config struct {
	// Engine configures the wrapped winner-determination engine.
	Engine core.Config
	// RoundInterval is the ticker period at which rounds close regardless of
	// batch size — the latency/sharing tradeoff knob of the paper's §I.
	// Longer rounds batch more simultaneous auctions (more sharing) at the
	// cost of queries waiting longer for their round.
	RoundInterval time.Duration
	// MaxBatch closes the round early once this many requests are pending,
	// bounding worst-case latency under load. 0 disables the size threshold
	// (rounds close only on the ticker).
	MaxBatch int
	// QueueDepth bounds the admission queue; a Submit arriving when the
	// queue holds QueueDepth requests is shed with ErrOverloaded.
	QueueDepth int
	// BidWalkScale, when positive, applies one step of the workload's
	// multiplicative bid random walk after every round, modeling the
	// automated bidding programs the paper assumes run between rounds.
	BidWalkScale float64
	// LatencyRange is the upper bound of the latency histograms (seconds).
	// 0 defaults to 10× RoundInterval; observations beyond it are clamped
	// into the top bucket, biasing high quantiles toward the bound.
	LatencyRange float64

	// BeforeStep, when set, runs on the round loop immediately before each
	// non-empty Engine.Step. It is test instrumentation: blocking in it
	// makes the loop dwell, so admission-queue backpressure and shutdown
	// under full queues can be exercised deterministically (see the soak
	// tests). Leave nil in production configurations.
	BeforeStep func()

	// Replan, when non-nil, turns on online adaptive replanning: the round
	// loop tracks observed per-phrase arrival rates, and when they drift far
	// enough from the rates the live plan was built for, a fresh plan is
	// compiled on a background goroutine and hot-swapped into the engine at
	// a round boundary — admission never pauses, and results are unchanged
	// (all complete plans are A-equivalent). Requires a SharedAggregation
	// engine. See internal/replan.
	Replan *replan.Config

	// PhraseIDs maps this worker's local phrase IDs to global ones in the
	// Observed rate samples it reports (the sharded server sets it to the
	// shard's partition index row). Nil means the identity mapping; when
	// non-nil its length must equal the workload's phrase count.
	PhraseIDs []int

	// ShardID labels the RoundSummary events this worker emits (the sharded
	// server numbers its workers); it does not affect serving. 0 for a
	// single-engine server.
	ShardID int

	// OnRound, when set, is called on the round loop goroutine after every
	// non-empty round closes, with that round's summary. It feeds live
	// dashboards (the network tier's WebSocket hub subscribes here). The
	// callback runs between rounds, so it must be fast and must never
	// block; hand the summary off to a buffered channel or drop it.
	OnRound func(RoundSummary)

	// Pacing, when non-nil, turns on the online budget-pacing controller:
	// Server.New (and shard.New, for a fleet) builds one budget.Pacer over
	// the budget authority and attaches it to every engine, so advertiser
	// bids are throttled toward a smooth spend curve over Pacing.Horizon
	// rounds instead of exhausting budgets front-loaded. See
	// internal/budget.PacerConfig.
	Pacing *budget.PacerConfig
	// Lifecycle, when non-nil, is the advertiser lifecycle schedule the
	// engines (join/leave) and the pacer (budget-refresh epochs) replay at
	// round boundaries. Its universe must match the workload's advertiser
	// count.
	Lifecycle *workload.Lifecycle
}

// RoundSummary is the per-round event the round loop publishes through
// Config.OnRound: which round just closed on which shard, how much traffic
// it carried, and the worker's running totals a live dashboard wants next
// to it. The snake_case JSON tags are the WebSocket round feed's wire
// schema. Latency quantiles are in seconds, over the worker's lifetime
// total-latency distribution (matching Metrics.TotalLatency).
type RoundSummary struct {
	// Shard is the emitting worker's Config.ShardID.
	Shard int `json:"shard"`
	// Round is the engine round that just closed (shard-local).
	Round int `json:"round"`
	// Queries is the number of live queries answered in this round;
	// Expired the abandoned ones skipped (context already done).
	Queries int `json:"queries"`
	Expired int `json:"expired"`
	// Shed is the worker's cumulative admission-shed count at round close.
	Shed int64 `json:"shed"`
	// PlanSwaps is the worker's cumulative hot-swap count; Swapped reports
	// whether this round installed one.
	PlanSwaps int64 `json:"plan_swaps"`
	Swapped   bool  `json:"swapped"`
	// P50 and P95 are the worker's lifetime total-latency quantiles
	// (seconds) as of this round.
	P50 float64 `json:"p50_seconds"`
	P95 float64 `json:"p95_seconds"`
}

// DefaultConfig returns a serving configuration suited to the synthetic
// workloads: 5 ms rounds, early close at 256 pending, 4096-deep queue, and
// the engine's default (GSP, throttled, shared) configuration with the
// cross-round incremental cache on — the setting where batching pays.
func DefaultConfig() Config {
	ecfg := core.DefaultConfig()
	ecfg.IncrementalCache = true
	return Config{
		Engine:        ecfg,
		RoundInterval: 5 * time.Millisecond,
		MaxBatch:      256,
		QueueDepth:    4096,
	}
}

// Validate reports whether the serving configuration is usable.
func (c Config) Validate() error {
	if c.RoundInterval <= 0 {
		return fmt.Errorf("server: non-positive round interval %v", c.RoundInterval)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("server: non-positive queue depth %d", c.QueueDepth)
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("server: negative max batch %d", c.MaxBatch)
	}
	if c.BidWalkScale < 0 {
		return fmt.Errorf("server: negative bid walk scale %v", c.BidWalkScale)
	}
	if c.LatencyRange < 0 {
		return fmt.Errorf("server: negative latency range %v", c.LatencyRange)
	}
	if c.Replan != nil {
		if err := c.Replan.Validate(); err != nil {
			return err
		}
		if c.Engine.Sharing != core.SharedAggregation {
			return fmt.Errorf("server: replanning requires a shared-aggregation engine")
		}
	}
	if c.Pacing != nil {
		if err := c.Pacing.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is one answered query: the auction outcome of the phrase the query
// matched, in the round that served it. Slots is an independent copy — it
// remains valid after later rounds.
type Result struct {
	// Phrase is the bid-phrase ID the query matched. On the single-engine
	// Server this is the workload's phrase ID; on the sharded server it is
	// the global phrase ID (the shard's local ID is translated back).
	Phrase int
	// Shard is the engine shard that served the query; always 0 on the
	// single-engine Server.
	Shard int
	// Round is the engine round that resolved the auction (shard-local
	// under sharding: each shard counts its own rounds).
	Round int
	// Slots is the auction's slot assignment with per-click prices; empty
	// when no advertiser placed a positive effective bid.
	Slots []core.SlotResult
	// AdmissionWait is time spent in the admission queue; RoundWait is time
	// waiting for the round to close after dequeue; Latency is the total
	// Submit-to-answer duration including winner determination.
	AdmissionWait, RoundWait, Latency time.Duration
}

// Server is a long-lived, concurrent round server over a single workload:
// a query matcher in front of one Worker. It is safe for concurrent use by
// multiple goroutines.
type Server struct {
	worker  *Worker
	matcher *workload.Matcher
	pacer   *budget.Pacer

	unmatched atomic.Int64
}

// New builds the engine for the workload and starts the round loop. The
// server takes ownership of the workload: the caller must not mutate or
// step it while the server runs. Close must be called to release the loop
// (and the engine's worker pool, if any).
//
// When cfg.Pacing is set, New builds the pacing controller over the
// engine's budget authority — installing a budget.Ledger as Engine.Ledger
// first if the caller didn't supply one, since refresh epochs need a
// depositable authority — and attaches cfg.Lifecycle to both.
func New(w *workload.Workload, cfg Config) (*Server, error) {
	var pacer *budget.Pacer
	if cfg.Pacing != nil {
		budgets := make([]float64, len(w.Advertisers))
		for i, a := range w.Advertisers {
			budgets[i] = a.Budget
		}
		auth, _ := cfg.Engine.Ledger.(budget.Authority)
		if auth == nil {
			ledger := budget.NewLedger(budgets)
			cfg.Engine.Ledger = ledger
			auth = ledger
		}
		var err error
		pacer, err = budget.NewPacer(auth, budgets, *cfg.Pacing, cfg.Lifecycle)
		if err != nil {
			return nil, err
		}
		cfg.Engine.Pacer = pacer
	}
	cfg.Engine.Lifecycle = cfg.Lifecycle
	worker, err := NewWorker(w, cfg)
	if err != nil {
		return nil, err
	}
	return &Server{worker: worker, matcher: workload.NewMatcher(w.PhraseNames), pacer: pacer}, nil
}

// Pacer returns the server's pacing controller, nil when pacing is off.
func (s *Server) Pacer() *budget.Pacer { return s.pacer }

// Matcher exposes the server's query-to-phrase matcher so callers can
// register rewrites (synonyms) before serving traffic. Matcher.AddRewrite
// is not safe concurrently with Submit; configure rewrites first.
func (s *Server) Matcher() *workload.Matcher { return s.matcher }

// Submit admits one raw query and blocks until its round resolves, the
// context is done, or the server refuses it. Errors: serr.ErrNoAuction
// (query matches no bid phrase), serr.ErrOverloaded (admission queue full
// — the backpressure signal), serr.ErrClosed, or ctx.Err() once the
// deadline expires. Safe for concurrent use.
func (s *Server) Submit(ctx context.Context, query string) (Result, error) {
	phrase, ok := s.matcher.Match(query)
	if !ok {
		s.unmatched.Add(1)
		return Result{}, serr.ErrNoAuction
	}
	return s.worker.SubmitPhrase(ctx, phrase)
}

// SubmitBatch admits many raw queries at once and blocks until every one
// resolves or fails — the Backend batch contract. The returned slice
// always has len(queries); the error is nil when all succeeded, otherwise
// it joins one *serr.ItemError per failed query (expand with
// serr.SplitBatch). The whole batch is admitted in one pass and resolved
// without per-query goroutines, so it is the efficient path for the
// network tiers' batch frames. Safe for concurrent use.
func (s *Server) SubmitBatch(ctx context.Context, queries []string) ([]Result, error) {
	results := make([]Result, len(queries))
	errs := make([]error, len(queries))
	phrases := make([]int, 0, len(queries))
	at := make([]int, 0, len(queries)) // batch index of each matched query
	for i, q := range queries {
		phrase, ok := s.matcher.Match(q)
		if !ok {
			s.unmatched.Add(1)
			errs[i] = serr.ErrNoAuction
			continue
		}
		phrases = append(phrases, phrase)
		at = append(at, i)
	}
	if len(phrases) > 0 {
		sub := make([]Result, len(phrases))
		suberrs := make([]error, len(phrases))
		s.worker.SubmitPhrases(ctx, phrases, sub, suberrs)
		for j, i := range at {
			results[i], errs[i] = sub[j], suberrs[j]
		}
	}
	return results, serr.JoinBatch(errs)
}

// SubmitAsync admits a batch of queries on the callback fast path — the
// AsyncBackend contract: no blocking, no per-query goroutine, outcomes
// delivered exactly once through each item's Completion (synchronously for
// refusals: ErrNoAuction, ErrOverloaded, ErrClosed; from the round loop
// otherwise). Safe for concurrent use.
func (s *Server) SubmitAsync(items []AsyncItem) {
	now := time.Now()
	for i := range items {
		it := &items[i]
		phrase, ok := s.matcher.Match(it.Query)
		if !ok {
			s.unmatched.Add(1)
			it.Done.Complete(it.Index, Result{}, serr.ErrNoAuction)
			continue
		}
		s.worker.SubmitPhraseAsync(phrase, phrase, it.Deadline, now, it.Done, it.Index)
	}
}

// Close stops admission, resolves every in-flight request in a final round,
// drains the engine's outstanding clicks (so end-of-day budget accounting
// is complete), stops the engine's worker pool, and waits for the round
// loop to exit. It is idempotent and safe to call concurrently.
func (s *Server) Close() { s.worker.Close() }

// Metrics returns the server's current observability counters and latency
// distributions. Safe for concurrent use with Submit and the round loop.
func (s *Server) Metrics() Metrics {
	m := s.worker.Metrics()
	m.Unmatched = s.unmatched.Load()
	m.Submitted += m.Unmatched // unmatched queries never reach the worker
	if s.pacer != nil {
		m.Pacing = s.pacer.Metrics()
	}
	return m
}
