package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharedwd/internal/serr"
	"sharedwd/internal/workload"
)

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 120
	wcfg.NumPhrases = 12
	wcfg.NumTopics = 3
	wcfg.Seed = 7
	return workload.Generate(wcfg)
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RoundInterval = 2 * time.Millisecond
	cfg.MaxBatch = 64
	cfg.QueueDepth = 256
	return cfg
}

func TestConfigValidate(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"zero round interval": func(c *Config) { c.RoundInterval = 0 },
		"zero queue depth":    func(c *Config) { c.QueueDepth = 0 },
		"negative max batch":  func(c *Config) { c.MaxBatch = -1 },
		"negative bid walk":   func(c *Config) { c.BidWalkScale = -0.1 },
		"negative range":      func(c *Config) { c.LatencyRange = -1 },
	} {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
		if _, err := New(testWorkload(t), cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", name)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestServerServesQueries is the basic happy path: concurrent raw queries
// (messy variants of bid phrases) are matched, batched, auctioned, and each
// caller is woken with its phrase's slot assignment.
func TestServerServesQueries(t *testing.T) {
	w := testWorkload(t)
	s, err := New(w, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	results := make([]Result, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Messy variant of a real phrase: the matcher normalizes it.
			q := "  " + w.PhraseNames[i%len(w.PhraseNames)] + "  "
			res, err := s.Submit(ctx, q)
			if err != nil {
				t.Errorf("Submit(%q): %v", q, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if want := i % len(w.PhraseNames); res.Phrase != want {
			t.Errorf("result %d: phrase %d, want %d", i, res.Phrase, want)
		}
		if len(res.Slots) == 0 {
			t.Errorf("result %d: no slots assigned", i)
		}
		for _, sl := range res.Slots {
			if !w.Interests[res.Phrase].Contains(sl.Advertiser) {
				t.Errorf("result %d: winner %d not interested in phrase %d", i, sl.Advertiser, res.Phrase)
			}
			if sl.PricePaid < 0 {
				t.Errorf("result %d: negative price %v", i, sl.PricePaid)
			}
		}
		if res.Latency < 0 || res.AdmissionWait < 0 || res.RoundWait < 0 {
			t.Errorf("result %d: negative latency fields %+v", i, res)
		}
	}
	m := s.Metrics()
	if m.Answered != 8 {
		t.Errorf("Answered = %d, want 8", m.Answered)
	}
	if m.TotalLatency.Count() != 8 {
		t.Errorf("TotalLatency.Count = %d, want 8", m.TotalLatency.Count())
	}
	if m.TotalLatency.Max() <= 0 || m.TotalLatency.P95() < 0 {
		t.Errorf("latency distribution not populated: %+v", m.TotalLatency)
	}
}

// TestServerLifecycle covers the failure-mode table: per-request deadlines,
// queue-full shedding, shutdown with in-flight requests, zero-traffic
// ticks, unmatched queries, and submission after Close.
func TestServerLifecycle(t *testing.T) {
	t.Run("deadline exceeded", func(t *testing.T) {
		cfg := testConfig()
		cfg.RoundInterval = time.Hour // rounds effectively never close
		cfg.MaxBatch = 0
		s, err := New(testWorkload(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		_, err = s.Submit(ctx, "topic0/phrase-0")
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Submit = %v, want DeadlineExceeded", err)
		}
		if got := s.Metrics().TimedOut; got != 1 {
			t.Fatalf("TimedOut = %d, want 1", got)
		}
	})

	t.Run("queue-full shed", func(t *testing.T) {
		hold := make(chan struct{})
		entered := make(chan struct{}, 8)
		cfg := testConfig()
		cfg.RoundInterval = time.Hour
		cfg.MaxBatch = 1 // first admitted request closes a round immediately
		cfg.QueueDepth = 1
		cfg.BeforeStep = func() {
			entered <- struct{}{}
			<-hold
		}
		w := testWorkload(t)
		s, err := New(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		ctx := context.Background()
		aDone := make(chan error, 1)
		go func() {
			_, err := s.Submit(ctx, w.PhraseNames[0])
			aDone <- err
		}()
		<-entered // the loop is now dwelling inside the round, not draining

		bDone := make(chan error, 1)
		go func() {
			_, err := s.Submit(ctx, w.PhraseNames[1])
			bDone <- err
		}()
		// Wait until B occupies the queue's single slot.
		deadline := time.Now().Add(2 * time.Second)
		for s.worker.queueLen() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("request B never reached the admission queue")
			}
			time.Sleep(100 * time.Microsecond)
		}

		// The queue is full and the loop is busy: C must shed, not block.
		if _, err := s.Submit(ctx, w.PhraseNames[2]); !errors.Is(err, serr.ErrOverloaded) {
			t.Fatalf("Submit = %v, want ErrOverloaded", err)
		}
		close(hold) // release the round; A resolves now, B next round
		if err := <-aDone; err != nil {
			t.Fatalf("request A failed: %v", err)
		}
		if err := <-bDone; err != nil {
			t.Fatalf("request B failed: %v", err)
		}
		if got := s.Metrics().Shed; got != 1 {
			t.Fatalf("Shed = %d, want 1", got)
		}
	})

	t.Run("shutdown with in-flight requests", func(t *testing.T) {
		cfg := testConfig()
		cfg.RoundInterval = time.Hour // only Close can resolve these
		cfg.MaxBatch = 0
		w := testWorkload(t)
		s, err := New(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Admit synchronously (deterministic), then listen for replies.
		reqs := make([]*request, 3)
		for i := range reqs {
			reqs[i] = &request{
				phrase:    i,
				resPhrase: i,
				enqueued:  time.Now(),
				done:      make(chan reply, 1),
			}
			if err := s.worker.admit(reqs[i]); err != nil {
				t.Fatalf("admit %d: %v", i, err)
			}
		}
		s.Close() // must resolve all three in the final round
		for i, req := range reqs {
			select {
			case r := <-req.done:
				if r.err != nil {
					t.Fatalf("request %d: %v", i, r.err)
				}
				if r.res.Phrase != i {
					t.Fatalf("request %d: phrase %d", i, r.res.Phrase)
				}
			default:
				t.Fatalf("request %d unresolved after Close", i)
			}
		}
		if _, err := s.Submit(context.Background(), w.PhraseNames[0]); !errors.Is(err, serr.ErrClosed) {
			t.Fatalf("Submit after Close = %v, want ErrClosed", err)
		}
	})

	t.Run("zero-traffic ticks", func(t *testing.T) {
		cfg := testConfig()
		cfg.RoundInterval = time.Millisecond
		s, err := New(testWorkload(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(25 * time.Millisecond)
		s.Close()
		m := s.Metrics()
		if m.Rounds < 5 {
			t.Fatalf("Rounds = %d, want ≥ 5 idle ticks", m.Rounds)
		}
		if m.EmptyRounds != m.Rounds {
			t.Fatalf("EmptyRounds = %d of %d rounds with no traffic", m.EmptyRounds, m.Rounds)
		}
		if m.Answered != 0 || m.Engine.AuctionsResolved != 0 {
			t.Fatalf("idle server answered %d / resolved %d auctions", m.Answered, m.Engine.AuctionsResolved)
		}
		// The engine still advanced rounds (delayed-click clock keeps moving).
		if m.Engine.Rounds < 5 {
			t.Fatalf("engine rounds = %d, want ≥ 5", m.Engine.Rounds)
		}
	})

	t.Run("unmatched query", func(t *testing.T) {
		s, err := New(testWorkload(t), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Submit(context.Background(), "zzz no such phrase"); !errors.Is(err, serr.ErrNoAuction) {
			t.Fatalf("Submit = %v, want ErrNoAuction", err)
		}
		if got := s.Metrics().Unmatched; got != 1 {
			t.Fatalf("Unmatched = %d, want 1", got)
		}
	})

	t.Run("close is idempotent", func(t *testing.T) {
		s, err := New(testWorkload(t), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); s.Close() }()
		}
		wg.Wait()
	})
}

// TestServerRewrites exercises the two-stage matcher through the server: a
// registered synonym maps to its bid phrase's auction.
func TestServerRewrites(t *testing.T) {
	w := testWorkload(t)
	cfg := testConfig()
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Matcher().AddRewrite("sneakers", w.PhraseNames[3])
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := s.Submit(ctx, "  SNEAKERS ")
	if err != nil {
		t.Fatal(err)
	}
	if res.Phrase != 3 {
		t.Fatalf("rewrite matched phrase %d, want 3", res.Phrase)
	}
}

// TestServerConcurrentAdmissionAndMetrics is the concurrency-contract
// test: many goroutines submit (including junk and tight deadlines) while
// others continuously read Metrics — exercised under -race in CI. The
// engine runs with a worker pool so pool shutdown is covered too.
func TestServerConcurrentAdmissionAndMetrics(t *testing.T) {
	w := testWorkload(t)
	cfg := testConfig()
	cfg.RoundInterval = time.Millisecond
	cfg.MaxBatch = 16
	cfg.BidWalkScale = 0.05
	cfg.Engine.Workers = 2
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const submitters, perSubmitter = 8, 100
	var ok, noAuction, timedOut, shedded atomic.Int64
	stop := make(chan struct{})
	var readWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m := s.Metrics()
					if m.Answered < 0 || m.QueueDepth > m.QueueCap {
						t.Error("inconsistent metrics")
						return
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				q := w.PhraseNames[(g+i)%len(w.PhraseNames)]
				ctx := context.Background()
				var cancel context.CancelFunc
				switch i % 10 {
				case 3:
					q = fmt.Sprintf("junk query %d-%d", g, i)
				case 7:
					// A deadline tight enough to sometimes fire.
					ctx, cancel = context.WithTimeout(ctx, 500*time.Microsecond)
				}
				_, err := s.Submit(ctx, q)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, serr.ErrNoAuction):
					noAuction.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					timedOut.Add(1)
				case errors.Is(err, serr.ErrOverloaded):
					shedded.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readWG.Wait()
	s.Close()

	m := s.Metrics()
	if m.Submitted != submitters*perSubmitter {
		t.Fatalf("Submitted = %d, want %d", m.Submitted, submitters*perSubmitter)
	}
	// A request can be resolved by the loop in the same instant its deadline
	// fires — the submitter sees ctx.Err() while the loop counts it answered
	// — so Answered may exceed ok by at most the timed-out count.
	if m.Answered < ok.Load() || m.Answered > ok.Load()+timedOut.Load() {
		t.Fatalf("Answered = %d outside [%d, %d]", m.Answered, ok.Load(), ok.Load()+timedOut.Load())
	}
	if m.Unmatched != noAuction.Load() {
		t.Fatalf("Unmatched = %d, ErrNoAuction count = %d", m.Unmatched, noAuction.Load())
	}
	if m.Shed != shedded.Load() {
		t.Fatalf("Shed = %d, ErrOverloaded count = %d", m.Shed, shedded.Load())
	}
	if m.Engine.Rounds == 0 || m.RoundsPerSec <= 0 {
		t.Fatalf("no rounds recorded: %+v", m)
	}
	if ok.Load() > 0 && m.TotalLatency.Count() == 0 {
		t.Fatal("latency histogram empty despite answered queries")
	}
}

// TestServerBudgetAccounting: the serving layer preserves the engine's
// budget invariant — no advertiser is charged beyond the daily budget —
// and Close's drain settles all outstanding clicks.
func TestServerBudgetAccounting(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 60
	wcfg.NumPhrases = 8
	wcfg.MinBudget, wcfg.MaxBudget = 2, 20 // tight budgets: edges matter
	wcfg.Seed = 11
	w := workload.Generate(wcfg)
	cfg := testConfig()
	cfg.RoundInterval = 500 * time.Microsecond
	cfg.MaxBatch = 8
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				_, _ = s.Submit(ctx, w.PhraseNames[(g*3+i)%len(w.PhraseNames)])
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	m := s.Metrics()
	if m.Engine.ClicksCharged == 0 {
		t.Fatal("no clicks charged — drain did not settle outstanding ads?")
	}
	if m.Engine.Revenue <= 0 {
		t.Fatalf("revenue = %v", m.Engine.Revenue)
	}
}

func TestTuneRoundInterval(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 40
	wcfg.NumPhrases = 4
	wcfg.NumTopics = 2
	w := workload.Generate(wcfg)
	arrivals := []float64{0.5, 0.4, 0.3, 0.2} // queries/sec per phrase

	// Median latency ≈ roundLen/2, so 4 s (median 2 s ≤ 2.2 s) is the
	// longest tolerable of these; 8 s (median 4 s) is too long.
	candidates := []time.Duration{time.Second, 4 * time.Second, 8 * time.Second}
	got, err := TuneRoundInterval(w, arrivals, 1e-7, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4*time.Second {
		t.Fatalf("TuneRoundInterval = %v, want 4s", got)
	}

	if _, err := TuneRoundInterval(w, arrivals[:2], 1e-7, candidates); err == nil {
		t.Fatal("accepted mismatched arrival rates")
	}
	if _, err := TuneRoundInterval(w, arrivals, 1e-7, nil); err == nil {
		t.Fatal("accepted empty candidates")
	}
	if _, err := TuneRoundInterval(w, arrivals, 1e-7, []time.Duration{-time.Second}); err == nil {
		t.Fatal("accepted negative candidate")
	}
	if _, err := TuneRoundInterval(w, arrivals, 1e-7, []time.Duration{20 * time.Second}); err == nil {
		t.Fatal("accepted a round length beyond the latency tolerance")
	}

	// The engine config the tuner feeds must also work end to end.
	cfg := testConfig()
	cfg.RoundInterval = got / 1000 // scaled down: tests should not sleep 4s
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}
