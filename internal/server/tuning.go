package server

import (
	"fmt"
	"time"

	"sharedwd/internal/batching"
	"sharedwd/internal/plan"
	"sharedwd/internal/workload"
)

// TuneRoundInterval picks a round length for the workload by reusing the
// §I batching latency model (internal/batching): it simulates Poisson query
// arrivals at the given per-phrase rates against the workload's shared
// aggregation plan and returns the longest candidate whose simulated median
// latency stays within the paper's user-tolerance threshold
// (batching.ToleranceMedian, 2.2 s). Longer rounds batch more simultaneous
// auctions per round — more sharing — so the longest tolerable round is the
// sweet spot the paper's introduction argues for.
//
// arrivalsPerSecond must have one rate per workload phrase. wdSecondsPerOp
// converts aggregation operations to winner-determination seconds (measure
// it, or pass ~1e-7 for this implementation's in-memory merges). An error
// is returned when no candidate is tolerable or the inputs are malformed.
func TuneRoundInterval(w *workload.Workload, arrivalsPerSecond []float64, wdSecondsPerOp float64, candidates []time.Duration) (time.Duration, error) {
	if len(arrivalsPerSecond) != len(w.Interests) {
		return 0, fmt.Errorf("server: %d arrival rates for %d phrases", len(arrivalsPerSecond), len(w.Interests))
	}
	if len(candidates) == 0 {
		return 0, fmt.Errorf("server: no candidate round lengths")
	}
	if wdSecondsPerOp < 0 {
		return 0, fmt.Errorf("server: negative WD cost %v", wdSecondsPerOp)
	}
	queries := make([]plan.Query, len(w.Interests))
	for q := range w.Interests {
		queries[q] = plan.Query{Vars: w.Interests[q], Rate: w.Rates[q]}
	}
	inst, err := plan.NewInstance(len(w.Advertisers), queries)
	if err != nil {
		return 0, fmt.Errorf("server: building batching instance: %w", err)
	}
	lengths := make([]float64, 0, len(candidates))
	longest := time.Duration(0)
	for _, d := range candidates {
		if d <= 0 {
			return 0, fmt.Errorf("server: non-positive candidate round length %v", d)
		}
		if d > longest {
			longest = d
		}
		lengths = append(lengths, d.Seconds())
	}
	// Simulate long enough that even the longest candidate sees many rounds.
	sim := 200 * longest.Seconds()
	if sim < 10 {
		sim = 10
	}
	points := batching.Sweep(batching.Config{
		ArrivalsPerSecond: arrivalsPerSecond,
		Instance:          inst,
		WDSecondsPerOp:    wdSecondsPerOp,
		SimSeconds:        sim,
		Seed:              1,
	}, lengths)
	best := batching.MaxTolerableRound(points)
	if best < 0 {
		return 0, fmt.Errorf("server: no candidate round length within the %.1fs median-latency tolerance", batching.ToleranceMedian)
	}
	return time.Duration(best * float64(time.Second)), nil
}
