package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/replan"
	"sharedwd/internal/serr"
	"sharedwd/internal/stats"
	"sharedwd/internal/workload"
)

type reply struct {
	res Result
	err error
}

// Request lifecycle states for the pooled-object epoch guard. A request
// starts Waiting; exactly one side wins the CAS out of Waiting, and the
// loser of that race is the one that recycles the object — so a late
// round-loop reply can never touch a request that a timed-out waiter has
// already returned to the pool, and vice versa.
const (
	reqWaiting   uint32 = iota
	reqAnswered         // the loop committed a reply to done
	reqAbandoned        // the waiter gave up (ctx done) before the loop answered
)

type request struct {
	phrase   int
	enqueued time.Time
	dequeued time.Time
	ctx      context.Context // blocking path only; nil on the callback path
	deadline time.Time       // callback path deadline; zero means none
	done     chan reply      // buffered(1), pooled with the request

	state atomic.Uint32 // reqWaiting / reqAnswered / reqAbandoned

	// Callback fast path: when cb is non-nil the loop invokes
	// cb.Complete(cbIndex, ...) instead of sending on done, then recycles
	// the request itself — no waiter, no channel, no context.
	cb      Completion
	cbIndex int

	// Result identity: the Phrase/Shard the answer reports. The blocking
	// path sets resPhrase = phrase and lets the sharded front end rewrite;
	// the async path carries the global phrase ID here so results need no
	// post-hoc fixup.
	resPhrase int
	resShard  int
}

// requestPool recycles request objects (and their buffered done channels)
// across submissions; the epoch guard above makes reuse safe. The pool is
// shared by every worker in the process — requests carry no per-worker
// state between uses.
var requestPool = sync.Pool{New: func() any { return &request{done: make(chan reply, 1)} }}

func getRequest() *request {
	req := requestPool.Get().(*request)
	req.state.Store(reqWaiting)
	return req
}

// putRequest returns a request to the pool. The caller must guarantee the
// done channel is empty (the lifecycle discipline: whoever receives the
// reply — or proves none was sent — recycles).
func putRequest(req *request) {
	req.ctx = nil
	req.cb = nil
	req.deadline = time.Time{}
	requestPool.Put(req)
}

// expired reports the deadline error for a request whose waiter is (or
// will be) gone: the blocking path's ctx, or the async path's deadline.
func (req *request) expired(now time.Time) error {
	if req.ctx != nil {
		if err := req.ctx.Err(); err != nil {
			return err
		}
	}
	if !req.deadline.IsZero() && now.After(req.deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

// Worker is one admission queue + round loop pinned to one core.Engine —
// the per-shard serving unit. Server wraps a single worker behind a query
// matcher; shard.Server runs one worker per shard behind a partitioned
// matcher. A worker speaks phrase IDs local to its workload; query-string
// matching (and the ErrNoAuction path) belongs to the front end.
//
// Thread safety: SubmitPhrase, SubmitPhrases, SubmitPhraseAsync, Metrics,
// and Close are safe for concurrent use by any number of goroutines. The
// worker owns its workload and engine once NewWorker returns.
type Worker struct {
	cfg Config
	eng *core.Engine
	w   *workload.Workload

	// intake is the MPSC ring in front of the loop; wake (cap 1) nudges
	// the loop after a push so an idle loop drains promptly. The order is
	// always push-then-wake: a failed non-blocking wake send means a wake
	// is already pending, so the loop cannot miss work.
	intake *intakeRing
	wake   chan struct{}

	// admitMu makes submission-vs-Close admission exact: requests enter
	// the ring under the read lock; Close flips closed under the write
	// lock, after which no request can enter and the loop's final drain is
	// complete.
	admitMu sync.RWMutex
	closed  bool

	closing   chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once

	// Counters on the admission fast path (submit-side).
	submitted atomic.Int64
	shed      atomic.Int64
	timedOut  atomic.Int64

	// Loop-owned observability, guarded by mu for Metrics.
	mu            sync.Mutex
	start         time.Time
	rounds        int64
	emptyRounds   int64
	answered      int64
	expired       int64
	admissionHist *stats.Histogram
	roundHist     *stats.Histogram
	wdHist        *stats.Histogram
	latencyHist   *stats.Histogram
	admissionSum  stats.Summary
	roundSum      stats.Summary
	wdSummary     stats.Summary
	latencySum    stats.Summary
	engStats      core.Stats

	// latScratch collects per-request latency samples inside closeRound so
	// callback requests can be recycled the moment they are answered, with
	// the histogram updates following off the scratch copy. Loop-owned.
	latScratch []latSample

	// Adaptive replanning (nil planner when Config.Replan is nil). The
	// planner is driven only by the round loop; the mu-guarded copies below
	// are what Metrics reads.
	planner     *replan.Planner
	observed    []float64 // latest per-phrase rate estimate (local IDs)
	planSwaps   int64
	swapSum     stats.Summary
	replanStats replan.Stats
}

type latSample struct{ adm, rw, lat float64 }

// NewWorker builds the engine for the workload and starts the round loop.
// The worker takes ownership of the workload: the caller must not mutate or
// step it while the worker runs. Close must be called to release the loop
// (and the engine's worker pool, if any).
func NewWorker(w *workload.Workload, cfg Config) (*Worker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PhraseIDs != nil && len(cfg.PhraseIDs) != len(w.Interests) {
		return nil, fmt.Errorf("server: %d phrase IDs for %d phrases", len(cfg.PhraseIDs), len(w.Interests))
	}
	eng, err := core.New(w, cfg.Engine)
	if err != nil {
		return nil, err
	}
	var planner *replan.Planner
	if cfg.Replan != nil {
		planner, err = replan.New(eng.PlanInstance(), *cfg.Replan)
		if err != nil {
			eng.Close()
			return nil, err
		}
	}
	hi := cfg.LatencyRange
	if hi <= 0 {
		hi = 10 * cfg.RoundInterval.Seconds()
	}
	wk := &Worker{
		cfg:      cfg,
		eng:      eng,
		w:        w,
		intake:   newIntakeRing(cfg.QueueDepth),
		wake:     make(chan struct{}, 1),
		closing:  make(chan struct{}),
		loopDone: make(chan struct{}),
		start:    time.Now(),

		admissionHist: stats.NewHistogram(0, hi, 256),
		roundHist:     stats.NewHistogram(0, hi, 256),
		wdHist:        stats.NewHistogram(0, hi, 256),
		latencyHist:   stats.NewHistogram(0, hi, 256),

		planner: planner,
	}
	if planner != nil {
		wk.observed = planner.ObservedRates()
	}
	go wk.loop()
	return wk, nil
}

// queueLen is the intake ring's current occupancy (test and Metrics view).
func (wk *Worker) queueLen() int { return wk.intake.length() }

// wakeLoop nudges the round loop after a push. Non-blocking: a full wake
// buffer already guarantees the loop will drain again.
func (wk *Worker) wakeLoop() {
	select {
	case wk.wake <- struct{}{}:
	default:
	}
}

// SubmitPhrase admits one already-matched phrase (an ID into this worker's
// workload) and blocks until its round resolves, the context is done, or
// the worker refuses it. Errors: serr.ErrOverloaded (admission queue
// full), serr.ErrClosed, or ctx.Err() once the deadline expires. Safe for
// concurrent use.
func (wk *Worker) SubmitPhrase(ctx context.Context, phrase int) (Result, error) {
	wk.submitted.Add(1)
	req := getRequest()
	req.phrase = phrase
	req.resPhrase = phrase
	req.resShard = wk.cfg.ShardID
	req.ctx = ctx
	req.enqueued = time.Now()
	if err := wk.admit(req); err != nil {
		putRequest(req)
		return Result{}, err
	}
	select {
	case r := <-req.done:
		res, err := r.res, r.err
		putRequest(req)
		return res, err
	case <-ctx.Done():
		if req.state.CompareAndSwap(reqWaiting, reqAbandoned) {
			// The loop has not answered and now never will touch done: it
			// sees Abandoned and recycles the request itself.
			wk.timedOut.Add(1)
			return Result{}, ctx.Err()
		}
		// The loop won the race and a reply is already (or imminently) in
		// the buffered channel; collect it so the pooled channel is clean.
		r := <-req.done
		res, err := r.res, r.err
		putRequest(req)
		return res, err
	}
}

// SubmitPhrases admits a batch of already-matched phrases at once and
// blocks until every one has resolved or failed, writing outcome i into
// results[i] / errs[i] (both must have len(phrases)). It is the fan-in
// behind Backend.SubmitBatch: one admission pass under one lock hold, no
// per-item goroutine — the round loop answers the whole batch at its round
// close(s) and this call collects the replies in order. Per-item errors
// follow SubmitPhrase's taxonomy; items shed or refused individually do
// not fail their siblings. Safe for concurrent use.
func (wk *Worker) SubmitPhrases(ctx context.Context, phrases []int, results []Result, errs []error) {
	wk.submitted.Add(int64(len(phrases)))
	reqs := make([]*request, len(phrases))
	now := time.Now()
	wk.admitMu.RLock()
	if wk.closed {
		wk.admitMu.RUnlock()
		for i := range errs {
			errs[i] = serr.ErrClosed
		}
		return
	}
	admitted := false
	for i, phrase := range phrases {
		req := getRequest()
		req.phrase = phrase
		req.resPhrase = phrase
		req.resShard = wk.cfg.ShardID
		req.ctx = ctx
		req.enqueued = now
		if wk.intake.push(req) {
			reqs[i] = req
			admitted = true
		} else {
			putRequest(req)
			wk.shed.Add(1)
			errs[i] = serr.ErrOverloaded
		}
	}
	wk.admitMu.RUnlock()
	if admitted {
		wk.wakeLoop()
	}
	for i, req := range reqs {
		if req == nil {
			continue // shed at admission; errs[i] already set
		}
		select {
		case r := <-req.done:
			results[i], errs[i] = r.res, r.err
			putRequest(req)
		case <-ctx.Done():
			if req.state.CompareAndSwap(reqWaiting, reqAbandoned) {
				// The loop sees Abandoned and recycles; the remaining
				// admitted requests share this ctx and resolve the same way.
				wk.timedOut.Add(1)
				errs[i] = ctx.Err()
				continue
			}
			r := <-req.done
			results[i], errs[i] = r.res, r.err
			putRequest(req)
		}
	}
}

// SubmitPhraseAsync admits one already-matched phrase on the callback fast
// path and returns immediately: no goroutine, no channel, no context. The
// outcome is delivered exactly once through done.Complete(index, ...) —
// from the round loop when the request was admitted, or synchronously from
// this call on refusal (serr.ErrOverloaded / serr.ErrClosed). deadline
// zero means no deadline; an expired request is answered with
// context.DeadlineExceeded at the next round close. resPhrase is the
// phrase ID the Result reports (the global ID under sharding); phrase is
// the worker-local ID. enqueued stamps admission time (callers submitting
// a batch pass one timestamp for the whole batch). Safe for concurrent
// use.
//
// Unlike the blocking path under sharding, refusals are the bare serr
// sentinels without *serr.QueryError routing context — callback callers
// dispatch on errors.Is, which matches either way.
func (wk *Worker) SubmitPhraseAsync(phrase, resPhrase int, deadline, enqueued time.Time, done Completion, index int) {
	wk.submitted.Add(1)
	req := getRequest()
	req.phrase = phrase
	req.resPhrase = resPhrase
	req.resShard = wk.cfg.ShardID
	req.deadline = deadline
	req.enqueued = enqueued
	req.cb = done
	req.cbIndex = index
	if err := wk.admit(req); err != nil {
		putRequest(req)
		done.Complete(index, Result{}, err)
	}
}

func (wk *Worker) admit(req *request) error {
	wk.admitMu.RLock()
	if wk.closed {
		wk.admitMu.RUnlock()
		return serr.ErrClosed
	}
	ok := wk.intake.push(req)
	wk.admitMu.RUnlock()
	if !ok {
		wk.shed.Add(1)
		return serr.ErrOverloaded
	}
	wk.wakeLoop()
	return nil
}

// deliver hands one outcome to its waiter or callback — the loop's only
// reply path. The epoch guard decides who recycles the pooled request.
func (wk *Worker) deliver(req *request, r reply) {
	if req.cb != nil {
		cb, idx := req.cb, req.cbIndex
		putRequest(req)
		cb.Complete(idx, r.res, r.err)
		return
	}
	if req.state.CompareAndSwap(reqWaiting, reqAnswered) {
		req.done <- r // buffered; the waiter receives and recycles
		return
	}
	// The waiter abandoned first and will never touch req again; the loop
	// owns the recycle.
	putRequest(req)
}

// Close stops admission, resolves every in-flight request in a final round,
// drains the engine's outstanding clicks (so end-of-day budget accounting
// is complete), stops the engine's worker pool, and waits for the round
// loop to exit. It is idempotent and safe to call concurrently.
func (wk *Worker) Close() {
	wk.closeOnce.Do(func() {
		wk.admitMu.Lock()
		wk.closed = true
		wk.admitMu.Unlock()
		close(wk.closing)
		<-wk.loopDone
	})
}

// loop is the single goroutine that owns the engine: it batches admitted
// requests and closes rounds on the ticker or the MaxBatch threshold.
func (wk *Worker) loop() {
	defer close(wk.loopDone)
	ticker := time.NewTicker(wk.cfg.RoundInterval)
	defer ticker.Stop()

	var pending []*request
	occ := make([]bool, len(wk.w.Interests))
	for {
		// Drain whatever is already queued; close immediately when the
		// batch is full so backpressure propagates (the ring fills, and
		// submits shed).
		pending = wk.drainInto(pending)
		if wk.cfg.MaxBatch > 0 && len(pending) >= wk.cfg.MaxBatch {
			pending = wk.closeRound(pending, occ)
			continue
		}
		select {
		case <-wk.wake:
			// New arrivals; loop back to drain them into the batch.
		case <-ticker.C:
			pending = wk.drainInto(pending)
			pending = wk.closeRound(pending, occ)
		case <-wk.closing:
			// closed was set before closing fired, so the ring can no
			// longer grow — but it can hold many more requests than one
			// MaxBatch round. Keep resolving bounded rounds until every
			// admitted request has been answered; a single capped drain
			// here would strand the rest of a full ring forever.
			for {
				pending = wk.drainInto(pending)
				pending = wk.closeRound(pending, occ)
				if wk.intake.length() == 0 {
					break
				}
			}
			wk.eng.Drain()
			wk.mu.Lock()
			wk.engStats = wk.eng.Stats()
			wk.mu.Unlock()
			wk.eng.Close()
			if wk.planner != nil {
				wk.planner.Close() // safe: no more Observe calls
			}
			return
		}
	}
}

// drainInto moves whatever is queued into the batch, up to MaxBatch.
func (wk *Worker) drainInto(pending []*request) []*request {
	var now time.Time
	for wk.cfg.MaxBatch == 0 || len(pending) < wk.cfg.MaxBatch {
		req := wk.intake.pop()
		if req == nil {
			return pending
		}
		if now.IsZero() {
			now = time.Now()
		}
		req.dequeued = now
		pending = append(pending, req)
	}
	return pending
}

// closeRound resolves one round for the pending batch and wakes every
// waiter. Empty rounds still step the engine with no occurring auctions so
// that delayed clicks keep arriving and budgets keep settling in real time
// (zero-traffic ticks are not a stall). Returns the reusable empty batch.
func (wk *Worker) closeRound(pending []*request, occ []bool) []*request {
	closeStart := time.Now()
	for i := range occ {
		occ[i] = false
	}
	live := pending[:0]
	expired := int64(0)
	for _, req := range pending {
		if err := req.expired(closeStart); err != nil {
			// The waiter is gone (or will be told so); skip so an abandoned
			// query does not force an auction.
			wk.deliver(req, reply{err: err})
			expired++
			continue
		}
		occ[req.phrase] = true
		live = append(live, req)
	}

	if len(live) > 0 && wk.cfg.BeforeStep != nil {
		wk.cfg.BeforeStep()
	}
	wdStart := time.Now()
	rep := wk.eng.Step(occ)
	wdDur := time.Since(wdStart)
	if wk.cfg.BidWalkScale > 0 {
		wk.w.PerturbBids(wk.cfg.BidWalkScale)
	}

	// Adaptive replanning: fold this round's occurrence vector into the
	// rate tracker and, when a background rebuild has finished, hot-swap it
	// into the engine right here — between Steps, on the loop goroutine, so
	// the engine's single-owner contract holds and admission never pauses.
	var swapDur time.Duration
	swapped := false
	if wk.planner != nil {
		if b := wk.planner.Observe(occ); b != nil {
			swapStart := time.Now()
			if err := wk.eng.InstallPlan(b.Inst, b.Plan, b.Prog); err != nil {
				// Builds come from the engine's own instance, so a shape
				// mismatch is an internal invariant violation, not a
				// runtime condition to tolerate.
				panic(fmt.Sprintf("server: installing rebuilt plan: %v", err))
			}
			swapDur = time.Since(swapStart)
			swapped = true
		}
	}

	// Copy each occurring phrase's slots once; RoundReport views engine
	// scratch that the next Step overwrites.
	var slotCopies map[int][]core.SlotResult
	if len(live) > 0 && len(rep.Auctions) > 0 {
		slotCopies = make(map[int][]core.SlotResult, len(rep.Auctions))
		for q, slots := range rep.Auctions {
			slotCopies[q] = append([]core.SlotResult(nil), slots...)
		}
	}
	// Answer first, record latencies after: the samples are captured into
	// loop-owned scratch before deliver, because deliver recycles callback
	// requests immediately.
	answerTime := time.Now()
	wk.latScratch = wk.latScratch[:0]
	for _, req := range live {
		adm := req.dequeued.Sub(req.enqueued)
		rw := closeStart.Sub(req.dequeued)
		lat := answerTime.Sub(req.enqueued)
		wk.latScratch = append(wk.latScratch, latSample{adm.Seconds(), rw.Seconds(), lat.Seconds()})
		res := Result{
			Phrase:        req.resPhrase,
			Shard:         req.resShard,
			Round:         rep.Round,
			Slots:         slotCopies[req.phrase],
			AdmissionWait: adm,
			RoundWait:     rw,
			Latency:       lat,
		}
		wk.deliver(req, reply{res: res})
	}
	nlive := len(live)

	wk.mu.Lock()
	wk.rounds++
	if nlive == 0 {
		wk.emptyRounds++
	} else {
		wk.wdHist.Add(wdDur.Seconds())
		wk.wdSummary.Add(wdDur.Seconds())
	}
	wk.answered += int64(nlive)
	wk.expired += expired
	for _, s := range wk.latScratch {
		wk.admissionHist.Add(s.adm)
		wk.admissionSum.Add(s.adm)
		wk.roundHist.Add(s.rw)
		wk.roundSum.Add(s.rw)
		wk.latencyHist.Add(s.lat)
		wk.latencySum.Add(s.lat)
	}
	if wk.planner != nil {
		if swapped {
			wk.planSwaps++
			wk.swapSum.Add(swapDur.Seconds())
		}
		wk.observed = wk.planner.ObservedRatesInto(wk.observed)
		wk.replanStats = wk.planner.Stats()
	}
	wk.engStats = wk.eng.Stats()
	var summary RoundSummary
	if wk.cfg.OnRound != nil && nlive+int(expired) > 0 {
		summary = RoundSummary{
			Shard:     wk.cfg.ShardID,
			Round:     rep.Round,
			Queries:   nlive,
			Expired:   int(expired),
			Shed:      wk.shed.Load(),
			PlanSwaps: wk.planSwaps,
			Swapped:   swapped,
			P50:       wk.latencyHist.Quantile(0.5),
			P95:       wk.latencyHist.Quantile(0.95),
		}
	}
	wk.mu.Unlock()

	// Publish outside the metrics lock: the hook must not block, but even a
	// fast hook has no business extending the Metrics critical section.
	if wk.cfg.OnRound != nil && summary.Queries+summary.Expired > 0 {
		wk.cfg.OnRound(summary)
	}

	// Drop the (possibly recycled) request pointers before reuse.
	for i := range pending {
		pending[i] = nil
	}
	return pending[:0]
}

// Metrics returns the worker's current observability counters and latency
// distributions. Safe for concurrent use with SubmitPhrase and the round
// loop.
func (wk *Worker) Metrics() Metrics {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	up := time.Since(wk.start)
	m := Metrics{
		Uptime:      up,
		Submitted:   wk.submitted.Load(),
		Answered:    wk.answered,
		Shed:        wk.shed.Load(),
		TimedOut:    wk.timedOut.Load(),
		Expired:     wk.expired,
		QueueDepth:  wk.intake.length(),
		QueueCap:    wk.intake.capacity(),
		Rounds:      wk.rounds,
		EmptyRounds: wk.emptyRounds,
		Engine:      wk.engStats,

		AdmissionWait:       LatencyDist{Summary: wk.admissionSum, Hist: wk.admissionHist.Clone()},
		RoundWait:           LatencyDist{Summary: wk.roundSum, Hist: wk.roundHist.Clone()},
		WinnerDetermination: LatencyDist{Summary: wk.wdSummary, Hist: wk.wdHist.Clone()},
		TotalLatency:        LatencyDist{Summary: wk.latencySum, Hist: wk.latencyHist.Clone()},

		PlanSwaps:       wk.planSwaps,
		ReplanBuilds:    int64(wk.replanStats.Builds),
		PlanSwapLatency: wk.swapSum,
	}
	if wk.planner != nil {
		m.Observed = make([]RateSample, len(wk.observed))
		for q, r := range wk.observed {
			id := q
			if wk.cfg.PhraseIDs != nil {
				id = wk.cfg.PhraseIDs[q]
			}
			m.Observed[q] = RateSample{Phrase: id, Rate: r}
		}
		sort.Slice(m.Observed, func(i, j int) bool { return m.Observed[i].Phrase < m.Observed[j].Phrase })
	}
	if sec := up.Seconds(); sec > 0 {
		m.RoundsPerSec = float64(wk.rounds) / sec
		m.QueriesPerSec = float64(wk.answered) / sec
	}
	return m
}
