package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/core"
	"sharedwd/internal/replan"
	"sharedwd/internal/serr"
	"sharedwd/internal/stats"
	"sharedwd/internal/workload"
)

type reply struct {
	res Result
	err error
}

type request struct {
	phrase   int
	enqueued time.Time
	dequeued time.Time
	ctx      context.Context
	done     chan reply // buffered(1): the loop never blocks on delivery
}

// Worker is one admission queue + round loop pinned to one core.Engine —
// the per-shard serving unit. Server wraps a single worker behind a query
// matcher; shard.Server runs one worker per shard behind a partitioned
// matcher. A worker speaks phrase IDs local to its workload; query-string
// matching (and the ErrNoAuction path) belongs to the front end.
//
// Thread safety: SubmitPhrase, Metrics, and Close are safe for concurrent
// use by any number of goroutines. The worker owns its workload and engine
// once NewWorker returns.
type Worker struct {
	cfg Config
	eng *core.Engine
	w   *workload.Workload

	queue chan *request

	// admitMu makes SubmitPhrase-vs-Close admission exact: requests enqueue
	// under the read lock; Close flips closed under the write lock, after
	// which no request can enter the queue and the loop's final drain is
	// complete.
	admitMu sync.RWMutex
	closed  bool

	closing   chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once

	// Counters on the admission fast path (submit-side).
	submitted atomic.Int64
	shed      atomic.Int64
	timedOut  atomic.Int64

	// Loop-owned observability, guarded by mu for Metrics.
	mu            sync.Mutex
	start         time.Time
	rounds        int64
	emptyRounds   int64
	answered      int64
	expired       int64
	admissionHist *stats.Histogram
	roundHist     *stats.Histogram
	wdHist        *stats.Histogram
	latencyHist   *stats.Histogram
	admissionSum  stats.Summary
	roundSum      stats.Summary
	wdSummary     stats.Summary
	latencySum    stats.Summary
	engStats      core.Stats

	// Adaptive replanning (nil planner when Config.Replan is nil). The
	// planner is driven only by the round loop; the mu-guarded copies below
	// are what Metrics reads.
	planner     *replan.Planner
	observed    []float64 // latest per-phrase rate estimate (local IDs)
	planSwaps   int64
	swapSum     stats.Summary
	replanStats replan.Stats
}

// NewWorker builds the engine for the workload and starts the round loop.
// The worker takes ownership of the workload: the caller must not mutate or
// step it while the worker runs. Close must be called to release the loop
// (and the engine's worker pool, if any).
func NewWorker(w *workload.Workload, cfg Config) (*Worker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PhraseIDs != nil && len(cfg.PhraseIDs) != len(w.Interests) {
		return nil, fmt.Errorf("server: %d phrase IDs for %d phrases", len(cfg.PhraseIDs), len(w.Interests))
	}
	eng, err := core.New(w, cfg.Engine)
	if err != nil {
		return nil, err
	}
	var planner *replan.Planner
	if cfg.Replan != nil {
		planner, err = replan.New(eng.PlanInstance(), *cfg.Replan)
		if err != nil {
			eng.Close()
			return nil, err
		}
	}
	hi := cfg.LatencyRange
	if hi <= 0 {
		hi = 10 * cfg.RoundInterval.Seconds()
	}
	wk := &Worker{
		cfg:      cfg,
		eng:      eng,
		w:        w,
		queue:    make(chan *request, cfg.QueueDepth),
		closing:  make(chan struct{}),
		loopDone: make(chan struct{}),
		start:    time.Now(),

		admissionHist: stats.NewHistogram(0, hi, 256),
		roundHist:     stats.NewHistogram(0, hi, 256),
		wdHist:        stats.NewHistogram(0, hi, 256),
		latencyHist:   stats.NewHistogram(0, hi, 256),

		planner: planner,
	}
	if planner != nil {
		wk.observed = planner.ObservedRates()
	}
	go wk.loop()
	return wk, nil
}

// SubmitPhrase admits one already-matched phrase (an ID into this worker's
// workload) and blocks until its round resolves, the context is done, or
// the worker refuses it. Errors: serr.ErrOverloaded (admission queue
// full), serr.ErrClosed, or ctx.Err() once the deadline expires. Safe for
// concurrent use.
func (wk *Worker) SubmitPhrase(ctx context.Context, phrase int) (Result, error) {
	wk.submitted.Add(1)
	req := &request{
		phrase:   phrase,
		enqueued: time.Now(),
		ctx:      ctx,
		done:     make(chan reply, 1),
	}
	if err := wk.admit(req); err != nil {
		return Result{}, err
	}
	select {
	case r := <-req.done:
		return r.res, r.err
	case <-ctx.Done():
		wk.timedOut.Add(1)
		return Result{}, ctx.Err()
	}
}

// SubmitPhrases admits a batch of already-matched phrases at once and
// blocks until every one has resolved or failed, writing outcome i into
// results[i] / errs[i] (both must have len(phrases)). It is the fan-in
// behind Backend.SubmitBatch: one admission pass under one lock hold, no
// per-item goroutine — the round loop answers the whole batch at its round
// close(s) and this call collects the replies in order. Per-item errors
// follow SubmitPhrase's taxonomy; items shed or refused individually do
// not fail their siblings. Safe for concurrent use.
func (wk *Worker) SubmitPhrases(ctx context.Context, phrases []int, results []Result, errs []error) {
	wk.submitted.Add(int64(len(phrases)))
	reqs := make([]*request, len(phrases))
	now := time.Now()
	wk.admitMu.RLock()
	if wk.closed {
		wk.admitMu.RUnlock()
		for i := range errs {
			errs[i] = serr.ErrClosed
		}
		return
	}
	for i, phrase := range phrases {
		req := &request{
			phrase:   phrase,
			enqueued: now,
			ctx:      ctx,
			done:     make(chan reply, 1),
		}
		select {
		case wk.queue <- req:
			reqs[i] = req
		default:
			wk.shed.Add(1)
			errs[i] = serr.ErrOverloaded
		}
	}
	wk.admitMu.RUnlock()
	for i, req := range reqs {
		if req == nil {
			continue // shed at admission; errs[i] already set
		}
		select {
		case r := <-req.done:
			results[i], errs[i] = r.res, r.err
		case <-ctx.Done():
			// The remaining admitted requests share this ctx; the round
			// loop sees them expired and answers their buffered done
			// channels harmlessly.
			wk.timedOut.Add(1)
			errs[i] = ctx.Err()
		}
	}
}

func (wk *Worker) admit(req *request) error {
	wk.admitMu.RLock()
	defer wk.admitMu.RUnlock()
	if wk.closed {
		return serr.ErrClosed
	}
	select {
	case wk.queue <- req:
		return nil
	default:
		wk.shed.Add(1)
		return serr.ErrOverloaded
	}
}

// Close stops admission, resolves every in-flight request in a final round,
// drains the engine's outstanding clicks (so end-of-day budget accounting
// is complete), stops the engine's worker pool, and waits for the round
// loop to exit. It is idempotent and safe to call concurrently.
func (wk *Worker) Close() {
	wk.closeOnce.Do(func() {
		wk.admitMu.Lock()
		wk.closed = true
		wk.admitMu.Unlock()
		close(wk.closing)
		<-wk.loopDone
	})
}

// loop is the single goroutine that owns the engine: it batches admitted
// requests and closes rounds on the ticker or the MaxBatch threshold.
func (wk *Worker) loop() {
	defer close(wk.loopDone)
	ticker := time.NewTicker(wk.cfg.RoundInterval)
	defer ticker.Stop()

	var pending []*request
	occ := make([]bool, len(wk.w.Interests))
	for {
		// Stop pulling from the queue while the batch is full so that
		// backpressure propagates: the queue fills, and submits shed.
		in := wk.queue
		if wk.cfg.MaxBatch > 0 && len(pending) >= wk.cfg.MaxBatch {
			in = nil
		}
		select {
		case req := <-in:
			req.dequeued = time.Now()
			pending = append(pending, req)
			pending = wk.drainInto(pending)
			if wk.cfg.MaxBatch > 0 && len(pending) >= wk.cfg.MaxBatch {
				pending = wk.closeRound(pending, occ)
			}
		case <-ticker.C:
			pending = wk.drainInto(pending)
			pending = wk.closeRound(pending, occ)
		case <-wk.closing:
			// closed was set before closing fired, so the queue can no
			// longer grow — but it can hold many more requests than one
			// MaxBatch round. Keep resolving bounded rounds until every
			// admitted request has been answered; a single capped drain
			// here would strand the rest of a full queue forever.
			for {
				pending = wk.drainInto(pending)
				pending = wk.closeRound(pending, occ)
				if len(wk.queue) == 0 {
					break
				}
			}
			wk.eng.Drain()
			wk.mu.Lock()
			wk.engStats = wk.eng.Stats()
			wk.mu.Unlock()
			wk.eng.Close()
			if wk.planner != nil {
				wk.planner.Close() // safe: no more Observe calls
			}
			return
		}
	}
}

// drainInto moves whatever is queued into the batch, up to MaxBatch.
func (wk *Worker) drainInto(pending []*request) []*request {
	now := time.Now()
	for wk.cfg.MaxBatch == 0 || len(pending) < wk.cfg.MaxBatch {
		select {
		case req := <-wk.queue:
			req.dequeued = now
			pending = append(pending, req)
		default:
			return pending
		}
	}
	return pending
}

// closeRound resolves one round for the pending batch and wakes every
// waiter. Empty rounds still step the engine with no occurring auctions so
// that delayed clicks keep arriving and budgets keep settling in real time
// (zero-traffic ticks are not a stall). Returns the reusable empty batch.
func (wk *Worker) closeRound(pending []*request, occ []bool) []*request {
	closeStart := time.Now()
	for i := range occ {
		occ[i] = false
	}
	live := pending[:0]
	expired := int64(0)
	for _, req := range pending {
		if req.ctx != nil && req.ctx.Err() != nil {
			// The waiter is gone; skip so an abandoned query does not force
			// an auction, but keep the buffered reply harmless to send.
			req.done <- reply{err: req.ctx.Err()}
			expired++
			continue
		}
		occ[req.phrase] = true
		live = append(live, req)
	}

	if len(live) > 0 && wk.cfg.BeforeStep != nil {
		wk.cfg.BeforeStep()
	}
	wdStart := time.Now()
	rep := wk.eng.Step(occ)
	wdDur := time.Since(wdStart)
	if wk.cfg.BidWalkScale > 0 {
		wk.w.PerturbBids(wk.cfg.BidWalkScale)
	}

	// Adaptive replanning: fold this round's occurrence vector into the
	// rate tracker and, when a background rebuild has finished, hot-swap it
	// into the engine right here — between Steps, on the loop goroutine, so
	// the engine's single-owner contract holds and admission never pauses.
	var swapDur time.Duration
	swapped := false
	if wk.planner != nil {
		if b := wk.planner.Observe(occ); b != nil {
			swapStart := time.Now()
			if err := wk.eng.InstallPlan(b.Inst, b.Plan, b.Prog); err != nil {
				// Builds come from the engine's own instance, so a shape
				// mismatch is an internal invariant violation, not a
				// runtime condition to tolerate.
				panic(fmt.Sprintf("server: installing rebuilt plan: %v", err))
			}
			swapDur = time.Since(swapStart)
			swapped = true
		}
	}

	// Copy each occurring phrase's slots once; RoundReport views engine
	// scratch that the next Step overwrites.
	var slotCopies map[int][]core.SlotResult
	if len(live) > 0 && len(rep.Auctions) > 0 {
		slotCopies = make(map[int][]core.SlotResult, len(rep.Auctions))
		for q, slots := range rep.Auctions {
			slotCopies[q] = append([]core.SlotResult(nil), slots...)
		}
	}
	answerTime := time.Now()
	for _, req := range live {
		res := Result{
			Phrase:        req.phrase,
			Round:         rep.Round,
			Slots:         slotCopies[req.phrase],
			AdmissionWait: req.dequeued.Sub(req.enqueued),
			RoundWait:     closeStart.Sub(req.dequeued),
			Latency:       answerTime.Sub(req.enqueued),
		}
		req.done <- reply{res: res}
	}

	wk.mu.Lock()
	wk.rounds++
	if len(live) == 0 {
		wk.emptyRounds++
	} else {
		wk.wdHist.Add(wdDur.Seconds())
		wk.wdSummary.Add(wdDur.Seconds())
	}
	wk.answered += int64(len(live))
	wk.expired += expired
	for _, req := range live {
		adm := req.dequeued.Sub(req.enqueued).Seconds()
		rw := closeStart.Sub(req.dequeued).Seconds()
		wk.admissionHist.Add(adm)
		wk.admissionSum.Add(adm)
		wk.roundHist.Add(rw)
		wk.roundSum.Add(rw)
		lat := answerTime.Sub(req.enqueued).Seconds()
		wk.latencyHist.Add(lat)
		wk.latencySum.Add(lat)
	}
	if wk.planner != nil {
		if swapped {
			wk.planSwaps++
			wk.swapSum.Add(swapDur.Seconds())
		}
		wk.observed = wk.planner.ObservedRatesInto(wk.observed)
		wk.replanStats = wk.planner.Stats()
	}
	wk.engStats = wk.eng.Stats()
	var summary RoundSummary
	if wk.cfg.OnRound != nil && len(live)+int(expired) > 0 {
		summary = RoundSummary{
			Shard:     wk.cfg.ShardID,
			Round:     rep.Round,
			Queries:   len(live),
			Expired:   int(expired),
			Shed:      wk.shed.Load(),
			PlanSwaps: wk.planSwaps,
			Swapped:   swapped,
			P50:       wk.latencyHist.Quantile(0.5),
			P95:       wk.latencyHist.Quantile(0.95),
		}
	}
	wk.mu.Unlock()

	// Publish outside the metrics lock: the hook must not block, but even a
	// fast hook has no business extending the Metrics critical section.
	if wk.cfg.OnRound != nil && summary.Queries+summary.Expired > 0 {
		wk.cfg.OnRound(summary)
	}

	return pending[:0]
}

// Metrics returns the worker's current observability counters and latency
// distributions. Safe for concurrent use with SubmitPhrase and the round
// loop.
func (wk *Worker) Metrics() Metrics {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	up := time.Since(wk.start)
	m := Metrics{
		Uptime:      up,
		Submitted:   wk.submitted.Load(),
		Answered:    wk.answered,
		Shed:        wk.shed.Load(),
		TimedOut:    wk.timedOut.Load(),
		Expired:     wk.expired,
		QueueDepth:  len(wk.queue),
		QueueCap:    cap(wk.queue),
		Rounds:      wk.rounds,
		EmptyRounds: wk.emptyRounds,
		Engine:      wk.engStats,

		AdmissionWait:       LatencyDist{Summary: wk.admissionSum, Hist: wk.admissionHist.Clone()},
		RoundWait:           LatencyDist{Summary: wk.roundSum, Hist: wk.roundHist.Clone()},
		WinnerDetermination: LatencyDist{Summary: wk.wdSummary, Hist: wk.wdHist.Clone()},
		TotalLatency:        LatencyDist{Summary: wk.latencySum, Hist: wk.latencyHist.Clone()},

		PlanSwaps:       wk.planSwaps,
		ReplanBuilds:    int64(wk.replanStats.Builds),
		PlanSwapLatency: wk.swapSum,
	}
	if wk.planner != nil {
		m.Observed = make([]RateSample, len(wk.observed))
		for q, r := range wk.observed {
			id := q
			if wk.cfg.PhraseIDs != nil {
				id = wk.cfg.PhraseIDs[q]
			}
			m.Observed[q] = RateSample{Phrase: id, Rate: r}
		}
		sort.Slice(m.Observed, func(i, j int) bool { return m.Observed[i].Phrase < m.Observed[j].Phrase })
	}
	if sec := up.Seconds(); sec > 0 {
		m.RoundsPerSec = float64(wk.rounds) / sec
		m.QueriesPerSec = float64(wk.answered) / sec
	}
	return m
}
