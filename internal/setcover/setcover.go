// Package setcover implements the set-cover primitives behind Section II of
// the paper: Johnson's greedy covering algorithm, which the shared
// aggregation heuristic uses as its yardstick for "coverage gain", and an
// exact branch-and-bound solver used in tests and in the Figure-5 harness to
// certify optimal plans on small instances.
//
// Following the paper, "cover" here means an *exact* cover by union: the
// chosen sets must be subsets of the target and their union must equal the
// target exactly (the sets may overlap each other).
package setcover

import (
	"sort"

	"sharedwd/internal/bitset"
)

// Greedy finds a cover of target using sets from the collection, repeatedly
// picking the feasible set (a subset of target) that covers the most
// still-uncovered elements. Ties break by lower index for determinism.
//
// It returns the indices of the chosen sets in selection order, and ok=false
// if the feasible sets cannot cover the target. Johnson (STOC'73) shows this
// is a (1+ln n)-approximation of the minimum cover.
func Greedy(target bitset.Set, collection []bitset.Set) (chosen []int, ok bool) {
	uncovered := target.Clone()
	// Pre-filter to feasible sets once; feasibility never changes.
	feasible := make([]int, 0, len(collection))
	for i, s := range collection {
		if !s.IsEmpty() && s.SubsetOf(target) {
			feasible = append(feasible, i)
		}
	}
	for !uncovered.IsEmpty() {
		best, bestGain := -1, 0
		for _, i := range feasible {
			if gain := collection[i].IntersectCount(uncovered); gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best == -1 {
			return nil, false
		}
		chosen = append(chosen, best)
		uncovered.DifferenceInPlace(collection[best])
	}
	return chosen, true
}

// GreedySize returns just the size of the greedy cover, or -1 if no cover
// exists. This is the quantity |C_q| the Section II-D heuristic sums over
// queries when scoring candidate aggregations.
func GreedySize(target bitset.Set, collection []bitset.Set) int {
	chosen, ok := Greedy(target, collection)
	if !ok {
		return -1
	}
	return len(chosen)
}

// Exact finds a minimum-cardinality exact cover of target from the
// collection using branch and bound. Intended for small instances (tests,
// Figure-5 certification); worst case is exponential — minimum set cover is
// NP-hard (Karp '72), which is exactly why the paper resorts to heuristics.
//
// It returns the chosen indices (ascending) and ok=false if no cover exists.
func Exact(target bitset.Set, collection []bitset.Set) (chosen []int, ok bool) {
	// Feasible sets only, largest first so good covers are found early and
	// prune aggressively.
	type cand struct {
		idx int
		set bitset.Set
	}
	var cands []cand
	for i, s := range collection {
		if !s.IsEmpty() && s.SubsetOf(target) {
			cands = append(cands, cand{i, s})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a].set.Count(), cands[b].set.Count()
		if ca != cb {
			return ca > cb
		}
		return cands[a].idx < cands[b].idx
	})

	// Upper bound from greedy.
	bestLen := -1
	if g, gok := Greedy(target, collection); gok {
		bestLen = len(g)
		chosen = append([]int(nil), g...)
	} else {
		return nil, false
	}
	maxCard := 0
	if len(cands) > 0 {
		maxCard = cands[0].set.Count()
	}

	var cur []int
	var rec func(uncovered bitset.Set, from int)
	rec = func(uncovered bitset.Set, from int) {
		if uncovered.IsEmpty() {
			if bestLen == -1 || len(cur) < bestLen {
				bestLen = len(cur)
				chosen = append(chosen[:0], cur...)
			}
			return
		}
		// Lower bound: need at least ceil(|uncovered| / maxCard) more sets.
		if maxCard == 0 {
			return
		}
		need := (uncovered.Count() + maxCard - 1) / maxCard
		if bestLen != -1 && len(cur)+need >= bestLen {
			return
		}
		// Branch on the lowest uncovered element: some chosen set must
		// contain it. This avoids permuting equivalent orderings.
		var pivot int
		uncovered.ForEach(func(i int) bool { pivot = i; return false })
		for i := from; i < len(cands); i++ {
			if !cands[i].set.Contains(pivot) {
				continue
			}
			cur = append(cur, cands[i].idx)
			next := uncovered.Difference(cands[i].set)
			rec(next, 0)
			cur = cur[:len(cur)-1]
		}
	}
	rec(target.Clone(), 0)
	sort.Ints(chosen)
	return chosen, true
}

// Union returns the union of the indexed sets from the collection; all sets
// must share a capacity, and indices must be valid. Helper for verifying
// covers in tests and planners.
func Union(capacity int, collection []bitset.Set, indices []int) bitset.Set {
	u := bitset.New(capacity)
	for _, i := range indices {
		u.UnionInPlace(collection[i])
	}
	return u
}

// IsCover reports whether the indexed sets form an exact cover of target:
// each is a subset of target and their union equals target.
func IsCover(target bitset.Set, collection []bitset.Set, indices []int) bool {
	for _, i := range indices {
		if !collection[i].SubsetOf(target) {
			return false
		}
	}
	return Union(target.Cap(), collection, indices).Equal(target)
}
