package setcover

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sharedwd/internal/bitset"
)

func sets(n int, members ...[]int) []bitset.Set {
	out := make([]bitset.Set, len(members))
	for i, m := range members {
		out[i] = bitset.FromIndices(n, m...)
	}
	return out
}

func TestGreedySimple(t *testing.T) {
	target := bitset.FromIndices(6, 0, 1, 2, 3, 4, 5)
	coll := sets(6, []int{0, 1, 2}, []int{3, 4}, []int{5}, []int{0})
	chosen, ok := Greedy(target, coll)
	if !ok {
		t.Fatal("expected cover")
	}
	if !IsCover(target, coll, chosen) {
		t.Fatalf("greedy output %v is not a cover", chosen)
	}
	if len(chosen) != 3 {
		t.Fatalf("greedy size = %d, want 3", len(chosen))
	}
}

func TestGreedyPrefersLargerSets(t *testing.T) {
	target := bitset.FromIndices(4, 0, 1, 2, 3)
	coll := sets(4, []int{0}, []int{1}, []int{2}, []int{3}, []int{0, 1, 2, 3})
	chosen, ok := Greedy(target, coll)
	if !ok || !reflect.DeepEqual(chosen, []int{4}) {
		t.Fatalf("chosen = %v ok=%v, want [4]", chosen, ok)
	}
}

func TestGreedyRejectsSupersets(t *testing.T) {
	// The paper's covers are exact: sets not contained in the target are
	// infeasible even if they would cover it.
	target := bitset.FromIndices(4, 0, 1)
	coll := sets(4, []int{0, 1, 2})
	if _, ok := Greedy(target, coll); ok {
		t.Fatal("superset must not be used as a cover element")
	}
}

func TestGreedyNoCover(t *testing.T) {
	target := bitset.FromIndices(4, 0, 1, 2)
	coll := sets(4, []int{0}, []int{1})
	if _, ok := Greedy(target, coll); ok {
		t.Fatal("expected no cover")
	}
	if GreedySize(target, coll) != -1 {
		t.Fatal("GreedySize should be -1 with no cover")
	}
}

func TestGreedyEmptyTarget(t *testing.T) {
	chosen, ok := Greedy(bitset.New(4), sets(4, []int{0}))
	if !ok || len(chosen) != 0 {
		t.Fatalf("empty target should have empty cover, got %v %v", chosen, ok)
	}
}

// TestGreedyWorstCase exercises the classic instance where greedy picks the
// big "wrong" set and uses more sets than optimal — confirming we really
// implemented greedy, not exact.
func TestGreedyWorstCase(t *testing.T) {
	// Universe {0..5}; optimal cover: {0,2,4},{1,3,5} (2 sets). Greedy is
	// lured by {0,1,2,3} (4 elements) then needs both halves of the rest.
	target := bitset.FromIndices(6, 0, 1, 2, 3, 4, 5)
	coll := sets(6, []int{0, 1, 2, 3}, []int{0, 2, 4}, []int{1, 3, 5}, []int{4}, []int{5})
	chosen, ok := Greedy(target, coll)
	if !ok {
		t.Fatal("expected cover")
	}
	if len(chosen) <= 2 {
		t.Fatalf("greedy found %v; this instance should force a suboptimal pick", chosen)
	}
	exact, ok := Exact(target, coll)
	if !ok || len(exact) != 2 {
		t.Fatalf("exact = %v, want size-2 cover", exact)
	}
}

func TestExactMatchesKnownOptimal(t *testing.T) {
	target := bitset.FromIndices(5, 0, 1, 2, 3, 4)
	coll := sets(5, []int{0, 1}, []int{2, 3}, []int{4}, []int{0, 1, 2, 3, 4})
	chosen, ok := Exact(target, coll)
	if !ok || !reflect.DeepEqual(chosen, []int{3}) {
		t.Fatalf("Exact = %v ok=%v, want [3]", chosen, ok)
	}
}

func TestExactNoCover(t *testing.T) {
	target := bitset.FromIndices(3, 0, 1, 2)
	if _, ok := Exact(target, sets(3, []int{0})); ok {
		t.Fatal("expected no cover")
	}
}

func TestUnionHelper(t *testing.T) {
	coll := sets(5, []int{0, 1}, []int{3})
	u := Union(5, coll, []int{0, 1})
	if !u.Equal(bitset.FromIndices(5, 0, 1, 3)) {
		t.Fatalf("Union = %v", u)
	}
}

// randomInstance generates a coverable instance: random sets plus singletons
// filling any gaps, so a cover always exists.
func randomInstance(rng *rand.Rand) (bitset.Set, []bitset.Set) {
	n := 3 + rng.Intn(10)
	target := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) > 0 {
			target.Add(i)
		}
	}
	numSets := 2 + rng.Intn(8)
	coll := make([]bitset.Set, 0, numSets+n)
	for s := 0; s < numSets; s++ {
		set := bitset.New(n)
		target.ForEach(func(i int) bool {
			if rng.Intn(3) == 0 {
				set.Add(i)
			}
			return true
		})
		coll = append(coll, set)
	}
	target.ForEach(func(i int) bool {
		coll = append(coll, bitset.FromIndices(n, i))
		return true
	})
	return target, coll
}

// TestQuickGreedyValidAndBounded: greedy always returns a valid exact cover
// and is never smaller than the exact optimum, and within the (1+ln n)
// Johnson bound of it.
func TestQuickGreedyValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target, coll := randomInstance(rng)
		g, gok := Greedy(target, coll)
		e, eok := Exact(target, coll)
		if !gok || !eok {
			return false
		}
		if !IsCover(target, coll, g) || !IsCover(target, coll, e) {
			return false
		}
		if len(e) > len(g) {
			return false // exact cannot be worse than greedy
		}
		// Johnson bound (loose integer form): |greedy| ≤ |opt| * (1 + ln n).
		n := target.Count()
		if n == 0 {
			return len(g) == 0
		}
		bound := float64(len(e)) * (1.0 + lnApprox(n))
		return float64(len(g)) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func lnApprox(n int) float64 {
	// Tiny ln via repeated halving; avoids importing math in the hot test.
	l := 0.0
	x := float64(n)
	for x > 1 {
		x /= 2
		l += 0.6931471805599453
	}
	return l
}

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 256
	target := bitset.New(n)
	for i := 0; i < n; i++ {
		target.Add(i)
	}
	coll := make([]bitset.Set, 64)
	for s := range coll {
		set := bitset.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				set.Add(i)
			}
		}
		coll[s] = set
	}
	for i := 0; i < n; i++ {
		coll = append(coll, bitset.FromIndices(n, i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(target, coll)
	}
}
