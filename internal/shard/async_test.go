package shard

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharedwd/internal/serr"
	"sharedwd/internal/server"
)

type collectComp struct {
	mu      sync.Mutex
	results []server.Result
	errs    []error
	fired   []int32
	wg      sync.WaitGroup
}

func newCollectComp(n int) *collectComp {
	c := &collectComp{
		results: make([]server.Result, n),
		errs:    make([]error, n),
		fired:   make([]int32, n),
	}
	c.wg.Add(n)
	return c
}

func (c *collectComp) Complete(i int, res server.Result, err error) {
	if n := atomic.AddInt32(&c.fired[i], 1); n != 1 {
		panic("completion fired twice for one item")
	}
	c.mu.Lock()
	c.results[i], c.errs[i] = res, err
	c.mu.Unlock()
	c.wg.Done()
}

// TestShardedSubmitAsync: the callback fast path routes every phrase to
// the worker owning it, results come back with global phrase IDs and the
// serving shard (matching the routing table), and an unmatched query
// refuses synchronously with ErrNoAuction.
func TestShardedSubmitAsync(t *testing.T) {
	w := testWorkload(t, 120, 16, 7)
	for _, shards := range []int{1, 2, 4} {
		s, err := New(w, testConfig(shards))
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		assign := s.Assignment()
		n := len(w.PhraseNames) + 1
		cc := newCollectComp(n)
		items := make([]server.AsyncItem, n)
		for q := 0; q < n-1; q++ {
			items[q] = server.AsyncItem{
				Query:    "  " + w.PhraseNames[q] + " ",
				Deadline: time.Now().Add(5 * time.Second),
				Done:     cc,
				Index:    q,
			}
		}
		items[n-1] = server.AsyncItem{Query: "no such phrase", Done: cc, Index: n - 1}
		s.SubmitAsync(items)
		cc.wg.Wait()

		for q := 0; q < n-1; q++ {
			if cc.errs[q] != nil {
				t.Fatalf("%d shards: phrase %d: %v", shards, q, cc.errs[q])
			}
			if cc.results[q].Phrase != q {
				t.Errorf("%d shards: result phrase %d, want global %d",
					shards, cc.results[q].Phrase, q)
			}
			if cc.results[q].Shard != assign[q] {
				t.Errorf("%d shards: phrase %d served by shard %d, routed to %d",
					shards, q, cc.results[q].Shard, assign[q])
			}
			if len(cc.results[q].Slots) == 0 {
				t.Errorf("%d shards: phrase %d: no slots", shards, q)
			}
		}
		if !errors.Is(cc.errs[n-1], serr.ErrNoAuction) {
			t.Fatalf("%d shards: unmatched item: %v, want ErrNoAuction", shards, cc.errs[n-1])
		}
		m := s.Metrics()
		if m.Unmatched != 1 {
			t.Errorf("%d shards: unmatched counter %d, want 1", shards, m.Unmatched)
		}
		s.Close()
	}
}

// TestShardedSubmitAsyncAfterClose: refusals on a closed fleet arrive
// synchronously with the bare ErrClosed sentinel, one per item.
func TestShardedSubmitAsyncAfterClose(t *testing.T) {
	w := testWorkload(t, 60, 8, 3)
	s, err := New(w, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	cc := newCollectComp(len(w.PhraseNames))
	items := make([]server.AsyncItem, len(w.PhraseNames))
	for q := range items {
		items[q] = server.AsyncItem{Query: w.PhraseNames[q], Done: cc, Index: q}
	}
	s.SubmitAsync(items)
	cc.wg.Wait()
	for q := range items {
		if !errors.Is(cc.errs[q], serr.ErrClosed) {
			t.Fatalf("phrase %d after Close: %v, want ErrClosed", q, cc.errs[q])
		}
	}
}
