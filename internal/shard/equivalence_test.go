package shard

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"sharedwd/internal/budget"
	"sharedwd/internal/core"
	"sharedwd/internal/workload"
)

// detOutcome is a pure click-fate function (splitmix64 over the display
// facts), so every simulator that displays the same ad in the same round
// sees the same click — the determinism the equivalence property needs.
// The price is deliberately excluded from the hash: it reflects budget
// state, which transiently differs between fleets at exhaustion edges, and
// hashing it would turn a one-ulp price difference into a flipped click
// fate that compounds. CTR comes from the immutable workload, so it adds
// per-slot variety without breaking alignment.
func detOutcome(horizon int) workload.OutcomeFunc {
	return func(adv int, price, ctr float64, round int) (bool, int) {
		x := uint64(adv)*0x9E3779B97F4A7C15 ^ math.Float64bits(ctr) ^ uint64(round)*0xBF58476D1CE4E5B9
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		clicked := float64(x>>40)/float64(1<<24) < ctr
		delay := 1 + int((x&0xFFFF)%uint64(horizon-1))
		return clicked, delay
	}
}

// shardedFleet is the equivalence tests' hand-built analogue of Server's
// engine layer: partitioned sub-workloads, one engine per shard, one
// central ledger — without the round loops, so rounds can be driven in
// lockstep with a single reference engine.
type shardedFleet struct {
	engines []*core.Engine
	idx     *workload.PartitionIndex
	ledger  *budget.Ledger
	pacer   *budget.Pacer
}

// newFleet builds the fleet; pcfg, when non-nil, attaches one shared
// pacing controller over the central ledger (plus ecfg.Lifecycle, if set)
// to every shard's engine — the production shard.New wiring.
func newFleet(t *testing.T, w *workload.Workload, shards int, router Router, ecfg core.Config, pcfg *budget.PacerConfig) *shardedFleet {
	t.Helper()
	assign, err := router.Assign(w, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebalance(assign, w.Rates, shards); err != nil {
		t.Fatal(err)
	}
	parts, idx, err := workload.Partition(w, assign, shards)
	if err != nil {
		t.Fatal(err)
	}
	budgets := make([]float64, len(w.Advertisers))
	for i, a := range w.Advertisers {
		budgets[i] = a.Budget
	}
	f := &shardedFleet{idx: idx, ledger: budget.NewLedger(budgets)}
	ecfg.Ledger = f.ledger
	if pcfg != nil {
		f.pacer, err = budget.NewPacer(f.ledger, budgets, *pcfg, ecfg.Lifecycle)
		if err != nil {
			t.Fatal(err)
		}
		ecfg.Pacer = f.pacer
	}
	for s := 0; s < shards; s++ {
		eng, err := core.New(parts[s], ecfg)
		if err != nil {
			t.Fatal(err)
		}
		f.engines = append(f.engines, eng)
	}
	return f
}

// step drives one lockstep round: the global occurrence vector is sliced
// per shard and every shard's engine steps concurrently (the round loops
// of the real server run on separate goroutines too, sharing only the
// ledger). Returns each shard's report.
func (f *shardedFleet) step(occ []bool) []core.RoundReport {
	occL := make([][]bool, len(f.engines))
	for s, eng := range f.engines {
		_ = eng
		occL[s] = make([]bool, len(f.idx.GlobalID[s]))
	}
	for q, on := range occ {
		if on {
			occL[f.idx.ShardOf[q]][f.idx.LocalID[q]] = true
		}
	}
	reps := make([]core.RoundReport, len(f.engines))
	var wg sync.WaitGroup
	for s := range f.engines {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			reps[s] = f.engines[s].Step(occL[s])
		}(s)
	}
	wg.Wait()
	return reps
}

func (f *shardedFleet) drain() {
	var wg sync.WaitGroup
	for _, eng := range f.engines {
		wg.Add(1)
		go func(eng *core.Engine) {
			defer wg.Done()
			eng.Drain()
		}(eng)
	}
	wg.Wait()
}

func equivalenceWorkloadConfig(minBudget, maxBudget float64) workload.Config {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 180
	wcfg.NumPhrases = 20
	wcfg.NumTopics = 4
	wcfg.Seed = 23
	wcfg.MinBudget, wcfg.MaxBudget = minBudget, maxBudget
	return wcfg
}

// TestShardedEquivalenceUnlimitedBudgets is the exactness half of the
// property: with budgets that never bind, a sharded fleet (any router,
// either budget policy, shards stepping concurrently) resolves every
// auction with exactly the winner sets and prices of one reference engine
// over the same workload and round sequence.
func TestShardedEquivalenceUnlimitedBudgets(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy core.BudgetPolicy
		router Router
		shards int
	}{
		{"naive/hash/4", core.Naive, HashRouter{}, 4},
		{"throttled/hash/4", core.Throttled, HashRouter{}, 4},
		{"throttled/fragment/3", core.Throttled, FragmentRouter{}, 3},
		{"naive/fragment/8", core.Naive, FragmentRouter{}, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wcfg := equivalenceWorkloadConfig(1e9, 1e9)
			ecfg := core.DefaultConfig()
			ecfg.Policy = tc.policy
			ecfg.ClickOutcome = detOutcome(ecfg.ClickHorizon)

			single, err := core.New(workload.Generate(wcfg), ecfg)
			if err != nil {
				t.Fatal(err)
			}
			wFleet := workload.Generate(wcfg)
			fleet := newFleet(t, wFleet, tc.shards, tc.router, ecfg, nil)

			occRng := rand.New(rand.NewSource(99))
			occ := make([]bool, wcfg.NumPhrases)
			for round := 0; round < 60; round++ {
				for q := range occ {
					occ[q] = occRng.Float64() < wFleet.Rates[q]
				}
				repS := single.Step(occ)
				reps := fleet.step(occ)
				for q, on := range occ {
					if !on {
						continue
					}
					sh, local := fleet.idx.ShardOf[q], fleet.idx.LocalID[q]
					want := repS.Auctions[q]
					got := reps[sh].Auctions[local]
					if len(want) != len(got) {
						t.Fatalf("round %d phrase %d: %d slots sharded vs %d single", round, q, len(got), len(want))
					}
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("round %d phrase %d slot %d: sharded %+v, single %+v", round, q, j, got[j], want[j])
						}
					}
				}
			}
			single.Drain()
			fleet.drain()
			if s, f := single.Stats(), totalStats(fleet); s.ClicksCharged != f.ClicksCharged || s.AdsDisplayed != f.AdsDisplayed {
				t.Fatalf("click accounting diverged: single %+v, fleet %+v", s, f)
			}
			singleSpend := single.Stats().Revenue
			if fleetSpend := fleet.ledger.TotalSpent(); math.Abs(singleSpend-fleetSpend) > 1e-6 {
				t.Fatalf("total spend %v sharded vs %v single", fleetSpend, singleSpend)
			}
		})
	}
}

func totalStats(f *shardedFleet) core.Stats {
	var total core.Stats
	for _, eng := range f.engines {
		total = total.Add(eng.Stats())
	}
	return total
}

// TestShardedEquivalenceBindingBudgets is the accounting half: when
// budgets bind, per-advertiser spend respects the budget exactly on both
// sides, and total spend matches within accounting order (the only
// divergence source: which of a round's simultaneous clicks hits an
// almost-empty budget first).
func TestShardedEquivalenceBindingBudgets(t *testing.T) {
	wcfg := equivalenceWorkloadConfig(1, 8)
	ecfg := core.DefaultConfig()
	ecfg.Policy = core.Naive // naive spends fastest: maximal budget-edge traffic
	ecfg.ClickOutcome = detOutcome(ecfg.ClickHorizon)

	wSingle := workload.Generate(wcfg)
	budgets := make([]float64, len(wSingle.Advertisers))
	for i, a := range wSingle.Advertisers {
		budgets[i] = a.Budget
	}
	single, err := core.New(wSingle, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	wFleet := workload.Generate(wcfg)
	fleet := newFleet(t, wFleet, 4, HashRouter{}, ecfg, nil)

	occRng := rand.New(rand.NewSource(99))
	occ := make([]bool, wcfg.NumPhrases)
	for round := 0; round < 80; round++ {
		for q := range occ {
			occ[q] = occRng.Float64() < wFleet.Rates[q]
		}
		single.Step(occ)
		fleet.step(occ)
	}
	single.Drain()
	fleet.drain()

	for i, b := range budgets {
		if got := single.Spent(i); got > b+1e-9 {
			t.Fatalf("single: advertiser %d spent %v over budget %v", i, got, b)
		}
		if got := fleet.ledger.Spent(i); got > b+1e-9 {
			t.Fatalf("sharded: advertiser %d spent %v over budget %v", i, got, b)
		}
	}
	singleSpend := single.Stats().Revenue
	fleetSpend := fleet.ledger.TotalSpent()
	if singleSpend <= 0 || fleetSpend <= 0 {
		t.Fatalf("degenerate run: spend %v single, %v sharded", singleSpend, fleetSpend)
	}
	// Budget-edge charge order is the only divergence; it is a per-click
	// effect, not a drift, so totals stay within a few percent.
	tol := 0.05*math.Max(singleSpend, fleetSpend) + 1
	if diff := math.Abs(singleSpend - fleetSpend); diff > tol {
		t.Fatalf("total spend diverged: single %v, sharded %v (diff %v > tol %v)", singleSpend, fleetSpend, diff, tol)
	}
}

// TestShardedEquivalencePacing: with the pacing controller engaged —
// horizon chosen so the target curve binds (factors drop below 1) while
// budgets never do — a sharded fleet's shared controller paces exactly
// like a single engine's. Every engine syncs the controller at the top of
// its Step before charging, so factors for round t are a pure function of
// spend settled through t−1 on both sides; per-advertiser spend and
// terminal factors agree to floating-point accumulation order. A lifecycle
// schedule (join, leave) rides along to pin that engines replay it
// identically across the partition.
func TestShardedEquivalencePacing(t *testing.T) {
	wcfg := equivalenceWorkloadConfig(1e6, 2e6) // never binds over the run
	ecfg := core.DefaultConfig()
	ecfg.Policy = core.Naive
	ecfg.ClickOutcome = detOutcome(ecfg.ClickHorizon)

	// Per-round target = budget/horizon ≈ 0.002–0.004: any advertiser whose
	// ads get clicked at all outspends its curve, so throttling engages.
	pcfg := budget.DefaultPacerConfig()
	pcfg.Horizon = 5e8

	wSingle := workload.Generate(wcfg)
	lc, err := workload.NewLifecycle(len(wSingle.Advertisers), []workload.LifecycleEvent{
		{Round: 10, Kind: workload.LifecycleJoin, Advertiser: 3},
		{Round: 25, Kind: workload.LifecycleLeave, Advertiser: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	ecfg.Lifecycle = lc

	budgets := make([]float64, len(wSingle.Advertisers))
	for i, a := range wSingle.Advertisers {
		budgets[i] = a.Budget
	}
	singleLedger := budget.NewLedger(budgets)
	singlePacer, err := budget.NewPacer(singleLedger, budgets, pcfg, lc)
	if err != nil {
		t.Fatal(err)
	}
	scfg := ecfg
	scfg.Ledger = singleLedger
	scfg.Pacer = singlePacer
	single, err := core.New(wSingle, scfg)
	if err != nil {
		t.Fatal(err)
	}

	wFleet := workload.Generate(wcfg)
	fleet := newFleet(t, wFleet, 4, HashRouter{}, ecfg, &pcfg)

	occRng := rand.New(rand.NewSource(99))
	occ := make([]bool, wcfg.NumPhrases)
	for round := 0; round < 60; round++ {
		for q := range occ {
			occ[q] = occRng.Float64() < wFleet.Rates[q]
		}
		single.Step(occ)
		fleet.step(occ)
	}

	// Factors are a pure function of spend settled through the previous
	// round, so under lockstep stepping they agree exactly. (Drain below
	// advances each shard's rounds without a barrier, so factors computed
	// during drain may see mid-round spend — compare before.)
	for i := range budgets {
		sf, ff := singlePacer.Factor(i), fleet.pacer.Factor(i)
		if math.Abs(sf-ff) > 1e-6 {
			t.Fatalf("advertiser %d: factor %v single vs %v sharded", i, sf, ff)
		}
	}
	// The run must actually have engaged the machinery it claims to test.
	m := fleet.pacer.Metrics()

	single.Drain()
	fleet.drain()

	if s, f := single.Stats(), totalStats(fleet); s.ClicksCharged != f.ClicksCharged || s.AdsDisplayed != f.AdsDisplayed {
		t.Fatalf("click accounting diverged: single %+v, fleet %+v", s, f)
	}
	for i := range budgets {
		ss, fs := singleLedger.Spent(i), fleet.ledger.Spent(i)
		if math.Abs(ss-fs) > 1e-6 {
			t.Fatalf("advertiser %d: spent %v single vs %v sharded", i, ss, fs)
		}
	}
	if m.Throttled == 0 {
		t.Fatal("no advertiser was throttled — the target curve never bound")
	}
	if fleet.pacer.Factor(7) != 0 {
		t.Fatalf("left advertiser's factor = %v, want 0", fleet.pacer.Factor(7))
	}
	if m.Active != len(budgets)-1 {
		t.Fatalf("active = %d, want %d (one join, one leave)", m.Active, len(budgets)-1)
	}
	if fleet.ledger.TotalSpent() <= 0 {
		t.Fatal("degenerate run: no spend")
	}
}
