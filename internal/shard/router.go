package shard

import (
	"fmt"
	"hash/fnv"

	"sharedwd/internal/plan"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/workload"
)

// Router decides which engine shard owns each bid phrase. Assign returns
// one shard in [0, shards) per phrase of the workload. Routing is computed
// once at construction (the phrase universe is fixed for a serving day), so
// implementations may take global views; they should be deterministic for
// a given workload. New rebalances assignments that leave shards empty, so
// routers need not guarantee non-emptiness themselves.
type Router interface {
	Assign(w *workload.Workload, shards int) ([]int, error)
}

// HashRouter is the stable default: FNV-1a over the normalized phrase name,
// modulo the shard count. A phrase's shard depends only on its name and the
// shard count — not on workload statistics — so assignments survive
// workload regeneration and match what an external load balancer computing
// the same hash would pick.
type HashRouter struct{}

// Assign routes each phrase by name hash.
func (HashRouter) Assign(w *workload.Workload, shards int) ([]int, error) {
	assign := make([]int, len(w.PhraseNames))
	for q, name := range w.PhraseNames {
		h := fnv.New64a()
		h.Write([]byte(workload.Normalize(name)))
		assign[q] = int(h.Sum64() % uint64(shards))
	}
	return assign, nil
}

// FragmentRouter is the sharing-aware partitioner: it groups the
// workload's phrases so that phrases sharing a Section II plan fragment
// (advertisers with identical phrase-membership signatures) co-locate on a
// shard, balanced by expected load. Cross-shard sharing is lost by
// construction — each shard builds its own plan — so keeping fragment
// cliques together preserves most of the single-plan sharing the paper's
// heuristic finds (see sharedagg.PartitionQueries).
type FragmentRouter struct{}

// Assign partitions phrases by fragment affinity.
func (FragmentRouter) Assign(w *workload.Workload, shards int) ([]int, error) {
	queries := make([]plan.Query, len(w.Interests))
	for q := range w.Interests {
		queries[q] = plan.Query{Vars: w.Interests[q], Rate: w.Rates[q]}
	}
	inst, err := plan.NewInstance(len(w.Advertisers), queries)
	if err != nil {
		return nil, fmt.Errorf("shard: building plan instance for fragment routing: %w", err)
	}
	return sharedagg.PartitionQueries(inst, shards), nil
}

// rebalance ensures every shard owns at least one phrase by moving the
// lowest-rate phrases off the most-populated shards into empty ones. The
// input is validated (length, range) and mutated in place.
func rebalance(assign []int, rates []float64, shards int) error {
	if len(assign) != len(rates) {
		return fmt.Errorf("shard: router assigned %d phrases, workload has %d", len(assign), len(rates))
	}
	if len(assign) < shards {
		return fmt.Errorf("shard: %d phrases cannot populate %d shards", len(assign), shards)
	}
	count := make([]int, shards)
	for q, s := range assign {
		if s < 0 || s >= shards {
			return fmt.Errorf("shard: router assigned phrase %d to shard %d of %d", q, s, shards)
		}
		count[s]++
	}
	for s := 0; s < shards; s++ {
		if count[s] > 0 {
			continue
		}
		victim := -1
		for q, d := range assign {
			if count[d] > 1 && (victim == -1 || rates[q] < rates[victim]) {
				victim = q
			}
		}
		if victim == -1 {
			return fmt.Errorf("shard: cannot populate shard %d", s)
		}
		count[assign[victim]]--
		assign[victim] = s
		count[s]++
	}
	return nil
}
