// Package shard scales the round server across cores: a Server partitions
// the bid-phrase universe over N engine shards, each a server.Worker — its
// own bounded admission queue and round loop pinned to its own
// core.Engine — so rounds for different phrase partitions close
// independently and in parallel:
//
//	        ┌─▶ worker 0: queue ─▶ round loop ─▶ Engine (phrases of shard 0) ─┐
//	Submit ─┼─▶ worker 1: queue ─▶ round loop ─▶ Engine (phrases of shard 1) ─┼─▶ budget.Ledger
//	        └─▶ worker N: queue ─▶ round loop ─▶ Engine (phrases of shard N) ─┘   (atomic TryCharge)
//
// Queries route by phrase: a Router fixes each phrase's shard at
// construction (stable name hash by default; FragmentRouter co-locates
// phrases sharing Section II plan fragments to preserve intra-shard
// sharing). Winner determination never crosses a shard — each auction's
// advertisers are evaluated on the shard owning its phrase — but
// advertiser budgets do: all shards charge clicks against one central
// budget.Ledger whose combined atomic reserve/settle keeps the Section IV
// invariant (spend ≤ budget) globally exact. The per-shard throttled bid
// uses the ledger's global remaining budget with shard-local outstanding
// ads, an approximation that errs toward over-throttling when an
// advertiser has exposure on other shards; accounting itself is never
// approximate.
//
// Thread safety: Server is safe for concurrent use — any number of
// goroutines may call Submit and Metrics while the round loops run. Close
// drains all workers concurrently.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sharedwd/internal/budget"
	"sharedwd/internal/serr"
	"sharedwd/internal/server"
	"sharedwd/internal/workload"
)

// Config parameterizes the sharded server. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Worker configures every shard's round loop and engine (round
	// interval, batch threshold, queue depth — each shard gets its own
	// queue of this depth). Worker.Engine.Ledger is overwritten with the
	// server's central ledger.
	Worker server.Config
	// Shards is the number of engine shards (≥ 1).
	Shards int
	// Router fixes the phrase → shard assignment; nil means HashRouter.
	Router Router
	// TotalWorkers, when > 0, is a core budget split across the shards:
	// each shard's engine gets TotalWorkers/Shards pool workers (the first
	// TotalWorkers%Shards shards get one extra; every shard gets at least
	// one), overriding Worker.Engine.Workers. It makes shards × workers
	// trade-offs explicit — the same budget can run as many single-worker
	// shards or as one shard with a wide pool (see BenchmarkParallelScaling).
	// Zero leaves Worker.Engine.Workers as configured for every shard.
	TotalWorkers int
}

// DefaultConfig returns the per-worker DefaultConfig across one shard per
// available CPU.
func DefaultConfig() Config {
	return Config{
		Worker: server.DefaultConfig(),
		Shards: runtime.GOMAXPROCS(0),
	}
}

// Validate reports whether the sharded configuration is usable.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("shard: non-positive shard count %d", c.Shards)
	}
	if c.TotalWorkers < 0 {
		return fmt.Errorf("shard: negative total worker budget %d", c.TotalWorkers)
	}
	return c.Worker.Validate()
}

// Server is the multi-core serving front end: a partitioned matcher
// routing raw queries to per-shard workers, with cross-shard budgets held
// exact by a central ledger. It is safe for concurrent use by multiple
// goroutines.
type Server struct {
	cfg     Config
	workers []*server.Worker
	matcher *workload.PartitionedMatcher
	idx     *workload.PartitionIndex
	ledger  *budget.Ledger
	pacer   *budget.Pacer

	unmatched atomic.Int64
}

// The sharded server implements the canonical fleet-facing contract and
// the callback fast path.
var (
	_ server.Backend      = (*Server)(nil)
	_ server.AsyncBackend = (*Server)(nil)
)

// New partitions the workload, builds one engine + round loop per shard,
// and starts serving. The server takes ownership of the workload. Close
// must be called to release the loops.
func New(w *workload.Workload, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	router := cfg.Router
	if router == nil {
		router = HashRouter{}
	}
	assign, err := router.Assign(w, cfg.Shards)
	if err != nil {
		return nil, err
	}
	if err := rebalance(assign, w.Rates, cfg.Shards); err != nil {
		return nil, err
	}
	parts, idx, err := workload.Partition(w, assign, cfg.Shards)
	if err != nil {
		return nil, err
	}
	budgets := make([]float64, len(w.Advertisers))
	for i, a := range w.Advertisers {
		budgets[i] = a.Budget
	}
	s := &Server{
		cfg:     cfg,
		workers: make([]*server.Worker, cfg.Shards),
		matcher: workload.NewPartitionedMatcher(w.PhraseNames, idx),
		idx:     idx,
		ledger:  budget.NewLedger(budgets),
	}
	wcfg := cfg.Worker
	wcfg.Engine.Ledger = s.ledger
	wcfg.Engine.Lifecycle = wcfg.Lifecycle
	if wcfg.Pacing != nil {
		// One pacing controller for the whole fleet, over the central
		// ledger: every shard's engine syncs it at its round boundary (the
		// sync is round-gated and idempotent, so whichever shard arrives
		// first performs it) and reads the same published factors. Spend is
		// globally exact through the ledger, so pacing state survives
		// sharding without per-shard drift.
		pacer, err := budget.NewPacer(s.ledger, budgets, *wcfg.Pacing, wcfg.Lifecycle)
		if err != nil {
			return nil, err
		}
		s.pacer = pacer
		wcfg.Engine.Pacer = pacer
	}
	for sh := range s.workers {
		if cfg.TotalWorkers > 0 {
			wcfg.Engine.Workers = cfg.TotalWorkers / cfg.Shards
			if sh < cfg.TotalWorkers%cfg.Shards {
				wcfg.Engine.Workers++
			}
			if wcfg.Engine.Workers < 1 {
				wcfg.Engine.Workers = 1
			}
		}
		// Each shard's worker reports observed rates under global phrase
		// IDs, so fleet-wide merges of replanning metrics line up. Each
		// shard replans independently: its planner sees only its own
		// partition's traffic, which is exactly the plan it owns.
		wcfg.PhraseIDs = idx.GlobalID[sh]
		// RoundSummary events (Config.OnRound) carry the shard that closed
		// the round; every shard shares the one configured hook.
		wcfg.ShardID = sh
		wk, err := server.NewWorker(parts[sh], wcfg)
		if err != nil {
			// Drain the workers already started before reporting failure.
			for _, started := range s.workers[:sh] {
				started.Close()
			}
			return nil, err
		}
		s.workers[sh] = wk
	}
	return s, nil
}

// Shards returns the number of engine shards.
func (s *Server) Shards() int { return len(s.workers) }

// Assignment returns a copy of the phrase → shard routing table.
func (s *Server) Assignment() []int {
	return append([]int(nil), s.idx.ShardOf...)
}

// Ledger exposes the central budget ledger for accounting reads (Remaining,
// Spent) and mid-run Deposit top-ups. Safe for concurrent use.
func (s *Server) Ledger() *budget.Ledger { return s.ledger }

// Pacer returns the fleet's shared pacing controller, nil when pacing is
// off. Safe for concurrent use.
func (s *Server) Pacer() *budget.Pacer { return s.pacer }

// Matcher exposes the partitioned query matcher so callers can register
// rewrites before serving traffic; AddRewrite is not safe concurrently
// with Submit.
func (s *Server) Matcher() *workload.PartitionedMatcher { return s.matcher }

// Submit admits one raw query, routes it to the shard owning its phrase,
// and blocks until that shard's round resolves. The result carries the
// global phrase ID and the serving shard. Failures with routing context
// are wrapped in *serr.QueryError; errors.Is against the sentinels
// (ErrNoAuction, ErrOverloaded, ErrClosed) and context errors matches
// through the wrapper. Safe for concurrent use.
func (s *Server) Submit(ctx context.Context, query string) (server.Result, error) {
	sh, local, global, ok := s.matcher.Match(query)
	if !ok {
		s.unmatched.Add(1)
		return server.Result{}, serr.ErrNoAuction
	}
	res, err := s.workers[sh].SubmitPhrase(ctx, local)
	if err != nil {
		return server.Result{}, serr.Wrap(sh, global, err)
	}
	res.Phrase = global
	res.Shard = sh
	return res, nil
}

// SubmitBatch admits many raw queries at once, routes each to the shard
// owning its phrase, and blocks until every one resolves or fails — the
// Backend batch contract. Queries are grouped by shard and each group is
// admitted in one pass (one goroutine per touched shard, not per query),
// so a batch lands in at most one round per shard. The returned slice
// always has len(queries) with global phrase IDs and serving shards filled
// in; the error is nil when all succeeded, otherwise it joins one
// *serr.ItemError per failed query, each wrapping shard/phrase context as
// *serr.QueryError (expand with serr.SplitBatch). Safe for concurrent use.
func (s *Server) SubmitBatch(ctx context.Context, queries []string) ([]server.Result, error) {
	results := make([]server.Result, len(queries))
	errs := make([]error, len(queries))
	// Group matched queries by shard, preserving batch order within each
	// group so replies map back positionally.
	type group struct {
		phrases []int // shard-local phrase IDs
		globals []int // matching global phrase IDs
		at      []int // batch index of each entry
	}
	groups := make(map[int]*group)
	for i, q := range queries {
		sh, local, global, ok := s.matcher.Match(q)
		if !ok {
			s.unmatched.Add(1)
			errs[i] = serr.ErrNoAuction
			continue
		}
		g := groups[sh]
		if g == nil {
			g = &group{}
			groups[sh] = g
		}
		g.phrases = append(g.phrases, local)
		g.globals = append(g.globals, global)
		g.at = append(g.at, i)
	}
	var wg sync.WaitGroup
	for sh, g := range groups {
		wg.Add(1)
		go func(sh int, g *group) {
			defer wg.Done()
			sub := make([]server.Result, len(g.phrases))
			suberrs := make([]error, len(g.phrases))
			s.workers[sh].SubmitPhrases(ctx, g.phrases, sub, suberrs)
			for j, i := range g.at {
				if suberrs[j] != nil {
					errs[i] = serr.Wrap(sh, g.globals[j], suberrs[j])
					continue
				}
				sub[j].Phrase = g.globals[j]
				sub[j].Shard = sh
				results[i] = sub[j]
			}
		}(sh, g)
	}
	wg.Wait()
	return results, serr.JoinBatch(errs)
}

// SubmitAsync admits a batch of queries on the callback fast path — the
// server.AsyncBackend contract: each item routes straight into the worker
// of the shard owning its phrase with no blocking, no per-query goroutine,
// and no per-shard grouping pass; results carry the global phrase ID and
// serving shard. Outcomes are delivered exactly once through each item's
// Completion — synchronously for refusals, from the owning shard's round
// loop otherwise. Unlike Submit, refusal errors are the bare serr
// sentinels without *serr.QueryError routing context (errors.Is matches
// either way). Safe for concurrent use.
func (s *Server) SubmitAsync(items []server.AsyncItem) {
	now := time.Now()
	for i := range items {
		it := &items[i]
		sh, local, global, ok := s.matcher.Match(it.Query)
		if !ok {
			s.unmatched.Add(1)
			it.Done.Complete(it.Index, server.Result{}, serr.ErrNoAuction)
			continue
		}
		s.workers[sh].SubmitPhraseAsync(local, global, it.Deadline, now, it.Done, it.Index)
	}
}

// Metrics returns the fleet-wide aggregate of every shard's counters and
// latency distributions (see server.Metrics.Merge). Safe for concurrent
// use with Submit and the round loops.
func (s *Server) Metrics() server.Metrics {
	m := s.workers[0].Metrics()
	for _, wk := range s.workers[1:] {
		m = m.Merge(wk.Metrics())
	}
	m.Unmatched = s.unmatched.Load()
	m.Submitted += m.Unmatched // unmatched queries never reach a worker
	if s.pacer != nil {
		// The controller is shared fleet-wide; attach its snapshot once
		// rather than summing per worker.
		m.Pacing = s.pacer.Metrics()
	}
	return m
}

// ShardMetrics returns one shard's own metrics, for per-shard dashboards
// and balance inspection.
func (s *Server) ShardMetrics(shard int) server.Metrics {
	return s.workers[shard].Metrics()
}

// Close stops admission on every shard and drains them concurrently: each
// worker resolves its in-flight requests in a final round and settles its
// outstanding clicks against the ledger. Close returns when the last
// worker's loop has exited; it is idempotent and safe to call
// concurrently.
func (s *Server) Close() {
	var wg sync.WaitGroup
	for _, wk := range s.workers {
		wg.Add(1)
		go func(wk *server.Worker) {
			defer wg.Done()
			wk.Close()
		}(wk)
	}
	wg.Wait()
}
