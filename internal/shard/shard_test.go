package shard

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"sharedwd/internal/replan"
	"sharedwd/internal/serr"
	"sharedwd/internal/server"
	"sharedwd/internal/workload"
)

func testWorkload(t *testing.T, advertisers, phrases int, seed int64) *workload.Workload {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = advertisers
	wcfg.NumPhrases = phrases
	wcfg.NumTopics = 4
	wcfg.Seed = seed
	return workload.Generate(wcfg)
}

func testConfig(shards int) Config {
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.Worker.RoundInterval = 2 * time.Millisecond
	cfg.Worker.MaxBatch = 64
	cfg.Worker.QueueDepth = 256
	return cfg
}

func TestShardedConfigValidate(t *testing.T) {
	cfg := testConfig(0)
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted zero shards")
	}
	cfg = testConfig(2)
	cfg.Worker.RoundInterval = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted invalid worker config")
	}
	if _, err := New(testWorkload(t, 60, 8, 3), cfg); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

// TestShardedServesQueries: every phrase is servable, results carry global
// phrase IDs and the serving shard, and winners are advertisers interested
// in the (global) phrase.
func TestShardedServesQueries(t *testing.T) {
	w := testWorkload(t, 120, 16, 7)
	for _, shards := range []int{1, 2, 4} {
		s, err := New(w, testConfig(shards))
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		assign := s.Assignment()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		var wg sync.WaitGroup
		results := make([]server.Result, len(w.PhraseNames))
		errs := make([]error, len(w.PhraseNames))
		for q := range w.PhraseNames {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				results[q], errs[q] = s.Submit(ctx, "  "+w.PhraseNames[q]+" ")
			}(q)
		}
		wg.Wait()
		cancel()
		for q := range results {
			if errs[q] != nil {
				t.Fatalf("%d shards: phrase %d: %v", shards, q, errs[q])
			}
			if results[q].Phrase != q {
				t.Errorf("%d shards: result phrase %d, want global %d", shards, results[q].Phrase, q)
			}
			if results[q].Shard != assign[q] {
				t.Errorf("%d shards: phrase %d served by shard %d, assigned %d", shards, q, results[q].Shard, assign[q])
			}
			if len(results[q].Slots) == 0 {
				t.Errorf("%d shards: phrase %d got no slots", shards, q)
			}
			for _, sl := range results[q].Slots {
				if !w.Interests[q].Contains(sl.Advertiser) {
					t.Errorf("%d shards: phrase %d winner %d not interested", shards, q, sl.Advertiser)
				}
			}
		}
		m := s.Metrics()
		if m.Answered != int64(len(w.PhraseNames)) {
			t.Errorf("%d shards: Answered = %d, want %d", shards, m.Answered, len(w.PhraseNames))
		}
		if m.TotalLatency.Count() != len(w.PhraseNames) {
			t.Errorf("%d shards: latency count = %d", shards, m.TotalLatency.Count())
		}
		s.Close()
	}
}

// TestShardedErrorContract: failures carry shard and phrase context through
// *serr.QueryError while errors.Is still matches the sentinels; unmatched
// queries return the bare sentinel (no routing context exists).
func TestShardedErrorContract(t *testing.T) {
	w := testWorkload(t, 60, 8, 5)
	s, err := New(w, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Submit(context.Background(), "zzz nothing"); !errors.Is(err, serr.ErrNoAuction) {
		t.Fatalf("unmatched = %v, want ErrNoAuction", err)
	}
	if got := s.Metrics().Unmatched; got != 1 {
		t.Fatalf("Unmatched = %d, want 1", got)
	}

	s.Close()
	_, err = s.Submit(context.Background(), w.PhraseNames[3])
	if !errors.Is(err, serr.ErrClosed) {
		t.Fatalf("after close = %v, want ErrClosed", err)
	}
	var qe *serr.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("error %T lacks QueryError context", err)
	}
	if qe.Phrase != 3 {
		t.Fatalf("QueryError.Phrase = %d, want global 3", qe.Phrase)
	}
	if want := s.Assignment()[3]; qe.Shard != want {
		t.Fatalf("QueryError.Shard = %d, want %d", qe.Shard, want)
	}
}

// TestShardedRouters: both routers produce full-range, deterministic,
// non-empty assignments, and the fragment router serves traffic end to end.
func TestShardedRouters(t *testing.T) {
	w := testWorkload(t, 80, 12, 9)
	for name, r := range map[string]Router{"hash": HashRouter{}, "fragment": FragmentRouter{}} {
		a1, err := r.Assign(w, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a2, _ := r.Assign(w, 4)
		for q := range a1 {
			if a1[q] != a2[q] {
				t.Fatalf("%s: non-deterministic assignment at phrase %d", name, q)
			}
			if a1[q] < 0 || a1[q] >= 4 {
				t.Fatalf("%s: phrase %d out of range: %d", name, q, a1[q])
			}
		}
	}

	cfg := testConfig(3)
	cfg.Router = FragmentRouter{}
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	seen := make(map[int]bool)
	for _, sh := range s.Assignment() {
		seen[sh] = true
	}
	if len(seen) != 3 {
		t.Fatalf("fragment routing left shards empty: %v", s.Assignment())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := s.Submit(ctx, w.PhraseNames[0]); err != nil {
		t.Fatal(err)
	}
}

// TestShardedBudgetContention: all shards hammer auctions whose winners
// share tight budgets. The run must not deadlock, the ledger's Section IV
// invariant must hold for every advertiser, and the engines' summed revenue
// must equal the ledger's settled total exactly (same charges, same order
// of accounting within each advertiser).
func TestShardedBudgetContention(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 60
	wcfg.NumPhrases = 12
	wcfg.NumTopics = 3
	wcfg.MinBudget, wcfg.MaxBudget = 2, 15 // budgets bind quickly
	wcfg.Seed = 13
	w := workload.Generate(wcfg)
	budgets := make([]float64, len(w.Advertisers))
	for i, a := range w.Advertisers {
		budgets[i] = a.Budget
	}

	cfg := testConfig(4)
	cfg.Worker.RoundInterval = 500 * time.Microsecond
	cfg.Worker.MaxBatch = 16
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, _ = s.Submit(ctx, w.PhraseNames[(g*5+i)%len(w.PhraseNames)])
			}
		}(g)
	}
	wg.Wait()
	s.Close()

	ledger := s.Ledger()
	for i, b := range budgets {
		if spent := ledger.Spent(i); spent > b+1e-9 {
			t.Fatalf("advertiser %d spent %v over budget %v", i, spent, b)
		}
		if rem := ledger.Remaining(i); rem < 0 {
			t.Fatalf("advertiser %d negative remaining %v", i, rem)
		}
	}
	m := s.Metrics()
	if m.Engine.ClicksCharged == 0 {
		t.Fatal("no clicks charged under contention load")
	}
	if math.Abs(m.Engine.Revenue-ledger.TotalSpent()) > 1e-6 {
		t.Fatalf("engines booked %v revenue, ledger settled %v", m.Engine.Revenue, ledger.TotalSpent())
	}
}

// TestShardedCloseIdempotent: concurrent Closes are safe and return.
func TestShardedCloseIdempotent(t *testing.T) {
	s, err := New(testWorkload(t, 60, 8, 17), testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Close() }()
	}
	wg.Wait()
}

// TestRebalance: empty shards are filled by moving the lowest-rate phrases
// off multi-phrase shards; impossible configurations are rejected.
func TestRebalance(t *testing.T) {
	assign := []int{0, 0, 0, 0}
	rates := []float64{0.9, 0.1, 0.5, 0.7}
	if err := rebalance(assign, rates, 3); err != nil {
		t.Fatal(err)
	}
	count := make([]int, 3)
	for _, s := range assign {
		count[s]++
	}
	for s, c := range count {
		if c == 0 {
			t.Fatalf("shard %d still empty: %v", s, assign)
		}
	}
	if assign[0] != 0 {
		t.Fatalf("highest-rate phrase moved: %v", assign)
	}

	if err := rebalance([]int{0}, []float64{1}, 2); err == nil {
		t.Fatal("accepted fewer phrases than shards")
	}
	if err := rebalance([]int{5}, []float64{1}, 2); err == nil {
		t.Fatal("accepted out-of-range assignment")
	}
	if err := rebalance([]int{0, 0}, []float64{1}, 2); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

// TestShardedReplanHotSwap is the hot-swap stress test CI runs under -race:
// every shard replans aggressively while concurrent clients hammer a phrase
// subset far from the planned rates, so background plan builds, round-loop
// installs, admission, and Metrics reads all overlap. The run must stay
// data-race free, keep answering, and actually swap plans on at least one
// shard.
func TestShardedReplanHotSwap(t *testing.T) {
	w := testWorkload(t, 150, 16, 23)
	cfg := testConfig(4)
	cfg.Worker.RoundInterval = 500 * time.Microsecond
	cfg.Worker.MaxBatch = 32
	cfg.Worker.Replan = &replan.Config{
		Alpha:          0.2,
		WarmupRounds:   20,
		CheckEvery:     5,
		MaxRatio:       1.5,
		MinKL:          0.02,
		CooldownRounds: 20,
		RateFloor:      0.01,
	}
	s, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Drifted traffic: only every fourth phrase ever arrives, so the
	// observed rates on every shard diverge from the planned ones fast.
	var hot []string
	for q, name := range w.PhraseNames {
		if q%4 == 0 {
			hot = append(hot, name)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = s.Submit(ctx, hot[(g+i)%len(hot)])
			}
		}(g)
	}
	// Poll fleet metrics concurrently with the swaps until one lands (or
	// the deadline shows something is stuck).
	deadline := time.Now().Add(15 * time.Second)
	var m server.Metrics
	for {
		m = s.Metrics()
		if m.PlanSwaps > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	s.Close()

	m = s.Metrics()
	if m.PlanSwaps == 0 {
		t.Fatalf("no plan swaps under sustained drift: %+v", m)
	}
	if m.ReplanBuilds < m.PlanSwaps {
		t.Fatalf("swaps (%d) exceed builds (%d)", m.PlanSwaps, m.ReplanBuilds)
	}
	if m.PlanSwapLatency.N() != int(m.PlanSwaps) {
		t.Fatalf("swap latency samples %d, swaps %d", m.PlanSwapLatency.N(), m.PlanSwaps)
	}
	if m.Answered == 0 {
		t.Fatal("nothing answered while replanning")
	}
	// Observed rates report under global phrase IDs, each exactly once.
	if len(m.Observed) != len(w.PhraseNames) {
		t.Fatalf("observed %d phrases, want %d", len(m.Observed), len(w.PhraseNames))
	}
	seen := make(map[int]bool)
	for _, rs := range m.Observed {
		if rs.Phrase < 0 || rs.Phrase >= len(w.PhraseNames) || seen[rs.Phrase] {
			t.Fatalf("bad observed sample %+v", rs)
		}
		seen[rs.Phrase] = true
	}
}
