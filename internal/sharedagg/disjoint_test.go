package sharedagg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sharedwd/internal/plan"
)

// TestQuickDisjointPlansSumCorrectly: BuildDisjoint plans evaluate the
// non-idempotent sum aggregate exactly — every variable reaches each query
// once — while Build plans are only guaranteed for idempotent operators.
// This is the Figure-5 semilattice/Abelian-group distinction in executable
// form.
func TestQuickDisjointPlansSumCorrectly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := plan.RandomCoinFlipInstance(rng, 4+rng.Intn(16), 2+rng.Intn(6), 1)
		p := BuildDisjoint(inst)
		if p.Validate() != nil || !p.DisjointChildren() {
			return false
		}
		vals := make([]float64, inst.NumVars)
		for i := range vals {
			vals[i] = rng.Float64() * 10
		}
		results, _ := plan.Execute(p,
			func(v int) float64 { return vals[v] },
			func(a, b float64) float64 { return a + b }, nil)
		for qi, q := range inst.Queries {
			want := 0.0
			q.Vars.ForEach(func(v int) bool {
				want += vals[v]
				return true
			})
			if diff := results[qi] - want; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDisjointNeverBeatsUnrestricted: the disjoint constraint can only
// reduce sharing opportunities, so total cost is at least Build's... in
// principle; the window-capped greedy is a heuristic, so we only assert
// both beat the naive baseline and disjointness holds.
func TestQuickDisjointCostBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := plan.RandomCoinFlipInstance(rng, 4+rng.Intn(12), 2+rng.Intn(5), 1)
		d := BuildDisjoint(inst)
		if !d.DisjointChildren() {
			return false
		}
		return d.TotalCost() <= plan.NaivePlan(inst).TotalCost()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestUnrestrictedPlansCanOverlap documents why BuildDisjoint exists: find
// an instance where Build produces an overlapping aggregation, which would
// double-count under sum.
func TestUnrestrictedPlansCanOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	foundOverlap := false
	for trial := 0; trial < 300 && !foundOverlap; trial++ {
		inst := plan.RandomCoinFlipInstance(rng, 6+rng.Intn(10), 3+rng.Intn(4), 1)
		if !Build(inst).DisjointChildren() {
			foundOverlap = true
		}
	}
	if !foundOverlap {
		t.Skip("no overlapping plan found in 300 trials; Build happened to stay disjoint")
	}
}

func TestShoeStoreDisjoint(t *testing.T) {
	// On the shoe-store structure the disjoint plan is exactly as good as
	// the unrestricted one: fragments partition both queries.
	inst := shoeStoreInstance()
	d := BuildDisjoint(inst)
	u := Build(inst)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.DisjointChildren() {
		t.Fatal("disjoint plan has overlapping nodes")
	}
	if d.TotalCost() != u.TotalCost() {
		t.Fatalf("disjoint cost %d != unrestricted %d on partition-friendly structure",
			d.TotalCost(), u.TotalCost())
	}
}

// shoeStoreInstance builds the §II-B example instance (shared with
// sharedagg_test.go's constants).
func shoeStoreInstance() *plan.Instance {
	const general, sports, fashion = 200, 40, 30
	n := general + sports + fashion
	boots := make([]int, 0, general+sports)
	heels := make([]int, 0, general+fashion)
	for i := 0; i < general; i++ {
		boots = append(boots, i)
		heels = append(heels, i)
	}
	for i := general; i < general+sports; i++ {
		boots = append(boots, i)
	}
	for i := general + sports; i < n; i++ {
		heels = append(heels, i)
	}
	return plan.MustInstance(n, []plan.Query{
		q(n, 1, boots...),
		q(n, 1, heels...),
	})
}
