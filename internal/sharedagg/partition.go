package sharedagg

import (
	"sort"

	"sharedwd/internal/bitset"
	"sharedwd/internal/plan"
)

// PartitionQueries assigns the instance's queries to shards so that queries
// sharing plan fragments co-locate. Sharding destroys exactly the sharing
// the Section II plan exploits across the cut, so the partitioner's
// objective is the same quantity stage 1 identifies: fragments — variable
// groups with identical query membership. Each query is placed on the shard
// already holding the largest variable mass of its fragments, subject to a
// load cap that keeps per-shard expected work (Σ rate·|X_q|) balanced
// within one average query of the lightest shard.
//
// Queries are placed in descending rate·|X_q| order (heavy, share-rich
// queries seed the shards; light ones fill in around them), and the whole
// procedure is deterministic for a given instance. The returned slice maps
// query index → shard in [0, shards); every shard receives at least one
// query whenever len(queries) ≥ shards.
func PartitionQueries(inst *plan.Instance, shards int) []int {
	assign := make([]int, len(inst.Queries))
	if shards <= 1 {
		return assign
	}

	// Stage-1 fragments: group variables by query-membership signature.
	m := len(inst.Queries)
	sig := make([]bitset.Set, inst.NumVars)
	for v := range sig {
		sig[v] = bitset.New(m)
	}
	for qi, q := range inst.Queries {
		q.Vars.ForEach(func(v int) bool {
			sig[v].Add(qi)
			return true
		})
	}
	fragOf := make([]int, inst.NumVars) // variable → fragment index
	fragIdx := make(map[string]int)
	var fragSize []int // fragment → variable count
	for v := 0; v < inst.NumVars; v++ {
		if sig[v].IsEmpty() {
			fragOf[v] = -1
			continue
		}
		k := sig[v].Key()
		f, ok := fragIdx[k]
		if !ok {
			f = len(fragSize)
			fragIdx[k] = f
			fragSize = append(fragSize, 0)
		}
		fragOf[v] = f
		fragSize[f]++
	}

	// Heavy queries first: descending rate·|X_q|, index as tie-break.
	weight := make([]float64, m)
	totalWeight := 0.0
	order := make([]int, m)
	for qi, q := range inst.Queries {
		order[qi] = qi
		weight[qi] = q.Rate * float64(q.Vars.Count())
		totalWeight += weight[qi]
	}
	sort.Slice(order, func(i, j int) bool {
		if weight[order[i]] != weight[order[j]] {
			return weight[order[i]] > weight[order[j]]
		}
		return order[i] < order[j]
	})

	// Greedy placement under a balance cap: a shard is eligible while its
	// load stays within one average query weight of the lightest shard.
	slack := totalWeight / float64(m)
	load := make([]float64, shards)
	queries := make([]int, shards) // queries placed per shard
	onShard := make([]map[int]bool, shards)
	for s := range onShard {
		onShard[s] = make(map[int]bool)
	}
	fragsOf := func(qi int) []int {
		var fs []int
		seen := make(map[int]bool)
		inst.Queries[qi].Vars.ForEach(func(v int) bool {
			if f := fragOf[v]; f >= 0 && !seen[f] {
				seen[f] = true
				fs = append(fs, f)
			}
			return true
		})
		return fs
	}
	for _, qi := range order {
		minLoad := load[0]
		for s := 1; s < shards; s++ {
			if load[s] < minLoad {
				minLoad = load[s]
			}
		}
		frags := fragsOf(qi)
		best, bestAffinity := -1, -1
		for s := 0; s < shards; s++ {
			if load[s] > minLoad+slack {
				continue
			}
			affinity := 0
			for _, f := range frags {
				if onShard[s][f] {
					affinity += fragSize[f]
				}
			}
			// Prefer co-located fragment mass; break ties toward the
			// lightest eligible shard, then the lowest index.
			if affinity > bestAffinity ||
				(affinity == bestAffinity && best >= 0 && load[s] < load[best]) {
				best, bestAffinity = s, affinity
			}
		}
		assign[qi] = best
		load[best] += weight[qi]
		queries[best]++
		for _, f := range frags {
			onShard[best][f] = true
		}
	}

	// Guarantee non-empty shards: move the lightest query off the
	// most-populated shard into each empty one.
	for s := 0; s < shards; s++ {
		if queries[s] > 0 {
			continue
		}
		donor, victim := -1, -1
		for _, qi := range order {
			d := assign[qi]
			if queries[d] > 1 && (donor == -1 || weight[qi] < weight[victim]) {
				donor, victim = d, qi
			}
		}
		if donor == -1 {
			break // fewer queries than shards; Partition will reject
		}
		assign[victim] = s
		queries[donor]--
		queries[s]++
		load[donor] -= weight[victim]
		load[s] += weight[victim]
	}
	return assign
}
