package sharedagg

import (
	"math/rand"
	"reflect"
	"testing"

	"sharedwd/internal/plan"
)

func TestPartitionQueriesCoLocatesFragments(t *testing.T) {
	// Two independent fragment clusters: queries {0,1} share fragment
	// {0,1}, queries {2,3} share fragment {4,5}. Two shards must separate
	// the clusters, not split one.
	inst := plan.MustInstance(8, []plan.Query{
		q(8, 1, 0, 1, 2),
		q(8, 1, 0, 1, 3),
		q(8, 1, 4, 5, 6),
		q(8, 1, 4, 5, 7),
	})
	assign := PartitionQueries(inst, 2)
	if assign[0] != assign[1] || assign[2] != assign[3] {
		t.Fatalf("fragment cluster split across shards: %v", assign)
	}
	if assign[0] == assign[2] {
		t.Fatalf("both clusters on one shard: %v", assign)
	}
}

func TestPartitionQueriesBalancedAndTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nVars, nQueries = 60, 40
	queries := make([]plan.Query, nQueries)
	for i := range queries {
		vars := rng.Perm(nVars)[:3+rng.Intn(8)]
		queries[i] = q(nVars, 0.05+0.9*rng.Float64(), vars...)
	}
	inst := plan.MustInstance(nVars, queries)
	for _, shards := range []int{1, 2, 4, 8} {
		assign := PartitionQueries(inst, shards)
		if len(assign) != nQueries {
			t.Fatalf("%d shards: %d assignments", shards, len(assign))
		}
		load := make([]float64, shards)
		count := make([]int, shards)
		totalWeight := 0.0
		for qi, s := range assign {
			if s < 0 || s >= shards {
				t.Fatalf("%d shards: query %d assigned to %d", shards, qi, s)
			}
			w := queries[qi].Rate * float64(queries[qi].Vars.Count())
			load[s] += w
			totalWeight += w
			count[s]++
		}
		minLoad, maxLoad := load[0], load[0]
		for _, l := range load[1:] {
			if l < minLoad {
				minLoad = l
			}
			if l > maxLoad {
				maxLoad = l
			}
		}
		// The balance cap admits one average query of slack above the
		// lightest shard at placement time, plus the placed query itself.
		avg := totalWeight / float64(nQueries)
		maxQ := 0.0
		for _, qu := range queries {
			if w := qu.Rate * float64(qu.Vars.Count()); w > maxQ {
				maxQ = w
			}
		}
		if maxLoad > minLoad+avg+maxQ+1e-9 {
			t.Fatalf("%d shards: loads %v exceed balance bound", shards, load)
		}
		for s, c := range count {
			if c == 0 {
				t.Fatalf("%d shards: shard %d empty (%v)", shards, s, count)
			}
		}
		// Deterministic: same instance, same assignment.
		if again := PartitionQueries(inst, shards); !reflect.DeepEqual(assign, again) {
			t.Fatalf("%d shards: non-deterministic assignment", shards)
		}
	}
}
