// Package sharedagg implements the paper's two-stage heuristic for building
// shared top-k aggregation plans (Section II-D):
//
//  1. Fragment identification: variables are grouped by the exact set of
//     queries they appear in (Krishnamurthy–Wu–Franklin fragments) and each
//     fragment is pre-aggregated, since no sharing can cut across a
//     fragment.
//  2. Greedy completion: until every query has a node, aggregate the pair of
//     existing nodes with the greatest expected greedy-coverage gain per
//     unit extra cost, preferring pairs that complete a query node outright
//     (those have zero extra cost).
//
// Because fragments partition every query's variable set, the initial exact
// cover of each query is unique: the fragments it contains. Stage 2
// maintains those covers incrementally — replacing cover elements subsumed
// by each newly created aggregate — rather than re-running a generic greedy
// set cover per step, which keeps plan construction near-linear in
// Σ_q |X_q| (the paper's step bound) instead of quadratic. Pair gains are
// weighted by search rates sr_q, so probable queries attract sharing before
// rare ones, exactly as the paper prescribes.
package sharedagg

import (
	"fmt"
	"sort"

	"sharedwd/internal/bitset"
	"sharedwd/internal/plan"
)

// pairWindow bounds how many elements of each query's cover are scanned for
// candidate pairs per step. Covers keep their largest elements first, so
// the window holds the highest-value sharing candidates; the fallback path
// guarantees completion regardless.
const pairWindow = 8

// Build runs the full two-stage heuristic and returns a complete, validated
// plan for the instance. It panics only on internal invariant violations;
// any valid instance yields a plan.
//
// Covers may overlap (two plan nodes feeding one query may share
// variables), which is sound for the idempotent top-k merge — Lemma 1's
// set semantics — but NOT for multiset aggregates like sum or count. Use
// BuildDisjoint for those.
func Build(inst *plan.Instance) *plan.Plan {
	b := newBuilder(inst)
	b.identifyFragments()
	b.initCovers()
	b.completeGreedy()
	return b.p
}

// BuildCompiled runs the full heuristic, validates the resulting plan, and
// lowers it to the flat instruction stream the round engine executes
// (plan.Compile). The heuristic's output is deliberately compiler-friendly:
// stage 1 emits each fragment as a left-deep chain whose interior nodes
// have exactly one consumer, so the compiler fuses every fragment into a
// single fold over its leaves' scores, while stage-2 aggregates — the nodes
// that actually carry cross-query sharing — stay individually materialized
// and cacheable. Returning both forms lets callers keep the Plan for cost
// accounting, serialization, and visualization while executing the Program.
func BuildCompiled(inst *plan.Instance) (*plan.Plan, *plan.Program, error) {
	p := Build(inst)
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sharedagg: invalid plan: %w", err)
	}
	return p, plan.Compile(p), nil
}

// BuildCompiledWithRates re-poses the instance under new per-query rates
// (one per query) and runs BuildCompiled on the result, returning the
// re-posed instance alongside the plan and program. This is the online
// replanner's build step: same queries, same universe, new cost model — so
// by Lemma 1 the resulting plan computes identical top-k answers and only
// its expected cost differs.
func BuildCompiledWithRates(inst *plan.Instance, rates []float64) (*plan.Instance, *plan.Plan, *plan.Program, error) {
	reposed, err := inst.WithRates(rates)
	if err != nil {
		return nil, nil, nil, err
	}
	p, prog, err := BuildCompiled(reposed)
	if err != nil {
		return nil, nil, nil, err
	}
	return reposed, p, prog, nil
}

// BuildDisjoint runs the same heuristic constrained so that every
// aggregation node's children are variable-disjoint: each query's cover
// stays a *partition* of its variable set, so every variable flows into
// each query exactly once. This is the plan shape required by
// non-idempotent (multiset-semantics) aggregates — sum, count, mean —
// mirroring the paper's Figure-5 distinction between semilattice and
// Abelian-group operators. Sharing opportunities are a subset of Build's,
// so the plan may cost slightly more.
func BuildDisjoint(inst *plan.Instance) *plan.Plan {
	b := newBuilder(inst)
	b.disjoint = true
	b.identifyFragments()
	b.initCovers()
	b.completeGreedy()
	return b.p
}

// BuildFragmentOnly runs stage 1 and then completes each query with a plain
// chain over its fragment cover, with no cross-query sharing beyond the
// fragments themselves. This is the "stage-1 only" ablation baseline.
func BuildFragmentOnly(inst *plan.Instance) *plan.Plan {
	b := newBuilder(inst)
	b.identifyFragments()
	b.initCovers()
	for qi := range inst.Queries {
		if b.p.QueryNode[qi] != -1 {
			continue
		}
		ids := make([]int, len(b.covers[qi]))
		for i, a := range b.covers[qi] {
			ids[i] = b.active[a]
		}
		b.p.Chain(ids)
	}
	return b.p
}

type builder struct {
	inst *plan.Instance
	p    *plan.Plan
	// active holds node IDs eligible as cover elements and pair operands:
	// fragment roots and stage-2 aggregates. Chain intermediates and leaves
	// inside multi-variable fragments are dominated by their fragment root
	// (any query containing the leaf contains the whole fragment), so they
	// are excluded.
	active []int
	// activeIdx maps active variable-set keys to their index in active,
	// both to suppress duplicates and for exact-complement lookups.
	activeIdx map[string]int
	// disjoint constrains stage 2 to partition-preserving replacements
	// (see BuildDisjoint).
	disjoint bool
	// covers[qi] is query qi's current exact cover as indices into active,
	// kept sorted by descending element size. Cover sizes only decrease.
	covers [][]int
	// membership[a] is the bitset of incomplete queries whose cover
	// currently contains active node a.
	membership []bitset.Set
}

func newBuilder(inst *plan.Instance) *builder {
	return &builder{
		inst:      inst,
		p:         plan.NewPlan(inst),
		activeIdx: make(map[string]int),
		covers:    make([][]int, len(inst.Queries)),
	}
}

// identifyFragments groups variables by their query-membership signature and
// chains each group. O(m·n) signature construction plus hashed grouping —
// the paper's O(mn log n) bound with the hash-table alternative it mentions.
func (b *builder) identifyFragments() {
	m := len(b.inst.Queries)
	sig := make([]bitset.Set, b.inst.NumVars)
	for v := range sig {
		sig[v] = bitset.New(m)
	}
	for qi, q := range b.inst.Queries {
		q.Vars.ForEach(func(v int) bool {
			sig[v].Add(qi)
			return true
		})
	}
	groups := make(map[string][]int)
	var order []string // deterministic iteration: first-seen order
	for v := 0; v < b.inst.NumVars; v++ {
		if sig[v].IsEmpty() {
			continue // variable used by no query
		}
		k := sig[v].Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], v)
	}
	for _, k := range order {
		root := b.p.Chain(groups[k])
		b.addActive(root)
	}
}

// initCovers sets every incomplete query's cover to its fragment partition
// — the unique exact cover from the pairwise-disjoint fragment roots —
// sorted by descending fragment size.
func (b *builder) initCovers() {
	m := len(b.inst.Queries)
	b.membership = make([]bitset.Set, len(b.active))
	for a := range b.membership {
		b.membership[a] = bitset.New(m)
	}
	for qi, q := range b.inst.Queries {
		if b.p.QueryNode[qi] != -1 {
			continue
		}
		var cover []int
		for a := range b.active {
			if b.vars(a).SubsetOf(q.Vars) && b.vars(a).Intersects(q.Vars) {
				cover = append(cover, a)
			}
		}
		b.sortCover(cover)
		b.covers[qi] = cover
		for _, a := range cover {
			b.membership[a].Add(qi)
		}
	}
}

func (b *builder) sortCover(cover []int) {
	sort.Slice(cover, func(i, j int) bool {
		ci, cj := b.vars(cover[i]).Count(), b.vars(cover[j]).Count()
		if ci != cj {
			return ci > cj
		}
		return cover[i] < cover[j]
	})
}

func (b *builder) addActive(id int) int {
	k := b.p.Nodes[id].Vars.Key()
	if a, ok := b.activeIdx[k]; ok {
		return a
	}
	a := len(b.active)
	b.activeIdx[k] = a
	b.active = append(b.active, id)
	if b.membership != nil {
		b.membership = append(b.membership, bitset.New(len(b.inst.Queries)))
	}
	return a
}

func (b *builder) vars(a int) bitset.Set { return b.p.Nodes[b.active[a]].Vars }

// completeGreedy is stage 2. Each step picks the pair of active nodes with
// the greatest expected coverage gain — Σ sr_q over the incomplete queries
// whose covers contain both nodes, since merging two cover-mates shrinks
// that query's cover by one — preferring pairs whose union completes a
// missing query node outright (zero extra cost, paper step 2b). When no
// candidate pair in the scan window has positive gain, the first incomplete
// query is finished by chaining its whole cover, which is exactly the
// paper's "aggregate the cover with an arbitrary binary tree" completion.
func (b *builder) completeGreedy() {
	for {
		// Sweep covers of queries bound as a side effect of node creation
		// (AddAggregate binds any unassigned query with an equal label).
		for qi := range b.inst.Queries {
			if b.p.QueryNode[qi] != -1 && len(b.covers[qi]) > 0 {
				b.coverBecame(qi, nil)
			}
		}
		incomplete := b.incompleteQueries()
		if len(incomplete) == 0 {
			return
		}
		u, v, multi := b.bestPair(incomplete)
		if u != -1 && !multi {
			// The best pair's gain comes from a single query, i.e. no
			// cross-query sharing is available in the scan windows. Merging
			// such a pair is just one step of privately chaining that
			// query's cover, so chain it wholesale (plan-cost equivalent,
			// far fewer rescans).
			u = -1
		}
		if u == -1 {
			// No shareable pair: finish the first incomplete query by
			// chaining its cover; prefix aggregates become active so later
			// queries may still reuse them via subsumption.
			qi := incomplete[0]
			cover := b.covers[qi]
			acc := cover[0]
			for _, a := range cover[1:] {
				accID := b.p.AddAggregate(b.active[acc], b.active[a])
				acc = b.addActive(accID)
			}
			if b.p.QueryNode[qi] == -1 {
				panic("sharedagg: chaining an exact cover failed to complete its query")
			}
			b.coverBecame(qi, nil)
			continue
		}
		// Create (or reuse) the aggregate of the chosen pair.
		union := b.vars(u).Union(b.vars(v))
		var w int
		if a, ok := b.activeIdx[union.Key()]; ok {
			w = a
		} else {
			w = b.addActive(b.p.AddAggregate(b.active[u], b.active[v]))
		}
		// Update the covers that contained u or v, keeping exactness: the
		// new node may only enter covers of queries it fits inside.
		wVars := b.vars(w)
		affected := b.membership[u].Union(b.membership[v])
		affected.ForEach(func(qi int) bool {
			if b.p.QueryNode[qi] != -1 {
				b.coverBecame(qi, nil)
				return true
			}
			if !wVars.SubsetOf(b.inst.Queries[qi].Vars) {
				return true
			}
			b.coverBecame(qi, replaceSubsumed(b, b.covers[qi], w))
			return true
		})
	}
}

// coverBecame installs a query's new cover (nil when the query completed),
// maintaining the membership index and keeping covers size-sorted.
func (b *builder) coverBecame(qi int, cover []int) {
	for _, a := range b.covers[qi] {
		b.membership[a].Remove(qi)
	}
	if b.p.QueryNode[qi] != -1 {
		cover = nil
	}
	b.sortCover(cover)
	b.covers[qi] = cover
	for _, a := range cover {
		b.membership[a].Add(qi)
	}
}

func (b *builder) incompleteQueries() []int {
	var out []int
	for qi, id := range b.p.QueryNode {
		if id == -1 {
			out = append(out, qi)
		}
	}
	return out
}

// replaceSubsumed substitutes newA for every element of cover contained in
// its variable set (when at least one is), keeping the cover exact. In
// disjoint mode the replacement additionally requires the subsumed
// elements to union to exactly newA's variable set, so a partition cover
// stays a partition.
func replaceSubsumed(b *builder, cover []int, newA int) []int {
	w := b.vars(newA)
	var kept []int
	var subsumed []int
	for _, a := range cover {
		if b.vars(a).SubsetOf(w) {
			subsumed = append(subsumed, a)
			continue
		}
		kept = append(kept, a)
	}
	if len(subsumed) == 0 {
		return cover
	}
	if b.disjoint {
		union := b.vars(subsumed[0]).Clone()
		for _, a := range subsumed[1:] {
			union.UnionInPlace(b.vars(a))
		}
		if !union.Equal(w) {
			return cover // replacing would double-count w's other variables
		}
	}
	return append(kept, newA)
}

// bestPair scans candidate pairs — pairs within the leading window of each
// incomplete query's cover, plus exact-complement completion partners — and
// returns the winner as active indices plus whether its gain spans multiple
// queries (true cross-query sharing). It returns (-1, -1, false) if no
// candidate has positive expected gain.
func (b *builder) bestPair(incomplete []int) (int, int, bool) {
	bestU, bestV := -1, -1
	bestGain := 0.0
	bestCompletes := false
	bestMulti := false
	scored := make(map[[2]int]bool)

	consider := func(u, v int, knownComplete bool) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if scored[key] {
			return
		}
		scored[key] = true
		shared := b.membership[u].Intersect(b.membership[v])
		gain := 0.0
		sharedCount := 0
		completes := knownComplete
		shared.ForEach(func(qi int) bool {
			gain += b.inst.Queries[qi].Rate
			sharedCount++
			// Covers are exact, so two cover-mates forming the whole
			// cover union to exactly the query's variable set.
			if len(b.covers[qi]) == 2 {
				completes = true
			}
			return true
		})
		// A completion partner found by complement lookup also serves every
		// query it already covers.
		if knownComplete && sharedCount == 0 {
			sharedCount = 1
		}
		if gain <= 0 && !completes {
			return
		}
		better := false
		switch {
		case completes != bestCompletes:
			better = completes
		case gain != bestGain:
			better = gain > bestGain
		case bestU == -1:
			better = true
		default:
			better = u < bestU || (u == bestU && v < bestV)
		}
		if better {
			bestU, bestV, bestGain, bestCompletes = u, v, gain, completes
			bestMulti = sharedCount >= 2 || completes
		}
	}

	for _, qi := range incomplete {
		cover := b.covers[qi]
		window := len(cover)
		if window > pairWindow {
			window = pairWindow
		}
		for i := 0; i < window; i++ {
			for j := i + 1; j < window; j++ {
				consider(cover[i], cover[j], false)
			}
		}
		// Exact-complement completion partners: for each windowed cover
		// element u, an existing node equal to X_q \ u completes the query
		// at zero extra cost.
		target := b.inst.Queries[qi].Vars
		for i := 0; i < window; i++ {
			complement := target.Difference(b.vars(cover[i]))
			if complement.IsEmpty() {
				continue
			}
			if v, ok := b.activeIdx[complement.Key()]; ok {
				consider(cover[i], v, true)
			}
		}
	}
	return bestU, bestV, bestMulti
}
