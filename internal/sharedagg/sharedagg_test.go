package sharedagg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sharedwd/internal/bitset"
	"sharedwd/internal/plan"
	"sharedwd/internal/topk"
)

func q(n int, rate float64, vars ...int) plan.Query {
	return plan.Query{Vars: bitset.FromIndices(n, vars...), Rate: rate}
}

func rangeSet(n, lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestBuildTwoOverlappingQueries(t *testing.T) {
	// Queries {0,1,2} and {0,1,3}: fragments {0,1}, {2}, {3}; completion
	// adds the two query nodes. Total = 1 (fragment) + 2 (queries) = 3.
	inst := plan.MustInstance(4, []plan.Query{q(4, 1, 0, 1, 2), q(4, 1, 0, 1, 3)})
	p := Build(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalCost() != 3 {
		t.Fatalf("TotalCost = %d, want 3", p.TotalCost())
	}
}

func TestBuildDisjointQueries(t *testing.T) {
	inst := plan.MustInstance(4, []plan.Query{q(4, 1, 0, 1), q(4, 1, 2, 3)})
	p := Build(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalCost() != 2 {
		t.Fatalf("TotalCost = %d, want 2 (nothing shareable)", p.TotalCost())
	}
}

func TestBuildIdenticalToFragment(t *testing.T) {
	// A query that is exactly one fragment binds during stage 1.
	inst := plan.MustInstance(3, []plan.Query{q(3, 1, 0, 1, 2)})
	p := Build(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalCost() != 2 {
		t.Fatalf("TotalCost = %d, want 2", p.TotalCost())
	}
}

func TestBuildNestedQueries(t *testing.T) {
	// {0,1} ⊂ {0,1,2} ⊂ {0,1,2,3}: the tower shares every prefix.
	inst := plan.MustInstance(4, []plan.Query{
		q(4, 1, 0, 1), q(4, 1, 0, 1, 2), q(4, 1, 0, 1, 2, 3),
	})
	p := Build(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalCost() != 3 {
		t.Fatalf("TotalCost = %d, want 3", p.TotalCost())
	}
}

func TestBuildSingletonAndUnusedVars(t *testing.T) {
	// Variable 3 appears in no query; query 1 is a singleton.
	inst := plan.MustInstance(4, []plan.Query{q(4, 1, 0, 1), q(4, 1, 2)})
	p := Build(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalCost() != 1 {
		t.Fatalf("TotalCost = %d, want 1", p.TotalCost())
	}
}

func TestBuildZeroRateQueriesStillComplete(t *testing.T) {
	// All rates zero: gains vanish everywhere, exercising the fallback path.
	inst := plan.MustInstance(5, []plan.Query{
		q(5, 0, 0, 1, 2), q(5, 0, 1, 2, 3), q(5, 0, 2, 3, 4),
	})
	p := Build(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Complete() {
		t.Fatal("plan must complete even with zero rates")
	}
}

// TestShoeStoreExample reproduces the Section II-B worked example: 200
// general shoe stores interested in both phrases, 40 sports stores only in
// "hiking boots", 30 fashion stores only in "high-heels". Scanning
// separately touches 470 advertisers (469 aggregations); sharing the
// general-store aggregate touches 270 (269 aggregations) — the paper's
// "40% fewer" claim.
func TestShoeStoreExample(t *testing.T) {
	const general, sports, fashion = 200, 40, 30
	n := general + sports + fashion
	hikingBoots := append(rangeSet(n, 0, general), rangeSet(n, general, general+sports)...)
	highHeels := append(rangeSet(n, 0, general), rangeSet(n, general+sports, n)...)
	inst := plan.MustInstance(n, []plan.Query{
		{Vars: bitset.FromIndices(n, hikingBoots...), Rate: 1},
		{Vars: bitset.FromIndices(n, highHeels...), Rate: 1},
	})

	shared := Build(inst)
	if err := shared.Validate(); err != nil {
		t.Fatal(err)
	}
	naive := plan.NaivePlan(inst)

	wantShared := (general - 1) + (sports - 1) + (fashion - 1) + 2 // 269
	if shared.TotalCost() != wantShared {
		t.Fatalf("shared cost = %d, want %d", shared.TotalCost(), wantShared)
	}
	if naive.TotalCost() != 468 {
		t.Fatalf("naive cost = %d, want 468", naive.TotalCost())
	}
	saving := 1 - float64(shared.TotalCost())/float64(naive.TotalCost())
	if saving < 0.40 {
		t.Fatalf("saving = %.1f%%, want ≥ 40%% (the paper's claim)", saving*100)
	}
}

func TestFragmentOnlyBaseline(t *testing.T) {
	inst := plan.MustInstance(6, []plan.Query{
		q(6, 1, 0, 1, 2, 3), q(6, 1, 0, 1, 4, 5), q(6, 1, 2, 3, 4, 5),
	})
	frag := BuildFragmentOnly(inst)
	if err := frag.Validate(); err != nil {
		t.Fatal(err)
	}
	full := Build(inst)
	naive := plan.NaivePlan(inst)
	if frag.TotalCost() > naive.TotalCost() {
		t.Fatalf("fragment-only (%d) worse than naive (%d)", frag.TotalCost(), naive.TotalCost())
	}
	if full.TotalCost() > frag.TotalCost() {
		t.Fatalf("full heuristic (%d) worse than fragment-only (%d)", full.TotalCost(), frag.TotalCost())
	}
}

func TestRateWeightingPrefersProbableQueries(t *testing.T) {
	// Two possible sharings of equal structural value; the heuristic must
	// build the one helping the high-rate queries first. We check the
	// resulting expected cost at least beats the fragment-only baseline.
	rng := rand.New(rand.NewSource(3))
	inst := plan.RandomOverlapInstance(rng, 40, 10, 4, 0.1, 0.9)
	full := Build(inst)
	frag := BuildFragmentOnly(inst)
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	if full.ExpectedCost() > frag.ExpectedCost()+1e-9 {
		t.Fatalf("full heuristic expected cost %v worse than fragment-only %v",
			full.ExpectedCost(), frag.ExpectedCost())
	}
}

// TestQuickHeuristicValidAndBounded: on random coin-flip instances (the
// Figure-4 construction) the heuristic always yields a valid complete plan
// no worse than the naive baseline in total cost — a structural guarantee:
// fragment chains never exceed naive chains and every greedy node pays for
// itself in cover reductions. The *expected* cost is a heuristic target,
// not a guarantee: the greedy optimizes coverage size, so at sub-certain
// rates its shared nodes (materialized at the union of their queries'
// rates) can cost a few percent more in expectation than naive private
// chains. We assert certainty-case dominance (rate 1, where expected =
// total) and a small-regret bound elsewhere — matching the paper's remark
// that "the more certain the queries are, the more effective our sharing
// techniques will be" (§II-D).
func TestQuickHeuristicValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rate := 0.1 + 0.9*rng.Float64()
		if rng.Intn(4) == 0 {
			rate = 1
		}
		inst := plan.RandomCoinFlipInstance(rng, 4+rng.Intn(12), 2+rng.Intn(6), rate)
		p := Build(inst)
		if p.Validate() != nil {
			return false
		}
		naive := plan.NaivePlan(inst)
		if p.TotalCost() > naive.TotalCost() {
			return false
		}
		if rate == 1 && p.ExpectedCost() > naive.ExpectedCost()+1e-9 {
			return false
		}
		// Regret envelope: strict dominance at certainty, linearly more
		// slack as rates fall (observed worst cases: ~1.27× at rate 0.13).
		return p.ExpectedCost() <= naive.ExpectedCost()*(2-rate)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeuristicNearExact: the heuristic cannot beat the exact planner
// and should be close on tiny instances.
func TestQuickHeuristicNearExact(t *testing.T) {
	worstRatio := 1.0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := plan.RandomCoinFlipInstance(rng, 4+rng.Intn(3), 2+rng.Intn(2), 1)
		h := Build(inst)
		e := plan.ExactMinTotalCost(inst)
		if h.TotalCost() < e.TotalCost() {
			return false // exact must be optimal
		}
		if e.TotalCost() > 0 {
			if r := float64(h.TotalCost()) / float64(e.TotalCost()); r > worstRatio {
				worstRatio = r
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	if worstRatio > 2.0 {
		t.Fatalf("heuristic/exact ratio reached %v on tiny instances", worstRatio)
	}
}

// TestQuickHeuristicNearExactExpected: on tiny probabilistic instances the
// heuristic's expected cost stays within a small factor of the exact
// expected-cost optimum (and never beats it).
func TestQuickHeuristicNearExactExpected(t *testing.T) {
	worst := 1.0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := plan.RandomCoinFlipInstance(rng, 4+rng.Intn(2), 2, 0.3+0.7*rng.Float64())
		h := Build(inst)
		e := plan.ExactMinExpectedCost(inst, 2)
		hc, ec := h.ExpectedCost(), e.ExpectedCost()
		if hc < ec-1e-9 {
			return false // exact must be optimal
		}
		if ec > 0 && hc/ec > worst {
			worst = hc / ec
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	if worst > 1.6 {
		t.Fatalf("heuristic/exact expected-cost ratio reached %v", worst)
	}
}

// TestQuickPlanComputesTopK: executing the shared plan with the real top-k
// merge returns, for every query, exactly the direct top-k over the query's
// advertiser set.
func TestQuickPlanComputesTopK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		inst := plan.RandomCoinFlipInstance(rng, n, 2+rng.Intn(6), 1)
		p := Build(inst)
		k := 1 + rng.Intn(4)
		bids := make([]float64, n)
		for i := range bids {
			bids[i] = rng.Float64() * 100
		}
		leaf := func(v int) *topk.List {
			return topk.FromEntries(k, topk.Entry{ID: v, Score: bids[v]})
		}
		results, _ := plan.Execute(p, leaf, topk.Merge, nil)
		for qi, query := range inst.Queries {
			want := topk.New(k)
			query.Vars.ForEach(func(v int) bool {
				want.Push(topk.Entry{ID: v, Score: bids[v]})
				return true
			})
			if !results[qi].Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestFig4Shape: on the Figure-4 construction, expected cost of the shared
// plan is monotone-ish in sr and strictly better than naive at sr=1.
func TestFig4Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst := plan.RandomCoinFlipInstance(rng, 20, 10, 1)
	var prevShared float64
	for _, sr := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		ri := inst.UniformRates(sr)
		shared := Build(ri)
		naive := plan.NaivePlan(ri)
		sc, nc := shared.ExpectedCost(), naive.ExpectedCost()
		if sc > nc+1e-9 {
			t.Fatalf("sr=%v: shared %v > naive %v", sr, sc, nc)
		}
		if sc+1e-9 < prevShared {
			t.Fatalf("expected cost decreased as sr rose: %v -> %v", prevShared, sc)
		}
		prevShared = sc
	}
	// At sr=1 the sharing must be substantial on coin-flip instances.
	ri := inst.UniformRates(1)
	shared, naive := Build(ri), plan.NaivePlan(ri)
	if float64(shared.TotalCost()) > 0.9*float64(naive.TotalCost()) {
		t.Fatalf("sharing too weak: %d vs naive %d", shared.TotalCost(), naive.TotalCost())
	}
}

func BenchmarkBuildFig4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := plan.RandomCoinFlipInstance(rng, 20, 10, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(inst)
	}
}

func BenchmarkBuildLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := plan.RandomOverlapInstance(rng, 200, 40, 8, 0.1, 0.9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(inst)
	}
}
